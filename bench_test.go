// Benchmarks regenerating the paper's evaluation artifacts (one benchmark
// per table/figure, §6-§7) plus micro-benchmarks of the substrates. The
// figure benchmarks run an entire experiment per iteration, so their
// ns/op is the cost of regenerating that artifact; run
//
//	go test -bench=. -benchmem
//
// at the module root. Reduced parameters (short profiling clips, few
// segments) keep a full sweep tractable; cmd/vbench runs the full-scale
// versions.
package repro_test

import (
	"os"
	"testing"

	"repro/internal/codec"
	"repro/internal/experiments"
	"repro/internal/focusmodel"
	"repro/internal/format"
	"repro/internal/kvstore"
	"repro/internal/ops"
	"repro/internal/vidsim"
)

const benchClip = 120 // profiling clip frames for figure benchmarks

func BenchmarkFig3aCodingSpeedSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3a("tucson", 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3bKeyframeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3b("tucson", 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4KnobImpacts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4(experiments.NewEnv(benchClip))
	}
}

func BenchmarkFig5DisparateCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(experiments.NewEnv(benchClip))
	}
}

func BenchmarkFig6RetrievalBottleneck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6(experiments.NewEnv(benchClip))
	}
}

func BenchmarkTable3Configuration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(experiments.NewEnv(benchClip)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4IngestBudgetLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4(experiments.NewEnv(benchClip), []float64{0, 6, 3})
		for _, r := range rows {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

func BenchmarkFig11EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "bench-fig11-*")
		if err != nil {
			b.Fatal(err)
		}
		_, err = experiments.Fig11(experiments.NewEnv(benchClip), dir, 1, []float64{1, 0.9, 0.7})
		os.RemoveAll(dir)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12OperatorScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(experiments.NewEnv(benchClip)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13ErosionPlanning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig13(experiments.NewEnv(benchClip), []float64{0.6, 1.0}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig14ProfilingOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig14(60); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSFConfigStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SFConfig(experiments.NewEnv(benchClip), experiments.DefaultExhaustiveCFLimit); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFocusModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		focusmodel.Sweep(focusmodel.Alpha, []float64{0.01, 0.05, 0.1, 0.25, 0.5})
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkSceneRender(b *testing.B) {
	src := vidsim.NewSource(vidsim.Datasets[0])
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.Frame(i % 3000)
	}
}

func BenchmarkEncodeMedium(b *testing.B) {
	src := vidsim.NewSource(vidsim.Datasets[0])
	frames := src.Clip(0, 60)
	var bytes int64
	for _, f := range frames {
		bytes += int64(f.Bytes())
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := codec.Encode(frames, codec.Params{Quality: format.QGood, Speed: format.SpeedMedium, KeyframeI: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFull(b *testing.B) {
	src := vidsim.NewSource(vidsim.Datasets[0])
	frames := src.Clip(0, 60)
	enc, _, err := codec.Encode(frames, codec.Params{Quality: format.QGood, Speed: format.SpeedMedium, KeyframeI: 50})
	if err != nil {
		b.Fatal(err)
	}
	var bytes int64
	for _, f := range frames {
		bytes += int64(f.Bytes())
	}
	b.SetBytes(bytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := enc.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeSampledSparse(b *testing.B) {
	src := vidsim.NewSource(vidsim.Datasets[0])
	frames := src.Clip(0, 240)
	enc, _, err := codec.Encode(frames, codec.Params{Quality: format.QGood, Speed: format.SpeedMedium, KeyframeI: 10})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := enc.DecodeSampled(func(i int) bool { return i%30 == 29 }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOperators(b *testing.B) {
	src := vidsim.NewSource(vidsim.Datasets[0])
	frames := src.Clip(0, 30)
	for _, op := range ops.All() {
		b.Run(op.Name(), func(b *testing.B) {
			var pixels int64
			for i := 0; i < b.N; i++ {
				_, st := op.Run(frames)
				pixels = st.Pixels
			}
			b.SetBytes(pixels)
		})
	}
}

func BenchmarkKVStorePut1MB(b *testing.B) {
	dir := b.TempDir()
	kv, err := kvstore.Open(dir, kvstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer kv.Close()
	val := make([]byte, 1<<20)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := kv.Put("segment", val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKVStoreGet1MB(b *testing.B) {
	dir := b.TempDir()
	kv, err := kvstore.Open(dir, kvstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer kv.Close()
	if err := kv.Put("segment", make([]byte, 1<<20)); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kv.Get("segment"); err != nil {
			b.Fatal(err)
		}
	}
}
