// Package repro is a from-scratch Go reproduction of "VStore: A Data Store
// for Analytics on Large Videos" (Xu, Botelho, Lin; EuroSys 2019).
//
// The system lives under internal/ (configuration engine in internal/core,
// substrates alongside it), the operational CLI and evaluation harness under
// cmd/, and runnable demonstrations under examples/. See README.md for an
// overview, DESIGN.md for the system inventory and substitutions, and
// EXPERIMENTS.md for paper-versus-measured results. The benchmarks in
// bench_test.go regenerate each table and figure of the paper's evaluation.
package repro
