package server

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/fault"
	"repro/internal/kvstore"
	"repro/internal/vidsim"
)

// soakSeeds returns how many seeds each soak scenario runs.
// VSTORE_SOAK_SEEDS widens the matrix — the nightly job sets it — while
// the default keeps the tier-1 suite quick.
func soakSeeds(t *testing.T) int {
	if v := os.Getenv("VSTORE_SOAK_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("VSTORE_SOAK_SEEDS=%q: want a positive integer", v)
		}
		return n
	}
	return 1
}

// TestFaultSoak drives a full ingest/demote/query/scrub workload under
// each class of injected fault and holds one line per phase: operations
// either succeed or fail with the injected error surfaced cleanly (no
// panics, no garbage served), and once the injector is removed a single
// scrub pass leaves the store verifiably intact with queries answering.
// Every run is seeded, so a failure reproduces with the same schedule.
func TestFaultSoak(t *testing.T) {
	scenarios := []struct {
		name string
		spec string
	}{
		{"read-flips", "read=flip:0.02"},
		{"read-errors", "read@fast=err:0.05"},
		{"torn-writes", "write=torn:0.05"},
		{"sync-errors", "sync=err:0.05"},
		{"mixed", "read=flip:0.01,write=torn:0.02,sync=err:0.01"},
	}
	seeds := soakSeeds(t)
	sc, err := vidsim.DatasetByName("jackson")
	if err != nil {
		t.Fatal(err)
	}
	for _, sn := range scenarios {
		for seed := uint64(1); seed <= uint64(seeds); seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", sn.name, seed), func(t *testing.T) {
				rules, err := fault.Parse(sn.spec)
				if err != nil {
					t.Fatal(err)
				}
				s, err := OpenWith(t.TempDir(), Options{Shards: 2, DemoteAfterDays: 1})
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				if err := s.Reconfigure(selfhealConfig()); err != nil {
					t.Fatal(err)
				}
				cascade, names := motionCascade()

				fault.Install(fault.New(seed, rules))
				defer fault.Install(nil)
				const segments = 4
				for i := 0; i < segments; i++ {
					// A failed ingest under injected write/sync faults
					// leaves an invisible hole — tolerated, like erosion.
					// Anything else is a real bug the soak exists to catch.
					if _, err := s.Ingest(sc, "cam", 1); err != nil && !errors.Is(err, fault.ErrInjected) {
						t.Fatalf("ingest %d: %v", i, err)
					}
					if _, err := s.DemotePass(func(string, int) int { return 10 }); err != nil &&
						!errors.Is(err, fault.ErrInjected) && !errors.Is(err, kvstore.ErrCorrupt) {
						t.Fatalf("demote %d: %v", i, err)
					}
					// Queries under read faults either answer (the degraded
					// path masked the damage) or surface corruption as a
					// typed error — never garbage, never a panic.
					_, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, s.SegmentsOf("cam"))
					if err != nil && !errors.Is(err, fault.ErrInjected) && !errors.Is(err, kvstore.ErrCorrupt) {
						t.Fatalf("query %d: %v", i, err)
					}
				}

				// Disarm, heal, and verify: one scrub pass must leave the
				// store intact and serving. Injected flips were transient
				// (nothing landed on disk) and torn writes never committed,
				// so the scrub has nothing it cannot repair.
				fault.Install(nil)
				rep, err := s.ScrubPass()
				if err != nil {
					t.Fatalf("post-soak scrub: %v", err)
				}
				if len(rep.Failed) != 0 {
					t.Fatalf("post-soak scrub could not heal %d replicas: %+v", len(rep.Failed), rep.Failed)
				}
				assertStoreClean(t, s)
				if n := s.SegmentsOf("cam"); n > 0 {
					if _, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, n); err != nil {
						t.Fatalf("post-soak query: %v", err)
					}
				}
			})
		}
	}
}
