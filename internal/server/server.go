// Package server is the operational façade over the whole store: it owns
// the database directory, tracks configuration epochs, ingests streams
// concurrently, runs queries, and applies erosion.
//
// The server is a live engine (§4.1's always-on store): cameras ingest
// through per-stream streaming pipelines (StartStream) while queries run
// and a background erosion daemon ages footage out, all concurrently.
// Three mechanisms make that safe:
//
//   - a segment manifest (segment.Manifest) records which segments are
//     fully committed, so a multi-record, multi-format segment becomes
//     visible atomically once every storage format is written;
//   - queries read through a snapshot of the manifest (Snapshot/QueryAt),
//     so an in-flight query observes one immutable segment set — never a
//     half-ingested or half-eroded segment, and never post-snapshot
//     shrinkage;
//   - erosion deletes logically first: a segment leaves the manifest (and
//     the retrieval cache) immediately, but its records are physically
//     deleted only after the last snapshot that could read them is
//     released.
//
// Epochs implement §7's "adapting to changes in operators and hardware":
// reconfiguring (after adding operators or accuracy levels) opens a new
// epoch whose storage formats apply only to forthcoming video — transcoding
// existing on-disk video would be expensive — while queries over older
// epochs subscribe each consumer to the cheapest existing storage format
// with satisfiable fidelity. Operators on aged video therefore run at their
// designated accuracies, albeit possibly slower than optimal, exactly as
// the paper prescribes.
package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/erode"
	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/ingest"
	"repro/internal/kvstore"
	"repro/internal/query"
	"repro/internal/results"
	"repro/internal/retrieve"
	"repro/internal/segment"
	"repro/internal/store"
	"repro/internal/tier"
	"repro/internal/vidsim"
)

// Epoch is one configuration generation: it governs segments ingested while
// it was current.
type Epoch struct {
	ID    int
	Since map[string]int // per stream: first segment index under this epoch
	Cfg   *core.Config
}

// Server owns one store directory. All methods are safe for concurrent use.
type Server struct {
	mu       sync.Mutex
	kv       *tier.Store
	segs     *segment.Store
	manifest *segment.Manifest
	epochs   []*Epoch
	next     map[string]int // per stream: next segment index to ingest
	cache    *retrieve.Cache
	// results materializes finalized per-segment operator outputs in the
	// kvstore (nil when disabled); queries consult it before recomputing
	// and erosion invalidates through it segment by segment.
	results *results.Store
	streams map[string]*ingest.Stream // live streaming-ingest pipelines
	pool    *query.Pool               // shared transcode pool for all ingest paths
	daemon  *erode.Daemon
	// pastErodePasses accumulates passes of stopped daemons so the
	// ErosionPasses counter stays monotonic across daemon restarts.
	pastErodePasses int64
	closed          bool
	// erodeMu serialises lifecycle passes (demotion, erosion, scrub and
	// background repair): a demoter copying records fast→cold must never
	// interleave with an eroder physically deleting those records, or a
	// deleted segment could be resurrected on the cold tier — and a
	// repair rewriting a replica must never race either of them.
	erodeMu sync.Mutex
	// heal is the self-healing state: repairer, background repair queue
	// and counters (see selfheal.go). heal.repairer is guarded by mu (it
	// is invalidated under mu on Reconfigure); the queue and counters
	// have their own synchronisation.
	heal selfheal
	// placements maps storage-format keys to their derived disk tier,
	// merged across epochs (newest wins) so in-flight ingest of an older
	// epoch's formats still resolves during a reconfiguration.
	placements map[string]core.Placement
	// fastBytes and demoteAfterDays are the resolved demotion knobs (see
	// Options and Runtime).
	fastBytes       int64
	demoteAfterDays int
	demotions       int64 // segment replicas migrated fast→cold
	// Parallelism bounds concurrent per-format transcodes during ingest;
	// zero selects GOMAXPROCS.
	Parallelism int
	// QueryWorkers overrides the configuration's Runtime.QueryWorkers when
	// non-zero: it bounds a query's TOTAL concurrency, divided between
	// concurrent epoch spans and each span's per-stage fan-out. Negative
	// values force sequential execution.
	QueryWorkers int
}

const (
	epochKeyPrefix  = "meta/epoch/"
	streamKeyPrefix = "meta/stream/"
)

// Options shapes how a server opens its store. Every field has a working
// zero value; non-zero fields override the persisted Runtime knobs.
type Options struct {
	// Shards is the per-tier shard count when creating a fresh store (an
	// existing store's layout wins). Zero selects the engine default.
	Shards int
	// FastTierBytes caps the fast tier's live bytes (enforced by
	// demotion passes). Zero defers to the configuration's Runtime.
	FastTierBytes int64
	// DemoteAfterDays ages segments off the fast tier. Zero defers to
	// the configuration's Runtime.
	DemoteAfterDays int
}

// Open opens (creating if needed) a server over the given directory,
// restoring epochs and stream positions from the store's metadata.
func Open(dir string) (*Server, error) { return OpenWith(dir, Options{}) }

// OpenWith is Open with explicit engine options. The store is a tiered,
// sharded engine: segment records live in per-shard logs split across a
// fast and a cold tier, routed by stream+segment, with reads falling
// through fast→cold. A legacy single-log store is migrated in place, and
// demotions interrupted by a crash are completed before the manifest is
// rebuilt.
func OpenWith(dir string, opt Options) (*Server, error) {
	kv, err := tier.Open(filepath.Join(dir, "segments"), tier.Options{
		Shards: opt.Shards,
		Route:  segment.RouteKey,
	})
	if err != nil {
		return nil, err
	}
	s := &Server{
		kv: kv, segs: segment.NewStore(kv),
		next: map[string]int{}, streams: map[string]*ingest.Stream{},
		placements:      map[string]core.Placement{},
		fastBytes:       opt.FastTierBytes,
		demoteAfterDays: opt.DemoteAfterDays,
	}
	s.manifest = segment.NewManifest(s.segs.DeleteRef)
	for _, k := range kv.Keys(epochKeyPrefix) {
		b, err := kv.Get(k)
		if err != nil {
			kv.Close()
			return nil, err
		}
		ep, err := decodeEpoch(b)
		if err != nil {
			kv.Close()
			return nil, fmt.Errorf("server: epoch %s: %w", k, err)
		}
		s.epochs = append(s.epochs, ep)
	}
	sort.Slice(s.epochs, func(i, j int) bool { return s.epochs[i].ID < s.epochs[j].ID })
	for _, k := range kv.Keys(streamKeyPrefix) {
		b, err := kv.Get(k)
		if err != nil || len(b) != 8 {
			kv.Close()
			return nil, fmt.Errorf("server: stream position %s corrupt", k)
		}
		s.next[k[len(streamKeyPrefix):]] = int(binary.BigEndian.Uint64(b))
	}
	// The retrieval cache budget travels with the configuration, so a
	// reopened store serves queries exactly as configured. Zero means the
	// configuration is silent (see Reconfigure), so fold newest-to-oldest
	// for the last explicit setting; negative explicitly disables.
	for i := len(s.epochs) - 1; i >= 0; i-- {
		if b := s.epochs[i].Cfg.Runtime.CacheBytes; b != 0 {
			s.cache = retrieve.NewCache(b)
			break
		}
	}
	// The demotion knobs follow the same newest-to-oldest fold; explicit
	// open options win over the configuration.
	for i := len(s.epochs) - 1; i >= 0 && s.fastBytes == 0; i-- {
		s.fastBytes = s.epochs[i].Cfg.Runtime.FastTierBytes
	}
	for i := len(s.epochs) - 1; i >= 0 && s.demoteAfterDays == 0; i-- {
		s.demoteAfterDays = s.epochs[i].Cfg.Runtime.DemoteAfterDays
	}
	if s.fastBytes < 0 {
		s.fastBytes = 0
	}
	if s.demoteAfterDays < 0 {
		s.demoteAfterDays = 0
	}
	// Placement merges oldest-to-newest so the newest epoch's derivation
	// decides where a format's forthcoming segments land.
	for _, ep := range s.epochs {
		for k, p := range ep.Cfg.Placements() {
			s.placements[k] = p
		}
	}
	s.segs.SetPlacement(s.placeFunc())
	// The manifest restarts from the physical record set: a failed
	// transcode cleans up its partial records (see ingestSegment), and a
	// crash's torn tail is truncated by the KV replay, so surviving
	// records were durably committed. (A hard crash in the narrow window
	// between two formats' writes can still leave a format short, which
	// reads exactly like that replica having been eroded; a logically
	// eroded segment whose physical delete was pinned by a snapshot at
	// crash time likewise reappears and is re-eroded by the next pass.)
	// Stream positions are reconciled with the scan: segments ingested
	// outside the server (the bare CLI ingest path writes no position)
	// must not be overwritten by live ingest starting at a stale index.
	// Each replica is re-committed on the tier its anchor record lives
	// on, so demotions survive a reopen (and an interrupted demotion,
	// already healed by the engine's recovery, reports its settled tier).
	maxIdx := map[string]int{}
	present := map[string]map[int]bool{}
	s.segs.ScanRefs(func(r segment.Ref) {
		t, _ := s.segs.TierOf(r)
		s.manifest.CommitPlaced([]segment.Ref{r}, []tier.ID{t})
		if r.Idx+1 > maxIdx[r.Stream] {
			maxIdx[r.Stream] = r.Idx + 1
		}
		set := present[r.Stream]
		if set == nil {
			set = map[int]bool{}
			present[r.Stream] = set
		}
		set[r.Idx] = true
	})
	for stream, n := range maxIdx {
		if s.next[stream] < n {
			s.next[stream] = n
		}
	}
	// The materialized-results budget follows the cache's fold (zero is
	// silent, negative disables). When enabled, the store adopts entries a
	// previous run persisted, filtered through the segment set the manifest
	// rebuild just observed: results for segments with no surviving replica
	// (eroded or lost while no store was attached) are removed, never
	// adopted — and per-replica staleness beyond that is covered by the
	// query-time visibility gate. When disabled, persisted entries are
	// purged outright: they missed every invalidation while detached, so a
	// later enable must start empty.
	var resultsBytes int64
	for i := len(s.epochs) - 1; i >= 0; i-- {
		if b := s.epochs[i].Cfg.Runtime.ResultsBytes; b != 0 {
			resultsBytes = b
			break
		}
	}
	if resultsBytes > 0 {
		s.results = results.New(kv, resultsBytes, func(stream string, seg int) bool {
			return present[stream][seg]
		})
	} else {
		for _, k := range kv.Keys(results.Prefix) {
			_ = kv.Delete(k)
		}
	}
	return s, nil
}

// Close stops the erosion daemon and every live ingest stream (draining
// their queues), then releases the store.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	streams := s.streams
	s.streams = map[string]*ingest.Stream{}
	s.mu.Unlock()
	s.StopErosionDaemon() // folds its passes into the running total
	s.stopRepairWorker()  // waits for an in-flight repair before the store closes
	for _, st := range streams {
		st.Stop() // drains queued segments while the store is still open
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kv.Close()
}

func encodeEpoch(ep *Epoch) ([]byte, error) {
	cfg, err := ep.Cfg.MarshalBytes()
	if err != nil {
		return nil, err
	}
	// Header: id, #streams, then (len,name,since) entries, then the config.
	out := binary.BigEndian.AppendUint32(nil, uint32(ep.ID))
	out = binary.BigEndian.AppendUint32(out, uint32(len(ep.Since)))
	names := make([]string, 0, len(ep.Since))
	for n := range ep.Since {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = binary.BigEndian.AppendUint32(out, uint32(len(n)))
		out = append(out, n...)
		out = binary.BigEndian.AppendUint64(out, uint64(ep.Since[n]))
	}
	return append(out, cfg...), nil
}

func decodeEpoch(b []byte) (*Epoch, error) {
	if len(b) < 8 {
		return nil, errors.New("short epoch record")
	}
	ep := &Epoch{ID: int(binary.BigEndian.Uint32(b)), Since: map[string]int{}}
	n := int(binary.BigEndian.Uint32(b[4:]))
	off := 8
	for i := 0; i < n; i++ {
		if off+4 > len(b) {
			return nil, errors.New("truncated epoch record")
		}
		l := int(binary.BigEndian.Uint32(b[off:]))
		off += 4
		if off+l+8 > len(b) {
			return nil, errors.New("truncated epoch record")
		}
		name := string(b[off : off+l])
		off += l
		ep.Since[name] = int(binary.BigEndian.Uint64(b[off:]))
		off += 8
	}
	cfg, err := core.FromBytes(b[off:])
	if err != nil {
		return nil, err
	}
	ep.Cfg = cfg
	return ep, nil
}

// placeFunc returns the segment store's write-time tier resolver. It
// reads the live placement map under mu on every call, so one install at
// Open tracks every later Reconfigure. Unknown formats (foreign or
// pre-placement segments) default to the fast tier.
func (s *Server) placeFunc() segment.PlaceFunc {
	return func(sfKey string) tier.ID {
		s.mu.Lock()
		p, ok := s.placements[sfKey]
		s.mu.Unlock()
		if ok && p == core.PlaceCold {
			return tier.Cold
		}
		return tier.Fast
	}
}

// Reconfigure installs a new configuration epoch. Forthcoming segments of
// every stream are ingested under it; already-stored segments remain under
// their original epochs (§7).
func (s *Server) Reconfigure(cfg *core.Config) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep := &Epoch{ID: len(s.epochs), Since: map[string]int{}, Cfg: cfg}
	for stream, n := range s.next {
		ep.Since[stream] = n
	}
	b, err := encodeEpoch(ep)
	if err != nil {
		return err
	}
	if err := s.kv.Put(fmt.Sprintf("%s%08d", epochKeyPrefix, ep.ID), b); err != nil {
		return err
	}
	s.epochs = append(s.epochs, ep)
	// A zero budget means the configuration is silent on caching — most
	// configurations never populate Runtime — so an operator-set cache
	// (SetCacheBudget) survives. A negative budget explicitly disables.
	if cfg.Runtime.CacheBytes != 0 {
		s.applyCacheBudgetLocked(cfg.Runtime.CacheBytes)
	}
	if cfg.Runtime.ResultsBytes != 0 {
		s.applyResultsBudgetLocked(cfg.Runtime.ResultsBytes)
	}
	// The demotion knobs follow the same zero-is-silent convention.
	if v := cfg.Runtime.FastTierBytes; v != 0 {
		s.fastBytes = max(v, 0)
	}
	if v := cfg.Runtime.DemoteAfterDays; v != 0 {
		s.demoteAfterDays = max(v, 0)
	}
	// The new epoch's derived placement governs forthcoming writes.
	for k, p := range cfg.Placements() {
		s.placements[k] = p
	}
	// The repairer spans every epoch's derivation; rebuild it lazily with
	// the new epoch included.
	s.heal.repairer = nil
	return nil
}

// applyCacheBudgetLocked resizes, creates or drops the retrieval cache to
// match the budget. Caller holds mu.
func (s *Server) applyCacheBudgetLocked(budget int64) {
	switch {
	case budget <= 0:
		s.cache = nil
	case s.cache == nil:
		s.cache = retrieve.NewCache(budget)
	default:
		s.cache.Resize(budget)
	}
}

// SetCacheBudget resizes the retrieval cache at runtime without a
// reconfiguration: a positive budget enables (or resizes) the cache, zero
// or negative disables it.
func (s *Server) SetCacheBudget(budget int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyCacheBudgetLocked(budget)
}

// applyResultsBudgetLocked resizes, creates or drops the materialized-
// results store to match the budget. Disabling purges the persisted
// entries: with no store attached nothing invalidates them, so a later
// enable (or a reopen) must not find them. Enabling at runtime therefore
// always starts empty — disabled states leave no res/ keys behind (see
// OpenWith) — so no validity filter is needed here. Caller holds mu.
func (s *Server) applyResultsBudgetLocked(budget int64) {
	switch {
	case budget <= 0:
		s.results.Purge()
		s.results = nil
	case s.results == nil:
		s.results = results.New(s.kv, budget, nil)
	default:
		s.results.Resize(budget)
	}
}

// SetResultsBudget resizes the materialized-results store at runtime
// without a reconfiguration: a positive budget enables (or resizes) the
// store, zero or negative disables it and purges stored entries.
func (s *Server) SetResultsBudget(budget int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyResultsBudgetLocked(budget)
}

// ResultsStats reports the materialized-results store's activity (zeroes
// when materialization is disabled).
func (s *Server) ResultsStats() results.Stats {
	s.mu.Lock()
	r := s.results
	s.mu.Unlock()
	return r.Stats()
}

// CacheStats reports the retrieval cache's activity (zeroes when the cache
// is disabled).
func (s *Server) CacheStats() retrieve.CacheStats {
	s.mu.Lock()
	c := s.cache
	s.mu.Unlock()
	return c.Stats()
}

// Current returns the active configuration, or nil before the first
// Reconfigure.
func (s *Server) Current() *core.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.epochs) == 0 {
		return nil
	}
	return s.epochs[len(s.epochs)-1].Cfg
}

// Epochs returns the installed epochs, oldest first.
func (s *Server) Epochs() []*Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Epoch(nil), s.epochs...)
}

// epochOf returns the epoch governing the given segment of the stream.
// Segments ingested before any epoch opened (the bare CLI ingest path,
// adopted on Open) fall to the oldest epoch: its bindings resolve against
// whatever formats those segments actually have, with missing formats
// skipped like eroded segments.
func epochOf(epochs []*Epoch, stream string, seg int) *Epoch {
	var out *Epoch
	for _, ep := range epochs {
		since, ok := ep.Since[stream]
		if !ok {
			since = 0 // stream unknown when the epoch opened: epoch governs from 0
		}
		if seg >= since {
			out = ep
		}
	}
	if out == nil && len(epochs) > 0 {
		out = epochs[0]
	}
	return out
}

// Ingest appends n segments of the scene to the named stream under the
// current epoch — the batch counterpart of the live streaming pipeline
// (StartStream). Each segment is transcoded into every storage format
// concurrently on the shared transcode pool and committed to the segment
// manifest atomically, so queries running concurrently either see a whole
// segment (in every format) or none of it.
func (s *Server) Ingest(scene vidsim.Scene, stream string, n int) (ingest.Stats, error) {
	src := vidsim.NewSource(scene)
	stats := ingest.Stats{}
	for i := 0; i < n; i++ {
		perSF, cpu, err := s.ingestSegment(stream, func(idx int) []*frame.Frame {
			return src.Clip(idx*segment.Frames, segment.Frames)
		})
		mergeSFStats(&stats, perSF)
		stats.CPUSeconds += cpu
		if err != nil {
			return stats, err
		}
		stats.Segments++
	}
	return stats, nil
}

// mergeSFStats folds one segment's per-format stats into the batch totals,
// matching formats by key (a reconfiguration mid-batch changes the set).
func mergeSFStats(total *ingest.Stats, perSF []ingest.SFStats) {
	for _, one := range perSF {
		found := false
		for i := range total.PerSF {
			if total.PerSF[i].SF == one.SF {
				total.PerSF[i].Bytes += one.Bytes
				total.PerSF[i].CPUSeconds += one.CPUSeconds
				found = true
				break
			}
		}
		if !found {
			total.PerSF = append(total.PerSF, one)
		}
	}
}

// ingestSegment durably ingests one segment of the stream: it reserves the
// next segment index, cuts the segment's frames via clip, transcodes every
// storage format of the current epoch concurrently on the shared pool,
// and — only if every format succeeded — commits the segment to the
// manifest (atomic visibility) and persists the stream position. A failed
// transcode leaves an invisible index hole that queries skip, exactly like
// an eroded segment.
func (s *Server) ingestSegment(stream string, clip func(idx int) []*frame.Frame) ([]ingest.SFStats, float64, error) {
	s.mu.Lock()
	if len(s.epochs) == 0 {
		s.mu.Unlock()
		return nil, 0, errors.New("server: no configuration installed; call Reconfigure first")
	}
	cfg := s.epochs[len(s.epochs)-1].Cfg
	idx := s.next[stream]
	s.next[stream] = idx + 1
	pool := s.poolLocked()
	s.mu.Unlock()

	full := clip(idx)
	sfs := cfg.StorageFormats()
	perSF := make([]ingest.SFStats, len(sfs))
	for i := range sfs {
		perSF[i].SF = sfs[i]
	}
	var (
		stMu     sync.Mutex
		firstErr error
		cpu      float64
	)
	batch := pool.Batch()
	for fi := range sfs {
		fi := fi
		batch.Go(func() {
			one := ingest.Ingester{Store: s.segs, SFs: sfs[fi : fi+1]}
			bytes, c, err := one.TranscodeSegment(full, stream, sfs[fi], idx)
			stMu.Lock()
			defer stMu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			perSF[fi].Bytes += bytes
			perSF[fi].CPUSeconds += c
			cpu += c
		})
	}
	batch.Wait()
	if firstErr != nil {
		// Best-effort cleanup of the formats that did land: the segment
		// was never committed, so the records are invisible, but leaving
		// them would leak disk and resurrect a partial segment when a
		// reopen rebuilds the manifest from physical records.
		for _, sf := range sfs {
			_ = s.segs.Delete(stream, sf, idx)
		}
		return perSF, cpu, firstErr
	}
	// Commit every format's replica atomically, each recorded on the
	// tier its records were actually written to (the anchor's physical
	// tier, exactly what a reopen rebuilds from) — re-consulting the
	// placement map here could disagree with the writes if a Reconfigure
	// flipped a format mid-transcode, leaving a fast replica the
	// demotion pass would never enumerate.
	refs := make([]segment.Ref, len(sfs))
	tiers := make([]tier.ID, len(sfs))
	for i, sf := range sfs {
		refs[i] = segment.RefOf(stream, sf, idx)
		tiers[i], _ = s.segs.TierOf(refs[i])
	}
	s.manifest.CommitPlaced(refs, tiers)

	s.mu.Lock()
	defer s.mu.Unlock()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(s.next[stream]))
	if err := s.kv.Put(streamKeyPrefix+stream, buf[:]); err != nil {
		return perSF, cpu, err
	}
	return perSF, cpu, nil
}

// poolLocked returns the shared transcode pool, creating it on first use.
// Caller holds mu.
func (s *Server) poolLocked() *query.Pool {
	if s.pool == nil {
		par := s.Parallelism
		if par <= 0 {
			par = runtime.GOMAXPROCS(0)
		}
		s.pool = query.NewPool(par)
	}
	return s.pool
}

// SegmentsOf returns how many segments the stream holds.
func (s *Server) SegmentsOf(stream string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next[stream]
}

// StreamSegments returns every known stream with its committed segment
// count — live pipelines and batch-ingested streams alike. The HTTP API's
// /v1/streams endpoint serves this.
func (s *Server) StreamSegments() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.next))
	for name, n := range s.next {
		out[name] = n
	}
	return out
}

// bindingFor resolves one cascade stage for an epoch: the CF comes from the
// CURRENT configuration (operators always run at the latest derived
// consumption formats); the SF is the epoch's cheapest format with
// satisfiable fidelity, preferring the consumer's own subscription when the
// epoch is current (§7).
func (s *Server) bindingFor(ep *Epoch, current *core.Config, opName string, acc float64) (query.StageBinding, error) {
	cf, ownSF, err := current.BindingFor(opName, acc)
	if err != nil {
		return query.StageBinding{}, err
	}
	if ep.Cfg == current {
		return query.StageBinding{CF: cf, SF: ownSF}, nil
	}
	best := -1
	bestBytes := math.Inf(1)
	for i, sf := range ep.Cfg.Derivation.SFs {
		if !sf.SF.Satisfies(cf) {
			continue
		}
		if sf.Prof.BytesPerSec < bestBytes {
			best, bestBytes = i, sf.Prof.BytesPerSec
		}
	}
	if best < 0 {
		// The old epoch cannot satisfy this CF (it predates the operator):
		// fall back to its golden format and cap the CF at what it stores.
		g := ep.Cfg.Derivation.SFs[ep.Cfg.Derivation.Golden].SF
		capped := cf
		if !g.Satisfies(capped) {
			capped.Fidelity = intersectFidelity(capped.Fidelity, g.Fidelity)
		}
		return query.StageBinding{CF: capped, SF: g}, nil
	}
	return query.StageBinding{CF: cf, SF: ep.Cfg.Derivation.SFs[best].SF}, nil
}

// intersectFidelity returns the knob-wise minimum: the richest fidelity
// both arguments can supply.
func intersectFidelity(a, b format.Fidelity) format.Fidelity {
	out := a
	if b.Quality < out.Quality {
		out.Quality = b.Quality
	}
	if b.Crop < out.Crop {
		out.Crop = b.Crop
	}
	if b.Res < out.Res {
		out.Res = b.Res
	}
	if b.Sampling.Fraction() < out.Sampling.Fraction() {
		out.Sampling = b.Sampling
	}
	return out
}

// QueryResult is a server query's outcome: per-epoch results merged. It
// is the transport-agnostic store.Result — the same value type whichever
// side of a socket produced it (see internal/store).
type QueryResult = store.Result

// Query runs the cascade at the target accuracy over segments [seg0, seg1)
// of the stream, splitting the range by configuration epoch and resolving
// each stage's formats per epoch. It takes a snapshot of the segment
// manifest at entry and releases it on return, so the whole query — every
// stage, every span — observes one immutable segment set even while
// ingest and the erosion daemon run concurrently. Epoch spans execute
// concurrently on a worker pool (one span's operators consume while
// another span still retrieves), within each span every stage fans its
// segment retrievals across the same pool width, and each retrieval fans
// its segment's independent GOPs across the engine's decode pool; results
// merge in segment (and GOP position) order, so the output is identical
// to fully sequential execution.
//
// ctx bounds the query: cancellation (a remote client disconnecting, a
// deadline expiring) is observed between per-segment retrieval batches, so
// an abandoned query stops consuming the shared pool promptly and returns
// ctx.Err() — the contract the HTTP API layer depends on. nil is treated
// as context.Background().
func (s *Server) Query(ctx context.Context, stream string, cascade query.Cascade, opNames []string, acc float64, seg0, seg1 int) (QueryResult, error) {
	snap, err := s.Snapshot()
	if err != nil {
		return QueryResult{}, err
	}
	defer snap.Release()
	return s.QueryAt(ctx, snap, stream, cascade, opNames, acc, seg0, seg1)
}

// QueryAt runs the query against an explicitly held snapshot (see
// Snapshot). Callers that hold a snapshot across several queries get
// repeatable reads: segments eroded after the snapshot remain readable
// until the snapshot is released, and segments ingested after it stay
// invisible. Cancellation follows Query's contract: ctx is checked between
// spans and between per-segment batches, and a canceled query returns
// ctx.Err() promptly.
func (s *Server) QueryAt(ctx context.Context, snap *Snapshot, stream string, cascade query.Cascade, opNames []string, acc float64, seg0, seg1 int) (QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	epochs := snap.epochs
	if len(epochs) == 0 {
		return QueryResult{}, errors.New("server: no configuration installed")
	}
	current := epochs[len(epochs)-1].Cfg
	s.mu.Lock()
	cache := s.cache
	resStore := s.results
	s.mu.Unlock()
	// Split [seg0, seg1) into epoch-homogeneous ranges.
	type span struct {
		ep     *Epoch
		lo, hi int
	}
	var spans []span
	for seg := seg0; seg < seg1; {
		ep := epochOf(epochs, stream, seg)
		hi := seg1
		for nxt := seg + 1; nxt < seg1; nxt++ {
			if epochOf(epochs, stream, nxt) != ep {
				hi = nxt
				break
			}
		}
		spans = append(spans, span{ep, seg, hi})
		seg = hi
	}

	// Resolve every span's binding up front: bindings are cheap, and a
	// resolution error surfaces before any retrieval work is scheduled.
	bindings := make([]query.Binding, len(spans))
	for i, sp := range spans {
		for _, name := range opNames {
			sb, err := s.bindingFor(sp.ep, current, name, acc)
			if err != nil {
				return QueryResult{}, err
			}
			bindings[i] = append(bindings[i], sb)
		}
	}

	// The worker budget bounds TOTAL concurrency, so it is split between
	// the two fan-out levels: spanPar spans run at once, each with
	// workers/spanPar workers for its per-stage retrieval and consumption
	// fan-out (spanPar * engine workers <= workers).
	workers := s.queryWorkers(current)
	spanPar := 1
	if workers > 1 && len(spans) > 1 {
		spanPar = min(workers, len(spans))
	}
	eng := query.Engine{
		Store: snap.view, Cache: cache, Results: resStore, Workers: max(workers/spanPar, 1),
		// A damaged replica rebuilds from its fallback ancestor and the
		// query answers degraded; the serve is counted and the replica
		// queued for background repair.
		Rebuild:    s.rebuildReplica,
		OnDegraded: s.onDegraded,
	}
	results := make([]query.Result, len(spans))
	errs := make([]error, len(spans))
	if spanPar > 1 {
		pool := query.NewPool(spanPar)
		for i := range spans {
			i := i
			pool.Go(func() {
				results[i], errs[i] = eng.Run(ctx, stream, cascade, bindings[i], spans[i].lo, spans[i].hi)
			})
		}
		pool.Wait()
	} else {
		for i := range spans {
			if err := ctx.Err(); err != nil {
				return QueryResult{}, err
			}
			results[i], errs[i] = eng.Run(ctx, stream, cascade, bindings[i], spans[i].lo, spans[i].hi)
			if errs[i] != nil {
				break
			}
		}
	}
	// A canceled query reports the cancellation, not whichever span error
	// the abandonment happened to produce first.
	if err := ctx.Err(); err != nil {
		return QueryResult{}, err
	}
	var out QueryResult
	for i := range spans {
		if errs[i] != nil {
			return out, errs[i]
		}
		out.Results = append(out.Results, results[i])
	}
	return out, nil
}

// queryWorkers resolves the effective worker-pool width: the server-level
// override wins, then the configuration's Runtime.QueryWorkers, then
// GOMAXPROCS. Negative values force sequential execution.
func (s *Server) queryWorkers(cfg *core.Config) int {
	w := s.QueryWorkers
	if w == 0 && cfg != nil {
		w = cfg.Runtime.QueryWorkers
	}
	if w < 0 {
		return 1
	}
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// DemotePass migrates committed segment replicas fast→cold: first every
// fast-tier replica at least DemoteAfterDays old (when that knob is set),
// then — if the fast tier still exceeds FastTierBytes — oldest replicas
// until the budget holds, in deterministic oldest-first order. Each
// replica migrates via crash-safe copy-then-delete and flips its manifest
// tier only once durably cold. Concurrent queries are unaffected: reads
// fall through fast→cold, and demoted bytes are identical, so even cached
// frames stay valid. It returns the number of replicas demoted.
func (s *Server) DemotePass(age AgeFunc) (int, error) {
	s.erodeMu.Lock()
	defer s.erodeMu.Unlock()
	s.mu.Lock()
	fastBytes := s.fastBytes
	afterDays := s.demoteAfterDays
	s.mu.Unlock()
	if fastBytes == 0 && afterDays == 0 {
		return 0, nil
	}
	demoted := 0
	demote := func(r segment.Ref) error {
		if err := s.segs.DemoteRef(r); err != nil {
			return fmt.Errorf("server: demoting %v: %w", r, err)
		}
		s.manifest.SetTier(r, tier.Cold)
		demoted++
		// Counted per replica, not folded at return: a later failure in
		// the same pass must not erase the migrations that did happen.
		s.mu.Lock()
		s.demotions++
		s.mu.Unlock()
		return nil
	}
	refs := s.manifest.RefsInTier(tier.Fast)
	if afterDays > 0 {
		kept := refs[:0]
		for _, r := range refs {
			if age(r.Stream, r.Idx) >= afterDays {
				if err := demote(r); err != nil {
					return demoted, err
				}
				continue
			}
			kept = append(kept, r)
		}
		refs = kept
	}
	if fastBytes > 0 {
		for _, r := range refs {
			if s.kv.TierBytes(tier.Fast) <= fastBytes {
				break
			}
			if err := demote(r); err != nil {
				return demoted, err
			}
		}
	}
	return demoted, nil
}

// Erode applies every epoch's erosion plan to the segments it governs.
// ageOfSegment maps a stream's segment index to its age in days. Deletion
// is logical-first: an eroded segment leaves the manifest (and therefore
// every future query snapshot and the retrieval cache) immediately, while
// its records are physically deleted only once no in-flight query snapshot
// can still read them. The background erosion daemon (StartErosionDaemon)
// runs exactly this per stream on every pass.
func (s *Server) Erode(stream string, ageOfSegment func(idx int) int) (int, error) {
	// Serialised against demotion passes: erosion physically deletes
	// records that a concurrent fast→cold copy could otherwise resurrect.
	s.erodeMu.Lock()
	defer s.erodeMu.Unlock()
	s.mu.Lock()
	epochs := append([]*Epoch(nil), s.epochs...)
	resStore := s.results
	s.mu.Unlock()
	e := erode.Eroder{Store: manifestSet{m: s.manifest, store: s.segs, results: resStore}}
	total := 0
	// Eroded segments must not be served from cache — including the ones a
	// partially-failed Apply already deleted, so the invalidation is
	// deferred rather than tied to the success path.
	defer func() {
		if total > 0 {
			s.mu.Lock()
			if s.cache != nil {
				s.cache.Invalidate(stream)
			}
			s.mu.Unlock()
		}
	}()
	for _, ep := range epochs {
		if ep.Cfg.Erosion == nil {
			continue
		}
		d := ep.Cfg.Derivation
		sfs := ep.Cfg.StorageFormats()
		// Only this epoch's segments: wrap the age function to exclude
		// foreign segments by reporting age 0 (never eroded, never expired).
		since := ep.Since[stream]
		until := math.MaxInt
		for _, later := range epochs {
			if later.ID > ep.ID {
				if v, ok := later.Since[stream]; ok && v < until {
					until = v
				}
			}
		}
		age := func(idx int) int {
			if idx < since || idx >= until {
				return 0
			}
			return ageOfSegment(idx)
		}
		n, err := e.Apply(stream, sfs, d.Golden, ep.Cfg.Erosion, age)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Stats reports the underlying store occupancy (with the per-tier
// breakdown and demotion count of the tiered engine), the retrieval
// cache's hit/miss/evict counters (zero when the cache is disabled), and
// the live lifecycle's counters: streaming-ingest queue occupancy,
// erosion-daemon passes, and snapshot activity.
func (s *Server) Stats() kvstore.Stats {
	st := s.kv.Stats()
	cs := s.CacheStats()
	st.CacheHits = cs.Hits
	st.CacheMisses = cs.Misses
	st.CacheEvictions = cs.Evictions
	st.CacheBytes = cs.Bytes
	rs := s.ResultsStats()
	st.ResultsHits = rs.Hits
	st.ResultsMisses = rs.Misses
	st.ResultsBytes = rs.Bytes
	st.ResultsEntries = rs.Entries
	st.ResultsEvictions = rs.Evictions
	st.ResultsInvalidations = rs.Invalidations
	ms := s.manifest.Stats()
	st.ActiveSnapshots = ms.ActiveSnapshots
	st.SnapshotsTaken = ms.SnapshotsTaken
	st.FastSegments = ms.FastLive
	st.ColdSegments = ms.ColdLive
	s.mu.Lock()
	daemon := s.daemon
	past := s.pastErodePasses
	st.Demotions = s.demotions
	for _, live := range s.streams {
		st.IngestQueued += live.Stats().Queued
	}
	s.mu.Unlock()
	st.ErosionPasses = past + daemon.Stats().Passes
	st.DegradedServes = s.heal.degradedServes.Load()
	st.Repairs = s.heal.repairs.Load()
	st.RepairsFailed = s.heal.repairsFailed.Load()
	st.ScrubPasses = s.heal.scrubPasses.Load()
	st.RepairPending = s.RepairPending()
	return st
}

// Compact reclaims garbage space in the underlying store (e.g., after
// erosion deleted many segments), compacting every shard of both tiers
// in parallel on the shared transcode/query pool — shards lock
// independently, so compactions proceed concurrently up to the pool's
// width.
func (s *Server) Compact() error {
	s.mu.Lock()
	pool := s.poolLocked()
	s.mu.Unlock()
	return s.kv.CompactShards(pool.Batch())
}
