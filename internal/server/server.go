// Package server is the operational façade over the whole store: it owns
// the database directory, tracks configuration epochs, ingests streams
// concurrently, runs queries, and applies erosion.
//
// Epochs implement §7's "adapting to changes in operators and hardware":
// reconfiguring (after adding operators or accuracy levels) opens a new
// epoch whose storage formats apply only to forthcoming video — transcoding
// existing on-disk video would be expensive — while queries over older
// epochs subscribe each consumer to the cheapest existing storage format
// with satisfiable fidelity. Operators on aged video therefore run at their
// designated accuracies, albeit possibly slower than optimal, exactly as
// the paper prescribes.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/erode"
	"repro/internal/format"
	"repro/internal/ingest"
	"repro/internal/kvstore"
	"repro/internal/query"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

// Epoch is one configuration generation: it governs segments ingested while
// it was current.
type Epoch struct {
	ID    int
	Since map[string]int // per stream: first segment index under this epoch
	Cfg   *core.Config
}

// Server owns one store directory. All methods are safe for concurrent use.
type Server struct {
	mu     sync.Mutex
	kv     *kvstore.Store
	segs   *segment.Store
	epochs []*Epoch
	next   map[string]int // per stream: next segment index to ingest
	// Parallelism bounds concurrent per-format transcodes during ingest;
	// zero selects GOMAXPROCS.
	Parallelism int
}

const (
	epochKeyPrefix  = "meta/epoch/"
	streamKeyPrefix = "meta/stream/"
)

// Open opens (creating if needed) a server over the given directory,
// restoring epochs and stream positions from the store's metadata.
func Open(dir string) (*Server, error) {
	kv, err := kvstore.Open(filepath.Join(dir, "segments"), kvstore.Options{})
	if err != nil {
		return nil, err
	}
	s := &Server{kv: kv, segs: segment.NewStore(kv), next: map[string]int{}}
	for _, k := range kv.Keys(epochKeyPrefix) {
		b, err := kv.Get(k)
		if err != nil {
			kv.Close()
			return nil, err
		}
		ep, err := decodeEpoch(b)
		if err != nil {
			kv.Close()
			return nil, fmt.Errorf("server: epoch %s: %w", k, err)
		}
		s.epochs = append(s.epochs, ep)
	}
	sort.Slice(s.epochs, func(i, j int) bool { return s.epochs[i].ID < s.epochs[j].ID })
	for _, k := range kv.Keys(streamKeyPrefix) {
		b, err := kv.Get(k)
		if err != nil || len(b) != 8 {
			kv.Close()
			return nil, fmt.Errorf("server: stream position %s corrupt", k)
		}
		s.next[k[len(streamKeyPrefix):]] = int(binary.BigEndian.Uint64(b))
	}
	return s, nil
}

// Close releases the store.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kv.Close()
}

func encodeEpoch(ep *Epoch) ([]byte, error) {
	cfg, err := ep.Cfg.MarshalBytes()
	if err != nil {
		return nil, err
	}
	// Header: id, #streams, then (len,name,since) entries, then the config.
	out := binary.BigEndian.AppendUint32(nil, uint32(ep.ID))
	out = binary.BigEndian.AppendUint32(out, uint32(len(ep.Since)))
	names := make([]string, 0, len(ep.Since))
	for n := range ep.Since {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out = binary.BigEndian.AppendUint32(out, uint32(len(n)))
		out = append(out, n...)
		out = binary.BigEndian.AppendUint64(out, uint64(ep.Since[n]))
	}
	return append(out, cfg...), nil
}

func decodeEpoch(b []byte) (*Epoch, error) {
	if len(b) < 8 {
		return nil, errors.New("short epoch record")
	}
	ep := &Epoch{ID: int(binary.BigEndian.Uint32(b)), Since: map[string]int{}}
	n := int(binary.BigEndian.Uint32(b[4:]))
	off := 8
	for i := 0; i < n; i++ {
		if off+4 > len(b) {
			return nil, errors.New("truncated epoch record")
		}
		l := int(binary.BigEndian.Uint32(b[off:]))
		off += 4
		if off+l+8 > len(b) {
			return nil, errors.New("truncated epoch record")
		}
		name := string(b[off : off+l])
		off += l
		ep.Since[name] = int(binary.BigEndian.Uint64(b[off:]))
		off += 8
	}
	cfg, err := core.FromBytes(b[off:])
	if err != nil {
		return nil, err
	}
	ep.Cfg = cfg
	return ep, nil
}

// Reconfigure installs a new configuration epoch. Forthcoming segments of
// every stream are ingested under it; already-stored segments remain under
// their original epochs (§7).
func (s *Server) Reconfigure(cfg *core.Config) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep := &Epoch{ID: len(s.epochs), Since: map[string]int{}, Cfg: cfg}
	for stream, n := range s.next {
		ep.Since[stream] = n
	}
	b, err := encodeEpoch(ep)
	if err != nil {
		return err
	}
	if err := s.kv.Put(fmt.Sprintf("%s%08d", epochKeyPrefix, ep.ID), b); err != nil {
		return err
	}
	s.epochs = append(s.epochs, ep)
	return nil
}

// Current returns the active configuration, or nil before the first
// Reconfigure.
func (s *Server) Current() *core.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.epochs) == 0 {
		return nil
	}
	return s.epochs[len(s.epochs)-1].Cfg
}

// Epochs returns the installed epochs, oldest first.
func (s *Server) Epochs() []*Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Epoch(nil), s.epochs...)
}

// epochOf returns the epoch governing the given segment of the stream.
func (s *Server) epochOf(stream string, seg int) *Epoch {
	var out *Epoch
	for _, ep := range s.epochs {
		since, ok := ep.Since[stream]
		if !ok {
			since = 0 // stream unknown when the epoch opened: epoch governs from 0
		}
		if seg >= since {
			out = ep
		}
	}
	return out
}

// Ingest appends n segments of the scene to the named stream under the
// current epoch, transcoding storage formats concurrently.
func (s *Server) Ingest(scene vidsim.Scene, stream string, n int) (ingest.Stats, error) {
	s.mu.Lock()
	if len(s.epochs) == 0 {
		s.mu.Unlock()
		return ingest.Stats{}, errors.New("server: no configuration installed; call Reconfigure first")
	}
	cfg := s.epochs[len(s.epochs)-1].Cfg
	start := s.next[stream]
	s.mu.Unlock()

	par := s.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	ing := parallelIngester{store: s.segs, sfs: cfg.StorageFormats(), parallel: par}
	st, err := ing.stream(scene, stream, start, n)
	if err != nil {
		return st, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next[stream] = start + n
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(s.next[stream]))
	if err := s.kv.Put(streamKeyPrefix+stream, buf[:]); err != nil {
		return st, err
	}
	return st, nil
}

// SegmentsOf returns how many segments the stream holds.
func (s *Server) SegmentsOf(stream string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next[stream]
}

// bindingFor resolves one cascade stage for an epoch: the CF comes from the
// CURRENT configuration (operators always run at the latest derived
// consumption formats); the SF is the epoch's cheapest format with
// satisfiable fidelity, preferring the consumer's own subscription when the
// epoch is current (§7).
func (s *Server) bindingFor(ep *Epoch, current *core.Config, opName string, acc float64) (query.StageBinding, error) {
	cf, ownSF, err := current.BindingFor(opName, acc)
	if err != nil {
		return query.StageBinding{}, err
	}
	if ep.Cfg == current {
		return query.StageBinding{CF: cf, SF: ownSF}, nil
	}
	best := -1
	bestBytes := math.Inf(1)
	for i, sf := range ep.Cfg.Derivation.SFs {
		if !sf.SF.Satisfies(cf) {
			continue
		}
		if sf.Prof.BytesPerSec < bestBytes {
			best, bestBytes = i, sf.Prof.BytesPerSec
		}
	}
	if best < 0 {
		// The old epoch cannot satisfy this CF (it predates the operator):
		// fall back to its golden format and cap the CF at what it stores.
		g := ep.Cfg.Derivation.SFs[ep.Cfg.Derivation.Golden].SF
		capped := cf
		if !g.Satisfies(capped) {
			capped.Fidelity = intersectFidelity(capped.Fidelity, g.Fidelity)
		}
		return query.StageBinding{CF: capped, SF: g}, nil
	}
	return query.StageBinding{CF: cf, SF: ep.Cfg.Derivation.SFs[best].SF}, nil
}

// intersectFidelity returns the knob-wise minimum: the richest fidelity
// both arguments can supply.
func intersectFidelity(a, b format.Fidelity) format.Fidelity {
	out := a
	if b.Quality < out.Quality {
		out.Quality = b.Quality
	}
	if b.Crop < out.Crop {
		out.Crop = b.Crop
	}
	if b.Res < out.Res {
		out.Res = b.Res
	}
	if b.Sampling.Fraction() < out.Sampling.Fraction() {
		out.Sampling = b.Sampling
	}
	return out
}

// QueryResult is a server query's outcome: per-epoch results merged.
type QueryResult struct {
	Results []query.Result
}

// Speed returns the overall query speed across epochs.
func (q QueryResult) Speed() float64 {
	var vid, sec float64
	for _, r := range q.Results {
		vid += r.VideoSeconds
		sec += r.VirtualSeconds
	}
	if sec <= 0 {
		return 0
	}
	return vid / sec
}

// Detections returns all final-stage detections across epochs.
func (q QueryResult) Detections() []query.Result {
	return q.Results
}

// Query runs the cascade at the target accuracy over segments [seg0, seg1)
// of the stream, splitting the range by configuration epoch and resolving
// each stage's formats per epoch.
func (s *Server) Query(stream string, cascade query.Cascade, opNames []string, acc float64, seg0, seg1 int) (QueryResult, error) {
	s.mu.Lock()
	if len(s.epochs) == 0 {
		s.mu.Unlock()
		return QueryResult{}, errors.New("server: no configuration installed")
	}
	current := s.epochs[len(s.epochs)-1].Cfg
	// Split [seg0, seg1) into epoch-homogeneous ranges.
	type span struct {
		ep     *Epoch
		lo, hi int
	}
	var spans []span
	for seg := seg0; seg < seg1; {
		ep := s.epochOf(stream, seg)
		hi := seg1
		for nxt := seg + 1; nxt < seg1; nxt++ {
			if s.epochOf(stream, nxt) != ep {
				hi = nxt
				break
			}
		}
		spans = append(spans, span{ep, seg, hi})
		seg = hi
	}
	s.mu.Unlock()

	eng := query.Engine{Store: s.segs}
	var out QueryResult
	for _, sp := range spans {
		var binding query.Binding
		for _, name := range opNames {
			sb, err := s.bindingFor(sp.ep, current, name, acc)
			if err != nil {
				return out, err
			}
			binding = append(binding, sb)
		}
		res, err := eng.Run(stream, cascade, binding, sp.lo, sp.hi)
		if err != nil {
			return out, err
		}
		out.Results = append(out.Results, res)
	}
	return out, nil
}

// Erode applies every epoch's erosion plan to the segments it governs.
// ageOfSegment maps a stream's segment index to its age in days.
func (s *Server) Erode(stream string, ageOfSegment func(idx int) int) (int, error) {
	s.mu.Lock()
	epochs := append([]*Epoch(nil), s.epochs...)
	s.mu.Unlock()
	e := erode.Eroder{Store: s.segs}
	total := 0
	for _, ep := range epochs {
		if ep.Cfg.Erosion == nil {
			continue
		}
		d := ep.Cfg.Derivation
		sfs := ep.Cfg.StorageFormats()
		// Only this epoch's segments: wrap the age function to exclude
		// foreign segments by reporting age 0 (never eroded, never expired).
		since := ep.Since[stream]
		until := math.MaxInt
		for _, later := range epochs {
			if later.ID > ep.ID {
				if v, ok := later.Since[stream]; ok && v < until {
					until = v
				}
			}
		}
		age := func(idx int) int {
			if idx < since || idx >= until {
				return 0
			}
			return ageOfSegment(idx)
		}
		n, err := e.Apply(stream, sfs, d.Golden, ep.Cfg.Erosion, age)
		if err != nil {
			return total, err
		}
		total += n
	}
	return total, nil
}

// Stats reports the underlying store occupancy.
func (s *Server) Stats() kvstore.Stats {
	return s.kv.Stats()
}

// Compact reclaims garbage space in the underlying store (e.g., after
// erosion deleted many segments).
func (s *Server) Compact() error { return s.kv.Compact() }

// parallelIngester transcodes each segment's storage formats concurrently.
type parallelIngester struct {
	store    *segment.Store
	sfs      []format.StorageFormat
	parallel int
}

func (pi parallelIngester) stream(scene vidsim.Scene, stream string, seg0, n int) (ingest.Stats, error) {
	src := vidsim.NewSource(scene)
	stats := ingest.Stats{PerSF: make([]ingest.SFStats, len(pi.sfs))}
	for i := range pi.sfs {
		stats.PerSF[i].SF = pi.sfs[i]
	}
	sem := make(chan struct{}, pi.parallel)
	for si := 0; si < n; si++ {
		idx := seg0 + si
		full := src.Clip(idx*segment.Frames, segment.Frames)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for fi := range pi.sfs {
			wg.Add(1)
			sem <- struct{}{}
			go func(fi int) {
				defer wg.Done()
				defer func() { <-sem }()
				one := ingest.Ingester{Store: pi.store, SFs: pi.sfs[fi : fi+1]}
				bytes, cpu, err := one.TranscodeSegment(full, stream, pi.sfs[fi], idx)
				mu.Lock()
				defer mu.Unlock()
				if err != nil && firstErr == nil {
					firstErr = err
					return
				}
				stats.PerSF[fi].Bytes += bytes
				stats.PerSF[fi].CPUSeconds += cpu
				stats.CPUSeconds += cpu
			}(fi)
		}
		wg.Wait()
		if firstErr != nil {
			return stats, firstErr
		}
		stats.Segments++
	}
	return stats, nil
}
