// The in-process implementation of the transport-agnostic store boundary
// (internal/store): the Server and its Snapshot satisfy store.Store and
// store.Snapshot directly, so the engine packages (query, retrieve, sub)
// depend only on the interface and cannot tell this store from a remote
// peer. AdoptSegment is the replication primitive the cluster layer's
// follower pulls land on.

package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/query"
	"repro/internal/segment"
	"repro/internal/store"
	"repro/internal/tier"
)

var (
	_ store.Store    = (*Server)(nil)
	_ store.Snapshot = (*Snapshot)(nil)
)

// Pin implements store.Store: it freezes the current server state exactly
// like Snapshot (which it wraps), typed to the transport-agnostic
// interface.
func (s *Server) Pin() (store.Snapshot, error) { return s.Snapshot() }

// Evaluate implements store.Store: resolve the cascade by name, apply the
// request defaults, and run the full QueryAt path (epoch splitting,
// binding resolution, span parallelism, degraded fallback) against the
// pinned snapshot.
func (s *Server) Evaluate(ctx context.Context, snap store.Snapshot, req store.Request) (store.Result, error) {
	sn, ok := snap.(*Snapshot)
	if !ok {
		return store.Result{}, fmt.Errorf("server: snapshot %T was not pinned by this store", snap)
	}
	name := req.Query
	if name == "" {
		name = "A"
	}
	cascade, opNames, err := query.ByName(name)
	if err != nil {
		return store.Result{}, err
	}
	acc := req.Accuracy
	if acc == 0 {
		acc = 0.9
	}
	return s.QueryAt(ctx, sn, req.Stream, cascade, opNames, acc, req.Seg0, req.Seg1)
}

// AdoptedReplica is one storage-format replica of a segment in transit
// between nodes — replication's unit of transfer. Exactly one of Enc
// (encoded formats) and Frames (raw formats) is set, matching Raw.
type AdoptedReplica struct {
	SFKey  string
	Raw    bool
	Enc    *codec.Encoded
	Frames []*frame.Frame
}

// AdoptSegment commits a segment replicated from a peer node: every
// replica's records are written physically first (through the adopting
// node's own tier placement), then the whole segment commits to the
// manifest in one atomic step — the same visibility contract as ingest,
// so a query racing the adoption sees all of the segment or none of it —
// and the stream's position advances (persisted, so the adoption survives
// a reopen). Idempotent: a segment whose replicas are all already
// committed is skipped, which is what makes replication pulls safely
// re-runnable.
func (s *Server) AdoptSegment(stream string, idx int, replicas []AdoptedReplica) error {
	if stream == "" || len(replicas) == 0 {
		return errors.New("server: adopt needs a stream and at least one replica")
	}
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return errors.New("server: closed")
	}
	refs := make([]segment.Ref, len(replicas))
	committed := true
	for i, rep := range replicas {
		refs[i] = segment.Ref{Stream: stream, SFKey: rep.SFKey, Raw: rep.Raw, Idx: idx}
		if !s.manifest.Contains(refs[i]) {
			committed = false
		}
	}
	if committed {
		return nil
	}
	for i, rep := range replicas {
		var err error
		if rep.Raw {
			err = s.segs.PutRawRef(refs[i], rep.Frames)
		} else {
			if rep.Enc == nil {
				err = fmt.Errorf("server: adopt %s/%s/%d: encoded replica without container", stream, rep.SFKey, idx)
			} else {
				err = s.segs.PutEncodedRef(refs[i], rep.Enc)
			}
		}
		if err != nil {
			// The segment never commits: the partial records are invisible,
			// and cleaning them up keeps a reopen's manifest rebuild from
			// resurrecting a half-adopted segment.
			for _, r := range refs[:i+1] {
				_ = s.segs.DeleteRef(r)
			}
			return err
		}
	}
	tiers := make([]tier.ID, len(refs))
	for i := range refs {
		tiers[i], _ = s.segs.TierOf(refs[i])
	}
	s.manifest.CommitPlaced(refs, tiers)

	s.mu.Lock()
	defer s.mu.Unlock()
	if idx+1 > s.next[stream] {
		s.next[stream] = idx + 1
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(s.next[stream]))
		if err := s.kv.Put(streamKeyPrefix+stream, buf[:]); err != nil {
			return err
		}
	}
	return nil
}
