package server

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/erode"
	"repro/internal/format"
	"repro/internal/kvstore"
	"repro/internal/ops"
	"repro/internal/profile"
	"repro/internal/segment"
	"repro/internal/tier"
	"repro/internal/vidsim"
)

var (
	// healLeafSF is the served derived format — encoded, fast tier, the
	// typical victim of bit rot.
	healLeafSF = format.StorageFormat{
		Fidelity: format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: 200, Sampling: format.Sampling{Num: 1, Den: 6}},
		Coding:   format.Coding{Speed: format.SpeedFast, KeyframeI: 10},
	}
	// healGoldenSF is a lossless full-fidelity raw golden copy: repairs
	// derived from it are byte-identical to fresh ingest.
	healGoldenSF = format.StorageFormat{
		Fidelity: format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: 720, Sampling: format.Sampling{Num: 1, Den: 1}},
		Coding:   format.RawCoding,
	}
)

// selfhealConfig hand-builds a two-format configuration — a subscribed
// encoded leaf on the fast tier and a lossless raw golden on cold — so the
// self-healing tests can assert byte-identity of repaired replicas against
// fresh ingest (derived configurations encode their golden, which makes
// repairs best-effort rather than bit-exact). Caching and result
// materialization are disabled so every query actually reads the replicas
// under test.
func selfhealConfig() *core.Config {
	d := &core.StorageDerivation{
		Choices: []core.ConsumptionChoice{{
			Consumer: core.Consumer{Op: ops.Motion{}, Target: 0.9},
			CF:       format.ConsumptionFormat{Fidelity: healLeafSF.Fidelity},
			Profile:  profile.CFProfile{Fidelity: healLeafSF.Fidelity, Accuracy: 0.95, Speed: 50},
		}},
		Subs: []int{0},
		SFs: []core.DerivedSF{
			{SF: healLeafSF, Prof: profile.SFProfile{SF: healLeafSF, BytesPerSec: 1000, IngestSec: 0.01},
				Placement: core.PlaceFast, Consumers: []int{0}},
			{SF: healGoldenSF, Prof: profile.SFProfile{SF: healGoldenSF, BytesPerSec: 10000, IngestSec: 0.001},
				Placement: core.PlaceCold},
		},
		Golden: 1,
	}
	return &core.Config{
		Derivation: d,
		Runtime:    core.Runtime{CacheBytes: -1, ResultsBytes: -1},
	}
}

func openSelfhealServer(t *testing.T, segments int) *Server {
	t.Helper()
	s, err := OpenWith(t.TempDir(), Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reconfigure(selfhealConfig()); err != nil {
		t.Fatal(err)
	}
	sc, err := vidsim.DatasetByName("jackson")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(sc, "cam", segments); err != nil {
		t.Fatal(err)
	}
	return s
}

func assertStoreClean(t *testing.T, s *Server) {
	t.Helper()
	corrupt, meta, err := s.segs.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 0 || len(meta) != 0 {
		t.Fatalf("store not clean: %d corrupt replicas, %d damaged meta keys", len(corrupt), len(meta))
	}
}

// TestSelfHealEndToEnd is the acceptance walk: corrupt a derived replica,
// query through it byte-identically via the fallback ancestor (no client
// error), let the background repair triggered by the degraded serve
// re-derive it, and verify post-repair reads come from a repaired fast
// copy whose bytes equal fresh ingest.
func TestSelfHealEndToEnd(t *testing.T) {
	const segments = 3
	s := openSelfhealServer(t, segments)
	defer s.Close()
	cascade, names := motionCascade()
	ref, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, segments)
	if err != nil {
		t.Fatal(err)
	}
	freshEnc, err := s.segs.GetEncoded("cam", healLeafSF, 1)
	if err != nil {
		t.Fatal(err)
	}
	fresh := freshEnc.Marshal()

	damaged := segment.RefOf("cam", healLeafSF, 1)
	if err := s.segs.DamageRef(damaged); err != nil {
		t.Fatal(err)
	}

	// The query still answers, byte-identically, through the golden
	// fallback — and counts the degraded serve.
	got, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, segments)
	if err != nil {
		t.Fatalf("query through damaged replica: %v", err)
	}
	sameDetections(t, ref, got, "degraded serve")
	if st := s.Stats(); st.DegradedServes == 0 {
		t.Fatalf("degraded serve not counted: %+v", st)
	}

	// The degraded serve queued a background repair; wait for it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := s.Stats()
		if st.RepairPending == 0 && st.Repairs >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background repair never completed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The repaired replica is byte-identical to fresh ingest, back on its
	// fast tier, and the whole store verifies clean.
	healedEnc, err := s.segs.GetEncoded("cam", healLeafSF, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(healedEnc.Marshal(), fresh) {
		t.Fatal("repaired replica differs from fresh ingest")
	}
	if tr, ok := s.segs.TierOf(damaged); !ok || tr != tier.Fast {
		t.Fatalf("repaired replica on tier %v (present=%v), want fast", tr, ok)
	}
	assertStoreClean(t, s)

	// Post-repair queries read the healed fast copy: identical results,
	// no further degraded serves.
	before := s.Stats().DegradedServes
	again, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, segments)
	if err != nil {
		t.Fatal(err)
	}
	sameDetections(t, ref, again, "post-repair read")
	if after := s.Stats().DegradedServes; after != before {
		t.Fatalf("post-repair query served degraded: %d -> %d", before, after)
	}
	if s.Degraded() {
		t.Fatal("server still reports degraded after repair")
	}
}

// TestScrubPassHealsDamage: a scrub pass finds and re-derives a corrupt
// replica without any query touching it, and the erosion daemon's rotation
// runs the same scrub on its tick.
func TestScrubPassHealsDamage(t *testing.T) {
	const segments = 2
	s := openSelfhealServer(t, segments)
	defer s.Close()

	damaged := segment.RefOf("cam", healLeafSF, 0)
	if err := s.segs.DamageRef(damaged); err != nil {
		t.Fatal(err)
	}
	rep, err := s.ScrubPass()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damaged() != 1 || len(rep.Repaired) != 1 || len(rep.Failed) != 0 {
		t.Fatalf("scrub report: %d damaged, %d repaired, %d failed", rep.Damaged(), len(rep.Repaired), len(rep.Failed))
	}
	if st := s.Stats(); st.ScrubPasses != 1 || st.Repairs != 1 {
		t.Fatalf("scrub stats: %+v", st)
	}
	if s.Degraded() {
		t.Fatal("server degraded after a clean scrub")
	}
	assertStoreClean(t, s)

	// The daemon rotation: damage again, fire a tick, the scrub heals it.
	if err := s.segs.DamageRef(damaged); err != nil {
		t.Fatal(err)
	}
	clock := erode.NewManualClock()
	d, err := s.StartErosionDaemon(time.Hour, clock, func(string, int) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	clock.Fire()
	clock.Fire() // the second tick starting guarantees the first pass finished
	if got := d.Stats().ScrubPasses; got < 1 {
		t.Fatalf("daemon ran %d scrub passes, want >= 1", got)
	}
	if err := s.StopErosionDaemon(); err != nil {
		t.Fatal(err)
	}
	assertStoreClean(t, s)
	if st := s.Stats(); st.ScrubPasses < 3 {
		t.Fatalf("scrub passes not folded into stats: %+v", st)
	}
}

// TestUnhealableDamageReportsDegraded: when the golden replica itself is
// damaged there is no richer ancestor to rebuild from; the scrub reports
// the failure and the server stays degraded until an operator intervenes.
func TestUnhealableDamageReportsDegraded(t *testing.T) {
	s := openSelfhealServer(t, 1)
	defer s.Close()
	if err := s.segs.DamageRef(segment.RefOf("cam", healGoldenSF, 0)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.ScrubPass()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Failed) != 1 || len(rep.Repaired) != 0 {
		t.Fatalf("scrub report: %d failed, %d repaired, want 1 / 0", len(rep.Failed), len(rep.Repaired))
	}
	if !s.Degraded() {
		t.Fatal("server not degraded with an unhealable golden replica")
	}
	if st := s.Stats(); st.RepairsFailed != 1 {
		t.Fatalf("failed repair not counted: %+v", st)
	}
	// The derived leaf still serves queries: redundancy is reduced, reads
	// are not.
	cascade, names := motionCascade()
	if _, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, 1); err != nil {
		t.Fatalf("query with damaged golden: %v", err)
	}
}

// TestSelfHealUnderConcurrency runs ingest, queries, a damager corrupting
// live replicas, and the demote/erode/scrub daemon rotation all at once
// (the -race gate covers this package): every query answers without error,
// results re-verify byte-identically once quiescent, and a final scrub
// leaves the store clean.
func TestSelfHealUnderConcurrency(t *testing.T) {
	s, err := OpenWith(t.TempDir(), Options{Shards: 2, DemoteAfterDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Reconfigure(selfhealConfig()); err != nil {
		t.Fatal(err)
	}
	segments := 4
	if testing.Short() {
		segments = 2
	}
	if _, err := s.StartStream("cam"); err != nil {
		t.Fatal(err)
	}
	age := func(_ string, idx int) int { return s.SegmentsOf("cam") - idx }
	clock := erode.NewManualClock()
	if _, err := s.StartErosionDaemon(time.Hour, clock, age); err != nil {
		t.Fatal(err)
	}
	fireDone := make(chan struct{})
	var firer sync.WaitGroup
	firer.Add(1)
	go func() {
		defer firer.Done()
		for {
			select {
			case <-fireDone:
				return
			default:
				if !clock.TryFire() {
					time.Sleep(time.Millisecond)
				}
			}
		}
	}()

	// Damager: keep corrupting the leaf replica of whatever segments exist.
	damageDone := make(chan struct{})
	var damager sync.WaitGroup
	damager.Add(1)
	go func() {
		defer damager.Done()
		for i := 0; ; i++ {
			select {
			case <-damageDone:
				return
			default:
			}
			if n := s.SegmentsOf("cam"); n > 0 {
				// Damage may race a demotion moving the replica between
				// tiers; a miss is fine, the next round hits.
				_ = s.segs.DamageRef(segment.RefOf("cam", healLeafSF, i%n))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var feeder sync.WaitGroup
	feeder.Add(1)
	go func() {
		defer feeder.Done()
		sc, err := vidsim.DatasetByName("jackson")
		if err != nil {
			t.Error(err)
			return
		}
		src := vidsim.NewSource(sc)
		live := s.Stream("cam")
		for seg := 0; seg < segments; seg++ {
			if err := live.Submit(src.Clip(seg*segFrames, segFrames)); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	type observed struct {
		snap *Snapshot
		n    int
		res  QueryResult
	}
	cascade, names := motionCascade()
	var obsMu sync.Mutex
	var observations []observed
	ingestDone := make(chan struct{})
	var queriers sync.WaitGroup
	for q := 0; q < 2; q++ {
		queriers.Add(1)
		go func() {
			defer queriers.Done()
			kept := 0
			for {
				select {
				case <-ingestDone:
					return
				default:
				}
				snap, err := s.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				n := snap.Segments("cam")
				if n == 0 {
					snap.Release()
					continue
				}
				res, err := s.QueryAt(context.Background(), snap, "cam", cascade, names, 0.9, 0, n)
				if err != nil {
					t.Errorf("query under damage: %v", err)
					snap.Release()
					return
				}
				if kept < 8 {
					kept++
					obsMu.Lock()
					observations = append(observations, observed{snap, n, res})
					obsMu.Unlock()
				} else {
					snap.Release()
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}

	feeder.Wait()
	s.DrainStreams()
	close(ingestDone)
	queriers.Wait()
	close(damageDone)
	damager.Wait()
	close(fireDone)
	firer.Wait()
	// A daemon pass may have tripped over a replica the damager had just
	// corrupted (a demotion copy reads it verbatim); that is the fault
	// being injected, and the closing scrub must heal it. Any other error
	// is real.
	if err := s.StopErosionDaemon(); err != nil && !errors.Is(err, kvstore.ErrCorrupt) {
		t.Fatal(err)
	}
	if err := s.StopStream("cam"); err != nil {
		t.Fatal(err)
	}

	if len(observations) == 0 {
		t.Fatal("no queries completed during the damage phase")
	}
	// Quiescent: one final scrub heals whatever the damager's last writes
	// left, then every retained snapshot re-verifies byte-identically.
	if _, err := s.ScrubPass(); err != nil {
		t.Fatal(err)
	}
	assertStoreClean(t, s)
	for i, ob := range observations {
		again, err := s.QueryAt(context.Background(), ob.snap, "cam", cascade, names, 0.9, 0, ob.n)
		if err != nil {
			t.Fatalf("quiescent re-run %d: %v", i, err)
		}
		sameDetections(t, ob.res, again, "live-under-damage vs quiescent")
		ob.snap.Release()
	}
	t.Logf("verified %d live queries; stats %+v", len(observations), s.Stats())
}
