package server

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/profile"
	"repro/internal/query"
	"repro/internal/results"
	"repro/internal/vidsim"
)

// normalizedResults strips the one nondeterministic field (wall-clock
// seconds) so the rest of the result — detections, consumed timelines,
// virtual-clock accounting, per-stage stats — can be compared bit for bit.
func normalizedResults(q QueryResult) []query.Result {
	out := make([]query.Result, len(q.Results))
	copy(out, q.Results)
	for i := range out {
		out[i].WallSeconds = 0
	}
	return out
}

func mustIdentical(t *testing.T, got, want QueryResult, what string) {
	t.Helper()
	g, w := normalizedResults(got), normalizedResults(want)
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: materialization changed the query result\n got %+v\nwant %+v", what, g, w)
	}
}

// erosionConfig builds a configuration whose erosion plan has real storage
// pressure (the TestServerErode recipe, parameterised over the consumers),
// so Erode actually deletes replicas.
func erosionConfig(t *testing.T, scene string, operators []ops.Operator, target float64) *core.Config {
	t.Helper()
	sc, err := vidsim.DatasetByName(scene)
	if err != nil {
		t.Fatal(err)
	}
	p := profile.New(sc)
	p.ClipFrames = 120
	consumers := make([]core.Consumer, len(operators))
	for i, op := range operators {
		consumers[i] = core.Consumer{Op: op, Target: target, Prof: p}
	}
	choices := core.DeriveConsumptionFormats(consumers)
	d, err := core.DeriveStorageFormats(choices, core.SFOptions{Profiler: p})
	if err != nil {
		t.Fatal(err)
	}
	lifespan := 3
	golden := d.SFs[d.Golden].Prof.BytesPerSec * 86400
	floor := d.TotalBytesPerSec()*86400 + float64(lifespan-1)*golden
	full := d.TotalBytesPerSec() * 86400 * float64(lifespan)
	plan, err := core.PlanErosion(d, core.ErosionOptions{
		Profiler: p, LifespanDays: lifespan,
		StorageBudgetBytes: int64(floor + 0.3*(full-floor)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &core.Config{Derivation: d, Erosion: plan}
}

// TestMaterializedQueryByteIdentity asserts the layer's headline
// invariant: with materialization on — filling cold or serving stored
// entries warm — a query is byte-identical to one that recomputes, at any
// worker count.
func TestMaterializedQueryByteIdentity(t *testing.T) {
	s := setupQueryServer(t)
	opNames := []string{"Diff", "S-NN", "NN"}
	run := func() QueryResult {
		t.Helper()
		res, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	s.QueryWorkers = -1
	ref := run() // sequential recomputation: the reference output

	for _, workers := range []int{1, 2, 8} {
		s.QueryWorkers = workers
		mustIdentical(t, run(), ref, "recompute")

		s.SetResultsBudget(1 << 22)
		cold := run()
		mustIdentical(t, cold, ref, "cold fill")
		rs := s.ResultsStats()
		if rs.Puts == 0 {
			t.Fatalf("workers=%d: cold materialized query stored nothing: %+v", workers, rs)
		}
		warm := run()
		mustIdentical(t, warm, ref, "warm hit")
		rs = s.ResultsStats()
		if rs.Hits == 0 {
			t.Fatalf("workers=%d: repeated query served no stored results: %+v", workers, rs)
		}

		// The counters must surface through the storage-path stats.
		st := s.Stats()
		if st.ResultsHits != rs.Hits || st.ResultsMisses != rs.Misses ||
			st.ResultsBytes != rs.Bytes || st.ResultsEntries != rs.Entries {
			t.Fatalf("Server.Stats results counters %+v do not match ResultsStats %+v", st, rs)
		}

		// Disable between worker counts so each starts cold; disabling
		// must purge the persisted entries.
		s.SetResultsBudget(-1)
		if got := s.ResultsStats(); got != (results.Stats{}) {
			t.Fatalf("disabled store still reports %+v", got)
		}
		if keys := s.kv.Keys(results.Prefix); len(keys) != 0 {
			t.Fatalf("disabling left %d persisted res/ keys", len(keys))
		}
	}
}

// TestErosionInvalidatesMaterializedResults asserts erosion drops a
// segment's stored results when its replicas leave the manifest — before
// the bytes are physically deleted — and that post-erosion queries remain
// byte-identical to recomputation (no stale stored result survives for
// footage the store let go).
func TestErosionInvalidatesMaterializedResults(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := erosionConfig(t, "jackson", []ops.Operator{ops.Diff{}, ops.SNN{}, ops.NN{}}, 0.9)
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := s.Ingest(sc, "cam", 3); err != nil {
		t.Fatal(err)
	}
	s.SetResultsBudget(1 << 22)
	opNames := []string{"Diff", "S-NN", "NN"}
	if _, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, 3); err != nil {
		t.Fatal(err)
	}
	if rs := s.ResultsStats(); rs.Puts == 0 {
		t.Fatalf("warm-up query stored nothing: %+v", rs)
	}

	deleted, err := s.Erode("cam", func(idx int) int { return 3 - idx })
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Erosion.K > 0 && deleted == 0 {
		t.Fatal("erosion plan has pressure but nothing was deleted")
	}
	if rs := s.ResultsStats(); rs.Invalidations == 0 {
		t.Fatalf("erosion deleted %d replicas but invalidated no stored results: %+v", deleted, rs)
	}

	// Whatever erosion left visible, materialized and recomputed answers
	// must still agree exactly.
	resOn, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.SetResultsBudget(-1)
	resOff, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	mustIdentical(t, resOn, resOff, "post-erosion")
}

// TestMaterializedQueryUnderIngestAndErosion runs snapshot-pinned queries
// — materialized cold, materialized warm, and recomputed — while live
// ingest commits new segments and erosion passes delete old replicas, and
// asserts all three stay byte-identical at every worker count. This is the
// invariant the generation tokens and the visibility gate exist for.
func TestMaterializedQueryUnderIngestAndErosion(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := erosionConfig(t, "jackson", []ops.Operator{ops.Diff{}, ops.SNN{}, ops.NN{}}, 0.9)
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := s.Ingest(sc, "cam", 2); err != nil {
		t.Fatal(err)
	}
	const budget = int64(1 << 22)
	s.SetResultsBudget(budget)

	live, err := s.StartStream("cam")
	if err != nil {
		t.Fatal(err)
	}
	const liveSegments = 6
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // live ingest: one segment at a time, committed mid-query
		defer wg.Done()
		src := vidsim.NewSource(sc)
		for i := 2; i < 2+liveSegments; i++ {
			if err := live.Submit(src.Clip(i*segFrames, segFrames)); err != nil {
				return // server closing
			}
		}
	}()
	erodeDone := make(chan struct{})
	go func() { // erosion: repeatedly age everything but the newest two
		defer wg.Done()
		defer close(erodeDone)
		for pass := 0; pass < liveSegments; pass++ {
			n := s.SegmentsOf("cam")
			if _, err := s.Erode("cam", func(idx int) int { return max(n-idx, 0) }); err != nil {
				return
			}
		}
	}()

	opNames := []string{"Diff", "S-NN", "NN"}
	workerGrid := []int{1, 2, 8}
	for it := 0; it < 9; it++ {
		s.QueryWorkers = workerGrid[it%len(workerGrid)]
		snap, err := s.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		n := snap.Segments("cam")
		if n == 0 {
			snap.Release()
			continue
		}
		runAt := func() QueryResult {
			t.Helper()
			res, err := s.QueryAt(context.Background(), snap, "cam", query.QueryA(), opNames, 0.9, 0, n)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		cold := runAt() // may fill, may hit earlier iterations' entries
		warm := runAt() // served from the store where entries survived
		s.SetResultsBudget(-1)
		recomputed := runAt()
		s.SetResultsBudget(budget)
		mustIdentical(t, cold, recomputed, "cold vs recomputed under churn")
		mustIdentical(t, warm, recomputed, "warm vs recomputed under churn")
		snap.Release()
	}
	<-erodeDone
	wg.Wait()
	s.DrainStreams()
}

// TestResultsBudgetPersistAndAdoption asserts the ResultsBytes knob
// round-trips through the epoch store and that a reopen adopts the
// persisted entries — serving them without recomputation — while an
// explicit disable purges them for good.
func TestResultsBudgetPersistAndAdoption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, "jackson", []ops.Operator{ops.Diff{}, ops.SNN{}, ops.NN{}}, []float64{0.9})
	cfg.Runtime.ResultsBytes = 1 << 22
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	if rs := s.ResultsStats(); rs.Budget != 1<<22 {
		t.Fatalf("results budget not applied on Reconfigure: %+v", rs)
	}
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := s.Ingest(sc, "cam", 2); err != nil {
		t.Fatal(err)
	}
	opNames := []string{"Diff", "S-NN", "NN"}
	ref, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	entries := s.ResultsStats().Entries
	if entries == 0 {
		t.Fatal("query materialized nothing")
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rs := s2.ResultsStats(); rs.Budget != 1<<22 || rs.Entries != entries {
		t.Fatalf("reopen adopted %+v, want budget %d with %d entries", rs, 1<<22, entries)
	}
	got, err := s2.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustIdentical(t, got, ref, "adopted entries")
	if rs := s2.ResultsStats(); rs.Hits == 0 {
		t.Fatalf("adopted entries served no hits: %+v", rs)
	}
	// A configuration silent on materialization leaves the store alone; a
	// negative budget disables it, purges, and stays disabled on reopen.
	silent := testConfig(t, "jackson", []ops.Operator{ops.Diff{}, ops.SNN{}, ops.NN{}}, []float64{0.9})
	if err := s2.Reconfigure(silent); err != nil {
		t.Fatal(err)
	}
	if rs := s2.ResultsStats(); rs.Budget != 1<<22 {
		t.Fatalf("Runtime-less Reconfigure dropped the results store: %+v", rs)
	}
	silent.Runtime.ResultsBytes = -1
	if err := s2.Reconfigure(silent); err != nil {
		t.Fatal(err)
	}
	if rs := s2.ResultsStats(); rs != (results.Stats{}) {
		t.Fatalf("negative budget did not disable the store: %+v", rs)
	}
	if keys := s2.kv.Keys(results.Prefix); len(keys) != 0 {
		t.Fatalf("disable left %d persisted res/ keys", len(keys))
	}
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if rs := s3.ResultsStats(); rs != (results.Stats{}) {
		t.Fatalf("explicitly disabled store revived on reopen: %+v", rs)
	}
}
