// Self-healing: the server-level wiring of corruption repair. Queries
// that hit a damaged replica rebuild it on the fly through the repair
// layer (degraded serving) and enqueue the replica for durable background
// repair; a scrub pass — manual or on the erosion daemon's rotation —
// verifies every record checksum and re-derives whatever is damaged or
// lost. See internal/repair for the re-derivation itself.

package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/repair"
	"repro/internal/segment"
)

// repairQueueDepth bounds the background repair queue. Overflow drops the
// enqueue: every degraded serve re-enqueues, and the scrub rotation heals
// anything the queue missed.
const repairQueueDepth = 256

// selfheal carries the server's repair state: the lazily built repairer,
// the deduplicating background repair queue, and the counters Stats()
// reports.
type selfheal struct {
	mu       sync.Mutex
	repairer *repair.Repairer
	pending  map[segment.Ref]bool
	queue    chan segment.Ref
	quit     chan struct{}
	done     chan struct{}
	stopped  bool

	degradedServes atomic.Int64
	repairs        atomic.Int64
	repairsFailed  atomic.Int64
	scrubPasses    atomic.Int64
	// unhealed is the damage count the latest scrub pass could not repair
	// — what keeps /healthz degraded until an operator intervenes.
	unhealed atomic.Int64
}

// repairerLocked returns the repairer spanning every epoch's derivation,
// building it on first use. Caller holds s.mu; Reconfigure invalidates.
func (s *Server) repairerLocked() *repair.Repairer {
	if s.heal.repairer == nil {
		ds := make([]*core.StorageDerivation, 0, len(s.epochs))
		for _, ep := range s.epochs {
			ds = append(ds, ep.Cfg.Derivation)
		}
		s.heal.repairer = repair.NewMulti(s.segs, s.manifest, ds...)
	}
	return s.heal.repairer
}

func (s *Server) currentRepairer() *repair.Repairer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repairerLocked()
}

// rebuildReplica is the query engine's Rebuild hook: re-derive a damaged
// replica from its nearest surviving fallback ancestor so the query
// answers degraded instead of failing.
func (s *Server) rebuildReplica(stream string, seg int, sf format.StorageFormat) (*codec.Encoded, []*frame.Frame, error) {
	return s.currentRepairer().Rebuild(stream, seg, sf)
}

// onDegraded observes every degraded serve: count it and enqueue the
// damaged replica for durable background repair.
func (s *Server) onDegraded(stream string, seg int, sf format.StorageFormat) {
	s.heal.degradedServes.Add(1)
	s.enqueueRepair(segment.RefOf(stream, sf, seg))
}

// enqueueRepair hands a damaged replica to the background repair worker,
// deduplicating against repairs already queued. The worker starts on
// first use; a full queue drops the enqueue (the scrub rotation is the
// backstop).
func (s *Server) enqueueRepair(ref segment.Ref) {
	h := &s.heal
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stopped {
		return
	}
	if h.queue == nil {
		h.pending = make(map[segment.Ref]bool)
		h.queue = make(chan segment.Ref, repairQueueDepth)
		h.quit = make(chan struct{})
		h.done = make(chan struct{})
		go s.repairWorker(h.queue, h.quit, h.done)
	}
	if h.pending[ref] {
		return
	}
	select {
	case h.queue <- ref:
		h.pending[ref] = true
	default:
	}
}

// repairWorker drains the repair queue, healing one replica at a time
// under erodeMu — a repair's rebuilt records must never interleave with a
// demotion copying or an erosion pass deleting the same replica.
func (s *Server) repairWorker(queue chan segment.Ref, quit, done chan struct{}) {
	defer close(done)
	for {
		select {
		case <-quit:
			return
		case ref := <-queue:
			s.erodeMu.Lock()
			ok, err := s.currentRepairer().RepairRef(ref)
			s.erodeMu.Unlock()
			s.heal.mu.Lock()
			delete(s.heal.pending, ref)
			s.heal.mu.Unlock()
			switch {
			case err != nil:
				s.heal.repairsFailed.Add(1)
			case ok:
				s.heal.repairs.Add(1)
				s.invalidateCacheFor(ref.Stream)
			}
		}
	}
}

// stopRepairWorker halts the background worker and waits for an in-flight
// repair to finish — Close must not release the store under it. Further
// enqueues become no-ops.
func (s *Server) stopRepairWorker() {
	h := &s.heal
	h.mu.Lock()
	h.stopped = true
	quit, done := h.quit, h.done
	h.quit, h.done = nil, nil
	h.mu.Unlock()
	if quit != nil {
		close(quit)
		<-done
	}
}

// invalidateCacheFor drops the stream's cached frames after a repair: a
// best-effort degraded reconstruction is never cached, but post-repair
// reads must come from the healed replica, not from frames decoded before
// the damage was found.
func (s *Server) invalidateCacheFor(stream string) {
	s.mu.Lock()
	if s.cache != nil {
		s.cache.Invalidate(stream)
	}
	s.mu.Unlock()
}

// DamageReplica deliberately corrupts one committed replica of the
// stream's segment — the fault-injection hook the scrub smoke test, the
// CLI `damage` verb and the API tests use to exercise self-healing on a
// real store. sfKey selects the storage format by key; empty picks the
// first non-golden format of the newest epoch (the golden itself when it
// is the only format). The flipped bit is found on the next read or scrub
// of the replica, not here.
func (s *Server) DamageReplica(stream, sfKey string, idx int) (segment.Ref, error) {
	s.mu.Lock()
	if len(s.epochs) == 0 {
		s.mu.Unlock()
		return segment.Ref{}, fmt.Errorf("server: no configuration installed")
	}
	d := s.epochs[len(s.epochs)-1].Cfg.Derivation
	var sf format.StorageFormat
	found := false
	for i, dsf := range d.SFs {
		if sfKey == "" && i != d.Golden {
			sf, found = dsf.SF, true
			break
		}
		if sfKey != "" && dsf.SF.Key() == sfKey {
			sf, found = dsf.SF, true
			break
		}
	}
	if !found && sfKey == "" && len(d.SFs) > 0 {
		sf, found = d.SFs[d.Golden].SF, true
	}
	s.mu.Unlock()
	if !found {
		return segment.Ref{}, fmt.Errorf("server: no storage format %q in the current epoch", sfKey)
	}
	ref := segment.RefOf(stream, sf, idx)
	if err := s.segs.DamageRef(ref); err != nil {
		return segment.Ref{}, err
	}
	return ref, nil
}

// ScrubPass verifies every record checksum in the store, cross-checks the
// manifest for lost replicas, and re-derives whatever is damaged — one
// full self-healing pass, serialised with demotion and erosion. The
// erosion daemon runs it on every tick (see StartErosionDaemon); the
// `vstore scrub` verb and the POST /v1/scrub endpoint invoke it manually.
func (s *Server) ScrubPass() (repair.Report, error) {
	s.erodeMu.Lock()
	defer s.erodeMu.Unlock()
	rep, err := s.currentRepairer().Scrub()
	s.heal.scrubPasses.Add(1)
	s.heal.repairs.Add(int64(len(rep.Repaired)))
	s.heal.repairsFailed.Add(int64(len(rep.Failed)))
	s.heal.unhealed.Store(int64(len(rep.Failed)))
	streams := map[string]bool{}
	for _, ref := range rep.Repaired {
		streams[ref.Stream] = true
	}
	for stream := range streams {
		s.invalidateCacheFor(stream)
	}
	return rep, err
}

// RepairPending reports how many damaged replicas await background repair.
func (s *Server) RepairPending() int {
	s.heal.mu.Lock()
	defer s.heal.mu.Unlock()
	return len(s.heal.pending)
}

// Degraded reports whether the store is serving in degraded mode: damaged
// replicas are awaiting background repair, or the latest scrub pass left
// damage it could not heal. A degraded store still answers queries — via
// fallback reconstruction — but redundancy is reduced until repairs
// complete.
func (s *Server) Degraded() bool {
	return s.RepairPending() > 0 || s.heal.unhealed.Load() > 0
}
