package server

import (
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/erode"
	"repro/internal/kvstore"
	"repro/internal/ops"
	"repro/internal/query"
	"repro/internal/tier"
	"repro/internal/vidsim"
)

// assertOneTierPerKey asserts the engine-level invariant after crashes
// and demotions: every live key is present in exactly one tier (the
// aggregated per-tier key counts, which would count a duplicated key
// twice, equal the deduplicated enumeration).
func assertOneTierPerKey(t *testing.T, s *Server) {
	t.Helper()
	st := s.kv.Stats()
	if got := len(s.kv.Keys("")); got != st.Keys {
		t.Fatalf("%d distinct keys but %d per-tier key slots: some key is live in both tiers", got, st.Keys)
	}
}

// TestTierPlacementAndDemotionLifecycle walks a segment through the
// placement lifecycle: ingest lands the subscribed format fast and the
// golden archival format cold, a demotion pass ages the fast replicas to
// cold with byte-identical query results, and the recorded tiers survive
// a reopen.
func TestTierPlacementAndDemotionLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{Shards: 4, DemoteAfterDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, "jackson", []ops.Operator{ops.Motion{}, ops.License{}}, []float64{0.9})
	// Tiny test derivations coalesce every consumer into the golden
	// format, which then places fast; pin the archival golden format to
	// the cold tier so ingest exercises split placement. (The derivation
	// rule itself is unit-tested in core with a controllable profiler.)
	cfg.Derivation.SFs[cfg.Derivation.Golden].Placement = core.PlaceCold
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	fastSFs, coldSFs := 0, 0
	for _, sf := range cfg.Derivation.SFs {
		if sf.Placement == core.PlaceFast {
			fastSFs++
		} else {
			coldSFs++
		}
	}
	if fastSFs == 0 || coldSFs == 0 {
		t.Fatalf("placement has no tier split: %d fast, %d cold", fastSFs, coldSFs)
	}
	sc, _ := vidsim.DatasetByName("jackson")
	const segments = 3
	if _, err := s.Ingest(sc, "cam", segments); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FastSegments != fastSFs*segments || st.ColdSegments != coldSFs*segments {
		t.Fatalf("ingest placed %d fast / %d cold replicas, want %d / %d",
			st.FastSegments, st.ColdSegments, fastSFs*segments, coldSFs*segments)
	}
	if st.FastLiveBytes == 0 || st.ColdLiveBytes == 0 {
		t.Fatalf("tier bytes not split: %+v", st)
	}
	cascade, names := motionCascade()
	ref, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, segments)
	if err != nil {
		t.Fatal(err)
	}

	// Segment 0 is old enough to demote; 1 and 2 are not.
	n, err := s.DemotePass(func(_ string, idx int) int { return segments - 1 - idx })
	if err != nil {
		t.Fatal(err)
	}
	if n != fastSFs {
		t.Fatalf("demoted %d replicas, want %d (segment 0's fast formats)", n, fastSFs)
	}
	st = s.Stats()
	if st.Demotions != int64(n) || st.FastSegments != fastSFs*(segments-1) {
		t.Fatalf("post-demotion stats: %+v", st)
	}
	assertOneTierPerKey(t, s)
	mixed, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, segments)
	if err != nil {
		t.Fatal(err)
	}
	sameDetections(t, ref, mixed, "fast/cold mixed read")

	// Everything ages out of the fast tier; results stay identical.
	if _, err := s.DemotePass(func(string, int) int { return 10 }); err != nil {
		t.Fatal(err)
	}
	if st = s.Stats(); st.FastSegments != 0 || st.ColdSegments != (fastSFs+coldSFs)*segments {
		t.Fatalf("full demotion left %+v", st)
	}
	cold, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, segments)
	if err != nil {
		t.Fatal(err)
	}
	sameDetections(t, ref, cold, "all-cold read")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The recorded tiers are rebuilt from the on-disk layout on reopen.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.FastSegments != 0 || st.ColdSegments != (fastSFs+coldSFs)*segments {
		t.Fatalf("tiers lost across reopen: %+v", st)
	}
	again, err := s2.Query(context.Background(), "cam", cascade, names, 0.9, 0, segments)
	if err != nil {
		t.Fatal(err)
	}
	sameDetections(t, ref, again, "after reopen")
}

// TestCrashRecoveryMidTierMigration simulates a crash in the middle of a
// fast→cold migration — the cold copies of one segment's records written,
// the fast deletes never applied — reopens the server, and demands every
// segment be visible in exactly one tier with byte-identical query
// results: no loss, no duplicates.
func TestCrashRecoveryMidTierMigration(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, "jackson", []ops.Operator{ops.Motion{}}, []float64{0.9})
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := s.Ingest(sc, "cam", 3); err != nil {
		t.Fatal(err)
	}
	cascade, names := motionCascade()
	ref, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	live := s.manifest.Stats().Live
	distinctKeys := len(s.kv.Keys(""))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash simulation, against the raw shard layout: copy every one of
	// segment 0's fast records into the matching cold shard and "crash"
	// before any fast delete — the exact window the two-phase migration
	// leaves open.
	copied := 0
	for shard := 0; shard < 4; shard++ {
		fast, err := kvstore.Open(filepath.Join(dir, "segments", tier.Fast.String(), fmtShard(shard)), kvstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := kvstore.Open(filepath.Join(dir, "segments", tier.Cold.String(), fmtShard(shard)), kvstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range fast.Keys("") {
			if !strings.Contains(k, "/00000000") {
				continue // not a segment-0 record
			}
			v, err := fast.Get(k)
			if err != nil {
				t.Fatal(err)
			}
			if err := cold.Put(k, v); err != nil {
				t.Fatal(err)
			}
			copied++
		}
		fast.Close()
		cold.Close()
	}
	if copied == 0 {
		t.Fatal("crash simulation copied nothing")
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	assertOneTierPerKey(t, s2)
	if got := len(s2.kv.Keys("")); got != distinctKeys {
		t.Fatalf("recovery changed the key set: %d keys, want %d", got, distinctKeys)
	}
	ms := s2.manifest.Stats()
	if ms.Live != live {
		t.Fatalf("recovery changed the committed set: %d replicas, want %d", ms.Live, live)
	}
	if ms.FastLive+ms.ColdLive != ms.Live {
		t.Fatalf("replicas not in exactly one tier: %+v", ms)
	}
	// The healed migration reports segment 0 cold (its cold copies were
	// durable) and everything else untouched on fast.
	if ms.ColdLive == 0 {
		t.Fatal("completed migration not visible in any tier accounting")
	}
	got, err := s2.Query(context.Background(), "cam", cascade, names, 0.9, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	sameDetections(t, ref, got, "after crash recovery")
}

func fmtShard(i int) string { return []string{"000", "001", "002", "003"}[i] }

// TestShardDeterminism is the golden determinism test: one fixed
// configuration ingested into stores sharded 1, 4 and 16 ways returns
// byte-identical query results at every shard count, and the derived
// placement plan itself is byte-identical across derivation runs (see
// core's TestPlacementDeterminism for the pure-derivation half).
func TestShardDeterminism(t *testing.T) {
	cfg := testConfig(t, "jackson", []ops.Operator{ops.Diff{}, ops.SNN{}, ops.NN{}}, []float64{0.9})
	sc, _ := vidsim.DatasetByName("jackson")
	cascade := []string{"Diff", "S-NN", "NN"}
	var ref QueryResult
	for i, shards := range []int{1, 4, 16} {
		s, err := OpenWith(t.TempDir(), Options{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.kv.Shards(); got != shards {
			t.Fatalf("store opened with %d shards, want %d", got, shards)
		}
		if err := s.Reconfigure(cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Ingest(sc, "cam", 3); err != nil {
			t.Fatal(err)
		}
		res, err := s.Query(context.Background(), "cam", query.QueryA(), cascade, 0.9, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
		} else {
			sameDetections(t, ref, res, "shard count variation")
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTieredConcurrentServe is the tiered counterpart of
// TestLiveConcurrentServe: two streams ingest while four queriers, the
// demotion+erosion daemon and per-shard compaction all run under -race,
// every live query re-runs byte-identically on its retained snapshot, and
// once a final demotion pass settles the fast tier is within its byte
// budget.
func TestTieredConcurrentServe(t *testing.T) {
	const fastBudget = 64 << 10
	s, err := OpenWith(t.TempDir(), Options{Shards: 4, FastTierBytes: fastBudget, DemoteAfterDays: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Reconfigure(pressureConfig(t, 3)); err != nil {
		t.Fatal(err)
	}
	s.SetCacheBudget(16 << 20)

	segments := 4
	if testing.Short() {
		segments = 3
	}
	streams := []string{"cam0", "cam1"}
	scenes := []string{"jackson", "park"}
	for _, name := range streams {
		if _, err := s.StartStream(name); err != nil {
			t.Fatal(err)
		}
	}

	age := func(stream string, idx int) int { return s.SegmentsOf(stream) - idx }
	clock := erode.NewManualClock()
	if _, err := s.StartErosionDaemon(time.Hour, clock, age); err != nil {
		t.Fatal(err)
	}
	fireDone := make(chan struct{})
	var firer sync.WaitGroup
	firer.Add(1)
	go func() {
		defer firer.Done()
		for {
			select {
			case <-fireDone:
				return
			default:
				if !clock.TryFire() {
					time.Sleep(time.Millisecond)
				}
			}
		}
	}()

	// Compactor: per-shard parallel compaction interleaving with
	// everything else.
	compactDone := make(chan struct{})
	var compactor sync.WaitGroup
	compactor.Add(1)
	go func() {
		defer compactor.Done()
		for {
			select {
			case <-compactDone:
				return
			default:
				if err := s.Compact(); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
	}()

	var feeders sync.WaitGroup
	for i, name := range streams {
		i, name := i, name
		feeders.Add(1)
		go func() {
			defer feeders.Done()
			sc, err := vidsim.DatasetByName(scenes[i])
			if err != nil {
				t.Error(err)
				return
			}
			src := vidsim.NewSource(sc)
			live := s.Stream(name)
			for seg := 0; seg < segments; seg++ {
				if err := live.Submit(src.Clip(seg*segFrames, segFrames)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	type observed struct {
		snap   *Snapshot
		stream string
		n      int
		res    QueryResult
	}
	cascade, names := motionCascade()
	var obsMu sync.Mutex
	var observations []observed
	ingestDone := make(chan struct{})
	var queriers sync.WaitGroup
	const keepPerQuerier = 16
	for q := 0; q < 4; q++ {
		q := q
		queriers.Add(1)
		go func() {
			defer queriers.Done()
			kept := 0
			for iter := 0; ; iter++ {
				select {
				case <-ingestDone:
					return
				default:
				}
				stream := streams[(q+iter)%len(streams)]
				snap, err := s.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				n := snap.Segments(stream)
				if n == 0 {
					snap.Release()
					continue
				}
				res, err := s.QueryAt(context.Background(), snap, stream, cascade, names, 0.9, 0, n)
				if err != nil {
					t.Errorf("live query: %v", err)
					snap.Release()
					return
				}
				if kept < keepPerQuerier {
					kept++
					obsMu.Lock()
					observations = append(observations, observed{snap, stream, n, res})
					obsMu.Unlock()
				} else {
					snap.Release()
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}

	feeders.Wait()
	s.DrainStreams()
	close(ingestDone)
	queriers.Wait()
	close(fireDone)
	firer.Wait()
	close(compactDone)
	compactor.Wait()
	if err := s.StopErosionDaemon(); err != nil {
		t.Fatal(err)
	}
	for _, name := range streams {
		if err := s.StopStream(name); err != nil {
			t.Fatal(err)
		}
	}

	if len(observations) == 0 {
		t.Fatal("no queries completed during the live phase")
	}
	for i, ob := range observations {
		again, err := s.QueryAt(context.Background(), ob.snap, ob.stream, cascade, names, 0.9, 0, ob.n)
		if err != nil {
			t.Fatalf("quiescent re-run %d: %v", i, err)
		}
		sameDetections(t, ob.res, again, "live vs quiescent under tiering")
		ob.snap.Release()
	}

	// Quiesced: one settling demotion pass, then the budget must hold
	// (only server metadata — which never demotes — may remain fast).
	if _, err := s.DemotePass(age); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.FastLiveBytes > fastBudget {
		t.Fatalf("fast tier holds %d bytes after a settled demotion pass, budget %d", st.FastLiveBytes, fastBudget)
	}
	if st.Demotions == 0 {
		t.Fatal("no demotions despite the fast-tier budget")
	}
	if d := s.daemon; d != nil {
		t.Fatal("daemon still registered")
	}
	assertOneTierPerKey(t, s)
	t.Logf("verified %d live queries; %d demotions; fast tier %d/%d bytes",
		len(observations), st.Demotions, st.FastLiveBytes, fastBudget)
}
