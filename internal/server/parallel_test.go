package server

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/ops"
	"repro/internal/query"
	"repro/internal/vidsim"
)

// setupQueryServer builds a server with two configuration epochs and two
// ingested segments per epoch, so parallel queries exercise both span-level
// and segment-level fan-out.
func setupQueryServer(t testing.TB) *Server {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	sc, err := vidsim.DatasetByName("jackson")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, "jackson", []ops.Operator{ops.Diff{}, ops.SNN{}, ops.NN{}}, []float64{0.9})
	// Two epochs of the same configuration: Reconfigure always opens a new
	// epoch, so the 4-segment query still splits into two spans.
	for epoch := 0; epoch < 2; epoch++ {
		if err := s.Reconfigure(cfg); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Ingest(sc, "cam", 2); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestParallelQueryDeterminism asserts the paper-facing invariant of the
// parallel engine: whatever the worker count, a query returns exactly the
// sequential path's detections and consumed-frame timeline.
func TestParallelQueryDeterminism(t *testing.T) {
	s := setupQueryServer(t)
	opNames := []string{"Diff", "S-NN", "NN"}

	s.QueryWorkers = -1 // force sequential: the reference output
	ref, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Results) != 2 {
		t.Fatalf("expected 2 epoch spans, got %d", len(ref.Results))
	}
	for _, workers := range []int{1, 2, 8} {
		s.QueryWorkers = workers
		got, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, 4)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.Results) != len(ref.Results) {
			t.Fatalf("workers=%d: %d spans, want %d", workers, len(got.Results), len(ref.Results))
		}
		for i := range ref.Results {
			if !reflect.DeepEqual(got.Results[i].Detections, ref.Results[i].Detections) {
				t.Fatalf("workers=%d span %d: detections differ from sequential", workers, i)
			}
			if !reflect.DeepEqual(got.Results[i].FinalPTS, ref.Results[i].FinalPTS) {
				t.Fatalf("workers=%d span %d: final PTS differ from sequential", workers, i)
			}
			if got.Results[i].VirtualSeconds != ref.Results[i].VirtualSeconds {
				t.Fatalf("workers=%d span %d: virtual seconds %v != %v",
					workers, i, got.Results[i].VirtualSeconds, ref.Results[i].VirtualSeconds)
			}
		}
	}
}

// TestQueryCacheHitsAndDeterminism asserts repeated queries hit the cache,
// the counters surface through Server.Stats, and cached results are
// identical to uncached ones.
func TestQueryCacheHitsAndDeterminism(t *testing.T) {
	s := setupQueryServer(t)
	opNames := []string{"Diff", "S-NN", "NN"}

	cold, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cs := s.CacheStats(); cs.Hits != 0 || cs.Misses != 0 {
		t.Fatalf("cache active before enablement: %+v", cs)
	}

	s.SetCacheBudget(1 << 30)
	warmup, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	cs := s.CacheStats()
	if cs.Misses == 0 || cs.Bytes == 0 {
		t.Fatalf("cold cached query populated nothing: %+v", cs)
	}
	warm, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	cs = s.CacheStats()
	if cs.Hits == 0 {
		t.Fatalf("repeated query had no cache hits: %+v", cs)
	}
	if cs.HitRate() <= 0 {
		t.Fatalf("hit rate %v on repeated query", cs.HitRate())
	}
	for i := range cold.Results {
		for _, r := range []QueryResult{warmup, warm} {
			if !reflect.DeepEqual(r.Results[i].Detections, cold.Results[i].Detections) {
				t.Fatalf("span %d: cached detections differ from uncached", i)
			}
			if !reflect.DeepEqual(r.Results[i].FinalPTS, cold.Results[i].FinalPTS) {
				t.Fatalf("span %d: cached final PTS differ from uncached", i)
			}
		}
	}
	// The counters must surface through the storage-path stats.
	st := s.Stats()
	if st.CacheHits != cs.Hits || st.CacheMisses != cs.Misses || st.CacheBytes != cs.Bytes {
		t.Fatalf("Server.Stats cache counters %+v do not match CacheStats %+v", st, cs)
	}

	s.SetCacheBudget(0)
	if cs := s.CacheStats(); cs.Entries != 0 || cs.Budget != 0 {
		t.Fatalf("disabled cache still live: %+v", cs)
	}
}

// TestParallelSpeedupMulticore asserts the worker pool delivers real
// wall-clock speedup where cores exist. It needs genuine parallelism to
// mean anything, so it skips on small machines (CI race shards and
// single-core containers); BenchmarkQueryParallel8 is the precise artifact
// for measuring the speedup factor. The 1.4x floor is deliberately below
// the ~2x+ a quiet 4-core machine shows, to stay robust against noisy
// shared runners.
func TestParallelSpeedupMulticore(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup test, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	s := setupQueryServer(t)
	opNames := []string{"Diff", "S-NN", "NN"}
	run := func(workers int) time.Duration {
		s.QueryWorkers = workers
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			t0 := time.Now()
			if _, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, 4); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		return best
	}
	run(-1) // warm the page cache before timing
	seq := run(-1)
	par := run(8)
	speedup := float64(seq) / float64(par)
	t.Logf("sequential %v, parallel(8) %v, speedup %.2fx on %d CPUs", seq, par, speedup, runtime.NumCPU())
	if speedup < 1.4 {
		t.Fatalf("parallel speedup %.2fx < 1.4x (seq %v, par %v)", speedup, seq, par)
	}
}

// TestRuntimeKnobsPersist asserts the worker/cache knobs round-trip with
// the configuration through the epoch store.
func TestRuntimeKnobsPersist(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, "park", []ops.Operator{ops.Motion{}}, []float64{0.8})
	cfg.Runtime.QueryWorkers = 4
	cfg.Runtime.CacheBytes = 1 << 20
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	if cs := s.CacheStats(); cs.Budget != 1<<20 {
		t.Fatalf("cache budget not applied on Reconfigure: %+v", cs)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := s2.Current().Runtime
	if got.QueryWorkers != 4 || got.CacheBytes != 1<<20 {
		t.Fatalf("runtime knobs lost across reopen: %+v", got)
	}
	if cs := s2.CacheStats(); cs.Budget != 1<<20 {
		t.Fatalf("cache not restored on reopen: %+v", cs)
	}
	// A configuration silent on caching (Runtime zero) leaves the running
	// cache alone; a negative budget explicitly disables it.
	silent := testConfig(t, "park", []ops.Operator{ops.Motion{}}, []float64{0.8})
	if err := s2.Reconfigure(silent); err != nil {
		t.Fatal(err)
	}
	if cs := s2.CacheStats(); cs.Budget != 1<<20 {
		t.Fatalf("cache dropped by a Runtime-less Reconfigure: %+v", cs)
	}
	// Across a reopen, the budget folds newest-to-oldest past the silent
	// epoch to the last explicit setting.
	s2.Close()
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cs := s3.CacheStats(); cs.Budget != 1<<20 {
		t.Fatalf("silent epoch dropped the cache across reopen: %+v", cs)
	}
	silent.Runtime.CacheBytes = -1
	if err := s3.Reconfigure(silent); err != nil {
		t.Fatal(err)
	}
	if cs := s3.CacheStats(); cs.Budget != 0 {
		t.Fatalf("negative budget did not disable the cache: %+v", cs)
	}
	s3.Close()
	// And a negative setting stays disabled across reopen.
	s4, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s4.Close()
	if cs := s4.CacheStats(); cs.Budget != 0 {
		t.Fatalf("explicitly disabled cache revived on reopen: %+v", cs)
	}
}
