package server

import (
	"context"
	"os"
	"sync"
	"testing"

	"repro/internal/ops"
	"repro/internal/query"
	"repro/internal/vidsim"
)

// The benchmark server is built once per test process: configuration
// derivation and an 8-segment ingest are far more expensive than the
// queries being measured, and the framework re-invokes each benchmark
// function as b.N scales.
var (
	benchOnce sync.Once
	benchSrv  *Server
	benchErr  error
)

const benchSegments = 8

func benchServer(b *testing.B) *Server {
	b.Helper()
	benchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "server-bench-*")
		if err != nil {
			benchErr = err
			return
		}
		s, err := Open(dir)
		if err != nil {
			benchErr = err
			return
		}
		cfg := testConfig(b, "jackson", []ops.Operator{ops.Diff{}, ops.SNN{}, ops.NN{}}, []float64{0.9})
		if err := s.Reconfigure(cfg); err != nil {
			benchErr = err
			return
		}
		sc, err := vidsim.DatasetByName("jackson")
		if err != nil {
			benchErr = err
			return
		}
		if _, err := s.Ingest(sc, "cam", benchSegments); err != nil {
			benchErr = err
			return
		}
		benchSrv = s
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSrv
}

func benchQuery(b *testing.B, workers int, cacheBytes int64) {
	s := benchServer(b)
	s.QueryWorkers = workers
	s.SetCacheBudget(cacheBytes)
	opNames := []string{"Diff", "S-NN", "NN"}
	if cacheBytes > 0 {
		// Warm pass so the steady state being measured is the cached one.
		if _, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, benchSegments); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, benchSegments); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuerySequential is the baseline: one worker, no cache.
func BenchmarkQuerySequential(b *testing.B) { benchQuery(b, -1, 0) }

// BenchmarkQueryParallel8 fans segment retrieval across 8 workers.
func BenchmarkQueryParallel8(b *testing.B) { benchQuery(b, 8, 0) }

// BenchmarkQueryParallelCached adds a 1 GiB retrieval cache on top of the
// 8-worker pool; the steady state serves every stage-0 scan from memory.
func BenchmarkQueryParallelCached(b *testing.B) { benchQuery(b, 8, 1<<30) }

// The tiered benchmark server lives in its own store: the cold-hit
// variant demotes every segment, which must not perturb the shared
// benchmark server's placement.
var (
	tierBenchOnce sync.Once
	tierBenchSrv  *Server
	tierBenchErr  error
)

func tieredBenchServer(b *testing.B) *Server {
	b.Helper()
	tierBenchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "server-tierbench-*")
		if err != nil {
			tierBenchErr = err
			return
		}
		s, err := OpenWith(dir, Options{Shards: 4, DemoteAfterDays: 1})
		if err != nil {
			tierBenchErr = err
			return
		}
		cfg := testConfig(b, "jackson", []ops.Operator{ops.Diff{}, ops.SNN{}, ops.NN{}}, []float64{0.9})
		if err := s.Reconfigure(cfg); err != nil {
			tierBenchErr = err
			return
		}
		sc, err := vidsim.DatasetByName("jackson")
		if err != nil {
			tierBenchErr = err
			return
		}
		if _, err := s.Ingest(sc, "cam", benchSegments); err != nil {
			tierBenchErr = err
			return
		}
		tierBenchSrv = s
	})
	if tierBenchErr != nil {
		b.Fatal(tierBenchErr)
	}
	return tierBenchSrv
}

// BenchmarkTieredQuery compares the three steady states of the tiered
// read path: every segment on the fast tier, every segment demoted to
// the cold tier (reads fall through fast→cold), and the warm retrieval
// cache in front of the cold tier. Sub-benchmarks run in order; the
// demotion between fast and cold happens exactly once.
func BenchmarkTieredQuery(b *testing.B) {
	s := tieredBenchServer(b)
	opNames := []string{"Diff", "S-NN", "NN"}
	run := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, benchSegments); err != nil {
				b.Fatal(err)
			}
		}
	}
	s.QueryWorkers = 8
	s.SetCacheBudget(0)
	// The shared server is demoted exactly once; a repeated run
	// (-count>=2) finds everything already cold and skips the fast-hit
	// variant rather than mislabelling cold reads.
	if s.Stats().FastSegments > 0 {
		b.Run("fast-hit", run)
		if n, err := s.DemotePass(func(string, int) int { return 1 << 20 }); err != nil || n == 0 {
			b.Fatalf("demotion before cold-hit benchmark: n=%d err=%v", n, err)
		}
	} else {
		b.Run("fast-hit", func(b *testing.B) { b.Skip("segments already demoted by an earlier run") })
	}
	b.Run("cold-hit", run)
	s.SetCacheBudget(1 << 30)
	if _, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, benchSegments); err != nil {
		b.Fatal(err) // warm pass: the measured steady state is cached
	}
	b.Run("cached", run)
	s.SetCacheBudget(0)
}

// BenchmarkQueryDuringIngest measures query latency while a live stream
// actively ingests in the background — the serving-under-write-load
// counterpart of BenchmarkQuerySequential's quiescent baseline. Queries
// target the pre-ingested stream; a feeder keeps a second stream's
// pipeline busy transcoding for the whole measurement.
func BenchmarkQueryDuringIngest(b *testing.B) {
	s := benchServer(b)
	s.QueryWorkers = 8
	s.SetCacheBudget(0)
	live, err := s.StartStream("bg")
	if err != nil {
		b.Fatal(err)
	}
	sc, err := vidsim.DatasetByName("jackson")
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var feeder sync.WaitGroup
	feeder.Add(1)
	go func() {
		defer feeder.Done()
		src := vidsim.NewSource(sc)
		for seg := s.SegmentsOf("bg"); ; seg++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := live.Submit(src.Clip(seg*segFrames, segFrames)); err != nil {
				return // stream stopped under us
			}
		}
	}()
	opNames := []string{"Diff", "S-NN", "NN"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, benchSegments); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	feeder.Wait()
	if err := s.StopStream("bg"); err != nil {
		b.Fatal(err)
	}
}
