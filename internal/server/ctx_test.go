package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/vidsim"
)

// TestQueryContextCancellation pins the cancellation contract the HTTP API
// layer depends on: a canceled (or deadline-expired) context makes
// Query/QueryAt return the context error promptly instead of decoding the
// rest of the span on the shared pool.
func TestQueryContextCancellation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Reconfigure(pressureConfig(t, 3)); err != nil {
		t.Fatal(err)
	}
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := s.Ingest(sc, "cam", 2); err != nil {
		t.Fatal(err)
	}
	cascade, names := motionCascade()

	// Already-canceled context: rejected before any retrieval runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Query(ctx, "cam", cascade, names, 0.9, 0, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query returned %v, want context.Canceled", err)
	}

	// Expired deadline: same contract, DeadlineExceeded.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := s.Query(dctx, "cam", cascade, names, 0.9, 0, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired query returned %v, want context.DeadlineExceeded", err)
	}

	// Cancellation must not leak the snapshot pin.
	if st := s.Stats(); st.ActiveSnapshots != 0 {
		t.Fatalf("canceled queries left %d active snapshots", st.ActiveSnapshots)
	}

	// A live context still works, through QueryAt too.
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	if _, err := s.QueryAt(context.Background(), snap, "cam", cascade, names, 0.9, 0, 2); err != nil {
		t.Fatalf("background-context query: %v", err)
	}
	// nil is tolerated as context.Background (retrofit convenience).
	if _, err := s.QueryAt(nil, snap, "cam", cascade, names, 0.9, 0, 2); err != nil {
		t.Fatalf("nil-context query: %v", err)
	}
}
