package server

import (
	"context"
	"os"
	"sync"
	"testing"

	"repro/internal/ops"
	"repro/internal/query"
	"repro/internal/vidsim"
)

// The materialization benchmark server lives in its own store: enabling
// and purging the results store between sub-benchmarks must not perturb
// the shared benchmark server's steady state.
var (
	resBenchOnce sync.Once
	resBenchSrv  *Server
	resBenchErr  error
)

const resBenchBudget = int64(1 << 26)

func materializeBenchServer(b *testing.B) *Server {
	b.Helper()
	resBenchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "server-resbench-*")
		if err != nil {
			resBenchErr = err
			return
		}
		s, err := Open(dir)
		if err != nil {
			resBenchErr = err
			return
		}
		cfg := testConfig(b, "jackson", []ops.Operator{ops.Diff{}, ops.SNN{}, ops.NN{}}, []float64{0.9})
		if err := s.Reconfigure(cfg); err != nil {
			resBenchErr = err
			return
		}
		sc, err := vidsim.DatasetByName("jackson")
		if err != nil {
			resBenchErr = err
			return
		}
		if _, err := s.Ingest(sc, "cam", benchSegments); err != nil {
			resBenchErr = err
			return
		}
		resBenchSrv = s
	})
	if resBenchErr != nil {
		b.Fatal(resBenchErr)
	}
	return resBenchSrv
}

// BenchmarkMaterializedQuery compares the three states of the
// materialization layer on one repeated query: "computed" recomputes every
// stage (the store disabled), "cold" pays the first materialized run (the
// store purged before every iteration, so each run retrieves, computes and
// stores), and "materialized" serves the steady state from stored operator
// outputs. With VSTORE_BENCH_MATERIALIZE=off the store stays disabled for
// all three — every sub-benchmark measures pure recomputation — which is
// the "before" side of the BENCH_PR7.json comparison pair.
func BenchmarkMaterializedQuery(b *testing.B) {
	s := materializeBenchServer(b)
	s.QueryWorkers = 8
	s.SetCacheBudget(0) // no frame cache: isolate the results layer
	enabled := os.Getenv("VSTORE_BENCH_MATERIALIZE") != "off"
	opNames := []string{"Diff", "S-NN", "NN"}
	query1 := func(b *testing.B) {
		if _, err := s.Query(context.Background(), "cam", query.QueryA(), opNames, 0.9, 0, benchSegments); err != nil {
			b.Fatal(err)
		}
	}
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			query1(b)
		}
	}

	s.SetResultsBudget(-1)
	b.Run("computed", run)

	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if enabled {
				b.StopTimer()
				s.SetResultsBudget(-1) // purge the previous iteration's fills
				s.SetResultsBudget(resBenchBudget)
				b.StartTimer()
			}
			query1(b)
		}
	})

	b.Run("materialized", func(b *testing.B) {
		if enabled {
			s.SetResultsBudget(resBenchBudget)
			query1(b) // warm pass: the measured steady state serves stored outputs
			b.ResetTimer()
		}
		run(b)
	})
	s.SetResultsBudget(-1)
}
