package server

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"

	"repro/internal/segment"
	"repro/internal/vidsim"
)

// TestCrashChild is the victim half of the crash-kill harness — not a
// test on its own. When VSTORE_CRASH_DIR is set it opens the store there
// and ingests (with interleaved demotion passes) until the parent
// SIGKILLs it mid-write; otherwise it skips. Failures exit non-zero so
// the parent can tell "child broke" from "child was killed".
func TestCrashChild(t *testing.T) {
	dir := os.Getenv("VSTORE_CRASH_DIR")
	if dir == "" {
		t.Skip("crash-harness child; run via TestCrashKillRecovery")
	}
	s, err := OpenWith(dir, Options{Shards: 2, DemoteAfterDays: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child open:", err)
		os.Exit(3)
	}
	sc, err := vidsim.DatasetByName("jackson")
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child scene:", err)
		os.Exit(3)
	}
	// Ingest forever, demoting everything old on every other turn so the
	// kill can land mid-ingest or mid-demotion with equal ease. Only the
	// SIGKILL ends this loop.
	for i := 0; ; i++ {
		if _, err := s.Ingest(sc, "cam", 1); err != nil {
			fmt.Fprintln(os.Stderr, "crash child ingest:", err)
			os.Exit(3)
		}
		if i%2 == 1 {
			if _, err := s.DemotePass(func(string, int) int { return 10 }); err != nil {
				fmt.Fprintln(os.Stderr, "crash child demote:", err)
				os.Exit(3)
			}
		}
	}
}

// TestCrashKillRecovery is the crash harness: repeatedly SIGKILL a child
// process mid-ingest and mid-demotion over one store directory, then
// reopen it and hold the durability line — the store opens, every
// committed replica passes checksum verification, committed leaf bytes
// equal a never-crashed ingest of the same footage, and queries answer.
func TestCrashKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()
	s, err := OpenWith(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reconfigure(selfhealConfig()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill delays are staggered so the SIGKILL lands at different points
	// of the ingest/demote cycle on every run.
	for run, delay := range []time.Duration{500 * time.Millisecond, 1100 * time.Millisecond, 800 * time.Millisecond} {
		cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$", "-test.v")
		cmd.Env = append(os.Environ(), "VSTORE_CRASH_DIR="+dir)
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(delay)
		if err := cmd.Process.Signal(syscall.Signal(0)); err != nil {
			cmd.Wait()
			t.Fatalf("run %d: child died on its own before the kill:\n%s", run, out.String())
		}
		if err := cmd.Process.Kill(); err != nil {
			t.Fatalf("run %d: kill: %v", run, err)
		}
		cmd.Wait()
	}

	// The store must reopen: replay tolerates whatever the kills tore.
	s2, err := OpenWith(dir, Options{Shards: 2})
	if err != nil {
		t.Fatalf("reopen after crashes: %v", err)
	}
	defer s2.Close()
	assertStoreClean(t, s2)

	// Committed segments survive byte-identically: re-ingest the same
	// footage in a never-crashed reference store and compare each
	// committed leaf replica. A kill mid-ingest may leave index holes
	// (reserved but never committed) — those are skipped, like erosion.
	n := s2.SegmentsOf("cam")
	if n == 0 {
		t.Fatal("no segment survived three crash runs; the child never committed")
	}
	ref, err := OpenWith(t.TempDir(), Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.Reconfigure(selfhealConfig()); err != nil {
		t.Fatal(err)
	}
	sc, err := vidsim.DatasetByName("jackson")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Ingest(sc, "cam", n); err != nil {
		t.Fatal(err)
	}
	committed, holes := 0, 0
	for i := 0; i < n; i++ {
		if !s2.manifest.Contains(segment.RefOf("cam", healLeafSF, i)) {
			holes++
			continue
		}
		committed++
		got, err := s2.segs.GetEncoded("cam", healLeafSF, i)
		if err != nil {
			t.Fatalf("segment %d committed but unreadable: %v", i, err)
		}
		want, err := ref.segs.GetEncoded("cam", healLeafSF, i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Marshal(), want.Marshal()) {
			t.Fatalf("segment %d replica bytes differ from a never-crashed ingest", i)
		}
	}
	t.Logf("crash recovery: %d segments committed, %d holes over 3 kills", committed, holes)
	if committed == 0 {
		t.Fatal("every surviving index is a hole")
	}

	// Queries answer over the survivor; with no holes the detections must
	// equal the never-crashed store's.
	cascade, names := motionCascade()
	got, err := s2.Query(context.Background(), "cam", cascade, names, 0.9, 0, n)
	if err != nil {
		t.Fatalf("query after crash recovery: %v", err)
	}
	if holes == 0 {
		want, err := ref.Query(context.Background(), "cam", cascade, names, 0.9, 0, n)
		if err != nil {
			t.Fatal(err)
		}
		sameDetections(t, want, got, "crash recovery")
	}
}
