package server

import (
	"context"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/erode"
	"repro/internal/ingest"
	"repro/internal/kvstore"
	"repro/internal/ops"
	"repro/internal/profile"
	"repro/internal/query"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

// segFrames is one segment's native frame count, used to cut submissions
// for the streaming pipelines.
const segFrames = segment.Frames

// pressureConfig derives a configuration whose erosion plan actually
// deletes segments (a storage budget between the floor and the full
// footprint), so erosion tests have teeth. The derivation profiles every
// operator, which is expensive under the race detector, so the result is
// memoised: it is read-only after creation and safe to share between
// servers.
func pressureConfig(t testing.TB, lifespan int) *core.Config {
	t.Helper()
	if lifespan != 3 {
		t.Fatalf("memoised pressureConfig only supports lifespan 3, got %d", lifespan)
	}
	pressureOnce.Do(func() { pressureCfg = derivePressureConfig(t, lifespan) })
	if pressureCfg == nil {
		t.Fatal("pressure config derivation failed in an earlier test")
	}
	return pressureCfg
}

var (
	pressureOnce sync.Once
	pressureCfg  *core.Config
)

func derivePressureConfig(t testing.TB, lifespan int) *core.Config {
	t.Helper()
	sc, err := vidsim.DatasetByName("jackson")
	if err != nil {
		t.Fatal(err)
	}
	p := profile.New(sc)
	p.ClipFrames = 120
	consumers := []core.Consumer{
		{Op: ops.Motion{}, Target: 0.9, Prof: p},
		{Op: ops.License{}, Target: 0.9, Prof: p},
	}
	choices := core.DeriveConsumptionFormats(consumers)
	d, err := core.DeriveStorageFormats(choices, core.SFOptions{Profiler: p})
	if err != nil {
		t.Fatal(err)
	}
	golden := d.SFs[d.Golden].Prof.BytesPerSec * 86400
	floor := d.TotalBytesPerSec()*86400 + float64(lifespan-1)*golden
	full := d.TotalBytesPerSec() * 86400 * float64(lifespan)
	plan, err := core.PlanErosion(d, core.ErosionOptions{
		Profiler: p, LifespanDays: lifespan,
		StorageBudgetBytes: int64(floor + 0.3*(full-floor)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &core.Config{Derivation: d, Erosion: plan}
}

func motionCascade() (query.Cascade, []string) {
	return query.Cascade{Name: "motion", Stages: []query.Stage{{Op: ops.Motion{}}}}, []string{"Motion"}
}

func sameDetections(t *testing.T, a, b QueryResult, what string) {
	t.Helper()
	if len(a.Results) != len(b.Results) {
		t.Fatalf("%s: %d vs %d epoch spans", what, len(a.Results), len(b.Results))
	}
	for i := range a.Results {
		if !reflect.DeepEqual(a.Results[i].Detections, b.Results[i].Detections) {
			t.Fatalf("%s: span %d detections differ", what, i)
		}
		if !reflect.DeepEqual(a.Results[i].FinalPTS, b.Results[i].FinalPTS) {
			t.Fatalf("%s: span %d consumed frames differ", what, i)
		}
	}
}

// TestSnapshotIsolationUnderErosion is the golden-path isolation test: a
// snapshot taken before an erosion pass keeps reading the pre-erosion
// segment set byte-identically, a snapshot taken after sees the eroded
// set, and physical deletion happens only at release.
func TestSnapshotIsolationUnderErosion(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := pressureConfig(t, 3)
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := s.Ingest(sc, "cam", 3); err != nil {
		t.Fatal(err)
	}
	cascade, names := motionCascade()
	ref, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, 3)
	if err != nil {
		t.Fatal(err)
	}

	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Segments("cam") != 3 {
		t.Fatalf("snapshot sees %d segments", snap.Segments("cam"))
	}
	deleted, err := s.ErodePass(func(_ string, idx int) int { return 3 - idx })
	if err != nil {
		t.Fatal(err)
	}
	if deleted == 0 {
		t.Fatal("erosion pass with pressure deleted nothing")
	}
	// The held snapshot still reads the full pre-erosion set.
	held, err := s.QueryAt(context.Background(), snap, "cam", cascade, names, 0.9, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	sameDetections(t, ref, held, "held snapshot after erosion")

	// Eroded records are pinned: the manifest defers their physical
	// deletion while the snapshot is held.
	if st := s.manifest.Stats(); st.PendingDeletes == 0 {
		t.Fatal("no deferred deletes while a snapshot pins eroded segments")
	}
	if st := s.Stats(); st.ActiveSnapshots != 1 {
		t.Fatalf("ActiveSnapshots = %d", st.ActiveSnapshots)
	}

	// A fresh snapshot observes the post-erosion set: strictly fewer
	// frames reach the first stage than the pre-erosion reference.
	post, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if post.Results[0].StageStats[0].FramesConsumed >= ref.Results[0].StageStats[0].FramesConsumed {
		t.Fatalf("post-erosion query consumed %d frames, reference %d",
			post.Results[0].StageStats[0].FramesConsumed, ref.Results[0].StageStats[0].FramesConsumed)
	}

	snap.Release()
	if st := s.manifest.Stats(); st.PendingDeletes != 0 {
		t.Fatalf("release left %d pending deletes", st.PendingDeletes)
	}
	if st := s.Stats(); st.ActiveSnapshots != 0 || st.SnapshotsTaken < 3 {
		t.Fatalf("snapshot counters = %+v", st)
	}
}

// TestErosionDaemonInvalidatesCache is the regression for cache
// invalidation under the background eroder: after a daemon pass, cached
// retrievals of the stream miss (the entries are gone and the eroded
// segment is invisible) instead of serving pre-erosion bytes.
func TestErosionDaemonInvalidatesCache(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Reconfigure(pressureConfig(t, 3)); err != nil {
		t.Fatal(err)
	}
	s.SetCacheBudget(64 << 20)
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := s.Ingest(sc, "cam", 3); err != nil {
		t.Fatal(err)
	}
	cascade, names := motionCascade()
	runQuery := func() QueryResult {
		res, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	runQuery() // cold: populates the cache
	warm := s.CacheStats()
	ref := runQuery() // warm: hits only
	afterWarm := s.CacheStats()
	if afterWarm.Hits == warm.Hits || afterWarm.Misses != warm.Misses {
		t.Fatalf("warm query did not hit: %+v -> %+v", warm, afterWarm)
	}

	d, err := s.StartErosionDaemon(time.Hour, erode.NewManualClock(), func(_ string, idx int) int { return 3 - idx })
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunPass(); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().Passes; got != 1 {
		t.Fatalf("daemon passes = %d", got)
	}
	if got := s.Stats().ErosionPasses; got != 1 {
		t.Fatalf("Stats().ErosionPasses = %d", got)
	}

	before := s.CacheStats()
	post := runQuery()
	after := s.CacheStats()
	// Every lookup after the pass must miss: the pass invalidated the
	// stream's entries, and the eroded segments are skipped before any
	// cache probe.
	if after.Hits != before.Hits {
		t.Fatalf("cache hit after erosion pass: %+v -> %+v", before, after)
	}
	if after.Misses == before.Misses {
		t.Fatalf("no cache activity after erosion pass: %+v -> %+v", before, after)
	}
	if post.Results[0].StageStats[0].FramesConsumed >= ref.Results[0].StageStats[0].FramesConsumed {
		t.Fatal("post-erosion query still consumed the full pre-erosion frame set")
	}
	if err := s.StopErosionDaemon(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveStreamLifecycle covers the streaming-ingest surface: start
// validation, submission through the pipeline, drain, stats, stop, and
// manifest rebuild on reopen.
func TestLiveStreamLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartStream("cam"); err == nil {
		t.Fatal("StartStream before Reconfigure accepted")
	}
	cfg := testConfig(t, "jackson", []ops.Operator{ops.Motion{}}, []float64{0.9})
	cfg.Runtime.IngestQueueDepth = 2
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	live, err := s.StartStream("cam")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.StartStream("cam"); err == nil {
		t.Fatal("double StartStream accepted")
	}
	sc, _ := vidsim.DatasetByName("jackson")
	src := vidsim.NewSource(sc)
	for i := 0; i < 2; i++ {
		if err := live.Submit(src.Clip(i*segFrames, segFrames)); err != nil {
			t.Fatal(err)
		}
	}
	s.DrainStreams()
	if got := s.SegmentsOf("cam"); got != 2 {
		t.Fatalf("SegmentsOf = %d", got)
	}
	st := s.LiveStreams()["cam"]
	if st.Submitted != 2 || st.Ingested != 2 || st.Failed != 0 || st.Queued != 0 {
		t.Fatalf("live stats = %+v", st)
	}
	cascade, names := motionCascade()
	res, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].StageStats[0].FramesConsumed == 0 {
		t.Fatal("live-ingested segments yielded no frames")
	}
	if err := s.StopStream("cam"); err != nil {
		t.Fatal(err)
	}
	if s.Stream("cam") != nil {
		t.Fatal("stream still registered after StopStream")
	}
	if err := live.Submit(src.Clip(0, segFrames)); err == nil {
		t.Fatal("Submit accepted after StopStream")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the manifest is rebuilt from disk, so the live-ingested
	// segments are queryable byte-identically.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res2, err := s2.Query(context.Background(), "cam", cascade, names, 0.9, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	sameDetections(t, res, res2, "after reopen")
}

// TestOpenReconcilesBareIngest: segments written by the bare ingest path
// (no server, no persisted stream position — the CLI's `vstore ingest`)
// are adopted on Open: the manifest commits them and the stream position
// advances past them, so live ingest appends instead of overwriting.
func TestOpenReconcilesBareIngest(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(t, "jackson", []ops.Operator{ops.Motion{}}, []float64{0.9})
	kv, err := kvstore.Open(filepath.Join(dir, "segments"), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := vidsim.DatasetByName("jackson")
	ing := ingest.Ingester{Store: segment.NewStore(kv), SFs: cfg.StorageFormats()}
	if _, err := ing.Stream(sc, "cam", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := s.SegmentsOf("cam"); got != 2 {
		t.Fatalf("SegmentsOf after bare ingest = %d, want 2", got)
	}
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(sc, "cam", 1); err != nil {
		t.Fatal(err)
	}
	if got := s.SegmentsOf("cam"); got != 3 {
		t.Fatalf("SegmentsOf after append = %d, want 3", got)
	}
	cascade, names := motionCascade()
	res, err := s.Query(context.Background(), "cam", cascade, names, 0.9, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var frames int64
	for _, r := range res.Results {
		frames += r.StageStats[0].FramesConsumed
	}
	if frames == 0 {
		t.Fatal("adopted segments yielded no frames")
	}
}

// TestLiveConcurrentServe is the race-focused end-to-end scenario the
// issue demands: two streams ingest through their pipelines while four
// queriers and the background erosion daemon run concurrently. Every
// query's snapshot is retained, and after the system quiesces each is
// re-queried: the live results must be byte-identical to the quiescent
// re-run over the same snapshot — no partial segments, no post-snapshot
// shrinkage, no stale cache bytes.
func TestLiveConcurrentServe(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Reconfigure(pressureConfig(t, 3)); err != nil {
		t.Fatal(err)
	}
	s.SetCacheBudget(32 << 20)

	segments := 5
	if testing.Short() {
		segments = 3
	}
	streams := []string{"cam0", "cam1"}
	scenes := []string{"jackson", "park"}
	for _, name := range streams {
		if _, err := s.StartStream(name); err != nil {
			t.Fatal(err)
		}
	}

	// The daemon ticks as fast as the firer can drive it, ageing segments
	// aggressively so erosion interleaves with ingest and queries.
	clock := erode.NewManualClock()
	if _, err := s.StartErosionDaemon(time.Hour, clock, func(stream string, idx int) int {
		return s.SegmentsOf(stream) - idx
	}); err != nil {
		t.Fatal(err)
	}
	fireDone := make(chan struct{})
	var firer sync.WaitGroup
	firer.Add(1)
	go func() {
		defer firer.Done()
		for {
			select {
			case <-fireDone:
				return
			default:
				if !clock.TryFire() {
					time.Sleep(time.Millisecond)
				}
			}
		}
	}()

	// Feeders: one per stream, submitting segments through the pipeline.
	var feeders sync.WaitGroup
	for i, name := range streams {
		i, name := i, name
		feeders.Add(1)
		go func() {
			defer feeders.Done()
			sc, err := vidsim.DatasetByName(scenes[i])
			if err != nil {
				t.Error(err)
				return
			}
			src := vidsim.NewSource(sc)
			live := s.Stream(name)
			for seg := 0; seg < segments; seg++ {
				if err := live.Submit(src.Clip(seg*segFrames, segFrames)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Queriers: four concurrent, round-robin over the streams, retaining
	// every snapshot + result pair for the post-hoc golden comparison.
	type observed struct {
		snap   *Snapshot
		stream string
		n      int
		res    QueryResult
	}
	cascade, names := motionCascade()
	var obsMu sync.Mutex
	var observations []observed
	ingestDone := make(chan struct{})
	var queriers sync.WaitGroup
	const keepPerQuerier = 32 // bound the held snapshots and the re-run cost
	for q := 0; q < 4; q++ {
		q := q
		queriers.Add(1)
		go func() {
			defer queriers.Done()
			kept := 0
			for iter := 0; ; iter++ {
				select {
				case <-ingestDone:
					return
				default:
				}
				stream := streams[(q+iter)%len(streams)]
				snap, err := s.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				n := snap.Segments(stream)
				if n == 0 {
					snap.Release()
					continue
				}
				res, err := s.QueryAt(context.Background(), snap, stream, cascade, names, 0.9, 0, n)
				if err != nil {
					t.Errorf("live query: %v", err)
					snap.Release()
					return
				}
				// Retain a sample for the golden comparison; later
				// iterations keep exercising the live path without
				// pinning every snapshot.
				if kept < keepPerQuerier {
					kept++
					obsMu.Lock()
					observations = append(observations, observed{snap, stream, n, res})
					obsMu.Unlock()
				} else {
					snap.Release()
					// Quota reached: keep exercising the live path, but
					// yield the (possibly single) CPU to the transcoders.
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}

	feeders.Wait()
	s.DrainStreams()
	close(ingestDone)
	queriers.Wait()
	close(fireDone)
	firer.Wait()
	if err := s.StopErosionDaemon(); err != nil {
		t.Fatal(err)
	}
	for _, name := range streams {
		if err := s.StopStream(name); err != nil {
			t.Fatal(err)
		}
	}

	// Quiesced: re-run every retained snapshot's query and demand
	// byte-identical detections and consumed-frame timelines.
	if len(observations) == 0 {
		t.Fatal("no queries completed during the live phase")
	}
	for i, ob := range observations {
		again, err := s.QueryAt(context.Background(), ob.snap, ob.stream, cascade, names, 0.9, 0, ob.n)
		if err != nil {
			t.Fatalf("quiescent re-run %d: %v", i, err)
		}
		sameDetections(t, ob.res, again, "live vs quiescent")
		ob.snap.Release()
	}
	t.Logf("verified %d live queries against quiescent re-runs", len(observations))

	st := s.Stats()
	if st.ActiveSnapshots != 0 {
		t.Fatalf("snapshots leaked: %+v", st)
	}
	if st.SnapshotsTaken < int64(len(observations)) {
		t.Fatalf("SnapshotsTaken = %d < %d observations", st.SnapshotsTaken, len(observations))
	}
	if s.manifest.Stats().PendingDeletes != 0 {
		t.Fatal("pending physical deletes after all snapshots released")
	}
	for _, name := range streams {
		if got := s.SegmentsOf(name); got != segments {
			t.Fatalf("%s ingested %d segments, want %d", name, got, segments)
		}
	}
}
