package server

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/format"
	"repro/internal/ops"
	"repro/internal/profile"
	"repro/internal/query"
	"repro/internal/vidsim"
)

func testConfig(t testing.TB, scene string, operators []ops.Operator, targets []float64) *core.Config {
	t.Helper()
	sc, err := vidsim.DatasetByName(scene)
	if err != nil {
		t.Fatal(err)
	}
	p := profile.New(sc)
	p.ClipFrames = 120
	var consumers []core.Consumer
	for _, op := range operators {
		for _, tgt := range targets {
			consumers = append(consumers, core.Consumer{Op: op, Target: tgt, Prof: p})
		}
	}
	cfg, err := core.Configure(consumers, core.Options{StorageProfiler: p})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestServerLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := vidsim.DatasetByName("jackson")

	if _, err := s.Ingest(sc, "cam", 1); err == nil {
		t.Fatal("ingest without configuration accepted")
	}
	cfg := testConfig(t, "jackson", []ops.Operator{ops.Diff{}, ops.SNN{}, ops.NN{}}, []float64{0.9, 0.8})
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	if s.Current() == nil {
		t.Fatal("no current config after Reconfigure")
	}
	st, err := s.Ingest(sc, "cam", 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 2 || s.SegmentsOf("cam") != 2 {
		t.Fatalf("segments: %d / %d", st.Segments, s.SegmentsOf("cam"))
	}
	res, err := s.Query(context.Background(), "cam", query.QueryA(), []string{"Diff", "S-NN", "NN"}, 0.9, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 {
		t.Fatalf("expected 1 epoch span, got %d", len(res.Results))
	}
	if res.Speed() <= 1 {
		t.Fatalf("query speed %.1fx", res.Speed())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServerPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t, "park", []ops.Operator{ops.Motion{}}, []float64{0.8})
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	sc, _ := vidsim.DatasetByName("park")
	if _, err := s.Ingest(sc, "cam", 1); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.SegmentsOf("cam") != 1 {
		t.Fatalf("stream position lost: %d", s2.SegmentsOf("cam"))
	}
	if len(s2.Epochs()) != 1 {
		t.Fatalf("epochs lost: %d", len(s2.Epochs()))
	}
	// Ingestion continues where it left off under the restored epoch.
	if _, err := s2.Ingest(sc, "cam", 1); err != nil {
		t.Fatal(err)
	}
	if s2.SegmentsOf("cam") != 2 {
		t.Fatalf("position after reopen+ingest: %d", s2.SegmentsOf("cam"))
	}
	if _, err := s2.Query(context.Background(), "cam", query.Cascade{Name: "m", Stages: []query.Stage{{Op: ops.Motion{}}}},
		[]string{"Motion"}, 0.8, 0, 2); err != nil {
		t.Fatal(err)
	}
}

// TestEpochTransition reproduces §7's behaviour: after a reconfiguration,
// old segments stay in their old formats and are still queryable, with old
// epochs serving the new consumption formats from their cheapest
// satisfiable storage format.
func TestEpochTransition(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sc, _ := vidsim.DatasetByName("jackson")

	cfg1 := testConfig(t, "jackson", []ops.Operator{ops.Motion{}}, []float64{0.9, 0.7})
	if err := s.Reconfigure(cfg1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(sc, "cam", 2); err != nil {
		t.Fatal(err)
	}
	// The library grows: Motion plus Color (a new operator).
	cfg2 := testConfig(t, "jackson", []ops.Operator{ops.Motion{}, ops.Color{}}, []float64{0.9, 0.7})
	if err := s.Reconfigure(cfg2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(sc, "cam", 2); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Epochs()); got != 2 {
		t.Fatalf("epochs = %d", got)
	}
	// A query across the boundary must split into two spans and succeed.
	colorCascade := query.Cascade{Name: "color", Stages: []query.Stage{{Op: ops.Color{}}}}
	res, err := s.Query(context.Background(), "cam", colorCascade, []string{"Color"}, 0.9, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("epoch spans = %d, want 2", len(res.Results))
	}
	for i, r := range res.Results {
		if r.VideoSeconds != 16 {
			t.Fatalf("span %d covers %.0fs, want 16", i, r.VideoSeconds)
		}
	}
	// Old segments must still exist only in epoch-1 formats.
	for _, sf := range cfg2.StorageFormats() {
		inOld := false
		for _, old := range cfg1.StorageFormats() {
			if old == sf {
				inOld = true
			}
		}
		if inOld {
			continue
		}
		segs := segsOf(s, "cam", sf)
		for _, idx := range segs {
			if idx < 2 {
				t.Fatalf("old segment %d was transcoded into new format %v", idx, sf)
			}
		}
	}
}

func segsOf(s *Server, stream string, sf format.StorageFormat) []int {
	return s.segs.Segments(stream, sf)
}

func TestEpochEncodingRoundTrip(t *testing.T) {
	cfg := testConfig(t, "park", []ops.Operator{ops.Diff{}}, []float64{0.8})
	ep := &Epoch{ID: 3, Since: map[string]int{"a": 7, "b": 0}, Cfg: cfg}
	b, err := encodeEpoch(ep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeEpoch(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 3 || got.Since["a"] != 7 || got.Since["b"] != 0 {
		t.Fatalf("round trip: %+v", got)
	}
	if len(got.Cfg.Derivation.SFs) != len(cfg.Derivation.SFs) {
		t.Fatal("config lost in epoch round trip")
	}
	if _, err := decodeEpoch(b[:4]); err == nil {
		t.Fatal("short epoch accepted")
	}
	if _, err := decodeEpoch(b[:12]); err == nil {
		t.Fatal("truncated epoch accepted")
	}
}

func TestIntersectFidelity(t *testing.T) {
	a := format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: 720, Sampling: format.Sampling{Num: 1, Den: 1}}
	b := format.Fidelity{Quality: format.QBad, Crop: format.Crop100, Res: 360, Sampling: format.Sampling{Num: 1, Den: 6}}
	got := intersectFidelity(a, b)
	if got != b {
		t.Fatalf("intersect = %v, want %v", got, b)
	}
	if intersectFidelity(b, a) != b {
		t.Fatal("intersect not commutative here")
	}
}

func TestServerErode(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// A configuration with storage pressure so the plan actually erodes.
	sc, _ := vidsim.DatasetByName("jackson")
	p := profile.New(sc)
	p.ClipFrames = 120
	consumers := []core.Consumer{
		{Op: ops.Motion{}, Target: 0.9, Prof: p},
		{Op: ops.License{}, Target: 0.9, Prof: p},
	}
	choices := core.DeriveConsumptionFormats(consumers)
	d, err := core.DeriveStorageFormats(choices, core.SFOptions{Profiler: p})
	if err != nil {
		t.Fatal(err)
	}
	lifespan := 3
	golden := d.SFs[d.Golden].Prof.BytesPerSec * 86400
	floor := d.TotalBytesPerSec()*86400 + float64(lifespan-1)*golden
	full := d.TotalBytesPerSec() * 86400 * float64(lifespan)
	plan, err := core.PlanErosion(d, core.ErosionOptions{
		Profiler: p, LifespanDays: lifespan,
		StorageBudgetBytes: int64(floor + 0.3*(full-floor)),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &core.Config{Derivation: d, Erosion: plan}
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(sc, "cam", 3); err != nil {
		t.Fatal(err)
	}
	deleted, err := s.Erode("cam", func(idx int) int { return 3 - idx })
	if err != nil {
		t.Fatal(err)
	}
	if plan.K > 0 && deleted == 0 {
		t.Fatal("erosion plan has pressure but nothing was deleted")
	}
	// Golden segments intact.
	g := cfg.StorageFormats()[d.Golden]
	if got := len(segsOf(s, "cam", g)); got != 3 {
		t.Fatalf("golden segments = %d, want 3", got)
	}
}

func TestQueryUnknownConsumer(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cfg := testConfig(t, "park", []ops.Operator{ops.Motion{}}, []float64{0.8})
	if err := s.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	sc, _ := vidsim.DatasetByName("park")
	if _, err := s.Ingest(sc, "cam", 1); err != nil {
		t.Fatal(err)
	}
	_, err = s.Query(context.Background(), "cam", query.QueryB(), []string{"Motion", "License", "OCR"}, 0.8, 0, 1)
	if err == nil || !strings.Contains(err.Error(), "no consumer") {
		t.Fatalf("unknown consumer: %v", err)
	}
}
