// Live serving: per-stream streaming-ingest pipelines, explicit query
// snapshots, and the background erosion daemon. See the package comment
// for how the three compose into concurrent ingest-while-query with
// snapshot isolation.

package server

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/codec"
	"repro/internal/erode"
	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/ingest"
	"repro/internal/results"
	"repro/internal/segment"
)

// Snapshot is a server-wide consistent read view: the segment manifest,
// the epoch list, and every stream's committed length, all frozen at one
// instant. Queries through it (QueryAt) are repeatable — concurrent ingest
// and erosion change nothing a held snapshot can observe — and segments
// eroded after the snapshot stay physically readable until Release.
type Snapshot struct {
	ms     *segment.Snapshot
	view   *segment.View // snapshot-scoped read surface over the segment store
	epochs []*Epoch
	lens   map[string]int
}

// Snapshot freezes the current server state for querying. Callers must
// Release it; Query does this automatically for the common one-shot case.
func (s *Server) Snapshot() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server: closed")
	}
	lens := make(map[string]int, len(s.next))
	for k, v := range s.next {
		lens[k] = v
	}
	ms := s.manifest.Snapshot()
	return &Snapshot{
		ms:     ms,
		view:   &segment.View{Store: s.segs, Snap: ms},
		epochs: append([]*Epoch(nil), s.epochs...),
		lens:   lens,
	}, nil
}

// Segments returns the stream's segment count when the snapshot was taken;
// [0, Segments) is the widest range a snapshot query can cover.
func (sn *Snapshot) Segments(stream string) int { return sn.lens[stream] }

// StreamSegments returns every stream's committed length at the pin — what
// a snapshot lease reports to the remote peer that pinned it.
func (sn *Snapshot) StreamSegments() map[string]int {
	out := make(map[string]int, len(sn.lens))
	for k, v := range sn.lens {
		out[k] = v
	}
	return out
}

// Refs returns the snapshot's sorted committed segment indices of the
// stream in the storage format identified by sfKey (store.Snapshot's
// enumeration surface).
func (sn *Snapshot) Refs(stream, sfKey string) []int { return sn.ms.Segments(stream, sfKey) }

// RefsOf returns every committed replica of the stream in the snapshot,
// sorted by (format key, index) — the full enumeration replication pulls
// walk.
func (sn *Snapshot) RefsOf(stream string) []segment.Ref { return sn.ms.Refs(stream) }

// Visible reports whether the replica was committed when the snapshot was
// taken. Together with GetEncoded and GetRaw this makes the Snapshot
// itself a retrieve.SegmentReader — the surface a query engine (local or
// remote) reads through.
func (sn *Snapshot) Visible(stream string, sf format.StorageFormat, idx int) bool {
	return sn.view.Visible(stream, sf, idx)
}

// GetEncoded loads an encoded segment the snapshot contains.
func (sn *Snapshot) GetEncoded(stream string, sf format.StorageFormat, idx int) (*codec.Encoded, error) {
	return sn.view.GetEncoded(stream, sf, idx)
}

// GetRaw loads a raw segment's kept frames if the snapshot contains it.
func (sn *Snapshot) GetRaw(stream string, sf format.StorageFormat, idx int, keep func(pts int) bool) ([]*frame.Frame, int64, error) {
	return sn.view.GetRaw(stream, sf, idx, keep)
}

// ContainsRef reports whether the replica (by manifest ref) is in the
// snapshot's committed set.
func (sn *Snapshot) ContainsRef(r segment.Ref) bool { return sn.ms.Contains(r) }

// GetEncodedRef reads an encoded replica by manifest ref through the
// snapshot: outside the committed set is ErrNotFound, inside it the bytes
// are physically readable even if erosion removed the segment after the
// pin — exactly what /v1/segment serves a remote peer.
func (sn *Snapshot) GetEncodedRef(r segment.Ref) (*codec.Encoded, error) {
	if !sn.ms.Contains(r) {
		return nil, segment.ErrNotFound
	}
	return sn.view.Store.GetEncodedRef(r)
}

// GetRawRef reads every present frame of a raw replica by manifest ref
// through the snapshot.
func (sn *Snapshot) GetRawRef(r segment.Ref) ([]*frame.Frame, int64, error) {
	if !sn.ms.Contains(r) {
		return nil, 0, segment.ErrNotFound
	}
	return sn.view.Store.GetRawRef(r)
}

// Release ends the snapshot's pin on eroded-but-undeleted segments. It is
// idempotent.
func (sn *Snapshot) Release() error { return sn.ms.Release() }

// SubscribeCommits registers fn to observe every segment commit from this
// point on — the hook standing queries hang off. fn runs inside the
// manifest's commit step (atomic with visibility: a snapshot taken after
// fn observes a commit always contains that segment), so it must be fast,
// non-blocking, and must not call back into the server or manifest; hand
// the Commit off to a bounded channel. The returned cancel is idempotent
// in effect: after it returns, fn never runs again.
func (s *Server) SubscribeCommits(fn func(segment.Commit)) (cancel func()) {
	return s.manifest.SubscribeCommits(fn)
}

// manifestSet adapts the manifest to erosion's SegmentSet: enumeration
// sees only committed segments (never a replica an earlier pass already
// removed but whose records a snapshot still pins), and deletion is
// logical-first through the manifest.
type manifestSet struct {
	m       *segment.Manifest
	store   *segment.Store
	results *results.Store // may be nil (materialization disabled)
}

func (ms manifestSet) Segments(stream string, sf format.StorageFormat) []int {
	return ms.m.Segments(stream, sf.Key())
}

func (ms manifestSet) Delete(stream string, sf format.StorageFormat, idx int) error {
	// Materialized results for the segment drop BEFORE the replica leaves
	// the manifest — and long before its bytes are physically deleted — so
	// no window exists where a query could serve a stored result for
	// footage the store has already let go. The invalidation also bumps the
	// stream's generation, dropping in-flight fills that raced the removal.
	ms.results.InvalidateSegment(stream, idx)
	return ms.m.Remove(segment.RefOf(stream, sf, idx))
}

// StartStream opens a live streaming-ingest pipeline for the named stream:
// a dedicated goroutine drains a bounded segment queue (depth from
// Runtime.IngestQueueDepth), transcoding each segment on the shared pool
// and committing it atomically. Submit full-fidelity segments on the
// returned pipeline; stop it with StopStream (or Close, which stops all).
func (s *Server) StartStream(name string) (*ingest.Stream, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server: closed")
	}
	if len(s.epochs) == 0 {
		return nil, fmt.Errorf("server: no configuration installed; call Reconfigure first")
	}
	if _, ok := s.streams[name]; ok {
		return nil, fmt.Errorf("server: stream %q is already live", name)
	}
	depth := s.epochs[len(s.epochs)-1].Cfg.Runtime.IngestQueueDepth
	st := ingest.NewStream(name, depth, func(full []*frame.Frame) error {
		_, _, err := s.ingestSegment(name, func(int) []*frame.Frame { return full })
		return err
	})
	s.streams[name] = st
	return st, nil
}

// Stream returns the named live pipeline, or nil if it is not running.
func (s *Server) Stream(name string) *ingest.Stream {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.streams[name]
}

// StopStream drains and stops the named live pipeline, returning its first
// ingest error (nil for an unknown stream).
func (s *Server) StopStream(name string) error {
	s.mu.Lock()
	st := s.streams[name]
	delete(s.streams, name)
	s.mu.Unlock()
	if st == nil {
		return nil
	}
	return st.Stop()
}

// DrainStreams blocks until every live pipeline's queue is empty — every
// segment submitted so far is durably ingested (or failed). Streams keep
// accepting segments.
func (s *Server) DrainStreams() {
	s.mu.Lock()
	streams := make([]*ingest.Stream, 0, len(s.streams))
	for _, st := range s.streams {
		streams = append(streams, st)
	}
	s.mu.Unlock()
	for _, st := range streams {
		st.Drain()
	}
}

// LiveStreams reports the per-stream ingest stats of every live pipeline.
func (s *Server) LiveStreams() map[string]ingest.StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]ingest.StreamStats, len(s.streams))
	for name, st := range s.streams {
		out[name] = st.Stats()
	}
	return out
}

// AgeFunc maps a stream's segment index to its age in days — the erosion
// daemon's notion of footage age.
type AgeFunc func(stream string, idx int) int

// AgeByToday returns the usual deployment age function: segment ages grow
// as today advances, one day per erode.SegmentsPerDay segments.
func AgeByToday(today func() int) AgeFunc {
	return func(_ string, idx int) int { return today() - idx/erode.SegmentsPerDay }
}

// ErodePass runs one erosion pass over every known stream — what the
// background daemon does on each tick. It returns the total segments
// eroded and the first per-stream error.
func (s *Server) ErodePass(age AgeFunc) (int, error) {
	s.mu.Lock()
	streams := make([]string, 0, len(s.next))
	for name := range s.next {
		streams = append(streams, name)
	}
	s.mu.Unlock()
	sort.Strings(streams)
	total := 0
	var firstErr error
	for _, stream := range streams {
		stream := stream
		n, err := s.Erode(stream, func(idx int) int { return age(stream, idx) })
		total += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// StartErosionDaemon launches the background erosion daemon: every
// interval (Runtime.ErodeInterval when zero) it applies each epoch's
// erosion plan and retention expiry to every stream, invalidating the
// retrieval cache for eroded segments generation-safely exactly as a
// manual Erode does. clock nil selects the wall clock; tests inject
// erode.NewManualClock() to drive passes deterministically.
func (s *Server) StartErosionDaemon(interval time.Duration, clock erode.Clock, age AgeFunc) (*erode.Daemon, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server: closed")
	}
	if s.daemon != nil {
		return nil, fmt.Errorf("server: erosion daemon already running")
	}
	if interval <= 0 && len(s.epochs) > 0 {
		interval = s.epochs[len(s.epochs)-1].Cfg.Runtime.ErodeInterval
	}
	d := &erode.Daemon{
		Interval: interval,
		Clock:    clock,
		// Demotion runs before erosion on every tick: aged segments
		// migrate off the fast tier (and the fast-tier budget is
		// re-enforced) before the erosion plan decides what footage to
		// drop entirely.
		Demote: func() error {
			_, err := s.DemotePass(age)
			return err
		},
		Pass: func() error {
			_, err := s.ErodePass(age)
			return err
		},
		// The integrity scrub joins the rotation after erosion: bit rot
		// is found and healed on the same cadence footage ages.
		Scrub: func() error {
			_, err := s.ScrubPass()
			return err
		},
	}
	if err := d.Start(); err != nil {
		return nil, err
	}
	s.daemon = d
	return d, nil
}

// StopErosionDaemon stops the background eroder, returning its last pass
// error. It is a no-op when no daemon runs.
func (s *Server) StopErosionDaemon() error {
	s.mu.Lock()
	d := s.daemon
	s.mu.Unlock()
	if d == nil {
		return nil
	}
	// Stop outside mu: it waits for an in-flight pass, which takes mu via
	// ErodePass. The daemon is unregistered only after its passes fold
	// into the running total, so Stats never observes the counter dip,
	// and the registration check keeps a concurrent Stop from folding
	// twice.
	err := d.Stop()
	s.mu.Lock()
	if s.daemon == d {
		s.pastErodePasses += d.Stats().Passes
		s.daemon = nil
	}
	s.mu.Unlock()
	return err
}
