// Package kvstore is an embedded key-value store, the reproduction's
// substitute for LMDB as VStore's storage backend. It is log-structured:
// records are appended to numbered log files with CRC-32 framing, an
// in-memory index maps each live key to its latest record, deletions write
// tombstones, and explicit compaction rewrites live data to reclaim space.
// Values of several megabytes (one 8-second video segment) are the design
// point, matching the paper's reason for choosing LMDB.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

const (
	recHeaderSize  = 4 + 4 + 4 // crc, keyLen, valLen
	tombstoneVLen  = ^uint32(0)
	logSuffix      = ".log"
	tmpSuffix      = ".tmp"   // compaction staging files: <id>.log.tmp
	defaultMaxFile = 64 << 20 // rotate active log at 64 MiB
	maxKeyLen      = 1 << 16
	maxValLen      = 1 << 30
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("kvstore: key not found")

// ErrCorrupt is returned by Get and Scan when a record's stored checksum
// no longer matches its bytes — post-write damage (bit rot, a bad
// sector, a torn overwrite), as opposed to a key that was never written
// or was deleted (ErrNotFound). Callers distinguish the two because the
// remedies differ: a corrupt replica can be re-derived from a richer
// surviving format, a missing one was removed on purpose.
var ErrCorrupt = errors.New("kvstore: corrupt record")

// Options configures a store.
type Options struct {
	// MaxFileBytes rotates the active log once it exceeds this size.
	// Zero selects the default (64 MiB).
	MaxFileBytes int64
	// SyncWrites fsyncs the active log after every Put/Delete.
	SyncWrites bool
	// FaultScope names this store in fault-injection sites (e.g.
	// "fast/000" for a tier shard): hooks see "<scope>:<key>" for reads
	// and writes and "<scope>" for syncs and compactions. Empty is fine —
	// injection then matches on the key part alone.
	FaultScope string
}

type recordLoc struct {
	file   uint32
	valOff int64 // offset of the value bytes within the file
	valLen uint32
}

// Store is a log-structured key-value store. All methods are safe for
// concurrent use.
type Store struct {
	mu      sync.RWMutex
	dir     string
	opts    Options
	index   map[string]recordLoc
	files   map[uint32]*os.File
	active  uint32
	actSize int64
	garbage int64 // bytes of superseded records
	live    int64 // bytes of live values
	closed  bool

	corruptReads   atomic.Uint64 // reads whose CRC failure survived a re-read
	transientReads atomic.Uint64 // CRC failures that cleared on re-read
}

// rsite is the fault-injection site of one keyed operation.
func (s *Store) rsite(key string) string { return s.opts.FaultScope + ":" + key }

// Open opens (creating if necessary) a store in dir and replays its logs to
// rebuild the index. A torn record at the tail of the newest log — the
// signature of a crash mid-write — is truncated away. A record whose
// frame is intact but whose checksum no longer matches (post-write
// damage) is indexed anyway: reading it returns ErrCorrupt, so the
// repair layer can re-derive it — damage survives a restart instead of
// making the store unopenable. Corruption that destroys record framing
// in an older log is still reported as an error. Stale compaction
// staging files (*.log.tmp) left by a crash mid-compaction are removed.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxFileBytes <= 0 {
		opts.MaxFileBytes = defaultMaxFile
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	tmps, err := filepath.Glob(filepath.Join(dir, "*"+logSuffix+tmpSuffix))
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	for _, t := range tmps {
		if err := os.Remove(t); err != nil {
			return nil, fmt.Errorf("kvstore: removing stale %s: %w", t, err)
		}
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		index: make(map[string]recordLoc),
		files: make(map[uint32]*os.File),
	}
	ids, err := listLogs(dir)
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		f, err := os.OpenFile(s.logPath(id), os.O_RDWR, 0)
		if err != nil {
			return nil, fmt.Errorf("kvstore: %w", err)
		}
		s.files[id] = f
		lastFile := i == len(ids)-1
		size, err := s.replay(id, f, lastFile)
		if err != nil {
			s.closeAll()
			return nil, err
		}
		if lastFile {
			s.active = id
			s.actSize = size
		}
	}
	if len(ids) == 0 {
		if err := s.rotateLocked(1); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) logPath(id uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("%06d%s", id, logSuffix))
}

func listLogs(dir string) ([]uint32, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	var ids []uint32
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, logSuffix) {
			continue
		}
		var id uint32
		if _, err := fmt.Sscanf(name, "%06d", &id); err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// replay scans one log, updating the index. For the newest log a torn tail
// is truncated; for older logs it is corruption.
func (s *Store) replay(id uint32, f *os.File, tolerateTail bool) (int64, error) {
	var off int64
	var hdr [recHeaderSize]byte
	for {
		_, err := f.ReadAt(hdr[:], off)
		if err == io.EOF {
			return off, nil
		}
		if err == io.ErrUnexpectedEOF {
			return s.tornTail(id, f, off, tolerateTail)
		}
		if err != nil {
			return 0, fmt.Errorf("kvstore: replay %s: %w", s.logPath(id), err)
		}
		wantCRC := binary.BigEndian.Uint32(hdr[0:])
		kl := binary.BigEndian.Uint32(hdr[4:])
		vl := binary.BigEndian.Uint32(hdr[8:])
		vlen := vl
		if vl == tombstoneVLen {
			vlen = 0
		}
		if kl > maxKeyLen || vlen > maxValLen {
			return s.tornTail(id, f, off, tolerateTail)
		}
		body := make([]byte, int(kl)+int(vlen))
		if _, err := f.ReadAt(body, off+recHeaderSize); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return s.tornTail(id, f, off, tolerateTail)
			}
			return 0, fmt.Errorf("kvstore: replay %s: %w", s.logPath(id), err)
		}
		if crc32.ChecksumIEEE(append(hdr[4:recHeaderSize:recHeaderSize], body...)) != wantCRC {
			if vl == tombstoneVLen {
				// A corrupt tombstone neither deletes nor stores: applying
				// a delete whose key bytes cannot be trusted could drop the
				// wrong key. Skip the record and keep replaying.
				off += recHeaderSize + int64(kl)
				continue
			}
			// The frame is intact (the full body was readable at plausible
			// lengths) but the bytes are damaged — bit rot, not a torn
			// tail. Fall through and index it: Get fails its own CRC check
			// with ErrCorrupt and the repair layer re-derives the replica.
		}
		key := string(body[:kl])
		if old, ok := s.index[key]; ok {
			s.garbage += int64(recHeaderSize + len(key))
			s.garbage += int64(old.valLen)
			s.live -= int64(old.valLen)
		}
		if vl == tombstoneVLen {
			delete(s.index, key)
			s.garbage += recHeaderSize + int64(kl)
		} else {
			s.index[key] = recordLoc{file: id, valOff: off + recHeaderSize + int64(kl), valLen: vl}
			s.live += int64(vl)
		}
		off += recHeaderSize + int64(kl) + int64(vlen)
	}
}

func (s *Store) tornTail(id uint32, f *os.File, off int64, tolerate bool) (int64, error) {
	if !tolerate {
		return 0, fmt.Errorf("kvstore: %s corrupt at offset %d", s.logPath(id), off)
	}
	if err := f.Truncate(off); err != nil {
		return 0, fmt.Errorf("kvstore: truncating torn tail of %s: %w", s.logPath(id), err)
	}
	return off, nil
}

// rotateLocked opens a fresh active log with the given id. Caller holds mu
// (or is the constructor).
func (s *Store) rotateLocked(id uint32) error {
	f, err := os.OpenFile(s.logPath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	s.files[id] = f
	s.active = id
	s.actSize = 0
	return nil
}

// Put stores value under key, replacing any existing value.
func (s *Store) Put(key string, value []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("kvstore: invalid key length %d", len(key))
	}
	if len(value) > maxValLen {
		return fmt.Errorf("kvstore: value too large (%d bytes)", len(value))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(key, value, false)
}

// Delete removes key. Deleting a missing key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; !ok {
		return nil
	}
	return s.appendLocked(key, nil, true)
}

func (s *Store) appendLocked(key string, value []byte, tombstone bool) error {
	if s.closed {
		return errors.New("kvstore: store is closed")
	}
	if s.actSize >= s.opts.MaxFileBytes {
		if err := s.rotateLocked(s.active + 1); err != nil {
			return err
		}
	}
	f := s.files[s.active]
	buf := make([]byte, recHeaderSize+len(key)+len(value))
	binary.BigEndian.PutUint32(buf[4:], uint32(len(key)))
	if tombstone {
		binary.BigEndian.PutUint32(buf[8:], tombstoneVLen)
	} else {
		binary.BigEndian.PutUint32(buf[8:], uint32(len(value)))
	}
	copy(buf[recHeaderSize:], key)
	copy(buf[recHeaderSize+len(key):], value)
	binary.BigEndian.PutUint32(buf[0:], crc32.ChecksumIEEE(buf[4:]))
	off := s.actSize
	if n, ferr := fault.OnWrite(s.rsite(key), len(buf)); ferr != nil {
		if n > 0 {
			// A torn write: the prefix a crash mid-write would leave on
			// disk. actSize does not advance, so the next append
			// overwrites it in-process; after a real crash, replay's
			// torn-tail truncation removes it.
			f.WriteAt(buf[:n], off)
		}
		return fmt.Errorf("kvstore: append: %w", ferr)
	}
	if _, err := f.WriteAt(buf, off); err != nil {
		return fmt.Errorf("kvstore: append: %w", err)
	}
	if s.opts.SyncWrites {
		if err := fault.OnSync(s.opts.FaultScope); err != nil {
			return fmt.Errorf("kvstore: sync: %w", err)
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("kvstore: sync: %w", err)
		}
	}
	s.actSize += int64(len(buf))
	if old, ok := s.index[key]; ok {
		s.garbage += recHeaderSize + int64(len(key)) + int64(old.valLen)
		s.live -= int64(old.valLen)
	}
	if tombstone {
		delete(s.index, key)
		s.garbage += int64(recHeaderSize + len(key))
	} else {
		s.index[key] = recordLoc{file: s.active, valOff: off + recHeaderSize + int64(len(key)), valLen: uint32(len(value))}
		s.live += int64(len(value))
	}
	return nil
}

// Sync fsyncs every log file, making all records appended so far
// durable (a recent append may live in a just-rotated log, so the
// active file alone is not enough). Callers that need an ordering
// barrier between writes to different stores (e.g. tier demotion's
// copy-before-delete) sync the written store before mutating the other.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("kvstore: store is closed")
	}
	if err := fault.OnSync(s.opts.FaultScope); err != nil {
		return fmt.Errorf("kvstore: sync: %w", err)
	}
	for _, f := range s.files {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("kvstore: sync: %w", err)
		}
	}
	return nil
}

// readRecord reads key's full record (header, key, value) and reports
// whether its stored checksum verifies. Caller holds mu.
func (s *Store) readRecord(key string, loc recordLoc) (rec []byte, ok bool, err error) {
	recOff := loc.valOff - int64(len(key)) - recHeaderSize
	rec = make([]byte, recHeaderSize+len(key)+int(loc.valLen))
	if _, err := s.files[loc.file].ReadAt(rec, recOff); err != nil {
		return nil, false, fmt.Errorf("kvstore: read %q: %w", key, err)
	}
	if err := fault.OnRead(s.rsite(key), rec); err != nil {
		return nil, false, fmt.Errorf("kvstore: read %q: %w", key, err)
	}
	return rec, crc32.ChecksumIEEE(rec[4:]) == binary.BigEndian.Uint32(rec[0:]), nil
}

// readRecordVerified reads key's record, re-reading once when the
// checksum fails: a CRC mismatch observed on one read is not always on
// the medium — corruption picked up on the read path itself (controller,
// bus, an injected flip) clears on retry, while true bit rot fails
// again. Only damage that survives the re-read is reported as corrupt;
// a recovered read counts toward TransientReads. I/O errors are not
// retried — an error is the device refusing the read, not the data
// arriving wrong. Caller holds mu.
func (s *Store) readRecordVerified(key string, loc recordLoc) ([]byte, bool, error) {
	rec, ok, err := s.readRecord(key, loc)
	if err != nil || ok {
		return rec, ok, err
	}
	rec, ok, err = s.readRecord(key, loc)
	if err == nil && ok {
		s.transientReads.Add(1)
	}
	return rec, ok, err
}

// Get returns the value stored under key, or ErrNotFound. The whole
// record is re-read and its checksum verified on every call, so damage
// that landed after the original write (bit rot, a bad sector) surfaces
// as ErrCorrupt instead of being served silently into a query.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, errors.New("kvstore: store is closed")
	}
	loc, ok := s.index[key]
	if !ok {
		return nil, ErrNotFound
	}
	rec, ok, err := s.readRecordVerified(key, loc)
	if err != nil {
		return nil, err
	}
	if !ok {
		s.corruptReads.Add(1)
		return nil, fmt.Errorf("kvstore: read %q: %w", key, ErrCorrupt)
	}
	return rec[recHeaderSize+len(key):], nil
}

// Has reports whether key is present.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Keys returns all live keys with the given prefix in sorted order.
func (s *Store) Keys(prefix string) []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Scan calls fn for every live key with the given prefix, in sorted key
// order, with the stored value. Scanning stops early if fn returns false.
func (s *Store) Scan(prefix string, fn func(key string, value []byte) bool) error {
	for _, k := range s.Keys(prefix) {
		v, err := s.Get(k)
		if err == ErrNotFound {
			continue // deleted between listing and read
		}
		if err != nil {
			return err
		}
		if !fn(k, v) {
			return nil
		}
	}
	return nil
}

// Stats reports store occupancy, plus the activity of any retrieval cache
// layered in front of the store. The cache counters are populated by the
// owning layer (the server wires its retrieval cache through here so one
// Stats call describes the whole storage path); they stay zero when no
// cache is attached.
type Stats struct {
	Keys         int
	LiveBytes    int64 // bytes of live values
	GarbageBytes int64 // bytes of superseded or deleted records
	Files        int

	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	CacheBytes     int64 // bytes of cached frames resident

	// Materialized-results counters, populated by the server when a
	// results store is attached (zero otherwise): stored per-segment
	// operator outputs served in place of recomputation.
	ResultsHits          int64
	ResultsMisses        int64
	ResultsBytes         int64 // bytes of stored results resident
	ResultsEntries       int
	ResultsEvictions     int64
	ResultsInvalidations int64 // entries dropped by erosion/deletion

	// Live-serving counters, populated by the server (zero otherwise):
	// streaming-ingest queue occupancy, background erosion passes, and
	// snapshot activity of the segment manifest.
	IngestQueued    int   // segments waiting in live-stream ingest queues
	ErosionPasses   int64 // background erosion daemon passes completed
	ActiveSnapshots int   // query snapshots currently held
	SnapshotsTaken  int64 // query snapshots ever taken

	// Tier counters, populated by the tiered sharded engine and the
	// server's demotion pass (zero on a bare single store): per-tier
	// occupancy, committed segment replicas per tier, and fast→cold
	// migrations performed.
	Shards        int
	FastKeys      int
	ColdKeys      int
	FastLiveBytes int64
	ColdLiveBytes int64
	FastSegments  int   // committed segment replicas placed fast
	ColdSegments  int   // committed segment replicas placed cold
	Demotions     int64 // segment replicas migrated fast→cold

	// Self-healing counters. CorruptReads is populated by the store
	// itself (and summed across shards by the tiered engine); the rest
	// are populated by the server's degraded-serving and repair
	// machinery (zero otherwise).
	CorruptReads   int64 // reads whose CRC failure survived a re-read
	TransientReads int64 // CRC failures that cleared on re-read (read-path corruption)
	DegradedServes int64 // queries answered from a fallback replica
	Repairs        int64 // damaged replicas re-derived successfully
	RepairsFailed  int64 // repair attempts that could not complete
	ScrubPasses    int64 // background scrub passes completed
	RepairPending  int   // damaged replicas queued for repair
}

// Stats returns current occupancy counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Keys:           len(s.index),
		LiveBytes:      s.live,
		GarbageBytes:   s.garbage,
		Files:          len(s.files),
		CorruptReads:   int64(s.corruptReads.Load()),
		TransientReads: int64(s.transientReads.Load()),
	}
}

// DiskBytes returns the total size of all log files on disk.
func (s *Store) DiskBytes() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for id := range s.files {
		fi, err := s.files[id].Stat()
		if err != nil {
			return 0, fmt.Errorf("kvstore: %w", err)
		}
		total += fi.Size()
	}
	return total, nil
}

// Compact rewrites all live records into fresh logs and removes the old
// ones, reclaiming garbage space. The store is locked for the duration.
//
// New logs are staged as *.log.tmp, fsynced, and only then renamed into
// place and swapped in — a failure at any point removes the staged files
// and leaves the original state untouched, and a crash mid-compaction
// leaves only stale *.log.tmp files that Open sweeps away. Records are
// copied verbatim (original header and CRC included): re-framing a
// damaged value with a fresh checksum would launder corruption into a
// silently valid record, so a corrupt record stays corrupt — and
// detectable — across compactions until the repair layer re-derives it.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("kvstore: store is closed")
	}
	if err := fault.OnCompact(s.opts.FaultScope); err != nil {
		return fmt.Errorf("kvstore: compact: %w", err)
	}
	type stagedLog struct {
		id      uint32
		f       *os.File
		size    int64
		renamed bool
	}
	var staged []stagedLog
	fail := func(err error) error {
		for i := range staged {
			st := &staged[i]
			st.f.Close()
			path := s.logPath(st.id) + tmpSuffix
			if st.renamed {
				path = s.logPath(st.id)
			}
			os.Remove(path)
		}
		return err
	}
	open := func(id uint32) error {
		f, err := os.OpenFile(s.logPath(id)+tmpSuffix, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("kvstore: compact: %w", err)
		}
		staged = append(staged, stagedLog{id: id, f: f})
		return nil
	}
	if err := open(s.active + 1); err != nil {
		return fail(err)
	}
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	newIndex := make(map[string]recordLoc, len(keys))
	var newLive int64
	for _, k := range keys {
		loc := s.index[k]
		rec, ok, err := s.readRecordVerified(k, loc)
		if err != nil {
			return fail(fmt.Errorf("kvstore: compact: %w", err))
		}
		if !ok {
			// The damage is on the medium; the record is carried into the
			// new log as-is so the scrubber can still find and repair it.
			s.corruptReads.Add(1)
		}
		cur := &staged[len(staged)-1]
		if cur.size >= s.opts.MaxFileBytes {
			if err := open(cur.id + 1); err != nil {
				return fail(err)
			}
			cur = &staged[len(staged)-1]
		}
		if n, ferr := fault.OnWrite(s.rsite(k), len(rec)); ferr != nil {
			if n > 0 {
				cur.f.WriteAt(rec[:n], cur.size)
			}
			return fail(fmt.Errorf("kvstore: compact: %w", ferr))
		}
		if _, err := cur.f.WriteAt(rec, cur.size); err != nil {
			return fail(fmt.Errorf("kvstore: compact write %q: %w", k, err))
		}
		newIndex[k] = recordLoc{file: cur.id, valOff: cur.size + recHeaderSize + int64(len(k)), valLen: loc.valLen}
		newLive += int64(loc.valLen)
		cur.size += int64(len(rec))
	}
	for i := range staged {
		if err := fault.OnSync(s.opts.FaultScope); err != nil {
			return fail(fmt.Errorf("kvstore: compact: %w", err))
		}
		if err := staged[i].f.Sync(); err != nil {
			return fail(fmt.Errorf("kvstore: compact sync: %w", err))
		}
	}
	for i := range staged {
		st := &staged[i]
		if err := os.Rename(s.logPath(st.id)+tmpSuffix, s.logPath(st.id)); err != nil {
			return fail(fmt.Errorf("kvstore: compact rename: %w", err))
		}
		st.renamed = true
	}
	// Commit: swap in the compacted state, then drop the old logs. A
	// crash between the renames and the removals is safe — the new logs
	// carry the same live records under higher IDs, so replaying old
	// then new converges on this exact state.
	oldFiles := s.files
	s.files = make(map[uint32]*os.File, len(staged))
	for _, st := range staged {
		s.files[st.id] = st.f
	}
	s.index = newIndex
	s.active = staged[len(staged)-1].id
	s.actSize = staged[len(staged)-1].size
	s.live = newLive
	s.garbage = 0
	for _, f := range oldFiles {
		name := f.Name()
		f.Close()
		os.Remove(name)
	}
	return nil
}

// VerifyAll re-reads every live record and verifies its stored checksum,
// returning the sorted keys that are damaged or unreadable. It is the
// scrubber's primitive: an empty slice with a nil error means every
// record in the store is intact. Detections here do not count toward
// CorruptReads, which tracks the serving read path only.
func (s *Store) VerifyAll() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, errors.New("kvstore: store is closed")
	}
	var bad []string
	for k, loc := range s.index {
		if _, ok, err := s.readRecordVerified(k, loc); err != nil || !ok {
			bad = append(bad, k)
		}
	}
	sort.Strings(bad)
	return bad, nil
}

// DamageValue flips one bit of key's record on disk while leaving the
// in-memory index untouched, so the next Get returns ErrCorrupt. It
// simulates post-write bit rot for tests and operational drills
// (`vstore damage`); it is deliberately not part of the serving API.
func (s *Store) DamageValue(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("kvstore: store is closed")
	}
	loc, ok := s.index[key]
	if !ok {
		return ErrNotFound
	}
	off := loc.valOff
	if loc.valLen == 0 {
		off-- // no value bytes: flip a bit of the key instead
	}
	f := s.files[loc.file]
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return fmt.Errorf("kvstore: damage %q: %w", key, err)
	}
	b[0] ^= 0x80
	if _, err := f.WriteAt(b[:], off); err != nil {
		return fmt.Errorf("kvstore: damage %q: %w", key, err)
	}
	return nil
}

// Close releases all file handles. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.closeAll()
	return nil
}

func (s *Store) closeAll() {
	for _, f := range s.files {
		f.Close()
	}
	s.files = nil
}
