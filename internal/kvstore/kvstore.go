// Package kvstore is an embedded key-value store, the reproduction's
// substitute for LMDB as VStore's storage backend. It is log-structured:
// records are appended to numbered log files with CRC-32 framing, an
// in-memory index maps each live key to its latest record, deletions write
// tombstones, and explicit compaction rewrites live data to reclaim space.
// Values of several megabytes (one 8-second video segment) are the design
// point, matching the paper's reason for choosing LMDB.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	recHeaderSize  = 4 + 4 + 4 // crc, keyLen, valLen
	tombstoneVLen  = ^uint32(0)
	logSuffix      = ".log"
	defaultMaxFile = 64 << 20 // rotate active log at 64 MiB
	maxKeyLen      = 1 << 16
	maxValLen      = 1 << 30
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("kvstore: key not found")

// Options configures a store.
type Options struct {
	// MaxFileBytes rotates the active log once it exceeds this size.
	// Zero selects the default (64 MiB).
	MaxFileBytes int64
	// SyncWrites fsyncs the active log after every Put/Delete.
	SyncWrites bool
}

type recordLoc struct {
	file   uint32
	valOff int64 // offset of the value bytes within the file
	valLen uint32
}

// Store is a log-structured key-value store. All methods are safe for
// concurrent use.
type Store struct {
	mu      sync.RWMutex
	dir     string
	opts    Options
	index   map[string]recordLoc
	files   map[uint32]*os.File
	active  uint32
	actSize int64
	garbage int64 // bytes of superseded records
	live    int64 // bytes of live values
	closed  bool
}

// Open opens (creating if necessary) a store in dir and replays its logs to
// rebuild the index. A torn record at the tail of the newest log — the
// signature of a crash mid-write — is truncated away; any corruption
// elsewhere is reported as an error.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MaxFileBytes <= 0 {
		opts.MaxFileBytes = defaultMaxFile
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	s := &Store{
		dir:   dir,
		opts:  opts,
		index: make(map[string]recordLoc),
		files: make(map[uint32]*os.File),
	}
	ids, err := listLogs(dir)
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		f, err := os.OpenFile(s.logPath(id), os.O_RDWR, 0)
		if err != nil {
			return nil, fmt.Errorf("kvstore: %w", err)
		}
		s.files[id] = f
		lastFile := i == len(ids)-1
		size, err := s.replay(id, f, lastFile)
		if err != nil {
			s.closeAll()
			return nil, err
		}
		if lastFile {
			s.active = id
			s.actSize = size
		}
	}
	if len(ids) == 0 {
		if err := s.rotateLocked(1); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) logPath(id uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("%06d%s", id, logSuffix))
}

func listLogs(dir string) ([]uint32, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("kvstore: %w", err)
	}
	var ids []uint32
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, logSuffix) {
			continue
		}
		var id uint32
		if _, err := fmt.Sscanf(name, "%06d", &id); err != nil {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// replay scans one log, updating the index. For the newest log a torn tail
// is truncated; for older logs it is corruption.
func (s *Store) replay(id uint32, f *os.File, tolerateTail bool) (int64, error) {
	var off int64
	var hdr [recHeaderSize]byte
	for {
		_, err := f.ReadAt(hdr[:], off)
		if err == io.EOF {
			return off, nil
		}
		if err == io.ErrUnexpectedEOF {
			return s.tornTail(id, f, off, tolerateTail)
		}
		if err != nil {
			return 0, fmt.Errorf("kvstore: replay %s: %w", s.logPath(id), err)
		}
		wantCRC := binary.BigEndian.Uint32(hdr[0:])
		kl := binary.BigEndian.Uint32(hdr[4:])
		vl := binary.BigEndian.Uint32(hdr[8:])
		vlen := vl
		if vl == tombstoneVLen {
			vlen = 0
		}
		if kl > maxKeyLen || vlen > maxValLen {
			return s.tornTail(id, f, off, tolerateTail)
		}
		body := make([]byte, int(kl)+int(vlen))
		if _, err := f.ReadAt(body, off+recHeaderSize); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return s.tornTail(id, f, off, tolerateTail)
			}
			return 0, fmt.Errorf("kvstore: replay %s: %w", s.logPath(id), err)
		}
		if crc32.ChecksumIEEE(append(hdr[4:recHeaderSize:recHeaderSize], body...)) != wantCRC {
			return s.tornTail(id, f, off, tolerateTail)
		}
		key := string(body[:kl])
		if old, ok := s.index[key]; ok {
			s.garbage += int64(recHeaderSize + len(key))
			s.garbage += int64(old.valLen)
			s.live -= int64(old.valLen)
		}
		if vl == tombstoneVLen {
			delete(s.index, key)
			s.garbage += recHeaderSize + int64(kl)
		} else {
			s.index[key] = recordLoc{file: id, valOff: off + recHeaderSize + int64(kl), valLen: vl}
			s.live += int64(vl)
		}
		off += recHeaderSize + int64(kl) + int64(vlen)
	}
}

func (s *Store) tornTail(id uint32, f *os.File, off int64, tolerate bool) (int64, error) {
	if !tolerate {
		return 0, fmt.Errorf("kvstore: %s corrupt at offset %d", s.logPath(id), off)
	}
	if err := f.Truncate(off); err != nil {
		return 0, fmt.Errorf("kvstore: truncating torn tail of %s: %w", s.logPath(id), err)
	}
	return off, nil
}

// rotateLocked opens a fresh active log with the given id. Caller holds mu
// (or is the constructor).
func (s *Store) rotateLocked(id uint32) error {
	f, err := os.OpenFile(s.logPath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: %w", err)
	}
	s.files[id] = f
	s.active = id
	s.actSize = 0
	return nil
}

// Put stores value under key, replacing any existing value.
func (s *Store) Put(key string, value []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("kvstore: invalid key length %d", len(key))
	}
	if len(value) > maxValLen {
		return fmt.Errorf("kvstore: value too large (%d bytes)", len(value))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(key, value, false)
}

// Delete removes key. Deleting a missing key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; !ok {
		return nil
	}
	return s.appendLocked(key, nil, true)
}

func (s *Store) appendLocked(key string, value []byte, tombstone bool) error {
	if s.closed {
		return errors.New("kvstore: store is closed")
	}
	if s.actSize >= s.opts.MaxFileBytes {
		if err := s.rotateLocked(s.active + 1); err != nil {
			return err
		}
	}
	f := s.files[s.active]
	buf := make([]byte, recHeaderSize+len(key)+len(value))
	binary.BigEndian.PutUint32(buf[4:], uint32(len(key)))
	if tombstone {
		binary.BigEndian.PutUint32(buf[8:], tombstoneVLen)
	} else {
		binary.BigEndian.PutUint32(buf[8:], uint32(len(value)))
	}
	copy(buf[recHeaderSize:], key)
	copy(buf[recHeaderSize+len(key):], value)
	binary.BigEndian.PutUint32(buf[0:], crc32.ChecksumIEEE(buf[4:]))
	off := s.actSize
	if _, err := f.WriteAt(buf, off); err != nil {
		return fmt.Errorf("kvstore: append: %w", err)
	}
	if s.opts.SyncWrites {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("kvstore: sync: %w", err)
		}
	}
	s.actSize += int64(len(buf))
	if old, ok := s.index[key]; ok {
		s.garbage += recHeaderSize + int64(len(key)) + int64(old.valLen)
		s.live -= int64(old.valLen)
	}
	if tombstone {
		delete(s.index, key)
		s.garbage += int64(recHeaderSize + len(key))
	} else {
		s.index[key] = recordLoc{file: s.active, valOff: off + recHeaderSize + int64(len(key)), valLen: uint32(len(value))}
		s.live += int64(len(value))
	}
	return nil
}

// Sync fsyncs every log file, making all records appended so far
// durable (a recent append may live in a just-rotated log, so the
// active file alone is not enough). Callers that need an ordering
// barrier between writes to different stores (e.g. tier demotion's
// copy-before-delete) sync the written store before mutating the other.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("kvstore: store is closed")
	}
	for _, f := range s.files {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("kvstore: sync: %w", err)
		}
	}
	return nil
}

// Get returns the value stored under key, or ErrNotFound.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, errors.New("kvstore: store is closed")
	}
	loc, ok := s.index[key]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, loc.valLen)
	if _, err := s.files[loc.file].ReadAt(out, loc.valOff); err != nil {
		return nil, fmt.Errorf("kvstore: read %q: %w", key, err)
	}
	return out, nil
}

// Has reports whether key is present.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Keys returns all live keys with the given prefix in sorted order.
func (s *Store) Keys(prefix string) []string {
	s.mu.RLock()
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Scan calls fn for every live key with the given prefix, in sorted key
// order, with the stored value. Scanning stops early if fn returns false.
func (s *Store) Scan(prefix string, fn func(key string, value []byte) bool) error {
	for _, k := range s.Keys(prefix) {
		v, err := s.Get(k)
		if err == ErrNotFound {
			continue // deleted between listing and read
		}
		if err != nil {
			return err
		}
		if !fn(k, v) {
			return nil
		}
	}
	return nil
}

// Stats reports store occupancy, plus the activity of any retrieval cache
// layered in front of the store. The cache counters are populated by the
// owning layer (the server wires its retrieval cache through here so one
// Stats call describes the whole storage path); they stay zero when no
// cache is attached.
type Stats struct {
	Keys         int
	LiveBytes    int64 // bytes of live values
	GarbageBytes int64 // bytes of superseded or deleted records
	Files        int

	CacheHits      int64
	CacheMisses    int64
	CacheEvictions int64
	CacheBytes     int64 // bytes of cached frames resident

	// Materialized-results counters, populated by the server when a
	// results store is attached (zero otherwise): stored per-segment
	// operator outputs served in place of recomputation.
	ResultsHits          int64
	ResultsMisses        int64
	ResultsBytes         int64 // bytes of stored results resident
	ResultsEntries       int
	ResultsEvictions     int64
	ResultsInvalidations int64 // entries dropped by erosion/deletion

	// Live-serving counters, populated by the server (zero otherwise):
	// streaming-ingest queue occupancy, background erosion passes, and
	// snapshot activity of the segment manifest.
	IngestQueued    int   // segments waiting in live-stream ingest queues
	ErosionPasses   int64 // background erosion daemon passes completed
	ActiveSnapshots int   // query snapshots currently held
	SnapshotsTaken  int64 // query snapshots ever taken

	// Tier counters, populated by the tiered sharded engine and the
	// server's demotion pass (zero on a bare single store): per-tier
	// occupancy, committed segment replicas per tier, and fast→cold
	// migrations performed.
	Shards        int
	FastKeys      int
	ColdKeys      int
	FastLiveBytes int64
	ColdLiveBytes int64
	FastSegments  int   // committed segment replicas placed fast
	ColdSegments  int   // committed segment replicas placed cold
	Demotions     int64 // segment replicas migrated fast→cold
}

// Stats returns current occupancy counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{Keys: len(s.index), LiveBytes: s.live, GarbageBytes: s.garbage, Files: len(s.files)}
}

// DiskBytes returns the total size of all log files on disk.
func (s *Store) DiskBytes() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for id := range s.files {
		fi, err := s.files[id].Stat()
		if err != nil {
			return 0, fmt.Errorf("kvstore: %w", err)
		}
		total += fi.Size()
	}
	return total, nil
}

// Compact rewrites all live records into fresh logs and removes the old
// ones, reclaiming garbage space. The store is locked for the duration.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("kvstore: store is closed")
	}
	oldFiles := s.files
	oldIndex := s.index
	nextID := s.active + 1
	s.files = make(map[uint32]*os.File)
	s.index = make(map[string]recordLoc)
	s.garbage, s.live = 0, 0
	if err := s.rotateLocked(nextID); err != nil {
		s.files = oldFiles
		s.index = oldIndex
		return err
	}
	keys := make([]string, 0, len(oldIndex))
	for k := range oldIndex {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		loc := oldIndex[k]
		val := make([]byte, loc.valLen)
		if _, err := oldFiles[loc.file].ReadAt(val, loc.valOff); err != nil {
			return fmt.Errorf("kvstore: compact read %q: %w", k, err)
		}
		if err := s.appendLocked(k, val, false); err != nil {
			return err
		}
	}
	for id, f := range oldFiles {
		name := f.Name()
		if err := f.Close(); err != nil {
			return fmt.Errorf("kvstore: compact close: %w", err)
		}
		if err := os.Remove(name); err != nil {
			return fmt.Errorf("kvstore: compact remove: %w", err)
		}
		_ = id
	}
	return nil
}

// Close releases all file handles. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.closeAll()
	return nil
}

func (s *Store) closeAll() {
	for _, f := range s.files {
		f.Close()
	}
	s.files = nil
}
