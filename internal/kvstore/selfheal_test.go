package kvstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// faults installs a fault injector for one test and guarantees it is
// removed afterwards, so no faults leak into other tests.
func faults(t *testing.T, seed uint64, spec string) *fault.Injector {
	t.Helper()
	rules, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	in := fault.New(seed, rules)
	fault.Install(in)
	t.Cleanup(func() { fault.Install(nil) })
	return in
}

// TestGetVerifiesCRC is the regression test for the founding bug of this
// layer: Get used to return value bytes without checking the stored CRC,
// so one flipped bit in a closed log was served as valid data. It proves
// the old behaviour was wrong by reconstructing exactly what the old
// read path returned (a raw slice at the indexed offset — garbage, not
// an error) and then asserts the new read path reports ErrCorrupt.
func TestGetVerifiesCRC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAB}, 512)
	if err := s.Put("seg", want); err != nil {
		t.Fatal(err)
	}
	loc := s.index["seg"]
	s.Close()

	// Flip one bit in the middle of the value, in the closed log.
	logs, _ := filepath.Glob(filepath.Join(dir, "*.log"))
	f, err := os.OpenFile(logs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], loc.valOff+100); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := f.WriteAt(b[:], loc.valOff+100); err != nil {
		t.Fatal(err)
	}

	// What the old code did: read loc.valLen bytes at loc.valOff and
	// return them. That read succeeds and yields garbage — one byte off
	// from what was stored — with no error. This is the served-garbage
	// proof.
	oldPath := make([]byte, loc.valLen)
	if _, err := f.ReadAt(oldPath, loc.valOff); err != nil {
		t.Fatalf("unverified read errored (it must not — that is the bug): %v", err)
	}
	if bytes.Equal(oldPath, want) {
		t.Fatal("bit flip did not change the value bytes")
	}
	f.Close()

	// The new read path refuses to serve it.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get("seg"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get = %v, want ErrCorrupt", err)
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatal("ErrCorrupt must be distinct from ErrNotFound")
	}
	if got := s2.Stats().CorruptReads; got != 1 {
		t.Fatalf("CorruptReads = %d, want 1", got)
	}
}

func TestScanSurfacesCorrupt(t *testing.T) {
	s := openTemp(t, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.DamageValue("k2"); err != nil {
		t.Fatal(err)
	}
	err := s.Scan("k", func(string, []byte) bool { return true })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Scan over damaged key = %v, want ErrCorrupt", err)
	}
}

func TestDamageValue(t *testing.T) {
	s := openTemp(t, Options{})
	if err := s.Put("k", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.DamageValue("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("DamageValue(missing) = %v, want ErrNotFound", err)
	}
	if err := s.DamageValue("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get after DamageValue = %v, want ErrCorrupt", err)
	}
	// A fresh Put of the same key heals it: the new record supersedes
	// the damaged one.
	if err := s.Put("k", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get("k"); err != nil || string(v) != "fresh" {
		t.Fatalf("Get after rewrite = %q, %v", v, err)
	}
}

func TestVerifyAll(t *testing.T) {
	s := openTemp(t, Options{})
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	bad, err := s.VerifyAll()
	if err != nil || len(bad) != 0 {
		t.Fatalf("clean store: bad=%v err=%v", bad, err)
	}
	for _, k := range []string{"k3", "k7"} {
		if err := s.DamageValue(k); err != nil {
			t.Fatal(err)
		}
	}
	bad, err = s.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 2 || bad[0] != "k3" || bad[1] != "k7" {
		t.Fatalf("VerifyAll = %v, want [k3 k7]", bad)
	}
}

// TestCorruptionSurvivesReopen: framed damage must still be reported
// after a restart — replay indexes the record instead of dropping it, so
// the repair layer gets its chance.
func TestCorruptionSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", bytes.Repeat([]byte{9}, 128)); err != nil {
		t.Fatal(err)
	}
	if err := s.DamageValue("k"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if _, err := s2.Get("k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get after reopen = %v, want ErrCorrupt", err)
	}
}

// TestCorruptTombstoneSkippedAtReplay: a tombstone whose CRC fails must
// not delete anything — its key bytes cannot be trusted.
func TestCorruptTombstoneSkippedAtReplay(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("keep", []byte("v")); err != nil {
		t.Fatal(err)
	}
	tombOff := s.actSize
	if err := s.Delete("keep"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Damage the tombstone's key bytes on disk.
	logs, _ := filepath.Glob(filepath.Join(dir, "*.log"))
	f, err := os.OpenFile(logs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, tombOff+recHeaderSize); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	// The delete is lost (its record is untrusted), so the key survives —
	// the safe direction: resurrected data beats wrongly deleted data.
	if v, err := s2.Get("keep"); err != nil || string(v) != "v" {
		t.Fatalf("Get(keep) = %q, %v; corrupt tombstone must not delete", v, err)
	}
}

// --- compaction under failure -----------------------------------------

func TestCompactFailureLeavesStoreIntact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxFileBytes: 512, FaultScope: "fast/000"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 30; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 15; i++ { // build garbage so compaction has work
		if err := s.Delete(fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()

	// Fail the write of k25 — mid-way through the compaction copy loop,
	// after several staged records have already landed.
	faults(t, 1, "write@fast/000+k25=err")
	if err := s.Compact(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Compact under write faults = %v, want injected error", err)
	}
	fault.Install(nil)

	// No staging debris, and the store state is exactly as before.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("failed compaction left temp files: %v", tmps)
	}
	after := s.Stats()
	if after.Keys != before.Keys || after.LiveBytes != before.LiveBytes || after.GarbageBytes != before.GarbageBytes {
		t.Fatalf("failed compaction changed state: %+v -> %+v", before, after)
	}
	for i := 15; i < 30; i++ {
		if v, err := s.Get(fmt.Sprintf("k%02d", i)); err != nil || len(v) != 100 {
			t.Fatalf("k%02d after failed compaction: %v", i, err)
		}
	}
	// A clean retry succeeds and reclaims the garbage.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if g := s.Stats().GarbageBytes; g != 0 {
		t.Fatalf("garbage after compaction = %d", g)
	}
}

func TestCompactSyncFailureCleansUp(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FaultScope: "cold/001"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), []byte("vvvv")); err != nil {
			t.Fatal(err)
		}
	}
	faults(t, 1, "sync@cold/001=err")
	if err := s.Compact(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Compact under sync faults = %v", err)
	}
	fault.Install(nil)
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("sync-failed compaction left temp files: %v", tmps)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("k%d unreadable after failed compaction: %v", i, err)
		}
	}
}

// TestOpenSweepsStaleTmp: a crash mid-compaction leaves *.log.tmp files;
// Open must remove them and replay only the real logs.
func TestOpenSweepsStaleTmp(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	stale := filepath.Join(dir, "000002.log.tmp")
	if err := os.WriteFile(stale, []byte("partial compaction output"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with stale tmp: %v", err)
	}
	defer s2.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale tmp not swept: %v", err)
	}
	if v, err := s2.Get("k"); err != nil || string(v) != "v" {
		t.Fatalf("Get after sweep = %q, %v", v, err)
	}
}

// TestCompactPreservesCorruptRecords: compaction must copy a damaged
// record verbatim, not launder it into a freshly-checksummed valid one.
func TestCompactPreservesCorruptRecords(t *testing.T) {
	s := openTemp(t, Options{})
	if err := s.Put("good", []byte("good-bytes")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bad", bytes.Repeat([]byte{7}, 64)); err != nil {
		t.Fatal(err)
	}
	if err := s.DamageValue("bad"); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("bad"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get(bad) after compaction = %v, want ErrCorrupt (corruption was laundered)", err)
	}
	if v, err := s.Get("good"); err != nil || string(v) != "good-bytes" {
		t.Fatalf("Get(good) after compaction = %q, %v", v, err)
	}
}

// --- write-path faults -------------------------------------------------

func TestTornWriteThenReopenLosesOnlyTornRecord(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{FaultScope: "fast/000"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	// Tear exactly the next write. The Put fails, and the on-disk image
	// now carries a partial record past the committed tail — what a
	// crash mid-write leaves.
	in := faults(t, 5, "write@:torn-me=torn")
	if err := s.Put("torn-me", bytes.Repeat([]byte{0xEE}, 200)); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn Put = %v", err)
	}
	if in.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", in.Injected())
	}
	fault.Install(nil)

	// In-process: the store never indexed the torn record, and the next
	// append overwrites the torn bytes.
	if _, err := s.Get("torn-me"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn key visible in-process: %v", err)
	}
	// Abandon without Close — simulating the crash — and reopen.
	s.closeAll()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 8 {
		t.Fatalf("after reopen: %d keys, want 8", s2.Len())
	}
	for i := 0; i < 8; i++ {
		if v, err := s2.Get(fmt.Sprintf("k%d", i)); err != nil || len(v) != 50 {
			t.Fatalf("k%d after reopen: %v", i, err)
		}
	}
	// And the store keeps working.
	if err := s2.Put("post", []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestWriteErrDoesNotAdvanceState(t *testing.T) {
	s := openTemp(t, Options{FaultScope: "fast/000"})
	if err := s.Put("a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	faults(t, 2, "write@fast/000=err")
	if err := s.Put("b", []byte("two")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Put under write fault = %v", err)
	}
	fault.Install(nil)
	after := s.Stats()
	if after.Keys != before.Keys || after.LiveBytes != before.LiveBytes {
		t.Fatalf("failed write advanced state: %+v -> %+v", before, after)
	}
	if err := s.Put("b", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if v, err := s.Get("b"); err != nil || string(v) != "two" {
		t.Fatalf("Get(b) = %q, %v", v, err)
	}
}

func TestSyncFaultSurfaces(t *testing.T) {
	s := openTemp(t, Options{SyncWrites: true, FaultScope: "fast/000"})
	faults(t, 3, "sync=err")
	if err := s.Put("k", []byte("v")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("synced Put under sync fault = %v", err)
	}
	fault.Install(nil)
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync after faults cleared: %v", err)
	}
}

// TestReadFaultScopeTargetsOneStore: the composite "<scope>:<key>" site
// lets a rule take down one shard's reads while another store with a
// different scope is untouched — the basis of the fast-outage drills.
func TestReadFaultScopeTargetsOneStore(t *testing.T) {
	fastS, err := Open(t.TempDir(), Options{FaultScope: "fast/000"})
	if err != nil {
		t.Fatal(err)
	}
	defer fastS.Close()
	coldS, err := Open(t.TempDir(), Options{FaultScope: "cold/000"})
	if err != nil {
		t.Fatal(err)
	}
	defer coldS.Close()
	for _, s := range []*Store{fastS, coldS} {
		if err := s.Put("seg/cam/sf0/00000000", []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	faults(t, 4, "read@fast/=err")
	if _, err := fastS.Get("seg/cam/sf0/00000000"); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("fast read = %v, want injected error", err)
	}
	if v, err := coldS.Get("seg/cam/sf0/00000000"); err != nil || string(v) != "payload" {
		t.Fatalf("cold read = %q, %v", v, err)
	}
}

// TestFlipFaultCaughtByCRC closes the loop: an injected bit flip on the
// read path is detected by Get's checksum verification as ErrCorrupt.
func TestFlipFaultCaughtByCRC(t *testing.T) {
	s := openTemp(t, Options{FaultScope: "fast/000"})
	if err := s.Put("k", bytes.Repeat([]byte{5}, 256)); err != nil {
		t.Fatal(err)
	}
	faults(t, 6, "read=flip")
	if _, err := s.Get("k"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get with flipped read = %v, want ErrCorrupt", err)
	}
	fault.Install(nil)
	// The flip was in-memory only: the record on disk is intact.
	if v, err := s.Get("k"); err != nil || len(v) != 256 {
		t.Fatalf("Get after faults cleared = %v", err)
	}
	if s.Stats().CorruptReads == 0 {
		t.Fatal("flip not counted as corrupt read")
	}
}

// sanity check on the record layout constants this file's offset math
// depends on.
func TestRecordLayout(t *testing.T) {
	buf := make([]byte, recHeaderSize+1+2)
	binary.BigEndian.PutUint32(buf[4:], 1)
	binary.BigEndian.PutUint32(buf[8:], 2)
	copy(buf[recHeaderSize:], "k")
	copy(buf[recHeaderSize+1:], "vv")
	binary.BigEndian.PutUint32(buf[0:], crc32.ChecksumIEEE(buf[4:]))
	if crc32.ChecksumIEEE(buf[4:]) != binary.BigEndian.Uint32(buf[0:]) {
		t.Fatal("layout sanity check failed")
	}
}

// TestTransientReadRecovers: a CRC failure observed on the read path but
// not on the medium (an injected flip models controller or bus
// corruption) clears on the automatic re-read, so Get serves the correct
// bytes instead of failing — and the recovery is counted separately from
// persistent corruption. Rate 0.5 means roughly half the first reads
// flip and a quarter fail both reads; the seed makes the schedule
// reproducible.
func TestTransientReadRecovers(t *testing.T) {
	s := openTemp(t, Options{})
	want := bytes.Repeat([]byte{0xCD}, 256)
	if err := s.Put("seg", want); err != nil {
		t.Fatal(err)
	}
	faults(t, 42, "read=flip:0.5")
	var served, corrupt int
	for i := 0; i < 64; i++ {
		v, err := s.Get("seg")
		switch {
		case err == nil:
			served++
			if !bytes.Equal(v, want) {
				t.Fatalf("Get %d served wrong bytes under read-path flips", i)
			}
		case errors.Is(err, ErrCorrupt):
			corrupt++ // flipped on the read AND the re-read
		default:
			t.Fatalf("Get %d: %v", i, err)
		}
	}
	st := s.Stats()
	if st.TransientReads == 0 {
		t.Fatalf("no transient recovery in 64 reads at rate 0.5 (served %d, corrupt %d)", served, corrupt)
	}
	if int(st.CorruptReads) != corrupt {
		t.Fatalf("CorruptReads = %d, want %d (only double failures count)", st.CorruptReads, corrupt)
	}
	if served == 0 {
		t.Fatal("every read failed; the re-read never recovered anything")
	}
}

// TestPersistentDamageSurvivesReread: the re-read must not mask real
// media damage — a bit flipped on disk fails the checksum on every read.
func TestPersistentDamageSurvivesReread(t *testing.T) {
	s := openTemp(t, Options{})
	if err := s.Put("seg", bytes.Repeat([]byte{0xEF}, 256)); err != nil {
		t.Fatal(err)
	}
	if err := s.DamageValue("seg"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Get("seg"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Get %d = %v, want ErrCorrupt", i, err)
		}
	}
	st := s.Stats()
	if st.CorruptReads != 3 || st.TransientReads != 0 {
		t.Fatalf("CorruptReads=%d TransientReads=%d, want 3 and 0", st.CorruptReads, st.TransientReads)
	}
}
