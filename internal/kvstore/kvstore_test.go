package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTemp(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := openTemp(t, Options{})
	if err := s.Put("a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("a")
	if err != nil || string(v) != "hello" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := s.Put("a", []byte("world")); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Get("a")
	if string(v) != "world" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	if err := s.Delete("missing"); err != nil {
		t.Fatalf("Delete missing key: %v", err)
	}
}

func TestEmptyAndLargeValues(t *testing.T) {
	s := openTemp(t, Options{})
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("empty")
	if err != nil || len(v) != 0 {
		t.Fatalf("empty value: %q, %v", v, err)
	}
	big := make([]byte, 3<<20) // a segment-sized value
	for i := range big {
		big[i] = byte(i * 31)
	}
	if err := s.Put("big", big); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("big")
	if err != nil || !bytes.Equal(got, big) {
		t.Fatalf("big value mismatch (err %v)", err)
	}
}

func TestKeyValidation(t *testing.T) {
	s := openTemp(t, Options{})
	if err := s.Put("", []byte("x")); err == nil {
		t.Error("empty key accepted")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Put(fmt.Sprintf("k%03d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i += 2 {
		if err := s.Delete(fmt.Sprintf("k%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 75 {
		t.Fatalf("reopened store has %d keys, want 75", s2.Len())
	}
	v, err := s2.Get("k051")
	if err != nil || string(v) != "v51" {
		t.Fatalf("reopened Get = %q, %v", v, err)
	}
	if _, err := s2.Get("k000"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key resurrected: %v", err)
	}
}

func TestRotationAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxFileBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 300)
	for i := 0; i < 40; i++ {
		if err := s.Put(fmt.Sprintf("key%02d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Files < 3 {
		t.Fatalf("expected rotation, have %d files", st.Files)
	}
	s.Close()
	s2, err := Open(dir, Options{MaxFileBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 40 {
		t.Fatalf("after reopen: %d keys, want 40", s2.Len())
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Tear the last record: chop 30 bytes off the newest log.
	logs, err := filepath.Glob(filepath.Join(dir, "*.log"))
	if err != nil || len(logs) == 0 {
		t.Fatalf("glob: %v %v", logs, err)
	}
	last := logs[len(logs)-1]
	fi, _ := os.Stat(last)
	if err := os.Truncate(last, fi.Size()-30); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	defer s2.Close()
	if s2.Len() != 9 {
		t.Fatalf("after torn tail: %d keys, want 9 (lost exactly the torn record)", s2.Len())
	}
	for i := 0; i < 9; i++ {
		if _, err := s2.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("key k%d lost: %v", i, err)
		}
	}
	// The store must keep working after recovery.
	if err := s2.Put("post", []byte("recovery")); err != nil {
		t.Fatal(err)
	}
	if v, _ := s2.Get("post"); string(v) != "recovery" {
		t.Fatal("write after recovery failed")
	}
}

func TestCorruptMiddleDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxFileBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{1}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	logs, _ := filepath.Glob(filepath.Join(dir, "*.log"))
	if len(logs) < 2 {
		t.Fatalf("want >=2 logs, have %d", len(logs))
	}
	// Flip a value byte in the middle of the FIRST log (offset 20 is
	// inside k00's value: 12-byte header + 3-byte key + 5). The frame is
	// intact, so Open tolerates it — the damage is indexed and surfaces
	// as ErrCorrupt on read, where the repair layer can act on it,
	// instead of making the whole shard unopenable.
	f, err := os.OpenFile(logs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 20); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s2, err := Open(dir, Options{MaxFileBytes: 256})
	if err != nil {
		t.Fatalf("reopen with framed corruption: %v", err)
	}
	if _, err := s2.Get("k00"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get(k00) after reopen = %v, want ErrCorrupt", err)
	}
	for i := 1; i < 20; i++ {
		if _, err := s2.Get(fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatalf("undamaged k%02d unreadable: %v", i, err)
		}
	}
	s2.Close()
	// Destroy record FRAMING in an old log (keyLen's high byte at offset
	// 4 makes the length implausible): replay cannot skip past it, and
	// torn-tail tolerance only applies to the newest log, so this is
	// still an Open error.
	f, err = os.OpenFile(logs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, 4); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("unframeable corruption in old log not detected")
	}
}

func TestScanAndKeys(t *testing.T) {
	s := openTemp(t, Options{})
	for _, k := range []string{"b/2", "a/1", "b/1", "c/9", "b/3"} {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys("b/")
	want := []string{"b/1", "b/2", "b/3"}
	if len(keys) != 3 {
		t.Fatalf("Keys(b/) = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys(b/) = %v, want %v", keys, want)
		}
	}
	var got []string
	if err := s.Scan("b/", func(k string, v []byte) bool {
		if string(v) != k {
			t.Fatalf("scan value mismatch for %q: %q", k, v)
		}
		got = append(got, k)
		return len(got) < 2 // early stop after two
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("early stop honoured? got %v", got)
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxFileBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	val := make([]byte, 512)
	for round := 0; round < 10; round++ {
		for i := 0; i < 10; i++ {
			if err := s.Put(fmt.Sprintf("k%d", i), val); err != nil {
				t.Fatal(err)
			}
		}
	}
	before, err := s.DiskBytes()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, err := s.DiskBytes()
	if err != nil {
		t.Fatal(err)
	}
	if after >= before/2 {
		t.Fatalf("compaction ineffective: %d -> %d bytes", before, after)
	}
	if s.Len() != 10 {
		t.Fatalf("keys lost in compaction: %d", s.Len())
	}
	for i := 0; i < 10; i++ {
		v, err := s.Get(fmt.Sprintf("k%d", i))
		if err != nil || !bytes.Equal(v, val) {
			t.Fatalf("value lost in compaction: %v", err)
		}
	}
	if st := s.Stats(); st.GarbageBytes != 0 {
		t.Fatalf("garbage after compaction: %d", st.GarbageBytes)
	}
}

func TestCompactThenReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, Options{MaxFileBytes: 2048})
	for i := 0; i < 30; i++ {
		s.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte(i)}, 64))
	}
	for i := 0; i < 30; i += 3 {
		s.Delete(fmt.Sprintf("k%02d", i))
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 20 {
		t.Fatalf("after compact+reopen: %d keys, want 20", s2.Len())
	}
}

// TestModelConformance drives the store with a random operation sequence and
// cross-checks every observation against a plain map.
func TestModelConformance(t *testing.T) {
	s := openTemp(t, Options{MaxFileBytes: 2048})
	model := map[string][]byte{}
	r := rand.New(rand.NewSource(42))
	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%02d", i)
	}
	for op := 0; op < 5000; op++ {
		k := keys[r.Intn(len(keys))]
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // put
			v := make([]byte, r.Intn(200))
			r.Read(v)
			if err := s.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		case 6, 7: // delete
			if err := s.Delete(k); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		case 8: // get
			got, err := s.Get(k)
			want, ok := model[k]
			if !ok {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("op %d: Get(%q) = %v, want ErrNotFound", op, k, err)
				}
			} else if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("op %d: Get(%q) mismatch", op, k)
			}
		case 9: // occasionally compact
			if op%1000 == 999 {
				if err := s.Compact(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if s.Len() != len(model) {
		t.Fatalf("Len = %d, model %d", s.Len(), len(model))
	}
	for k, want := range model {
		got, err := s.Get(k)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("final check %q: %v", k, err)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := openTemp(t, Options{MaxFileBytes: 8192})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("g%d-k%d", g, i%20)
				if err := s.Put(k, []byte(k)); err != nil {
					t.Error(err)
					return
				}
				if v, err := s.Get(k); err != nil || string(v) != k {
					t.Errorf("get %q: %q %v", k, v, err)
					return
				}
				if i%17 == 0 {
					s.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStatsAccounting(t *testing.T) {
	s := openTemp(t, Options{})
	s.Put("a", make([]byte, 100))
	s.Put("b", make([]byte, 50))
	st := s.Stats()
	if st.LiveBytes != 150 || st.Keys != 2 {
		t.Fatalf("stats = %+v", st)
	}
	s.Put("a", make([]byte, 10)) // supersedes 100 bytes
	st = s.Stats()
	if st.LiveBytes != 60 {
		t.Fatalf("live bytes after overwrite = %d, want 60", st.LiveBytes)
	}
	if st.GarbageBytes == 0 {
		t.Fatal("no garbage accounted after overwrite")
	}
}

func TestClosedStoreRejectsOps(t *testing.T) {
	s := openTemp(t, Options{})
	s.Put("k", []byte("v"))
	s.Close()
	if err := s.Put("k2", nil); err == nil {
		t.Error("Put on closed store succeeded")
	}
	if _, err := s.Get("k"); err == nil {
		t.Error("Get on closed store succeeded")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
