package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/sub"
)

// Client is the Go client of the HTTP API — what cmd/vload and
// examples/httpserve drive. The zero HTTP client has no global timeout:
// streamed queries run as long as the server allows; bound them with the
// context (or QueryRequest.TimeoutMs).
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// APIKey, when set, is sent as X-API-Key with every request and
	// selects the tenant the server accounts this client against. Empty
	// means the keyless default tenant.
	APIKey string
	// HTTP is the underlying client; nil selects a default with no
	// timeout (streaming responses outlive any fixed one).
	HTTP *http.Client
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{}}
}

// authorize stamps the client's API key on one outbound request.
func (c *Client) authorize(req *http.Request) {
	if c.APIKey != "" {
		req.Header.Set("X-API-Key", c.APIKey)
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// StatusError is a non-2xx response. Callers distinguish admission
// rejections via Code == http.StatusTooManyRequests and back off by
// RetryAfter.
type StatusError struct {
	Code       int
	Msg        string
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("api: HTTP %d: %s", e.Code, e.Msg)
}

// IsRejected reports whether err is the admission controller's 429.
func IsRejected(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == http.StatusTooManyRequests
}

// StreamError is an NDJSON stream that ended abnormally after the 200
// header: either the server reported an in-band error line (Msg) or the
// connection ended before the summary trailer (Truncated) — a killed
// server, a dropped proxy, a partially-written response. Callers that
// count hard errors (cmd/vload) must treat both as failures; before this
// type existed a truncated stream was indistinguishable from other
// failures and an in-band error could not be told apart from transport
// errors.
type StreamError struct {
	Msg       string // the server's in-band error line ("" when truncated)
	Truncated bool   // the stream ended without its summary trailer
}

func (e *StreamError) Error() string {
	if e.Truncated {
		return "api: stream truncated before its summary trailer"
	}
	return fmt.Sprintf("api: stream failed: %s", e.Msg)
}

// IsTruncated reports whether err is a stream that ended without its
// summary trailer.
func IsTruncated(err error) bool {
	var se *StreamError
	return errors.As(err, &se) && se.Truncated
}

// IsStreamError reports whether err is an abnormal stream end (in-band
// server error or truncation), as opposed to a transport or status error.
func IsStreamError(err error) bool {
	var se *StreamError
	return errors.As(err, &se)
}

func statusError(resp *http.Response) *StatusError {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	se := &StatusError{Code: resp.StatusCode, Msg: string(bytes.TrimSpace(body))}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}

// do issues one JSON request; out nil skips decoding the response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	c.authorize(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// QueryStream runs one query, invoking fn for every chunk as it arrives
// off the wire — results flow while later segments are still decoding
// server-side. It returns the summary trailer on success.
func (c *Client) QueryStream(ctx context.Context, req QueryRequest, fn func(QueryChunk) error) (QuerySummary, error) {
	var sum QuerySummary
	b, err := json.Marshal(req)
	if err != nil {
		return sum, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/query", bytes.NewReader(b))
	if err != nil {
		return sum, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.authorize(hreq)
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return sum, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sum, statusError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // detection lists can be long
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ql QueryLine
		if err := json.Unmarshal(line, &ql); err != nil {
			return sum, fmt.Errorf("api: malformed response line: %w", err)
		}
		switch {
		case ql.Error != "":
			return sum, &StreamError{Msg: ql.Error}
		case ql.Chunk != nil:
			if fn != nil {
				if err := fn(*ql.Chunk); err != nil {
					return sum, err
				}
			}
		case ql.Done != nil:
			return *ql.Done, nil
		}
	}
	if err := sc.Err(); err != nil {
		return sum, err
	}
	return sum, &StreamError{Truncated: true}
}

// Query runs one query and collects every chunk.
func (c *Client) Query(ctx context.Context, req QueryRequest) ([]QueryChunk, QuerySummary, error) {
	var chunks []QueryChunk
	sum, err := c.QueryStream(ctx, req, func(ch QueryChunk) error {
		chunks = append(chunks, ch)
		return nil
	})
	return chunks, sum, err
}

// SubEvent is one parsed line of a subscription stream: exactly one of
// Ack, Chunk, or Alert is set. Chunk and Alert events carry the commit
// Seq; chunk events also carry the cumulative Dropped count.
type SubEvent struct {
	Ack     *SubAck
	Seq     int64
	Dropped int64
	Chunk   *QueryChunk
	Alert   *sub.Alert
}

// Subscribe registers a standing query and invokes fn for every pushed
// line — the ack first, then one chunk per committed segment (plus any
// rule alerts) — until the subscription ends. A clean end (unsubscribe,
// server drain) returns the summary trailer; an abnormal end (lag
// disconnect, evaluation failure, truncation) returns a *StreamError.
// Cancel ctx to drop the subscription client-side.
func (c *Client) Subscribe(ctx context.Context, req SubscribeRequest, fn func(SubEvent) error) (SubSummary, error) {
	var sum SubSummary
	b, err := json.Marshal(req)
	if err != nil {
		return sum, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/subscribe", bytes.NewReader(b))
	if err != nil {
		return sum, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	c.authorize(hreq)
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return sum, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sum, statusError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var sl SubLine
		if err := json.Unmarshal(line, &sl); err != nil {
			return sum, fmt.Errorf("api: malformed subscription line: %w", err)
		}
		switch {
		case sl.Error != "":
			return sum, &StreamError{Msg: sl.Error}
		case sl.Done != nil:
			return *sl.Done, nil
		default:
			if fn != nil {
				ev := SubEvent{Ack: sl.Ack, Seq: sl.Seq, Dropped: sl.Dropped, Chunk: sl.Chunk, Alert: sl.Alert}
				if err := fn(ev); err != nil {
					return sum, err
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return sum, err
	}
	return sum, &StreamError{Truncated: true}
}

// Unsubscribe ends a subscription by ID, reporting whether it was live.
func (c *Client) Unsubscribe(ctx context.Context, id string) (bool, error) {
	var resp UnsubscribeResponse
	err := c.do(ctx, http.MethodPost, "/v1/unsubscribe", UnsubscribeRequest{ID: id}, &resp)
	return resp.Found, err
}

// Subs lists the live subscriptions with their counters.
func (c *Client) Subs(ctx context.Context) (SubsResponse, error) {
	var resp SubsResponse
	err := c.do(ctx, http.MethodGet, "/v1/subs", nil, &resp)
	return resp, err
}

// Ingest appends segments of a scene to a stream.
func (c *Client) Ingest(ctx context.Context, req IngestRequest) (IngestResponse, error) {
	var resp IngestResponse
	err := c.do(ctx, http.MethodPost, "/v1/ingest", req, &resp)
	return resp, err
}

// Stats fetches the store and API counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var resp StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp)
	return resp, err
}

// Streams fetches every known stream's serving state.
func (c *Client) Streams(ctx context.Context) (map[string]StreamInfo, error) {
	var resp StreamsResponse
	err := c.do(ctx, http.MethodGet, "/v1/streams", nil, &resp)
	return resp.Streams, err
}

// Erode runs one erosion pass at the given day index.
func (c *Client) Erode(ctx context.Context, today int) (int, error) {
	var resp ErodeResponse
	err := c.do(ctx, http.MethodPost, "/v1/erode", ErodeRequest{Today: today}, &resp)
	return resp.Eroded, err
}

// Demote runs one fast→cold demotion pass at the given day index.
func (c *Client) Demote(ctx context.Context, today int) (int, error) {
	var resp DemoteResponse
	err := c.do(ctx, http.MethodPost, "/v1/demote", ErodeRequest{Today: today}, &resp)
	return resp.Demoted, err
}

// Compact compacts every shard of both tiers.
func (c *Client) Compact(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/v1/compact", struct{}{}, nil)
}

// Scrub runs one self-healing scrub pass: checksum verification over the
// whole store plus re-derivation of damaged replicas.
func (c *Client) Scrub(ctx context.Context) (ScrubResponse, error) {
	var resp ScrubResponse
	err := c.do(ctx, http.MethodPost, "/v1/scrub", struct{}{}, &resp)
	return resp, err
}

// Healthz checks liveness.
func (c *Client) Healthz(ctx context.Context) (HealthResponse, error) {
	var resp HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp)
	return resp, err
}
