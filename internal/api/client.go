package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is the Go client of the HTTP API — what cmd/vload and
// examples/httpserve drive. The zero HTTP client has no global timeout:
// streamed queries run as long as the server allows; bound them with the
// context (or QueryRequest.TimeoutMs).
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the underlying client; nil selects a default with no
	// timeout (streaming responses outlive any fixed one).
	HTTP *http.Client
}

// NewClient returns a client for the server at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: &http.Client{}}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// StatusError is a non-2xx response. Callers distinguish admission
// rejections via Code == http.StatusTooManyRequests and back off by
// RetryAfter.
type StatusError struct {
	Code       int
	Msg        string
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("api: HTTP %d: %s", e.Code, e.Msg)
}

// IsRejected reports whether err is the admission controller's 429.
func IsRejected(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == http.StatusTooManyRequests
}

func statusError(resp *http.Response) *StatusError {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	se := &StatusError{Code: resp.StatusCode, Msg: string(bytes.TrimSpace(body))}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return se
}

// do issues one JSON request; out nil skips decoding the response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// QueryStream runs one query, invoking fn for every chunk as it arrives
// off the wire — results flow while later segments are still decoding
// server-side. It returns the summary trailer on success.
func (c *Client) QueryStream(ctx context.Context, req QueryRequest, fn func(QueryChunk) error) (QuerySummary, error) {
	var sum QuerySummary
	b, err := json.Marshal(req)
	if err != nil {
		return sum, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/query", bytes.NewReader(b))
	if err != nil {
		return sum, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return sum, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sum, statusError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // detection lists can be long
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ql QueryLine
		if err := json.Unmarshal(line, &ql); err != nil {
			return sum, fmt.Errorf("api: malformed response line: %w", err)
		}
		switch {
		case ql.Error != "":
			return sum, fmt.Errorf("api: query failed: %s", ql.Error)
		case ql.Chunk != nil:
			if fn != nil {
				if err := fn(*ql.Chunk); err != nil {
					return sum, err
				}
			}
		case ql.Done != nil:
			return *ql.Done, nil
		}
	}
	if err := sc.Err(); err != nil {
		return sum, err
	}
	return sum, fmt.Errorf("api: query stream ended without a summary")
}

// Query runs one query and collects every chunk.
func (c *Client) Query(ctx context.Context, req QueryRequest) ([]QueryChunk, QuerySummary, error) {
	var chunks []QueryChunk
	sum, err := c.QueryStream(ctx, req, func(ch QueryChunk) error {
		chunks = append(chunks, ch)
		return nil
	})
	return chunks, sum, err
}

// Ingest appends segments of a scene to a stream.
func (c *Client) Ingest(ctx context.Context, req IngestRequest) (IngestResponse, error) {
	var resp IngestResponse
	err := c.do(ctx, http.MethodPost, "/v1/ingest", req, &resp)
	return resp, err
}

// Stats fetches the store and API counters.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var resp StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp)
	return resp, err
}

// Streams fetches every known stream's serving state.
func (c *Client) Streams(ctx context.Context) (map[string]StreamInfo, error) {
	var resp StreamsResponse
	err := c.do(ctx, http.MethodGet, "/v1/streams", nil, &resp)
	return resp.Streams, err
}

// Erode runs one erosion pass at the given day index.
func (c *Client) Erode(ctx context.Context, today int) (int, error) {
	var resp ErodeResponse
	err := c.do(ctx, http.MethodPost, "/v1/erode", ErodeRequest{Today: today}, &resp)
	return resp.Eroded, err
}

// Demote runs one fast→cold demotion pass at the given day index.
func (c *Client) Demote(ctx context.Context, today int) (int, error) {
	var resp DemoteResponse
	err := c.do(ctx, http.MethodPost, "/v1/demote", ErodeRequest{Today: today}, &resp)
	return resp.Demoted, err
}

// Compact compacts every shard of both tiers.
func (c *Client) Compact(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/v1/compact", struct{}{}, nil)
}

// Healthz checks liveness.
func (c *Client) Healthz(ctx context.Context) (HealthResponse, error) {
	var resp HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp)
	return resp, err
}
