package api_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/vidsim"
)

// TestScrubEndpointAndDegradedHealth drives self-healing over the wire:
// a corrupted replica is found and re-derived by POST /v1/scrub, the
// counters surface in /v1/stats and /metrics, and unhealable damage (the
// golden copy itself) flips /healthz to degraded while queries keep
// answering.
func TestScrubEndpointAndDegradedHealth(t *testing.T) {
	srv, cl := startAPI(t, api.Limits{})
	ctx := context.Background()
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := srv.Ingest(sc, "cam", 2); err != nil {
		t.Fatal(err)
	}

	// A clean store scrubs clean and reports healthy.
	resp, err := cl.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Corrupt != 0 || resp.Lost != 0 || len(resp.Failed) != 0 || resp.Scanned == 0 {
		t.Fatalf("clean-store scrub: %+v", resp)
	}
	if h, err := cl.Healthz(ctx); err != nil || h.Degraded {
		t.Fatalf("healthz on clean store: %+v, %v", h, err)
	}

	// Corrupt a derived replica: the scrub finds and re-derives it.
	if _, err := srv.DamageReplica("cam", "", 0); err != nil {
		t.Fatal(err)
	}
	resp, err = cl.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Corrupt != 1 || resp.Repaired != 1 || len(resp.Failed) != 0 {
		t.Fatalf("scrub of damaged replica: %+v", resp)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Store.Repairs < 1 || st.Store.ScrubPasses < 2 {
		t.Fatalf("repair counters not in /v1/stats: repairs=%d scrubs=%d",
			st.Store.Repairs, st.Store.ScrubPasses)
	}
	body := fetchMetrics(t, cl)
	for _, want := range []string{"vstore_repairs_total 1", "vstore_repair_pending 0", "vstore_scrub_passes_total"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// Damage segment 1's golden replica: no richer ancestor exists, the
	// scrub reports the failure, and the server flips to degraded — but
	// stays up: undamaged footage keeps answering, and the damaged span
	// fails with a structured in-band error, not a hung stream.
	goldenKey := testConfig(t).Derivation.SFs[testConfig(t).Derivation.Golden].SF.Key()
	if _, err := srv.DamageReplica("cam", goldenKey, 1); err != nil {
		t.Fatal(err)
	}
	resp, err = cl.Scrub(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Failed) != 1 {
		t.Fatalf("scrub of damaged golden: %+v", resp)
	}
	h, err := cl.Healthz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !h.OK || !h.Degraded {
		t.Fatalf("healthz with unhealable damage: %+v", h)
	}
	if _, _, err := cl.Query(ctx, api.QueryRequest{Stream: "cam", Query: testQuery, From: 0, To: 1}); err != nil {
		t.Fatalf("query over undamaged footage while degraded: %v", err)
	}
	if _, _, err := cl.Query(ctx, api.QueryRequest{Stream: "cam", Query: testQuery}); !api.IsStreamError(err) {
		t.Fatalf("query over unhealable footage: want in-band stream error, got %v", err)
	}
}

func fetchMetrics(t *testing.T, cl *api.Client) string {
	t.Helper()
	resp, err := http.Get(cl.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
