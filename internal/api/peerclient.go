// Client methods for the peer endpoints: snapshot leases, replica
// enumeration and fetch, the commit stream, and replication pulls. These
// are what RemoteStore and the cluster layer are built from.

package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"repro/internal/codec"
	"repro/internal/frame"
	"repro/internal/segment"
)

// IsUnavailable reports whether err is the server's 503 — a drain in
// progress (or a slot-wait deadline). Like a 429, it is transient: the
// request was refused, not failed, and a retry elsewhere (or after the
// Retry-After hint) is the right response.
func IsUnavailable(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusServiceUnavailable
}

// RetryAfterHint returns the server's backoff hint carried by err. Both
// admission rejections (429) and drain refusals (503) carry one; before
// the drain path gained its header, clients backed off properly on 429
// but hammered a draining server.
func RetryAfterHint(err error) (time.Duration, bool) {
	var se *StatusError
	if errors.As(err, &se) && se.RetryAfter > 0 &&
		(se.Code == http.StatusTooManyRequests || se.Code == http.StatusServiceUnavailable) {
		return se.RetryAfter, true
	}
	return 0, false
}

// PinSnapshot pins a snapshot server-side, returning its lease and every
// stream's committed length at the pin. The caller owns the lease:
// release it with ReleaseSnapshot, or let it idle past the server's TTL.
func (c *Client) PinSnapshot(ctx context.Context) (SnapshotResponse, error) {
	var resp SnapshotResponse
	err := c.do(ctx, http.MethodPost, "/v1/snapshot", struct{}{}, &resp)
	return resp, err
}

// ReleaseSnapshot releases a snapshot lease, reporting whether it was
// live.
func (c *Client) ReleaseSnapshot(ctx context.Context, id string) (bool, error) {
	var resp SnapshotReleaseResponse
	err := c.do(ctx, http.MethodPost, "/v1/snapshot/release", SnapshotReleaseRequest{ID: id}, &resp)
	return resp.Found, err
}

// Refs enumerates one stream's committed replicas in the leased snapshot,
// sorted by (format key, index); sf non-empty filters to one storage
// format.
func (c *Client) Refs(ctx context.Context, snapID, stream, sf string) ([]WireRef, error) {
	q := url.Values{"snap": {snapID}, "stream": {stream}}
	if sf != "" {
		q.Set("sf", sf)
	}
	var resp RefsResponse
	err := c.do(ctx, http.MethodGet, "/v1/refs?"+q.Encode(), nil, &resp)
	return resp.Refs, err
}

// getBytes fetches one binary response body. A 404 surfaces as
// segment.ErrNotFound — the same sentinel a local read returns for a
// replica outside the snapshot.
func (c *Client) getBytes(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	c.authorize(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		se := statusError(resp)
		return nil, fmt.Errorf("%s: %w", se.Msg, segment.ErrNotFound)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp)
	}
	return io.ReadAll(resp.Body)
}

func segmentPath(snapID, stream, sf string, raw bool, idx int) string {
	q := url.Values{
		"snap":   {snapID},
		"stream": {stream},
		"sf":     {sf},
		"idx":    {strconv.Itoa(idx)},
	}
	if raw {
		q.Set("raw", "true")
	}
	return "/v1/segment?" + q.Encode()
}

// SegmentEncoded fetches one encoded replica's container through a leased
// snapshot.
func (c *Client) SegmentEncoded(ctx context.Context, snapID, stream, sf string, idx int) (*codec.Encoded, error) {
	b, err := c.getBytes(ctx, segmentPath(snapID, stream, sf, false, idx))
	if err != nil {
		return nil, err
	}
	return codec.Unmarshal(b)
}

// SegmentRaw fetches one raw replica's frames through a leased snapshot.
func (c *Client) SegmentRaw(ctx context.Context, snapID, stream, sf string, idx int) ([]*frame.Frame, error) {
	b, err := c.getBytes(ctx, segmentPath(snapID, stream, sf, true, idx))
	if err != nil {
		return nil, err
	}
	return segment.UnmarshalRawSegment(b)
}

// Commits follows the server's segment-commit stream, invoking fn for
// every commit in order until ctx ends, the server drains (nil), or the
// stream lags past the server's buffer (*StreamError).
func (c *Client) Commits(ctx context.Context, fn func(CommitLine) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/commits", nil)
	if err != nil {
		return err
	}
	c.authorize(req)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		// Commit lines and the in-band overflow error share the wire shape
		// of a QueryLine error, so probe for the error field first.
		var probe struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return fmt.Errorf("api: malformed commit line: %w", err)
		}
		if probe.Error != "" {
			return &StreamError{Msg: probe.Error}
		}
		var cl CommitLine
		if err := json.Unmarshal(line, &cl); err != nil {
			return fmt.Errorf("api: malformed commit line: %w", err)
		}
		if err := fn(cl); err != nil {
			return err
		}
	}
	// A commit stream has no trailer: it ends when the server drains or
	// the subscriber cancels. Scanner errors from our own cancellation are
	// a clean end too.
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// Pull asks the server to replicate a stream from a peer node onto
// itself.
func (c *Client) Pull(ctx context.Context, req PullRequest) (PullResponse, error) {
	var resp PullResponse
	err := c.do(ctx, http.MethodPost, "/v1/pull", req, &resp)
	return resp, err
}
