package api_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/profile"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/vidsim"
)

// testConfig derives a small two-operator configuration with erosion
// pressure, memoised across tests (derivation profiles operators, which
// is expensive under the race detector).
func testConfig(t testing.TB) *core.Config {
	t.Helper()
	cfgOnce.Do(func() { cfgShared = deriveTestConfig(t) })
	if cfgShared == nil {
		t.Fatal("config derivation failed in an earlier test")
	}
	return cfgShared
}

var (
	cfgOnce   sync.Once
	cfgShared *core.Config
)

func deriveTestConfig(t testing.TB) *core.Config {
	t.Helper()
	sc, err := vidsim.DatasetByName("jackson")
	if err != nil {
		t.Fatal(err)
	}
	p := profile.New(sc)
	p.ClipFrames = 120
	consumers := []core.Consumer{
		{Op: ops.Motion{}, Target: 0.9, Prof: p},
		{Op: ops.License{}, Target: 0.9, Prof: p},
		{Op: ops.OCR{}, Target: 0.9, Prof: p}, // query B's final stage
	}
	choices := core.DeriveConsumptionFormats(consumers)
	d, err := core.DeriveStorageFormats(choices, core.SFOptions{Profiler: p})
	if err != nil {
		t.Fatal(err)
	}
	const lifespan = 3
	golden := d.SFs[d.Golden].Prof.BytesPerSec * 86400
	floor := d.TotalBytesPerSec()*86400 + float64(lifespan-1)*golden
	full := d.TotalBytesPerSec() * 86400 * float64(lifespan)
	plan, err := core.PlanErosion(d, core.ErosionOptions{
		Profiler: p, LifespanDays: lifespan,
		StorageBudgetBytes: int64(floor + 0.3*(full-floor)),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &core.Config{Derivation: d, Erosion: plan}
	cfg.Runtime.CacheBytes = 32 << 20
	return cfg
}

// startAPI opens a configured store in a temp dir and serves it over a
// loopback listener. Cleanup drains the API and closes the store.
func startAPI(t *testing.T, lim api.Limits) (*server.Server, *api.Client) {
	t.Helper()
	srv, err := server.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Reconfigure(testConfig(t)); err != nil {
		t.Fatal(err)
	}
	as := api.New(srv, lim)
	addr, err := as.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := as.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return srv, api.NewClient("http://" + addr.String())
}

const testQuery = "B" // Motion+License+OCR resolves against the test config

// mustMarshal pins "byte-identical": both sides of a comparison are
// serialised through the same wire struct.
func mustMarshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestHTTPQueryMatchesInProcess is the fidelity contract: the same query
// over the wire and in-process produces byte-identical results — for the
// whole-range execution and for the chunked streaming execution (compared
// against the same chunking on a pinned snapshot).
func TestHTTPQueryMatchesInProcess(t *testing.T) {
	srv, cl := startAPI(t, api.Limits{})
	// Cache off: a warm retrieval reports zero virtual retrieval cost, so
	// whichever transport ran second would differ in the timing fields.
	// With it off, every field of the wire struct must match exactly.
	srv.SetCacheBudget(0)
	ctx := context.Background()
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := srv.Ingest(sc, "cam", 3); err != nil {
		t.Fatal(err)
	}
	cascade, names, err := query.ByName(testQuery)
	if err != nil {
		t.Fatal(err)
	}

	// Whole range in one chunk: exactly Server.Query.
	chunks, sum, err := cl.Query(ctx, api.QueryRequest{Stream: "cam", Query: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 || sum.Segments != 3 || sum.Chunks != 1 {
		t.Fatalf("whole-range query: %d chunks, summary %+v", len(chunks), sum)
	}
	ref, err := srv.Query(ctx, "cam", cascade, names, 0.9, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustMarshal(t, chunks[0]), mustMarshal(t, api.ChunkFromResult(0, 3, ref)); got != want {
		t.Fatalf("HTTP result differs from in-process:\n got %s\nwant %s", got, want)
	}

	// Segment-by-segment streaming: byte-identical to the same chunked
	// execution against one pinned snapshot.
	chunks, sum, err = cl.Query(ctx, api.QueryRequest{Stream: "cam", Query: testQuery, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 || sum.Chunks != 3 {
		t.Fatalf("chunked query: %d chunks, summary %+v", len(chunks), sum)
	}
	snap, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	for i, ch := range chunks {
		res, err := srv.QueryAt(ctx, snap, "cam", cascade, names, 0.9, i, i+1)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := mustMarshal(t, ch), mustMarshal(t, api.ChunkFromResult(i, i+1, res)); got != want {
			t.Fatalf("chunk %d differs from in-process:\n got %s\nwant %s", i, got, want)
		}
	}

	// The rest of the read surface.
	streams, err := cl.Streams(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if streams["cam"].Segments != 3 {
		t.Fatalf("streams: %+v", streams)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.API["query"].Requests < 2 || st.Store.Keys == 0 {
		t.Fatalf("stats: api=%+v store keys=%d", st.API["query"], st.Store.Keys)
	}
	if h, err := cl.Healthz(ctx); err != nil || !h.OK {
		t.Fatalf("healthz: %+v, %v", h, err)
	}
}

// TestHTTPLifecycleEndpoints drives ingest, demote, compact and erode
// over the wire against a store with erosion pressure.
func TestHTTPLifecycleEndpoints(t *testing.T) {
	srv, cl := startAPI(t, api.Limits{})
	ctx := context.Background()

	ing, err := cl.Ingest(ctx, api.IngestRequest{Stream: "cam", Scene: "jackson", Segments: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ing.Segments != 3 || ing.Bytes == 0 {
		t.Fatalf("ingest: %+v", ing)
	}
	if srv.SegmentsOf("cam") != 3 {
		t.Fatalf("store has %d segments", srv.SegmentsOf("cam"))
	}
	if _, err := cl.Demote(ctx, 1); err != nil {
		t.Fatal(err)
	}
	eroded, err := cl.Erode(ctx, 4) // old enough for the pressure plan to bite
	if err != nil {
		t.Fatal(err)
	}
	if eroded == 0 {
		t.Fatal("erosion pass with pressure eroded nothing")
	}
	if err := cl.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	// Bad requests are 400s, not 500s.
	if _, _, err := cl.Query(ctx, api.QueryRequest{Query: testQuery}); err == nil {
		t.Fatal("query without stream accepted")
	} else if se := new(api.StatusError); !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("missing-stream error = %v", err)
	}
	if _, err := cl.Ingest(ctx, api.IngestRequest{Stream: "cam", Scene: "no-such-scene", Segments: 1}); err == nil {
		t.Fatal("unknown scene accepted")
	}
}

// TestAdmissionControl pins the 429 path deterministically on a 1-slot,
// 1-waiter server: a slow ingest holds the execution slot, a queued query
// takes the waiting-room seat, and the next request is rejected with the
// configured Retry-After hint — while both admitted requests complete.
// A follow-up burst shows saturation never deadlocks: every request either
// completes or is rejected.
func TestAdmissionControl(t *testing.T) {
	srv, cl := startAPI(t, api.Limits{MaxInFlight: 1, MaxQueue: 1, RetryAfter: 2 * time.Second})
	srv.SetCacheBudget(0) // keep queries doing real retrieval work
	ctx := context.Background()
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := srv.Ingest(sc, "cam", 2); err != nil {
		t.Fatal(err)
	}

	// waitInFlight polls until the endpoint reports at least n in-flight
	// requests (the counter increments on arrival, before the gate).
	waitInFlight := func(endpoint string, n int64) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			st, err := cl.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.API[endpoint].InFlight >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never reached %d in-flight", endpoint, n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// 1. Occupy the execution slot with a multi-segment ingest (the gate
	// is shared: mixed query/ingest load admits against one budget).
	holderDone := make(chan error, 1)
	go func() {
		_, err := cl.Ingest(ctx, api.IngestRequest{Stream: "cam", Scene: "jackson", Segments: 4})
		holderDone <- err
	}()
	waitInFlight("ingest", 1)
	time.Sleep(50 * time.Millisecond) // arrival -> slot acquisition

	// 2. Fill the waiting room with a query.
	queuedDone := make(chan error, 1)
	go func() {
		_, _, err := cl.Query(ctx, api.QueryRequest{Stream: "cam", Query: testQuery})
		queuedDone <- err
	}()
	waitInFlight("query", 1)
	time.Sleep(50 * time.Millisecond) // arrival -> queue entry

	// 3. Slot busy, waiting room full: the next request gets 429.
	_, _, err := cl.Query(ctx, api.QueryRequest{Stream: "cam", Query: testQuery})
	if !api.IsRejected(err) {
		t.Fatalf("saturated server answered %v, want 429", err)
	}
	se := new(api.StatusError)
	if !errors.As(err, &se) || se.RetryAfter != 2*time.Second {
		t.Fatalf("Retry-After hint = %+v", se)
	}

	// 4. Both admitted requests complete; the rejection is counted.
	if err := <-holderDone; err != nil {
		t.Fatalf("slot-holding ingest: %v", err)
	}
	if err := <-queuedDone; err != nil {
		t.Fatalf("queued query: %v", err)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.API["query"].Rejections != 1 {
		t.Fatalf("query rejections = %d, want 1", st.API["query"].Rejections)
	}
	if st.API["query"].InFlight != 0 || st.API["ingest"].InFlight != 0 {
		t.Fatalf("in-flight left: %+v / %+v", st.API["query"], st.API["ingest"])
	}

	// 5. Burst: 8 simultaneous queries against the 1+1 server must all
	// either complete or be rejected — no deadlock, no pileup.
	var (
		wg           sync.WaitGroup
		mu           sync.Mutex
		ok, rejected int
	)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := cl.Query(ctx, api.QueryRequest{Stream: "cam", Query: testQuery})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				ok++
			case api.IsRejected(err):
				rejected++
			default:
				t.Errorf("burst query: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok == 0 || ok+rejected != 8 {
		t.Fatalf("burst: %d ok, %d rejected of 8", ok, rejected)
	}
}

// TestQueryCancellation covers the disconnecting client: canceling the
// request context mid-stream releases the execution slot promptly (the
// engine observes ctx between per-segment batches) instead of decoding
// the rest of the span.
func TestQueryCancellation(t *testing.T) {
	srv, cl := startAPI(t, api.Limits{MaxInFlight: 1, MaxQueue: 0})
	srv.SetCacheBudget(0) // cold retrievals keep the stream long enough to cancel
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := srv.Ingest(sc, "cam", 8); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := cl.QueryStream(ctx, api.QueryRequest{Stream: "cam", Query: testQuery, Chunk: 1},
		func(api.QueryChunk) error {
			cancel() // disconnect after the first chunk arrives
			return nil
		})
	if err == nil {
		t.Fatal("canceled query succeeded")
	}
	// The slot must come free: a fresh query on the 1-slot server succeeds
	// once the canceled one unwinds.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, err := cl.Query(context.Background(), api.QueryRequest{Stream: "cam", Query: testQuery, To: 1})
		if err == nil {
			break
		}
		if !api.IsRejected(err) {
			t.Fatalf("post-cancel query: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("canceled query never released its execution slot")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerSideTimeout: a query whose timeout_ms expires mid-run ends
// with an in-band error line, not a hung connection. Chunked execution
// over several cold segments gives the deadline check (between
// per-segment batches) plenty of opportunities to trip on a fast host.
func TestServerSideTimeout(t *testing.T) {
	srv, cl := startAPI(t, api.Limits{})
	srv.SetCacheBudget(0)
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := srv.Ingest(sc, "cam", 8); err != nil {
		t.Fatal(err)
	}
	_, _, err := cl.Query(context.Background(),
		api.QueryRequest{Stream: "cam", Query: testQuery, Chunk: 1, TimeoutMs: 1})
	if err == nil {
		t.Fatal("1ms query over 8 cold segments succeeded")
	}
	if api.IsRejected(err) {
		t.Fatalf("timeout surfaced as rejection: %v", err)
	}
}

// TestGracefulDrain proves the shutdown contract: in-flight queries
// finish (their streams complete with a summary), new requests are
// refused, snapshots are released, and — with the store closed — no
// goroutines leak.
func TestGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	srv, err := server.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Reconfigure(testConfig(t)); err != nil {
		t.Fatal(err)
	}
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := srv.Ingest(sc, "cam", 3); err != nil {
		t.Fatal(err)
	}
	as := api.New(srv, api.Limits{})
	addr, err := as.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := api.NewClient("http://" + addr.String())

	// A query in flight when Shutdown begins must run to completion.
	firstChunk := make(chan struct{})
	queryDone := make(chan error, 1)
	go func() {
		seen := false
		sum, err := cl.QueryStream(context.Background(),
			api.QueryRequest{Stream: "cam", Query: testQuery, Chunk: 1},
			func(api.QueryChunk) error {
				if !seen {
					seen = true
					close(firstChunk)
				}
				return nil
			})
		if err == nil && sum.Chunks != 3 {
			err = fmt.Errorf("drained query saw %d chunks", sum.Chunks)
		}
		queryDone <- err
	}()
	<-firstChunk

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := as.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-queryDone; err != nil {
		t.Fatalf("in-flight query during drain: %v", err)
	}
	// Refused after drain: the listener is gone.
	if _, err := cl.Healthz(context.Background()); err == nil {
		t.Fatal("request accepted after shutdown")
	}
	if st := srv.Stats(); st.ActiveSnapshots != 0 {
		t.Fatalf("drain left %d active snapshots", st.ActiveSnapshots)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// All serving goroutines unwound (allow the runtime a moment and a
	// little slack for the test framework's own).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(),
				buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestConcurrentServeOverHTTP is the live-traffic test: concurrent
// queries, ingest and erosion passes all over HTTP under the race
// detector, with only 429s permitted as failures, and the final state
// deterministic: two identical queries at the end agree byte-for-byte.
func TestConcurrentServeOverHTTP(t *testing.T) {
	_, cl := startAPI(t, api.Limits{MaxInFlight: 4, MaxQueue: 8})
	ctx := context.Background()

	// Seed both streams so queriers have footage immediately.
	for _, stream := range []string{"camA", "camB"} {
		if _, err := cl.Ingest(ctx, api.IngestRequest{Stream: stream, Scene: "jackson", Segments: 1}); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Ingesters: grow each stream while queries run.
	for _, stream := range []string{"camA", "camB"} {
		stream := stream
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				_, err := cl.Ingest(ctx, api.IngestRequest{Stream: stream, Scene: "jackson", Segments: 1})
				if err != nil && !api.IsRejected(err) {
					errs <- fmt.Errorf("ingest %s: %w", stream, err)
					return
				}
			}
		}()
	}
	// Queriers: stream chunked queries over whatever is committed.
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			streams := []string{"camA", "camB"}
			for iter := 0; iter < 3; iter++ {
				stream := streams[(w+iter)%2]
				_, _, err := cl.Query(ctx, api.QueryRequest{Stream: stream, Query: testQuery, Chunk: 1})
				if err != nil && !api.IsRejected(err) {
					errs <- fmt.Errorf("query %s: %w", stream, err)
					return
				}
			}
		}()
	}
	// Eroder: periodic passes, exactly what a daemon would issue.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if _, err := cl.Erode(ctx, 2); err != nil {
				errs <- fmt.Errorf("erode: %w", err)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Quiesced: the store must answer deterministically. One warming run
	// first, so both compared queries see the same (fully warm) cache and
	// their virtual timing fields agree too.
	if _, _, err := cl.Query(ctx, api.QueryRequest{Stream: "camA", Query: testQuery, Chunk: 1}); err != nil {
		t.Fatal(err)
	}
	a, _, err := cl.Query(ctx, api.QueryRequest{Stream: "camA", Query: testQuery, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := cl.Query(ctx, api.QueryRequest{Stream: "camA", Query: testQuery, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustMarshal(t, a), mustMarshal(t, b); got != want {
		t.Fatalf("repeated quiescent queries disagree:\n%s\n%s", got, want)
	}
}
