package api_test

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/tenant"
	"repro/internal/vidsim"
)

// twoTenantRegistry gives "hot" and "cold" equal-weight tenants behind
// separate API keys.
func twoTenantRegistry() *tenant.Registry {
	return tenant.NewRegistry(
		[]core.TenantQuota{{Name: "hot"}, {Name: "cold"}},
		map[string]string{"k-hot": "hot", "k-cold": "cold"},
	)
}

// TestGateFairnessAcrossTenants is the starvation regression at the HTTP
// level: a hot tenant holds the only execution slot AND has filled its
// whole waiting room, and a cold tenant's query must still be admitted
// and answered. The pre-multi-tenant global FIFO gate fails this test —
// its single shared queue was full of hot requests, so the cold tenant
// was answered 429 at the door.
func TestGateFairnessAcrossTenants(t *testing.T) {
	srv, cl := startAPI(t, api.Limits{MaxInFlight: 1, MaxQueue: 2, Tenants: twoTenantRegistry()})
	srv.SetCacheBudget(0)
	ctx := context.Background()
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := srv.Ingest(sc, "cam", 2); err != nil {
		t.Fatal(err)
	}
	hot := api.NewClient(cl.BaseURL)
	hot.APIKey = "k-hot"
	cold := api.NewClient(cl.BaseURL)
	cold.APIKey = "k-cold"

	waitInFlight := func(endpoint string, n int64) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for {
			st, err := cl.Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if st.API[endpoint].InFlight >= n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never reached %d in-flight", endpoint, n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Hot occupies the slot with a long ingest...
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := hot.Ingest(ctx, api.IngestRequest{Stream: "cam", Scene: "jackson", Segments: 4}); err != nil {
			t.Errorf("hot holder: %v", err)
		}
	}()
	waitInFlight("ingest", 1)
	time.Sleep(50 * time.Millisecond) // arrival -> slot acquisition

	// ...and fills its whole waiting room with queries.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := hot.Query(ctx, api.QueryRequest{Stream: "cam", Query: testQuery}); err != nil {
				t.Errorf("hot queued query: %v", err)
			}
		}()
	}
	waitInFlight("query", 2)
	time.Sleep(100 * time.Millisecond) // arrival -> queue entry

	// Hot's own overflow is rejected — its queue really is full.
	if _, _, err := hot.Query(ctx, api.QueryRequest{Stream: "cam", Query: testQuery}); !api.IsRejected(err) {
		t.Fatalf("hot overflow answered %v, want 429", err)
	}

	// The cold tenant, arriving dead last, is still admitted and served:
	// it queues in its own lane and the fair dispatcher grants it within
	// its equal share. The global FIFO answered 429 here.
	if _, _, err := cold.Query(ctx, api.QueryRequest{Stream: "cam", Query: testQuery}); err != nil {
		t.Fatalf("cold tenant starved: %v", err)
	}
	wg.Wait()

	// The per-tenant accounting saw all of it.
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenants["cold"].Window.OK < 1 {
		t.Fatalf("cold tenant window = %+v, want >= 1 ok", st.Tenants["cold"].Window)
	}
	if st.Tenants["hot"].Window.Rejected < 1 {
		t.Fatalf("hot tenant window = %+v, want >= 1 rejection", st.Tenants["hot"].Window)
	}
}

// TestUnknownAPIKeyUnauthorized: a key no tenant owns is answered 401 and
// counted; it never reaches the gate.
func TestUnknownAPIKeyUnauthorized(t *testing.T) {
	_, cl := startAPI(t, api.Limits{Tenants: twoTenantRegistry()})
	bad := api.NewClient(cl.BaseURL)
	bad.APIKey = "k-nobody"
	_, err := bad.Stats(context.Background())
	se := new(api.StatusError)
	if !errors.As(err, &se) || se.Code != http.StatusUnauthorized {
		t.Fatalf("unknown key answered %v, want 401", err)
	}
	// Bearer form resolves the same way.
	req, _ := http.NewRequest(http.MethodGet, cl.BaseURL+"/v1/stats", nil)
	req.Header.Set("Authorization", "Bearer k-hot")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bearer key answered %d, want 200", resp.StatusCode)
	}
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.API["stats"].Unauthorized != 1 {
		t.Fatalf("unauthorized count = %d, want 1", st.API["stats"].Unauthorized)
	}
}

// TestTenantRateQuota: an exhausted per-tenant rate quota answers the
// workload endpoints (query, ingest) 429 with a Retry-After, without the
// request ever occupying a gate slot. Read-only admin endpoints (stats,
// streams) stay free — a throttled tenant may still watch its counters.
func TestTenantRateQuota(t *testing.T) {
	reg := tenant.NewRegistry(
		[]core.TenantQuota{{Name: "limited", RatePerSec: 0.001, Burst: 1}},
		map[string]string{"k-lim": "limited"},
	)
	_, cl := startAPI(t, api.Limits{Tenants: reg})
	lim := api.NewClient(cl.BaseURL)
	lim.APIKey = "k-lim"
	ctx := context.Background()
	q := api.QueryRequest{Stream: "cam", Query: testQuery}
	if _, _, err := lim.Query(ctx, q); err != nil {
		t.Fatalf("first request within burst: %v", err)
	}
	_, _, err := lim.Query(ctx, q)
	if !api.IsRejected(err) {
		t.Fatalf("over-quota request answered %v, want 429", err)
	}
	se := new(api.StatusError)
	if !errors.As(err, &se) || se.RetryAfter < time.Second {
		t.Fatalf("quota rejection Retry-After = %+v, want >= 1s", se)
	}
	// Admin reads are not admitted through the quota.
	if _, err := lim.Streams(ctx); err != nil {
		t.Fatalf("throttled tenant's stats read: %v", err)
	}
	// The keyless tenant is untouched by the limited tenant's quota.
	if _, _, err := cl.Query(ctx, q); err != nil {
		t.Fatalf("keyless request: %v", err)
	}
}

// TestDrainUnavailableCounted is the drain-accounting regression: 503s
// answered while draining used to return before the request counter, so
// a drain looked like silence instead of refused traffic.
func TestDrainUnavailableCounted(t *testing.T) {
	srv, err := server.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Reconfigure(testConfig(t)); err != nil {
		t.Fatal(err)
	}
	as := api.New(srv, api.Limits{})
	// No Start: drive the handler directly so requests can be issued
	// after Shutdown put the server in its draining state.
	if err := as.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	as.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(`{"stream":"cam"}`)))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining query answered %d, want 503", rec.Code)
	}
	m := as.Metrics()
	if m["query"].Requests != 1 || m["query"].Unavailable != 1 {
		t.Fatalf("drain accounting = %+v, want requests=1 unavailable=1", m["query"])
	}
	// healthz still answers, and reports the drain.
	rec = httptest.NewRecorder()
	as.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"draining":true`) {
		t.Fatalf("draining healthz = %d %q", rec.Code, rec.Body.String())
	}
	// /metrics stays scrapable through the drain.
	rec = httptest.NewRecorder()
	as.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("draining metrics answered %d, want 200", rec.Code)
	}
}

// TestClientAbortCounted is the vanished-client regression: a request
// whose client disconnects while parked in the admission gate used to be
// recorded as a 200 (the countingWriter's default status) and its park
// time dragged the latency averages. It must count as a client abort and
// stay out of the latency summary.
func TestClientAbortCounted(t *testing.T) {
	srv, cl := startAPI(t, api.Limits{MaxInFlight: 1, MaxQueue: 2})
	srv.SetCacheBudget(0)
	ctx := context.Background()
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := srv.Ingest(sc, "cam", 2); err != nil {
		t.Fatal(err)
	}

	// Occupy the slot with an ingest, so the query endpoint's counters
	// see nothing but the abort. The batch must be big enough to hold the
	// slot well past the cancel below even on a fast machine — if the slot
	// frees first, the parked query runs to completion and no abort ever
	// happens.
	holderDone := make(chan error, 1)
	go func() {
		_, err := cl.Ingest(ctx, api.IngestRequest{Stream: "cam", Scene: "jackson", Segments: 32})
		holderDone <- err
	}()
	waitEndpointInFlight(t, cl, "ingest", 1)
	time.Sleep(50 * time.Millisecond)

	// Park a query in the gate, then vanish.
	qctx, cancel := context.WithCancel(ctx)
	aborted := make(chan error, 1)
	go func() {
		_, _, err := cl.Query(qctx, api.QueryRequest{Stream: "cam", Query: testQuery})
		aborted <- err
	}()
	waitEndpointInFlight(t, cl, "query", 1)
	time.Sleep(300 * time.Millisecond) // let the park time accumulate
	cancel()
	if err := <-aborted; !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted query returned %v", err)
	}
	if err := <-holderDone; err != nil {
		t.Fatalf("slot holder: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := cl.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		q := st.API["query"]
		if q.ClientAborts == 1 {
			if q.Requests != 1 || q.Errors != 0 || q.Rejections != 0 {
				t.Fatalf("abort misclassified: %+v", q)
			}
			// The ~300ms park must not appear in the latency summary:
			// no query was answered, so both are zero.
			if q.AvgMs != 0 || q.MaxMs != 0 {
				t.Fatalf("abort leaked into latency: %+v", q)
			}
			if st.Tenants["default"].Window.Aborted != 1 {
				t.Fatalf("tenant window = %+v, want 1 abort", st.Tenants["default"].Window)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("client abort never counted: %+v", q)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func waitEndpointInFlight(t *testing.T, cl *api.Client, endpoint string, n int64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := cl.Stats(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.API[endpoint].InFlight >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never reached %d in-flight", endpoint, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestQueryAccuracyValidation: a target accuracy outside [0, 1] is a 400,
// not a silently skewed cascade.
func TestQueryAccuracyValidation(t *testing.T) {
	srv, cl := startAPI(t, api.Limits{})
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := srv.Ingest(sc, "cam", 1); err != nil {
		t.Fatal(err)
	}
	for _, acc := range []float64{-0.5, 1.5} {
		_, _, err := cl.Query(context.Background(), api.QueryRequest{Stream: "cam", Query: testQuery, Accuracy: acc})
		se := new(api.StatusError)
		if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
			t.Fatalf("accuracy %v answered %v, want 400", acc, err)
		}
	}
	// An in-range accuracy still passes validation.
	if _, _, err := cl.Query(context.Background(), api.QueryRequest{Stream: "cam", Query: testQuery, Accuracy: 0.9}); err != nil {
		t.Fatalf("accuracy 0.9 rejected: %v", err)
	}
}

// TestPrometheusExposition: GET /metrics answers the text format with the
// per-tenant counters, the wait histogram, and the gate gauges.
func TestPrometheusExposition(t *testing.T) {
	srv, cl := startAPI(t, api.Limits{Tenants: twoTenantRegistry()})
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := srv.Ingest(sc, "cam", 1); err != nil {
		t.Fatal(err)
	}
	hot := api.NewClient(cl.BaseURL)
	hot.APIKey = "k-hot"
	if _, _, err := hot.Query(context.Background(), api.QueryRequest{Stream: "cam", Query: testQuery}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(cl.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics answered %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE vstore_tenant_requests_total counter",
		`vstore_tenant_requests_total{tenant="hot"} 1`,
		`vstore_tenant_ok_total{tenant="hot"} 1`,
		`vstore_tenant_requests_total{tenant="cold"} 0`,
		"# TYPE vstore_tenant_admission_wait_seconds histogram",
		`vstore_tenant_admission_wait_seconds_bucket{tenant="hot",le="+Inf"} 1`,
		"# TYPE vstore_gate_capacity gauge",
		`vstore_endpoint_requests_total{endpoint="query"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
