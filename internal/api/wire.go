// Wire types of the HTTP API: the JSON bodies both the server handlers
// and the Go client marshal. The query response is NDJSON — one QueryLine
// per line — so a long span starts flowing before it finishes decoding.

package api

import (
	"repro/internal/kvstore"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/sub"
	"repro/internal/tenant"
)

// QueryRequest is the body of POST /v1/query.
type QueryRequest struct {
	Stream string `json:"stream"`
	// Query names the cascade: "A" (Diff+S-NN+NN) or "B"
	// (Motion+License+OCR). Empty selects "A".
	Query string `json:"query,omitempty"`
	// Accuracy is the target operator accuracy; zero selects 0.9.
	Accuracy float64 `json:"accuracy,omitempty"`
	From     int     `json:"from"`
	// To is one past the last segment; zero selects the snapshot's full
	// committed range at admission time.
	To int `json:"to,omitempty"`
	// Chunk is how many segments each NDJSON line covers. Zero runs the
	// whole range as one chunk — the exact in-process Server.Query
	// execution, byte-identical results guaranteed. A positive chunk
	// streams incrementally: each chunk is executed independently against
	// the request's one pinned snapshot (stateful first-stage operators
	// reset at chunk boundaries, exactly as the in-process path resets
	// them at configuration-epoch boundaries).
	Chunk int `json:"chunk,omitempty"`
	// TimeoutMs bounds the query server-side; zero defers to the server's
	// configured default. The smaller of the two wins.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Snap, when set, runs the query against a snapshot lease previously
	// granted by POST /v1/snapshot instead of pinning a fresh one — how a
	// remote store (or the cluster router) issues several chunked reads
	// against one frozen view. The lease stays live after the query; its
	// owner releases it.
	Snap string `json:"snap,omitempty"`
}

// Detection is one operator detection on the wire.
type Detection struct {
	PTS   int     `json:"pts"`
	Label string  `json:"label"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
}

// QueryChunk is one executed chunk of a streamed query: segments
// [Seg0, Seg1) of the pinned snapshot.
type QueryChunk struct {
	Seg0           int         `json:"seg0"`
	Seg1           int         `json:"seg1"`
	Detections     []Detection `json:"detections"`
	FinalPTS       []int       `json:"final_pts"`
	VideoSeconds   float64     `json:"video_seconds"`
	VirtualSeconds float64     `json:"virtual_seconds"`
	Speed          float64     `json:"speed"`
}

// QuerySummary is the trailer line closing a successful query stream.
type QuerySummary struct {
	Chunks   int     `json:"chunks"`
	Segments int     `json:"segments"` // segments covered: to - from
	WallMs   float64 `json:"wall_ms"`
}

// QueryLine is one NDJSON line of a query response: exactly one field is
// set — a chunk, the final summary, or a mid-stream error (errors after
// the 200 header cannot change the status code, so they travel in-band).
type QueryLine struct {
	Chunk *QueryChunk   `json:"chunk,omitempty"`
	Done  *QuerySummary `json:"done,omitempty"`
	Error string        `json:"error,omitempty"`
}

// ChunkFromResult flattens an in-process QueryResult into the wire chunk
// covering [seg0, seg1) — per-epoch spans merged in order. Tests and the
// vbench artifact reuse it to prove the over-HTTP results byte-identical
// to the in-process path.
func ChunkFromResult(seg0, seg1 int, res server.QueryResult) QueryChunk {
	c := QueryChunk{Seg0: seg0, Seg1: seg1, Detections: []Detection{}, FinalPTS: []int{}}
	for _, r := range res.Results {
		for _, d := range r.Detections {
			c.Detections = append(c.Detections, Detection{PTS: d.PTS, Label: d.Label, X: d.X, Y: d.Y})
		}
		c.FinalPTS = append(c.FinalPTS, r.FinalPTS...)
		c.VideoSeconds += r.VideoSeconds
		c.VirtualSeconds += r.VirtualSeconds
	}
	c.Speed = res.Speed()
	return c
}

// SnapshotResponse is the body of POST /v1/snapshot: the granted lease ID
// and every stream's committed segment count at the pin. The lease pins
// the snapshot server-side until released (POST /v1/snapshot/release) or
// idle past the server's lease TTL; any operation naming it renews the
// clock.
type SnapshotResponse struct {
	ID      string         `json:"id"`
	Streams map[string]int `json:"streams"`
}

// SnapshotReleaseRequest is the body of POST /v1/snapshot/release.
type SnapshotReleaseRequest struct {
	ID string `json:"id"`
}

// SnapshotReleaseResponse reports whether the lease was live.
type SnapshotReleaseResponse struct {
	Found bool `json:"found"`
}

// WireRef is one committed segment replica on the wire: the storage-format
// key, whether the format stores raw frames, and the segment index.
type WireRef struct {
	SF  string `json:"sf"`
	Raw bool   `json:"raw,omitempty"`
	Idx int    `json:"idx"`
}

// RefsResponse is the body of GET /v1/refs: every committed replica of one
// stream in the leased snapshot, sorted by (format key, index).
type RefsResponse struct {
	Refs []WireRef `json:"refs"`
}

// CommitLine is one NDJSON line of GET /v1/commits: a segment commit,
// in commit order (Seq strictly increasing).
type CommitLine struct {
	Stream string `json:"stream"`
	Idx    int    `json:"idx"`
	Seq    int64  `json:"seq"`
}

// PullRequest is the body of POST /v1/pull: replicate the stream's
// committed segments from the peer node at Source onto this node. The pull
// is idempotent — segments whose replicas are all already committed here
// are skipped — which is how the cluster layer re-runs replication safely.
type PullRequest struct {
	Stream string `json:"stream"`
	Source string `json:"source"`
}

// PullResponse reports how many segments the pull adopted (already-present
// segments excluded).
type PullResponse struct {
	Segments int `json:"segments"`
}

// SubscribeRequest is the body of POST /v1/subscribe: register a standing
// query over one stream. The response is a long-lived chunked NDJSON
// stream of SubLine — an ack, then one chunk per committed segment.
type SubscribeRequest struct {
	Stream string `json:"stream"`
	// Query names the cascade, exactly as in QueryRequest.
	Query string `json:"query,omitempty"`
	// Accuracy is the target operator accuracy; zero selects 0.9.
	Accuracy float64 `json:"accuracy,omitempty"`
	// Buffer is the pending-commit queue depth decoupling this subscriber
	// from ingest; zero selects the hub default.
	Buffer int `json:"buffer,omitempty"`
	// Policy is the slow-consumer policy: "disconnect" (default — the
	// stream ends with an in-band error once the buffer overflows, so
	// what is delivered is always gap-free) or "drop" (overflowing
	// segments are skipped and counted; see SubLine.Dropped).
	Policy string `json:"policy,omitempty"`
	// Rules are optional alert predicates evaluated on every pushed chunk.
	Rules []RuleSpec `json:"rules,omitempty"`
}

// RuleSpec is one alert predicate: fire when detections matching Label
// across the last WindowSegments chunks reach MinCount; deliver to
// Webhook (buffered, bounded retry) when set.
type RuleSpec struct {
	Label          string `json:"label,omitempty"`
	MinCount       int    `json:"min_count"`
	WindowSegments int    `json:"window_segments,omitempty"`
	Webhook        string `json:"webhook,omitempty"`
}

// SubAck is the first line of a subscription stream.
type SubAck struct {
	ID     string `json:"id"`
	Stream string `json:"stream"`
}

// SubSummary is the trailer line of a cleanly ended subscription stream.
type SubSummary struct {
	Delivered int64 `json:"delivered"`
	Dropped   int64 `json:"dropped"`
	// Reason is why the stream ended: "unsubscribed" or "draining".
	// Abnormal ends (lag disconnect, evaluation failure) travel as an
	// in-band Error line instead.
	Reason string `json:"reason,omitempty"`
}

// SubLine is one NDJSON line of a subscription stream. Chunk lines carry
// Seq (the store's commit sequence, strictly increasing) and the
// cumulative Dropped count; the embedded chunk itself is byte-identical
// to the same span's chunk from a historical POST /v1/query.
type SubLine struct {
	Ack     *SubAck     `json:"ack,omitempty"`
	Seq     int64       `json:"seq,omitempty"`
	Dropped int64       `json:"dropped,omitempty"`
	Chunk   *QueryChunk `json:"chunk,omitempty"`
	Alert   *sub.Alert  `json:"alert,omitempty"`
	Done    *SubSummary `json:"done,omitempty"`
	Error   string      `json:"error,omitempty"`
}

// UnsubscribeRequest is the body of POST /v1/unsubscribe.
type UnsubscribeRequest struct {
	ID string `json:"id"`
}

// UnsubscribeResponse reports whether the subscription was live.
type UnsubscribeResponse struct {
	Found bool `json:"found"`
}

// SubsResponse is the body of GET /v1/subs: every live subscription's
// counters.
type SubsResponse struct {
	Active int         `json:"active"`
	Subs   []sub.Stats `json:"subs"`
}

// IngestRequest is the body of POST /v1/ingest: append Segments segments
// of the named scene to the stream (scene empty = the stream's name).
type IngestRequest struct {
	Stream   string `json:"stream"`
	Scene    string `json:"scene,omitempty"`
	Segments int    `json:"segments"`
}

// IngestResponse reports one batch ingest.
type IngestResponse struct {
	Segments   int     `json:"segments"`
	Bytes      int64   `json:"bytes"`
	CPUSeconds float64 `json:"cpu_seconds"`
	WallMs     float64 `json:"wall_ms"`
}

// ErodeRequest is the body of POST /v1/erode and /v1/demote: Today is the
// current day index driving the age function (segment age = today -
// segment's day).
type ErodeRequest struct {
	Today int `json:"today"`
}

// ErodeResponse reports one erosion pass.
type ErodeResponse struct {
	Eroded int `json:"eroded"`
}

// DemoteResponse reports one demotion pass.
type DemoteResponse struct {
	Demoted int `json:"demoted"`
}

// CompactResponse reports a compaction.
type CompactResponse struct {
	OK bool `json:"ok"`
}

// ScrubResponse reports one self-healing scrub pass (POST /v1/scrub): how
// many committed replicas were cross-checked, what damage was found, and
// what the pass did about it. Failed lists the replicas no surviving
// fallback ancestor could rebuild — the store stays degraded (see
// /healthz) until they are healed or eroded.
type ScrubResponse struct {
	Scanned  int      `json:"scanned"`
	Corrupt  int      `json:"corrupt"`
	Lost     int      `json:"lost"`
	Repaired int      `json:"repaired"`
	Skipped  int      `json:"skipped,omitempty"`
	Failed   []string `json:"failed,omitempty"`
}

// EndpointStats is one endpoint's admission and latency counters.
// Requests counts every arrival, drain-time 503s and unknown-key 401s
// included; AvgMs/MaxMs cover only answered requests (client aborts are
// counted apart and excluded, so a pile of slow disconnects cannot drag
// the latency summary).
type EndpointStats struct {
	Requests     int64   `json:"requests"`
	Rejections   int64   `json:"rejections"`              // 429s: fair-gate overflow or quota
	Errors       int64   `json:"errors"`                  // 5xx responses and mid-stream failures
	Unauthorized int64   `json:"unauthorized,omitempty"`  // 401s: unknown API key
	Unavailable  int64   `json:"unavailable,omitempty"`   // 503s answered while draining
	ClientAborts int64   `json:"client_aborts,omitempty"` // client vanished before a response
	InFlight     int64   `json:"in_flight"`
	AvgMs        float64 `json:"avg_ms"`
	MaxMs        float64 `json:"max_ms"`
}

// TenantStats is one tenant's /v1/stats entry: its fair-share weight, the
// trailing-60s traffic window, and its live admission-gate state.
type TenantStats struct {
	Weight int                    `json:"weight"`
	Window tenant.WindowStats     `json:"window"`
	Gate   tenant.GateTenantStats `json:"gate"`
}

// StatsResponse is the body of GET /v1/stats: the store's counters, the
// API layer's per-endpoint admission/latency counters, per-tenant
// windowed traffic, and the standing-query hub's per-subscription
// counters.
type StatsResponse struct {
	Store   kvstore.Stats            `json:"store"`
	API     map[string]EndpointStats `json:"api"`
	Tenants map[string]TenantStats   `json:"tenants,omitempty"`
	Subs    *sub.HubStats            `json:"subs,omitempty"`
	Leases  *store.LeaseStats        `json:"leases,omitempty"`
}

// StreamInfo is one stream's serving state.
type StreamInfo struct {
	Segments  int   `json:"segments"`
	Live      bool  `json:"live"` // a streaming-ingest pipeline is running
	Submitted int64 `json:"submitted,omitempty"`
	Ingested  int64 `json:"ingested,omitempty"`
	Failed    int64 `json:"failed,omitempty"`
	Queued    int   `json:"queued,omitempty"`
}

// StreamsResponse is the body of GET /v1/streams.
type StreamsResponse struct {
	Streams map[string]StreamInfo `json:"streams"`
}

// HealthResponse is the body of GET /healthz. Degraded means damaged
// replicas are awaiting repair or the last scrub could not heal everything:
// queries still answer (via fallback reconstruction) but redundancy is
// reduced, so orchestrators should surface it without killing the instance.
type HealthResponse struct {
	OK       bool `json:"ok"`
	Draining bool `json:"draining,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
}
