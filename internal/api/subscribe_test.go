package api_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/server"
)

// TestSubscribeHTTPLifecycle drives a standing query end to end over the
// wire: ack, one pushed chunk per committed segment — in commit order,
// byte-identical to the same span fetched with a historical query — stats
// surfacing, and a clean unsubscribe trailer.
func TestSubscribeHTTPLifecycle(t *testing.T) {
	srv, cl := startAPI(t, api.Limits{})
	// Cache off: a warm retrieval reports zero virtual retrieval cost, so
	// the historical comparison query would differ in the timing fields.
	srv.SetCacheBudget(0)
	ctx := context.Background()

	acks := make(chan api.SubAck, 1)
	var mu sync.Mutex
	var chunks []api.QueryChunk
	var seqs []int64
	type outcome struct {
		sum api.SubSummary
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		sum, err := cl.Subscribe(ctx, api.SubscribeRequest{Stream: "cam", Query: testQuery}, func(ev api.SubEvent) error {
			switch {
			case ev.Ack != nil:
				acks <- *ev.Ack
			case ev.Chunk != nil:
				mu.Lock()
				chunks = append(chunks, *ev.Chunk)
				seqs = append(seqs, ev.Seq)
				mu.Unlock()
				if ev.Dropped != 0 {
					return fmt.Errorf("push reports %d drops", ev.Dropped)
				}
			}
			return nil
		})
		done <- outcome{sum, err}
	}()
	var ack api.SubAck
	select {
	case ack = <-acks:
	case <-time.After(30 * time.Second):
		t.Fatal("no subscribe ack")
	}
	if ack.ID == "" || ack.Stream != "cam" {
		t.Fatalf("ack = %+v", ack)
	}

	// An unrelated stream's commits must not reach this subscriber; then
	// three segments on the subscribed stream arrive as three pushes.
	if _, err := cl.Ingest(ctx, api.IngestRequest{Stream: "other", Scene: "jackson", Segments: 1}); err != nil {
		t.Fatal(err)
	}
	const segments = 3
	if _, err := cl.Ingest(ctx, api.IngestRequest{Stream: "cam", Scene: "jackson", Segments: segments}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		mu.Lock()
		n := len(chunks)
		mu.Unlock()
		if n == segments {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d chunks, want %d", n, segments)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Live while subscribed: /v1/subs and /v1/stats both see it.
	subs, err := cl.Subs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if subs.Active != 1 || len(subs.Subs) != 1 || subs.Subs[0].ID != ack.ID ||
		subs.Subs[0].Stream != "cam" || subs.Subs[0].Delivered != segments {
		t.Fatalf("subs = %+v", subs)
	}
	stats, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Subs == nil || stats.Subs.Active != 1 || stats.Subs.Opened != 1 {
		t.Fatalf("stats.Subs = %+v", stats.Subs)
	}

	// Every pushed chunk is byte-identical to the same span fetched
	// post-hoc with a historical query, and arrived in commit order.
	for i, ch := range chunks {
		if ch.Seg0 != i || ch.Seg1 != i+1 {
			t.Fatalf("chunk %d covers [%d,%d)", i, ch.Seg0, ch.Seg1)
		}
		if i > 0 && seqs[i] <= seqs[i-1] {
			t.Fatalf("chunk %d seq %d after %d", i, seqs[i], seqs[i-1])
		}
		hist, _, err := cl.Query(ctx, api.QueryRequest{Stream: "cam", Query: testQuery, From: i, To: i + 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(hist) != 1 {
			t.Fatalf("historical query returned %d chunks", len(hist))
		}
		if got, want := mustMarshal(t, ch), mustMarshal(t, hist[0]); got != want {
			t.Fatalf("pushed chunk %d differs from historical query:\n got %s\nwant %s", i, got, want)
		}
	}

	found, err := cl.Unsubscribe(ctx, ack.ID)
	if err != nil || !found {
		t.Fatalf("unsubscribe = %v, %v", found, err)
	}
	out := <-done
	if out.err != nil {
		t.Fatalf("subscribe stream ended with %v", out.err)
	}
	if out.sum.Reason != "unsubscribed" || out.sum.Delivered != segments || out.sum.Dropped != 0 {
		t.Fatalf("summary = %+v", out.sum)
	}
	// The slot is gone: unknown IDs report not found.
	if found, err := cl.Unsubscribe(ctx, ack.ID); err != nil || found {
		t.Fatalf("double unsubscribe = %v, %v", found, err)
	}
}

// TestSubscribeHTTPDrain: a graceful server shutdown ends the standing
// connection with a "draining" trailer instead of a cut socket, and the
// drain completes promptly even though subscribe handlers never return on
// their own.
func TestSubscribeHTTPDrain(t *testing.T) {
	srv, err := server.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Reconfigure(testConfig(t)); err != nil {
		t.Fatal(err)
	}
	as := api.New(srv, api.Limits{})
	addr, err := as.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := api.NewClient("http://" + addr.String())

	acks := make(chan api.SubAck, 1)
	type outcome struct {
		sum api.SubSummary
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		sum, err := cl.Subscribe(context.Background(), api.SubscribeRequest{Stream: "cam", Query: testQuery}, func(ev api.SubEvent) error {
			if ev.Ack != nil {
				acks <- *ev.Ack
			}
			return nil
		})
		done <- outcome{sum, err}
	}()
	select {
	case <-acks:
	case <-time.After(30 * time.Second):
		t.Fatal("no subscribe ack")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := as.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with a live subscription: %v", err)
	}
	out := <-done
	if out.err != nil {
		t.Fatalf("drained subscription ended with %v", out.err)
	}
	if out.sum.Reason != "draining" {
		t.Fatalf("summary = %+v, want draining", out.sum)
	}
}

// TestSubscribeHTTPAdmission: subscriptions are admitted against the
// dedicated MaxSubscriptions budget — overflow answers 429 with a
// Retry-After hint — and malformed requests answer 400.
func TestSubscribeHTTPAdmission(t *testing.T) {
	_, cl := startAPI(t, api.Limits{MaxSubscriptions: 1})
	ctx := context.Background()

	acks := make(chan api.SubAck, 1)
	done := make(chan error, 1)
	go func() {
		_, err := cl.Subscribe(ctx, api.SubscribeRequest{Stream: "cam", Query: testQuery}, func(ev api.SubEvent) error {
			if ev.Ack != nil {
				acks <- *ev.Ack
			}
			return nil
		})
		done <- err
	}()
	var ack api.SubAck
	select {
	case ack = <-acks:
	case <-time.After(30 * time.Second):
		t.Fatal("no subscribe ack")
	}

	if _, err := cl.Subscribe(ctx, api.SubscribeRequest{Stream: "cam", Query: testQuery}, nil); !api.IsRejected(err) {
		t.Fatalf("over-limit subscribe: %v, want 429", err)
	}
	for _, bad := range []api.SubscribeRequest{
		{},                               // missing stream
		{Stream: "cam", Policy: "block"}, // unknown policy
		{Stream: "cam", Query: "nope"},   // unknown query
		{Stream: "cam", Query: testQuery, Rules: []api.RuleSpec{{MinCount: 1, Webhook: "ftp://x"}}}, // non-http webhook
		{Stream: "cam", Query: testQuery, Rules: []api.RuleSpec{{MinCount: 0}}},                     // threshold below 1
	} {
		_, err := cl.Subscribe(ctx, bad, nil)
		se, ok := err.(*api.StatusError)
		if !ok || se.Code != http.StatusBadRequest {
			t.Fatalf("subscribe %+v: %v, want 400", bad, err)
		}
	}

	if found, err := cl.Unsubscribe(ctx, ack.ID); err != nil || !found {
		t.Fatalf("unsubscribe = %v, %v", found, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("first subscription ended with %v", err)
	}
	// The freed budget admits again.
	if _, err := cl.Subscribe(ctx, api.SubscribeRequest{Stream: "cam", Query: testQuery}, func(ev api.SubEvent) error {
		if ev.Ack != nil {
			go cl.Unsubscribe(ctx, ev.Ack.ID)
		}
		return nil
	}); err != nil {
		t.Fatalf("subscribe after freed slot: %v", err)
	}
}

// TestStreamTypedErrors pins the client's abnormal-end taxonomy against
// fake servers: an in-band error line becomes a *StreamError carrying the
// server's message, a stream cut before its trailer becomes a truncation,
// and both are distinguishable from status and transport errors.
func TestStreamTypedErrors(t *testing.T) {
	ctx := context.Background()
	serve := func(body string) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/x-ndjson")
			fmt.Fprint(w, body)
		}))
	}

	ts := serve(`{"chunk":{"seg0":0,"seg1":1}}` + "\n" + `{"error":"stage blew up"}` + "\n")
	defer ts.Close()
	_, err := api.NewClient(ts.URL).QueryStream(ctx, api.QueryRequest{Stream: "cam"}, nil)
	if !api.IsStreamError(err) || api.IsTruncated(err) {
		t.Fatalf("in-band error: %v (stream=%v truncated=%v)", err, api.IsStreamError(err), api.IsTruncated(err))
	}
	se, ok := err.(*api.StreamError)
	if !ok || se.Msg != "stage blew up" {
		t.Fatalf("in-band error lost the server message: %v", err)
	}

	// A 200 stream that ends without its summary trailer — a killed server,
	// a dropped proxy — is a truncation, not a success with fewer chunks.
	ts2 := serve(`{"chunk":{"seg0":0,"seg1":1}}` + "\n")
	defer ts2.Close()
	n := 0
	_, err = api.NewClient(ts2.URL).QueryStream(ctx, api.QueryRequest{Stream: "cam"}, func(api.QueryChunk) error {
		n++
		return nil
	})
	if !api.IsTruncated(err) {
		t.Fatalf("truncated query stream: %v", err)
	}
	if n != 1 {
		t.Fatalf("delivered %d chunks before truncation", n)
	}

	// Same taxonomy on the subscription stream: ack then a cut connection.
	ts3 := serve(`{"ack":{"id":"s1","stream":"cam"}}` + "\n")
	defer ts3.Close()
	var sawAck bool
	_, err = api.NewClient(ts3.URL).Subscribe(ctx, api.SubscribeRequest{Stream: "cam"}, func(ev api.SubEvent) error {
		sawAck = ev.Ack != nil
		return nil
	})
	if !api.IsTruncated(err) || !sawAck {
		t.Fatalf("truncated subscribe stream: %v (ack=%v)", err, sawAck)
	}

	// And an in-band subscription error (the lag disconnect path).
	ts4 := serve(`{"ack":{"id":"s1","stream":"cam"}}` + "\n" + `{"error":"sub: subscriber lagged behind ingest"}` + "\n")
	defer ts4.Close()
	_, err = api.NewClient(ts4.URL).Subscribe(ctx, api.SubscribeRequest{Stream: "cam"}, nil)
	if !api.IsStreamError(err) || api.IsTruncated(err) {
		t.Fatalf("in-band subscribe error: %v", err)
	}

	// Status errors stay status errors.
	ts5 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer ts5.Close()
	_, err = api.NewClient(ts5.URL).QueryStream(ctx, api.QueryRequest{Stream: "cam"}, nil)
	if api.IsStreamError(err) {
		t.Fatalf("status error misclassified as stream error: %v", err)
	}
}
