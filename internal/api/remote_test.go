package api_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/format"
	"repro/internal/segment"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/vidsim"
)

// sfByKey maps a manifest ref's format key back to the storage format the
// test config derived — what the store.Snapshot read surface wants.
func sfByKey(t *testing.T, key string) format.StorageFormat {
	t.Helper()
	for _, d := range testConfig(t).Derivation.SFs {
		if d.SF.Key() == key {
			return d.SF
		}
	}
	t.Fatalf("no storage format with key %q in the test config", key)
	return format.StorageFormat{}
}

// TestRemoteStoreByteIdentity is the transport-fidelity contract of the
// store boundary: every read and evaluation through a RemoteStore is
// byte-identical to the same operation against the in-process store.
func TestRemoteStoreByteIdentity(t *testing.T) {
	srv, cl := startAPI(t, api.Limits{})
	srv.SetCacheBudget(0) // warm retrievals zero the virtual timing fields
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := srv.Ingest(sc, "cam", 3); err != nil {
		t.Fatal(err)
	}

	var local store.Store = srv
	remote := &api.RemoteStore{Client: cl}

	lsnap, err := local.Pin()
	if err != nil {
		t.Fatal(err)
	}
	defer lsnap.Release()
	rsnap, err := remote.Pin()
	if err != nil {
		t.Fatal(err)
	}
	defer rsnap.Release()

	if l, r := lsnap.Segments("cam"), rsnap.Segments("cam"); l != r || l != 3 {
		t.Fatalf("Segments: local %d remote %d, want 3", l, r)
	}
	if l, r := mustMarshal(t, local.StreamSegments()), mustMarshal(t, remote.StreamSegments()); l != r {
		t.Fatalf("StreamSegments: local %s remote %s", l, r)
	}

	// Every committed replica reads back identically through the wire.
	refs := mustServerSnapshot(t, srv).RefsOf("cam")
	if len(refs) == 0 {
		t.Fatal("no committed replicas to compare")
	}
	seenRaw, seenEnc := false, false
	for _, ref := range refs {
		sf := sfByKey(t, ref.SFKey)
		if l, r := mustMarshal(t, lsnap.Refs("cam", ref.SFKey)), mustMarshal(t, rsnap.Refs("cam", ref.SFKey)); l != r {
			t.Fatalf("%v: Refs: local %s remote %s", ref, l, r)
		}
		if !lsnap.Visible("cam", sf, ref.Idx) || !rsnap.Visible("cam", sf, ref.Idx) {
			t.Fatalf("%v: not visible on both sides", ref)
		}
		if ref.Raw {
			seenRaw = true
			for name, keep := range map[string]func(int) bool{
				"all":  nil,
				"even": func(pts int) bool { return pts%2 == 0 },
			} {
				lf, lb, err := lsnap.GetRaw("cam", sf, ref.Idx, keep)
				if err != nil {
					t.Fatalf("%v: local GetRaw(%s): %v", ref, name, err)
				}
				rf, rb, err := rsnap.GetRaw("cam", sf, ref.Idx, keep)
				if err != nil {
					t.Fatalf("%v: remote GetRaw(%s): %v", ref, name, err)
				}
				if lb != rb {
					t.Fatalf("%v: GetRaw(%s) bytes: local %d remote %d", ref, name, lb, rb)
				}
				if !bytes.Equal(segment.MarshalRawSegment(lf), segment.MarshalRawSegment(rf)) {
					t.Fatalf("%v: GetRaw(%s) frames differ", ref, name)
				}
			}
		} else {
			seenEnc = true
			le, err := lsnap.GetEncoded("cam", sf, ref.Idx)
			if err != nil {
				t.Fatalf("%v: local GetEncoded: %v", ref, err)
			}
			re, err := rsnap.GetEncoded("cam", sf, ref.Idx)
			if err != nil {
				t.Fatalf("%v: remote GetEncoded: %v", ref, err)
			}
			if !bytes.Equal(le.Marshal(), re.Marshal()) {
				t.Fatalf("%v: GetEncoded bytes differ", ref)
			}
		}
	}
	if !seenRaw || !seenEnc {
		t.Fatalf("comparison covered raw=%v encoded=%v; want both", seenRaw, seenEnc)
	}

	// A replica outside the snapshot is ErrNotFound on both sides.
	offSF := sfByKey(t, refs[0].SFKey)
	if _, err := lsnap.GetEncoded("cam", offSF, 99); !errors.Is(err, segment.ErrNotFound) {
		t.Fatalf("local out-of-snapshot read: %v", err)
	}
	if _, err := rsnap.GetEncoded("cam", offSF, 99); !errors.Is(err, segment.ErrNotFound) {
		t.Fatalf("remote out-of-snapshot read: %v", err)
	}

	// Evaluation through the boundary: same spans, same chunks, byte for
	// byte (the chunk flattening is shared, so wire-struct equality is
	// byte identity).
	for _, span := range [][2]int{{0, 3}, {1, 2}, {2, 2}} {
		req := store.Request{Stream: "cam", Query: testQuery, Seg0: span[0], Seg1: span[1]}
		lres, err := local.Evaluate(context.Background(), lsnap, req)
		if err != nil {
			t.Fatalf("local Evaluate%v: %v", span, err)
		}
		rres, err := remote.Evaluate(context.Background(), rsnap, req)
		if err != nil {
			t.Fatalf("remote Evaluate%v: %v", span, err)
		}
		lc := api.ChunkFromResult(span[0], span[1], lres)
		rc := api.ChunkFromResult(span[0], span[1], rres)
		if l, r := mustMarshal(t, lc), mustMarshal(t, rc); l != r {
			t.Fatalf("Evaluate%v:\nlocal  %s\nremote %s", span, l, r)
		}
	}
}

// mustServerSnapshot pins a concrete server snapshot (for ref
// enumeration) and releases it at test end.
func mustServerSnapshot(t *testing.T, srv *server.Server) *server.Snapshot {
	t.Helper()
	sn, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sn.Release() })
	return sn
}

// TestRemoteCommitStream: commits flow to a remote subscriber in order,
// and cancel tears the stream down.
func TestRemoteCommitStream(t *testing.T) {
	srv, cl := startAPI(t, api.Limits{})
	sc, _ := vidsim.DatasetByName("jackson")
	remote := &api.RemoteStore{Client: cl}

	got := make(chan segment.Commit, 16)
	cancel := remote.SubscribeCommits(func(c segment.Commit) { got <- c })
	defer cancel()
	// The subscription handshake is asynchronous; commits before the
	// server registers the hook would be missed, so wait for the stream to
	// be live by probing with one commit.
	deadline := time.After(10 * time.Second)
	if _, err := srv.Ingest(sc, "cam", 1); err != nil {
		t.Fatal(err)
	}
	var first segment.Commit
	for live := false; !live; {
		select {
		case first = <-got:
			live = true
		case <-time.After(100 * time.Millisecond):
			if _, err := srv.Ingest(sc, "cam", 1); err != nil {
				t.Fatal(err)
			}
		case <-deadline:
			t.Fatal("no commit ever reached the remote subscriber")
		}
	}
	if first.Stream != "cam" {
		t.Fatalf("commit for stream %q, want cam", first.Stream)
	}
	// In-order, strictly increasing sequence from here.
	if _, err := srv.Ingest(sc, "cam", 2); err != nil {
		t.Fatal(err)
	}
	prev := first
	for i := 0; i < 2; i++ {
		select {
		case c := <-got:
			if c.Seq <= prev.Seq || c.Idx <= prev.Idx {
				t.Fatalf("out-of-order commit %+v after %+v", c, prev)
			}
			prev = c
		case <-time.After(10 * time.Second):
			t.Fatal("commit stream stalled")
		}
	}
	cancel() // must not deadlock, and fn never runs again after return
}

// TestPullReplication: a follower pulls a stream from its owner and then
// answers the same queries byte-identically; re-pulling is a no-op.
func TestPullReplication(t *testing.T) {
	srvA, clA := startAPI(t, api.Limits{})
	srvB, clB := startAPI(t, api.Limits{})
	srvA.SetCacheBudget(0)
	srvB.SetCacheBudget(0)
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := srvA.Ingest(sc, "cam", 3); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	pulled, err := clB.Pull(ctx, api.PullRequest{Stream: "cam", Source: clA.BaseURL})
	if err != nil {
		t.Fatal(err)
	}
	if pulled.Segments != 3 {
		t.Fatalf("pull adopted %d segments, want 3", pulled.Segments)
	}
	again, err := clB.Pull(ctx, api.PullRequest{Stream: "cam", Source: clA.BaseURL})
	if err != nil {
		t.Fatal(err)
	}
	if again.Segments != 0 {
		t.Fatalf("re-pull adopted %d segments, want 0 (idempotent)", again.Segments)
	}

	// The replica serves the same results as the original.
	ca, _, err := clA.Query(ctx, api.QueryRequest{Stream: "cam", Query: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	cb, _, err := clB.Query(ctx, api.QueryRequest{Stream: "cam", Query: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	if l, r := mustMarshal(t, ca), mustMarshal(t, cb); l != r {
		t.Fatalf("replica answers differently:\nowner    %s\nfollower %s", l, r)
	}

	// The pull survives a reopen: the stream position was persisted.
	if n := srvB.StreamSegments()["cam"]; n != 3 {
		t.Fatalf("follower stream length %d, want 3", n)
	}
}

// TestDrainRetryAfter is the 503 regression: a draining server's refusals
// must carry the same Retry-After backoff hint a 429 does, and the client
// must surface it.
func TestDrainRetryAfter(t *testing.T) {
	srv, err := server.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Reconfigure(testConfig(t)); err != nil {
		t.Fatal(err)
	}
	as := api.New(srv, api.Limits{})
	hs := httptest.NewServer(as.Handler())
	defer hs.Close()
	// Shutdown of a handler-mounted server flips the drain flag and
	// returns; the handler keeps answering 503.
	ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelCtx()
	if err := as.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	cl := api.NewClient(hs.URL)
	_, _, err = cl.Query(context.Background(), api.QueryRequest{Stream: "cam"})
	if err == nil {
		t.Fatal("query during drain succeeded")
	}
	if !api.IsUnavailable(err) {
		t.Fatalf("drain refusal not classified unavailable: %v", err)
	}
	if api.IsRejected(err) {
		t.Fatalf("drain refusal misclassified as 429: %v", err)
	}
	hint, ok := api.RetryAfterHint(err)
	if !ok || hint < time.Second {
		t.Fatalf("drain refusal carries no usable Retry-After (hint=%v ok=%v): %v", hint, ok, err)
	}
}
