// Standing-query endpoints: POST /v1/subscribe holds a long-lived
// chunked-NDJSON connection pushing one chunk per committed segment of the
// subscribed stream, POST /v1/unsubscribe ends a subscription by ID, and
// GET /v1/subs lists the live ones. See internal/sub for the evaluation
// machinery; the handler here only translates pushes to wire lines.

package api

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"time"

	"repro/internal/sub"
)

// handleSubscribe registers a standing query and streams its pushes until
// the client disconnects, unsubscribes, lags out, or the server drains.
// Subscriptions are admitted against the dedicated MaxSubscriptions
// budget (429 on overflow), not the per-request gate: they are long-lived
// and must not starve one-shot queries of execution slots.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	var req SubscribeRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Stream == "" {
		http.Error(w, "missing stream", http.StatusBadRequest)
		return
	}
	policy, err := sub.ParsePolicy(req.Policy)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	rules := make([]sub.Rule, len(req.Rules))
	for i, rs := range req.Rules {
		if rs.Webhook != "" && !strings.HasPrefix(rs.Webhook, "http://") && !strings.HasPrefix(rs.Webhook, "https://") {
			http.Error(w, "rule webhook must be an http(s) URL", http.StatusBadRequest)
			return
		}
		rules[i] = sub.Rule{
			Label:          rs.Label,
			MinCount:       rs.MinCount,
			WindowSegments: rs.WindowSegments,
			Webhook:        rs.Webhook,
		}
	}

	sn, err := s.hub.Subscribe(sub.Request{
		Stream:   req.Stream,
		Query:    orDefault(req.Query, "A"),
		Accuracy: req.Accuracy,
		Buffer:   req.Buffer,
		Policy:   policy,
		Rules:    rules,
	})
	switch {
	case errors.Is(err, sub.ErrLimit):
		// The subscription budget has no load signal; hint the 1s floor
		// (the operator-pinned RetryAfter still overrides).
		s.reject(w, time.Second, "server saturated: subscription limit reached")
		return
	case errors.Is(err, sub.ErrClosed):
		http.Error(w, "server draining", http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Always detach on return: a vanished client must stop its evaluator
	// promptly, not when the hub next drains. Idempotent for the paths
	// that already ended the subscription.
	defer s.hub.Unsubscribe(sn.ID())

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	emit := func(line SubLine) {
		_ = enc.Encode(line)
		flush()
	}
	emit(SubLine{Ack: &SubAck{ID: sn.ID(), Stream: req.Stream}})

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			// Client gone; nothing left to write.
			return
		case p, ok := <-sn.Out():
			if !ok {
				st := sn.Stats()
				summary := SubSummary{Delivered: st.Delivered, Dropped: st.Dropped}
				switch endErr := sn.Err(); {
				case endErr == nil:
					summary.Reason = "unsubscribed"
					emit(SubLine{Done: &summary})
				case errors.Is(endErr, sub.ErrClosed):
					summary.Reason = "draining"
					emit(SubLine{Done: &summary})
				case errors.Is(endErr, sub.ErrLagged):
					// Client-caused: in-band error, but not a server error
					// for the metrics.
					emit(SubLine{Error: endErr.Error()})
				default:
					if cw, ok := w.(*countingWriter); ok {
						cw.midStreamErr = true
					}
					emit(SubLine{Error: endErr.Error()})
				}
				return
			}
			c := ChunkFromResult(p.Seg0, p.Seg1, p.Result)
			emit(SubLine{Seq: p.Seq, Dropped: p.Dropped, Chunk: &c})
			for i := range p.Alerts {
				emit(SubLine{Seq: p.Seq, Alert: &p.Alerts[i]})
			}
		}
	}
}

// handleUnsubscribe ends one subscription by ID; its connection receives
// the "unsubscribed" trailer.
func (s *Server) handleUnsubscribe(w http.ResponseWriter, r *http.Request) {
	var req UnsubscribeRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.ID == "" {
		http.Error(w, "missing id", http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, UnsubscribeResponse{Found: s.hub.Unsubscribe(req.ID)})
}

// handleSubs lists the live subscriptions with their counters.
func (s *Server) handleSubs(w http.ResponseWriter, r *http.Request) {
	st := s.hub.Stats()
	resp := SubsResponse{Active: st.Active, Subs: st.Subs}
	if resp.Subs == nil {
		resp.Subs = []sub.Stats{}
	}
	writeJSON(w, http.StatusOK, resp)
}
