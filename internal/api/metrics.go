// GET /metrics: Prometheus text exposition (format 0.0.4), written by
// hand against the stdlib — the repo takes no dependencies. Counters come
// from the tenants' cumulative totals and the per-endpoint counter sets;
// gauges from the gate's live snapshot; the admission-wait histogram from
// each tenant's cumulative power-of-two bucket counts.

package api

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"repro/internal/tenant"
)

// promEscape escapes a label value per the exposition format.
func promEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder

	head := func(name, typ, help string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	tenants := s.tenants.Tenants()

	// Per-tenant cumulative counters.
	type counter struct {
		name, help string
		value      func(tenant.Totals) float64
	}
	counters := []counter{
		{"vstore_tenant_requests_total", "Requests received, by tenant.",
			func(t tenant.Totals) float64 { return float64(t.Requests) }},
		{"vstore_tenant_ok_total", "Requests admitted and answered successfully, by tenant.",
			func(t tenant.Totals) float64 { return float64(t.OK) }},
		{"vstore_tenant_rejected_total", "Admission rejections (429): queue overflow or quota, by tenant.",
			func(t tenant.Totals) float64 { return float64(t.Rejected) }},
		{"vstore_tenant_client_aborts_total", "Requests whose client vanished before admission, by tenant.",
			func(t tenant.Totals) float64 { return float64(t.Aborted) }},
		{"vstore_tenant_errors_total", "Requests admitted but failed server-side, by tenant.",
			func(t tenant.Totals) float64 { return float64(t.Errors) }},
		{"vstore_tenant_bytes_total", "Bytes charged against the tenant: responses plus ingested segments.",
			func(t tenant.Totals) float64 { return float64(t.Bytes) }},
		{"vstore_tenant_latency_seconds_total", "Summed latency of answered requests, by tenant.",
			func(t tenant.Totals) float64 { return float64(t.LatencyNs) / 1e9 }},
	}
	for _, c := range counters {
		head(c.name, "counter", c.help)
		for _, tn := range tenants {
			fmt.Fprintf(&b, "%s{tenant=%q} %g\n", c.name, promEscape(tn.Name()), c.value(tn.Totals()))
		}
	}

	// Admission-wait histogram, per tenant: cumulative le-buckets over the
	// shared power-of-two bounds, in seconds.
	head("vstore_tenant_admission_wait_seconds", "histogram",
		"Time admitted requests waited in the fair gate, by tenant.")
	for _, tn := range tenants {
		name := promEscape(tn.Name())
		hist := tn.WaitHist()
		var cum int64
		for i, bound := range tenant.WaitBucketBoundsMs {
			cum += hist[i]
			fmt.Fprintf(&b, "vstore_tenant_admission_wait_seconds_bucket{tenant=%q,le=%q} %d\n",
				name, fmt.Sprintf("%g", bound/1000), cum)
		}
		cum += hist[len(hist)-1]
		fmt.Fprintf(&b, "vstore_tenant_admission_wait_seconds_bucket{tenant=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(&b, "vstore_tenant_admission_wait_seconds_sum{tenant=%q} %g\n",
			name, float64(tn.Totals().WaitNs)/1e9)
		fmt.Fprintf(&b, "vstore_tenant_admission_wait_seconds_count{tenant=%q} %d\n", name, cum)
	}

	// Live gate state.
	gateStats, inFlight, queued := s.gate.Snapshot()
	head("vstore_gate_in_flight", "gauge", "Requests holding an execution slot, by tenant.")
	for _, tn := range tenants {
		fmt.Fprintf(&b, "vstore_gate_in_flight{tenant=%q} %d\n", promEscape(tn.Name()), gateStats[tn.Name()].InFlight)
	}
	head("vstore_gate_queued", "gauge", "Requests parked in the fair gate, by tenant.")
	for _, tn := range tenants {
		fmt.Fprintf(&b, "vstore_gate_queued{tenant=%q} %d\n", promEscape(tn.Name()), gateStats[tn.Name()].Queued)
	}
	head("vstore_gate_capacity", "gauge", "Gate-wide concurrent execution slots.")
	fmt.Fprintf(&b, "vstore_gate_capacity %d\n", s.gate.Capacity())
	head("vstore_gate_total_in_flight", "gauge", "Execution slots currently held, all tenants.")
	fmt.Fprintf(&b, "vstore_gate_total_in_flight %d\n", inFlight)
	head("vstore_gate_total_queued", "gauge", "Requests currently parked, all tenants.")
	fmt.Fprintf(&b, "vstore_gate_total_queued %d\n", queued)

	// Self-healing: corruption found on the read path, degraded fallback
	// serves, and the repair machinery's progress.
	st := s.store.Stats()
	head("vstore_corrupt_reads_total", "counter", "Reads whose CRC failure survived a re-read.")
	fmt.Fprintf(&b, "vstore_corrupt_reads_total %d\n", st.CorruptReads)
	head("vstore_transient_reads_total", "counter", "CRC failures that cleared on re-read (read-path corruption).")
	fmt.Fprintf(&b, "vstore_transient_reads_total %d\n", st.TransientReads)
	head("vstore_degraded_serves_total", "counter", "Queries answered from a fallback replica.")
	fmt.Fprintf(&b, "vstore_degraded_serves_total %d\n", st.DegradedServes)
	head("vstore_repairs_total", "counter", "Damaged replicas re-derived successfully.")
	fmt.Fprintf(&b, "vstore_repairs_total %d\n", st.Repairs)
	head("vstore_repairs_failed_total", "counter", "Repair attempts that could not complete.")
	fmt.Fprintf(&b, "vstore_repairs_failed_total %d\n", st.RepairsFailed)
	head("vstore_scrub_passes_total", "counter", "Self-healing scrub passes completed.")
	fmt.Fprintf(&b, "vstore_scrub_passes_total %d\n", st.ScrubPasses)
	head("vstore_repair_pending", "gauge", "Damaged replicas queued for background repair.")
	fmt.Fprintf(&b, "vstore_repair_pending %d\n", st.RepairPending)

	// Per-endpoint counters (ordered for a stable exposition).
	names := make([]string, 0, len(s.metrics))
	for name := range s.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	type epCounter struct {
		name, help string
		value      func(EndpointStats) float64
	}
	epCounters := []epCounter{
		{"vstore_endpoint_requests_total", "Requests received, by endpoint.",
			func(st EndpointStats) float64 { return float64(st.Requests) }},
		{"vstore_endpoint_rejections_total", "429 responses, by endpoint.",
			func(st EndpointStats) float64 { return float64(st.Rejections) }},
		{"vstore_endpoint_errors_total", "5xx responses and mid-stream failures, by endpoint.",
			func(st EndpointStats) float64 { return float64(st.Errors) }},
		{"vstore_endpoint_unauthorized_total", "401 responses to unknown API keys, by endpoint.",
			func(st EndpointStats) float64 { return float64(st.Unauthorized) }},
		{"vstore_endpoint_unavailable_total", "503 responses while draining, by endpoint.",
			func(st EndpointStats) float64 { return float64(st.Unavailable) }},
		{"vstore_endpoint_client_aborts_total", "Requests whose client vanished, by endpoint.",
			func(st EndpointStats) float64 { return float64(st.ClientAborts) }},
	}
	for _, c := range epCounters {
		head(c.name, "counter", c.help)
		for _, name := range names {
			fmt.Fprintf(&b, "%s{endpoint=%q} %g\n", c.name, name, c.value(s.metrics[name].stats()))
		}
	}

	w.Header().Set("Content-Length", fmt.Sprint(b.Len()))
	_, _ = w.Write([]byte(b.String()))
}
