// Peer endpoints: the wire surface a remote store implementation
// (RemoteStore) and the cluster router drive. A peer pins a snapshot
// through a TTL lease, enumerates and fetches segment replicas through
// it, runs leased queries, follows the commit stream, and replicates
// whole streams with idempotent pulls. Everything here transports the
// internal/store boundary — nothing reaches past what a local caller of
// store.Store could do.

package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/segment"
	"repro/internal/server"
)

// handleSnapshot pins a snapshot and grants a lease on it. The table owns
// the pin from here: it releases on POST /v1/snapshot/release, on idle
// expiry past the lease TTL, or at shutdown.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap, err := s.store.Snapshot()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	id := s.leases.Grant(snap)
	writeJSON(w, http.StatusOK, SnapshotResponse{ID: id, Streams: snap.StreamSegments()})
}

func (s *Server) handleSnapshotRelease(w http.ResponseWriter, r *http.Request) {
	var req SnapshotReleaseRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.ID == "" {
		http.Error(w, "missing lease id", http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotReleaseResponse{Found: s.leases.Release(req.ID)})
}

// leasedSnapshot resolves the snap query parameter to the leased server
// snapshot, renewing its TTL. A false return means the response is
// written.
func (s *Server) leasedSnapshot(w http.ResponseWriter, id string) (*server.Snapshot, bool) {
	if id == "" {
		http.Error(w, "missing snap lease id", http.StatusBadRequest)
		return nil, false
	}
	leased, ok := s.leases.Get(id)
	if !ok {
		http.Error(w, "unknown snapshot lease", http.StatusNotFound)
		return nil, false
	}
	sn, ok := leased.(*server.Snapshot)
	if !ok {
		http.Error(w, "snapshot lease is not readable here", http.StatusInternalServerError)
		return nil, false
	}
	return sn, true
}

// handleRefs enumerates one stream's committed replicas in the leased
// snapshot, optionally filtered to one storage format.
func (s *Server) handleRefs(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	stream := q.Get("stream")
	if stream == "" {
		http.Error(w, "missing stream", http.StatusBadRequest)
		return
	}
	sn, ok := s.leasedSnapshot(w, q.Get("snap"))
	if !ok {
		return
	}
	sf := q.Get("sf")
	resp := RefsResponse{Refs: []WireRef{}}
	for _, ref := range sn.RefsOf(stream) {
		if sf != "" && ref.SFKey != sf {
			continue
		}
		resp.Refs = append(resp.Refs, WireRef{SF: ref.SFKey, Raw: ref.Raw, Idx: ref.Idx})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSegment serves one replica's bytes through a leased snapshot:
// codec container bytes for encoded formats, the raw-segment wire framing
// for raw ones. Replicas outside the snapshot's committed set are 404;
// inside it the bytes stay readable even if erosion removed the segment
// after the pin — that is what the lease pins.
func (s *Server) handleSegment(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	stream, sf := q.Get("stream"), q.Get("sf")
	if stream == "" || sf == "" {
		http.Error(w, "missing stream or sf", http.StatusBadRequest)
		return
	}
	idx, err := strconv.Atoi(q.Get("idx"))
	if err != nil || idx < 0 {
		http.Error(w, "bad segment index", http.StatusBadRequest)
		return
	}
	raw := false
	if v := q.Get("raw"); v != "" {
		if raw, err = strconv.ParseBool(v); err != nil {
			http.Error(w, "bad raw flag", http.StatusBadRequest)
			return
		}
	}
	sn, ok := s.leasedSnapshot(w, q.Get("snap"))
	if !ok {
		return
	}
	ref := segment.Ref{Stream: stream, SFKey: sf, Raw: raw, Idx: idx}
	var body []byte
	if raw {
		frames, _, err := sn.GetRawRef(ref)
		if err == nil {
			body = segment.MarshalRawSegment(frames)
		} else if errors.Is(err, segment.ErrNotFound) {
			http.Error(w, "segment not in snapshot", http.StatusNotFound)
			return
		} else {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	} else {
		enc, err := sn.GetEncodedRef(ref)
		if errors.Is(err, segment.ErrNotFound) {
			http.Error(w, "segment not in snapshot", http.StatusNotFound)
			return
		} else if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		body = enc.Marshal()
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
}

// handleCommits streams segment commits as NDJSON from this point on, in
// commit order, until the client disconnects or the server drains. The
// commit hook hands off to a bounded buffer; a subscriber too slow to
// drain it is disconnected with an in-band error (delivery is gap-free or
// over, never silently gappy) — the remote hub resubscribes and resyncs
// from a fresh snapshot.
func (s *Server) handleCommits(w http.ResponseWriter, r *http.Request) {
	ch := make(chan segment.Commit, 1024)
	overflow := make(chan struct{})
	var once sync.Once
	cancel := s.store.SubscribeCommits(func(c segment.Commit) {
		select {
		case ch <- c:
		default:
			once.Do(func() { close(overflow) })
		}
	})
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	flush() // the header reaches the client before the first commit
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.drainCtx.Done():
			return
		case <-overflow:
			if cw, ok := w.(*countingWriter); ok {
				cw.midStreamErr = true
			}
			_ = enc.Encode(QueryLine{Error: "commit stream lagged: buffer overflow"})
			flush()
			return
		case c := <-ch:
			if enc.Encode(CommitLine{Stream: c.Stream, Idx: c.Idx, Seq: c.Seq}) != nil {
				return
			}
			flush()
		}
	}
}

// handlePull replicates one stream from a peer node onto this one: pin a
// snapshot on the source, walk its committed replicas, fetch and adopt the
// segments this node is missing. Admitted through the fair gate — a pull
// is ingest-weight work. Idempotent by construction (AdoptSegment skips
// fully-committed segments), so the cluster layer re-runs it freely.
func (s *Server) handlePull(w http.ResponseWriter, r *http.Request) {
	var req PullRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Stream == "" || req.Source == "" {
		http.Error(w, "missing stream or source", http.StatusBadRequest)
		return
	}
	release, ok := s.acquire(r.Context(), w, r)
	if !ok {
		return
	}
	defer release()
	n, err := s.pullStream(r.Context(), req.Stream, req.Source, apiKey(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	writeJSON(w, http.StatusOK, PullResponse{Segments: n})
}

// pullStream does the pull: one source-side snapshot lease covers every
// fetch, so the adopted segments are a consistent prefix of the source's
// history even while the source keeps ingesting.
func (s *Server) pullStream(ctx context.Context, stream, source, key string) (int, error) {
	src := &Client{BaseURL: source, APIKey: key}
	lease, err := src.PinSnapshot(ctx)
	if err != nil {
		return 0, err
	}
	defer func() {
		rctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, _ = src.ReleaseSnapshot(rctx, lease.ID)
	}()
	refs, err := src.Refs(ctx, lease.ID, stream, "")
	if err != nil {
		return 0, err
	}

	local, err := s.store.Snapshot()
	if err != nil {
		return 0, err
	}
	have := map[segment.Ref]bool{}
	for _, ref := range local.RefsOf(stream) {
		have[ref] = true
	}
	_ = local.Release()

	byIdx := map[int][]WireRef{}
	for _, wr := range refs {
		byIdx[wr.Idx] = append(byIdx[wr.Idx], wr)
	}
	idxs := make([]int, 0, len(byIdx))
	for idx := range byIdx {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)

	adopted := 0
	for _, idx := range idxs {
		missing := false
		for _, wr := range byIdx[idx] {
			if !have[segment.Ref{Stream: stream, SFKey: wr.SF, Raw: wr.Raw, Idx: idx}] {
				missing = true
				break
			}
		}
		if !missing {
			continue
		}
		replicas := make([]server.AdoptedReplica, 0, len(byIdx[idx]))
		for _, wr := range byIdx[idx] {
			if wr.Raw {
				frames, err := src.SegmentRaw(ctx, lease.ID, stream, wr.SF, idx)
				if err != nil {
					return adopted, err
				}
				replicas = append(replicas, server.AdoptedReplica{SFKey: wr.SF, Raw: true, Frames: frames})
			} else {
				enc, err := src.SegmentEncoded(ctx, lease.ID, stream, wr.SF, idx)
				if err != nil {
					return adopted, err
				}
				replicas = append(replicas, server.AdoptedReplica{SFKey: wr.SF, Enc: enc})
			}
		}
		if err := s.store.AdoptSegment(stream, idx, replicas); err != nil {
			return adopted, err
		}
		adopted++
	}
	return adopted, nil
}
