// Package api is the store's network surface: a stdlib net/http server
// exposing the full serving lifecycle — streamed NDJSON queries pinned to
// a snapshot, batch ingest, lifecycle passes (erode/demote/compact) and
// statistics — with the production hygiene a store "serving heavy traffic
// from millions of users" (ROADMAP) needs from day one:
//
//   - multi-tenant admission control: requests resolve to a tenant by API
//     key (keyless requests land on the "default" tenant, so single-tenant
//     deployments need no configuration) and are admitted through
//     internal/tenant's weighted-fair gate — per-tenant bounded queues
//     drained in proportion to each tenant's weight, so one hot tenant
//     saturating the server cannot starve the others, which the previous
//     global FIFO gate allowed. At most MaxInFlight requests execute on
//     the shared pool at once; a tenant overflowing its own queue or
//     exhausting its rate/byte quota is answered 429 with a load-derived
//     Retry-After;
//   - cancellation: every request's context threads through query
//     execution (Server.Query's contract), so a disconnected client stops
//     consuming the pool between per-segment batches;
//   - graceful drain: Shutdown stops accepting (503s are still counted),
//     lets in-flight requests finish (their snapshots release on return),
//     then cancels stragglers past the deadline;
//   - observability: per-endpoint request/rejection/abort/error/in-flight
//     and latency counters plus per-tenant trailing-60s windows in
//     /v1/stats, and a dependency-free Prometheus text exposition at
//     GET /metrics.
//
// Endpoints (all JSON; query responses are NDJSON):
//
//	POST /v1/query    run a cascade, results streamed chunk-by-chunk
//	POST /v1/ingest   append segments of a scene to a stream
//	GET  /v1/stats    store + API + per-tenant counters
//	GET  /v1/streams  known streams and live-pipeline state
//	POST /v1/erode    one erosion pass over every stream
//	POST /v1/demote   one fast→cold demotion pass
//	POST /v1/compact  compact every shard of both tiers
//	GET  /metrics     Prometheus text exposition (served during drain)
//	GET  /healthz     liveness (reports draining during shutdown)
//
// Peer endpoints (what a remote store implementation and the cluster
// router drive; see internal/store for the boundary they transport):
//
//	POST /v1/snapshot          pin a snapshot, returning a TTL lease
//	POST /v1/snapshot/release  release a snapshot lease
//	GET  /v1/refs              a leased snapshot's committed replicas
//	GET  /v1/segment           one replica's bytes through a lease
//	GET  /v1/commits           NDJSON stream of segment commits
//	POST /v1/pull              replicate a stream from a peer node
//
// Authentication: clients present an API key via the X-API-Key header (or
// Authorization: Bearer). Keys map to tenants through tenant.Registry;
// an unknown key is answered 401. No key at all selects the default
// tenant — exactly the pre-multi-tenant behavior.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/query"
	"repro/internal/server"
	storepkg "repro/internal/store"
	"repro/internal/sub"
	"repro/internal/tenant"
	"repro/internal/vidsim"
)

// Limits are the admission-control and timeout knobs. The zero value
// selects working defaults.
type Limits struct {
	// MaxInFlight bounds admitted requests executing concurrently on the
	// shared pool (queries and ingests alike). Zero selects
	// 2×GOMAXPROCS; negative means 1.
	MaxInFlight int
	// MaxQueue bounds each tenant's requests waiting for an execution
	// slot; one more and that tenant is answered 429 (a tenant's quota
	// can override its own bound). Zero selects MaxInFlight; negative
	// means no waiting room (immediate 429 when saturated).
	MaxQueue int
	// Tenants resolves API keys to tenants and their quotas. Nil selects
	// a registry with just the unlimited "default" tenant — the
	// single-tenant deployment.
	Tenants *tenant.Registry
	// QueryTimeout caps each query server-side. Zero means no cap; a
	// request's timeout_ms can only tighten it.
	QueryTimeout time.Duration
	// RetryAfter, when set, overrides the load-derived Retry-After hint
	// sent with 429 responses. Zero lets the gate derive the hint from
	// its measured slot-hold time and backlog.
	RetryAfter time.Duration
	// MaxSubscriptions bounds concurrently active standing queries
	// (POST /v1/subscribe); overflow is answered 429. Subscriptions are
	// long-lived, so they are admitted against this dedicated budget, not
	// the per-request gate. Zero selects the hub default; negative
	// disables subscriptions.
	MaxSubscriptions int
	// Webhook tunes rule-alert delivery (queue depth, retry budget,
	// backoff). The zero value selects the hub defaults.
	Webhook sub.WebhookOptions
	// SnapshotLeaseTTL bounds how long an untouched snapshot lease
	// (POST /v1/snapshot) pins its snapshot before expiring — the guard
	// against a remote peer pinning erosion's deletes forever. Zero
	// selects store.DefaultLeaseTTL.
	SnapshotLeaseTTL time.Duration
}

func (l Limits) withDefaults() Limits {
	if l.MaxInFlight == 0 {
		l.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if l.MaxInFlight < 1 {
		l.MaxInFlight = 1
	}
	if l.MaxQueue == 0 {
		l.MaxQueue = l.MaxInFlight
	}
	if l.MaxQueue < 0 {
		l.MaxQueue = 0
	}
	return l
}

// endpointMetrics is one endpoint's counter set (see EndpointStats).
type endpointMetrics struct {
	requests     atomic.Int64
	rejections   atomic.Int64
	errors       atomic.Int64
	unauthorized atomic.Int64
	unavailable  atomic.Int64
	clientAborts atomic.Int64
	inFlight     atomic.Int64
	observed     atomic.Int64 // requests included in the latency sums
	latencyNs    atomic.Int64
	maxNs        atomic.Int64
}

func (m *endpointMetrics) observe(d time.Duration) {
	ns := d.Nanoseconds()
	m.observed.Add(1)
	m.latencyNs.Add(ns)
	for {
		cur := m.maxNs.Load()
		if ns <= cur || m.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

func (m *endpointMetrics) stats() EndpointStats {
	st := EndpointStats{
		Requests:     m.requests.Load(),
		Rejections:   m.rejections.Load(),
		Errors:       m.errors.Load(),
		Unauthorized: m.unauthorized.Load(),
		Unavailable:  m.unavailable.Load(),
		ClientAborts: m.clientAborts.Load(),
		InFlight:     m.inFlight.Load(),
		MaxMs:        float64(m.maxNs.Load()) / 1e6,
	}
	if n := m.observed.Load(); n > 0 {
		st.AvgMs = float64(m.latencyNs.Load()) / float64(n) / 1e6
	}
	return st
}

// Server serves one store over HTTP. Create with New, start with Start (or
// mount Handler yourself), stop with Shutdown. The underlying
// server.Server's lifecycle stays the caller's: Shutdown drains HTTP
// traffic; closing the store (which stops daemons and live streams) comes
// after.
type Server struct {
	store   *server.Server
	lim     Limits
	gate    *tenant.Gate
	tenants *tenant.Registry
	// retryAfterSet: the operator pinned Limits.RetryAfter, which then
	// overrides the gate's load-derived hint on every 429.
	retryAfterSet bool
	hub           *sub.Hub
	leases        *storepkg.Leases
	mux           *http.ServeMux
	metrics       map[string]*endpointMetrics

	baseCtx    context.Context
	cancelBase context.CancelFunc
	// drainCtx ends when Shutdown begins — before the HTTP server's own
	// drain — so long-lived streams with no natural end (GET /v1/commits)
	// return promptly instead of holding the drain to its deadline.
	drainCtx    context.Context
	cancelDrain context.CancelFunc
	draining    atomic.Bool

	httpSrv  *http.Server
	lis      net.Listener
	serveErr chan error
}

// New wraps the store in an HTTP API server with the given limits.
func New(store *server.Server, lim Limits) *Server {
	s := &Server{
		store:         store,
		lim:           lim.withDefaults(),
		retryAfterSet: lim.RetryAfter > 0,
		mux:           http.NewServeMux(),
		metrics:       map[string]*endpointMetrics{},
	}
	s.tenants = s.lim.Tenants
	if s.tenants == nil {
		s.tenants = tenant.NewRegistry(nil, nil)
	}
	s.gate = tenant.NewGate(s.lim.MaxInFlight, s.lim.MaxQueue)
	s.hub = sub.NewHub(store, sub.HubOptions{
		MaxSubscriptions: s.lim.MaxSubscriptions,
		Webhook:          s.lim.Webhook,
	})
	s.leases = storepkg.NewLeases(s.lim.SnapshotLeaseTTL)
	s.baseCtx, s.cancelBase = context.WithCancel(context.Background())
	s.drainCtx, s.cancelDrain = context.WithCancel(context.Background())
	s.route("query", "POST /v1/query", s.handleQuery)
	s.route("ingest", "POST /v1/ingest", s.handleIngest)
	s.route("subscribe", "POST /v1/subscribe", s.handleSubscribe)
	s.route("unsubscribe", "POST /v1/unsubscribe", s.handleUnsubscribe)
	s.route("subs", "GET /v1/subs", s.handleSubs)
	s.route("stats", "GET /v1/stats", s.handleStats)
	s.route("streams", "GET /v1/streams", s.handleStreams)
	s.route("erode", "POST /v1/erode", s.handleErode)
	s.route("demote", "POST /v1/demote", s.handleDemote)
	s.route("compact", "POST /v1/compact", s.handleCompact)
	s.route("scrub", "POST /v1/scrub", s.handleScrub)
	s.route("snapshot", "POST /v1/snapshot", s.handleSnapshot)
	s.route("snapshot_release", "POST /v1/snapshot/release", s.handleSnapshotRelease)
	s.route("refs", "GET /v1/refs", s.handleRefs)
	s.route("segment", "GET /v1/segment", s.handleSegment)
	s.route("commits", "GET /v1/commits", s.handleCommits)
	s.route("pull", "POST /v1/pull", s.handlePull)
	s.route("metrics", "GET /metrics", s.handleMetrics)
	s.route("healthz", "GET /healthz", s.handleHealthz)
	return s
}

// tenantKey carries the request's resolved *tenant.Tenant in its context.
type tenantKey struct{}

func tenantFrom(ctx context.Context) *tenant.Tenant {
	t, _ := ctx.Value(tenantKey{}).(*tenant.Tenant)
	return t
}

// apiKey extracts the client's API key: the X-API-Key header, else an
// Authorization: Bearer token. Empty means the keyless default tenant.
func apiKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if auth := r.Header.Get("Authorization"); auth != "" {
		if k, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(k)
		}
	}
	return ""
}

// route mounts one instrumented endpoint: request/in-flight/latency
// accounting, the 503 drain gate, API-key → tenant resolution, and
// outcome classification by status code. Every arrival is counted —
// drain-time 503s included, which the pre-multi-tenant wrapper silently
// dropped by returning before the request counter.
func (s *Server) route(name, pattern string, fn http.HandlerFunc) {
	m := &endpointMetrics{}
	s.metrics[name] = m
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		m.requests.Add(1)
		// healthz must answer during drain (it reports the drain) and
		// metrics must stay scrapable while the server winds down.
		if s.draining.Load() && name != "healthz" && name != "metrics" {
			m.unavailable.Add(1)
			// A drain is transient — the replacement instance (or the
			// restarted one) is seconds away — so the 503 carries the same
			// backoff hint a 429 does instead of leaving clients to guess.
			w.Header().Set("Retry-After", "1")
			http.Error(w, "server draining", http.StatusServiceUnavailable)
			return
		}
		tn, err := s.tenants.Resolve(apiKey(r))
		if err != nil {
			m.unauthorized.Add(1)
			http.Error(w, "unknown API key", http.StatusUnauthorized)
			return
		}
		m.inFlight.Add(1)
		t0 := time.Now()
		cw := &countingWriter{ResponseWriter: w, status: http.StatusOK}
		// Deferred, not sequential: a panicking handler (recovered by
		// net/http per connection) must not leak an in-flight count or
		// skip its accounting.
		defer func() {
			m.inFlight.Add(-1)
			d := time.Since(t0)
			switch {
			case cw.status == http.StatusTooManyRequests:
				m.rejections.Add(1)
				tn.Observe(tenant.OutcomeRejected, d, 0, cw.bytes)
			case !cw.wrote && r.Context().Err() != nil:
				// The handler wrote nothing and the request context is
				// dead: the client vanished (mid-body, or while parked in
				// the admission gate). Not a 200, not an error — counted
				// apart and excluded from the latency summaries, which
				// a pile of slow aborts used to drag around.
				m.clientAborts.Add(1)
				tn.Observe(tenant.OutcomeAborted, d, cw.gateWait, cw.bytes)
			case cw.status >= 500 || cw.midStreamErr:
				m.errors.Add(1)
				m.observe(d)
				tn.Observe(tenant.OutcomeError, d, cw.gateWait, cw.bytes)
			default:
				m.observe(d)
				tn.Observe(tenant.OutcomeOK, d, cw.gateWait, cw.bytes)
			}
			tn.ChargeBytes(cw.bytes + cw.ingestBytes)
		}()
		fn(cw, r.WithContext(context.WithValue(r.Context(), tenantKey{}, tn)))
	})
}

// countingWriter captures the response status, whether anything was
// written at all (distinguishing client aborts from empty 200s), the
// response byte count for tenant byte quotas, and mid-stream query
// failures, which arrive after the 200 header.
type countingWriter struct {
	http.ResponseWriter
	status       int
	wrote        bool
	bytes        int64
	ingestBytes  int64         // segment bytes an ingest stored, charged like traffic
	gateWait     time.Duration // admission-gate wait, for per-tenant wait stats
	midStreamErr bool
}

func (w *countingWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer so NDJSON lines reach the
// client as they are produced.
func (w *countingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Handler returns the routed, instrumented handler — for mounting under a
// caller-owned http.Server or a test mux. Requests served this way do not
// observe Shutdown's context cancellation (they still observe the drain
// flag); prefer Start for the full lifecycle.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr ("host:port"; ":0" picks a free port) and serves
// in the background until Shutdown. It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.lis = lis
	s.httpSrv = &http.Server{
		Handler:           s.mux,
		BaseContext:       func(net.Listener) context.Context { return s.baseCtx },
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.serveErr = make(chan error, 1)
	go func() { s.serveErr <- s.httpSrv.Serve(lis) }()
	return lis.Addr(), nil
}

// Shutdown drains the server gracefully: new requests are refused (503,
// and the listener closes), standing subscriptions finish their in-flight
// push and close with a "draining" trailer, and in-flight requests —
// queries mid-stream included — run to completion and release their
// snapshots. If ctx expires first, the remaining requests' contexts are
// canceled, which Server.Query observes between segment batches, and the
// connections are closed. Safe to call once; the store itself is closed
// by the caller afterwards.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Commit streams never return on their own either; ending drainCtx
	// lets each /v1/commits handler write nothing further and return.
	s.cancelDrain()
	// Subscriptions never return on their own, so the hub must close
	// before httpSrv.Shutdown can drain: each subscribe handler sees its
	// push channel close, writes its trailer line, and returns.
	s.hub.Close()
	if s.httpSrv == nil {
		s.cancelBase()
		s.leases.ReleaseAll()
		return nil
	}
	err := s.httpSrv.Shutdown(ctx)
	// Cancel the base context either way: on clean drain every request
	// has returned and this is a no-op; on deadline it aborts stragglers
	// so their pool work stops promptly.
	s.cancelBase()
	if err != nil {
		_ = s.httpSrv.Close()
	}
	if serveErr := <-s.serveErr; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	// No remote pin outlives the server: whatever leases peers abandoned
	// release here, before the caller closes the store.
	s.leases.ReleaseAll()
	return err
}

// writeJSON writes one JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// readJSON decodes the request body into v, answering 400 on malformed
// input. An empty body decodes to the zero value.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil && !errors.Is(err, io.EOF) {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// reject answers the 429, hinting when to retry: the operator-pinned
// Limits.RetryAfter when set, else the load-derived hint the gate or
// quota computed. Clamped to >= 1s — a sub-second hint would round to
// "Retry-After: 0" and clients would hammer the already-saturated server.
func (s *Server) reject(w http.ResponseWriter, hint time.Duration, msg string) {
	if s.retryAfterSet {
		hint = s.lim.RetryAfter
	}
	secs := int(hint.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, msg, http.StatusTooManyRequests)
}

// acquire admits one request: the tenant's rate/byte quotas first, then
// the weighted-fair gate. ctx bounds the gate wait (it may carry the
// query timeout, tighter than r.Context()). ok=false means the response
// is already written (429, or 503 for a server-side deadline); a
// vanished client gets nothing and is classified as an abort by the
// route wrapper.
func (s *Server) acquire(ctx context.Context, w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	tn := tenantFrom(r.Context())
	if allowed, retry := tn.AllowRequest(); !allowed {
		s.reject(w, retry, "tenant quota exhausted: rate or byte budget spent")
		return nil, false
	}
	release, wait, err := s.gate.Acquire(ctx, tn)
	if cw, isCW := w.(*countingWriter); isCW {
		cw.gateWait = wait
	}
	switch rej := (*tenant.Rejection)(nil); {
	case err == nil:
		return release, true
	case errors.As(err, &rej):
		// The tenant's own queue overflowed. Body kept verbatim from the
		// single-tenant gate for existing clients.
		s.reject(w, rej.RetryAfter, "server saturated: in-flight and queue limits reached")
	case r.Context().Err() == nil:
		// A server-side deadline (query timeout) ended the wait while the
		// client is still connected: an error status, not an empty 200.
		http.Error(w, "timed out waiting for an execution slot", http.StatusServiceUnavailable)
	}
	return nil, false
}

// handleQuery streams one query as NDJSON. The request is admitted
// through the gate (429 on overflow), pinned to one snapshot for its
// whole life, and executed chunk-by-chunk so results flow before the full
// span finishes decoding. Client disconnection or timeout cancels the
// execution between per-segment batches.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Stream == "" {
		http.Error(w, "missing stream", http.StatusBadRequest)
		return
	}
	cascade, names, err := query.ByName(orDefault(req.Query, "A"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.From < 0 || (req.To != 0 && req.To < req.From) || req.Chunk < 0 {
		http.Error(w, "invalid segment range", http.StatusBadRequest)
		return
	}
	// A target accuracy outside [0, 1] is meaningless to the optimizer;
	// it used to slip through and skew cascade selection silently.
	if req.Accuracy < 0 || req.Accuracy > 1 {
		http.Error(w, "accuracy must be within [0, 1]", http.StatusBadRequest)
		return
	}
	acc := req.Accuracy
	if acc == 0 {
		acc = 0.9
	}

	ctx := r.Context()
	timeout := s.lim.QueryTimeout
	if req.TimeoutMs > 0 {
		if d := time.Duration(req.TimeoutMs) * time.Millisecond; timeout == 0 || d < timeout {
			timeout = d
		}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	release, ok := s.acquire(ctx, w, r)
	if !ok {
		return
	}
	defer release()

	var snap *server.Snapshot
	if req.Snap != "" {
		// The query runs against a leased snapshot: same frozen view as
		// every other read through the lease, and the lease's owner — not
		// this request — releases the pin.
		leased, ok := s.leases.Get(req.Snap)
		if !ok {
			http.Error(w, "unknown snapshot lease", http.StatusNotFound)
			return
		}
		snap, ok = leased.(*server.Snapshot)
		if !ok {
			http.Error(w, "snapshot lease is not queryable here", http.StatusInternalServerError)
			return
		}
	} else {
		pinned, err := s.store.Snapshot()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		defer pinned.Release()
		snap = pinned
	}
	from, to := req.From, req.To
	if to == 0 {
		to = snap.Segments(req.Stream)
	}
	if from > to {
		from = to
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	emit := func(line QueryLine) {
		_ = enc.Encode(line)
		flush()
	}

	step := req.Chunk
	if step <= 0 {
		step = to - from
	}
	t0 := time.Now()
	chunks := 0
	for lo := from; lo < to; lo += step {
		hi := min(lo+step, to)
		res, err := s.store.QueryAt(ctx, snap, req.Stream, cascade, names, acc, lo, hi)
		if err != nil {
			// Client-driven terminations (disconnect, timeout) are not
			// server errors.
			if cw, ok := w.(*countingWriter); ok &&
				!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				cw.midStreamErr = true
			}
			emit(QueryLine{Error: err.Error()})
			return
		}
		c := ChunkFromResult(lo, hi, res)
		emit(QueryLine{Chunk: &c})
		chunks++
	}
	emit(QueryLine{Done: &QuerySummary{
		Chunks:   chunks,
		Segments: to - from,
		WallMs:   float64(time.Since(t0).Nanoseconds()) / 1e6,
	}})
}

// handleIngest appends segments of a scene to a stream — the batch
// counterpart of a live pipeline, sharing the query gate so mixed
// query/ingest load is admitted against one in-flight budget.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Stream == "" {
		http.Error(w, "missing stream", http.StatusBadRequest)
		return
	}
	if req.Segments <= 0 {
		http.Error(w, "segments must be positive", http.StatusBadRequest)
		return
	}
	sc, err := vidsim.DatasetByName(orDefault(req.Scene, req.Stream))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	release, ok := s.acquire(r.Context(), w, r)
	if !ok {
		return
	}
	defer release()
	t0 := time.Now()
	st, err := s.store.Ingest(sc, req.Stream, req.Segments)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := IngestResponse{
		Segments:   st.Segments,
		CPUSeconds: st.CPUSeconds,
		WallMs:     float64(time.Since(t0).Nanoseconds()) / 1e6,
	}
	for _, one := range st.PerSF {
		resp.Bytes += one.Bytes
	}
	// Stored segment bytes count against the tenant's byte quota just
	// like response traffic.
	if cw, isCW := w.(*countingWriter); isCW {
		cw.ingestBytes = resp.Bytes
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		Store:   s.store.Stats(),
		API:     map[string]EndpointStats{},
		Tenants: map[string]TenantStats{},
	}
	for name, m := range s.metrics {
		resp.API[name] = m.stats()
	}
	gateStats, _, _ := s.gate.Snapshot()
	for _, tn := range s.tenants.Tenants() {
		resp.Tenants[tn.Name()] = TenantStats{
			Weight: tn.Weight(),
			Window: tn.WindowStats(),
			Gate:   gateStats[tn.Name()],
		}
	}
	hs := s.hub.Stats()
	resp.Subs = &hs
	ls := s.leases.Stats()
	resp.Leases = &ls
	writeJSON(w, http.StatusOK, resp)
}

// Metrics returns a snapshot of the per-endpoint counters, keyed by
// endpoint name — the counters /v1/stats serves, reachable even while
// the server drains (when /v1/stats itself answers 503).
func (s *Server) Metrics() map[string]EndpointStats {
	out := make(map[string]EndpointStats, len(s.metrics))
	for name, m := range s.metrics {
		out[name] = m.stats()
	}
	return out
}

func (s *Server) handleStreams(w http.ResponseWriter, r *http.Request) {
	live := s.store.LiveStreams()
	resp := StreamsResponse{Streams: map[string]StreamInfo{}}
	for name, n := range s.store.StreamSegments() {
		info := StreamInfo{Segments: n}
		if ls, ok := live[name]; ok {
			info.Live = true
			info.Submitted, info.Ingested, info.Failed, info.Queued =
				ls.Submitted, ls.Ingested, ls.Failed, ls.Queued
		}
		resp.Streams[name] = info
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleErode(w http.ResponseWriter, r *http.Request) {
	var req ErodeRequest
	if !readJSON(w, r, &req) {
		return
	}
	n, err := s.store.ErodePass(server.AgeByToday(func() int { return req.Today }))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, ErodeResponse{Eroded: n})
}

func (s *Server) handleDemote(w http.ResponseWriter, r *http.Request) {
	var req ErodeRequest
	if !readJSON(w, r, &req) {
		return
	}
	n, err := s.store.DemotePass(server.AgeByToday(func() int { return req.Today }))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, DemoteResponse{Demoted: n})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if err := s.store.Compact(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, CompactResponse{OK: true})
}

// handleScrub runs one self-healing scrub pass: every record checksum
// verified, the manifest cross-checked for lost replicas, damage re-derived
// from fallback ancestors. The pass runs even when some replicas cannot be
// healed — the response reports them — so only the verification walk itself
// failing is a 500.
func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	rep, err := s.store.ScrubPass()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := ScrubResponse{
		Scanned:  rep.Scanned,
		Corrupt:  len(rep.Corrupt),
		Lost:     len(rep.Lost),
		Repaired: len(rep.Repaired),
		Skipped:  len(rep.Skipped),
	}
	for _, f := range rep.Failed {
		resp.Failed = append(resp.Failed, fmt.Sprintf("%s/%s/%d: %v", f.Ref.Stream, f.Ref.SFKey, f.Ref.Idx, f.Err))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		OK:       true,
		Draining: s.draining.Load(),
		Degraded: s.store.Degraded(),
	})
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
