// RemoteStore: the store boundary (internal/store) implemented over the
// HTTP wire. Everything the engine packages do against an in-process
// Server — pin a snapshot, enumerate and read segments, evaluate a
// cascade, follow commits — works identically against a peer node through
// this type, and yields byte-identical results: reads carry the same
// bytes (the codec container and raw-segment framings are lossless), and
// evaluation runs server-side under the same leased snapshot the reads
// use.

package api

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/codec"
	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/ops"
	"repro/internal/query"
	"repro/internal/segment"
	"repro/internal/store"
)

// RemoteStore implements store.Store against one peer node.
type RemoteStore struct {
	Client *Client
}

var _ store.Store = (*RemoteStore)(nil)

// Pin pins a snapshot on the peer and wraps its lease. The returned
// snapshot is released here (or by the peer's lease TTL if this process
// vanishes).
func (r *RemoteStore) Pin() (store.Snapshot, error) {
	resp, err := r.Client.PinSnapshot(context.Background())
	if err != nil {
		return nil, err
	}
	return &remoteSnapshot{
		c:    r.Client,
		id:   resp.ID,
		lens: resp.Streams,
		refs: map[string]map[int]bool{},
	}, nil
}

// Evaluate runs the cascade on the peer under the snapshot's lease —
// execution happens where the bytes live — and reassembles the wire chunk
// into a store.Result. The peer's handler resolves defaults exactly as
// the local Evaluate does.
func (r *RemoteStore) Evaluate(ctx context.Context, snap store.Snapshot, req store.Request) (store.Result, error) {
	sn, ok := snap.(*remoteSnapshot)
	if !ok {
		return store.Result{}, fmt.Errorf("api: snapshot %T was not pinned by this store", snap)
	}
	if req.Seg1 <= req.Seg0 {
		// An empty range evaluates to an empty result locally; remotely a
		// zero To would select the full committed range instead.
		return store.Result{}, nil
	}
	chunks, _, err := r.Client.Query(ctx, QueryRequest{
		Stream:   req.Stream,
		Query:    req.Query,
		Accuracy: req.Accuracy,
		From:     req.Seg0,
		To:       req.Seg1,
		Snap:     sn.id,
	})
	if err != nil {
		return store.Result{}, err
	}
	var res store.Result
	for _, c := range chunks {
		qr := query.Result{
			FinalPTS:       append([]int{}, c.FinalPTS...),
			VideoSeconds:   c.VideoSeconds,
			VirtualSeconds: c.VirtualSeconds,
		}
		for _, d := range c.Detections {
			qr.Detections = append(qr.Detections, ops.Detection{PTS: d.PTS, Label: d.Label, X: d.X, Y: d.Y})
		}
		res.Results = append(res.Results, qr)
	}
	return res, nil
}

// SubscribeCommits follows the peer's commit stream in a goroutine. The
// returned cancel tears the stream down and waits for the last fn call to
// finish, preserving the local contract that fn never runs after cancel
// returns. The stream is best-effort across reconnects: if it lags past
// the peer's buffer or the peer drains, delivery simply stops (standing
// consumers resync from a fresh snapshot, as the hub's catch-up already
// does for local gaps).
func (r *RemoteStore) SubscribeCommits(fn func(segment.Commit)) (cancel func()) {
	ctx, stop := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = r.Client.Commits(ctx, func(cl CommitLine) error {
			fn(segment.Commit{Stream: cl.Stream, Idx: cl.Idx, Seq: cl.Seq})
			return nil
		})
	}()
	return func() {
		stop()
		<-done
	}
}

// StreamSegments reports every stream's committed length on the peer now
// (not under any snapshot).
func (r *RemoteStore) StreamSegments() map[string]int {
	streams, err := r.Client.Streams(context.Background())
	if err != nil {
		return map[string]int{}
	}
	out := make(map[string]int, len(streams))
	for name, info := range streams {
		out[name] = info.Segments
	}
	return out
}

// remoteSnapshot is one peer-side snapshot lease. Committed-replica sets
// are fetched lazily per (stream, format) and cached — the snapshot is
// immutable by contract, so a set fetched once holds for the lease's
// life.
type remoteSnapshot struct {
	c    *Client
	id   string
	lens map[string]int

	mu   sync.Mutex
	refs map[string]map[int]bool // stream+"\x00"+sfKey → committed index set

	releaseOnce sync.Once
	releaseErr  error
}

var _ store.Snapshot = (*remoteSnapshot)(nil)

func (sn *remoteSnapshot) Segments(stream string) int { return sn.lens[stream] }

func (sn *remoteSnapshot) refSet(stream, sfKey string) (map[int]bool, error) {
	key := stream + "\x00" + sfKey
	sn.mu.Lock()
	set, ok := sn.refs[key]
	sn.mu.Unlock()
	if ok {
		return set, nil
	}
	wrs, err := sn.c.Refs(context.Background(), sn.id, stream, sfKey)
	if err != nil {
		return nil, err
	}
	set = make(map[int]bool, len(wrs))
	for _, wr := range wrs {
		set[wr.Idx] = true
	}
	sn.mu.Lock()
	sn.refs[key] = set
	sn.mu.Unlock()
	return set, nil
}

func (sn *remoteSnapshot) Refs(stream, sfKey string) []int {
	set, err := sn.refSet(stream, sfKey)
	if err != nil {
		return nil
	}
	idxs := make([]int, 0, len(set))
	for idx := range set {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	return idxs
}

func (sn *remoteSnapshot) Visible(stream string, sf format.StorageFormat, idx int) bool {
	set, err := sn.refSet(stream, sf.Key())
	return err == nil && set[idx]
}

func (sn *remoteSnapshot) GetEncoded(stream string, sf format.StorageFormat, idx int) (*codec.Encoded, error) {
	set, err := sn.refSet(stream, sf.Key())
	if err != nil {
		return nil, err
	}
	if !set[idx] {
		return nil, segment.ErrNotFound
	}
	return sn.c.SegmentEncoded(context.Background(), sn.id, stream, sf.Key(), idx)
}

// GetRaw fetches the whole raw replica and filters locally — the keep
// predicate is a closure and cannot cross the wire. Byte accounting
// matches the local reader exactly: each kept frame costs its stored
// record length (8-byte header + planes).
func (sn *remoteSnapshot) GetRaw(stream string, sf format.StorageFormat, idx int, keep func(pts int) bool) ([]*frame.Frame, int64, error) {
	set, err := sn.refSet(stream, sf.Key())
	if err != nil {
		return nil, 0, err
	}
	if !set[idx] {
		return nil, 0, segment.ErrNotFound
	}
	frames, err := sn.c.SegmentRaw(context.Background(), sn.id, stream, sf.Key(), idx)
	if err != nil {
		return nil, 0, err
	}
	var kept []*frame.Frame
	var bytes int64
	for _, f := range frames {
		if keep != nil && !keep(f.PTS) {
			continue
		}
		kept = append(kept, f)
		bytes += int64(8 + f.Bytes())
	}
	return kept, bytes, nil
}

// Release releases the peer-side lease. Idempotent; a lease the peer
// already expired releases as a no-op.
func (sn *remoteSnapshot) Release() error {
	sn.releaseOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_, sn.releaseErr = sn.c.ReleaseSnapshot(ctx, sn.id)
	})
	return sn.releaseErr
}
