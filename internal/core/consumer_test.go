package core

import (
	"testing"

	"repro/internal/format"
	"repro/internal/ops"
)

// TestBoundarySearchMatchesExhaustive: on monotone profiles (O1/O2), the
// staircase walk must find a choice exactly as fast as the exhaustive
// optimum, for many random surfaces and targets.
func TestBoundarySearchMatchesExhaustive(t *testing.T) {
	targets := []float64{0.95, 0.9, 0.8, 0.7, 0.5}
	for seed := int64(0); seed < 30; seed++ {
		fp := newFakeProfiler(seed)
		for _, target := range targets {
			c := Consumer{Op: ops.Diff{}, Target: target, Prof: fp}
			got := deriveOne(c)
			want := DeriveConsumptionExhaustive(c)
			if got.Profile.Speed != want.Profile.Speed {
				t.Fatalf("seed %d target %.2f: boundary speed %.2f != exhaustive %.2f (fid %v vs %v)",
					seed, target, got.Profile.Speed, want.Profile.Speed, got.CF.Fidelity, want.CF.Fidelity)
			}
			if got.Profile.Accuracy < target && want.Profile.Accuracy >= target {
				t.Fatalf("seed %d target %.2f: boundary missed an adequate option", seed, target)
			}
		}
	}
}

// TestBoundarySearchRunBound: the search must profile O((Ns+Nr)·Nc + Nq)
// cells per consumer, far below exhaustive |F|.
func TestBoundarySearchRunBound(t *testing.T) {
	fp := newFakeProfiler(7)
	c := Consumer{Op: ops.Diff{}, Target: 0.8, Prof: fp}
	deriveOne(c)
	bound := (len(format.Samplings)+len(format.Resolutions))*len(format.Crops) + len(format.Qualities)
	if fp.RunCount > bound {
		t.Fatalf("search used %d profiling runs, bound is %d", fp.RunCount, bound)
	}
	if exhaustive := len(format.FidelitySpace()); fp.RunCount*5 > exhaustive {
		t.Fatalf("search used %d runs; expected well below |F|=%d", fp.RunCount, exhaustive)
	}
}

// TestDerivedChoiceIsAdequate: whatever the surface, the chosen CF meets the
// target accuracy whenever any option does.
func TestDerivedChoiceIsAdequate(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		fp := newFakeProfiler(seed)
		c := Consumer{Op: ops.Motion{}, Target: 0.85, Prof: fp}
		got := deriveOne(c)
		if got.Profile.Accuracy < 0.85 {
			// Acceptable only if even the richest fidelity is inadequate —
			// impossible here since accuracy(max) = 1 for these surfaces.
			if fp.accuracy(format.MaxFidelity()) >= 0.85 {
				t.Fatalf("seed %d: chose inadequate %v (%.3f)", seed, got.CF.Fidelity, got.Profile.Accuracy)
			}
		}
	}
}

// TestQualityLoweringOnlyLowersQuality: the final quality pass must keep the
// spatial/temporal knobs of the speed-optimal choice.
func TestQualityLoweringOnlyLowersQuality(t *testing.T) {
	fp := newFakeProfiler(3)
	c := Consumer{Op: ops.Color{}, Target: 0.6, Prof: fp}
	got := deriveOne(c)
	cNoQ := Consumer{Op: ops.Color{}, Target: 0.6, Prof: newFakeProfiler(3)}
	// Re-run the search body manually at best quality to find f'0.
	best := DeriveConsumptionExhaustive(cNoQ)
	if got.CF.Fidelity.Res != best.CF.Fidelity.Res && got.Profile.Speed != best.Profile.Speed {
		t.Fatalf("quality pass changed the speed-optimal core choice: %v vs %v", got.CF.Fidelity, best.CF.Fidelity)
	}
	if got.CF.Fidelity.Quality > best.CF.Fidelity.Quality {
		t.Fatalf("quality pass raised quality: %v", got.CF.Fidelity)
	}
}

func TestUniqueCFs(t *testing.T) {
	fp := newFakeProfiler(1)
	mk := func(res format.Resolution) ConsumptionChoice {
		fid := format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: res, Sampling: format.Sampling{Num: 1, Den: 1}}
		return ConsumptionChoice{
			Consumer: Consumer{Op: ops.Diff{}, Target: 0.9, Prof: fp},
			CF:       format.ConsumptionFormat{Fidelity: fid},
		}
	}
	choices := []ConsumptionChoice{mk(720), mk(180), mk(720), mk(360)}
	cfs, idx := UniqueCFs(choices)
	if len(cfs) != 3 {
		t.Fatalf("unique CFs = %d, want 3", len(cfs))
	}
	if idx[0] != idx[2] || idx[0] == idx[1] {
		t.Fatalf("index mapping wrong: %v", idx)
	}
}

// TestRealProfilerDerivation exercises the search against the real profiler
// on a short clip: the choice must be adequate and much faster than the
// full-fidelity baseline.
func TestRealProfilerDerivation(t *testing.T) {
	p := newRealProfiler(t, "jackson")
	c := Consumer{Op: ops.Motion{}, Target: 0.8, Prof: p}
	got := deriveOne(c)
	if got.Profile.Accuracy < 0.8 {
		t.Fatalf("derived %v with accuracy %.3f < 0.8", got.CF.Fidelity, got.Profile.Accuracy)
	}
	full := p.ProfileConsumption(ops.Motion{}, format.MaxFidelity())
	if got.Profile.Speed < 2*full.Speed {
		t.Fatalf("derived speed %.0fx not meaningfully above full fidelity %.0fx", got.Profile.Speed, full.Speed)
	}
}
