package core

import (
	"errors"
	"fmt"
	"math"
)

// ErosionOptions configures age-based data erosion planning (§4.4).
type ErosionOptions struct {
	// Profiler supplies retrieval speeds for fallback formats.
	Profiler StorageProfiler
	// LifespanDays is the retention period of ingested video.
	LifespanDays int
	// StorageBudgetBytes caps the total footprint of one stream over its
	// whole lifespan. Zero means unlimited (no erosion, k=0).
	StorageBudgetBytes int64
	// KMax bounds the decay-factor binary search.
	KMax float64
	// Tolerance is the relative precision of the binary search on k.
	Tolerance float64
}

// ErosionPlan is the derived plan: for each age (day) and storage format,
// the cumulative fraction of segments deleted.
type ErosionPlan struct {
	K            float64
	PMin         float64
	Parent       []int       // fallback tree: Parent[i] is the richer format; -1 for the golden root
	DeletedFrac  [][]float64 // [age-1][sfIndex] cumulative deleted fraction
	OverallSpeed []float64   // [age-1] overall relative speed after erosion
	TotalBytes   int64       // lifespan footprint under the plan
}

// relSpeedParams precomputes per-consumer speeds along its fallback chain.
type relSpeedParams struct {
	sub   int       // consumer's SF index
	chain []int     // sub, parent(sub), ..., golden
	speed []float64 // effective speed on each chain element (× realtime)
}

// PlanErosion derives the erosion plan for a storage derivation: the
// fallback tree over storage formats, per-age deletion fractions chosen by a
// max-min fair planner, and the smallest decay factor k whose power-law
// speed targets bring the lifespan storage under budget.
func PlanErosion(d *StorageDerivation, opt ErosionOptions) (*ErosionPlan, error) {
	if opt.Profiler == nil {
		return nil, errors.New("core: ErosionOptions.Profiler is required")
	}
	if opt.LifespanDays <= 0 {
		return nil, errors.New("core: lifespan must be positive")
	}
	if opt.KMax <= 0 {
		opt.KMax = 64
	}
	if opt.Tolerance <= 0 {
		opt.Tolerance = 1.0 / 128
	}
	parent := fallbackTree(d)
	params := consumerChains(d, parent, opt.Profiler)
	pmin := overallSpeed(d, params, allDeleted(d))

	build := func(k float64) *ErosionPlan {
		plan := &ErosionPlan{K: k, PMin: pmin, Parent: parent}
		frac := make([]float64, len(d.SFs))
		var total int64
		bytesPerDay := func(fr []float64) int64 {
			var b float64
			for i, sf := range d.SFs {
				b += sf.Prof.BytesPerSec * 86400 * (1 - fr[i])
			}
			return int64(b)
		}
		for age := 1; age <= opt.LifespanDays; age++ {
			target := (1-pmin)*math.Pow(float64(age), -k) + pmin
			erodeToTarget(d, params, frac, target)
			fcopy := append([]float64(nil), frac...)
			plan.DeletedFrac = append(plan.DeletedFrac, fcopy)
			speed := overallSpeed(d, params, frac)
			plan.OverallSpeed = append(plan.OverallSpeed, speed)
			total += bytesPerDay(frac)
		}
		plan.TotalBytes = total
		return plan
	}

	flat := build(0)
	if opt.StorageBudgetBytes <= 0 || flat.TotalBytes <= opt.StorageBudgetBytes {
		return flat, nil // no decay needed (the k=0 flat line of Fig 13a)
	}
	// Higher k always stores less; binary search the smallest sufficient k.
	if p := build(opt.KMax); p.TotalBytes > opt.StorageBudgetBytes {
		return nil, fmt.Errorf("core: storage budget %d infeasible: even k=%.0f needs %d bytes",
			opt.StorageBudgetBytes, opt.KMax, p.TotalBytes)
	}
	lo, hi := 0.0, opt.KMax
	for hi-lo > opt.Tolerance {
		mid := (lo + hi) / 2
		if build(mid).TotalBytes <= opt.StorageBudgetBytes {
			hi = mid
		} else {
			lo = mid
		}
	}
	return build(hi), nil
}

// FallbackTree returns the fallback parents over the derived storage
// formats: FallbackTree()[i] is the index of the least-rich format with
// richer-or-equal fidelity, -1 for the golden root. Erosion planning
// walks it to price fallback reads; the repair layer walks the same tree
// upward to find the nearest richer surviving ancestor a damaged or lost
// replica of SF i can be re-derived from.
func (d *StorageDerivation) FallbackTree() []int { return fallbackTree(d) }

// fallbackTree picks each format's parent: the cheapest-to-store format with
// strictly richer-or-equal fidelity, the golden format as the universal
// root (§4.4: consumers fall back to richer ancestors).
func fallbackTree(d *StorageDerivation) []int {
	parent := make([]int, len(d.SFs))
	for i := range d.SFs {
		if i == d.Golden {
			parent[i] = -1
			continue
		}
		best := d.Golden
		for j := range d.SFs {
			if j == i || j == d.Golden {
				continue
			}
			if !d.SFs[j].SF.Fidelity.RicherEq(d.SFs[i].SF.Fidelity) {
				continue
			}
			// Prefer the least-rich eligible parent so fallback stays cheap.
			if d.SFs[best].SF.Fidelity.RicherEq(d.SFs[j].SF.Fidelity) {
				best = j
			}
		}
		parent[i] = best
	}
	// Guard against cycles between equal-fidelity formats: break ties by
	// index ordering toward the golden root.
	for i := range parent {
		seen := map[int]bool{}
		j := i
		for j >= 0 && !seen[j] {
			seen[j] = true
			j = parent[j]
		}
		if j >= 0 { // cycle: re-root this node at golden
			parent[i] = d.Golden
		}
	}
	return parent
}

// consumerChains precomputes each consumer's fallback chain and effective
// speed on every chain element: min(consumption speed, retrieval speed of
// the element for the consumer's sampling).
func consumerChains(d *StorageDerivation, parent []int, p StorageProfiler) []relSpeedParams {
	out := make([]relSpeedParams, len(d.Choices))
	for ci, ch := range d.Choices {
		prm := relSpeedParams{sub: d.Subs[ci]}
		for s := d.Subs[ci]; s >= 0; s = parent[s] {
			prm.chain = append(prm.chain, s)
			ret := p.RetrievalSpeed(d.SFs[s].SF, ch.CF.Fidelity.Sampling)
			eff := math.Min(ch.Profile.Speed, ret)
			if eff <= 0 {
				eff = 1e-9
			}
			prm.speed = append(prm.speed, eff)
		}
		out[ci] = prm
	}
	return out
}

// relativeSpeed computes one consumer's relative speed given per-format
// deletion fractions: the generalisation of the paper's α/((1−p)α+p) to a
// multi-level fallback chain. A segment is served by the first surviving
// chain element; expected time per unit of video is the mixture of the
// chain's per-element times.
func relativeSpeed(prm relSpeedParams, frac []float64) float64 {
	expTime := 0.0
	remain := 1.0
	for i, s := range prm.chain {
		avail := 1 - frac[s]
		if i == len(prm.chain)-1 {
			avail = 1 // the golden root is never eroded
		}
		expTime += remain * avail / prm.speed[i]
		remain *= 1 - avail
		if remain <= 0 {
			break
		}
	}
	expTime += remain / prm.speed[len(prm.speed)-1]
	full := 1 / prm.speed[0]
	return full / expTime
}

// overallSpeed is the max-min-fair overall metric: the minimum relative
// speed across all consumers.
func overallSpeed(d *StorageDerivation, params []relSpeedParams, frac []float64) float64 {
	minSpeed := 1.0
	for _, prm := range params {
		if s := relativeSpeed(prm, frac); s < minSpeed {
			minSpeed = s
		}
	}
	return minSpeed
}

func allDeleted(d *StorageDerivation) []float64 {
	frac := make([]float64, len(d.SFs))
	for i := range frac {
		if i != d.Golden {
			frac[i] = 1
		}
	}
	return frac
}

// erosionStep is the deletion-fraction granularity of the fair planner.
const erosionStep = 0.01

// erodeToTarget deletes segment fractions, always from the format whose
// deletion leaves the highest overall (minimum) speed — the fair-scheduler
// analogue of §4.4 — until the overall speed drops to the target.
func erodeToTarget(d *StorageDerivation, params []relSpeedParams, frac []float64, target float64) {
	for overallSpeed(d, params, frac) > target {
		bestSF := -1
		bestSpeed := -1.0
		for s := range d.SFs {
			if s == d.Golden || frac[s] >= 1 {
				continue
			}
			old := frac[s]
			frac[s] = math.Min(1, old+erosionStep)
			sp := overallSpeed(d, params, frac)
			frac[s] = old
			if sp > bestSpeed {
				bestSpeed = sp
				bestSF = s
			}
		}
		if bestSF < 0 {
			return // everything but golden is gone
		}
		frac[bestSF] = math.Min(1, frac[bestSF]+erosionStep)
	}
}
