package core

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/format"
	"repro/internal/ops"
	"repro/internal/profile"
)

// configDTO is the JSON form of a derived configuration. Operators are
// persisted by name and resolved through the operator registry on load.
type configDTO struct {
	Consumers []consumerDTO `json:"consumers"`
	SFs       []sfDTO       `json:"storage_formats"`
	Subs      []int         `json:"subscriptions"`
	Golden    int           `json:"golden"`
	Erosion   *erosionDTO   `json:"erosion,omitempty"`
	Runtime   *runtimeDTO   `json:"runtime,omitempty"`
}

type runtimeDTO struct {
	QueryWorkers     int              `json:"query_workers,omitempty"`
	CacheBytes       int64            `json:"cache_bytes,omitempty"`
	ResultsBytes     int64            `json:"results_bytes,omitempty"`
	IngestQueueDepth int              `json:"ingest_queue_depth,omitempty"`
	ErodeIntervalNS  int64            `json:"erode_interval_ns,omitempty"`
	FastTierBytes    int64            `json:"fast_tier_bytes,omitempty"`
	Shards           int              `json:"shards,omitempty"`
	DemoteAfterDays  int              `json:"demote_after_days,omitempty"`
	Tenants          []tenantQuotaDTO `json:"tenants,omitempty"`
}

type tenantQuotaDTO struct {
	Name        string  `json:"name"`
	Weight      int     `json:"weight,omitempty"`
	MaxInFlight int     `json:"max_in_flight,omitempty"`
	MaxQueue    int     `json:"max_queue,omitempty"`
	RatePerSec  float64 `json:"rate_per_sec,omitempty"`
	Burst       int     `json:"burst,omitempty"`
	BytesPerSec int64   `json:"bytes_per_sec,omitempty"`
}

type consumerDTO struct {
	Op       string  `json:"op"`
	Target   float64 `json:"target"`
	CF       string  `json:"cf"`
	Accuracy float64 `json:"accuracy"`
	Speed    float64 `json:"speed"`
}

type sfDTO struct {
	Fidelity    string  `json:"fidelity"`
	Coding      string  `json:"coding"`
	BytesPerSec float64 `json:"bytes_per_sec"`
	IngestSec   float64 `json:"ingest_sec"`
	Placement   string  `json:"placement,omitempty"`
}

type erosionDTO struct {
	K            float64     `json:"k"`
	PMin         float64     `json:"p_min"`
	Parent       []int       `json:"parent"`
	DeletedFrac  [][]float64 `json:"deleted_frac"`
	OverallSpeed []float64   `json:"overall_speed"`
	TotalBytes   int64       `json:"total_bytes"`
}

func parseCoding(s string) (format.Coding, error) {
	if s == "RAW" {
		return format.RawCoding, nil
	}
	var kf int
	var speed string
	if _, err := fmt.Sscanf(s, "%d-%s", &kf, &speed); err != nil {
		return format.Coding{}, fmt.Errorf("core: bad coding %q", s)
	}
	for _, ss := range format.SpeedSteps {
		if ss.String() == speed {
			return format.Coding{Speed: ss, KeyframeI: kf}, nil
		}
	}
	return format.Coding{}, fmt.Errorf("core: unknown speed step %q", speed)
}

// Save writes the configuration to path as JSON.
func (c *Config) Save(path string) error {
	b, err := c.MarshalBytes()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// MarshalBytes serialises the configuration as JSON.
func (c *Config) MarshalBytes() ([]byte, error) {
	d := c.Derivation
	dto := configDTO{Subs: d.Subs, Golden: d.Golden}
	for i, ch := range d.Choices {
		_ = i
		dto.Consumers = append(dto.Consumers, consumerDTO{
			Op:       ch.Consumer.Op.Name(),
			Target:   ch.Consumer.Target,
			CF:       ch.CF.Fidelity.String(),
			Accuracy: ch.Profile.Accuracy,
			Speed:    ch.Profile.Speed,
		})
	}
	for _, sf := range d.SFs {
		dto.SFs = append(dto.SFs, sfDTO{
			Fidelity:    sf.SF.Fidelity.String(),
			Coding:      sf.SF.Coding.String(),
			BytesPerSec: sf.Prof.BytesPerSec,
			IngestSec:   sf.Prof.IngestSec,
			Placement:   sf.Placement.String(),
		})
	}
	if c.Erosion != nil {
		dto.Erosion = &erosionDTO{
			K: c.Erosion.K, PMin: c.Erosion.PMin, Parent: c.Erosion.Parent,
			DeletedFrac: c.Erosion.DeletedFrac, OverallSpeed: c.Erosion.OverallSpeed,
			TotalBytes: c.Erosion.TotalBytes,
		}
	}
	if !c.Runtime.isZero() {
		dto.Runtime = &runtimeDTO{
			QueryWorkers:     c.Runtime.QueryWorkers,
			CacheBytes:       c.Runtime.CacheBytes,
			ResultsBytes:     c.Runtime.ResultsBytes,
			IngestQueueDepth: c.Runtime.IngestQueueDepth,
			ErodeIntervalNS:  int64(c.Runtime.ErodeInterval),
			FastTierBytes:    c.Runtime.FastTierBytes,
			Shards:           c.Runtime.Shards,
			DemoteAfterDays:  c.Runtime.DemoteAfterDays,
		}
		for _, t := range c.Runtime.Tenants {
			dto.Runtime.Tenants = append(dto.Runtime.Tenants, tenantQuotaDTO{
				Name:        t.Name,
				Weight:      t.Weight,
				MaxInFlight: t.MaxInFlight,
				MaxQueue:    t.MaxQueue,
				RatePerSec:  t.RatePerSec,
				Burst:       t.Burst,
				BytesPerSec: t.BytesPerSec,
			})
		}
	}
	b, err := json.MarshalIndent(dto, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return b, nil
}

// Load reads a configuration saved by Save. Profilers are not restored;
// the loaded configuration carries the profiled numbers it was saved with.
func Load(path string) (*Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cfg, err := FromBytes(b)
	if err != nil {
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	return cfg, nil
}

// FromBytes parses a configuration serialised by MarshalBytes.
func FromBytes(b []byte) (*Config, error) {
	var dto configDTO
	if err := json.Unmarshal(b, &dto); err != nil {
		return nil, fmt.Errorf("core: parsing configuration: %w", err)
	}
	d := &StorageDerivation{Subs: dto.Subs, Golden: dto.Golden}
	for _, c := range dto.Consumers {
		op, err := ops.ByName(c.Op)
		if err != nil {
			return nil, err
		}
		fid, err := format.ParseFidelity(c.CF)
		if err != nil {
			return nil, err
		}
		d.Choices = append(d.Choices, ConsumptionChoice{
			Consumer: Consumer{Op: op, Target: c.Target},
			CF:       format.ConsumptionFormat{Fidelity: fid},
			Profile:  profile.CFProfile{Fidelity: fid, Accuracy: c.Accuracy, Speed: c.Speed},
		})
	}
	legacyPlacement := make([]bool, 0, len(dto.SFs))
	for _, s := range dto.SFs {
		fid, err := format.ParseFidelity(s.Fidelity)
		if err != nil {
			return nil, err
		}
		coding, err := parseCoding(s.Coding)
		if err != nil {
			return nil, err
		}
		placement, explicit, err := ParsePlacement(s.Placement)
		if err != nil {
			return nil, err
		}
		legacyPlacement = append(legacyPlacement, !explicit)
		sf := format.StorageFormat{Fidelity: fid, Coding: coding}
		d.SFs = append(d.SFs, DerivedSF{
			SF:        sf,
			Prof:      profile.SFProfile{SF: sf, BytesPerSec: s.BytesPerSec, IngestSec: s.IngestSec},
			Placement: placement,
		})
	}
	for ci, si := range d.Subs {
		if si < 0 || si >= len(d.SFs) || ci >= len(d.Choices) {
			return nil, fmt.Errorf("core: invalid subscription %d -> %d", ci, si)
		}
		d.SFs[si].Consumers = append(d.SFs[si].Consumers, ci)
	}
	// Legacy configurations (persisted before tier placement existed)
	// default to the profiler-free rule: subscribed formats stay fast,
	// unsubscribed ones (the archival golden fallback) go cold.
	for i := range d.SFs {
		if legacyPlacement[i] && len(d.SFs[i].Consumers) == 0 {
			d.SFs[i].Placement = PlaceCold
		}
	}
	cfg := &Config{Derivation: d}
	if dto.Erosion != nil {
		cfg.Erosion = &ErosionPlan{
			K: dto.Erosion.K, PMin: dto.Erosion.PMin, Parent: dto.Erosion.Parent,
			DeletedFrac: dto.Erosion.DeletedFrac, OverallSpeed: dto.Erosion.OverallSpeed,
			TotalBytes: dto.Erosion.TotalBytes,
		}
	}
	if dto.Runtime != nil {
		cfg.Runtime = Runtime{
			QueryWorkers:     dto.Runtime.QueryWorkers,
			CacheBytes:       dto.Runtime.CacheBytes,
			ResultsBytes:     dto.Runtime.ResultsBytes,
			IngestQueueDepth: dto.Runtime.IngestQueueDepth,
			ErodeInterval:    time.Duration(dto.Runtime.ErodeIntervalNS),
			FastTierBytes:    dto.Runtime.FastTierBytes,
			Shards:           dto.Runtime.Shards,
			DemoteAfterDays:  dto.Runtime.DemoteAfterDays,
		}
		for _, t := range dto.Runtime.Tenants {
			cfg.Runtime.Tenants = append(cfg.Runtime.Tenants, TenantQuota{
				Name:        t.Name,
				Weight:      t.Weight,
				MaxInFlight: t.MaxInFlight,
				MaxQueue:    t.MaxQueue,
				RatePerSec:  t.RatePerSec,
				Burst:       t.Burst,
				BytesPerSec: t.BytesPerSec,
			})
		}
	}
	return cfg, nil
}

// BindingFor returns the (CF, SF) assignment of the named consumer, used by
// query engines to bind cascade stages.
func (c *Config) BindingFor(opName string, target float64) (format.ConsumptionFormat, format.StorageFormat, error) {
	d := c.Derivation
	for i, ch := range d.Choices {
		if ch.Consumer.Op.Name() == opName && ch.Consumer.Target == target {
			return ch.CF, d.SFs[d.Subs[i]].SF, nil
		}
	}
	return format.ConsumptionFormat{}, format.StorageFormat{},
		fmt.Errorf("core: no consumer <%s,%.2f> in configuration", opName, target)
}

// Placements returns the configuration's tier placement keyed by storage
// format key — what the server's ingest path consults to land each
// format's segments on the right disk tier. Should two derived formats
// ever share a key, the fast placement wins (placement is a retrieval
// floor, never a promise of coldness).
func (c *Config) Placements() map[string]Placement {
	out := make(map[string]Placement, len(c.Derivation.SFs))
	for _, sf := range c.Derivation.SFs {
		k := sf.SF.Key()
		if p, ok := out[k]; ok && p == PlaceFast {
			continue
		}
		out[k] = sf.Placement
	}
	return out
}

// StorageFormats returns the configuration's storage formats in order.
func (c *Config) StorageFormats() []format.StorageFormat {
	out := make([]format.StorageFormat, len(c.Derivation.SFs))
	for i, sf := range c.Derivation.SFs {
		out[i] = sf.SF
	}
	return out
}
