package core

import (
	"math"
	"math/rand"

	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/ops"
	"repro/internal/profile"
)

// fakeProfiler drives the configuration algorithms with synthetic,
// perfectly monotone accuracy/cost surfaces, the regime the paper's
// observations O1 and O2 describe. It also counts profiling calls so tests
// can bound the search's effort.
type fakeProfiler struct {
	r        *rand.Rand
	accW     [4]float64 // weights of quality, crop, res, sampling on accuracy
	accBase  float64
	runs     map[fakeKey]bool
	RunCount int
}

type fakeKey struct {
	op  string
	fid format.Fidelity
}

func newFakeProfiler(seed int64) *fakeProfiler {
	r := rand.New(rand.NewSource(seed))
	f := &fakeProfiler{r: r, runs: map[fakeKey]bool{}}
	total := 0.0
	for i := range f.accW {
		f.accW[i] = 0.1 + r.Float64()
		total += f.accW[i]
	}
	for i := range f.accW {
		f.accW[i] /= total
	}
	f.accBase = 0.2 * r.Float64()
	return f
}

// knob index positions normalised to [0,1].
func knobPos(fid format.Fidelity) [4]float64 {
	return [4]float64{
		float64(fid.Quality) / float64(len(format.Qualities)-1),
		float64(cropIndex(fid.Crop)) / float64(len(format.Crops)-1),
		float64(resIndex(fid.Res)) / float64(len(format.Resolutions)-1),
		float64(samplingIndex(fid.Sampling)) / float64(len(format.Samplings)-1),
	}
}

// accuracy is a weighted monotone blend of knob positions: exactly O1, and
// every knob matters.
func (f *fakeProfiler) accuracy(fid format.Fidelity) float64 {
	p := knobPos(fid)
	acc := f.accBase
	for i := range p {
		acc += (1 - f.accBase) * f.accW[i] * p[i]
	}
	return math.Min(acc, 1)
}

// speed is the reciprocal of data quantity (O2: quality-independent).
func (f *fakeProfiler) speed(fid format.Fidelity) float64 {
	return 1e4 / (1 + 1e4*fid.RelPixels())
}

func (f *fakeProfiler) ProfileConsumption(op ops.Operator, fid format.Fidelity) profile.CFProfile {
	k := fakeKey{op.Name(), fid}
	if !f.runs[k] {
		f.runs[k] = true
		f.RunCount++
	}
	return profile.CFProfile{Fidelity: fid, Accuracy: f.accuracy(fid), Speed: f.speed(fid)}
}

// Storage model: bytes/sec proportional to pixel quantity, discounted by
// quality and coding; ingest cost inversely proportional to the speed step's
// rate; retrieval speed grows as stored fidelity shrinks and (for sampled
// consumers) as the keyframe interval shrinks.
func (f *fakeProfiler) ProfileStorage(sf format.StorageFormat) profile.SFProfile {
	fid := sf.Fidelity
	pixels := 1e6 * fid.RelPixels()
	var bytes, ingest float64
	if sf.Coding.Raw {
		bytes = pixels * 1.5
		ingest = pixels / 1e7
	} else {
		qf := 0.3 + 0.7*float64(fid.Quality)/3
		sf2 := 1.0 + 0.5*float64(sf.Coding.Speed)/4
		kff := 1.0 + 20.0/float64(sf.Coding.KeyframeI)
		bytes = pixels * 0.02 * qf * sf2 * kff
		rate := []float64{0.2e6, 0.5e6, 2e6, 6e6, 10e6}[sf.Coding.Speed]
		ingest = pixels / rate
	}
	return profile.SFProfile{SF: sf, BytesPerSec: bytes, IngestSec: ingest}
}

func (f *fakeProfiler) RetrievalSpeed(sf format.StorageFormat, s format.Sampling) float64 {
	fid := sf.Fidelity
	pixels := 1e6 * fid.RelPixels()
	if sf.Coding.Raw {
		// Reads only the sampled frames.
		return 1 / (pixels*s.Fraction()/8e8 + s.Fraction()*30*20e-6)
	}
	// Must decode from keyframes: effective decoded fraction is bounded
	// below by the GOP structure.
	consumed := math.Max(s.Fraction(), math.Min(1, float64(sf.Coding.KeyframeI)/60))
	return 1 / (pixels * consumed / 2.2e7)
}

var _ ConsumptionProfiler = (*fakeProfiler)(nil)
var _ StorageProfiler = (*fakeProfiler)(nil)

// fakeOp is a named no-op operator for driving the configuration engine
// with synthetic profiles.
type fakeOp string

func (f fakeOp) Name() string { return string(f) }

func (f fakeOp) Run([]*frame.Frame) (ops.Output, ops.Stats) { return ops.Output{}, ops.Stats{} }
