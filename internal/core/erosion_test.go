package core

import (
	"testing"
)

func planFixture(t *testing.T, seed int64, budgetFrac float64) (*StorageDerivation, *ErosionPlan, int64) {
	t.Helper()
	fp := newFakeProfiler(seed)
	choices := fakeConsumers(fp, []float64{0.95, 0.9, 0.8, 0.7, 0.9, 0.8})
	d, err := DeriveStorageFormats(choices, SFOptions{Profiler: fp})
	if err != nil {
		t.Fatal(err)
	}
	lifespan := 10
	full := d.TotalBytesPerSec() * 86400 * float64(lifespan)
	// The feasible floor: day 1 is always intact (P(1)=1) and the golden
	// format is never eroded, so no plan can store less than this.
	golden := d.SFs[d.Golden].Prof.BytesPerSec * 86400
	floor := d.TotalBytesPerSec()*86400 + float64(lifespan-1)*golden
	var budget int64
	if budgetFrac > 0 {
		// budgetFrac interpolates between the feasible floor (0) and the
		// full, no-erosion footprint (1).
		budget = int64(floor + budgetFrac*(full-floor))
	}
	plan, err := PlanErosion(d, ErosionOptions{
		Profiler:           fp,
		LifespanDays:       lifespan,
		StorageBudgetBytes: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, plan, budget
}

func TestNoBudgetMeansNoDecay(t *testing.T) {
	_, plan, _ := planFixture(t, 1, 0)
	if plan.K != 0 {
		t.Fatalf("k = %v, want 0 with no budget", plan.K)
	}
	for age, s := range plan.OverallSpeed {
		if s != 1 {
			t.Fatalf("day %d speed %v, want 1 (flat line of Fig 13a)", age+1, s)
		}
	}
}

func TestAmpleBudgetMeansNoDecay(t *testing.T) {
	_, plan, _ := planFixture(t, 1, 1.5)
	if plan.K != 0 {
		t.Fatalf("k = %v, want 0 when budget exceeds full footprint", plan.K)
	}
}

func TestErosionRespectsBudget(t *testing.T) {
	_, plan, budget := planFixture(t, 2, 0.6)
	if plan.TotalBytes > budget {
		t.Fatalf("plan stores %d bytes, budget %d", plan.TotalBytes, budget)
	}
	if plan.K <= 0 {
		t.Fatal("decay factor should be positive under a binding budget")
	}
}

func TestTighterBudgetMoreAggressiveDecay(t *testing.T) {
	_, loose, _ := planFixture(t, 3, 0.8)
	_, tight, _ := planFixture(t, 3, 0.45)
	if tight.K <= loose.K {
		t.Fatalf("tighter budget k=%.2f not above looser k=%.2f (Fig 13a shape)", tight.K, loose.K)
	}
}

func TestSpeedDecaysMonotonicallyWithAge(t *testing.T) {
	_, plan, _ := planFixture(t, 4, 0.5)
	prev := 1.0 + 1e-9
	for age, s := range plan.OverallSpeed {
		if s > prev+1e-9 {
			t.Fatalf("overall speed increased with age at day %d: %.3f -> %.3f", age+1, prev, s)
		}
		if s < plan.PMin-0.02 {
			t.Fatalf("day %d speed %.3f below Pmin %.3f", age+1, s, plan.PMin)
		}
		prev = s
	}
	// Day 1 must be (nearly) intact: P(1) = 1 by the power law.
	if plan.OverallSpeed[0] < 0.99 {
		t.Fatalf("day-1 speed %.3f, want ~1", plan.OverallSpeed[0])
	}
}

func TestGoldenNeverEroded(t *testing.T) {
	d, plan, _ := planFixture(t, 5, 0.4)
	for age, fr := range plan.DeletedFrac {
		if fr[d.Golden] != 0 {
			t.Fatalf("golden format eroded at day %d", age+1)
		}
	}
}

func TestDeletionFractionsMonotoneInAge(t *testing.T) {
	_, plan, _ := planFixture(t, 6, 0.5)
	for s := range plan.DeletedFrac[0] {
		prev := 0.0
		for age := range plan.DeletedFrac {
			f := plan.DeletedFrac[age][s]
			if f < prev-1e-12 {
				t.Fatalf("format %d un-deleted at day %d: %.3f -> %.3f", s, age+1, prev, f)
			}
			if f < 0 || f > 1 {
				t.Fatalf("fraction out of range: %v", f)
			}
			prev = f
		}
	}
}

func TestFallbackTreeRootedAtGolden(t *testing.T) {
	d, plan, _ := planFixture(t, 7, 0.5)
	if plan.Parent[d.Golden] != -1 {
		t.Fatal("golden is not the root")
	}
	for i, p := range plan.Parent {
		if i == d.Golden {
			continue
		}
		if p < 0 || p >= len(d.SFs) {
			t.Fatalf("format %d has no parent", i)
		}
		if !d.SFs[p].SF.Fidelity.RicherEq(d.SFs[i].SF.Fidelity) {
			t.Fatalf("parent %d is not richer than child %d", p, i)
		}
		// Walking up must reach the root.
		seen := map[int]bool{}
		for j := i; j != -1; j = plan.Parent[j] {
			if seen[j] {
				t.Fatalf("cycle in fallback tree at %d", j)
			}
			seen[j] = true
		}
	}
}

func TestInfeasibleStorageBudget(t *testing.T) {
	fp := newFakeProfiler(8)
	choices := fakeConsumers(fp, []float64{0.95, 0.9})
	d, err := DeriveStorageFormats(choices, SFOptions{Profiler: fp})
	if err != nil {
		t.Fatal(err)
	}
	_, err = PlanErosion(d, ErosionOptions{Profiler: fp, LifespanDays: 10, StorageBudgetBytes: 1})
	if err == nil {
		t.Fatal("1-byte budget accepted")
	}
}

func TestRelativeSpeedFormula(t *testing.T) {
	// A single-level chain must reproduce the paper's α/((1−p)α+p).
	prm := relSpeedParams{chain: []int{0, 1}, speed: []float64{100, 25}} // α = 0.25
	alpha := 0.25
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 1.0} {
		frac := []float64{p, 0}
		got := relativeSpeed(prm, frac)
		want := alpha / ((1-p)*alpha + p)
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("p=%.1f: relative speed %.6f, want %.6f", p, got, want)
		}
	}
}

func TestConfigureEndToEndFake(t *testing.T) {
	fp := newFakeProfiler(11)
	consumers := []Consumer{}
	for _, tgt := range []float64{0.95, 0.9, 0.8, 0.7} {
		consumers = append(consumers, Consumer{Op: fakeOp("A"), Target: tgt, Prof: fp})
		consumers = append(consumers, Consumer{Op: fakeOp("B"), Target: tgt, Prof: fp})
	}
	cfg, err := Configure(consumers, Options{
		StorageProfiler: fp,
		LifespanDays:    10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Erosion.K != 0 {
		t.Fatal("no storage budget but decay planned")
	}
	tbl := cfg.Table()
	if tbl == "" || len(tbl) < 100 {
		t.Fatalf("table too short:\n%s", tbl)
	}
}
