package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/format"
	"repro/internal/profile"
)

// Strategy selects how coalescing pairs are chosen (§4.3 explores two).
type Strategy int

// Coalescing strategies.
const (
	// HeuristicSelection harvests free coalescing opportunities first, then
	// coalesces at the expense of storage (the paper's choice).
	HeuristicSelection Strategy = iota
	// DistanceSelection coalesces the knob-wise nearest pair (the
	// hierarchical-clustering alternative the paper evaluates against).
	DistanceSelection
)

// Placement is a storage format's disk-tier assignment (§4.1 places
// formats across fast and slow media): retrieval-hot formats go to the
// fast tier, archival ones to the cold tier.
type Placement int

// The two placements.
const (
	PlaceFast Placement = iota
	PlaceCold
)

// String returns the placement's persisted name.
func (p Placement) String() string {
	if p == PlaceCold {
		return "cold"
	}
	return "fast"
}

// ParsePlacement parses a persisted placement name. The empty string is
// the legacy (pre-tiering) form and reports ok=false so the caller can
// apply the default rule.
func ParsePlacement(s string) (Placement, bool, error) {
	switch s {
	case "fast":
		return PlaceFast, true, nil
	case "cold":
		return PlaceCold, true, nil
	case "":
		return PlaceFast, false, nil
	}
	return PlaceFast, false, fmt.Errorf("core: unknown placement %q", s)
}

// ColdSlowdown models the cold tier's retrieval bandwidth penalty
// relative to fast media. Placement derivation keeps a format on fast
// media iff some subscriber's retrieval-speed demand could not be met
// from a cold-tier read at this slowdown.
const ColdSlowdown = 8.0

// DerivedSF is one storage format of a configuration together with its
// profile, subscribers, and disk-tier placement.
type DerivedSF struct {
	SF        format.StorageFormat
	Prof      profile.SFProfile
	Consumers []int // indices into the ConsumptionChoice slice
	Placement Placement
	minSpeed  format.SpeedStep
}

// StorageDerivation is the output of §4.3: the coalesced storage format set,
// each consumer's subscription, and bookkeeping about the derivation.
type StorageDerivation struct {
	Choices []ConsumptionChoice
	SFs     []DerivedSF
	Subs    []int // per choice: index into SFs
	Golden  int   // index of the golden format in SFs
	Rounds  int   // coalescing rounds performed
}

// TotalIngestSec returns the ingest cost of the SF set in CPU-seconds per
// second of ingested video (≈ CPU cores).
func (d *StorageDerivation) TotalIngestSec() float64 {
	var t float64
	for _, sf := range d.SFs {
		t += sf.Prof.IngestSec
	}
	return t
}

// TotalBytesPerSec returns the storage cost of the SF set in stored bytes
// per second of ingested video.
func (d *StorageDerivation) TotalBytesPerSec() float64 {
	var t float64
	for _, sf := range d.SFs {
		t += sf.Prof.BytesPerSec
	}
	return t
}

// SFOptions configures storage-format derivation.
type SFOptions struct {
	// Profiler profiles storage formats (size, ingest cost, retrieval
	// speed) on a representative scene.
	Profiler StorageProfiler
	// IngestBudgetSec caps the ingest cost in CPU-seconds per video-second
	// (the number of transcoding cores). Zero means unlimited.
	IngestBudgetSec float64
	// Strategy selects the coalescing-pair policy.
	Strategy Strategy
	// Trace prints each coalescing decision (debugging aid).
	Trace bool
}

// kfLargestFirst is the keyframe-interval search order: for a given speed
// step, larger intervals store fewer keyframes and hence fewer bytes, so the
// first retrieval-feasible interval is the (approximately) cheapest.
var kfLargestFirst = func() []int {
	ks := append([]int(nil), format.KeyframeIntervals...)
	sort.Sort(sort.Reverse(sort.IntSlice(ks)))
	return ks
}()

// demand is one subscriber's retrieval requirement: the SF must supply
// frames at the consumer's sampling rate at least as fast as the consumer
// processes them (R2).
type demand struct {
	sampling format.Sampling
	speed    float64
}

// chooseCoding returns the cheapest-storage coding option with speed step at
// least minSpeed whose retrieval speed satisfies every demand. If no
// encoded option suffices it falls back to the coding bypass (raw frames),
// which maximises retrieval speed at maximal storage cost.
func chooseCoding(p StorageProfiler, fid format.Fidelity, demands []demand, minSpeed format.SpeedStep) format.Coding {
	for _, speed := range format.SpeedSteps {
		if speed < minSpeed {
			continue
		}
		for _, kf := range kfLargestFirst {
			c := format.Coding{Speed: speed, KeyframeI: kf}
			if satisfiesAll(p, format.StorageFormat{Fidelity: fid, Coding: c}, demands) {
				return c
			}
		}
	}
	return format.RawCoding
}

func satisfiesAll(p StorageProfiler, sf format.StorageFormat, demands []demand) bool {
	for _, d := range demands {
		if p.RetrievalSpeed(sf, d.sampling) < d.speed {
			return false
		}
	}
	return true
}

// sfFidelity normalises a fidelity for storage: raw (bypass) storage has no
// quality knob (Table 1), so raw formats always store best quality.
func sfFor(p StorageProfiler, fid format.Fidelity, demands []demand, minSpeed format.SpeedStep) format.StorageFormat {
	c := chooseCoding(p, fid, demands, minSpeed)
	if c.Raw {
		fid.Quality = format.QBest
	}
	return format.StorageFormat{Fidelity: fid, Coding: c}
}

// demandsOf collects the retrieval demands of a consumer set.
func demandsOf(choices []ConsumptionChoice, consumers []int) []demand {
	out := make([]demand, 0, len(consumers))
	for _, ci := range consumers {
		out = append(out, demand{
			sampling: choices[ci].CF.Fidelity.Sampling,
			speed:    choices[ci].Profile.Speed,
		})
	}
	return out
}

// DeriveStorageFormats runs §4.3: starting from one storage format per
// unique consumption format plus the golden format, it iteratively coalesces
// pairs until no free opportunity remains and the ingest budget is met.
func DeriveStorageFormats(choices []ConsumptionChoice, opt SFOptions) (*StorageDerivation, error) {
	if opt.Profiler == nil {
		return nil, errors.New("core: SFOptions.Profiler is required")
	}
	if len(choices) == 0 {
		return nil, errors.New("core: no consumers")
	}
	p := opt.Profiler
	cfs, cfIdx := UniqueCFs(choices)

	d := &StorageDerivation{Choices: choices, Subs: make([]int, len(choices))}
	// Initial set: one SF per unique CF, identical fidelity.
	for j, cf := range cfs {
		var subs []int
		for i := range choices {
			if cfIdx[i] == j {
				subs = append(subs, i)
			}
		}
		sf := sfFor(p, cf.Fidelity, demandsOf(choices, subs), format.SpeedSlowest)
		d.SFs = append(d.SFs, DerivedSF{SF: sf, Prof: p.ProfileStorage(sf), Consumers: subs})
	}
	// The golden format: knob-wise maximum fidelity of all CFs, coding with
	// the lowest storage cost. It is the ultimate erosion fallback (§4.4).
	gFid := cfs[0].Fidelity
	for _, cf := range cfs[1:] {
		gFid = gFid.Max(cf.Fidelity)
	}
	gSF := sfFor(p, gFid, nil, format.SpeedSlowest)
	d.SFs = append(d.SFs, DerivedSF{SF: gSF, Prof: p.ProfileStorage(gSF)})
	d.Golden = len(d.SFs) - 1

	switch opt.Strategy {
	case DistanceSelection:
		coalesceByDistance(d, p, opt.IngestBudgetSec)
	default:
		coalesceByHeuristic(d, p, opt.Trace)
	}
	// Budget adaptation: if ingest still exceeds the budget, progressively
	// pick cheaper (faster) coding options, trading storage for ingest
	// (Table 4).
	if err := adaptToIngestBudget(d, p, opt.IngestBudgetSec); err != nil {
		return nil, err
	}
	d.rebuildSubs()
	derivePlacements(d, p)
	return d, nil
}

// derivePlacements assigns each storage format to a disk tier from its
// derived retrieval-speed demand: a format stays on fast media iff some
// subscriber's required consumption speed exceeds what a ColdSlowdown×
// slower cold-tier read of that format could supply (R2 would break on
// cold media). Unsubscribed formats — notably the golden archival
// fallback — go cold. The rule is a pure function of the derivation and
// the profiler, so the placement plan is byte-identical across runs.
func derivePlacements(d *StorageDerivation, p StorageProfiler) {
	for i := range d.SFs {
		sf := &d.SFs[i]
		sf.Placement = PlaceCold
		for _, ci := range sf.Consumers {
			ch := d.Choices[ci]
			if p.RetrievalSpeed(sf.SF, ch.CF.Fidelity.Sampling)/ColdSlowdown < ch.Profile.Speed {
				sf.Placement = PlaceFast
				break
			}
		}
	}
}

// coalesced builds the candidate SF resulting from merging SFs i and j.
func coalesced(d *StorageDerivation, p StorageProfiler, i, j int, minSpeed format.SpeedStep) DerivedSF {
	fid := d.SFs[i].SF.Fidelity.Max(d.SFs[j].SF.Fidelity)
	subs := append(append([]int(nil), d.SFs[i].Consumers...), d.SFs[j].Consumers...)
	if i == d.Golden || j == d.Golden {
		// Coalescing into the golden format must keep its fidelity.
		fid = fid.Max(d.SFs[d.Golden].SF.Fidelity)
	}
	sf := sfFor(p, fid, demandsOf(d.Choices, subs), minSpeed)
	return DerivedSF{SF: sf, Prof: p.ProfileStorage(sf), Consumers: subs, minSpeed: minSpeed}
}

// applyCoalesce replaces SFs i and j with the merged format.
func applyCoalesce(d *StorageDerivation, i, j int, merged DerivedSF) {
	if j < i {
		i, j = j, i
	}
	goldenMerged := i == d.Golden || j == d.Golden
	// Remove j first (higher index), then replace i.
	d.SFs = append(d.SFs[:j], d.SFs[j+1:]...)
	d.SFs[i] = merged
	if goldenMerged {
		d.Golden = i
	} else if d.Golden > j {
		d.Golden--
	}
	d.Rounds++
}

// coalesceByHeuristic implements the paper's pair selection: repeatedly
// coalesce the pair that reduces ingest cost without increasing storage
// cost; once none remains, stop (budget pressure is handled separately).
func coalesceByHeuristic(d *StorageDerivation, p StorageProfiler, trace bool) {
	for {
		bestI, bestJ := -1, -1
		var bestMerged DerivedSF
		bestDStorage := math.Inf(1)
		for i := 0; i < len(d.SFs); i++ {
			for j := i + 1; j < len(d.SFs); j++ {
				m := coalesced(d, p, i, j, format.SpeedSlowest)
				dIngest := m.Prof.IngestSec - d.SFs[i].Prof.IngestSec - d.SFs[j].Prof.IngestSec
				dStorage := m.Prof.BytesPerSec - d.SFs[i].Prof.BytesPerSec - d.SFs[j].Prof.BytesPerSec
				if trace {
					fmt.Printf("  pair %v + %v -> %v dIngest=%.4f dStorage=%.0f\n",
						d.SFs[i].SF, d.SFs[j].SF, m.SF, dIngest, dStorage)
				}
				if dIngest < 0 && dStorage <= 0 && dStorage < bestDStorage {
					bestI, bestJ, bestMerged, bestDStorage = i, j, m, dStorage
				}
			}
		}
		if bestI < 0 {
			return
		}
		if trace {
			fmt.Printf("MERGE %v + %v -> %v\n", d.SFs[bestI].SF, d.SFs[bestJ].SF, bestMerged.SF)
		}
		applyCoalesce(d, bestI, bestJ, bestMerged)
	}
}

// coalesceByDistance implements the clustering alternative: normalise knob
// values, repeatedly merge the pair of formats at the smallest Euclidean
// distance, and stop when ingest meets the budget (or when only the golden
// format would remain).
func coalesceByDistance(d *StorageDerivation, p StorageProfiler, budget float64) {
	for len(d.SFs) > 2 {
		if budget > 0 && d.TotalIngestSec() <= budget {
			return
		}
		if budget <= 0 && len(d.SFs) <= 5 {
			// Without a budget, stop at the paper's typical SF-set size.
			return
		}
		bestI, bestJ := -1, -1
		best := math.Inf(1)
		for i := 0; i < len(d.SFs); i++ {
			for j := i + 1; j < len(d.SFs); j++ {
				if dist := knobDistance(d.SFs[i].SF.Fidelity, d.SFs[j].SF.Fidelity); dist < best {
					bestI, bestJ, best = i, j, dist
				}
			}
		}
		m := coalesced(d, p, bestI, bestJ, format.SpeedSlowest)
		applyCoalesce(d, bestI, bestJ, m)
	}
}

// knobDistance is the Euclidean distance between fidelities with each knob
// normalised to [0,1] by its index in the knob's value list.
func knobDistance(a, b format.Fidelity) float64 {
	n := func(idx, n int) float64 { return float64(idx) / float64(n-1) }
	qa := n(int(a.Quality), len(format.Qualities))
	qb := n(int(b.Quality), len(format.Qualities))
	ca := n(cropIndex(a.Crop), len(format.Crops))
	cb := n(cropIndex(b.Crop), len(format.Crops))
	ra := n(resIndex(a.Res), len(format.Resolutions))
	rb := n(resIndex(b.Res), len(format.Resolutions))
	sa := n(samplingIndex(a.Sampling), len(format.Samplings))
	sb := n(samplingIndex(b.Sampling), len(format.Samplings))
	return math.Sqrt((qa-qb)*(qa-qb) + (ca-cb)*(ca-cb) + (ra-rb)*(ra-rb) + (sa-sb)*(sa-sb))
}

func cropIndex(c format.Crop) int {
	for i, v := range format.Crops {
		if v == c {
			return i
		}
	}
	return 0
}

func resIndex(r format.Resolution) int {
	for i, v := range format.Resolutions {
		if v == r {
			return i
		}
	}
	return 0
}

func samplingIndex(s format.Sampling) int {
	for i, v := range format.Samplings {
		if v == s {
			return i
		}
	}
	return 0
}

// adaptToIngestBudget brings ingest cost under the budget by repeatedly
// taking the action with the least storage penalty per CPU-second saved:
// either speeding up one format's coding by a step (cheaper encoding,
// bigger output) or coalescing a pair of formats.
func adaptToIngestBudget(d *StorageDerivation, p StorageProfiler, budget float64) error {
	if budget <= 0 {
		return nil
	}
	for d.TotalIngestSec() > budget {
		type action struct {
			apply    func()
			dIngest  float64 // negative: savings
			dStorage float64
		}
		var best *action
		bestScore := math.Inf(1)
		consider := func(a action) {
			if a.dIngest >= 0 {
				return
			}
			score := a.dStorage / -a.dIngest
			if score < bestScore {
				bestScore = score
				best = &a
			}
		}
		// Option A: speed up one SF's coding by one step.
		for i := range d.SFs {
			sf := d.SFs[i]
			if sf.SF.Coding.Raw || sf.minSpeed >= format.SpeedFastest {
				continue
			}
			i := i
			ms := sf.minSpeed + 1
			cand := sfFor(p, sf.SF.Fidelity, demandsOf(d.Choices, sf.Consumers), ms)
			prof := p.ProfileStorage(cand)
			consider(action{
				apply: func() {
					d.SFs[i] = DerivedSF{SF: cand, Prof: prof, Consumers: d.SFs[i].Consumers, minSpeed: ms}
				},
				dIngest:  prof.IngestSec - sf.Prof.IngestSec,
				dStorage: prof.BytesPerSec - sf.Prof.BytesPerSec,
			})
		}
		// Option B: coalesce a pair.
		for i := 0; i < len(d.SFs); i++ {
			for j := i + 1; j < len(d.SFs); j++ {
				i, j := i, j
				m := coalesced(d, p, i, j, format.SpeedSlowest)
				consider(action{
					apply:    func() { applyCoalesce(d, i, j, m) },
					dIngest:  m.Prof.IngestSec - d.SFs[i].Prof.IngestSec - d.SFs[j].Prof.IngestSec,
					dStorage: m.Prof.BytesPerSec - d.SFs[i].Prof.BytesPerSec - d.SFs[j].Prof.BytesPerSec,
				})
			}
		}
		if best == nil {
			return fmt.Errorf("core: cannot meet ingest budget of %.2f CPU-sec/sec (need %.2f)",
				budget, d.TotalIngestSec())
		}
		best.apply()
	}
	return nil
}

// rebuildSubs recomputes each consumer's subscription: the satisfying SF
// with adequate retrieval speed; among several, the one with the fastest
// retrieval requirement met at the lowest storage cost (its own SF first).
func (d *StorageDerivation) rebuildSubs() {
	for i := range d.Subs {
		d.Subs[i] = -1
	}
	for si, sf := range d.SFs {
		for _, ci := range sf.Consumers {
			d.Subs[ci] = si
		}
	}
	// Consumers not attached to any SF (possible only for golden-merged
	// cases) fall back to the golden format.
	for i, s := range d.Subs {
		if s < 0 {
			d.Subs[i] = d.Golden
			d.SFs[d.Golden].Consumers = append(d.SFs[d.Golden].Consumers, i)
		}
	}
}

// Validate checks requirements R1 (satisfiable fidelity) and R2 (adequate
// retrieval speed, best-effort for raw) for every consumer, and R4 (ingest
// budget) if one is given. It returns the first violation found.
func (d *StorageDerivation) Validate(p StorageProfiler, ingestBudget float64) error {
	for i, ch := range d.Choices {
		sf := d.SFs[d.Subs[i]]
		if !sf.SF.Satisfies(ch.CF) {
			return fmt.Errorf("core: R1 violated: %v cannot supply %v", sf.SF, ch.CF)
		}
		if !sf.SF.Coding.Raw {
			if got := p.RetrievalSpeed(sf.SF, ch.CF.Fidelity.Sampling); got < ch.Profile.Speed {
				return fmt.Errorf("core: R2 violated: %v retrieves at %.0fx for %v needing %.0fx",
					sf.SF, got, ch.Consumer, ch.Profile.Speed)
			}
		}
	}
	if ingestBudget > 0 && d.TotalIngestSec() > ingestBudget+1e-9 {
		return fmt.Errorf("core: R4 violated: ingest %.2f exceeds budget %.2f", d.TotalIngestSec(), ingestBudget)
	}
	return nil
}
