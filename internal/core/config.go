package core

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/format"
)

// Options configures a full backward derivation.
type Options struct {
	// StorageProfiler profiles storage formats and retrieval; consumption
	// profiling uses each consumer's own profiler.
	StorageProfiler StorageProfiler
	// IngestBudgetSec caps ingest CPU (cores); zero = unlimited.
	IngestBudgetSec float64
	// StorageBudgetBytes caps the lifespan footprint; zero = unlimited.
	StorageBudgetBytes int64
	// LifespanDays is the retention period (default 10, as in §6.3).
	LifespanDays int
	// Strategy selects the coalescing policy.
	Strategy Strategy
}

// Config is a complete derived configuration: the paper's Figure 7 output,
// plus the runtime execution knobs that govern how queries over it run.
type Config struct {
	Derivation *StorageDerivation
	Erosion    *ErosionPlan
	Runtime    Runtime
}

// Configure runs the full backward derivation (Figure 7): consumption
// formats from consumers, storage formats from consumption formats, and the
// erosion plan from storage formats.
func Configure(consumers []Consumer, opt Options) (*Config, error) {
	if opt.LifespanDays == 0 {
		opt.LifespanDays = 10
	}
	choices := DeriveConsumptionFormats(consumers)
	d, err := DeriveStorageFormats(choices, SFOptions{
		Profiler:        opt.StorageProfiler,
		IngestBudgetSec: opt.IngestBudgetSec,
		Strategy:        opt.Strategy,
	})
	if err != nil {
		return nil, err
	}
	plan, err := PlanErosion(d, ErosionOptions{
		Profiler:           opt.StorageProfiler,
		LifespanDays:       opt.LifespanDays,
		StorageBudgetBytes: opt.StorageBudgetBytes,
	})
	if err != nil {
		return nil, err
	}
	return &Config{Derivation: d, Erosion: plan}, nil
}

// Table renders the configuration in the style of the paper's Table 3.
func (c *Config) Table() string {
	var b strings.Builder
	d := c.Derivation
	fmt.Fprintf(&b, "Consumption formats (%d consumers, %d unique CFs):\n", len(d.Choices), countUniqueCFs(d.Choices))
	byOp := map[string][]int{}
	var opOrder []string
	for i, ch := range d.Choices {
		name := ch.Consumer.Op.Name()
		if _, ok := byOp[name]; !ok {
			opOrder = append(opOrder, name)
		}
		byOp[name] = append(byOp[name], i)
	}
	for _, op := range opOrder {
		idx := byOp[op]
		sort.Slice(idx, func(a, b int) bool {
			return d.Choices[idx[a]].Consumer.Target > d.Choices[idx[b]].Consumer.Target
		})
		for _, i := range idx {
			ch := d.Choices[i]
			fmt.Fprintf(&b, "  %-8s F1=%.2f  %-22s -> SF%-2d  %8.0fx  (achieved F1=%.2f)\n",
				op, ch.Consumer.Target, ch.CF.Fidelity, d.Subs[i], ch.Profile.Speed, ch.Profile.Accuracy)
		}
	}
	fmt.Fprintf(&b, "Storage formats (%d):\n", len(d.SFs))
	for i, sf := range d.SFs {
		tag := ""
		if i == d.Golden {
			tag = " (golden)"
		}
		fmt.Fprintf(&b, "  SF%-2d %-22s %-12s %8.1f KB/s  ingest %.2f cores  %s%s\n",
			i, sf.SF.Fidelity, sf.SF.Coding, sf.Prof.BytesPerSec/1024, sf.Prof.IngestSec, sf.Placement, tag)
	}
	return b.String()
}

func countUniqueCFs(choices []ConsumptionChoice) int {
	cfs, _ := UniqueCFs(choices)
	return len(cfs)
}

// ExhaustiveStorageSearch enumerates every partition of the unique CFs into
// storage formats and returns the minimum-storage-cost feasible derivation.
// Exponential in the number of CFs (Bell numbers); the paper uses it only to
// validate heuristic coalescing (§6.4). The golden format is always added.
func ExhaustiveStorageSearch(choices []ConsumptionChoice, p StorageProfiler) (*StorageDerivation, int) {
	cfs, cfIdx := UniqueCFs(choices)
	n := len(cfs)
	consumersOf := make([][]int, n)
	for i := range choices {
		consumersOf[cfIdx[i]] = append(consumersOf[cfIdx[i]], i)
	}
	gFid := cfs[0].Fidelity
	for _, cf := range cfs[1:] {
		gFid = gFid.Max(cf.Fidelity)
	}

	var best *StorageDerivation
	bestCost := math.Inf(1)
	partitions := 0
	// blocks[0] is the golden block: it always exists, and CFs may merge
	// into it (heuristic coalescing can do the same, so the enumeration
	// must include those partitions to be a true lower bound).
	blocks := make([][]int, 1, n+1)
	var recurse func(i int)
	recurse = func(i int) {
		if i == n {
			partitions++
			d := buildFromPartition(choices, consumersOf, cfs, blocks, gFid, p)
			if cost := d.TotalBytesPerSec(); cost < bestCost {
				bestCost = cost
				best = d
			}
			return
		}
		for bi := range blocks {
			blocks[bi] = append(blocks[bi], i)
			recurse(i + 1)
			blocks[bi] = blocks[bi][:len(blocks[bi])-1]
		}
		blocks = append(blocks, []int{i})
		recurse(i + 1)
		blocks = blocks[:len(blocks)-1]
	}
	recurse(0)
	best.rebuildSubs()
	derivePlacements(best, p)
	return best, partitions
}

func buildFromPartition(choices []ConsumptionChoice, consumersOf [][]int, cfs []format.ConsumptionFormat, blocks [][]int, gFid format.Fidelity, p StorageProfiler) *StorageDerivation {
	d := &StorageDerivation{Choices: choices, Subs: make([]int, len(choices))}
	for bi, block := range blocks {
		fid := gFid // block 0 is the golden block
		if bi > 0 {
			fid = cfs[block[0]].Fidelity
		}
		var subs []int
		for _, cfI := range block {
			fid = fid.Max(cfs[cfI].Fidelity)
			subs = append(subs, consumersOf[cfI]...)
		}
		sf := sfFor(p, fid, demandsOf(choices, subs), format.SpeedSlowest)
		d.SFs = append(d.SFs, DerivedSF{SF: sf, Prof: p.ProfileStorage(sf), Consumers: subs})
	}
	d.Golden = 0
	return d
}
