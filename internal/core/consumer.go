// Package core implements VStore's contribution: automatic configuration of
// video formats by backward derivation (§4). From consumers it derives
// consumption formats (§4.2); from consumption formats it derives coalesced
// storage formats under an ingest budget (§4.3); from storage formats it
// derives an age-based data erosion plan under a storage budget (§4.4).
package core

import (
	"fmt"
	"sort"

	"repro/internal/format"
	"repro/internal/ops"
	"repro/internal/profile"
)

// ConsumptionProfiler supplies (operator, fidelity) profiles. It is the
// subset of *profile.Profiler the consumption-format search needs, split out
// so tests can drive the search with synthetic monotone profiles.
type ConsumptionProfiler interface {
	ProfileConsumption(op ops.Operator, fid format.Fidelity) profile.CFProfile
}

// StorageProfiler supplies storage-format and retrieval profiles: the
// subset of *profile.Profiler that storage derivation and erosion planning
// need.
type StorageProfiler interface {
	ProfileStorage(sf format.StorageFormat) profile.SFProfile
	RetrievalSpeed(sf format.StorageFormat, s format.Sampling) float64
}

// Consumer is one ⟨operator, accuracy⟩ pair (§2.2). Prof supplies the scene
// on which this operator is profiled (§6.1 profiles query A's operators on
// jackson and query B's on dashcam).
type Consumer struct {
	Op     ops.Operator
	Target float64
	Prof   ConsumptionProfiler
}

func (c Consumer) String() string { return fmt.Sprintf("<%s,%.2f>", c.Op.Name(), c.Target) }

// ConsumptionChoice is the derived consumption format for one consumer.
type ConsumptionChoice struct {
	Consumer Consumer
	CF       format.ConsumptionFormat
	Profile  profile.CFProfile // accuracy and consumption speed at the CF
}

// DeriveConsumptionFormats derives a consumption format for every consumer:
// the fidelity that meets the target accuracy at the highest consumption
// speed, found by the quality-partitioned monotone boundary search of §4.2.
func DeriveConsumptionFormats(consumers []Consumer) []ConsumptionChoice {
	out := make([]ConsumptionChoice, len(consumers))
	for i, c := range consumers {
		out[i] = deriveOne(c)
	}
	return out
}

// deriveOne runs the §4.2 algorithm for one consumer:
//
//  1. fix image quality at its highest value (O2: quality does not affect
//     consumption cost);
//  2. partition the remaining 3D space along the crop factor (the shortest
//     dimension) into 2D (resolution × sampling) spaces;
//  3. walk each 2D space's accuracy boundary, profiling only boundary cells;
//  4. among all adequate boundary cells pick the fastest;
//  5. lower image quality while accuracy stays adequate, reducing storage
//     and ingest costs opportunistically.
func deriveOne(c Consumer) ConsumptionChoice {
	best := profile.CFProfile{Speed: -1}
	for _, crop := range format.Crops {
		for _, cand := range boundarySearch(c, crop) {
			if cand.Accuracy >= c.Target && cand.Speed > best.Speed {
				best = cand
			}
		}
	}
	if best.Speed < 0 {
		// No fidelity meets the target: fall back to the richest fidelity
		// (its accuracy is 1.0 by the ground-truth definition).
		best = c.Prof.ProfileConsumption(c.Op, format.MaxFidelity())
	}
	// Quality-lowering pass: keep reducing quality while accuracy remains
	// adequate.
	chosen := best
	for qi := len(format.Qualities) - 2; qi >= 0; qi-- {
		fid := chosen.Fidelity
		fid.Quality = format.Qualities[qi]
		p := c.Prof.ProfileConsumption(c.Op, fid)
		if p.Accuracy < c.Target {
			break
		}
		chosen = p
	}
	return ConsumptionChoice{Consumer: c, CF: format.ConsumptionFormat{Fidelity: chosen.Fidelity}, Profile: chosen}
}

// boundarySearch explores one 2D (resolution × sampling) space at the given
// crop factor and best image quality, profiling only the accuracy boundary
// (Figure 8). It returns every profiled cell; callers filter for adequacy.
//
// The walk relies on O1 (monotone accuracy): it starts at the top-right cell
// (poorest sampling, richest resolution); an adequate cell lets it move left
// (poorer resolution), an inadequate one forces it down (richer sampling).
func boundarySearch(c Consumer, crop format.Crop) []profile.CFProfile {
	var profiled []profile.CFProfile
	row := 0                             // sampling index: 0 is poorest (1/30)
	col := len(format.Resolutions) - 1   // resolution index: last is richest
	samplings := poorestFirstSamplings() // poorest first
	for row < len(samplings) && col >= 0 {
		fid := format.Fidelity{
			Quality:  format.QBest,
			Crop:     crop,
			Res:      format.Resolutions[col],
			Sampling: samplings[row],
		}
		p := c.Prof.ProfileConsumption(c.Op, fid)
		profiled = append(profiled, p)
		if p.Accuracy >= c.Target {
			col-- // adequate: try poorer resolution at this sampling
		} else {
			row++ // inadequate: need richer sampling
		}
	}
	return profiled
}

// poorestFirstSamplings returns the sampling knob values ordered from
// poorest to richest fraction.
func poorestFirstSamplings() []format.Sampling {
	s := append([]format.Sampling(nil), format.Samplings...)
	sort.Slice(s, func(i, j int) bool { return s[i].Fraction() < s[j].Fraction() })
	return s
}

// DeriveConsumptionExhaustive profiles every fidelity option for the
// consumer and returns the optimal choice. It exists to validate the
// boundary search and to quantify its savings (Figure 14).
func DeriveConsumptionExhaustive(c Consumer) ConsumptionChoice {
	best := profile.CFProfile{Speed: -1}
	for _, fid := range format.FidelitySpace() {
		p := c.Prof.ProfileConsumption(c.Op, fid)
		if p.Accuracy >= c.Target && (best.Speed < 0 ||
			p.Speed > best.Speed ||
			(p.Speed == best.Speed && fid.Quality < best.Fidelity.Quality)) {
			best = p
		}
	}
	if best.Speed < 0 {
		best = c.Prof.ProfileConsumption(c.Op, format.MaxFidelity())
	}
	return ConsumptionChoice{Consumer: c, CF: format.ConsumptionFormat{Fidelity: best.Fidelity}, Profile: best}
}

// UniqueCFs returns the distinct consumption formats among choices, in a
// stable order, plus the index of each choice's CF within the result.
func UniqueCFs(choices []ConsumptionChoice) ([]format.ConsumptionFormat, []int) {
	var cfs []format.ConsumptionFormat
	idx := make([]int, len(choices))
	seen := map[format.ConsumptionFormat]int{}
	for i, ch := range choices {
		j, ok := seen[ch.CF]
		if !ok {
			j = len(cfs)
			seen[ch.CF] = j
			cfs = append(cfs, ch.CF)
		}
		idx[i] = j
	}
	return cfs, idx
}
