package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/format"
	"repro/internal/ops"
	"repro/internal/profile"
)

// placementProfiler wraps the fake profiler with a fixed retrieval-speed
// table so the placement rule's two outcomes are both reachable.
type placementProfiler struct {
	*fakeProfiler
	speed map[string]float64
}

func (p *placementProfiler) RetrievalSpeed(sf format.StorageFormat, s format.Sampling) float64 {
	if v, ok := p.speed[sf.Fidelity.String()]; ok {
		return v
	}
	return p.fakeProfiler.RetrievalSpeed(sf, s)
}

// TestPlacementRule pins the derivation rule: a format whose subscriber
// demand could not be met from an 8x-slower cold read stays fast, a
// format with at least ColdSlowdown retrieval slack goes cold, and the
// unsubscribed golden fallback always goes cold.
func TestPlacementRule(t *testing.T) {
	mk := func(res format.Resolution) format.StorageFormat {
		return format.StorageFormat{
			Fidelity: format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: res, Sampling: format.Samplings[0]},
			Coding:   format.Coding{Speed: format.SpeedSlowest, KeyframeI: format.KeyframeIntervals[0]},
		}
	}
	hot, slack, golden := mk(format.Resolutions[0]), mk(format.Resolutions[1]), mk(format.Resolutions[2])
	d := &StorageDerivation{
		Choices: []ConsumptionChoice{
			{Consumer: Consumer{Op: fakeOp("hot")}, CF: format.ConsumptionFormat{Fidelity: hot.Fidelity},
				Profile: profile.CFProfile{Speed: 100}},
			{Consumer: Consumer{Op: fakeOp("lazy")}, CF: format.ConsumptionFormat{Fidelity: slack.Fidelity},
				Profile: profile.CFProfile{Speed: 100}},
		},
		SFs: []DerivedSF{
			{SF: hot, Consumers: []int{0}},
			{SF: slack, Consumers: []int{1}},
			{SF: golden},
		},
		Subs:   []int{0, 1},
		Golden: 2,
	}
	p := &placementProfiler{fakeProfiler: newFakeProfiler(1), speed: map[string]float64{
		hot.Fidelity.String():    200,  // 200/8 < 100: cold media too slow
		slack.Fidelity.String():  1000, // 1000/8 > 100: cold suffices
		golden.Fidelity.String(): 1,
	}}
	derivePlacements(d, p)
	if got := d.SFs[0].Placement; got != PlaceFast {
		t.Fatalf("demand-bound format placed %v, want fast", got)
	}
	if got := d.SFs[1].Placement; got != PlaceCold {
		t.Fatalf("slack format placed %v, want cold", got)
	}
	if got := d.SFs[2].Placement; got != PlaceCold {
		t.Fatalf("unsubscribed golden format placed %v, want cold", got)
	}
}

// TestPlacementDeterminism: configuring twice over identical profiles
// yields a byte-identical serialised plan — placement included — so a
// re-derived epoch never flaps formats between tiers.
func TestPlacementDeterminism(t *testing.T) {
	derive := func() []byte {
		cfg, err := Configure([]Consumer{
			{Op: ops.Motion{}, Target: 0.9, Prof: newFakeProfiler(7)},
			{Op: ops.Diff{}, Target: 0.7, Prof: newFakeProfiler(7)},
		}, Options{StorageProfiler: newFakeProfiler(7), LifespanDays: 3})
		if err != nil {
			t.Fatal(err)
		}
		b, err := cfg.MarshalBytes()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := derive(), derive()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical derivations serialised differently")
	}
	if !bytes.Contains(a, []byte(`"placement"`)) {
		t.Fatal("serialised plan carries no placement")
	}
}

// TestPlacementPersistence: placements round-trip through the persisted
// form, and legacy configurations without the field default to
// subscribed-fast / unsubscribed-cold.
func TestPlacementPersistence(t *testing.T) {
	cfg, err := Configure([]Consumer{
		{Op: ops.Motion{}, Target: 0.9, Prof: newFakeProfiler(3)},
	}, Options{StorageProfiler: newFakeProfiler(3), LifespanDays: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Derivation.SFs[cfg.Derivation.Golden].Placement = PlaceCold
	cfg.Runtime.FastTierBytes = 1 << 20
	cfg.Runtime.Shards = 8
	cfg.Runtime.DemoteAfterDays = 2
	b, err := cfg.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Derivation.SFs {
		if got.Derivation.SFs[i].Placement != cfg.Derivation.SFs[i].Placement {
			t.Fatalf("SF%d placement lost in round-trip", i)
		}
	}
	if rt := got.Runtime; rt.FastTierBytes != 1<<20 || rt.Shards != 8 || rt.DemoteAfterDays != 2 {
		t.Fatalf("tier runtime knobs lost in round-trip: %+v", rt)
	}

	// Legacy form: strip every placement field.
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	for _, sf := range raw["storage_formats"].([]any) {
		delete(sf.(map[string]any), "placement")
	}
	legacy, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	old, err := FromBytes(legacy)
	if err != nil {
		t.Fatal(err)
	}
	for i, sf := range old.Derivation.SFs {
		want := PlaceFast
		if len(sf.Consumers) == 0 {
			want = PlaceCold
		}
		if sf.Placement != want {
			t.Fatalf("legacy SF%d (consumers %v) placed %v, want %v", i, sf.Consumers, sf.Placement, want)
		}
	}

	// An unknown placement is rejected, not guessed.
	bad := bytes.Replace(b, []byte(`"placement": "fast"`), []byte(`"placement": "warm"`), 1)
	if !bytes.Equal(bad, b) {
		if _, err := FromBytes(bad); err == nil {
			t.Fatal("unknown placement accepted")
		}
	}

	// Placements() maps format keys to tiers, fast winning duplicates.
	pm := cfg.Placements()
	if len(pm) == 0 {
		t.Fatal("Placements() empty")
	}
	for _, sf := range cfg.Derivation.SFs {
		if _, ok := pm[sf.SF.Key()]; !ok {
			t.Fatalf("Placements() missing %q", sf.SF.Key())
		}
	}
}
