package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/format"
	"repro/internal/ops"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	fp := newFakeProfiler(21)
	var consumers []Consumer
	for _, op := range []ops.Operator{ops.Diff{}, ops.Motion{}, ops.OCR{}} {
		for _, a := range []float64{0.9, 0.7} {
			consumers = append(consumers, Consumer{Op: op, Target: a, Prof: fp})
		}
	}
	cfg, err := Configure(consumers, Options{StorageProfiler: fp, LifespanDays: 5})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "config.json")
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2 := cfg.Derivation, got.Derivation
	if len(d1.Choices) != len(d2.Choices) || len(d1.SFs) != len(d2.SFs) || d1.Golden != d2.Golden {
		t.Fatalf("structure mismatch: %d/%d choices, %d/%d SFs", len(d1.Choices), len(d2.Choices), len(d1.SFs), len(d2.SFs))
	}
	for i := range d1.Choices {
		if d1.Choices[i].CF != d2.Choices[i].CF {
			t.Fatalf("choice %d CF %v != %v", i, d2.Choices[i].CF, d1.Choices[i].CF)
		}
		if d1.Choices[i].Consumer.Op.Name() != d2.Choices[i].Consumer.Op.Name() {
			t.Fatalf("choice %d op mismatch", i)
		}
		if d1.Subs[i] != d2.Subs[i] {
			t.Fatalf("subscription %d mismatch", i)
		}
	}
	for i := range d1.SFs {
		if d1.SFs[i].SF != d2.SFs[i].SF {
			t.Fatalf("SF %d: %v != %v", i, d2.SFs[i].SF, d1.SFs[i].SF)
		}
	}
	if got.Erosion == nil || got.Erosion.K != cfg.Erosion.K {
		t.Fatal("erosion plan lost")
	}
	// BindingFor works on the loaded configuration.
	cf, sf, err := got.BindingFor("Motion", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !sf.Satisfies(cf) {
		t.Fatal("loaded binding violates R1")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Unknown operator name.
	os.WriteFile(bad, []byte(`{"consumers":[{"op":"Nope","target":0.9,"cf":"best-720p-1-100%"}],"storage_formats":[],"subscriptions":[]}`), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("unknown operator accepted")
	}
}

func TestParseCoding(t *testing.T) {
	for _, c := range []format.Coding{
		format.RawCoding,
		{Speed: format.SpeedSlowest, KeyframeI: 250},
		{Speed: format.SpeedFastest, KeyframeI: 5},
	} {
		got, err := parseCoding(c.String())
		if err != nil || got != c {
			t.Errorf("parseCoding(%q) = %v, %v", c.String(), got, err)
		}
	}
	if _, err := parseCoding("10-hyperspeed"); err == nil {
		t.Error("bad speed step accepted")
	}
	if _, err := parseCoding("junk"); err == nil {
		t.Error("junk coding accepted")
	}
}

func TestStorageFormatsAccessor(t *testing.T) {
	fp := newFakeProfiler(5)
	cfg, err := Configure([]Consumer{{Op: ops.Diff{}, Target: 0.8, Prof: fp}}, Options{StorageProfiler: fp})
	if err != nil {
		t.Fatal(err)
	}
	sfs := cfg.StorageFormats()
	if len(sfs) != len(cfg.Derivation.SFs) {
		t.Fatalf("StorageFormats length %d", len(sfs))
	}
}
