package core

import (
	"bytes"
	"reflect"
	"slices"
	"testing"
	"time"

	"repro/internal/ops"
)

// fuzzSeedConfig builds a small but fully populated configuration —
// consumers, storage formats, an erosion plan, and every Runtime knob —
// whose serialised form seeds the fuzzer.
func fuzzSeedConfig(tb testing.TB) *Config {
	tb.Helper()
	fp := newFakeProfiler(9)
	cfg, err := Configure([]Consumer{
		{Op: ops.Motion{}, Target: 0.9, Prof: fp},
		{Op: ops.Diff{}, Target: 0.7, Prof: fp},
	}, Options{StorageProfiler: fp, LifespanDays: 3})
	if err != nil {
		tb.Fatal(err)
	}
	cfg.Runtime = Runtime{
		QueryWorkers:     8,
		CacheBytes:       1 << 30,
		IngestQueueDepth: 6,
		ErodeInterval:    90 * time.Second,
		Tenants: []TenantQuota{
			{Name: "default", Weight: 1},
			{Name: "gold", Weight: 4, MaxInFlight: 8, MaxQueue: 16, RatePerSec: 50, Burst: 100, BytesPerSec: 1 << 20},
		},
	}
	return cfg
}

// runtimeEqual compares Runtime values field-wise: the Tenants slice makes
// the struct non-comparable, and a nil slice must equal an empty one (JSON
// omits both identically).
func runtimeEqual(a, b Runtime) bool {
	ta, tb := a.Tenants, b.Tenants
	a.Tenants, b.Tenants = nil, nil
	if !reflect.DeepEqual(a, b) {
		return false
	}
	return slices.Equal(ta, tb)
}

// FuzzConfigRoundTrip proves configuration persistence never panics on
// arbitrary input, and that anything FromBytes accepts re-serialises to a
// stable fixed point: marshal(parse(b)) == marshal(parse(marshal(parse(b)))).
func FuzzConfigRoundTrip(f *testing.F) {
	seed, err := fuzzSeedConfig(f).MarshalBytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"storage_formats":[{"fidelity":"junk","coding":"junk"}]}`))
	f.Add([]byte(`{"consumers":[{"op":"Nope"}],"subscriptions":[4]}`))
	f.Add(bytes.Replace(seed, []byte(`"golden"`), []byte(`"golden_broken"`), 1))
	f.Fuzz(func(t *testing.T, b []byte) {
		cfg, err := FromBytes(b) // must never panic
		if err != nil {
			return
		}
		out, err := cfg.MarshalBytes()
		if err != nil {
			t.Fatalf("parsed config failed to marshal: %v", err)
		}
		cfg2, err := FromBytes(out)
		if err != nil {
			t.Fatalf("marshalled config failed to re-parse: %v", err)
		}
		out2, err := cfg2.MarshalBytes()
		if err != nil {
			t.Fatalf("re-parsed config failed to marshal: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round trip is not a fixed point:\n%s\nvs\n%s", out, out2)
		}
		if !runtimeEqual(cfg2.Runtime, cfg.Runtime) {
			t.Fatalf("Runtime knobs drifted: %+v vs %+v", cfg2.Runtime, cfg.Runtime)
		}
	})
}

// TestRuntimeKnobsRoundTrip pins the exact persistence of every Runtime
// knob, including the live-serving ones this PR adds.
func TestRuntimeKnobsRoundTrip(t *testing.T) {
	cfg := fuzzSeedConfig(t)
	b, err := cfg.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if !runtimeEqual(got.Runtime, cfg.Runtime) {
		t.Fatalf("Runtime = %+v, want %+v", got.Runtime, cfg.Runtime)
	}
	if got.Runtime.IngestQueueDepth != 6 || got.Runtime.ErodeInterval != 90*time.Second {
		t.Fatalf("live knobs lost: %+v", got.Runtime)
	}
	if len(got.Runtime.Tenants) != 2 || got.Runtime.Tenants[1].Weight != 4 ||
		got.Runtime.Tenants[1].RatePerSec != 50 || got.Runtime.Tenants[1].BytesPerSec != 1<<20 {
		t.Fatalf("tenant quotas lost: %+v", got.Runtime.Tenants)
	}
	// A zero Runtime stays omitted from the JSON entirely.
	cfg.Runtime = Runtime{}
	b, err = cfg.MarshalBytes()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("runtime")) {
		t.Fatalf("zero Runtime serialised: %s", b)
	}
}
