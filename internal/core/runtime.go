package core

import "time"

// Runtime holds execution knobs that travel with a configuration but do
// not affect format derivation: how wide the query engine's worker pool
// runs, how much memory the retrieval cache may hold, and how the live
// serving lifecycle (streaming ingest, background erosion) paces itself.
// They persist with the configuration (and therefore with each epoch) so a
// reopened store serves queries exactly as configured.
type Runtime struct {
	// QueryWorkers bounds the query engine's worker pool: epoch spans and
	// per-stage segment retrievals execute concurrently up to this width.
	// Zero selects runtime.GOMAXPROCS at execution time; one forces fully
	// sequential execution.
	QueryWorkers int
	// CacheBytes is the retrieval cache budget in bytes: retrieved
	// segments are kept in their consumption format and evicted least
	// recently used once the budget is exceeded. Zero means "unspecified":
	// no cache on open, and an operator-enabled cache survives a
	// reconfiguration. Negative explicitly disables on Reconfigure.
	CacheBytes int64
	// ResultsBytes is the materialized-results budget in bytes: finalized
	// per-segment operator outputs are stored in the kvstore and indexed
	// least recently used up to this budget, so repeated analytics serve
	// stored detections instead of re-decoding and re-classifying. Zero
	// means "unspecified": no materialization on open, and an
	// operator-enabled store survives a reconfiguration. Negative
	// explicitly disables on Reconfigure (and purges stored entries, so a
	// later re-enable cannot adopt results that missed invalidations).
	ResultsBytes int64
	// IngestQueueDepth bounds each live stream's pending-segment queue:
	// Submit blocks (backpressure toward the camera) once this many
	// segments await transcoding. Zero selects ingest.DefaultQueueDepth.
	IngestQueueDepth int
	// ErodeInterval is the background erosion daemon's pass interval. Zero
	// means the daemon is not started automatically; the server's
	// StartErosionDaemon uses it as the default when no interval is given.
	ErodeInterval time.Duration
	// FastTierBytes is the fast disk tier's byte budget: once a demotion
	// pass settles, the fast tier holds at most this many live bytes,
	// with the overflow migrated to the cold tier oldest-first. Only
	// segment replicas demote, so the budget has a small floor: server
	// metadata (epoch configurations, stream positions) always stays
	// fast. Zero means "unspecified" (an operator-set budget survives a
	// reconfiguration); negative explicitly removes the budget.
	FastTierBytes int64
	// Shards is the per-tier kvstore shard count used when a fresh store
	// is created. An existing store's shard count is discovered from its
	// on-disk layout — sharding is a creation-time property — so this
	// knob only shapes new stores. Zero selects the engine default.
	Shards int
	// DemoteAfterDays ages segments off the fast tier: a demotion pass
	// migrates segments at least this many days old to the cold tier
	// before erosion runs. Zero means "unspecified" (no age-based
	// demotion unless the operator sets one); negative explicitly
	// disables.
	DemoteAfterDays int
}
