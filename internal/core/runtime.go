package core

import "time"

// Runtime holds execution knobs that travel with a configuration but do
// not affect format derivation: how wide the query engine's worker pool
// runs, how much memory the retrieval cache may hold, and how the live
// serving lifecycle (streaming ingest, background erosion) paces itself.
// They persist with the configuration (and therefore with each epoch) so a
// reopened store serves queries exactly as configured.
type Runtime struct {
	// QueryWorkers bounds the query engine's worker pool: epoch spans and
	// per-stage segment retrievals execute concurrently up to this width.
	// Zero selects runtime.GOMAXPROCS at execution time; one forces fully
	// sequential execution.
	QueryWorkers int
	// CacheBytes is the retrieval cache budget in bytes: retrieved
	// segments are kept in their consumption format and evicted least
	// recently used once the budget is exceeded. Zero means "unspecified":
	// no cache on open, and an operator-enabled cache survives a
	// reconfiguration. Negative explicitly disables on Reconfigure.
	CacheBytes int64
	// ResultsBytes is the materialized-results budget in bytes: finalized
	// per-segment operator outputs are stored in the kvstore and indexed
	// least recently used up to this budget, so repeated analytics serve
	// stored detections instead of re-decoding and re-classifying. Zero
	// means "unspecified": no materialization on open, and an
	// operator-enabled store survives a reconfiguration. Negative
	// explicitly disables on Reconfigure (and purges stored entries, so a
	// later re-enable cannot adopt results that missed invalidations).
	ResultsBytes int64
	// IngestQueueDepth bounds each live stream's pending-segment queue:
	// Submit blocks (backpressure toward the camera) once this many
	// segments await transcoding. Zero selects ingest.DefaultQueueDepth.
	IngestQueueDepth int
	// ErodeInterval is the background erosion daemon's pass interval. Zero
	// means the daemon is not started automatically; the server's
	// StartErosionDaemon uses it as the default when no interval is given.
	ErodeInterval time.Duration
	// FastTierBytes is the fast disk tier's byte budget: once a demotion
	// pass settles, the fast tier holds at most this many live bytes,
	// with the overflow migrated to the cold tier oldest-first. Only
	// segment replicas demote, so the budget has a small floor: server
	// metadata (epoch configurations, stream positions) always stays
	// fast. Zero means "unspecified" (an operator-set budget survives a
	// reconfiguration); negative explicitly removes the budget.
	FastTierBytes int64
	// Shards is the per-tier kvstore shard count used when a fresh store
	// is created. An existing store's shard count is discovered from its
	// on-disk layout — sharding is a creation-time property — so this
	// knob only shapes new stores. Zero selects the engine default.
	Shards int
	// DemoteAfterDays ages segments off the fast tier: a demotion pass
	// migrates segments at least this many days old to the cold tier
	// before erosion runs. Zero means "unspecified" (no age-based
	// demotion unless the operator sets one); negative explicitly
	// disables.
	DemoteAfterDays int
	// Tenants is the serving layer's per-tenant admission envelope: one
	// quota per tenant of the HTTP API, persisted with the configuration
	// so a restarted server admits exactly as configured. The entry named
	// "default" governs keyless requests. An empty list serves everything
	// as one unlimited default tenant.
	Tenants []TenantQuota
}

// isZero reports whether no Runtime knob is set — the slice field makes
// Runtime non-comparable, so persistence cannot use r != (Runtime{}).
func (r Runtime) isZero() bool {
	return r.QueryWorkers == 0 && r.CacheBytes == 0 && r.ResultsBytes == 0 &&
		r.IngestQueueDepth == 0 && r.ErodeInterval == 0 && r.FastTierBytes == 0 &&
		r.Shards == 0 && r.DemoteAfterDays == 0 && len(r.Tenants) == 0
}

// TenantQuota is one tenant's admission envelope in the HTTP serving
// layer: its fair-share weight in the weighted-fair admission gate plus
// the rate, concurrency and byte quotas enforced before a request may
// wait for an execution slot. Zero values mean "no limit" (and weight 1),
// so a bare {Name: "x"} tenant is isolated from its neighbours by the
// fair queue but otherwise unconstrained.
type TenantQuota struct {
	// Name identifies the tenant; API keys resolve to it. "default" is
	// the tenant of keyless requests.
	Name string
	// Weight is the tenant's fair share: the admission gate drains
	// per-tenant queues round-robin, granting each backlogged tenant
	// Weight slots per round. Zero selects 1.
	Weight int
	// MaxInFlight caps the tenant's concurrently executing requests,
	// independent of the gate-wide limit. Zero means no per-tenant cap.
	MaxInFlight int
	// MaxQueue bounds the tenant's private waiting room; one more and the
	// tenant (alone) is answered 429. Zero inherits the gate-wide
	// MaxQueue; negative means no waiting room.
	MaxQueue int
	// RatePerSec is the tenant's sustained request-admission rate (token
	// bucket, refilled continuously). Zero means unlimited.
	RatePerSec float64
	// Burst is the rate bucket's depth — how many requests may arrive
	// back-to-back after idleness. Zero derives max(1, ceil(RatePerSec)).
	Burst int
	// BytesPerSec budgets the tenant's traffic volume: response bytes
	// streamed plus segment bytes ingested, charged against a token
	// bucket after each request. Zero means unlimited.
	BytesPerSec int64
}
