package core

// Runtime holds execution knobs that travel with a configuration but do
// not affect format derivation: how wide the query engine's worker pool
// runs and how much memory the retrieval cache may hold. They persist with
// the configuration (and therefore with each epoch) so a reopened store
// serves queries exactly as configured.
type Runtime struct {
	// QueryWorkers bounds the query engine's worker pool: epoch spans and
	// per-stage segment retrievals execute concurrently up to this width.
	// Zero selects runtime.GOMAXPROCS at execution time; one forces fully
	// sequential execution.
	QueryWorkers int
	// CacheBytes is the retrieval cache budget in bytes: retrieved
	// segments are kept in their consumption format and evicted least
	// recently used once the budget is exceeded. Zero means "unspecified":
	// no cache on open, and an operator-enabled cache survives a
	// reconfiguration. Negative explicitly disables on Reconfigure.
	CacheBytes int64
}
