package core

import "time"

// Runtime holds execution knobs that travel with a configuration but do
// not affect format derivation: how wide the query engine's worker pool
// runs, how much memory the retrieval cache may hold, and how the live
// serving lifecycle (streaming ingest, background erosion) paces itself.
// They persist with the configuration (and therefore with each epoch) so a
// reopened store serves queries exactly as configured.
type Runtime struct {
	// QueryWorkers bounds the query engine's worker pool: epoch spans and
	// per-stage segment retrievals execute concurrently up to this width.
	// Zero selects runtime.GOMAXPROCS at execution time; one forces fully
	// sequential execution.
	QueryWorkers int
	// CacheBytes is the retrieval cache budget in bytes: retrieved
	// segments are kept in their consumption format and evicted least
	// recently used once the budget is exceeded. Zero means "unspecified":
	// no cache on open, and an operator-enabled cache survives a
	// reconfiguration. Negative explicitly disables on Reconfigure.
	CacheBytes int64
	// IngestQueueDepth bounds each live stream's pending-segment queue:
	// Submit blocks (backpressure toward the camera) once this many
	// segments await transcoding. Zero selects ingest.DefaultQueueDepth.
	IngestQueueDepth int
	// ErodeInterval is the background erosion daemon's pass interval. Zero
	// means the daemon is not started automatically; the server's
	// StartErosionDaemon uses it as the default when no interval is given.
	ErodeInterval time.Duration
}
