package core

import (
	"strings"
	"testing"

	"repro/internal/format"
	"repro/internal/ops"
	"repro/internal/profile"
	"repro/internal/vidsim"
)

func newRealProfiler(t *testing.T, scene string) *profile.Profiler {
	t.Helper()
	sc, err := vidsim.DatasetByName(scene)
	if err != nil {
		t.Fatal(err)
	}
	p := profile.New(sc)
	p.ClipFrames = 120
	return p
}

// fakeConsumers builds a consumer set over the fake profiler and derives
// their CFs.
func fakeConsumers(fp *fakeProfiler, targets []float64) []ConsumptionChoice {
	var consumers []Consumer
	operators := ops.All()
	for i, tg := range targets {
		consumers = append(consumers, Consumer{Op: operators[i%len(operators)], Target: tg, Prof: fp})
	}
	return DeriveConsumptionFormats(consumers)
}

func TestDeriveStorageFormatsInvariants(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		fp := newFakeProfiler(seed)
		choices := fakeConsumers(fp, []float64{0.95, 0.9, 0.8, 0.7, 0.95, 0.9, 0.8, 0.7, 0.6, 0.5})
		d, err := DeriveStorageFormats(choices, SFOptions{Profiler: fp})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(fp, 0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The golden format must be richer than or equal to every CF.
		g := d.SFs[d.Golden].SF
		for _, ch := range choices {
			if !g.Satisfies(ch.CF) {
				t.Fatalf("seed %d: golden %v does not satisfy %v", seed, g, ch.CF)
			}
		}
		// Every consumer has a subscription.
		for i, s := range d.Subs {
			if s < 0 || s >= len(d.SFs) {
				t.Fatalf("seed %d: consumer %d unsubscribed", seed, i)
			}
		}
	}
}

func TestCoalescingReducesIngestCost(t *testing.T) {
	fp := newFakeProfiler(4)
	choices := fakeConsumers(fp, []float64{0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6})
	// The un-coalesced cost: one SF per unique CF plus golden.
	cfs, _ := UniqueCFs(choices)
	var initialIngest float64
	for _, cf := range cfs {
		sf := sfFor(fp, cf.Fidelity, nil, format.SpeedSlowest)
		initialIngest += fp.ProfileStorage(sf).IngestSec
	}
	d, err := DeriveStorageFormats(choices, SFOptions{Profiler: fp})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.SFs) >= len(cfs)+1 && d.Rounds == 0 {
		t.Logf("no coalescing occurred (acceptable if no free pairs); SFs=%d CFs=%d", len(d.SFs), len(cfs))
	}
	if d.TotalIngestSec() > initialIngest+fp.ProfileStorage(d.SFs[d.Golden].SF).IngestSec+1e-12 {
		t.Fatalf("coalescing increased ingest: %.3f > %.3f", d.TotalIngestSec(), initialIngest)
	}
}

func TestIngestBudgetRespected(t *testing.T) {
	fp := newFakeProfiler(9)
	choices := fakeConsumers(fp, []float64{0.95, 0.9, 0.8, 0.7, 0.95, 0.9, 0.8, 0.7})
	free, err := DeriveStorageFormats(choices, SFOptions{Profiler: fp})
	if err != nil {
		t.Fatal(err)
	}
	budget := free.TotalIngestSec() * 0.5
	tight, err := DeriveStorageFormats(choices, SFOptions{Profiler: fp, IngestBudgetSec: budget})
	if err != nil {
		t.Fatal(err)
	}
	if tight.TotalIngestSec() > budget+1e-12 {
		t.Fatalf("budget %.4f exceeded: %.4f", budget, tight.TotalIngestSec())
	}
	if err := tight.Validate(fp, budget); err != nil {
		t.Fatal(err)
	}
	// Table 4's shape: meeting a tighter ingest budget costs storage.
	if tight.TotalBytesPerSec() < free.TotalBytesPerSec()-1e-9 {
		t.Fatalf("tighter budget reduced storage: %.0f < %.0f", tight.TotalBytesPerSec(), free.TotalBytesPerSec())
	}
}

func TestImpossibleBudgetErrors(t *testing.T) {
	fp := newFakeProfiler(2)
	choices := fakeConsumers(fp, []float64{0.95, 0.9})
	_, err := DeriveStorageFormats(choices, SFOptions{Profiler: fp, IngestBudgetSec: 1e-12})
	if err == nil {
		t.Fatal("impossibly small ingest budget accepted")
	}
	if !strings.Contains(err.Error(), "budget") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

// TestHeuristicCloseToExhaustive reproduces §6.4's validation: heuristic
// coalescing should land at (nearly) the storage cost of exhaustive
// partition enumeration. The exhaustive search includes the heuristic's
// partition, so it can only be better or equal.
func TestHeuristicCloseToExhaustive(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		fp := newFakeProfiler(seed + 40)
		choices := fakeConsumers(fp, []float64{0.95, 0.85, 0.75, 0.65, 0.6})
		h, err := DeriveStorageFormats(choices, SFOptions{Profiler: fp})
		if err != nil {
			t.Fatal(err)
		}
		ex, partitions := ExhaustiveStorageSearch(choices, fp)
		if partitions < 1 {
			t.Fatal("no partitions enumerated")
		}
		if ex.TotalBytesPerSec() > h.TotalBytesPerSec()+1e-9 {
			t.Fatalf("seed %d: exhaustive (%.0f B/s) worse than heuristic (%.0f B/s)?",
				seed, ex.TotalBytesPerSec(), h.TotalBytesPerSec())
		}
		if h.TotalBytesPerSec() > 1.3*ex.TotalBytesPerSec() {
			t.Fatalf("seed %d: heuristic %.0f B/s far above exhaustive %.0f B/s",
				seed, h.TotalBytesPerSec(), ex.TotalBytesPerSec())
		}
	}
}

// TestDistanceStrategyWorseOrEqual reproduces §6.4's comparison: the
// distance-based strategy overlooks resource impacts and tends to cost more
// storage than the heuristic.
func TestDistanceStrategyWorseOrEqual(t *testing.T) {
	worse := 0
	trials := 8
	for seed := int64(0); seed < int64(trials); seed++ {
		fp := newFakeProfiler(seed + 60)
		choices := fakeConsumers(fp, []float64{0.95, 0.9, 0.8, 0.7, 0.95, 0.9, 0.8, 0.7, 0.6})
		h, err := DeriveStorageFormats(choices, SFOptions{Profiler: fp, Strategy: HeuristicSelection})
		if err != nil {
			t.Fatal(err)
		}
		dd, err := DeriveStorageFormats(choices, SFOptions{Profiler: fp, Strategy: DistanceSelection})
		if err != nil {
			t.Fatal(err)
		}
		if err := dd.Validate(fp, 0); err != nil {
			t.Fatalf("distance strategy violated requirements: %v", err)
		}
		if dd.TotalBytesPerSec() >= h.TotalBytesPerSec()-1e-9 {
			worse++
		}
	}
	if worse < trials/2 {
		t.Fatalf("distance-based beat heuristic in %d/%d trials; expected it to cost more storage", trials-worse, trials)
	}
}

func TestRealStorageDerivation(t *testing.T) {
	p := newRealProfiler(t, "jackson")
	consumers := []Consumer{
		{Op: ops.Diff{}, Target: 0.9, Prof: p},
		{Op: ops.SNN{}, Target: 0.9, Prof: p},
		{Op: ops.Motion{}, Target: 0.8, Prof: p},
	}
	choices := DeriveConsumptionFormats(consumers)
	d, err := DeriveStorageFormats(choices, SFOptions{Profiler: p})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(p, 0); err != nil {
		t.Fatal(err)
	}
	if len(d.SFs) < 1 || len(d.SFs) > len(choices)+1 {
		t.Fatalf("implausible SF count %d", len(d.SFs))
	}
}
