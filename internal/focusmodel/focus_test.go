package focusmodel

import (
	"math"
	"strings"
	"testing"
)

// TestPaperNumbers pins the §7 figures: r = 3 at 1% selectivity, 1.2 at
// 10%, 1.04 at 50% with α = 1/48.
func TestPaperNumbers(t *testing.T) {
	cases := []struct{ f, want float64 }{
		{0.01, 3.08},
		{0.10, 1.21},
		{0.50, 1.04},
	}
	for _, c := range cases {
		got := QueryDelayRatio(Alpha, c.f)
		if math.Abs(got-c.want) > 0.01 {
			t.Errorf("r(f=%.2f) = %.3f, want %.2f", c.f, got, c.want)
		}
	}
}

func TestRatioMonotoneInSelectivity(t *testing.T) {
	prev := math.Inf(1)
	for _, f := range []float64{0.001, 0.01, 0.1, 0.5, 1.0} {
		r := QueryDelayRatio(Alpha, f)
		if r >= prev {
			t.Fatalf("ratio not decreasing with selectivity at f=%v", f)
		}
		if r < 1 {
			t.Fatalf("ratio below 1 at f=%v: VStore cannot be faster than Focus at query time", f)
		}
		prev = r
	}
	if QueryDelayRatio(Alpha, 0) < 1e17 {
		t.Fatal("zero selectivity must blow up")
	}
}

func TestSweepAndRender(t *testing.T) {
	rows := Sweep(Alpha, []float64{0.01, 0.5})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := Render(Alpha, rows, DefaultIngestCosts())
	for _, want := range []string{"r = 3.08", "r = 1.04", "$25", "$67"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestIngestCostGap(t *testing.T) {
	c := DefaultIngestCosts()
	gap := c.FocusUSDPerStream / c.VStoreUSDPerStream
	if gap < 2 || gap > 3 {
		t.Fatalf("ingest cost gap %.1fx outside the paper's 2-3x", gap)
	}
}
