// Package focusmodel reproduces §7's qualitative comparison against Focus
// (OSDI'18), which runs the cheap NN of an object-detection cascade at
// ingestion time. The comparison is the paper's own analytic model: VStore
// runs both NNs at query time, so its query delay relative to Focus is
// r = 1 + α/f, where α is the full-NN/cheap-NN speed ratio and f the frame
// selectivity of the cheap NN.
package focusmodel

import "fmt"

// Alpha is the speed ratio between the full NN and the cheap NN used by
// Focus (the paper cites α = 1/48).
const Alpha = 1.0 / 48

// QueryDelayRatio returns r = 1 + α/f: VStore's query delay relative to
// Focus at frame selectivity f.
func QueryDelayRatio(alpha, selectivity float64) float64 {
	if selectivity <= 0 {
		return 1e18
	}
	return 1 + alpha/selectivity
}

// IngestCostComparison summarises §7's ingestion-cost argument.
type IngestCostComparison struct {
	// VStoreUSDPerStream is the estimated transcoding hardware cost per
	// ingested stream ("less than a few dozen dollars").
	VStoreUSDPerStream float64
	// FocusUSDPerStream is the ingest-GPU cost per stream ($4000 GPU / 60
	// streams ≈ $60).
	FocusUSDPerStream float64
}

// DefaultIngestCosts returns the paper's §7 estimates.
func DefaultIngestCosts() IngestCostComparison {
	return IngestCostComparison{VStoreUSDPerStream: 25, FocusUSDPerStream: 4000.0 / 60}
}

// Row is one selectivity point of the comparison table.
type Row struct {
	Selectivity float64
	Ratio       float64
}

// Sweep evaluates the delay ratio over the paper's selectivity points.
func Sweep(alpha float64, selectivities []float64) []Row {
	out := make([]Row, 0, len(selectivities))
	for _, f := range selectivities {
		out = append(out, Row{Selectivity: f, Ratio: QueryDelayRatio(alpha, f)})
	}
	return out
}

// Render prints the §7 comparison.
func Render(alpha float64, rows []Row, costs IngestCostComparison) string {
	s := fmt.Sprintf("§7 comparison vs Focus (α = %.4f)\n", alpha)
	s += fmt.Sprintf("ingest hardware per stream: VStore ~$%.0f, Focus ~$%.0f (%.1fx)\n",
		costs.VStoreUSDPerStream, costs.FocusUSDPerStream, costs.FocusUSDPerStream/costs.VStoreUSDPerStream)
	s += "query delay ratio r = 1 + α/f:\n"
	for _, r := range rows {
		s += fmt.Sprintf("  f = %4.1f%%  ->  r = %.2f\n", r.Selectivity*100, r.Ratio)
	}
	return s
}
