// Package vidsim synthesises the video datasets used in the evaluation. Real
// camera feeds (jackson, miami, tucson, dashcam, park, airport) are not
// redistributable, so each dataset is a parameterised scene model that
// renders deterministic YUV 4:2:0 frames: a textured background (panning for
// dash cameras), sensor noise, and moving objects — cars carrying bar-coded
// license plates, and pedestrians — with exact per-frame ground truth.
//
// Rendering is a pure function of (scene, frame index): any frame can be
// produced independently, which is what lets ingestion, profiling and
// queries synthesise video on demand without storing raw sources.
package vidsim

import (
	"fmt"
	"math"

	"repro/internal/format"
	"repro/internal/frame"
)

// FPS is the native frame rate of every ingested stream (720p30 as in §1).
const FPS = 30

// Scale is the reproduction's internal pixel scale: one internal pixel per
// Scale nominal pixels in each dimension. 720p is rendered as a 160×90 luma
// plane. All knob semantics are relative, so shapes are preserved while the
// pixel work stays tractable.
const Scale = 8

// Dims returns the internal luma dimensions for a nominal vertical
// resolution, preserving a 16:9 aspect ratio and even dimensions.
func Dims(res format.Resolution) (w, h int) {
	h = int(res) / Scale
	if h < 2 {
		h = 2
	}
	h += h & 1
	w = h * 16 / 9
	w += w & 1
	return w, h
}

// Kind distinguishes ground-truth object classes.
type Kind int

// Object kinds.
const (
	Car Kind = iota
	Pedestrian
)

func (k Kind) String() string {
	if k == Car {
		return "car"
	}
	return "pedestrian"
}

// PlateDigits is the number of digits on every rendered license plate.
const PlateDigits = 5

// Object is one ground-truth scene object in a specific frame. Geometry is
// in the coordinates of the full-fidelity internal frame (Dims(720)).
type Object struct {
	ID     int
	Kind   Kind
	X, Y   int // top-left corner
	W, H   int
	VX     float64 // velocity in pixels/frame
	Plate  string  // PlateDigits digits; empty if the car has no readable plate
	Red    bool    // red-coloured object (for the Color operator)
	Luma   byte
	Cb, Cr byte
}

// Truth is the ground truth for one frame.
type Truth struct {
	Frame   int
	Objects []Object
}

// Scene parameterises one dataset.
type Scene struct {
	Name        string
	Seed        uint64
	CarRate     float64 // expected cars entering per second
	PedRate     float64 // expected pedestrians entering per second
	CarSpeed    float64 // mean pixels/frame horizontal speed at full res
	Pan         float64 // background pan in pixels/frame (dash cameras)
	NoiseSigma  int     // temporal sensor noise amplitude
	PlateProb   float64 // fraction of cars with a readable plate
	RedProb     float64 // fraction of red cars
	TextureAmpl int     // background texture contrast
}

// Datasets are the six evaluation scenes (§6.1), ordered as in the paper.
var Datasets = []Scene{
	{Name: "jackson", Seed: 0xA11CE, CarRate: 0.40, PedRate: 0.15, CarSpeed: 1.0, NoiseSigma: 2, PlateProb: 0.85, RedProb: 0.25, TextureAmpl: 36},
	{Name: "miami", Seed: 0xBEAC4, CarRate: 0.20, PedRate: 0.80, CarSpeed: 0.8, NoiseSigma: 3, PlateProb: 0.80, RedProb: 0.20, TextureAmpl: 40},
	{Name: "tucson", Seed: 0x70C50, CarRate: 0.50, PedRate: 0.25, CarSpeed: 1.1, NoiseSigma: 2, PlateProb: 0.85, RedProb: 0.30, TextureAmpl: 32},
	{Name: "dashcam", Seed: 0xDA5CA, CarRate: 0.60, PedRate: 0.10, CarSpeed: 1.6, Pan: 1.2, NoiseSigma: 4, PlateProb: 0.75, RedProb: 0.25, TextureAmpl: 48},
	{Name: "park", Seed: 0x9A4C0, CarRate: 0.08, PedRate: 0.15, CarSpeed: 0.5, NoiseSigma: 1, PlateProb: 0.90, RedProb: 0.15, TextureAmpl: 24},
	{Name: "airport", Seed: 0xA1590, CarRate: 0.15, PedRate: 0.30, CarSpeed: 0.7, NoiseSigma: 2, PlateProb: 0.90, RedProb: 0.20, TextureAmpl: 28},
}

// DatasetByName returns the named dataset scene.
func DatasetByName(name string) (Scene, error) {
	for _, s := range Datasets {
		if s.Name == name {
			return s, nil
		}
	}
	return Scene{}, fmt.Errorf("vidsim: unknown dataset %q", name)
}

// Source renders frames and ground truth for one scene at the full internal
// fidelity (720p equivalent). Sources are stateless and safe for concurrent
// use.
type Source struct {
	Scene Scene
	W, H  int
}

// NewSource returns a Source for the scene at full internal resolution.
func NewSource(sc Scene) *Source {
	w, h := Dims(720)
	return &Source{Scene: sc, W: w, H: h}
}

// splitmix64 is the deterministic hash behind all scene randomness.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func (s *Source) hash(vals ...uint64) uint64 {
	h := s.Scene.Seed
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return h
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// carLife describes one car's deterministic trajectory, derived purely from
// its spawn index.
type carLife struct {
	obj        Object
	start, end float64 // active time window in seconds
	x0         float64 // x position at start (off-screen)
	lane       float64 // y centre as a fraction of height
}

const (
	carStream = 1
	pedStream = 2
)

// spawnTime returns the deterministic entry time (seconds) of the k-th
// object of a stream with the given rate: a jittered regular process.
func (s *Source) spawnTime(stream uint64, k int, rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	base := float64(k) / rate
	jit := unit(s.hash(stream, uint64(k), 0xF17)) * 0.8 / rate
	return base + jit
}

func (s *Source) car(k int) carLife {
	h := func(tag uint64) uint64 { return s.hash(carStream, uint64(k), tag) }
	carH := s.H / 6
	carW := carH * 2
	speed := s.Scene.CarSpeed * (0.7 + 0.6*unit(h(1)))
	if s.Scene.Pan > 0 {
		speed += s.Scene.Pan * 0.5 // relative motion against a panning camera
	}
	dur := (float64(s.W) + float64(carW)) / speed / FPS
	start := s.spawnTime(carStream, k, s.Scene.CarRate)
	lane := 0.45 + 0.35*unit(h(2))
	plate := ""
	if unit(h(3)) < s.Scene.PlateProb {
		digits := make([]byte, PlateDigits)
		for i := range digits {
			digits[i] = byte('0' + s.hash(carStream, uint64(k), 0xD1617+uint64(i))%10)
		}
		plate = string(digits)
	}
	red := unit(h(4)) < s.Scene.RedProb
	luma := byte(60 + s.hash(carStream, uint64(k), 5)%140)
	cb, cr := byte(110+h(6)%30), byte(110+h(7)%30)
	if red {
		cb, cr = 90, 200 // strongly red in YCbCr
	}
	dir := 1.0
	if h(8)&1 == 1 {
		dir = -1
	}
	return carLife{
		obj: Object{
			ID: k, Kind: Car, W: carW, H: carH,
			VX: speed * dir, Plate: plate, Red: red,
			Luma: luma, Cb: cb, Cr: cr,
		},
		start: start, end: start + dur,
		x0:   -float64(carW),
		lane: lane,
	}
}

// Truth returns the ground truth for frame i.
func (s *Source) Truth(i int) Truth {
	t := float64(i) / FPS
	tr := Truth{Frame: i}
	// Cars: spawn index window around the current time. A car spawned at
	// index k is active in [spawn, spawn+dur]; dur is bounded, so scanning a
	// window of indices suffices.
	if s.Scene.CarRate > 0 {
		maxDur := (float64(s.W) + float64(s.H)) / (0.3 * math.Max(s.Scene.CarSpeed, 0.1)) / FPS
		lo := int((t - maxDur) * s.Scene.CarRate)
		if lo < 0 {
			lo = 0
		}
		hi := int(t*s.Scene.CarRate) + 2
		for k := lo; k <= hi; k++ {
			c := s.car(k)
			if t < c.start || t >= c.end {
				continue
			}
			o := c.obj
			progress := (t - c.start) * FPS
			x := c.x0 + math.Abs(o.VX)*progress
			if o.VX < 0 {
				x = float64(s.W) - x - float64(o.W)
			}
			o.X = int(x)
			o.Y = int(c.lane*float64(s.H)) - o.H/2
			tr.Objects = append(tr.Objects, o)
		}
	}
	if s.Scene.PedRate > 0 {
		pedH := s.H / 8
		pedW := pedH / 2
		if pedW < 2 {
			pedW = 2
		}
		speed := 0.25
		dur := (float64(s.W) + float64(pedW)) / speed / FPS
		lo := int((t - dur) * s.Scene.PedRate)
		if lo < 0 {
			lo = 0
		}
		hi := int(t*s.Scene.PedRate) + 2
		for k := lo; k <= hi; k++ {
			start := s.spawnTime(pedStream, k, s.Scene.PedRate)
			if t < start || t >= start+dur {
				continue
			}
			h := s.hash(pedStream, uint64(k), 1)
			o := Object{
				ID: 1_000_000 + k, Kind: Pedestrian,
				W: pedW, H: pedH, VX: speed,
				Luma: byte(40 + h%160), Cb: byte(118 + h>>8%20), Cr: byte(118 + h>>16%20),
			}
			o.X = int(-float64(pedW) + speed*(t-start)*FPS)
			o.Y = int((0.55+0.3*unit(s.hash(pedStream, uint64(k), 2)))*float64(s.H)) - o.H
			tr.Objects = append(tr.Objects, o)
		}
	}
	return tr
}

// Frame renders frame i at full internal fidelity.
func (s *Source) Frame(i int) *frame.Frame {
	f := frame.New(s.W, s.H)
	f.PTS = i
	s.background(f, i)
	tr := s.Truth(i)
	for _, o := range tr.Objects {
		s.renderObject(f, o)
	}
	s.noise(f, i)
	return f
}

// Clip renders n consecutive frames starting at frame index start.
func (s *Source) Clip(start, n int) []*frame.Frame {
	out := make([]*frame.Frame, n)
	for i := range out {
		out[i] = s.Frame(start + i)
	}
	return out
}

// stripePeriod is the horizontal period of the background texture in pixels.
const stripePeriod = 16

// stripeLUT tabulates one period of a raised sine, scaled by amp at use
// time. A smooth stripe (rather than a sawtooth) keeps box-filter
// downscaling from aliasing the texture into blotches that would fool the
// block classifiers.
var stripeLUT = func() [stripePeriod]int {
	var lut [stripePeriod]int
	for i := range lut {
		// 512-scaled raised sine in [0,512].
		lut[i] = int(256 + 256*sinApprox(2*3.14159265*float64(i)/stripePeriod))
	}
	return lut
}()

// sinApprox is a Bhaskara-style sine approximation good to ~0.002, avoiding
// a math import in the hot path for documentation clarity only.
func sinApprox(x float64) float64 {
	const pi = 3.14159265358979
	for x > pi {
		x -= 2 * pi
	}
	for x < -pi {
		x += 2 * pi
	}
	neg := false
	if x < 0 {
		x = -x
		neg = true
	}
	v := 16 * x * (pi - x) / (5*pi*pi - 4*x*(pi-x))
	if neg {
		return -v
	}
	return v
}

// background paints a textured gradient; for panning scenes the texture
// scrolls horizontally, which is what makes dash-camera footage expensive to
// encode and hostile to background subtraction.
func (s *Source) background(f *frame.Frame, i int) {
	off := int(s.Scene.Pan * float64(i))
	amp := s.Scene.TextureAmpl
	for y := 0; y < f.H; y++ {
		base := 70 + y*40/f.H
		row := y * f.W
		for x := 0; x < f.W; x++ {
			tx := x + off
			if tx < 0 {
				tx = -tx
			}
			v := base + stripeLUT[tx%stripePeriod]*amp/1024
			f.Y[row+x] = byte(v)
		}
	}
	for i := range f.Cb {
		f.Cb[i] = 128
		f.Cr[i] = 128
	}
}

// renderObject draws the object body and, for plated cars, the bar-code
// plate whose column lumas encode the digits.
func (s *Source) renderObject(f *frame.Frame, o Object) {
	f.FillRect(o.X, o.Y, o.W, o.H, o.Luma, o.Cb, o.Cr)
	// A darker roof stripe gives cars edge structure for Contour.
	f.FillRect(o.X+1, o.Y+1, o.W-2, o.H/4, clampByte(int(o.Luma)-40), o.Cb, o.Cr)
	if o.Kind == Car && o.Plate != "" {
		s.renderPlate(f, o)
	}
}

// Plate layout constants: a plate is one bright lead-in column followed by,
// per digit, PlateDarkW dark columns encoding the digit's luma and
// PlateSepW bright separator columns. The alternating dark/bright structure
// is the high-frequency signature License detects, and the per-digit luma is
// what OCR decodes.
const (
	PlateDarkW = 3
	PlateSepW  = 2
	platePitch = PlateDarkW + PlateSepW
	plateLead  = 1
)

// PlateSepLuma is the luma of the bright separator columns.
const PlateSepLuma = 240

// PlateGeometry returns the plate rectangle for a car object, in the same
// coordinates as the object. The plate sits on the car's lower half.
func PlateGeometry(o Object) (x, y, w, h int) {
	w = plateLead + PlateDigits*platePitch
	h = 3
	x = o.X + (o.W-w)/2
	y = o.Y + o.H - h - 1
	return
}

// DigitLuma returns the luma level that encodes digit d on a plate column.
// Levels are 18 apart starting at 20, keeping every digit at least 58 below
// the separator brightness so boundaries stay detectable after moderate
// rescaling and quantisation.
func DigitLuma(d byte) byte { return byte(20 + int(d-'0')*18) }

func (s *Source) renderPlate(f *frame.Frame, o Object) {
	x, y, _, h := PlateGeometry(o)
	f.FillRect(x, y, plateLead, h, PlateSepLuma, 128, 128)
	for di := 0; di < len(o.Plate); di++ {
		cx := x + plateLead + di*platePitch
		f.FillRect(cx, y, PlateDarkW, h, DigitLuma(o.Plate[di]), 128, 128)
		f.FillRect(cx+PlateDarkW, y, PlateSepW, h, PlateSepLuma, 128, 128)
	}
}

// noise adds deterministic temporal sensor noise.
func (s *Source) noise(f *frame.Frame, i int) {
	sig := s.Scene.NoiseSigma
	if sig <= 0 {
		return
	}
	span := uint64(2*sig + 1)
	// One hash seeds a 64-bit xorshift run per row: cheap and deterministic.
	for y := 0; y < f.H; y++ {
		r := s.hash(0x4015E, uint64(i), uint64(y))
		row := y * f.W
		for x := 0; x < f.W; x++ {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			n := int(r%span) - sig
			f.Y[row+x] = clampByte(int(f.Y[row+x]) + n)
		}
	}
}

func clampByte(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
