package vidsim

import (
	"strings"
	"testing"

	"repro/internal/format"
	"repro/internal/frame"
)

func TestDims(t *testing.T) {
	w, h := Dims(720)
	if w != 160 || h != 90 {
		t.Fatalf("Dims(720) = %dx%d, want 160x90", w, h)
	}
	for _, r := range format.Resolutions {
		w, h := Dims(r)
		if w%2 != 0 || h%2 != 0 || w < 2 || h < 2 {
			t.Errorf("Dims(%v) = %dx%d not even/positive", r, w, h)
		}
	}
	// Monotone in resolution.
	pw, ph := 0, 0
	for _, r := range format.Resolutions {
		w, h := Dims(r)
		if w < pw || h < ph {
			t.Fatalf("Dims not monotone at %v", r)
		}
		pw, ph = w, h
	}
}

func TestDatasets(t *testing.T) {
	if len(Datasets) != 6 {
		t.Fatalf("want 6 datasets, have %d", len(Datasets))
	}
	names := map[string]bool{}
	for _, d := range Datasets {
		if names[d.Name] {
			t.Fatalf("duplicate dataset %q", d.Name)
		}
		names[d.Name] = true
		if _, err := DatasetByName(d.Name); err != nil {
			t.Errorf("DatasetByName(%q): %v", d.Name, err)
		}
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Error("DatasetByName(nope) succeeded")
	}
	for _, want := range []string{"jackson", "miami", "tucson", "dashcam", "park", "airport"} {
		if !names[want] {
			t.Errorf("missing dataset %q", want)
		}
	}
}

func TestFrameDeterministic(t *testing.T) {
	s := NewSource(Datasets[0])
	a := s.Frame(123)
	b := s.Frame(123)
	if !frame.Equal(a, b) {
		t.Fatal("rendering is not deterministic")
	}
	if a.PTS != 123 {
		t.Fatalf("PTS = %d", a.PTS)
	}
}

func TestFramesDiffer(t *testing.T) {
	s := NewSource(Datasets[0])
	a := s.Frame(0)
	b := s.Frame(10)
	if frame.Equal(a, b) {
		t.Fatal("distinct frames identical; no temporal variation")
	}
}

func TestTruthDeterministicAndMoving(t *testing.T) {
	for _, sc := range Datasets {
		s := NewSource(sc)
		found := false
		for i := 0; i < 30*FPS && !found; i += 7 {
			tr1 := s.Truth(i)
			tr2 := s.Truth(i)
			if len(tr1.Objects) != len(tr2.Objects) {
				t.Fatalf("%s: truth not deterministic at frame %d", sc.Name, i)
			}
			if len(tr1.Objects) > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no objects in first 30s", sc.Name)
		}
	}
}

func TestObjectsPersistAcrossFrames(t *testing.T) {
	s := NewSource(Datasets[0])
	// Find a car and track it for a second: it must persist and move.
	var id, at int
	found := false
	for i := 0; i < 60*FPS && !found; i++ {
		for _, o := range s.Truth(i).Objects {
			if o.Kind == Car && o.X > 0 && o.X < s.W/2 {
				id, at, found = o.ID, i, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no car found")
	}
	find := func(i int) (Object, bool) {
		for _, o := range s.Truth(i).Objects {
			if o.ID == id {
				return o, true
			}
		}
		return Object{}, false
	}
	o1, ok1 := find(at)
	o2, ok2 := find(at + FPS/2)
	if !ok1 || !ok2 {
		t.Fatal("car did not persist for half a second")
	}
	if o1.X == o2.X {
		t.Fatal("car did not move")
	}
	if o1.Plate != o2.Plate {
		t.Fatal("plate changed across frames")
	}
}

func TestPlatesRendered(t *testing.T) {
	s := NewSource(Datasets[0])
	for i := 0; i < 120*FPS; i++ {
		tr := s.Truth(i)
		for _, o := range tr.Objects {
			if o.Kind != Car || o.Plate == "" {
				continue
			}
			if len(o.Plate) != PlateDigits || strings.Trim(o.Plate, "0123456789") != "" {
				t.Fatalf("bad plate %q", o.Plate)
			}
			x, y, w, h := PlateGeometry(o)
			if x < o.X || y < o.Y || x+w > o.X+o.W+1 || y+h > o.Y+o.H+1 {
				t.Fatalf("plate geometry %d,%d,%d,%d outside car %+v", x, y, w, h, o)
			}
			if x < 0 || x+w > s.W || y+h > s.H {
				continue // partially off-screen; nothing to verify in pixels
			}
			// The rendered middle column of each digit must carry the digit
			// luma (noise is applied after; tolerate its sigma).
			f := s.Frame(i)
			for di := 0; di < PlateDigits; di++ {
				want := int(DigitLuma(o.Plate[di]))
				got := int(f.At(x+plateLead+di*platePitch+1, y+1))
				d := got - want
				if d < 0 {
					d = -d
				}
				if d > s.Scene.NoiseSigma {
					t.Fatalf("frame %d digit %d: luma %d want %d±%d", i, di, got, want, s.Scene.NoiseSigma)
				}
			}
			return // one fully-visible plate verified is enough
		}
	}
	t.Fatal("no fully visible plate found in 120s")
}

func TestDashcamPans(t *testing.T) {
	dash, _ := DatasetByName("dashcam")
	park, _ := DatasetByName("park")
	sd, sp := NewSource(dash), NewSource(park)
	// Mean inter-frame difference should be much larger for the panning
	// dashcam scene than for the calm parking lot.
	dDash := frame.MeanAbsDiff(sd.Frame(100), sd.Frame(101))
	dPark := frame.MeanAbsDiff(sp.Frame(100), sp.Frame(101))
	if dDash < 2*dPark {
		t.Fatalf("dashcam motion %.2f not >> park motion %.2f", dDash, dPark)
	}
}

func TestClip(t *testing.T) {
	s := NewSource(Datasets[2])
	c := s.Clip(90, 5)
	if len(c) != 5 {
		t.Fatalf("clip length %d", len(c))
	}
	for i, f := range c {
		if f.PTS != 90+i {
			t.Fatalf("clip pts[%d] = %d", i, f.PTS)
		}
	}
}

func TestRedCarsExist(t *testing.T) {
	s := NewSource(Datasets[0])
	red := false
	for i := 0; i < 60*FPS && !red; i += 10 {
		for _, o := range s.Truth(i).Objects {
			if o.Red {
				red = true
			}
		}
	}
	if !red {
		t.Fatal("no red cars in 60s of jackson")
	}
}
