package experiments

import (
	"fmt"

	"repro/internal/format"
	"repro/internal/ops"
	"repro/internal/profile"
)

// Fig4Row is one knob setting's normalised costs and accuracy (Figure 4):
// each fidelity knob has high, complex impacts on multiple components.
type Fig4Row struct {
	Knob        string
	Value       string
	Accuracy    float64
	Ingest      float64 // normalised 0..1 within the sweep
	Storage     float64
	Retrieval   float64
	Consumption float64
}

// fig4Sweep profiles one (operator, varying knob) pair with all other knobs
// fixed, reporting costs normalised to the sweep's maximum, as the figure's
// radar axes are.
func fig4Sweep(p *profile.Profiler, op ops.Operator, base format.Fidelity, vary func(format.Fidelity, int) (format.Fidelity, string, bool), knob string) []Fig4Row {
	type raw struct {
		val                      string
		acc, ing, sto, ret, cons float64
	}
	var raws []raw
	for i := 0; ; i++ {
		fid, label, ok := vary(base, i)
		if !ok {
			break
		}
		cf := p.ProfileConsumption(op, fid)
		// Storage at identical fidelity, slowest coding (the figure fixes
		// coding knobs).
		sf := format.StorageFormat{Fidelity: fid, Coding: format.Coding{Speed: format.SpeedMedium, KeyframeI: 250}}
		sp := p.ProfileStorage(sf)
		ret := p.RetrievalSpeed(sf, fid.Sampling)
		raws = append(raws, raw{
			val: label, acc: cf.Accuracy,
			ing: sp.IngestSec, sto: sp.BytesPerSec,
			ret: 1 / ret, cons: 1 / cf.Speed,
		})
	}
	var maxIng, maxSto, maxRet, maxCons float64
	for _, r := range raws {
		maxIng = maxf(maxIng, r.ing)
		maxSto = maxf(maxSto, r.sto)
		maxRet = maxf(maxRet, r.ret)
		maxCons = maxf(maxCons, r.cons)
	}
	out := make([]Fig4Row, 0, len(raws))
	for _, r := range raws {
		out = append(out, Fig4Row{
			Knob: knob, Value: r.val, Accuracy: r.acc,
			Ingest: r.ing / maxIng, Storage: r.sto / maxSto,
			Retrieval: r.ret / maxRet, Consumption: r.cons / maxCons,
		})
	}
	return out
}

func maxf(a, b float64) float64 {
	if b > a {
		return b
	}
	return a
}

// Fig4 reproduces the four panels of Figure 4: crop×Motion, quality×License,
// sampling×S-NN, sampling×NN.
func Fig4(e *Env) map[string][]Fig4Row {
	full := format.MaxFidelity()
	out := map[string][]Fig4Row{}

	out["a: crop x Motion"] = fig4Sweep(e.Profiler("dashcam"), ops.Motion{}, full,
		func(b format.Fidelity, i int) (format.Fidelity, string, bool) {
			if i >= len(format.Crops) {
				return b, "", false
			}
			b.Crop = format.Crops[i]
			return b, b.Crop.String(), true
		}, "crop")

	out["b: quality x License"] = fig4Sweep(e.Profiler("dashcam"), ops.License{}, full,
		func(b format.Fidelity, i int) (format.Fidelity, string, bool) {
			if i >= len(format.Qualities) {
				return b, "", false
			}
			b.Quality = format.Qualities[i]
			return b, b.Quality.String(), true
		}, "quality")

	samplingVary := func(b format.Fidelity, i int) (format.Fidelity, string, bool) {
		if i >= len(format.Samplings) {
			return b, "", false
		}
		b.Sampling = format.Samplings[i]
		return b, b.Sampling.String(), true
	}
	out["c: sampling x S-NN"] = fig4Sweep(e.Profiler("jackson"), ops.SNN{}, full, samplingVary, "sampling")
	out["d: sampling x NN"] = fig4Sweep(e.Profiler("jackson"), ops.NN{}, full, samplingVary, "sampling")
	return out
}

// RenderFig4 renders the Figure 4 panels.
func RenderFig4(panels map[string][]Fig4Row) string {
	order := []string{"a: crop x Motion", "b: quality x License", "c: sampling x S-NN", "d: sampling x NN"}
	s := "Figure 4: fidelity knob impacts (costs normalised per sweep)\n"
	for _, name := range order {
		rows := panels[name]
		var out [][]string
		for _, r := range rows {
			out = append(out, []string{r.Value, f3(r.Accuracy), f2(r.Ingest), f2(r.Storage), f2(r.Retrieval), f2(r.Consumption)})
		}
		s += "(" + name + ")\n" + Table([]string{"value", "F1", "ingest", "storage", "retrieval", "consumption"}, out)
	}
	return s
}

// Fig5Row is one fidelity option of Figure 5: disparate costs despite equal
// accuracy.
type Fig5Row struct {
	Label       string
	Fidelity    format.Fidelity
	Accuracy    float64
	Ingest      float64
	Storage     float64
	Retrieval   float64
	Consumption float64
}

// Fig5 finds fidelity options for License with accuracy in a band around
// 0.8 that trade resources against each other: none dominates.
func Fig5(e *Env) []Fig5Row {
	p := e.Profiler("dashcam")
	coding := format.Coding{Speed: format.SpeedMedium, KeyframeI: 250}
	// The paper's three options vary quality, sampling and crop around the
	// same achieved accuracy.
	cands := []struct {
		label string
		fid   format.Fidelity
	}{
		{"A (poor quality, dense)", format.Fidelity{Quality: format.QBad, Crop: format.Crop100, Res: 540, Sampling: format.Sampling{Num: 2, Den: 3}}},
		{"B (best quality, sparse)", format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: 540, Sampling: format.Sampling{Num: 1, Den: 6}}},
		{"C (good quality, cropped)", format.Fidelity{Quality: format.QGood, Crop: format.Crop75, Res: 720, Sampling: format.Sampling{Num: 1, Den: 2}}},
	}
	var rows []Fig5Row
	for _, c := range cands {
		cf := p.ProfileConsumption(ops.License{}, c.fid)
		sf := format.StorageFormat{Fidelity: c.fid, Coding: coding}
		sp := p.ProfileStorage(sf)
		rows = append(rows, Fig5Row{
			Label: c.label, Fidelity: c.fid, Accuracy: cf.Accuracy,
			Ingest: sp.IngestSec, Storage: sp.BytesPerSec,
			Retrieval: 1 / p.RetrievalSpeed(sf, c.fid.Sampling), Consumption: 1 / cf.Speed,
		})
	}
	return rows
}

// RenderFig5 renders Figure 5.
func RenderFig5(rows []Fig5Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Label, r.Fidelity.String(), f3(r.Accuracy),
			fmt.Sprintf("%.3f cores", r.Ingest), kbs(r.Storage),
			fmt.Sprintf("%.2e s/s", r.Retrieval), fmt.Sprintf("%.2e s/s", r.Consumption),
		})
	}
	return "Figure 5: disparate costs of fidelity options with similar License accuracy\n" +
		Table([]string{"option", "fidelity", "F1", "ingest", "storage", "retrieval cost", "consumption cost"}, out)
}

// Fig6Row compares decode speed against consumption speed (Figure 6):
// retrieval can bottleneck consumption.
type Fig6Row struct {
	Op           string
	Fidelity     format.Fidelity
	Accuracy     float64
	Consumption  float64 // × realtime
	DecodeSame   float64 // decoding video stored at the same fidelity
	DecodeGolden float64 // decoding video stored at ingestion fidelity
	RawSame      float64 // reading raw frames stored at the same fidelity
}

// Fig6 evaluates the two cases of the figure: (a) License, whose consumption
// can outpace golden-format decoding; (b) Motion, which outpaces even
// same-fidelity decoding and needs raw frames.
func Fig6(e *Env) []Fig6Row {
	cases := []struct {
		scene string
		op    ops.Operator
		fids  []format.Fidelity
	}{
		{"dashcam", ops.License{}, []format.Fidelity{
			{Quality: format.QGood, Crop: format.Crop75, Res: 540, Sampling: format.Sampling{Num: 1, Den: 6}},
			{Quality: format.QBad, Crop: format.Crop100, Res: 540, Sampling: format.Sampling{Num: 1, Den: 6}},
			{Quality: format.QGood, Crop: format.Crop100, Res: 540, Sampling: format.Sampling{Num: 1, Den: 6}},
		}},
		{"dashcam", ops.Motion{}, []format.Fidelity{
			{Quality: format.QBest, Crop: format.Crop100, Res: 180, Sampling: format.Sampling{Num: 1, Den: 1}},
			{Quality: format.QBad, Crop: format.Crop50, Res: 180, Sampling: format.Sampling{Num: 1, Den: 6}},
		}},
	}
	coding := format.Coding{Speed: format.SpeedSlowest, KeyframeI: 250}
	var rows []Fig6Row
	for _, c := range cases {
		p := e.Profiler(c.scene)
		for _, fid := range c.fids {
			cf := p.ProfileConsumption(c.op, fid)
			same := format.StorageFormat{Fidelity: fid, Coding: coding}
			golden := format.StorageFormat{Fidelity: format.MaxFidelity(), Coding: coding}
			rawSF := fid
			rawSF.Quality = format.QBest
			raw := format.StorageFormat{Fidelity: rawSF, Coding: format.RawCoding}
			rows = append(rows, Fig6Row{
				Op: c.op.Name(), Fidelity: fid, Accuracy: cf.Accuracy,
				Consumption:  cf.Speed,
				DecodeSame:   p.RetrievalSpeed(same, fid.Sampling),
				DecodeGolden: p.RetrievalSpeed(golden, fid.Sampling),
				RawSame:      p.RetrievalSpeed(raw, fid.Sampling),
			})
		}
	}
	return rows
}

// RenderFig6 renders Figure 6.
func RenderFig6(rows []Fig6Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Op, r.Fidelity.String(), f2(r.Accuracy),
			x0(r.Consumption), x0(r.DecodeSame), x0(r.DecodeGolden), x0(r.RawSame),
		})
	}
	return "Figure 6: video retrieval can bottleneck consumption\n" +
		Table([]string{"op", "fidelity", "F1", "consume", "decode(same fid)", "decode(golden)", "raw(same fid)"}, out)
}

func f0(v int) string { return fmt.Sprintf("%d", v) }
