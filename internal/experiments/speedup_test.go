package experiments

import (
	"strings"
	"testing"
)

func TestSpeedupSmoke(t *testing.T) {
	e := NewEnv(120)
	res, err := Speedup(e, t.TempDir(), "jackson", 4, 2, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("parallel or cached query output differs from sequential")
	}
	if res.SeqSec <= 0 || res.ParSec <= 0 || res.CachedSec <= 0 {
		t.Fatalf("non-positive wall times: %+v", res)
	}
	if res.CacheStats.Hits == 0 {
		t.Fatalf("warm cached runs produced no hits: %+v", res.CacheStats)
	}
	out := RenderSpeedup(res)
	for _, want := range []string{"sequential", "parallel", "warm cache", "hit rate", "identical"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
}
