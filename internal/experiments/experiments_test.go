package experiments

import (
	"testing"
)

// The experiment harnesses are exercised here with reduced parameters
// (short profiling clips, few segments); assertions target the paper's
// shapes, not magnitudes. Heavy cases are skipped under -short.

func TestFig3aShape(t *testing.T) {
	rows, err := Fig3a("tucson", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Figure 3(a): encoding speeds up dramatically across steps while the
	// output grows.
	if rows[4].EncodeSpeed < 5*rows[0].EncodeSpeed {
		t.Fatalf("encode speedup %0.f -> %0.f too small", rows[0].EncodeSpeed, rows[4].EncodeSpeed)
	}
	if rows[4].SizeBytes <= rows[0].SizeBytes {
		t.Fatalf("fastest step output %d not above slowest %d", rows[4].SizeBytes, rows[0].SizeBytes)
	}
}

func TestFig3bShape(t *testing.T) {
	rows, err := Fig3b("tucson", 20)
	if err != nil {
		t.Fatal(err)
	}
	first, last := rows[0], rows[len(rows)-1] // kf=250 first, kf=5 last
	if first.KeyframeI != 250 || last.KeyframeI != 5 {
		t.Fatalf("row order wrong: %d..%d", first.KeyframeI, last.KeyframeI)
	}
	// Smaller intervals accelerate sparse decoding several-fold (the paper
	// reports up to 6x)...
	if last.DecodeSparse < 2*first.DecodeSparse {
		t.Fatalf("sparse decode %0.f -> %0.f: GOP skipping ineffective", first.DecodeSparse, last.DecodeSparse)
	}
	// ...at the expense of size, and full-rate decode barely changes.
	if last.SizeBytes <= first.SizeBytes {
		t.Fatalf("size did not grow with smaller GOPs")
	}
	if last.DecodeFull > 2*first.DecodeFull {
		t.Fatalf("full decode should be GOP-insensitive: %0.f vs %0.f", first.DecodeFull, last.DecodeFull)
	}
}

func TestFig4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep")
	}
	e := NewEnv(120)
	panels := Fig4(e)
	if len(panels) != 4 {
		t.Fatalf("panels = %d", len(panels))
	}
	for name, rows := range panels {
		if len(rows) < 3 {
			t.Fatalf("%s: %d rows", name, len(rows))
		}
		// Accuracy must broadly rise with the knob (values are ordered
		// poorest first); compare the ends.
		if rows[0].Accuracy > rows[len(rows)-1].Accuracy {
			t.Errorf("%s: accuracy fell from %.2f to %.2f across knob range",
				name, rows[0].Accuracy, rows[len(rows)-1].Accuracy)
		}
		for _, r := range rows {
			if r.Ingest < 0 || r.Ingest > 1 || r.Storage < 0 || r.Storage > 1 ||
				r.Retrieval < 0 || r.Retrieval > 1 || r.Consumption < 0 || r.Consumption > 1 {
				t.Fatalf("%s: costs not normalised: %+v", name, r)
			}
		}
	}
}

func TestFig5NoDominantOption(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep")
	}
	e := NewEnv(120)
	rows := Fig5(e)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// All options land in a similar accuracy band...
	for _, r := range rows {
		if r.Accuracy < 0.55 || r.Accuracy > 1 {
			t.Errorf("option %s accuracy %.2f outside the comparison band", r.Label, r.Accuracy)
		}
	}
	// ...and none dominates on every resource.
	dominates := func(a, b Fig5Row) bool {
		return a.Ingest <= b.Ingest && a.Storage <= b.Storage &&
			a.Retrieval <= b.Retrieval && a.Consumption <= b.Consumption
	}
	for i := range rows {
		winsAll := true
		for j := range rows {
			if i != j && !dominates(rows[i], rows[j]) {
				winsAll = false
			}
		}
		if winsAll {
			t.Fatalf("option %s dominates all others; Figure 5's trade-off is gone", rows[i].Label)
		}
	}
}

func TestFig6RetrievalBottleneck(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep")
	}
	e := NewEnv(120)
	rows := Fig6(e)
	sawDecodeBottleneck := false
	for _, r := range rows {
		// Raw reads of the same fidelity must beat same-fidelity decoding
		// for these fast consumers.
		if r.Op == "Motion" && r.Consumption > r.DecodeSame {
			sawDecodeBottleneck = true
			if r.RawSame <= r.DecodeSame {
				t.Errorf("raw (%.0fx) not above decode (%.0fx) for %v", r.RawSame, r.DecodeSame, r.Fidelity)
			}
		}
		// Golden-format decode is never faster than same-fidelity decode.
		if r.DecodeGolden > r.DecodeSame*1.05 {
			t.Errorf("golden decode %.0fx above same-fidelity %.0fx", r.DecodeGolden, r.DecodeSame)
		}
	}
	if !sawDecodeBottleneck {
		t.Fatal("no case where consumption outpaces same-fidelity decoding; Figure 6(b) is gone")
	}
}

func TestTable4BudgetLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("full derivation")
	}
	e := NewEnv(120)
	rows := Table4(e, []float64{0, 6, 3})
	if rows[0].Err != nil {
		t.Fatal(rows[0].Err)
	}
	prevStorage := 0.0
	for i, r := range rows {
		if r.Err != nil {
			t.Fatalf("budget %.0f infeasible: %v", r.BudgetCores, r.Err)
		}
		if r.BudgetCores > 0 && r.IngestCores > r.BudgetCores+1e-9 {
			t.Fatalf("row %d: ingest %.2f exceeds budget %.2f", i, r.IngestCores, r.BudgetCores)
		}
		if r.BytesPerSec < prevStorage-1e-9 {
			t.Fatalf("storage fell as the budget tightened: %.0f -> %.0f", prevStorage, r.BytesPerSec)
		}
		prevStorage = r.BytesPerSec
	}
}

func TestFig12Plateau(t *testing.T) {
	if testing.Short() {
		t.Skip("derives configurations for 9 operator sets")
	}
	e := NewEnv(90)
	rows, err := Fig12(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 (0..9 operators)", len(rows))
	}
	// The paper's claim: cost stabilises once the library exceeds ~5
	// operators. Allow modest growth in the back half.
	mid := rows[5].IngestCores
	last := rows[9].IngestCores
	if last > 1.6*mid {
		t.Fatalf("ingest cost kept climbing: %.2f cores at 5 ops, %.2f at 9", mid, last)
	}
	if rows[1].IngestCores <= 0 {
		t.Fatal("no ingest cost with one operator")
	}
}

func TestFig13Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("erosion planning over full configuration")
	}
	e := NewEnv(90)
	budgets, err := Fig13(e, []float64{0.55, 0.8, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	var ks []float64
	for _, b := range budgets {
		if b.Err != nil {
			t.Fatalf("%s: %v", b.Label, b.Err)
		}
		ks = append(ks, b.K)
	}
	// Lower budgets need more aggressive decay (Fig 13a's k ordering).
	if !(ks[0] >= ks[1] && ks[1] >= ks[2]) {
		t.Fatalf("decay factors not ordered: %v", ks)
	}
	if ks[2] != 0 {
		t.Fatalf("full-footprint budget should not decay, k=%v", ks[2])
	}
}

func TestFig14Savings(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive profiling comparison")
	}
	rows, err := Fig14(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		ratio := float64(r.ExhaustiveRuns) / float64(r.VStoreRuns)
		// The paper reports 9-15x fewer runs.
		if ratio < 4 {
			t.Errorf("%s: run ratio %.1f too small (vstore %d, exhaustive %d)",
				r.Op, ratio, r.VStoreRuns, r.ExhaustiveRuns)
		}
		if r.VStoreRuns <= 0 || r.ExhaustiveRuns < 600 {
			t.Errorf("%s: implausible run counts %d / %d", r.Op, r.VStoreRuns, r.ExhaustiveRuns)
		}
	}
}

func TestSFConfigComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("partition enumeration")
	}
	e := NewEnv(90)
	res, err := SFConfig(e, DefaultExhaustiveCFLimit)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumCFs < 2 {
		t.Fatalf("only %d unique CFs", res.NumCFs)
	}
	if !res.ExhaustiveSkipped {
		if res.ExhaustiveBytes > res.HeuristicBytes+1e-6 {
			t.Fatalf("exhaustive %.0f worse than heuristic %.0f", res.ExhaustiveBytes, res.HeuristicBytes)
		}
		if res.HeuristicBytes > 1.35*res.ExhaustiveBytes {
			t.Fatalf("heuristic %.0f too far above exhaustive %.0f", res.HeuristicBytes, res.ExhaustiveBytes)
		}
		// Timing is not compared: the heuristic runs first and pays for all
		// profiling, which the memoised exhaustive pass then reuses. The
		// paper's 2-orders-of-magnitude gap is in profiling runs, which
		// memoisation already captures.
	}
	if res.DistanceBytes < res.HeuristicBytes-1e-6 {
		t.Fatalf("distance-based (%.0f B/s) beat heuristic (%.0f B/s); §6.4 expects the opposite",
			res.DistanceBytes, res.HeuristicBytes)
	}
}

func TestFig11SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full end-to-end evaluation")
	}
	e := NewEnv(90)
	res, err := Fig11(e, t.TempDir(), 1, []float64{1, 0.9, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	speeds := map[string]map[ConfigName]map[float64]float64{}
	for _, r := range res.QuerySpeeds {
		if speeds[r.Scene] == nil {
			speeds[r.Scene] = map[ConfigName]map[float64]float64{}
		}
		if speeds[r.Scene][r.Config] == nil {
			speeds[r.Scene][r.Config] = map[float64]float64{}
		}
		speeds[r.Scene][r.Config][r.Accuracy] = r.Speed
	}
	for scene, byConf := range speeds {
		// VStore must beat 1->N and 1->1 at reduced accuracy levels on a
		// majority of datasets; assert per scene only the weak ordering
		// that VStore is never the slowest of the three at accuracy 0.7.
		v := byConf[ConfVStore][0.7]
		oneN := byConf[Conf1toN][0.7]
		one1 := byConf[Conf1to1][1.0]
		if v < oneN && v < one1 {
			t.Errorf("%s: VStore (%.0fx) slowest of all configs (1->N %.0fx, 1->1 %.0fx)", scene, v, oneN, one1)
		}
	}
	// Storage: N->N must cost the most, golden-only the least, per dataset.
	byScene := map[string]map[ConfigName]float64{}
	for _, r := range res.Storage {
		if byScene[r.Scene] == nil {
			byScene[r.Scene] = map[ConfigName]float64{}
		}
		byScene[r.Scene][r.Config] = r.GBPerDay
	}
	for scene, m := range byScene {
		if !(m[ConfNtoN] >= m[ConfVStore] && m[ConfVStore] >= m[Conf1to1]) {
			t.Errorf("%s: storage ordering broken: N->N %.1f, VStore %.1f, 1->1 %.1f",
				scene, m[ConfNtoN], m[ConfVStore], m[Conf1to1])
		}
	}
}
