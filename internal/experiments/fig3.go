package experiments

import (
	"time"

	"repro/internal/codec"
	"repro/internal/format"
	"repro/internal/profile"
	"repro/internal/vidsim"
)

// Fig3aRow is one speed step's coding behaviour (Figure 3a): coding can be
// sped up at the expense of increased video size.
type Fig3aRow struct {
	Speed       format.SpeedStep
	EncodeSpeed float64 // × video realtime (wall-measured)
	DecodeSpeed float64 // × video realtime (wall-measured)
	SizeBytes   int
}

// Fig3a encodes a clip of the scene at every speed step (fixed keyframe
// interval 250, good quality, full fidelity otherwise) and measures coding
// speed and output size with the wall clock — the codec substrate's real
// behaviour, not the virtual model.
func Fig3a(scene string, seconds int) ([]Fig3aRow, error) {
	sc, err := vidsim.DatasetByName(scene)
	if err != nil {
		return nil, err
	}
	src := vidsim.NewSource(sc)
	frames := src.Clip(0, seconds*vidsim.FPS)
	dur := float64(seconds)
	var rows []Fig3aRow
	for _, ss := range format.SpeedSteps {
		p := codec.Params{Quality: format.QGood, Speed: ss, KeyframeI: 250}
		t0 := time.Now()
		enc, _, err := codec.Encode(frames, p)
		if err != nil {
			return nil, err
		}
		encSec := time.Since(t0).Seconds()
		t1 := time.Now()
		if _, _, err := enc.Decode(); err != nil {
			return nil, err
		}
		decSec := time.Since(t1).Seconds()
		rows = append(rows, Fig3aRow{
			Speed:       ss,
			EncodeSpeed: dur / encSec,
			DecodeSpeed: dur / decSec,
			SizeBytes:   enc.Size(),
		})
	}
	return rows, nil
}

// RenderFig3a renders the Figure 3(a) table.
func RenderFig3a(rows []Fig3aRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Speed.String(), x0(r.EncodeSpeed), x0(r.DecodeSpeed), mb(float64(r.SizeBytes))})
	}
	return "Figure 3(a): coding speed vs size across speed steps\n" +
		Table([]string{"speed step", "encode", "decode", "size"}, out)
}

// Fig3bRow is one keyframe interval's behaviour (Figure 3b): smaller
// intervals let sparse consumers skip more frames in decoding.
type Fig3bRow struct {
	KeyframeI           int
	DecodeSparse        float64 // × realtime at 1/30 consumer sampling
	DecodeFull          float64 // × realtime at full-rate consumption
	SizeBytes           int
	FramesDecodedSparse int64
}

// Fig3b sweeps the keyframe interval and decodes with a sparse (1/30) and a
// full-rate consumer, on the virtual clock so GOP-skip effects are exact.
func Fig3b(scene string, seconds int) ([]Fig3bRow, error) {
	sc, err := vidsim.DatasetByName(scene)
	if err != nil {
		return nil, err
	}
	src := vidsim.NewSource(sc)
	frames := src.Clip(0, seconds*vidsim.FPS)
	dur := float64(seconds)
	sparse := format.Sampling{Num: 1, Den: 30}
	var rows []Fig3bRow
	for i := len(format.KeyframeIntervals) - 1; i >= 0; i-- { // 250 first, as the figure
		kf := format.KeyframeIntervals[i]
		enc, _, err := codec.Encode(frames, codec.Params{Quality: format.QGood, Speed: format.SpeedMedium, KeyframeI: kf})
		if err != nil {
			return nil, err
		}
		_, stSparse, err := enc.DecodeSampled(func(i int) bool { return sparse.Keep(enc.PTSAt(i)) })
		if err != nil {
			return nil, err
		}
		_, stFull, err := enc.Decode()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig3bRow{
			KeyframeI:           kf,
			DecodeSparse:        dur / profile.DecodeSeconds(stSparse, stSparse.BytesFlate),
			DecodeFull:          dur / profile.DecodeSeconds(stFull, stFull.BytesFlate),
			SizeBytes:           enc.Size(),
			FramesDecodedSparse: stSparse.Frames,
		})
	}
	return rows, nil
}

// RenderFig3b renders the Figure 3(b) table.
func RenderFig3b(rows []Fig3bRow) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			f0(r.KeyframeI), x0(r.DecodeSparse), x0(r.DecodeFull), mb(float64(r.SizeBytes)), f0(int(r.FramesDecodedSparse)),
		})
	}
	return "Figure 3(b): keyframe interval vs sampled decode speed\n" +
		Table([]string{"kf interval", "decode@1/30", "decode@1", "size", "frames decoded@1/30"}, out)
}
