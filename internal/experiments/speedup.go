package experiments

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/query"
	"repro/internal/retrieve"
	"repro/internal/server"
	"repro/internal/vidsim"
)

// SpeedupResult reports sequential vs parallel vs cached-parallel wall
// time for one multi-segment query, plus the invariant that matters: the
// detections are identical on every path.
type SpeedupResult struct {
	Scene      string
	Segments   int
	Workers    int
	CacheBytes int64
	CPUs       int

	SeqSec    float64 // sequential, cache disabled
	ParSec    float64 // parallel, cache disabled
	CachedSec float64 // parallel, cache warm

	CacheStats retrieve.CacheStats
	Identical  bool // detections and final PTS equal across all paths
}

// Speedup ingests nSegments of the scene into a fresh store under dir and
// times query A end to end: sequentially, on the worker pool, and on the
// worker pool with a warm retrieval cache. Each variant runs `rounds`
// times and keeps the best wall time, damping scheduler noise.
func Speedup(e *Env, dir, scene string, nSegments, workers int, cacheBytes int64) (SpeedupResult, error) {
	res := SpeedupResult{
		Scene: scene, Segments: nSegments, Workers: workers,
		CacheBytes: cacheBytes, CPUs: runtime.NumCPU(),
	}
	sc, err := vidsim.DatasetByName(scene)
	if err != nil {
		return res, err
	}
	s, err := server.Open(dir)
	if err != nil {
		return res, err
	}
	defer s.Close()
	p := e.Profiler(scene)
	var consumers []core.Consumer
	for _, op := range []ops.Operator{ops.Diff{}, ops.SNN{}, ops.NN{}} {
		consumers = append(consumers, core.Consumer{Op: op, Target: 0.9, Prof: p})
	}
	cfg, err := core.Configure(consumers, core.Options{StorageProfiler: p})
	if err != nil {
		return res, err
	}
	if err := s.Reconfigure(cfg); err != nil {
		return res, err
	}
	if _, err := s.Ingest(sc, scene, nSegments); err != nil {
		return res, err
	}

	opNames := []string{"Diff", "S-NN", "NN"}
	const rounds = 3
	run := func(workers int, warm bool) (float64, server.QueryResult, error) {
		s.QueryWorkers = workers
		best := -1.0
		var out server.QueryResult
		n := rounds
		if warm {
			n++ // first pass populates the cache and is discarded
		}
		for i := 0; i < n; i++ {
			t0 := time.Now()
			r, err := s.Query(context.Background(), scene, query.QueryA(), opNames, 0.9, 0, nSegments)
			if err != nil {
				return 0, out, err
			}
			d := time.Since(t0).Seconds()
			if warm && i == 0 {
				continue
			}
			if best < 0 || d < best {
				best = d
			}
			out = r
		}
		return best, out, nil
	}

	s.SetCacheBudget(0)
	seqSec, seqOut, err := run(-1, false)
	if err != nil {
		return res, err
	}
	res.SeqSec = seqSec
	parSec, parOut, err := run(workers, false)
	if err != nil {
		return res, err
	}
	res.ParSec = parSec
	s.SetCacheBudget(cacheBytes)
	cachedSec, cachedOut, err := run(workers, true)
	if err != nil {
		return res, err
	}
	res.CachedSec = cachedSec
	res.CacheStats = s.CacheStats()

	res.Identical = true
	for _, other := range []server.QueryResult{parOut, cachedOut} {
		if len(other.Results) != len(seqOut.Results) {
			res.Identical = false
			break
		}
		for i := range seqOut.Results {
			if !reflect.DeepEqual(other.Results[i].Detections, seqOut.Results[i].Detections) ||
				!reflect.DeepEqual(other.Results[i].FinalPTS, seqOut.Results[i].FinalPTS) {
				res.Identical = false
			}
		}
	}
	return res, nil
}

// RenderSpeedup renders the comparison.
func RenderSpeedup(r SpeedupResult) string {
	speed := func(sec float64) string {
		if sec <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.2fx", r.SeqSec/sec)
	}
	rows := [][]string{
		{"sequential", fmt.Sprintf("%.3fs", r.SeqSec), "1.00x"},
		{fmt.Sprintf("parallel (%d workers)", r.Workers), fmt.Sprintf("%.3fs", r.ParSec), speed(r.ParSec)},
		{"parallel + warm cache", fmt.Sprintf("%.3fs", r.CachedSec), speed(r.CachedSec)},
	}
	s := fmt.Sprintf("Query speedup: %s, %d segments, query A @ 0.9, %d CPUs\n",
		r.Scene, r.Segments, r.CPUs)
	s += Table([]string{"execution", "wall time", "speedup"}, rows)
	cs := r.CacheStats
	s += fmt.Sprintf("cache: budget %d B, %d hits / %d misses (%.0f%% hit rate), %d evictions, %d B resident\n",
		r.CacheBytes, cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Evictions, cs.Bytes)
	if r.Identical {
		s += "detections: identical on all paths\n"
	} else {
		s += "detections: MISMATCH between paths (BUG)\n"
	}
	if r.CPUs == 1 {
		s += "note: single-CPU host; wall-time parallel speedup needs >1 core\n"
	}
	return s
}
