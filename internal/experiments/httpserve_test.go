package experiments

import (
	"strings"
	"testing"
)

func TestHTTPServeSmoke(t *testing.T) {
	e := NewEnv(120)
	res, err := HTTPServe(e, t.TempDir(), "jackson", 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("over-HTTP query output differs from the in-process path")
	}
	if res.InProcColdSec <= 0 || res.HTTPColdSec <= 0 || res.HTTPWarmSec <= 0 ||
		res.HTTPChunkSec <= 0 || res.FirstChunkSec <= 0 {
		t.Fatalf("non-positive wall times: %+v", res)
	}
	if res.FirstChunkSec > res.HTTPChunkSec {
		t.Fatalf("first chunk (%f) after the whole stream (%f)", res.FirstChunkSec, res.HTTPChunkSec)
	}
	out := RenderHTTPServe(res)
	for _, want := range []string{"in-process", "HTTP /v1/query", "first streamed chunk", "byte-identical across transports: yes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
}
