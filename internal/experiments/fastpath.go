package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/codec"
	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/kvstore"
	"repro/internal/retrieve"
	"repro/internal/sched"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

// FastPathResult reports the retrieval fast path's steady states over one
// encoded segment: the pooled sequential decode, the GOP-parallel decode,
// the pooling-free decode (the pre-PR4 allocation behaviour, kept
// measurable so the win stays visible), and the three retrieval paths —
// cold, identity-cf and cache-warm. Alloc columns are measured with
// runtime.MemStats around single-threaded runs; wall times keep the best
// of several rounds.
type FastPathResult struct {
	Scene    string
	Workers  int
	Frames   int
	RawBytes int64 // decoded frame bytes per retrieval (MB/s denominator)

	DecodeSeqSec      float64 // pooled sequential decode
	DecodeParSec      float64 // GOP-parallel decode on the pool
	DecodeNoPoolSec   float64 // pooling disabled (pre-fast-path behaviour)
	DecodeSeqAllocs   uint64  // heap objects per pooled sequential decode
	DecodeNoPoolAlloc uint64  // heap objects per pooling-free decode

	ColdSec       float64 // full retrieval: decode + fidelity conversion
	IdentitySec   float64 // consumption format == storage fidelity (zero-copy)
	WarmSec       float64 // cache hit
	ColdAllocs    uint64
	WarmAllocs    uint64
	RetIdentical  bool // cold, identity re-run and warm deliver equal pixels
	DecIdentical  bool // all three decode modes deliver equal pixels
	PoolingOnExit bool // pooling restored after the pooling-off leg
}

// FastPath encodes nFrames of the scene as one stored segment and measures
// the decode→convert→deliver path in every mode. dir hosts the throwaway
// kvstore.
func FastPath(dir, scene string, nFrames, workers int) (FastPathResult, error) {
	res := FastPathResult{Scene: scene, Workers: workers, Frames: nFrames}
	sc, err := vidsim.DatasetByName(scene)
	if err != nil {
		return res, err
	}
	kv, err := kvstore.Open(dir, kvstore.Options{})
	if err != nil {
		return res, err
	}
	defer kv.Close()
	store := segment.NewStore(kv)
	src := vidsim.NewSource(sc)
	full := src.Clip(0, nFrames)
	for _, f := range full {
		res.RawBytes += int64(f.Bytes())
	}
	sf := format.StorageFormat{
		Fidelity: format.Fidelity{Quality: format.QGood, Crop: format.Crop100, Res: 540, Sampling: format.Sampling{Num: 1, Den: 1}},
		Coding:   format.Coding{Speed: format.SpeedFast, KeyframeI: 10},
	}
	tw, th := vidsim.Dims(540)
	frames := codec.ApplyFidelity(full, sf.Fidelity, tw, th)
	enc, _, err := codec.Encode(frames, codec.ParamsFor(sf))
	if err != nil {
		return res, err
	}
	if err := store.PutEncoded(scene, sf, 0, enc); err != nil {
		return res, err
	}

	const rounds = 3
	all := func(int) bool { return true }
	best := func(fn func() error) (float64, error) {
		b := -1.0
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			if d := time.Since(t0).Seconds(); b < 0 || d < b {
				b = d
			}
		}
		return b, nil
	}
	allocsPer := func(fn func() error) (uint64, error) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		const n = 3
		for i := 0; i < n; i++ {
			if err := fn(); err != nil {
				return 0, err
			}
		}
		runtime.ReadMemStats(&after)
		return (after.Mallocs - before.Mallocs) / n, nil
	}

	// Decode modes. Every mode's frames must be pixel-identical.
	ref, _, err := enc.DecodeSampled(all)
	if err != nil {
		return res, err
	}
	var got []*frame.Frame
	seq := func() error { got, _, err = enc.DecodeSampled(all); return err }
	if res.DecodeSeqSec, err = best(seq); err != nil {
		return res, err
	}
	res.DecIdentical = framesEqual(got, ref)
	if res.DecodeSeqAllocs, err = allocsPer(seq); err != nil {
		return res, err
	}
	pool := sched.NewPool(workers)
	par := func() error { got, _, err = enc.DecodeSampledParallel(all, pool.Batch()); return err }
	if res.DecodeParSec, err = best(par); err != nil {
		return res, err
	}
	res.DecIdentical = res.DecIdentical && framesEqual(got, ref)
	codec.SetPooling(false)
	if res.DecodeNoPoolSec, err = best(seq); err != nil {
		codec.SetPooling(true)
		return res, err
	}
	res.DecIdentical = res.DecIdentical && framesEqual(got, ref)
	if res.DecodeNoPoolAlloc, err = allocsPer(seq); err != nil {
		codec.SetPooling(true)
		return res, err
	}
	codec.SetPooling(true)
	res.PoolingOnExit = codec.PoolingEnabled()

	// Retrieval paths.
	coldCF := format.ConsumptionFormat{Fidelity: format.Fidelity{
		Quality: format.QGood, Crop: format.Crop100, Res: 200, Sampling: format.Sampling{Num: 1, Den: 1}}}
	idCF := format.ConsumptionFormat{Fidelity: format.Fidelity{
		Quality: format.QGood, Crop: format.Crop100, Res: 540, Sampling: format.Sampling{Num: 1, Den: 1}}}
	cold := &retrieve.Retriever{Store: store}
	var coldRef, coldGot []*frame.Frame
	if coldRef, _, err = cold.SegmentTagged(scene, sf, coldCF, 0, nil, ""); err != nil {
		return res, err
	}
	coldFn := func() error { coldGot, _, err = cold.SegmentTagged(scene, sf, coldCF, 0, nil, ""); return err }
	if res.ColdSec, err = best(coldFn); err != nil {
		return res, err
	}
	res.RetIdentical = framesEqual(coldGot, coldRef)
	if res.ColdAllocs, err = allocsPer(coldFn); err != nil {
		return res, err
	}
	idFn := func() error { _, _, err := cold.SegmentTagged(scene, sf, idCF, 0, nil, ""); return err }
	if res.IdentitySec, err = best(idFn); err != nil {
		return res, err
	}
	warm := &retrieve.Retriever{Store: store, Cache: retrieve.NewCache(1 << 30)}
	if _, _, err = warm.SegmentTagged(scene, sf, coldCF, 0, nil, ""); err != nil {
		return res, err
	}
	var warmGot []*frame.Frame
	warmFn := func() error { warmGot, _, err = warm.SegmentTagged(scene, sf, coldCF, 0, nil, ""); return err }
	if res.WarmSec, err = best(warmFn); err != nil {
		return res, err
	}
	res.RetIdentical = res.RetIdentical && framesEqual(warmGot, coldRef)
	if res.WarmAllocs, err = allocsPer(warmFn); err != nil {
		return res, err
	}
	return res, nil
}

func framesEqual(a, b []*frame.Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].PTS != b[i].PTS || !frame.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// RenderFastPath renders the comparison.
func RenderFastPath(r FastPathResult) string {
	mbs := func(sec float64) string {
		if sec <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f", float64(r.RawBytes)/sec/(1<<20))
	}
	s := fmt.Sprintf("Retrieval fast path: %s, %d frames/segment, %d decode workers\n",
		r.Scene, r.Frames, r.Workers)
	rows := [][]string{
		{"decode sequential (pooled)", fmt.Sprintf("%.4fs", r.DecodeSeqSec), mbs(r.DecodeSeqSec), fmt.Sprintf("%d", r.DecodeSeqAllocs)},
		{"decode GOP-parallel", fmt.Sprintf("%.4fs", r.DecodeParSec), mbs(r.DecodeParSec), "-"},
		{"decode pooling OFF", fmt.Sprintf("%.4fs", r.DecodeNoPoolSec), mbs(r.DecodeNoPoolSec), fmt.Sprintf("%d", r.DecodeNoPoolAlloc)},
		{"retrieve cold (decode+convert)", fmt.Sprintf("%.4fs", r.ColdSec), mbs(r.ColdSec), fmt.Sprintf("%d", r.ColdAllocs)},
		{"retrieve identity-cf", fmt.Sprintf("%.4fs", r.IdentitySec), mbs(r.IdentitySec), "-"},
		{"retrieve warm (cache hit)", fmt.Sprintf("%.4fs", r.WarmSec), mbs(r.WarmSec), fmt.Sprintf("%d", r.WarmAllocs)},
	}
	s += Table([]string{"path", "wall", "MB/s", "allocs/op"}, rows)
	if r.DecIdentical && r.RetIdentical {
		s += "pixels: identical across every decode mode and retrieval path\n"
	} else {
		s += fmt.Sprintf("pixels: MISMATCH (decode=%v retrieval=%v) (BUG)\n", r.DecIdentical, r.RetIdentical)
	}
	if r.DecodeNoPoolAlloc > 0 {
		s += fmt.Sprintf("pooling cuts decode allocations %.1fx (%d -> %d objects/op)\n",
			float64(r.DecodeNoPoolAlloc)/float64(max(r.DecodeSeqAllocs, 1)), r.DecodeNoPoolAlloc, r.DecodeSeqAllocs)
	}
	return s
}
