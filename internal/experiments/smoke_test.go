package experiments

import (
	"testing"
)

// TestTable3Smoke derives the full configuration with a short profiling
// clip and prints it (-v) for inspection.
func TestTable3Smoke(t *testing.T) {
	e := NewEnv(120)
	cfg, err := Table3(e)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderTable3(cfg))
	d := cfg.Derivation
	if len(d.Choices) != 24 {
		t.Fatalf("consumers = %d, want 24", len(d.Choices))
	}
	if len(d.SFs) < 2 || len(d.SFs) > 12 {
		t.Fatalf("derived %d SFs; expected a small coalesced set", len(d.SFs))
	}
	for i, ch := range d.Choices {
		if !d.SFs[d.Subs[i]].SF.Satisfies(ch.CF) {
			t.Fatalf("R1 violated for consumer %v", ch.Consumer)
		}
	}
}
