package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/vidsim"
)

// HTTPServeResult compares the in-process query path with the same query
// over the HTTP API on a loopback socket: the wire tax (JSON encoding,
// HTTP framing, an extra copy) on cold and cache-warm runs, plus the
// invariant that matters — detections byte-identical across transports.
type HTTPServeResult struct {
	Scene    string
	Segments int

	InProcColdSec float64 // in-process Server.Query, cache cold
	InProcWarmSec float64 // in-process, retrieval cache warm
	HTTPColdSec   float64 // over HTTP, server cache cold
	HTTPWarmSec   float64 // over HTTP, server cache warm
	HTTPChunkSec  float64 // over HTTP, warm, streamed segment-by-segment
	FirstChunkSec float64 // time to FIRST chunk of the streamed query

	Identical bool // HTTP results byte-identical to in-process
}

// HTTPServe ingests nSegments of the scene into a fresh store under dir,
// serves it on a loopback port, and times query B in-process vs over the
// wire. Each timing keeps the best of three rounds.
func HTTPServe(e *Env, dir, scene string, nSegments int) (HTTPServeResult, error) {
	res := HTTPServeResult{Scene: scene, Segments: nSegments}
	sc, err := vidsim.DatasetByName(scene)
	if err != nil {
		return res, err
	}
	s, err := server.Open(dir)
	if err != nil {
		return res, err
	}
	defer s.Close()
	p := e.Profiler(scene)
	var consumers []core.Consumer
	for _, op := range []ops.Operator{ops.Motion{}, ops.License{}, ops.OCR{}} {
		consumers = append(consumers, core.Consumer{Op: op, Target: 0.9, Prof: p})
	}
	cfg, err := core.Configure(consumers, core.Options{StorageProfiler: p})
	if err != nil {
		return res, err
	}
	if err := s.Reconfigure(cfg); err != nil {
		return res, err
	}
	if _, err := s.Ingest(sc, scene, nSegments); err != nil {
		return res, err
	}

	as := api.New(s, api.Limits{})
	addr, err := as.Start("127.0.0.1:0")
	if err != nil {
		return res, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = as.Shutdown(ctx)
	}()
	cl := api.NewClient("http://" + addr.String())
	ctx := context.Background()
	cascade, names, err := query.ByName("B")
	if err != nil {
		return res, err
	}

	const rounds = 3
	best := func(fn func() error) (float64, error) {
		b := -1.0
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			if err := fn(); err != nil {
				return 0, err
			}
			if d := time.Since(t0).Seconds(); b < 0 || d < b {
				b = d
			}
		}
		return b, nil
	}
	var inProc server.QueryResult
	inProcRun := func() error {
		var err error
		inProc, err = s.Query(ctx, scene, cascade, names, 0.9, 0, nSegments)
		return err
	}
	var httpChunks []api.QueryChunk
	httpRun := func(chunk int) func() error {
		return func() error {
			var err error
			httpChunks, _, err = cl.Query(ctx, api.QueryRequest{Stream: scene, Query: "B", Chunk: chunk})
			return err
		}
	}

	// Cold = cache disabled; warm = cache enabled and pre-populated by the
	// first round (best-of-3 then measures hits).
	s.SetCacheBudget(0)
	if res.InProcColdSec, err = best(inProcRun); err != nil {
		return res, err
	}
	if res.HTTPColdSec, err = best(httpRun(0)); err != nil {
		return res, err
	}
	s.SetCacheBudget(1 << 30)
	if res.InProcWarmSec, err = best(inProcRun); err != nil {
		return res, err
	}
	if res.HTTPWarmSec, err = best(httpRun(0)); err != nil {
		return res, err
	}

	// Byte-identity across the transports, on the warm runs just taken.
	want := fmt.Sprintf("%+v", api.ChunkFromResult(0, nSegments, inProc))
	got := ""
	if len(httpChunks) == 1 {
		got = fmt.Sprintf("%+v", httpChunks[0])
	}
	res.Identical = got == want

	// Streamed segment-by-segment: total wall plus time-to-first-chunk
	// (the latency a consumer waits before results start flowing), both
	// taken from the same best round so first <= total by construction.
	res.HTTPChunkSec = -1
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		first := -1.0
		if _, err := cl.QueryStream(ctx, api.QueryRequest{Stream: scene, Query: "B", Chunk: 1},
			func(api.QueryChunk) error {
				if first < 0 {
					first = time.Since(t0).Seconds()
				}
				return nil
			}); err != nil {
			return res, err
		}
		if total := time.Since(t0).Seconds(); res.HTTPChunkSec < 0 || total < res.HTTPChunkSec {
			res.HTTPChunkSec, res.FirstChunkSec = total, first
		}
	}
	return res, nil
}

// RenderHTTPServe formats the artifact.
func RenderHTTPServe(r HTTPServeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP serving: in-process vs over-the-wire query latency (%s, %d segments)\n",
		r.Scene, r.Segments)
	fmt.Fprintf(&b, "%-34s %10s %10s %8s\n", "path", "cold", "warm", "wire tax")
	row := func(name string, cold, warm, base float64) {
		tax := "-"
		if base > 0 && warm > 0 {
			tax = fmt.Sprintf("%+.0f%%", (warm/base-1)*100)
		}
		coldS := "-"
		if cold > 0 {
			coldS = fmt.Sprintf("%8.1fms", cold*1e3)
		}
		fmt.Fprintf(&b, "%-34s %10s %8.1fms %8s\n", name, coldS, warm*1e3, tax)
	}
	row("in-process Server.Query", r.InProcColdSec, r.InProcWarmSec, r.InProcWarmSec)
	row("HTTP /v1/query (one chunk)", r.HTTPColdSec, r.HTTPWarmSec, r.InProcWarmSec)
	row("HTTP /v1/query (per-segment NDJSON)", -1, r.HTTPChunkSec, r.InProcWarmSec)
	fmt.Fprintf(&b, "first streamed chunk after %.1fms (of %.1fms total)\n",
		r.FirstChunkSec*1e3, r.HTTPChunkSec*1e3)
	if r.Identical {
		fmt.Fprintf(&b, "results byte-identical across transports: yes\n")
	} else {
		fmt.Fprintf(&b, "results byte-identical across transports: NO — INVESTIGATE\n")
	}
	return b.String()
}
