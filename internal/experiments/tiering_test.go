package experiments

import (
	"strings"
	"testing"
)

func TestTieringSmoke(t *testing.T) {
	e := NewEnv(120)
	res, err := Tiering(e, t.TempDir(), "jackson", 3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Fatal("cold or cached query output differs from fast-tier read")
	}
	if res.FastSec <= 0 || res.ColdSec <= 0 || res.CachedSec <= 0 {
		t.Fatalf("non-positive wall times: %+v", res)
	}
	if res.Demotions == 0 || res.FastSegsAfterPass != 0 {
		t.Fatalf("demotion pass did not empty the fast tier: %+v", res)
	}
	if !res.BudgetedWithinPass {
		t.Fatalf("unbudgeted run reported over budget: %+v", res)
	}
	out := RenderTiering(res)
	for _, want := range []string{"fast tier", "cold tier", "warm cache", "demotion", "identical"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
}
