package experiments

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/query"
	"repro/internal/server"
	"repro/internal/vidsim"
)

// TieringResult reports the tiered storage engine's three read steady
// states — every segment fast, every segment demoted cold, and a warm
// cache over cold — plus the placement and demotion accounting, with the
// invariant that matters: detections are identical wherever the bytes
// live.
type TieringResult struct {
	Scene     string
	Segments  int
	Shards    int
	FastBytes int64 // fast-tier byte budget handed to the server

	FastSFs, ColdSFs int // derived placement split of the configuration

	FastSec   float64 // query wall time, all segments on the fast tier
	ColdSec   float64 // query wall time after full demotion
	CachedSec float64 // query wall time, warm cache over the cold tier

	Demotions          int64
	FastBytesAfter     int64 // fast-tier live bytes once demotion settled
	ColdBytesAfter     int64
	FastSegsAfterPass  int
	ColdSegsAfterPass  int
	Identical          bool // detections equal across all three reads
	BudgetedWithinPass bool // fast tier within budget after the pass
}

// Tiering ingests nSegments of the scene into a fresh tiered store with
// the given shard count and fast-tier budget, then times query A against
// the fast tier, the cold tier (after an everything-ages demotion pass)
// and the warm retrieval cache.
func Tiering(e *Env, dir, scene string, nSegments, shards int, fastBytes int64) (TieringResult, error) {
	res := TieringResult{Scene: scene, Segments: nSegments, Shards: shards, FastBytes: fastBytes}
	sc, err := vidsim.DatasetByName(scene)
	if err != nil {
		return res, err
	}
	s, err := server.OpenWith(dir, server.Options{
		Shards:          shards,
		FastTierBytes:   fastBytes,
		DemoteAfterDays: 1,
	})
	if err != nil {
		return res, err
	}
	defer s.Close()
	p := e.Profiler(scene)
	var consumers []core.Consumer
	for _, op := range []ops.Operator{ops.Diff{}, ops.SNN{}, ops.NN{}} {
		consumers = append(consumers, core.Consumer{Op: op, Target: 0.9, Prof: p})
	}
	cfg, err := core.Configure(consumers, core.Options{StorageProfiler: p})
	if err != nil {
		return res, err
	}
	for _, sf := range cfg.Derivation.SFs {
		if sf.Placement == core.PlaceFast {
			res.FastSFs++
		} else {
			res.ColdSFs++
		}
	}
	if err := s.Reconfigure(cfg); err != nil {
		return res, err
	}
	if _, err := s.Ingest(sc, scene, nSegments); err != nil {
		return res, err
	}

	opNames := []string{"Diff", "S-NN", "NN"}
	const rounds = 3
	run := func(warm bool) (float64, server.QueryResult, error) {
		best := -1.0
		var out server.QueryResult
		n := rounds
		if warm {
			n++ // first pass populates the cache and is discarded
		}
		for i := 0; i < n; i++ {
			t0 := time.Now()
			r, err := s.Query(context.Background(), scene, query.QueryA(), opNames, 0.9, 0, nSegments)
			if err != nil {
				return 0, out, err
			}
			d := time.Since(t0).Seconds()
			if warm && i == 0 {
				continue
			}
			if best < 0 || d < best {
				best = d
			}
			out = r
		}
		return best, out, nil
	}

	s.SetCacheBudget(0)
	fastSec, fastOut, err := run(false)
	if err != nil {
		return res, err
	}
	res.FastSec = fastSec

	// Age everything past the demotion threshold: the whole stream
	// migrates to the cold tier (and the budget, if any, is enforced).
	if _, err := s.DemotePass(func(string, int) int { return 1 << 20 }); err != nil {
		return res, err
	}
	st := s.Stats()
	res.Demotions = st.Demotions
	res.FastBytesAfter = st.FastLiveBytes
	res.ColdBytesAfter = st.ColdLiveBytes
	res.FastSegsAfterPass = st.FastSegments
	res.ColdSegsAfterPass = st.ColdSegments
	// A settled pass either fits the budget or has demoted every segment
	// replica — the residue is then the undemotable metadata floor
	// (epoch configs, stream positions), not a budget violation.
	res.BudgetedWithinPass = fastBytes <= 0 || st.FastLiveBytes <= fastBytes || st.FastSegments == 0

	coldSec, coldOut, err := run(false)
	if err != nil {
		return res, err
	}
	res.ColdSec = coldSec
	s.SetCacheBudget(1 << 30)
	cachedSec, cachedOut, err := run(true)
	if err != nil {
		return res, err
	}
	res.CachedSec = cachedSec

	res.Identical = true
	for _, other := range []server.QueryResult{coldOut, cachedOut} {
		if len(other.Results) != len(fastOut.Results) {
			res.Identical = false
			break
		}
		for i := range fastOut.Results {
			if !reflect.DeepEqual(other.Results[i].Detections, fastOut.Results[i].Detections) ||
				!reflect.DeepEqual(other.Results[i].FinalPTS, fastOut.Results[i].FinalPTS) {
				res.Identical = false
			}
		}
	}
	return res, nil
}

// RenderTiering renders the comparison.
func RenderTiering(r TieringResult) string {
	s := fmt.Sprintf("Tiered storage: %s, %d segments, %d shards/tier, query A @ 0.9\n",
		r.Scene, r.Segments, r.Shards)
	s += fmt.Sprintf("placement: %d fast / %d cold storage formats\n", r.FastSFs, r.ColdSFs)
	rows := [][]string{
		{"fast tier", fmt.Sprintf("%.3fs", r.FastSec)},
		{"cold tier (demoted)", fmt.Sprintf("%.3fs", r.ColdSec)},
		{"cold tier + warm cache", fmt.Sprintf("%.3fs", r.CachedSec)},
	}
	s += Table([]string{"read path", "wall time"}, rows)
	s += fmt.Sprintf("demotion: %d replicas migrated; fast %d segs / %d B, cold %d segs / %d B\n",
		r.Demotions, r.FastSegsAfterPass, r.FastBytesAfter, r.ColdSegsAfterPass, r.ColdBytesAfter)
	if r.FastBytes > 0 {
		verdict := "within budget"
		switch {
		case !r.BudgetedWithinPass:
			verdict = "OVER BUDGET (BUG)"
		case r.FastBytesAfter > r.FastBytes:
			verdict = "at the metadata floor (every segment demoted)"
		}
		s += fmt.Sprintf("fast-tier budget %d B: %s after the pass\n", r.FastBytes, verdict)
	}
	if r.Identical {
		s += "detections: identical across fast, cold and cached reads\n"
	} else {
		s += "detections: MISMATCH between tiers (BUG)\n"
	}
	return s
}
