// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) plus the §7 Focus comparison. Each experiment returns
// structured rows and renders a paper-style text table; cmd/vbench prints
// them and bench_test.go wraps them as benchmarks.
//
// Absolute numbers come from the reproduction's virtual clock (calibrated
// per internal/profile), so the point of comparison with the paper is the
// shape: orderings, approximate ratios, and crossover locations.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/profile"
	"repro/internal/vidsim"
)

// AccuracyLevels are the per-operator accuracy options declared by the
// admin (§6.1).
var AccuracyLevels = []float64{0.95, 0.9, 0.8, 0.7}

// QueryAOps are profiled on jackson, QueryBOps on dashcam (§6.1).
var (
	QueryAOps = []ops.Operator{ops.Diff{}, ops.SNN{}, ops.NN{}}
	QueryBOps = []ops.Operator{ops.Motion{}, ops.License{}, ops.OCR{}}
)

// Env carries the shared profilers of an experiment run.
type Env struct {
	// ClipFrames is the profiling clip length; the full 10-second clip for
	// vbench, shorter for unit tests.
	ClipFrames int
	profilers  map[string]*profile.Profiler
}

// NewEnv returns an experiment environment with the given profiling clip
// length (0 selects the paper's 10-second clip).
func NewEnv(clipFrames int) *Env {
	if clipFrames == 0 {
		clipFrames = profile.DefaultClipFrames
	}
	return &Env{ClipFrames: clipFrames, profilers: map[string]*profile.Profiler{}}
}

// Profiler returns (creating on first use) the profiler for a dataset.
func (e *Env) Profiler(scene string) *profile.Profiler {
	if p, ok := e.profilers[scene]; ok {
		return p
	}
	sc, err := vidsim.DatasetByName(scene)
	if err != nil {
		panic("experiments: " + err.Error())
	}
	p := profile.New(sc)
	p.ClipFrames = e.ClipFrames
	e.profilers[scene] = p
	return p
}

// StandardConsumers returns the 24 consumers of the evaluation: the six
// query operators at the four accuracy levels, each bound to its profiling
// scene.
func (e *Env) StandardConsumers() []core.Consumer {
	var out []core.Consumer
	for _, op := range QueryAOps {
		for _, acc := range AccuracyLevels {
			out = append(out, core.Consumer{Op: op, Target: acc, Prof: e.Profiler("jackson")})
		}
	}
	for _, op := range QueryBOps {
		for _, acc := range AccuracyLevels {
			out = append(out, core.Consumer{Op: op, Target: acc, Prof: e.Profiler("dashcam")})
		}
	}
	return out
}

// Table renders rows as an aligned text table.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func x0(v float64) string  { return fmt.Sprintf("%.0fx", v) }
func mb(v float64) string  { return fmt.Sprintf("%.2f MB", v/1e6) }
func kbs(v float64) string { return fmt.Sprintf("%.1f KB/s", v/1024) }
