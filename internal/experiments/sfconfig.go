package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
)

// SFConfigResult compares the storage-format selection strategies (§6.4):
// heuristic coalescing against exhaustive partition enumeration and against
// distance-based clustering.
type SFConfigResult struct {
	NumCFs int

	HeuristicBytes  float64
	HeuristicSecs   float64
	HeuristicSFs    int
	HeuristicRounds int

	// Exhaustive enumeration is run only when the unique-CF count is at
	// most ExhaustiveCFLimit (Bell-number growth; the paper could afford 12
	// CFs on its testbed, this reproduction caps lower and documents it).
	ExhaustiveBytes      float64
	ExhaustiveSecs       float64
	ExhaustivePartitions int
	ExhaustiveSkipped    bool

	DistanceBytes float64
	DistanceSecs  float64
	DistanceSFs   int
}

// DefaultExhaustiveCFLimit bounds the exhaustive enumeration's input size
// for tests; vbench raises it.
const DefaultExhaustiveCFLimit = 9

// SFConfig derives storage formats for query B's consumers (as §6.4 does)
// under all three methods and reports costs and derivation times.
// exhaustiveLimit caps the unique-CF count the partition enumeration will
// attempt (Bell-number growth).
func SFConfig(e *Env, exhaustiveLimit int) (*SFConfigResult, error) {
	var consumers []core.Consumer
	for _, op := range QueryBOps {
		for _, acc := range AccuracyLevels {
			consumers = append(consumers, core.Consumer{Op: op, Target: acc, Prof: e.Profiler("dashcam")})
		}
	}
	choices := core.DeriveConsumptionFormats(consumers)
	cfs, _ := core.UniqueCFs(choices)
	res := &SFConfigResult{NumCFs: len(cfs)}
	p := e.Profiler("dashcam")

	t0 := time.Now()
	h, err := core.DeriveStorageFormats(choices, core.SFOptions{Profiler: p, Strategy: core.HeuristicSelection})
	if err != nil {
		return nil, fmt.Errorf("heuristic: %w", err)
	}
	res.HeuristicSecs = time.Since(t0).Seconds()
	res.HeuristicBytes = h.TotalBytesPerSec()
	res.HeuristicSFs = len(h.SFs)
	res.HeuristicRounds = h.Rounds

	t1 := time.Now()
	dd, err := core.DeriveStorageFormats(choices, core.SFOptions{Profiler: p, Strategy: core.DistanceSelection})
	if err != nil {
		return nil, fmt.Errorf("distance: %w", err)
	}
	res.DistanceSecs = time.Since(t1).Seconds()
	res.DistanceBytes = dd.TotalBytesPerSec()
	res.DistanceSFs = len(dd.SFs)

	if len(cfs) <= exhaustiveLimit {
		t2 := time.Now()
		ex, parts := core.ExhaustiveStorageSearch(choices, p)
		res.ExhaustiveSecs = time.Since(t2).Seconds()
		res.ExhaustiveBytes = ex.TotalBytesPerSec()
		res.ExhaustivePartitions = parts
	} else {
		res.ExhaustiveSkipped = true
	}
	return res, nil
}

// RenderSFConfig renders the §6.4 comparison.
func RenderSFConfig(r *SFConfigResult) string {
	rows := [][]string{
		{"heuristic", kbs(r.HeuristicBytes), f2(r.HeuristicSecs) + "s",
			fmt.Sprintf("%d SFs, %d rounds", r.HeuristicSFs, r.HeuristicRounds)},
		{"distance", kbs(r.DistanceBytes), f2(r.DistanceSecs) + "s",
			fmt.Sprintf("%d SFs, %.2fx heuristic storage", r.DistanceSFs, r.DistanceBytes/r.HeuristicBytes)},
	}
	if r.ExhaustiveSkipped {
		rows = append(rows, []string{"exhaustive", "-", "-",
			fmt.Sprintf("skipped: %d CFs exceed the enumeration limit", r.NumCFs)})
	} else {
		rows = append(rows, []string{"exhaustive", kbs(r.ExhaustiveBytes), f2(r.ExhaustiveSecs) + "s",
			fmt.Sprintf("%d partitions", r.ExhaustivePartitions)})
	}
	return fmt.Sprintf("Storage-format configuration (§6.4), %d unique CFs\n", r.NumCFs) +
		Table([]string{"method", "storage", "derivation time", "notes"}, rows)
}
