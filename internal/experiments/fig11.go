package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/format"
	"repro/internal/ingest"
	"repro/internal/kvstore"
	"repro/internal/query"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

// ConfigName identifies the alternative configurations of §6.2.
type ConfigName string

// The evaluated configurations.
const (
	ConfVStore ConfigName = "VStore" // derived CFs and coalesced SFs
	Conf1to1   ConfigName = "1->1"   // golden CF and golden SF for everyone
	Conf1toN   ConfigName = "1->N"   // derived CFs, golden SF only
	ConfNtoN   ConfigName = "N->N"   // derived CFs, one SF per unique CF
)

// QueryDatasets maps each dataset to its benchmark query (§6.1).
var QueryDatasets = []struct {
	Scene string
	Query string // "A" or "B"
}{
	{"jackson", "A"}, {"miami", "A"}, {"tucson", "A"},
	{"dashcam", "B"}, {"park", "B"}, {"airport", "B"},
}

// Fig11Row is one (dataset, accuracy, configuration) query execution.
type Fig11Row struct {
	Scene    string
	Accuracy float64 // 1.0 means the full-fidelity ground-truth run
	Config   ConfigName
	Speed    float64
}

// Fig11Result carries all three panels of Figure 11.
type Fig11Result struct {
	QuerySpeeds []Fig11Row // panel (a)
	Storage     []CostRow  // panel (b): GB/day per stream
	Ingest      []CostRow  // panel (c): CPU cores per stream
}

// CostRow is one (dataset, configuration) resource cost.
type CostRow struct {
	Scene    string
	Config   ConfigName
	GBPerDay float64
	Cores    float64
}

// fig11Bindings builds the per-stage (CF, SF) bindings of each configuration
// for one query's operators at one accuracy level.
func fig11Bindings(d *core.StorageDerivation, opsOf []string, acc float64, conf ConfigName) (query.Binding, []format.StorageFormat, error) {
	golden := goldenOf(d)
	var binding query.Binding
	sfSet := map[string]format.StorageFormat{}
	for _, opName := range opsOf {
		ci := -1
		for i, ch := range d.Choices {
			if ch.Consumer.Op.Name() == opName && ch.Consumer.Target == acc {
				ci = i
				break
			}
		}
		if ci < 0 {
			return nil, nil, fmt.Errorf("experiments: no consumer %s@%.2f in derivation", opName, acc)
		}
		ch := d.Choices[ci]
		var sb query.StageBinding
		switch conf {
		case Conf1to1:
			sb = query.StageBinding{CF: format.ConsumptionFormat{Fidelity: golden.Fidelity}, SF: golden}
		case Conf1toN:
			sb = query.StageBinding{CF: ch.CF, SF: golden}
		case ConfNtoN:
			// One SF per CF: identical fidelity, coding as chosen for a
			// dedicated format.
			sf := d.SFs[d.Subs[ci]].SF
			sf.Fidelity = ch.CF.Fidelity
			if sf.Coding.Raw {
				sf.Fidelity.Quality = format.QBest
			}
			sb = query.StageBinding{CF: ch.CF, SF: sf}
		default:
			sb = query.StageBinding{CF: ch.CF, SF: d.SFs[d.Subs[ci]].SF}
		}
		binding = append(binding, sb)
		sfSet[sb.SF.Key()] = sb.SF
	}
	sfs := make([]format.StorageFormat, 0, len(sfSet))
	for _, sf := range sfSet {
		sfs = append(sfs, sf)
	}
	return binding, sfs, nil
}

// Fig11 runs queries A and B over all six datasets at every accuracy level
// under each configuration, after ingesting nSegments segments per dataset.
// Passing the accuracies {1, 0.95, 0.9, 0.8} reproduces panel (a)'s x-axis
// (accuracy 1 is the 1→1 ground-truth point).
func Fig11(e *Env, dir string, nSegments int, accuracies []float64) (*Fig11Result, error) {
	cfg, err := Table3(e)
	if err != nil {
		return nil, err
	}
	d := cfg.Derivation
	res := &Fig11Result{}

	for _, ds := range QueryDatasets {
		sc, err := vidsim.DatasetByName(ds.Scene)
		if err != nil {
			return nil, err
		}
		cascade := query.QueryA()
		opNames := []string{"Diff", "S-NN", "NN"}
		if ds.Query == "B" {
			cascade = query.QueryB()
			opNames = []string{"Motion", "License", "OCR"}
		}
		// Collect every SF any configuration needs, ingest once.
		needed := map[string]format.StorageFormat{}
		type job struct {
			acc  float64
			conf ConfigName
			bind query.Binding
		}
		var jobs []job
		for _, acc := range accuracies {
			for _, conf := range []ConfigName{ConfVStore, Conf1toN, Conf1to1, ConfNtoN} {
				a := acc
				if acc == 1 {
					// Accuracy 1 is only meaningful as the golden run.
					if conf != Conf1to1 {
						continue
					}
					a = AccuracyLevels[0] // any declared level; formats are overridden to golden
				}
				b, sfs, err := fig11Bindings(d, opNames, a, conf)
				if err != nil {
					return nil, err
				}
				for _, sf := range sfs {
					needed[sf.Key()] = sf
				}
				jobs = append(jobs, job{acc, conf, b})
			}
		}
		sfList := make([]format.StorageFormat, 0, len(needed))
		for _, sf := range needed {
			sfList = append(sfList, sf)
		}
		kv, err := kvstore.Open(fmt.Sprintf("%s/%s", dir, ds.Scene), kvstore.Options{})
		if err != nil {
			return nil, err
		}
		store := segment.NewStore(kv)
		ing := ingest.Ingester{Store: store, SFs: sfList}
		if _, err := ing.Stream(sc, ds.Scene, 0, nSegments); err != nil {
			kv.Close()
			return nil, err
		}
		eng := query.Engine{Store: store}
		for _, j := range jobs {
			r, err := eng.Run(context.Background(), ds.Scene, cascade, j.bind, 0, nSegments)
			if err != nil {
				kv.Close()
				return nil, fmt.Errorf("%s %s@%.2f: %w", ds.Scene, j.conf, j.acc, err)
			}
			res.QuerySpeeds = append(res.QuerySpeeds, Fig11Row{
				Scene: ds.Scene, Accuracy: j.acc, Config: j.conf, Speed: r.Speed(),
			})
		}
		// Panels (b) and (c): storage and ingest per configuration, from
		// the SF sets each would maintain.
		res.Storage, res.Ingest = appendCosts(res.Storage, res.Ingest, e, d, ds.Scene)
		kv.Close()
	}
	return res, nil
}

// appendCosts computes panels (b) and (c) for one dataset: the cost of
// maintaining each configuration's SF set for that dataset's stream,
// profiled on the dataset itself.
func appendCosts(storage, ingestRows []CostRow, e *Env, d *core.StorageDerivation, scene string) ([]CostRow, []CostRow) {
	p := e.Profiler(scene)
	golden := goldenOf(d)

	// VStore: the coalesced SF set.
	var vB, vC float64
	for _, sf := range d.SFs {
		prof := p.ProfileStorage(sf.SF)
		vB += prof.BytesPerSec
		vC += prof.IngestSec
	}
	// 1→1 and 1→N: golden only.
	gProf := p.ProfileStorage(golden)
	// N→N: one SF per unique CF (identical fidelity) plus golden.
	cfs, _ := core.UniqueCFs(d.Choices)
	nB, nC := gProf.BytesPerSec, gProf.IngestSec
	for _, cf := range cfs {
		sf := format.StorageFormat{Fidelity: cf.Fidelity, Coding: format.Coding{Speed: format.SpeedSlowest, KeyframeI: 250}}
		// Match the dedicated coding the derivation would choose.
		for i, ch := range d.Choices {
			if ch.CF == cf {
				sf.Coding = d.SFs[d.Subs[i]].SF.Coding
				break
			}
		}
		if sf.Coding.Raw {
			sf.Fidelity.Quality = format.QBest
		}
		prof := p.ProfileStorage(sf)
		nB += prof.BytesPerSec
		nC += prof.IngestSec
	}
	gbDay := func(bps float64) float64 { return bps * 86400 / 1e9 }
	storage = append(storage,
		CostRow{scene, ConfVStore, gbDay(vB), vC},
		CostRow{scene, Conf1to1, gbDay(gProf.BytesPerSec), gProf.IngestSec},
		CostRow{scene, ConfNtoN, gbDay(nB), nC},
	)
	ingestRows = append(ingestRows,
		CostRow{scene, ConfVStore, gbDay(vB), vC},
		CostRow{scene, Conf1to1, gbDay(gProf.BytesPerSec), gProf.IngestSec},
		CostRow{scene, ConfNtoN, gbDay(nB), nC},
	)
	return storage, ingestRows
}

// RenderFig11 renders all three panels.
func RenderFig11(r *Fig11Result) string {
	var a [][]string
	for _, row := range r.QuerySpeeds {
		a = append(a, []string{row.Scene, f2(row.Accuracy), string(row.Config), x0(row.Speed)})
	}
	s := "Figure 11(a): query speed by target accuracy and configuration\n" +
		Table([]string{"dataset", "accuracy", "config", "speed"}, a)
	var b [][]string
	for _, row := range r.Storage {
		b = append(b, []string{row.Scene, string(row.Config), fmt.Sprintf("%.1f GB/day", row.GBPerDay)})
	}
	s += "Figure 11(b): storage cost per stream\n" + Table([]string{"dataset", "config", "storage"}, b)
	var c [][]string
	for _, row := range r.Ingest {
		c = append(c, []string{row.Scene, string(row.Config), fmt.Sprintf("%.2f cores", row.Cores)})
	}
	s += "Figure 11(c): ingestion cost per stream\n" + Table([]string{"dataset", "config", "ingest"}, c)
	return s
}
