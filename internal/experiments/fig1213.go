package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ops"
)

// Fig12Row is one point of Figure 12: ingest cost as operators join the
// library.
type Fig12Row struct {
	NumOperators int
	LastAdded    string
	IngestCores  float64
	NumSFs       int
}

// Fig12 adds the Table 2 operators one by one (each at all accuracy levels)
// and re-derives the storage formats: the transcoding cost plateaus because
// additional operators share existing formats.
func Fig12(e *Env) ([]Fig12Row, error) {
	// Table 2 order, with each operator profiled on a scene that exercises
	// it.
	sceneOf := func(name string) string {
		switch name {
		case "Motion", "License", "OCR":
			return "dashcam"
		default:
			return "jackson"
		}
	}
	var rows []Fig12Row
	var consumers []core.Consumer
	rows = append(rows, Fig12Row{NumOperators: 0})
	for _, op := range ops.All() {
		for _, acc := range AccuracyLevels {
			consumers = append(consumers, core.Consumer{Op: op, Target: acc, Prof: e.Profiler(sceneOf(op.Name()))})
		}
		choices := core.DeriveConsumptionFormats(consumers)
		d, err := core.DeriveStorageFormats(choices, core.SFOptions{Profiler: e.Profiler("jackson")})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig12Row{
			NumOperators: len(consumers) / len(AccuracyLevels),
			LastAdded:    op.Name(),
			IngestCores:  d.TotalIngestSec(),
			NumSFs:       len(d.SFs),
		})
	}
	return rows, nil
}

// RenderFig12 renders Figure 12.
func RenderFig12(rows []Fig12Row) string {
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{f0(r.NumOperators), r.LastAdded, f2(r.IngestCores), f0(r.NumSFs)})
	}
	return "Figure 12: transcoding cost does not scale with the number of operators\n" +
		Table([]string{"#operators", "added", "ingest cores", "#SFs"}, out)
}

// Fig13Budget is one storage-budget curve of Figure 13(a).
type Fig13Budget struct {
	Label        string
	BudgetBytes  int64
	K            float64
	OverallSpeed []float64   // per day
	Residual     [][]float64 // per day, per SF: residual GB
	SFLabels     []string
	Err          error
}

// Fig13 plans erosion under several storage budgets expressed as fractions
// of the full 10-day footprint (the paper's 2/3.5/4/5 TB against a 5 TB
// footprint correspond to fractions 0.4/0.7/0.8/1.0).
func Fig13(e *Env, fractions []float64) ([]Fig13Budget, error) {
	cfg, err := Table3(e)
	if err != nil {
		return nil, err
	}
	d := cfg.Derivation
	lifespan := 10
	fullPerDay := d.TotalBytesPerSec() * 86400
	full := fullPerDay * float64(lifespan)
	var out []Fig13Budget
	for _, fr := range fractions {
		budget := int64(full * fr)
		b := Fig13Budget{
			Label:       fmt.Sprintf("%.1f%% of full footprint", fr*100),
			BudgetBytes: budget,
		}
		plan, err := core.PlanErosion(d, core.ErosionOptions{
			Profiler:           e.Profiler("jackson"),
			LifespanDays:       lifespan,
			StorageBudgetBytes: budget,
		})
		if err != nil {
			b.Err = err
			out = append(out, b)
			continue
		}
		b.K = plan.K
		b.OverallSpeed = plan.OverallSpeed
		for i := range d.SFs {
			tag := fmt.Sprintf("SF%d", i)
			if i == d.Golden {
				tag += "(golden)"
			}
			b.SFLabels = append(b.SFLabels, tag)
		}
		for _, fracs := range plan.DeletedFrac {
			day := make([]float64, len(d.SFs))
			for i := range d.SFs {
				day[i] = d.SFs[i].Prof.BytesPerSec * 86400 * (1 - fracs[i]) / 1e9
			}
			b.Residual = append(b.Residual, day)
		}
		out = append(out, b)
	}
	return out, nil
}

// RenderFig13 renders both panels.
func RenderFig13(budgets []Fig13Budget) string {
	s := "Figure 13(a): overall relative speed vs video age\n"
	var a [][]string
	for _, b := range budgets {
		if b.Err != nil {
			a = append(a, []string{b.Label, "-", "infeasible: " + b.Err.Error()})
			continue
		}
		speeds := ""
		for day, sp := range b.OverallSpeed {
			if day > 0 {
				speeds += " "
			}
			speeds += f2(sp)
		}
		a = append(a, []string{b.Label, fmt.Sprintf("k=%.2f", b.K), speeds})
	}
	s += Table([]string{"budget", "decay", "speed by day 1..10"}, a)
	// Panel (b): residual sizes under the tightest feasible budget.
	for i := range budgets {
		b := budgets[i]
		if b.Err != nil || b.K == 0 {
			continue
		}
		s += fmt.Sprintf("Figure 13(b): residual stored GB per day (budget %s, k=%.2f)\n", b.Label, b.K)
		var rows [][]string
		for day, sizes := range b.Residual {
			row := []string{f0(day + 1)}
			var total float64
			for _, gb := range sizes {
				row = append(row, fmt.Sprintf("%.2f", gb))
				total += gb
			}
			row = append(row, fmt.Sprintf("%.2f", total))
			rows = append(rows, row)
		}
		s += Table(append(append([]string{"day"}, b.SFLabels...), "total"), rows)
		break
	}
	return s
}
