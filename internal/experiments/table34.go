package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/format"
)

// Table3 derives the full configuration of §6.2: all 24 consumers, no
// budgets. The rendered table mirrors the paper's Table 3.
func Table3(e *Env) (*core.Config, error) {
	return core.Configure(e.StandardConsumers(), core.Options{
		StorageProfiler: e.Profiler("jackson"),
		LifespanDays:    10,
	})
}

// RenderTable3 renders the configuration.
func RenderTable3(cfg *core.Config) string {
	return "Table 3: automatically derived configuration\n" + cfg.Table()
}

// Table4Row is one ingest-budget setting (Table 4): as the budget drops,
// VStore tunes coding faster and storage cost rises.
type Table4Row struct {
	BudgetCores float64
	IngestCores float64
	BytesPerSec float64
	GBPerDay    float64
	Codings     []string // per storage format
	NumSFs      int
	Err         error
}

// Table4 sweeps the ingest budget over the paper's ladder. A zero budget
// means unlimited (the paper's "≥7 cores" row).
func Table4(e *Env, budgets []float64) []Table4Row {
	consumers := e.StandardConsumers()
	var rows []Table4Row
	for _, b := range budgets {
		choices := core.DeriveConsumptionFormats(consumers)
		d, err := core.DeriveStorageFormats(choices, core.SFOptions{
			Profiler:        e.Profiler("jackson"),
			IngestBudgetSec: b,
		})
		row := Table4Row{BudgetCores: b, Err: err}
		if err == nil {
			row.IngestCores = d.TotalIngestSec()
			row.BytesPerSec = d.TotalBytesPerSec()
			row.GBPerDay = d.TotalBytesPerSec() * 86400 / 1e9
			row.NumSFs = len(d.SFs)
			for _, sf := range d.SFs {
				row.Codings = append(row.Codings, sf.SF.Coding.String())
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderTable4 renders the budget ladder.
func RenderTable4(rows []Table4Row) string {
	var out [][]string
	for _, r := range rows {
		budget := "unlimited"
		if r.BudgetCores > 0 {
			budget = f1(r.BudgetCores)
		}
		if r.Err != nil {
			out = append(out, []string{budget, "-", "-", "-", "infeasible: " + r.Err.Error()})
			continue
		}
		out = append(out, []string{
			budget, f2(r.IngestCores), kbs(r.BytesPerSec), fmt.Sprintf("%.1f GB/day", r.GBPerDay),
			fmt.Sprintf("%d SFs: %v", r.NumSFs, r.Codings),
		})
	}
	return "Table 4: adapting to the ingestion budget\n" +
		Table([]string{"budget (cores)", "ingest", "storage", "per day", "codings"}, out)
}

// DefaultTable4Budgets is the paper's ladder: unlimited, then 7, 6, 3, 2, 1
// cores.
var DefaultTable4Budgets = []float64{0, 7, 6, 3, 2, 1}

// goldenOf returns the derivation's golden storage format.
func goldenOf(d *core.StorageDerivation) format.StorageFormat {
	return d.SFs[d.Golden].SF
}
