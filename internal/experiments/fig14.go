package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/profile"
	"repro/internal/vidsim"
)

// Fig14Row compares VStore's consumption-format derivation against
// exhaustive profiling for one operator (Figure 14).
type Fig14Row struct {
	Op             string
	VStoreRuns     int
	VStoreSeconds  float64
	ExhaustiveRuns int
	ExhaustiveSecs float64
}

// Fig14 measures, per query operator, the profiling runs and wall time of
// deriving consumption formats for all accuracy levels, with the boundary
// search and exhaustively. Fresh profilers isolate the counters; memoisation
// across the operator's accuracy levels is retained, as the paper does.
func Fig14(clipFrames int) ([]Fig14Row, error) {
	sceneOf := map[string]string{
		"Diff": "jackson", "S-NN": "jackson", "NN": "jackson",
		"Motion": "dashcam", "License": "dashcam", "OCR": "dashcam",
	}
	operators := append(append([]ops.Operator{}, QueryAOps...), QueryBOps...)
	var rows []Fig14Row
	for _, op := range operators {
		sc, err := vidsim.DatasetByName(sceneOf[op.Name()])
		if err != nil {
			return nil, err
		}
		mk := func() *profile.Profiler {
			p := profile.New(sc)
			p.ClipFrames = clipFrames
			return p
		}
		// Boundary search for all accuracy levels.
		pv := mk()
		t0 := time.Now()
		for _, acc := range AccuracyLevels {
			core.DeriveConsumptionFormats([]core.Consumer{{Op: op, Target: acc, Prof: pv}})
		}
		vSecs := time.Since(t0).Seconds()
		// Exhaustive profiling (one pass covers all accuracy levels).
		pe := mk()
		t1 := time.Now()
		for _, acc := range AccuracyLevels {
			core.DeriveConsumptionExhaustive(core.Consumer{Op: op, Target: acc, Prof: pe})
		}
		eSecs := time.Since(t1).Seconds()
		rows = append(rows, Fig14Row{
			Op:             op.Name(),
			VStoreRuns:     pv.Counters().ConsumptionRuns,
			VStoreSeconds:  vSecs,
			ExhaustiveRuns: pe.Counters().ConsumptionRuns,
			ExhaustiveSecs: eSecs,
		})
	}
	return rows, nil
}

// RenderFig14 renders the comparison.
func RenderFig14(rows []Fig14Row) string {
	var out [][]string
	var vr, er int
	var vs, es float64
	for _, r := range rows {
		out = append(out, []string{
			r.Op, f0(r.VStoreRuns), f2(r.VStoreSeconds) + "s",
			f0(r.ExhaustiveRuns), f2(r.ExhaustiveSecs) + "s",
			f1(float64(r.ExhaustiveRuns) / float64(r.VStoreRuns)),
		})
		vr += r.VStoreRuns
		er += r.ExhaustiveRuns
		vs += r.VStoreSeconds
		es += r.ExhaustiveSecs
	}
	out = append(out, []string{"TOTAL", f0(vr), f2(vs) + "s", f0(er), f2(es) + "s", f1(es / vs)})
	return "Figure 14: consumption-format derivation overhead, VStore vs exhaustive\n" +
		Table([]string{"op", "vstore runs", "vstore time", "exhaustive runs", "exhaustive time", "run ratio"}, out)
}
