package experiments

import "testing"

// TestFastPathSmoke runs the fast-path artifact at a small scale and
// checks its invariants: identical pixels on every decode mode and
// retrieval path, pooling restored, and a warm hit beating a cold read.
func TestFastPathSmoke(t *testing.T) {
	res, err := FastPath(t.TempDir(), "jackson", 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + RenderFastPath(res))
	if !res.DecIdentical {
		t.Fatal("decode modes delivered different pixels")
	}
	if !res.RetIdentical {
		t.Fatal("retrieval paths delivered different pixels")
	}
	if !res.PoolingOnExit {
		t.Fatal("pooling left disabled")
	}
	if res.WarmSec >= res.ColdSec {
		t.Fatalf("warm hit (%.4fs) not faster than cold read (%.4fs)", res.WarmSec, res.ColdSec)
	}
	if res.ColdAllocs == 0 || res.DecodeSeqAllocs == 0 {
		t.Fatal("alloc accounting returned zero")
	}
}
