package experiments

import (
	"strings"
	"testing"

	"repro/internal/format"
)

// Render functions are cheap and always exercised, independent of -short.

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"xxxxxx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("header and rule misaligned:\n%s", out)
	}
}

func TestRenderFig3(t *testing.T) {
	a := RenderFig3a([]Fig3aRow{{Speed: format.SpeedSlowest, EncodeSpeed: 2, DecodeSpeed: 100, SizeBytes: 1 << 20}})
	if !strings.Contains(a, "slowest") || !strings.Contains(a, "1.05 MB") {
		t.Fatalf("fig3a render:\n%s", a)
	}
	b := RenderFig3b([]Fig3bRow{{KeyframeI: 250, DecodeSparse: 30, DecodeFull: 20, SizeBytes: 2 << 20, FramesDecodedSparse: 17}})
	if !strings.Contains(b, "250") || !strings.Contains(b, "17") {
		t.Fatalf("fig3b render:\n%s", b)
	}
}

func TestRenderFig456(t *testing.T) {
	p := map[string][]Fig4Row{
		"a: crop x Motion":     {{Knob: "crop", Value: "50%", Accuracy: 0.8, Ingest: 0.5, Storage: 0.5, Retrieval: 0.5, Consumption: 0.5}},
		"b: quality x License": {},
		"c: sampling x S-NN":   {},
		"d: sampling x NN":     {},
	}
	if out := RenderFig4(p); !strings.Contains(out, "crop x Motion") {
		t.Fatalf("fig4 render:\n%s", out)
	}
	f5 := RenderFig5([]Fig5Row{{Label: "A", Fidelity: format.MaxFidelity(), Accuracy: 0.8, Ingest: 1, Storage: 1024, Retrieval: 0.1, Consumption: 0.2}})
	if !strings.Contains(f5, "A") {
		t.Fatalf("fig5 render:\n%s", f5)
	}
	f6 := RenderFig6([]Fig6Row{{Op: "Motion", Fidelity: format.MaxFidelity(), Accuracy: 0.9, Consumption: 100, DecodeSame: 50, DecodeGolden: 20, RawSame: 400}})
	for _, want := range []string{"Motion", "100x", "50x", "400x"} {
		if !strings.Contains(f6, want) {
			t.Fatalf("fig6 render missing %q:\n%s", want, f6)
		}
	}
}

func TestRenderTable4AndFig12(t *testing.T) {
	t4 := RenderTable4([]Table4Row{
		{BudgetCores: 0, IngestCores: 8.6, BytesPerSec: 1 << 15, GBPerDay: 3.2, NumSFs: 7, Codings: []string{"RAW"}},
		{BudgetCores: 1, Err: errFake},
	})
	if !strings.Contains(t4, "unlimited") || !strings.Contains(t4, "infeasible") {
		t.Fatalf("table4 render:\n%s", t4)
	}
	f12 := RenderFig12([]Fig12Row{{NumOperators: 5, LastAdded: "License", IngestCores: 8.9, NumSFs: 7}})
	if !strings.Contains(f12, "License") {
		t.Fatalf("fig12 render:\n%s", f12)
	}
}

var errFake = errType{}

type errType struct{}

func (errType) Error() string { return "fake failure" }

func TestRenderFig11AndFig13(t *testing.T) {
	r := &Fig11Result{
		QuerySpeeds: []Fig11Row{{Scene: "jackson", Accuracy: 0.9, Config: ConfVStore, Speed: 300}},
		Storage:     []CostRow{{Scene: "jackson", Config: ConfNtoN, GBPerDay: 5.2}},
		Ingest:      []CostRow{{Scene: "jackson", Config: Conf1to1, Cores: 4.3}},
	}
	out := RenderFig11(r)
	for _, want := range []string{"VStore", "300x", "5.2 GB/day", "4.30 cores"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig11 render missing %q:\n%s", want, out)
		}
	}
	f13 := RenderFig13([]Fig13Budget{
		{Label: "40%", K: 5.2, OverallSpeed: []float64{1, 0.5}, SFLabels: []string{"SF0"}, Residual: [][]float64{{3.0}, {1.0}}},
		{Label: "bad", Err: errFake},
	})
	for _, want := range []string{"k=5.20", "infeasible", "SF0"} {
		if !strings.Contains(f13, want) {
			t.Fatalf("fig13 render missing %q:\n%s", want, f13)
		}
	}
}

func TestRenderFig14AndSFConfig(t *testing.T) {
	f14 := RenderFig14([]Fig14Row{{Op: "Diff", VStoreRuns: 69, VStoreSeconds: 0.2, ExhaustiveRuns: 600, ExhaustiveSecs: 5.9}})
	for _, want := range []string{"Diff", "69", "600", "TOTAL"} {
		if !strings.Contains(f14, want) {
			t.Fatalf("fig14 render missing %q:\n%s", want, f14)
		}
	}
	sc := RenderSFConfig(&SFConfigResult{
		NumCFs: 10, HeuristicBytes: 1 << 17, HeuristicSecs: 60, HeuristicSFs: 6, HeuristicRounds: 5,
		DistanceBytes: 1 << 19, DistanceSecs: 0.1, DistanceSFs: 5, ExhaustiveSkipped: true,
	})
	for _, want := range []string{"heuristic", "distance", "skipped", "4.00x"} {
		if !strings.Contains(sc, want) {
			t.Fatalf("sfconfig render missing %q:\n%s", want, sc)
		}
	}
}

func TestEnvProfilerReuse(t *testing.T) {
	e := NewEnv(60)
	if e.Profiler("jackson") != e.Profiler("jackson") {
		t.Fatal("profiler not cached per scene")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown dataset did not panic")
		}
	}()
	e.Profiler("atlantis")
}

func TestStandardConsumers(t *testing.T) {
	e := NewEnv(60)
	cs := e.StandardConsumers()
	if len(cs) != 24 {
		t.Fatalf("consumers = %d, want 24 (6 ops x 4 accuracies)", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		seen[c.Op.Name()] = true
	}
	for _, want := range []string{"Diff", "S-NN", "NN", "Motion", "License", "OCR"} {
		if !seen[want] {
			t.Fatalf("missing operator %s", want)
		}
	}
}
