// The stateless router: one HTTP server fronting a static membership of
// vstore nodes. Reads resolve the stream to its owner through the
// consistent-hash placer, fan the requested range out in chunks over a
// bounded worker pool against one leased snapshot, and merge the chunk
// results back in segment order — so the response is byte-identical to
// the same query against a single node holding the data, at any worker
// count. When the owner is down the session fails over to the stream's
// replica followers (chunks are deterministic, so a re-run lands the
// same bytes) and counts the degraded route. Writes forward to the owner
// and fan replication pulls out to the followers in the background.

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
)

// Options configures a router.
type Options struct {
	// Nodes is the static membership; at least one node.
	Nodes []Node
	// Replicas is how many nodes serve each stream (the owner plus
	// Replicas-1 followers). Zero or one means no replication.
	Replicas int
	// Workers bounds how many chunks of one query execute concurrently.
	// Zero selects 4; the merge order is segment order at any setting.
	Workers int
	// Hash names the placement strategy: "rendezvous" (default) or
	// "ring".
	Hash string
}

// Router serves the cluster. Create with NewRouter, start with Start (or
// mount Handler), stop with Shutdown.
type Router struct {
	nodes    []Node
	placer   Placer
	replicas int
	workers  int
	hashKind string

	http *http.Client // shared transport to the nodes; no global timeout (streams)
	mux  *http.ServeMux

	draining        atomic.Bool
	degradedRoutes  atomic.Int64
	replications    atomic.Int64
	replicationErrs atomic.Int64
	metrics         map[string]*endpointCounters

	// drainCtx ends when Shutdown begins, aborting background replication
	// pulls and any straggling fan-out.
	drainCtx    context.Context
	cancelDrain context.CancelFunc
	background  sync.WaitGroup

	httpSrv  *http.Server
	lis      net.Listener
	serveErr chan error
}

type endpointCounters struct {
	requests   atomic.Int64
	rejections atomic.Int64
	errors     atomic.Int64
}

func (c *endpointCounters) stats() EndpointStats {
	return EndpointStats{
		Requests:   c.requests.Load(),
		Rejections: c.rejections.Load(),
		Errors:     c.errors.Load(),
	}
}

// NewRouter builds a router over the membership.
func NewRouter(opts Options) (*Router, error) {
	placer, err := NewPlacer(opts.Hash, opts.Nodes)
	if err != nil {
		return nil, err
	}
	r := &Router{
		nodes:    append([]Node(nil), opts.Nodes...),
		placer:   placer,
		replicas: opts.Replicas,
		workers:  opts.Workers,
		hashKind: opts.Hash,
		http:     &http.Client{},
		mux:      http.NewServeMux(),
		metrics:  map[string]*endpointCounters{},
	}
	if r.replicas < 1 {
		r.replicas = 1
	}
	if r.workers <= 0 {
		r.workers = 4
	}
	if r.hashKind == "" {
		r.hashKind = "rendezvous"
	}
	r.drainCtx, r.cancelDrain = context.WithCancel(context.Background())
	r.route("query", "POST /v1/query", r.handleQuery)
	r.route("ingest", "POST /v1/ingest", r.handleIngest)
	r.route("subscribe", "POST /v1/subscribe", r.handleSubscribe)
	r.route("stats", "GET /v1/stats", r.handleStats)
	r.route("streams", "GET /v1/streams", r.handleStreams)
	r.route("cluster", "GET /v1/cluster", r.handleCluster)
	r.route("metrics", "GET /metrics", r.handleMetrics)
	r.route("healthz", "GET /healthz", r.handleHealthz)
	return r, nil
}

// clientFor builds the per-request client to one node, carrying the
// caller's API key through so the node accounts the work against the
// right tenant.
func (r *Router) clientFor(n Node, key string) *api.Client {
	return &api.Client{BaseURL: n.URL, APIKey: key, HTTP: r.http}
}

// Place exposes the router's placement — what GET /v1/cluster reports
// and what tests assert against.
func (r *Router) Place(stream string) []Node { return r.placer.Place(stream, r.replicas) }

// DegradedRoutes reports how many candidate nodes reads had to skip.
func (r *Router) DegradedRoutes() int64 { return r.degradedRoutes.Load() }

// statusWriter captures enough of the response to classify it.
type statusWriter struct {
	http.ResponseWriter
	status       int
	midStreamErr bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// route mounts one counted endpoint behind the drain gate (healthz and
// metrics stay reachable while draining, as on a node).
func (r *Router) route(name, pattern string, fn http.HandlerFunc) {
	c := &endpointCounters{}
	r.metrics[name] = c
	r.mux.HandleFunc(pattern, func(w http.ResponseWriter, req *http.Request) {
		c.requests.Add(1)
		if r.draining.Load() && name != "healthz" && name != "metrics" {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "router draining", http.StatusServiceUnavailable)
			return
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		fn(sw, req)
		switch {
		case sw.status == http.StatusTooManyRequests:
			c.rejections.Add(1)
		case sw.status >= 500 || sw.midStreamErr:
			c.errors.Add(1)
		}
	})
}

// apiKey mirrors the node-side extraction so the router forwards exactly
// what it was given.
func apiKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if auth := r.Header.Get("Authorization"); auth != "" {
		if k, found := strings.CutPrefix(auth, "Bearer "); found {
			return strings.TrimSpace(k)
		}
	}
	return ""
}

// writeStatusError forwards a node's status error verbatim — code,
// message, and Retry-After hint — so admission control at the nodes is
// visible through the router; anything else is a 502.
func writeStatusError(w http.ResponseWriter, err error) {
	var se *api.StatusError
	if errors.As(err, &se) {
		if se.RetryAfter > 0 {
			secs := int(se.RetryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		http.Error(w, se.Msg, se.Code)
		return
	}
	http.Error(w, err.Error(), http.StatusBadGateway)
}

// querySession is one query's routing state: the candidate nodes in
// placement order and the snapshot lease on whichever of them is
// currently serving. Workers share it; a failed chunk advances the
// session to the next candidate exactly once no matter how many workers
// hit the failure.
type querySession struct {
	r      *Router
	key    string
	stream string
	cands  []Node

	mu       sync.Mutex
	cur      int // index of the serving candidate
	cl       *api.Client
	lease    string
	streams  map[string]int // committed lengths at the FIRST pin (resolves To)
	releases []func()
}

// acquire returns the serving candidate's client and lease, advancing
// past dead candidates. The returned generation identifies the candidate
// for fail().
func (s *querySession) acquire(ctx context.Context) (gen int, cl *api.Client, lease string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.cl != nil {
			return s.cur, s.cl, s.lease, nil
		}
		if s.cur >= len(s.cands) {
			return 0, nil, "", fmt.Errorf("cluster: no live replica of %q (%d candidates tried)", s.stream, len(s.cands))
		}
		node := s.cands[s.cur]
		cl := s.r.clientFor(node, s.key)
		pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		resp, perr := cl.PinSnapshot(pctx)
		cancel()
		if perr != nil {
			// This candidate is down (or refusing): count the degraded
			// route and move on.
			s.r.degradedRoutes.Add(1)
			s.cur++
			continue
		}
		s.cl, s.lease = cl, resp.ID
		if s.streams == nil {
			s.streams = resp.Streams
		}
		id := resp.ID
		s.releases = append(s.releases, func() {
			rctx, rcancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer rcancel()
			_, _ = cl.ReleaseSnapshot(rctx, id)
		})
		return s.cur, s.cl, s.lease, nil
	}
}

// fail abandons the candidate identified by gen; later acquires move to
// the next one. A stale gen (another worker already advanced) is a no-op.
func (s *querySession) fail(gen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if gen == s.cur {
		s.cl, s.lease = nil, ""
		s.cur++
		s.r.degradedRoutes.Add(1)
	}
}

// release releases every lease the session pinned (best-effort; a lease
// on a dead node expires by TTL instead).
func (s *querySession) release() {
	s.mu.Lock()
	rels := s.releases
	s.releases = nil
	s.mu.Unlock()
	for _, rel := range rels {
		rel()
	}
}

// run executes one span [lo, hi) on the serving candidate, failing over
// until a candidate answers or all are exhausted. Chunks are
// deterministic functions of the replicated bytes, so a re-run on a
// follower returns the same chunk the owner would have. retry429 selects
// whether node-side admission rejections are retried here (mid-stream
// spans, where the 429 can no longer become a status code) or surfaced
// to the caller (the first span, which still can).
func (s *querySession) run(ctx context.Context, req api.QueryRequest, lo, hi int, retry429 bool) (api.QueryChunk, error) {
	for {
		gen, cl, lease, err := s.acquire(ctx)
		if err != nil {
			return api.QueryChunk{}, err
		}
		chunks, _, err := cl.Query(ctx, api.QueryRequest{
			Stream:   req.Stream,
			Query:    req.Query,
			Accuracy: req.Accuracy,
			From:     lo,
			To:       hi,
			Snap:     lease,
		})
		if err == nil {
			if len(chunks) != 1 {
				return api.QueryChunk{}, fmt.Errorf("cluster: node returned %d chunks for one span", len(chunks))
			}
			return chunks[0], nil
		}
		if ctx.Err() != nil {
			return api.QueryChunk{}, err
		}
		if api.IsRejected(err) {
			if !retry429 {
				return api.QueryChunk{}, err
			}
			hint, _ := api.RetryAfterHint(err)
			if hint <= 0 {
				hint = time.Second
			}
			select {
			case <-ctx.Done():
				return api.QueryChunk{}, ctx.Err()
			case <-time.After(hint):
			}
			continue
		}
		var se *api.StatusError
		if errors.As(err, &se) && se.Code < 500 && se.Code != http.StatusNotFound {
			// The node understood and refused (bad request, unauthorized):
			// no other replica will answer differently.
			return api.QueryChunk{}, err
		}
		// Transport failure, 5xx, truncated stream, or an expired lease
		// (404): the candidate is gone — fail over.
		s.fail(gen)
	}
}

// handleQuery serves one query across the cluster: resolve the stream's
// candidates, lease a snapshot on the first live one, fan the range out
// in chunks over the worker pool, and merge the results back in segment
// order. Errors before the first byte keep their status codes (a node's
// 429 stays a 429, hint included); errors after it travel in-band, as on
// a node.
func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	var qr api.QueryRequest
	if err := json.NewDecoder(req.Body).Decode(&qr); err != nil && !errors.Is(err, io.EOF) {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if qr.Stream == "" {
		http.Error(w, "missing stream", http.StatusBadRequest)
		return
	}
	if qr.From < 0 || (qr.To != 0 && qr.To < qr.From) || qr.Chunk < 0 {
		http.Error(w, "invalid segment range", http.StatusBadRequest)
		return
	}
	if qr.Snap != "" {
		http.Error(w, "snapshot leases are node-scoped; query the node directly", http.StatusBadRequest)
		return
	}

	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()
	sess := &querySession{r: r, key: apiKey(req), stream: qr.Stream, cands: r.Place(qr.Stream)}
	defer sess.release()
	if _, _, _, err := sess.acquire(ctx); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	from, to := qr.From, qr.To
	if to == 0 {
		to = sess.streams[qr.Stream]
	}
	if from > to {
		from = to
	}

	// The spans: one per chunk of the merge, executed concurrently,
	// emitted in order.
	step := qr.Chunk
	if step <= 0 {
		step = to - from
	}
	type span struct{ lo, hi int }
	var spans []span
	for lo := from; lo < to; lo += step {
		spans = append(spans, span{lo, minInt(lo+step, to)})
	}

	type spanResult struct {
		chunk api.QueryChunk
		err   error
	}
	results := make([]chan spanResult, len(spans))
	sem := make(chan struct{}, r.workers)
	for i := range spans {
		results[i] = make(chan spanResult, 1)
		go func(i int) {
			select {
			case sem <- struct{}{}:
				defer func() { <-sem }()
			case <-ctx.Done():
				results[i] <- spanResult{err: ctx.Err()}
				return
			}
			c, err := sess.run(ctx, qr, spans[i].lo, spans[i].hi, i > 0)
			results[i] <- spanResult{chunk: c, err: err}
		}(i)
	}

	t0 := time.Now()
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	wroteHeader := false
	emitted := 0
	for i := range spans {
		res := <-results[i]
		if res.err != nil {
			if !wroteHeader {
				// Nothing sent yet: the error keeps its status code.
				writeStatusError(w, res.err)
				return
			}
			if sw, ok := w.(*statusWriter); ok {
				sw.midStreamErr = true
			}
			_ = enc.Encode(api.QueryLine{Error: res.err.Error()})
			flush()
			return
		}
		if !wroteHeader {
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
			wroteHeader = true
		}
		c := res.chunk
		_ = enc.Encode(api.QueryLine{Chunk: &c})
		flush()
		emitted++
	}
	if !wroteHeader {
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
	}
	_ = enc.Encode(api.QueryLine{Done: &api.QuerySummary{
		Chunks:   emitted,
		Segments: to - from,
		WallMs:   float64(time.Since(t0).Nanoseconds()) / 1e6,
	}})
	flush()
}

// handleIngest forwards the write to the stream's owner, then fans
// replication pulls out to the followers in the background. Pulls are
// idempotent stream-level copies, so a failed pull is simply retried by
// the next ingest's fan-out.
func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	var ir api.IngestRequest
	if err := json.NewDecoder(req.Body).Decode(&ir); err != nil && !errors.Is(err, io.EOF) {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if ir.Stream == "" {
		http.Error(w, "missing stream", http.StatusBadRequest)
		return
	}
	cands := r.Place(ir.Stream)
	owner := cands[0]
	key := apiKey(req)
	resp, err := r.clientFor(owner, key).Ingest(req.Context(), ir)
	if err != nil {
		// Writes have one home: the owner down means the ingest fails
		// (replication is for read availability, not multi-master writes).
		writeStatusError(w, err)
		return
	}
	for _, follower := range cands[1:] {
		follower := follower
		r.background.Add(1)
		go func() {
			defer r.background.Done()
			pctx, cancel := context.WithTimeout(r.drainCtx, 2*time.Minute)
			defer cancel()
			if _, err := r.clientFor(follower, key).Pull(pctx, api.PullRequest{
				Stream: ir.Stream, Source: owner.URL,
			}); err != nil {
				r.replicationErrs.Add(1)
				return
			}
			r.replications.Add(1)
		}()
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleSubscribe proxies the standing-query stream to the stream's
// owner: the subscription lives where commits happen. The NDJSON lines
// pass through untouched, flushed as they arrive.
func (r *Router) handleSubscribe(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, 1<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var sr api.SubscribeRequest
	if err := json.Unmarshal(body, &sr); err != nil && len(body) > 0 {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if sr.Stream == "" {
		http.Error(w, "missing stream", http.StatusBadRequest)
		return
	}
	owner := r.Place(sr.Stream)[0]
	preq, err := http.NewRequestWithContext(req.Context(), http.MethodPost, owner.URL+"/v1/subscribe", bytes.NewReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	preq.Header.Set("Content-Type", "application/json")
	if k := apiKey(req); k != "" {
		preq.Header.Set("X-API-Key", k)
	}
	resp, err := r.http.Do(preq)
	if err != nil {
		http.Error(w, fmt.Sprintf("owner %s unreachable: %v", owner.Name, err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	if v := resp.Header.Get("Retry-After"); v != "" {
		w.Header().Set("Retry-After", v)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	buf := make([]byte, 32<<10)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}

// routerStats snapshots the router's own counters.
func (r *Router) routerStats() RouterStats {
	rs := RouterStats{
		DegradedRoutes:    r.degradedRoutes.Load(),
		Replications:      r.replications.Load(),
		ReplicationErrors: r.replicationErrs.Load(),
		Endpoints:         map[string]EndpointStats{},
	}
	for name, c := range r.metrics {
		rs.Endpoints[name] = c.stats()
	}
	return rs
}

// handleStats aggregates every node's /v1/stats under the router's own
// counters. Unreachable nodes are reported, not fatal — a degraded
// cluster still has statistics.
func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	resp := StatsResponse{
		Router:      r.routerStats(),
		Nodes:       map[string]*api.StatsResponse{},
		Unreachable: map[string]string{},
	}
	key := apiKey(req)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, n := range r.nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(req.Context(), 5*time.Second)
			defer cancel()
			st, err := r.clientFor(n, key).Stats(ctx)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				resp.Unreachable[n.Name] = err.Error()
				return
			}
			resp.Nodes[n.Name] = &st
		}()
	}
	wg.Wait()
	if len(resp.Unreachable) == 0 {
		resp.Unreachable = nil
	}
	writeJSON(w, http.StatusOK, resp)
}

// mergedStreams asks every node for its streams and keeps, per stream,
// the longest committed length (the owner leads its followers while
// replication is catching up).
func (r *Router) mergedStreams(ctx context.Context, key string) map[string]api.StreamInfo {
	merged := map[string]api.StreamInfo{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, n := range r.nodes {
		n := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			nctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			streams, err := r.clientFor(n, key).Streams(nctx)
			if err != nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			for name, info := range streams {
				if have, ok := merged[name]; !ok || info.Segments > have.Segments {
					merged[name] = info
				}
			}
		}()
	}
	wg.Wait()
	return merged
}

func (r *Router) handleStreams(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, api.StreamsResponse{
		Streams: r.mergedStreams(req.Context(), apiKey(req)),
	})
}

// handleCluster is placement introspection: the membership with
// liveness, and where every known stream lives.
func (r *Router) handleCluster(w http.ResponseWriter, req *http.Request) {
	resp := ClusterResponse{
		Hash:       r.hashKind,
		Replicas:   r.replicas,
		Workers:    r.workers,
		Placements: map[string][]string{},
	}
	key := apiKey(req)
	statuses := make([]NodeStatus, len(r.nodes))
	var wg sync.WaitGroup
	for i, n := range r.nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(req.Context(), 3*time.Second)
			defer cancel()
			st := NodeStatus{Node: n}
			h, err := r.clientFor(n, key).Healthz(ctx)
			if err != nil {
				st.Error = err.Error()
			} else {
				st.OK = h.OK
				st.Draining = h.Draining
			}
			statuses[i] = st
		}()
	}
	wg.Wait()
	resp.Nodes = statuses
	for stream := range r.mergedStreams(req.Context(), key) {
		var names []string
		for _, n := range r.Place(stream) {
			names = append(names, n.Name)
		}
		resp.Placements[stream] = names
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics is the router's own Prometheus text exposition. Node
// metrics stay on the nodes (scrape each /metrics directly); the router
// exports what only it knows — routing health and per-endpoint traffic —
// plus a liveness gauge per node.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	var b []byte
	app := func(format string, args ...any) { b = append(b, fmt.Sprintf(format, args...)...) }
	head := func(name, typ, help string) {
		app("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	head("vstore_router_degraded_routes_total", "counter",
		"Candidate nodes skipped while routing reads (owner down, failover to follower).")
	app("vstore_router_degraded_routes_total %d\n", r.degradedRoutes.Load())
	head("vstore_router_replications_total", "counter", "Follower replication pulls completed.")
	app("vstore_router_replications_total %d\n", r.replications.Load())
	head("vstore_router_replication_errors_total", "counter", "Follower replication pulls failed.")
	app("vstore_router_replication_errors_total %d\n", r.replicationErrs.Load())

	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	head("vstore_router_requests_total", "counter", "Requests received, by endpoint.")
	for _, name := range names {
		app("vstore_router_requests_total{endpoint=%q} %d\n", name, r.metrics[name].requests.Load())
	}
	head("vstore_router_rejections_total", "counter", "429 responses forwarded, by endpoint.")
	for _, name := range names {
		app("vstore_router_rejections_total{endpoint=%q} %d\n", name, r.metrics[name].rejections.Load())
	}
	head("vstore_router_errors_total", "counter", "5xx responses and mid-stream failures, by endpoint.")
	for _, name := range names {
		app("vstore_router_errors_total{endpoint=%q} %d\n", name, r.metrics[name].errors.Load())
	}

	// Node liveness, probed now.
	up := make([]int, len(r.nodes))
	var wg sync.WaitGroup
	for i, n := range r.nodes {
		i, n := i, n
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(req.Context(), 2*time.Second)
			defer cancel()
			if h, err := r.clientFor(n, "").Healthz(ctx); err == nil && h.OK {
				up[i] = 1
			}
		}()
	}
	wg.Wait()
	head("vstore_router_node_up", "gauge", "Whether the node answered its health check.")
	for i, n := range r.nodes {
		app("vstore_router_node_up{node=%q} %d\n", n.Name, up[i])
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	_, _ = w.Write(b)
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, api.HealthResponse{OK: true, Draining: r.draining.Load()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// Handler returns the routed handler for mounting under a caller-owned
// server.
func (r *Router) Handler() http.Handler { return r.mux }

// Start listens on addr (":0" picks a free port) and serves in the
// background until Shutdown. It returns the bound address.
func (r *Router) Start(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r.lis = lis
	r.httpSrv = &http.Server{Handler: r.mux, ReadHeaderTimeout: 10 * time.Second}
	r.serveErr = make(chan error, 1)
	go func() { r.serveErr <- r.httpSrv.Serve(lis) }()
	return lis.Addr(), nil
}

// Shutdown drains the router: new requests are refused, in-flight ones
// finish, and background replication pulls are aborted (they are
// idempotent and resume on the next ingest).
func (r *Router) Shutdown(ctx context.Context) error {
	r.draining.Store(true)
	r.cancelDrain()
	done := make(chan struct{})
	go func() {
		r.background.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
	if r.httpSrv == nil {
		return nil
	}
	err := r.httpSrv.Shutdown(ctx)
	if err != nil {
		_ = r.httpSrv.Close()
	}
	if serveErr := <-r.serveErr; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) && err == nil {
		err = serveErr
	}
	return err
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
