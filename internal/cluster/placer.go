// Package cluster is the multi-node serving layer: a static membership
// of vstore nodes, a consistent-hash placement of streams onto them, and
// a stateless router that serves the single-node HTTP API over the whole
// fleet — queries fan out in chunks to the owning node (failing over to
// replica followers), ingest forwards to the owner and replicates to the
// followers, and statistics aggregate across every node. The router keeps
// no durable state of its own: membership and the hash function are its
// only configuration, so any number of routers can front the same nodes.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Node is one store node in the static membership.
type Node struct {
	// Name is the node's stable identity — what the hash placements key
	// on, so renaming a node moves its streams.
	Name string `json:"name"`
	// URL is the node's API base, e.g. "http://10.0.0.3:8080".
	URL string `json:"url"`
}

// Placer maps a stream to the nodes serving it, in preference order: the
// first node is the owner (all writes, first choice for reads), the rest
// are replica followers. Placements are pure functions of (stream,
// membership) — every router derives the same answer with no
// coordination.
type Placer interface {
	// Place returns min(replicas, len(nodes)) distinct nodes for stream,
	// owner first. replicas < 1 is treated as 1.
	Place(stream string, replicas int) []Node
}

// NewPlacer builds the named placement strategy over the membership:
// "rendezvous" (the default for "") or "ring".
func NewPlacer(kind string, nodes []Node) (Placer, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: placement needs at least one node")
	}
	seen := map[string]bool{}
	for _, n := range nodes {
		if n.Name == "" || n.URL == "" {
			return nil, fmt.Errorf("cluster: node needs both a name and a URL, got %+v", n)
		}
		if seen[n.Name] {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
	}
	switch kind {
	case "", "rendezvous":
		return newRendezvous(nodes), nil
	case "ring":
		return newRing(nodes), nil
	default:
		return nil, fmt.Errorf("cluster: unknown hash strategy %q (want rendezvous or ring)", kind)
	}
}

func hash64(parts ...string) uint64 {
	h := fnv.New64a()
	for i, p := range parts {
		if i > 0 {
			_, _ = h.Write([]byte{0})
		}
		_, _ = h.Write([]byte(p))
	}
	return fmix64(h.Sum64())
}

// fmix64 is the murmur3 finalizer. FNV-1a alone keeps short inputs (node
// names, vnode indices) in a narrow band of the 64-bit circle, which
// collapses the ring onto one node; the extra avalanche spreads them.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rendezvous is highest-random-weight hashing: every node scores
// hash(stream, node) and the placement is the nodes by descending score.
// Removing a node disturbs only the streams it served — the defining
// property that makes failover and membership change cheap.
type rendezvous struct {
	nodes []Node
}

func newRendezvous(nodes []Node) *rendezvous {
	return &rendezvous{nodes: append([]Node(nil), nodes...)}
}

func (p *rendezvous) Place(stream string, replicas int) []Node {
	if replicas < 1 {
		replicas = 1
	}
	type scored struct {
		node  Node
		score uint64
	}
	ranked := make([]scored, len(p.nodes))
	for i, n := range p.nodes {
		ranked[i] = scored{node: n, score: hash64(stream, n.Name)}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].node.Name < ranked[j].node.Name
	})
	if replicas > len(ranked) {
		replicas = len(ranked)
	}
	out := make([]Node, replicas)
	for i := range out {
		out[i] = ranked[i].node
	}
	return out
}

// ringVnodes is how many points each node contributes to the ring —
// enough to spread ownership evenly across small memberships.
const ringVnodes = 64

// ring is classic consistent hashing: each node hashes to ringVnodes
// points on a circle, a stream hashes to one point, and the placement is
// the next distinct nodes walking clockwise.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node Node
}

func newRing(nodes []Node) *ring {
	r := &ring{}
	for _, n := range nodes {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(n.Name, fmt.Sprintf("%d", v)),
				node: n,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node.Name < r.points[j].node.Name
	})
	return r
}

func (p *ring) Place(stream string, replicas int) []Node {
	if replicas < 1 {
		replicas = 1
	}
	h := hash64(stream)
	start := sort.Search(len(p.points), func(i int) bool { return p.points[i].hash >= h })
	var out []Node
	seen := map[string]bool{}
	for i := 0; i < len(p.points) && len(out) < replicas; i++ {
		pt := p.points[(start+i)%len(p.points)]
		if seen[pt.node.Name] {
			continue
		}
		seen[pt.node.Name] = true
		out = append(out, pt.node)
	}
	return out
}
