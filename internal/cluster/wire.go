// Wire types of the router's own HTTP surface. Endpoints shared with a
// single node (/v1/query, /v1/ingest, /v1/subscribe, /v1/streams) speak
// the api package's wire types unchanged — a client cannot tell a router
// from a node on those paths. The types here cover what only a cluster
// has: aggregated statistics and placement introspection.

package cluster

import "repro/internal/api"

// EndpointStats is one router endpoint's counter set.
type EndpointStats struct {
	Requests   int64 `json:"requests"`
	Rejections int64 `json:"rejections"` // 429s forwarded from nodes
	Errors     int64 `json:"errors"`     // 5xx responses and mid-stream failures
}

// RouterStats is the router's own health: how often reads had to fail
// over from a stream's owner to a replica follower, and how replication
// fan-out is doing.
type RouterStats struct {
	// DegradedRoutes counts candidate nodes skipped while routing a read:
	// every pin or chunk that had to move past a dead (or lease-expired)
	// node adds one. Zero means every read ran on its stream's owner.
	DegradedRoutes int64 `json:"degraded_routes"`
	// Replications counts follower pulls completed after ingests.
	Replications int64 `json:"replications"`
	// ReplicationErrors counts follower pulls that failed; the next
	// ingest's pull retries the whole stream (pulls are idempotent).
	ReplicationErrors int64                    `json:"replication_errors"`
	Endpoints         map[string]EndpointStats `json:"endpoints"`
}

// StatsResponse is the body of the router's GET /v1/stats: its own
// counters plus every reachable node's full single-node stats.
type StatsResponse struct {
	Router RouterStats                   `json:"router"`
	Nodes  map[string]*api.StatsResponse `json:"nodes"`
	// Unreachable maps a node name to the error that kept its stats out.
	Unreachable map[string]string `json:"unreachable,omitempty"`
}

// NodeStatus is one node's liveness in GET /v1/cluster.
type NodeStatus struct {
	Node
	OK       bool   `json:"ok"`
	Draining bool   `json:"draining,omitempty"`
	Error    string `json:"error,omitempty"`
}

// ClusterResponse is the body of GET /v1/cluster: the membership, the
// placement configuration, and where every known stream lives (owner
// first, then its replica followers).
type ClusterResponse struct {
	Hash       string              `json:"hash"`
	Replicas   int                 `json:"replicas"`
	Workers    int                 `json:"workers"`
	Nodes      []NodeStatus        `json:"nodes"`
	Placements map[string][]string `json:"placements,omitempty"`
}
