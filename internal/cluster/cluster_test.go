package cluster_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ops"
	"repro/internal/profile"
	"repro/internal/server"
	"repro/internal/vidsim"
)

// testConfig derives the small two-operator configuration every node in
// these tests runs, memoised across tests (derivation profiles
// operators, which is expensive under the race detector).
func testConfig(t testing.TB) *core.Config {
	t.Helper()
	cfgOnce.Do(func() { cfgShared = deriveTestConfig(t) })
	if cfgShared == nil {
		t.Fatal("config derivation failed in an earlier test")
	}
	return cfgShared
}

var (
	cfgOnce   sync.Once
	cfgShared *core.Config
)

func deriveTestConfig(t testing.TB) *core.Config {
	t.Helper()
	sc, err := vidsim.DatasetByName("jackson")
	if err != nil {
		t.Fatal(err)
	}
	p := profile.New(sc)
	p.ClipFrames = 120
	consumers := []core.Consumer{
		{Op: ops.Motion{}, Target: 0.9, Prof: p},
		{Op: ops.License{}, Target: 0.9, Prof: p},
		{Op: ops.OCR{}, Target: 0.9, Prof: p},
	}
	choices := core.DeriveConsumptionFormats(consumers)
	d, err := core.DeriveStorageFormats(choices, core.SFOptions{Profiler: p})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &core.Config{Derivation: d}
	cfg.Runtime.CacheBytes = 32 << 20
	return cfg
}

const testQuery = "B"

func mustMarshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// canon strips the wall-clock-derived fields (virtual seconds, speedup)
// from chunks so byte-identity compares results, not timings.
func canon(chunks []api.QueryChunk) []api.QueryChunk {
	out := append([]api.QueryChunk(nil), chunks...)
	for i := range out {
		out[i].VirtualSeconds = 0
		out[i].Speed = 0
	}
	return out
}

// testNode is one in-process store node behind its HTTP API.
type testNode struct {
	node cluster.Node
	srv  *server.Server
	as   *api.Server
	cl   *api.Client
	once sync.Once
}

// shutdown drains the node's HTTP surface; idempotent so a test can kill
// a node mid-test and the cleanup stays safe.
func (n *testNode) shutdown(t *testing.T) {
	t.Helper()
	n.once.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := n.as.Shutdown(ctx); err != nil {
			t.Errorf("node %s shutdown: %v", n.node.Name, err)
		}
	})
}

func startNode(t *testing.T, name string) *testNode {
	t.Helper()
	srv, err := server.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Reconfigure(testConfig(t)); err != nil {
		t.Fatal(err)
	}
	as := api.New(srv, api.Limits{})
	addr, err := as.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &testNode{
		node: cluster.Node{Name: name, URL: "http://" + addr.String()},
		srv:  srv,
		as:   as,
		cl:   api.NewClient("http://" + addr.String()),
	}
	t.Cleanup(func() {
		n.shutdown(t)
		if err := srv.Close(); err != nil {
			t.Errorf("node %s close: %v", name, err)
		}
	})
	return n
}

func startRouter(t *testing.T, opts cluster.Options) (*cluster.Router, *api.Client, string) {
	t.Helper()
	rt, err := cluster.NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := rt.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := rt.Shutdown(ctx); err != nil {
			t.Errorf("router shutdown: %v", err)
		}
	})
	url := "http://" + addr.String()
	return rt, api.NewClient(url), url
}

// streamOwnedBy finds a stream name whose placement puts the wanted
// owner first — how tests pin which node a stream lands on without
// fixing the hash function's output in stone.
func streamOwnedBy(t *testing.T, place func(stream string) []cluster.Node, owner string) string {
	t.Helper()
	for i := 0; i < 1024; i++ {
		name := fmt.Sprintf("cam-%d", i)
		if place(name)[0].Name == owner {
			return name
		}
	}
	t.Fatalf("no probe stream hashed onto %q in 1024 tries", owner)
	return ""
}

// TestPlacers pins the placement contract for both strategies:
// deterministic across instances, distinct nodes owner-first, replica
// clamping, and reasonable spread. Rendezvous additionally keeps a
// stream's owner stable when an unrelated node leaves — the property
// failover relies on.
func TestPlacers(t *testing.T) {
	nodes := []cluster.Node{
		{Name: "a", URL: "http://a"},
		{Name: "b", URL: "http://b"},
		{Name: "c", URL: "http://c"},
	}
	for _, kind := range []string{"rendezvous", "ring"} {
		t.Run(kind, func(t *testing.T) {
			p1, err := cluster.NewPlacer(kind, nodes)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := cluster.NewPlacer(kind, nodes)
			if err != nil {
				t.Fatal(err)
			}
			owned := map[string]int{}
			for i := 0; i < 64; i++ {
				stream := fmt.Sprintf("stream-%d", i)
				got := p1.Place(stream, 2)
				if len(got) != 2 {
					t.Fatalf("%s: %d nodes for replicas=2", stream, len(got))
				}
				if got[0].Name == got[1].Name {
					t.Fatalf("%s: owner and follower are the same node", stream)
				}
				if again := p2.Place(stream, 2); mustMarshal(t, got) != mustMarshal(t, again) {
					t.Fatalf("%s: placement differs across placer instances", stream)
				}
				if all := p1.Place(stream, 99); len(all) != len(nodes) {
					t.Fatalf("%s: replicas beyond membership returned %d nodes", stream, len(all))
				}
				if one := p1.Place(stream, 0); len(one) != 1 {
					t.Fatalf("%s: replicas=0 returned %d nodes, want the owner", stream, len(one))
				}
				owned[got[0].Name]++
			}
			for _, n := range nodes {
				if owned[n.Name] == 0 {
					t.Errorf("node %s owns no stream of 64 — placement is not spreading", n.Name)
				}
			}
		})
	}

	// Rendezvous minimal disruption: drop node c; streams c did not own
	// keep their owner.
	full, err := cluster.NewPlacer("rendezvous", nodes)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := cluster.NewPlacer("rendezvous", nodes[:2])
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 64; i++ {
		stream := fmt.Sprintf("stream-%d", i)
		before := full.Place(stream, 1)[0].Name
		after := reduced.Place(stream, 1)[0].Name
		if before != "c" && before != after {
			t.Fatalf("%s: owner moved %s -> %s though its owner never left", stream, before, after)
		}
		if before == "c" {
			moved++
		}
	}
	if moved == 0 {
		t.Error("node c owned nothing — the disruption check proved nothing")
	}
}

func TestNewPlacerRejects(t *testing.T) {
	good := []cluster.Node{{Name: "a", URL: "http://a"}}
	if _, err := cluster.NewPlacer("rendezvous", nil); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := cluster.NewPlacer("sha-tree", good); err == nil {
		t.Error("unknown strategy accepted")
	}
	if _, err := cluster.NewPlacer("", []cluster.Node{{Name: "a"}}); err == nil {
		t.Error("node without URL accepted")
	}
	if _, err := cluster.NewPlacer("", append(good, cluster.Node{Name: "a", URL: "http://b"})); err == nil {
		t.Error("duplicate node name accepted")
	}
}

// TestRouterMergeDeterminism is the fan-out/merge contract: with two
// streams split across a two-node cluster, a chunked query through the
// router is byte-identical to the same query against the owning node
// alone — at every worker count, because the merge orders by segment,
// not by completion.
func TestRouterMergeDeterminism(t *testing.T) {
	n1, n2 := startNode(t, "n1"), startNode(t, "n2")
	nodes := []cluster.Node{n1.node, n2.node}
	rt1, rcl1, _ := startRouter(t, cluster.Options{Nodes: nodes, Workers: 1})
	_, rcl2, _ := startRouter(t, cluster.Options{Nodes: nodes, Workers: 2})
	_, rcl8, rurl8 := startRouter(t, cluster.Options{Nodes: nodes, Workers: 8})

	ctx := context.Background()
	streams := map[string]*testNode{
		streamOwnedBy(t, rt1.Place, "n1"): n1,
		streamOwnedBy(t, rt1.Place, "n2"): n2,
	}
	if len(streams) != 2 {
		t.Fatal("probe streams collided")
	}
	for stream := range streams {
		if _, err := rcl1.Ingest(ctx, api.IngestRequest{Stream: stream, Scene: "jackson", Segments: 3}); err != nil {
			t.Fatalf("ingest %s through router: %v", stream, err)
		}
	}

	// The split happened: each node holds exactly its own stream.
	for stream, owner := range streams {
		other := n1
		if owner == n1 {
			other = n2
		}
		ownerStreams, err := owner.cl.Streams(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if ownerStreams[stream].Segments != 3 {
			t.Fatalf("owner %s holds %d segments of %s, want 3", owner.node.Name, ownerStreams[stream].Segments, stream)
		}
		otherStreams, err := other.cl.Streams(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, leaked := otherStreams[stream]; leaked {
			t.Fatalf("stream %s leaked onto %s — not a split", stream, other.node.Name)
		}
	}

	for stream, owner := range streams {
		for _, chunk := range []int{0, 1} {
			req := api.QueryRequest{Stream: stream, Query: testQuery, Chunk: chunk}
			wantChunks, wantSum, err := owner.cl.Query(ctx, req)
			if err != nil {
				t.Fatalf("%s chunk=%d: single-node query: %v", stream, chunk, err)
			}
			for name, rcl := range map[string]*api.Client{"w1": rcl1, "w2": rcl2, "w8": rcl8} {
				gotChunks, gotSum, err := rcl.Query(ctx, req)
				if err != nil {
					t.Fatalf("%s chunk=%d via %s: %v", stream, chunk, name, err)
				}
				if l, r := mustMarshal(t, canon(wantChunks)), mustMarshal(t, canon(gotChunks)); l != r {
					t.Fatalf("%s chunk=%d via %s: chunks differ\nnode   %s\nrouter %s", stream, chunk, name, l, r)
				}
				if gotSum.Chunks != wantSum.Chunks || gotSum.Segments != wantSum.Segments {
					t.Fatalf("%s chunk=%d via %s: summary %+v, node %+v", stream, chunk, name, gotSum, wantSum)
				}
			}
		}
	}

	// The router's aggregation and introspection surfaces see the fleet.
	var stats cluster.StatsResponse
	getJSON(t, rurl8+"/v1/stats", &stats)
	if stats.Nodes["n1"] == nil || stats.Nodes["n2"] == nil {
		t.Fatalf("aggregated stats missing a node: %v", stats.Unreachable)
	}
	var info cluster.ClusterResponse
	getJSON(t, rurl8+"/v1/cluster", &info)
	if len(info.Nodes) != 2 || !info.Nodes[0].OK || !info.Nodes[1].OK {
		t.Fatalf("cluster introspection: %+v", info.Nodes)
	}
	for stream := range streams {
		if len(info.Placements[stream]) == 0 {
			t.Fatalf("no placement reported for %s", stream)
		}
	}
	resp, err := http.Get(rurl8 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `vstore_router_node_up{node="n1"} 1`) {
		t.Fatalf("metrics missing node liveness:\n%s", body)
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestRouterFailoverOnDrainedOwner: with replication factor 2, reads
// survive the owner going away — the router fails over to the follower,
// the client sees identical results and zero errors, and the degraded
// route is counted.
func TestRouterFailoverOnDrainedOwner(t *testing.T) {
	owner, follower := startNode(t, "owner"), startNode(t, "follower")
	rt, rcl, _ := startRouter(t, cluster.Options{
		Nodes:    []cluster.Node{owner.node, follower.node},
		Replicas: 2,
		Workers:  2,
	})
	ctx := context.Background()
	stream := streamOwnedBy(t, rt.Place, "owner")
	if _, err := rcl.Ingest(ctx, api.IngestRequest{Stream: stream, Scene: "jackson", Segments: 3}); err != nil {
		t.Fatal(err)
	}
	waitForSegments(t, follower.cl, stream, 3)

	want, _, err := follower.cl.Query(ctx, api.QueryRequest{Stream: stream, Query: testQuery, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}

	// The owner goes away (drain: every request 503s from here).
	owner.shutdown(t)
	got, sum, err := rcl.Query(ctx, api.QueryRequest{Stream: stream, Query: testQuery, Chunk: 1})
	if err != nil {
		t.Fatalf("query with the owner down: %v", err)
	}
	if l, r := mustMarshal(t, canon(want)), mustMarshal(t, canon(got)); l != r {
		t.Fatalf("failover results differ:\nfollower %s\nrouter   %s", l, r)
	}
	if sum.Chunks != 3 {
		t.Fatalf("failover summary %+v, want 3 chunks", sum)
	}
	if rt.DegradedRoutes() == 0 {
		t.Fatal("owner was down but DegradedRoutes never moved")
	}
}

// waitForSegments polls until the node holds n committed segments of the
// stream — how tests wait out the router's asynchronous replication.
func waitForSegments(t *testing.T, cl *api.Client, stream string, n int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		streams, err := cl.Streams(context.Background())
		if err == nil && streams[stream].Segments >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication never delivered %d segments of %s (have %d, err %v)",
				n, stream, streams[stream].Segments, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// TestRouterSubscribeProxy: a standing query through the router lands on
// the stream's owner and pushes commits back through the proxy.
func TestRouterSubscribeProxy(t *testing.T) {
	n1, n2 := startNode(t, "n1"), startNode(t, "n2")
	rt, rcl, _ := startRouter(t, cluster.Options{Nodes: []cluster.Node{n1.node, n2.node}})
	stream := streamOwnedBy(t, rt.Place, "n2")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	acks := make(chan api.SubAck, 1)
	chunks := make(chan api.QueryChunk, 16)
	done := make(chan error, 1)
	go func() {
		_, err := rcl.Subscribe(ctx, api.SubscribeRequest{Stream: stream, Query: testQuery}, func(ev api.SubEvent) error {
			switch {
			case ev.Ack != nil:
				acks <- *ev.Ack
			case ev.Chunk != nil:
				chunks <- *ev.Chunk
			}
			return nil
		})
		done <- err
	}()
	select {
	case <-acks:
	case err := <-done:
		t.Fatalf("subscription ended before its ack: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("no subscription ack through the router")
	}
	if _, err := rcl.Ingest(context.Background(), api.IngestRequest{Stream: stream, Scene: "jackson", Segments: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case c := <-chunks:
		if c.Seg0 != 0 || c.Seg1 != 1 {
			t.Fatalf("pushed chunk spans [%d,%d), want [0,1)", c.Seg0, c.Seg1)
		}
	case err := <-done:
		t.Fatalf("subscription ended before its push: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("commit never reached the subscriber through the proxy")
	}
	cancel()
	select {
	case <-done: // canceling client-side ends the proxy stream; any error is ours
	case <-time.After(10 * time.Second):
		t.Fatal("subscription stream did not end on cancel")
	}
}

// TestClusterNodeChild is the victim half of the kill harness — not a
// test on its own. With VSTORE_CLUSTER_NODE_DIR set it opens the store
// there (configuration and footage were committed by the parent), serves
// the HTTP API on a free port, prints the address, and waits for the
// parent's SIGKILL. Failures exit non-zero so the parent can tell "child
// broke" from "child was killed".
func TestClusterNodeChild(t *testing.T) {
	dir := os.Getenv("VSTORE_CLUSTER_NODE_DIR")
	if dir == "" {
		t.Skip("cluster kill-harness child; run via TestRouterKillNodeFailover")
	}
	srv, err := server.Open(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster child open:", err)
		os.Exit(3)
	}
	as := api.New(srv, api.Limits{})
	addr, err := as.Start("127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cluster child listen:", err)
		os.Exit(3)
	}
	fmt.Printf("NODE_ADDR http://%s\n", addr)
	for {
		time.Sleep(time.Hour) // only the SIGKILL ends this
	}
}

// TestRouterKillNodeFailover is the kill-a-node contract: SIGKILL the
// stream's owner in the middle of a chunked query and the client must
// see nothing — the remaining chunks fail over to the replica follower,
// arrive byte-identical, and the degraded-route counter moves.
func TestRouterKillNodeFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills a child process")
	}

	// The victim's store is prepared here, then served by the child: a
	// kill mid-query must not cost committed footage its readability.
	stream := func() string {
		placer, err := cluster.NewPlacer("rendezvous", []cluster.Node{
			{Name: "victim", URL: "http://x"}, {Name: "survivor", URL: "http://y"},
		})
		if err != nil {
			t.Fatal(err)
		}
		return streamOwnedBy(t, func(s string) []cluster.Node { return placer.Place(s, 1) }, "victim")
	}()
	const segments = 5
	victimDir := t.TempDir()
	prep, err := server.Open(victimDir)
	if err != nil {
		t.Fatal(err)
	}
	if err := prep.Reconfigure(testConfig(t)); err != nil {
		t.Fatal(err)
	}
	sc, err := vidsim.DatasetByName("jackson")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Ingest(sc, stream, segments); err != nil {
		t.Fatal(err)
	}
	if err := prep.Close(); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0], "-test.run=^TestClusterNodeChild$", "-test.v")
	cmd.Env = append(os.Environ(), "VSTORE_CLUSTER_NODE_DIR="+victimDir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if url, ok := strings.CutPrefix(sc.Text(), "NODE_ADDR "); ok {
				addrCh <- url
				return
			}
		}
	}()
	var victimURL string
	select {
	case victimURL = <-addrCh:
	case <-time.After(60 * time.Second):
		t.Fatal("child node never reported its address")
	}

	survivor := startNode(t, "survivor")
	rt, rcl, _ := startRouter(t, cluster.Options{
		Nodes: []cluster.Node{
			{Name: "victim", URL: victimURL},
			survivor.node,
		},
		Replicas: 2,
		Workers:  1, // sequential chunks: the kill lands with spans still pending
	})

	// Replicate the stream onto the survivor before the kill — R=2 means
	// the follower already holds every committed segment.
	ctx := context.Background()
	pulled, err := survivor.cl.Pull(ctx, api.PullRequest{Stream: stream, Source: victimURL})
	if err != nil {
		t.Fatal(err)
	}
	if pulled.Segments != segments {
		t.Fatalf("replication adopted %d segments, want %d", pulled.Segments, segments)
	}
	want, _, err := survivor.cl.Query(ctx, api.QueryRequest{Stream: stream, Query: testQuery, Chunk: 1})
	if err != nil {
		t.Fatal(err)
	}

	// The query: kill the owner the moment its first chunk arrives. The
	// stream must keep flowing — every remaining chunk from the follower,
	// no client-visible error anywhere.
	var got []api.QueryChunk
	var killOnce sync.Once
	sum, err := rcl.QueryStream(ctx, api.QueryRequest{Stream: stream, Query: testQuery, Chunk: 1}, func(c api.QueryChunk) error {
		got = append(got, c)
		killOnce.Do(func() {
			if err := cmd.Process.Kill(); err != nil {
				t.Errorf("kill: %v", err)
			}
		})
		return nil
	})
	if err != nil {
		t.Fatalf("query through the kill: %v", err)
	}
	if sum.Chunks != segments || len(got) != segments {
		t.Fatalf("got %d chunks (summary %d), want %d", len(got), sum.Chunks, segments)
	}
	if l, r := mustMarshal(t, canon(want)), mustMarshal(t, canon(got)); l != r {
		t.Fatalf("chunks through the kill differ from the follower's:\nfollower %s\nrouter   %s", l, r)
	}
	if rt.DegradedRoutes() == 0 {
		t.Fatal("the owner died mid-query but DegradedRoutes never moved")
	}

	// The cluster keeps answering with the owner gone for good.
	again, sum2, err := rcl.Query(ctx, api.QueryRequest{Stream: stream, Query: testQuery, Chunk: 1})
	if err != nil {
		t.Fatalf("query after the kill: %v", err)
	}
	if sum2.Chunks != segments || mustMarshal(t, canon(again)) != mustMarshal(t, canon(want)) {
		t.Fatalf("post-kill query diverged: %d chunks", sum2.Chunks)
	}
}
