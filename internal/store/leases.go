package store

import (
	"fmt"
	"sync"
	"time"
)

// DefaultLeaseTTL is how long an untouched snapshot lease survives. A
// remote peer that pins a snapshot and vanishes (crash, partition) must
// not pin erosion's physical deletes forever; any lease operation renews
// the clock.
const DefaultLeaseTTL = 2 * time.Minute

// Leases is a TTL-bounded table of pinned snapshots, keyed by opaque ID —
// how the HTTP layer hands a remote peer a snapshot it can issue several
// reads and chunked evaluations against. Expiry is lazy: every operation
// sweeps, so an abandoned lease releases its pin the next time anything
// touches the table (or at ReleaseAll on shutdown).
type Leases struct {
	mu      sync.Mutex
	ttl     time.Duration
	now     func() time.Time // injectable clock for tests
	leases  map[string]*lease
	nextID  int64
	granted int64
	expired int64
}

type lease struct {
	snap Snapshot
	last time.Time
}

// NewLeases returns a lease table whose untouched entries expire after
// ttl (zero selects DefaultLeaseTTL).
func NewLeases(ttl time.Duration) *Leases {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	return &Leases{ttl: ttl, now: time.Now, leases: map[string]*lease{}}
}

// SetClock injects the time source (tests drive expiry deterministically).
func (l *Leases) SetClock(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// sweepLocked releases every lease idle past the TTL. Caller holds mu.
func (l *Leases) sweepLocked() {
	cutoff := l.now().Add(-l.ttl)
	for id, le := range l.leases {
		if le.last.Before(cutoff) {
			_ = le.snap.Release()
			delete(l.leases, id)
			l.expired++
		}
	}
}

// Grant registers the pinned snapshot and returns its lease ID. The table
// owns the snapshot's release from here: via Release, TTL expiry, or
// ReleaseAll.
func (l *Leases) Grant(snap Snapshot) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sweepLocked()
	l.nextID++
	l.granted++
	id := fmt.Sprintf("lease-%d", l.nextID)
	l.leases[id] = &lease{snap: snap, last: l.now()}
	return id
}

// Get returns the leased snapshot and renews its TTL. ok is false for an
// unknown (or already expired) ID.
func (l *Leases) Get(id string) (Snapshot, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sweepLocked()
	le, ok := l.leases[id]
	if !ok {
		return nil, false
	}
	le.last = l.now()
	return le.snap, true
}

// Release ends the lease, releasing its snapshot. It reports whether the
// ID was live; releasing an unknown or expired lease is a no-op.
func (l *Leases) Release(id string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	le, ok := l.leases[id]
	if ok {
		_ = le.snap.Release()
		delete(l.leases, id)
	}
	l.sweepLocked()
	return ok
}

// ReleaseAll releases every live lease — shutdown's guarantee that no
// remote pin outlives the server.
func (l *Leases) ReleaseAll() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for id, le := range l.leases {
		_ = le.snap.Release()
		delete(l.leases, id)
	}
}

// LeaseStats is the table's counters, surfaced via /v1/stats.
type LeaseStats struct {
	Active  int   `json:"active"`
	Granted int64 `json:"granted"`
	Expired int64 `json:"expired"`
}

// Stats snapshots the table's counters (sweeping first, so Active counts
// only leases that would actually answer a Get).
func (l *Leases) Stats() LeaseStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sweepLocked()
	return LeaseStats{Active: len(l.leases), Granted: l.granted, Expired: l.expired}
}
