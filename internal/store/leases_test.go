package store

import (
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/retrieve"
)

// fakeSnap counts releases — the only behavior the lease table owns.
type fakeSnap struct {
	released int
}

func (f *fakeSnap) Segments(string) int       { return 0 }
func (f *fakeSnap) Refs(string, string) []int { return nil }
func (f *fakeSnap) Visible(string, format.StorageFormat, int) bool {
	return false
}
func (f *fakeSnap) GetEncoded(string, format.StorageFormat, int) (*codec.Encoded, error) {
	return nil, nil
}
func (f *fakeSnap) GetRaw(string, format.StorageFormat, int, func(int) bool) ([]*frame.Frame, int64, error) {
	return nil, 0, nil
}
func (f *fakeSnap) Release() error {
	f.released++
	return nil
}

// Any store.Snapshot must feed the query engine directly.
var _ retrieve.SegmentReader = Snapshot(nil)

func TestLeaseGrantGetRelease(t *testing.T) {
	l := NewLeases(time.Minute)
	sn := &fakeSnap{}
	id := l.Grant(sn)
	if id == "" {
		t.Fatal("empty lease id")
	}
	got, ok := l.Get(id)
	if !ok || got != Snapshot(sn) {
		t.Fatalf("Get(%q) = %v, %v", id, got, ok)
	}
	if _, ok := l.Get("lease-999"); ok {
		t.Fatal("unknown lease answered")
	}
	if !l.Release(id) {
		t.Fatal("Release reported the live lease unknown")
	}
	if sn.released != 1 {
		t.Fatalf("snapshot released %d times, want 1", sn.released)
	}
	if l.Release(id) {
		t.Fatal("double Release reported live")
	}
	if _, ok := l.Get(id); ok {
		t.Fatal("released lease still answers")
	}
}

func TestLeaseTTLExpiry(t *testing.T) {
	l := NewLeases(time.Minute)
	now := time.Unix(1000, 0)
	l.SetClock(func() time.Time { return now })
	a, b := &fakeSnap{}, &fakeSnap{}
	idA := l.Grant(a)
	idB := l.Grant(b)

	// Touching B inside the TTL renews it; A goes idle.
	now = now.Add(50 * time.Second)
	if _, ok := l.Get(idB); !ok {
		t.Fatal("lease B lost before its TTL")
	}
	now = now.Add(50 * time.Second) // A idle 100s > TTL, B idle 50s
	if _, ok := l.Get(idA); ok {
		t.Fatal("lease A survived past its TTL")
	}
	if a.released != 1 {
		t.Fatalf("expired lease released %d times, want 1", a.released)
	}
	if _, ok := l.Get(idB); !ok {
		t.Fatal("renewed lease B expired with A")
	}
	st := l.Stats()
	if st.Active != 1 || st.Granted != 2 || st.Expired != 1 {
		t.Fatalf("stats = %+v, want active 1 granted 2 expired 1", st)
	}
}

func TestLeaseReleaseAll(t *testing.T) {
	l := NewLeases(0)
	snaps := []*fakeSnap{{}, {}, {}}
	for _, sn := range snaps {
		l.Grant(sn)
	}
	l.ReleaseAll()
	for i, sn := range snaps {
		if sn.released != 1 {
			t.Fatalf("snapshot %d released %d times, want 1", i, sn.released)
		}
	}
	if st := l.Stats(); st.Active != 0 {
		t.Fatalf("active = %d after ReleaseAll", st.Active)
	}
}
