// Package store is the transport-agnostic boundary between the query/
// serving engine and whatever holds the segments. It names the narrow
// surface the engine actually uses — pin a consistent snapshot, enumerate
// committed refs, read segments through the snapshot, evaluate a query
// against it, observe commits — without saying anything about where the
// bytes live.
//
// Two implementations exist: the in-process *server.Server (the store and
// the engine share an address space — the original single-node deployment)
// and api.RemoteStore (the same surface over the HTTP NDJSON wire, so the
// engine can run against a peer node). The contract that makes the split
// safe is byte-identity: every read and every evaluation through a
// Snapshot must return exactly what the in-process path returns over the
// same committed set, so the engine packages (query, retrieve, results,
// sub, repair) cannot tell — and must not care — which side of a socket
// their store is on. The cluster layer (internal/cluster) builds on this:
// a router fans one query's spans across nodes and merges the chunks, and
// the answer is provably the single-node answer.
package store

import (
	"context"

	"repro/internal/codec"
	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/query"
	"repro/internal/segment"
)

// Snapshot is one pinned, immutable view of a store's committed segment
// set. Reads through it are repeatable: segments eroded after the pin stay
// readable until Release, segments committed after it stay invisible. The
// read methods satisfy retrieve.SegmentReader, so a query engine pointed
// at a Snapshot observes exactly the pinned set for its whole run.
//
// Implementations must be safe for concurrent use — the engine fans
// per-segment reads across a worker pool.
type Snapshot interface {
	// Segments returns the stream's committed segment count at pin time;
	// [0, Segments) is the widest range a snapshot query can cover.
	Segments(stream string) int
	// Refs returns the sorted committed segment indices of the stream in
	// the storage format identified by sfKey.
	Refs(stream, sfKey string) []int
	// Visible reports whether the replica may be read at all (it was
	// committed when the snapshot was pinned). Consulted before every
	// lookup, cache lookups included.
	Visible(stream string, sf format.StorageFormat, idx int) bool
	// GetEncoded loads an encoded segment the snapshot contains.
	GetEncoded(stream string, sf format.StorageFormat, idx int) (*codec.Encoded, error)
	// GetRaw loads the raw frames for which keep(pts) is true (nil keeps
	// all), returning the disk bytes the read cost — implementations must
	// account exactly like segment.Store.GetRaw so stats stay identical
	// across transports.
	GetRaw(stream string, sf format.StorageFormat, idx int, keep func(pts int) bool) ([]*frame.Frame, int64, error)
	// Release ends the pin. Idempotent; reads after Release are undefined.
	Release() error
}

// Request names one query evaluation: the cascade (by name, resolved
// through query.ByName), the target accuracy, and the segment range
// [Seg0, Seg1) of the stream. Zero Query selects "A"; zero Accuracy
// selects 0.9 — the defaults every existing entry point applies.
type Request struct {
	Stream   string
	Query    string
	Accuracy float64
	Seg0     int
	Seg1     int
}

// Result is a query's outcome: per-epoch span results merged in segment
// order, exactly server.QueryResult (which aliases this type).
type Result struct {
	Results []query.Result
}

// Speed returns the overall query speed across spans.
func (r Result) Speed() float64 {
	var vid, sec float64
	for _, one := range r.Results {
		vid += one.VideoSeconds
		sec += one.VirtualSeconds
	}
	if sec <= 0 {
		return 0
	}
	return vid / sec
}

// Detections returns all final-stage results across spans.
func (r Result) Detections() []query.Result {
	return r.Results
}

// Store is the transport-agnostic store surface. All methods are safe for
// concurrent use.
type Store interface {
	// Pin freezes the current committed state for querying. The caller
	// must Release the snapshot.
	Pin() (Snapshot, error)
	// Evaluate runs the request against the pinned snapshot, through the
	// full engine path (epoch splitting, binding resolution, degraded
	// fallback) of whichever node owns the bytes. snap must come from this
	// store's Pin. The result is byte-identical at the wire-chunk level to
	// any other evaluation of the same request over the same committed set.
	Evaluate(ctx context.Context, snap Snapshot, req Request) (Result, error)
	// SubscribeCommits registers fn to observe every segment commit from
	// this point on, exactly once, in commit order — the hook standing
	// queries hang off. fn must be fast and non-blocking (hand off to a
	// bounded channel); the returned cancel detaches it.
	SubscribeCommits(fn func(segment.Commit)) (cancel func())
	// StreamSegments returns every known stream with its committed segment
	// count.
	StreamSegments() map[string]int
}
