package results

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/ops"
	"repro/internal/retrieve"
)

// fakeKV is a map-backed KV with injectable failures, standing in for the
// tiered engine in unit tests.
type fakeKV struct {
	m       map[string][]byte
	failPut bool
	puts    int
	deletes int
}

func newFakeKV() *fakeKV { return &fakeKV{m: map[string][]byte{}} }

func (f *fakeKV) Put(key string, value []byte) error {
	if f.failPut {
		return fmt.Errorf("fakekv: put disabled")
	}
	f.puts++
	f.m[key] = append([]byte(nil), value...)
	return nil
}

func (f *fakeKV) Get(key string) ([]byte, error) {
	v, ok := f.m[key]
	if !ok {
		return nil, fmt.Errorf("fakekv: %q not found", key)
	}
	return append([]byte(nil), v...), nil
}

func (f *fakeKV) Delete(key string) error {
	f.deletes++
	delete(f.m, key)
	return nil
}

func (f *fakeKV) Keys(prefix string) []string {
	var out []string
	for k := range f.m {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

func testEntry(seed int) Entry {
	return Entry{
		PTS: []int{seed, seed + 3, seed + 7},
		Detections: []ops.Detection{
			{PTS: seed, Label: "car", X: 0.25 + float64(seed), Y: -1.5},
			{PTS: seed + 3, Label: "person", X: 3.125, Y: 0.0625},
		},
		Retrieval: retrieveStats(seed),
		Consumption: ops.Stats{
			Pixels: int64(seed) * 1024,
			Work:   int64(seed) * 7,
			Frames: int64(seed) + 3,
		},
	}
}

func retrieveStats(seed int) retrieve.Stats {
	return retrieve.Stats{
		BytesRead:       int64(seed) * 100,
		FramesDecoded:   int64(seed) + 30,
		FramesDelivered: int64(seed) + 3,
		VirtualSeconds:  float64(seed) * 0.125, // exact in binary
	}
}

func testKey(stream string, seg int, op string) Key {
	return Key{Stream: stream, Seg: seg, Op: op, SF: "sf0", CF: "cf0", Span: ""}
}

// mustCheckInvariants asserts the structural invariants every operation
// sequence must preserve: budget holds, byte accounting is exact, the
// list/map/bySeg indexes agree, and generation states are exactly those
// with residents or in-flight fills.
func mustCheckInvariants(t *testing.T, s *Store, step string) {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.bytes > s.budget {
		t.Fatalf("%s: bytes %d > budget %d", step, s.bytes, s.budget)
	}
	if s.ll.Len() != len(s.entries) {
		t.Fatalf("%s: list has %d entries, map %d", step, s.ll.Len(), len(s.entries))
	}
	var sum int64
	var registrations int
	residents := map[string]int{}
	segCounts := map[string]int{}
	for el := s.ll.Front(); el != nil; el = el.Next() {
		meta := el.Value.(*entryMeta)
		if got, ok := s.entries[meta.key]; !ok || got != el {
			t.Fatalf("%s: list entry %q not in map", step, meta.key)
		}
		if len(meta.segs) == 0 {
			t.Fatalf("%s: entry %q registered under no segments", step, meta.key)
		}
		sum += meta.bytes
		residents[meta.stream]++
		registrations += len(meta.segs)
		for _, seg := range meta.segs {
			segCounts[segPrefix(meta.stream, seg)]++
		}
	}
	if sum != s.bytes {
		t.Fatalf("%s: accounted %d bytes, entries hold %d", step, s.bytes, sum)
	}
	var bySegTotal int
	for sp, set := range s.bySeg {
		if len(set) == 0 {
			t.Fatalf("%s: empty bySeg set %q not pruned", step, sp)
		}
		if len(set) != segCounts[sp] {
			t.Fatalf("%s: bySeg[%q] has %d entries, list holds %d", step, sp, len(set), segCounts[sp])
		}
		bySegTotal += len(set)
	}
	if bySegTotal != registrations {
		t.Fatalf("%s: bySeg holds %d registrations, entries carry %d", step, bySegTotal, registrations)
	}
	for stream, st := range s.gens {
		if st.inflight < 0 {
			t.Fatalf("%s: stream %q inflight %d < 0", step, stream, st.inflight)
		}
		if st.residents != residents[stream] {
			t.Fatalf("%s: stream %q state claims %d residents, index holds %d",
				step, stream, st.residents, residents[stream])
		}
		if st.inflight == 0 && st.residents == 0 {
			t.Fatalf("%s: stream %q state with no residents and no fills not pruned", step, stream)
		}
	}
	for stream, n := range residents {
		if n > 0 && s.gens[stream] == nil {
			t.Fatalf("%s: stream %q has %d residents but no generation state", step, stream, n)
		}
	}
}

// fill performs the full miss-then-put protocol for k.
func fill(t *testing.T, s *Store, k Key, e Entry) {
	t.Helper()
	if _, gen, ok := s.Get(k); ok {
		t.Fatalf("fill %v: unexpectedly resident", k)
	} else {
		s.Put(k, e, gen)
	}
}

func TestEntryRoundTrip(t *testing.T) {
	cases := []Entry{
		{}, // empty: no frames consumed, no detections
		testEntry(1),
		testEntry(42),
		{PTS: []int{0}, Retrieval: retrieveStats(9)},
		{Detections: []ops.Detection{{Label: "", X: -0.5, Y: 1e300}}},
	}
	for i, want := range cases {
		b := want.encode()
		got, err := decodeEntry(b)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
			t.Fatalf("case %d: roundtrip mismatch\n got %+v\nwant %+v", i, got, want)
		}
	}
}

func TestEntryDecodeRejectsCorrupt(t *testing.T) {
	b := testEntry(7).encode()
	if _, err := decodeEntry(nil); err == nil {
		t.Fatal("empty input decoded")
	}
	if _, err := decodeEntry([]byte{99}); err == nil {
		t.Fatal("unknown version decoded")
	}
	// Every truncation must be rejected: the decoder latches an error
	// instead of fabricating zeroes.
	for n := 1; n < len(b); n++ {
		if _, err := decodeEntry(b[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded", n, len(b))
		}
	}
	if _, err := decodeEntry(append(append([]byte(nil), b...), 0)); err == nil {
		t.Fatal("trailing byte decoded")
	}
	// A length prefix pointing past the buffer must fail the sanity bound,
	// not allocate.
	huge := []byte{entryVersion, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, err := decodeEntry(huge); err == nil {
		t.Fatal("oversized count decoded")
	}
}

func TestKeyEncodeDecode(t *testing.T) {
	for _, k := range []Key{
		testKey("cam", 0, "Diff"),
		testKey("a/b/c", 123, "NN"), // stream names may contain '/'
		{Stream: "cam", Seg: 7, Op: "S-NN", SF: "sf1", CF: "cf2", Span: "0:1,5:9"},
	} {
		enc := k.encode()
		if !strings.HasPrefix(enc, Prefix) {
			t.Fatalf("encoded key %q lacks prefix", enc)
		}
		stream, seg, ok := decodeKey(enc)
		if !ok || stream != k.Stream || seg != k.Seg {
			t.Fatalf("decodeKey(%q) = %q, %d, %v; want %q, %d", enc, stream, seg, ok, k.Stream, k.Seg)
		}
	}
	// Distinct operator/format/span tuples must not collide.
	a := testKey("cam", 0, "Diff").encode()
	b := testKey("cam", 0, "NN").encode()
	if a == b {
		t.Fatal("distinct operators share an encoded key")
	}
	for _, bad := range []string{"", "res/", "res/x", "res/cam/abc/digest", "res/cam/-0000001/d"} {
		if _, _, ok := decodeKey(bad); ok {
			t.Fatalf("malformed key %q decoded", bad)
		}
	}
}

func TestStoreGetPutHit(t *testing.T) {
	kv := newFakeKV()
	s := New(kv, 1<<20, nil)
	k := testKey("cam", 0, "Diff")
	want := testEntry(5)
	fill(t, s, k, want)
	mustCheckInvariants(t, s, "after fill")
	got, _, ok := s.Get(k)
	if !ok {
		t.Fatal("entry not resident after Put")
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", want) {
		t.Fatalf("hit returned %+v, want %+v", got, want)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put / 1 entry", st)
	}
	if st.Bytes <= 0 || st.Bytes > st.Budget {
		t.Fatalf("stats bytes %d outside (0, budget]", st.Bytes)
	}
}

func TestStoreDisabledSentinel(t *testing.T) {
	if New(newFakeKV(), 0, nil) != nil {
		t.Fatal("zero budget did not return the disabled sentinel")
	}
	if New(newFakeKV(), -1, nil) != nil {
		t.Fatal("negative budget did not return the disabled sentinel")
	}
	var s *Store
	// Every nil-tolerant method must no-op; Get/Put are excluded by
	// contract (callers gate on a non-nil store).
	s.Abandon("cam")
	s.InvalidateSegment("cam", 0)
	s.InvalidateStream("cam")
	s.BumpGeneration("cam")
	s.Purge()
	s.Resize(1)
	if got := s.Stats(); got != (Stats{}) {
		t.Fatalf("nil store stats = %+v, want zeroes", got)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	kv := newFakeKV()
	unit := int64(len(testEntry(0).encode()))
	s := New(kv, 3*unit+unit/2, nil) // room for 3 entries
	keys := make([]Key, 4)
	for i := range keys {
		keys[i] = testKey("cam", i, "Diff")
	}
	for i := 0; i < 3; i++ {
		fill(t, s, keys[i], testEntry(0))
	}
	// Touch the oldest so the middle entry becomes LRU.
	if _, _, ok := s.Get(keys[0]); !ok {
		t.Fatal("keys[0] not resident")
	}
	fill(t, s, keys[3], testEntry(0))
	mustCheckInvariants(t, s, "after eviction")
	if _, _, ok := s.Get(keys[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	s.Abandon("cam") // balance the probe miss
	for _, i := range []int{0, 2, 3} {
		if _, _, ok := s.Get(keys[i]); !ok {
			t.Fatalf("keys[%d] evicted out of LRU order", i)
		}
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 1 eviction / 3 entries", st)
	}
	// The evicted entry's persisted value must be gone too.
	if _, err := kv.Get(keys[1].encode()); err == nil {
		t.Fatal("evicted entry still persisted")
	}
}

func TestStoreOversizedPut(t *testing.T) {
	kv := newFakeKV()
	small := Entry{PTS: []int{1}}
	s := New(kv, int64(len(testEntry(0).encode()))+1, nil)
	k := testKey("cam", 0, "Diff")
	fill(t, s, k, small)
	mustCheckInvariants(t, s, "small resident")
	// A refresh that grew past the whole budget drops the resident entry
	// instead of serving a stale value under a fresh index.
	big := testEntry(0)
	for len(big.encode()) <= int(s.Stats().Budget) {
		big.PTS = append(big.PTS, len(big.PTS))
	}
	if _, _, ok := s.Get(k); !ok {
		t.Fatal("small entry not resident")
	}
	// A hit carries no token; a refresh Put uses the current generation.
	s.Put(k, big, 0)
	mustCheckInvariants(t, s, "after oversized refresh")
	if _, _, ok := s.Get(k); ok {
		t.Fatal("oversized refresh left a resident entry")
	}
	s.Abandon("cam")
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats = %+v, want empty store", st)
	}
}

func TestStoreGenerationDropsRacingFill(t *testing.T) {
	kv := newFakeKV()
	s := New(kv, 1<<20, nil)
	k := testKey("cam", 3, "Diff")
	// The erosion race: a fill observes its miss, the segment is
	// invalidated, then the fill lands. It must be dropped — it may hold
	// pre-erosion results.
	_, gen, ok := s.Get(k)
	if ok {
		t.Fatal("unexpected hit")
	}
	s.InvalidateSegment("cam", 3)
	s.Put(k, testEntry(1), gen)
	mustCheckInvariants(t, s, "after racing fill")
	if _, _, ok := s.Get(k); ok {
		t.Fatal("stale fill landed across InvalidateSegment")
	}
	s.Abandon("cam")
	if st := s.Stats(); st.Dropped != 1 || st.Puts != 0 {
		t.Fatalf("stats = %+v, want 1 dropped / 0 puts", st)
	}
	// Same race through InvalidateStream and BumpGeneration.
	for name, bump := range map[string]func(){
		"stream": func() { s.InvalidateStream("cam") },
		"bump":   func() { s.BumpGeneration("cam") },
	} {
		_, gen, _ := s.Get(k)
		bump()
		s.Put(k, testEntry(1), gen)
		if _, _, ok := s.Get(k); ok {
			t.Fatalf("%s: stale fill landed", name)
		}
		s.Abandon("cam")
	}
	mustCheckInvariants(t, s, "after all races")
}

func TestStoreInvalidateSegmentScope(t *testing.T) {
	kv := newFakeKV()
	s := New(kv, 1<<20, nil)
	fill(t, s, testKey("cam", 0, "Diff"), testEntry(1))
	fill(t, s, testKey("cam", 0, "NN"), testEntry(2))
	fill(t, s, testKey("cam", 1, "Diff"), testEntry(3))
	fill(t, s, testKey("other", 0, "Diff"), testEntry(4))

	s.InvalidateSegment("cam", 0)
	mustCheckInvariants(t, s, "after invalidate")
	if _, _, ok := s.Get(testKey("cam", 0, "Diff")); ok {
		t.Fatal("invalidated segment entry survived (Diff)")
	}
	s.Abandon("cam")
	if _, _, ok := s.Get(testKey("cam", 0, "NN")); ok {
		t.Fatal("invalidated segment entry survived (NN)")
	}
	s.Abandon("cam")
	// Other segments and other streams must stay resident. A fill begun
	// before the invalidation of cam must still be droppable, while
	// "other" is untouched.
	if _, _, ok := s.Get(testKey("cam", 1, "Diff")); !ok {
		t.Fatal("sibling segment dropped by segment invalidation")
	}
	if _, _, ok := s.Get(testKey("other", 0, "Diff")); !ok {
		t.Fatal("other stream dropped by segment invalidation")
	}
	if st := s.Stats(); st.Invalidations != 2 {
		t.Fatalf("stats = %+v, want 2 invalidations", st)
	}
	// Cross-stream isolation: a fill in flight on "other" survives an
	// invalidation of "cam".
	kOther := testKey("other", 1, "Diff")
	_, gen, _ := s.Get(kOther)
	s.InvalidateStream("cam")
	s.Put(kOther, testEntry(9), gen)
	if _, _, ok := s.Get(kOther); !ok {
		t.Fatal("cam's invalidation dropped other's in-flight fill")
	}
	mustCheckInvariants(t, s, "after cross-stream check")
}

func TestStoreGenerationStatePruned(t *testing.T) {
	kv := newFakeKV()
	s := New(kv, 1<<20, nil)
	// Churn through many stream names; each cycle ends with no residents
	// and no in-flight fills, so the generation map must not grow.
	for i := 0; i < 100; i++ {
		stream := fmt.Sprintf("stream-%d", i)
		k := testKey(stream, 0, "Diff")
		fill(t, s, k, testEntry(i))
		s.InvalidateStream(stream)

		// Abandon path: a miss whose retrieval failed.
		k2 := testKey(stream+"-err", 0, "Diff")
		if _, _, ok := s.Get(k2); ok {
			t.Fatal("unexpected hit")
		}
		s.Abandon(stream + "-err")
	}
	s.mu.Lock()
	n := len(s.gens)
	s.mu.Unlock()
	if n != 0 {
		t.Fatalf("generation map holds %d states after full churn, want 0", n)
	}
	mustCheckInvariants(t, s, "after churn")
}

func TestStoreReopenAdoption(t *testing.T) {
	kv := newFakeKV()
	s := New(kv, 1<<20, nil)
	fill(t, s, testKey("cam", 0, "Diff"), testEntry(1))
	fill(t, s, testKey("cam", 1, "Diff"), testEntry(2))
	fill(t, s, testKey("cam", 2, "Diff"), testEntry(3))

	// Garbage under the prefix (a foreign write) must be deleted, not
	// adopted.
	if err := kv.Put(Prefix+"garbage", []byte("x")); err != nil {
		t.Fatal(err)
	}

	// Reopen over the same kv: segment 1 was eroded while no store was
	// attached, so the valid filter rejects it.
	s2 := New(kv, 1<<20, func(stream string, seg int) bool {
		return stream == "cam" && seg != 1
	})
	mustCheckInvariants(t, s2, "after reopen")
	if _, _, ok := s2.Get(testKey("cam", 0, "Diff")); !ok {
		t.Fatal("valid entry not adopted on reopen")
	}
	if _, _, ok := s2.Get(testKey("cam", 1, "Diff")); ok {
		t.Fatal("eroded segment's entry adopted on reopen")
	}
	s2.Abandon("cam")
	if _, err := kv.Get(testKey("cam", 1, "Diff").encode()); err == nil {
		t.Fatal("rejected entry still persisted after reopen")
	}
	if _, err := kv.Get(Prefix + "garbage"); err == nil {
		t.Fatal("garbage key survived reopen")
	}

	// Reopening under a tiny budget must evict down to it.
	unit := int64(len(testEntry(1).encode()))
	s3 := New(kv, unit+unit/2, nil)
	mustCheckInvariants(t, s3, "after tight reopen")
	if st := s3.Stats(); st.Entries != 1 {
		t.Fatalf("tight reopen kept %d entries, want 1", st.Entries)
	}
}

func TestStoreCorruptValueReadsAsMiss(t *testing.T) {
	kv := newFakeKV()
	s := New(kv, 1<<20, nil)
	k := testKey("cam", 0, "Diff")
	fill(t, s, k, testEntry(1))
	// Corrupt the persisted value behind the index's back.
	kv.m[k.encode()] = []byte{0xff, 0xff}
	_, gen, ok := s.Get(k)
	if ok {
		t.Fatal("corrupt value served as a hit")
	}
	// The miss registered an in-flight fill; a clean refill must land.
	s.Put(k, testEntry(2), gen)
	mustCheckInvariants(t, s, "after refill")
	got, _, ok := s.Get(k)
	if !ok {
		t.Fatal("refill after corruption did not land")
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", testEntry(2)) {
		t.Fatal("refill served wrong entry")
	}
}

func TestStorePutKVErrorDropsResident(t *testing.T) {
	kv := newFakeKV()
	s := New(kv, 1<<20, nil)
	k := testKey("cam", 0, "Diff")
	fill(t, s, k, testEntry(1))
	kv.failPut = true
	if _, _, ok := s.Get(k); !ok {
		t.Fatal("entry not resident")
	}
	s.Put(k, testEntry(2), 0)
	mustCheckInvariants(t, s, "after failed refresh")
	// The persisted value is unknown after a failed Put: the resident
	// entry must be gone rather than risk index/kv disagreement.
	kv.failPut = false
	if _, _, ok := s.Get(k); ok {
		t.Fatal("resident entry survived a failed kv put")
	}
	s.Abandon("cam")
}

func TestStoreRangeEntries(t *testing.T) {
	kv := newFakeKV()
	s := New(kv, 1<<20, nil)
	k := Key{Stream: "cam", Seg: 0, End: 4, Op: "Diff", SF: "sf0", CF: "cf0"}
	covered := []int{0, 1, 2, 3}
	ent := testEntry(3)
	ent.Segs = covered

	// Range and point keys sharing a start segment must not collide.
	if k.encode() == testKey("cam", 0, "Diff").encode() {
		t.Fatal("range key collides with the point key at its start segment")
	}

	if _, gen, ok := s.GetRange(k, covered); ok {
		t.Fatal("unexpected hit")
	} else {
		s.Put(k, ent, gen)
	}
	mustCheckInvariants(t, s, "after range fill")
	got, _, ok := s.GetRange(k, covered)
	if !ok {
		t.Fatal("range entry not resident")
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", ent) {
		t.Fatal("range hit returned a different entry")
	}

	// A caller whose snapshot would retrieve a different segment set must
	// miss — the entry stays resident for snapshots that still match.
	if _, _, ok := s.GetRange(k, []int{0, 1, 3}); ok {
		t.Fatal("range entry served to a mismatched coverage set")
	}
	s.Abandon("cam")
	if _, _, ok := s.GetRange(k, covered); !ok {
		t.Fatal("mismatched lookup evicted the still-valid entry")
	}

	// Invalidating ANY covered segment drops the entry, not just the key's
	// start segment.
	s.InvalidateSegment("cam", 2)
	mustCheckInvariants(t, s, "after middle-segment invalidation")
	if _, _, ok := s.GetRange(k, covered); ok {
		t.Fatal("range entry survived invalidation of a covered segment")
	}
	s.Abandon("cam")

	// A refresh that shrinks the coverage re-registers: the dropped
	// segment's invalidation no longer finds it, the kept ones still do.
	_, gen, _ := s.GetRange(k, covered)
	s.Put(k, ent, gen)
	shrunk := testEntry(4)
	shrunk.Segs = []int{0, 1, 3}
	_, gen, _ = s.GetRange(k, shrunk.Segs) // coverage mismatch: miss with token
	s.Put(k, shrunk, gen)
	mustCheckInvariants(t, s, "after shrinking refresh")
	s.InvalidateSegment("cam", 2)
	if _, _, ok := s.GetRange(k, shrunk.Segs); !ok {
		t.Fatal("refresh left a stale registration under a dropped segment")
	}
	s.InvalidateSegment("cam", 3)
	if _, _, ok := s.GetRange(k, shrunk.Segs); ok {
		t.Fatal("refresh lost the registration under a kept segment")
	}
	s.Abandon("cam")
	s.Abandon("cam")
	mustCheckInvariants(t, s, "after refresh checks")
}

func TestStoreRangeReopenAdoption(t *testing.T) {
	kv := newFakeKV()
	s := New(kv, 1<<20, nil)
	k := Key{Stream: "cam", Seg: 0, End: 3, Op: "Diff", SF: "sf0", CF: "cf0"}
	ent := testEntry(2)
	ent.Segs = []int{0, 1, 2}
	_, gen, _ := s.GetRange(k, ent.Segs)
	s.Put(k, ent, gen)

	// Reopen with segment 2 gone: the range entry covers it, so it must be
	// rejected and deleted, even though its key sits under segment 0.
	s2 := New(kv, 1<<20, func(stream string, seg int) bool { return seg != 2 })
	mustCheckInvariants(t, s2, "after reopen")
	if _, _, ok := s2.GetRange(k, ent.Segs); ok {
		t.Fatal("range entry covering an invalid segment adopted on reopen")
	}
	s2.Abandon("cam")
	if _, err := kv.Get(k.encode()); err == nil {
		t.Fatal("rejected range entry still persisted")
	}
}

func TestStorePurgeAndResize(t *testing.T) {
	kv := newFakeKV()
	s := New(kv, 1<<20, nil)
	for i := 0; i < 5; i++ {
		fill(t, s, testKey("cam", i, "Diff"), testEntry(i))
	}
	unit := int64(len(testEntry(0).encode()))
	s.Resize(2 * unit)
	mustCheckInvariants(t, s, "after shrink")
	if st := s.Stats(); st.Entries > 2 {
		t.Fatalf("%d entries after shrinking to 2 units", st.Entries)
	}
	s.Purge()
	mustCheckInvariants(t, s, "after purge")
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats = %+v after purge, want empty", st)
	}
	if keys := kv.Keys(Prefix); len(keys) != 0 {
		t.Fatalf("purge left %d persisted keys", len(keys))
	}
}
