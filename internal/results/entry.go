// Entry encoding: a compact, versioned binary layout for one stage's
// finalized per-segment output. The encoding is exact — int64 counters as
// varints, float64 accounting as IEEE bits — so a decoded entry reproduces
// the original computation bit for bit, which is what lets a materialized
// query remain byte-identical to a recomputed one.

package results

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/ops"
	"repro/internal/retrieve"
)

// Entry is one materialized stage output: what the operator produced over
// one segment's delivered frames, plus the exact retrieval and consumption
// accounting of the computation that produced it. Folding entries in
// segment order reproduces a recomputing query's stats exactly: the
// integer stats sum exactly in any grouping, and the one order-sensitive
// float (virtual seconds) is stored per segment and re-summed in the same
// order the sequential path uses.
type Entry struct {
	// Segs lists the segments whose frames the computation covered — for a
	// range entry (a stateful operator memoised over [Seg, End)), the
	// segments visible when the fill retrieved. Empty means the key's own
	// segment: the single-segment default. The store registers the entry
	// for invalidation under every listed segment, and a range lookup only
	// hits when the caller's visible set matches exactly — an eroded (or
	// differently-eroded) range recomputes instead of serving frames the
	// caller's snapshot would not deliver.
	Segs        []int
	PTS         []int           // consumed original-timeline frame indices
	Detections  []ops.Detection // operator detections over the covered segments
	Retrieval   retrieve.Stats  // the cold retrieval's accounting
	Consumption ops.Stats       // the operator's consumption accounting
}

const entryVersion = 1

// encode serialises the entry.
func (e Entry) encode() []byte {
	// Size guess: varints dominate; labels are short.
	out := make([]byte, 0, 16+8*len(e.PTS)+32*len(e.Detections))
	out = append(out, entryVersion)
	out = binary.AppendUvarint(out, uint64(len(e.Segs)))
	for _, s := range e.Segs {
		out = binary.AppendUvarint(out, uint64(int64(s)))
	}
	out = binary.AppendUvarint(out, uint64(len(e.PTS)))
	for _, p := range e.PTS {
		out = binary.AppendUvarint(out, uint64(int64(p)))
	}
	out = binary.AppendUvarint(out, uint64(len(e.Detections)))
	for _, d := range e.Detections {
		out = binary.AppendUvarint(out, uint64(int64(d.PTS)))
		out = binary.AppendUvarint(out, uint64(len(d.Label)))
		out = append(out, d.Label...)
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(d.X))
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(d.Y))
	}
	out = binary.AppendUvarint(out, uint64(e.Retrieval.BytesRead))
	out = binary.AppendUvarint(out, uint64(e.Retrieval.FramesDecoded))
	out = binary.AppendUvarint(out, uint64(e.Retrieval.FramesDelivered))
	out = binary.BigEndian.AppendUint64(out, math.Float64bits(e.Retrieval.VirtualSeconds))
	out = binary.AppendUvarint(out, uint64(e.Consumption.Pixels))
	out = binary.AppendUvarint(out, uint64(e.Consumption.Work))
	out = binary.AppendUvarint(out, uint64(e.Consumption.Frames))
	return out
}

// decodeEntry parses an encoded entry, rejecting truncation, trailing
// garbage and unknown versions — a corrupt value must read as a miss, not
// as wrong results.
func decodeEntry(b []byte) (Entry, error) {
	if len(b) == 0 || b[0] != entryVersion {
		return Entry{}, fmt.Errorf("results: unknown entry version")
	}
	d := decoder{b: b[1:]}
	var e Entry
	nSegs := d.uvarint()
	if nSegs > uint64(len(b)) { // cheap sanity bound before allocating
		return Entry{}, fmt.Errorf("results: corrupt entry")
	}
	if nSegs > 0 {
		e.Segs = make([]int, nSegs)
		for i := range e.Segs {
			e.Segs[i] = int(int64(d.uvarint()))
		}
	}
	nPTS := d.uvarint()
	if nPTS > uint64(len(b)) { // cheap sanity bound before allocating
		return Entry{}, fmt.Errorf("results: corrupt entry")
	}
	if nPTS > 0 {
		e.PTS = make([]int, nPTS)
		for i := range e.PTS {
			e.PTS[i] = int(int64(d.uvarint()))
		}
	}
	nDet := d.uvarint()
	if nDet > uint64(len(b)) {
		return Entry{}, fmt.Errorf("results: corrupt entry")
	}
	if nDet > 0 {
		e.Detections = make([]ops.Detection, nDet)
		for i := range e.Detections {
			e.Detections[i].PTS = int(int64(d.uvarint()))
			e.Detections[i].Label = d.str(int(d.uvarint()))
			e.Detections[i].X = math.Float64frombits(d.u64())
			e.Detections[i].Y = math.Float64frombits(d.u64())
		}
	}
	e.Retrieval.BytesRead = int64(d.uvarint())
	e.Retrieval.FramesDecoded = int64(d.uvarint())
	e.Retrieval.FramesDelivered = int64(d.uvarint())
	e.Retrieval.VirtualSeconds = math.Float64frombits(d.u64())
	e.Consumption.Pixels = int64(d.uvarint())
	e.Consumption.Work = int64(d.uvarint())
	e.Consumption.Frames = int64(d.uvarint())
	if d.err {
		return Entry{}, fmt.Errorf("results: corrupt entry")
	}
	if len(d.b) != 0 {
		return Entry{}, fmt.Errorf("results: %d trailing bytes", len(d.b))
	}
	return e, nil
}

// decoder is a cursor over the encoded bytes; the first malformed read
// latches err and every later read returns zero.
type decoder struct {
	b   []byte
	err bool
}

func (d *decoder) uvarint() uint64 {
	if d.err {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.err = true
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *decoder) str(n int) string {
	if d.err || n < 0 || n > len(d.b) {
		d.err = true
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *decoder) u64() uint64 {
	if d.err || len(d.b) < 8 {
		d.err = true
		return 0
	}
	v := binary.BigEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}
