// Package results is VStore's results-materialization layer: finalized
// per-segment operator outputs (detections, consumed frame timelines, and
// the deterministic retrieval/consumption accounting that reproduces query
// stats) stored in the tiered kvstore, keyed by everything that determines
// them — stream, segment, operator, storage and consumption format, and
// the activation-span digest of the cascade stage. Repeated queries and
// subscription fan-out then serve stored detections at kvstore speed
// instead of re-decoding and re-classifying the same footage — VSS's
// "cache in the most useful format" taken one level up the stack, from
// decoded pixels to operator outputs.
//
// Safety rests on two rules the frame cache already enforces:
//
//   - visibility gates every lookup: callers consult segment visibility
//     before Get, so an eroded (or not-yet-committed) segment can never be
//     served from a stale stored result;
//   - invalidation is generation-safe per stream: InvalidateSegment drops
//     a removed segment's entries AND bumps the stream's generation, so an
//     in-flight fill racing the erosion is dropped at Put instead of
//     repopulating the store with pre-erosion results.
//
// Because entries hold a stage's complete output and exact accounting, a
// query served from materialized results is byte-identical to one that
// recomputes — at any worker count, which the query engine's per-segment
// merge order guarantees.
package results

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
)

// Prefix namespaces every materialized result in the kvstore. It is
// distinct from the segment layer's seg/, raw/ and rawmeta/ prefixes and
// from the server's meta/ keys; the tiered router sends unknown prefixes
// (this one included) to the fast tier, which is where hot results belong.
const Prefix = "res/"

// KV is the byte surface the store persists to — the server passes its
// tiered engine. Only flat key-value operations are needed; the store
// keeps its own in-memory index.
type KV interface {
	Put(key string, value []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	Keys(prefix string) []string
}

// Key identifies one materialized stage output. Every field participates:
// two queries share an entry exactly when the stored bytes, the consumption
// fidelity, the operator, and the activation spans feeding the stage all
// agree — the conditions under which their outputs are provably equal.
type Key struct {
	Stream string
	Seg    int
	// End is the exclusive range end for a range entry: a stateful
	// operator's output memoised over segments [Seg, End) as one unit,
	// since splitting its input per segment would change detections. Zero
	// (or Seg+1) marks the common single-segment entry. The range length
	// participates in the digest so queries over different ranges that
	// share a start segment never collide.
	End  int
	Op   string // operator name
	SF   string // storage-format key the frames were retrieved from
	CF   string // consumption-fidelity key the operator consumed
	Span string // activation-span digest; "" for an unfiltered first stage
}

// span returns the number of segments the key covers (>= 1).
func (k Key) span() int {
	if k.End > k.Seg+1 {
		return k.End - k.Seg
	}
	return 1
}

// encode lays the key out as res/<stream>/<seg>/<digest>: the stream and
// segment stay addressable (segment-granular invalidation scans by
// prefix), while the operator/format/span/range tuple collapses into a
// digest so arbitrary format keys cannot collide with the path structure.
func (k Key) encode() string {
	d := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%s\x00%s\x00%s\x00%d", k.Op, k.SF, k.CF, k.Span, k.span())))
	return fmt.Sprintf("%s%s/%08d/%s", Prefix, k.Stream, k.Seg, hex.EncodeToString(d[:16]))
}

// segPrefix is the kv prefix holding every entry of one segment.
func segPrefix(stream string, seg int) string {
	return fmt.Sprintf("%s%s/%08d/", Prefix, stream, seg)
}

// decodeKey recovers (stream, seg) from an encoded key, parsing from the
// right since stream names may contain '/' while the segment index and
// digest cannot. ok is false for malformed keys (foreign writes under the
// prefix), which Open treats as garbage.
func decodeKey(key string) (stream string, seg int, ok bool) {
	if len(key) <= len(Prefix) {
		return "", 0, false
	}
	rest := key[len(Prefix):]
	// rest = <stream>/<%08d>/<digest32>
	slash2 := lastIndexByte(rest, '/')
	if slash2 <= 0 {
		return "", 0, false
	}
	slash1 := lastIndexByte(rest[:slash2], '/')
	if slash1 <= 0 {
		return "", 0, false
	}
	var idx int
	if _, err := fmt.Sscanf(rest[slash1+1:slash2], "%d", &idx); err != nil || idx < 0 {
		return "", 0, false
	}
	return rest[:slash1], idx, true
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// Stats reports the store's activity and occupancy.
type Stats struct {
	Hits          int64
	Misses        int64
	Puts          int64 // fills that landed (dropped fills are not counted)
	Dropped       int64 // fills dropped by a generation mismatch
	Bytes         int64 // bytes of stored entries resident in the index
	Entries       int
	Evictions     int64
	Invalidations int64 // entries dropped by segment invalidation
	Budget        int64
}

// streamState tracks one stream's invalidation generation together with
// what keeps it alive: resident entries and in-flight fills. The state is
// pruned the moment both reach zero — the pruning rule the frame cache
// shares — so churning through stream names cannot leak generation
// entries. Pruning is safe exactly then: with no token outstanding, no
// later Put can confuse a fresh generation with a stale one.
type streamState struct {
	gen       int64
	inflight  int // Get misses awaiting their Put or Abandon
	residents int // entries of this stream in the index
}

type entryMeta struct {
	key    string
	stream string
	segs   []int // segments the entry is registered under for invalidation
	bytes  int64
}

// Store is the materialized-results store: a byte-budgeted LRU index over
// entries persisted in the kvstore. All methods are safe for concurrent
// use, and every method tolerates a nil receiver (the disabled sentinel),
// reporting zeroes and ignoring writes.
type Store struct {
	mu      sync.Mutex
	kv      KV
	budget  int64
	bytes   int64
	ll      *list.List // front = most recently used; values are *entryMeta
	entries map[string]*list.Element
	bySeg   map[string]map[string]*list.Element // segPrefix -> key -> element
	gens    map[string]*streamState

	hits, misses, puts, dropped, evictions, invalidations int64
}

// New opens a store over kv with the given byte budget, adopting entries a
// previous run persisted under Prefix. valid, when non-nil, filters the
// adopted set: entries whose (stream, segment) it rejects — segments
// eroded while no store was attached, or deleted during a crash window —
// are removed from the kvstore instead of adopted, so a reopen can never
// resurrect results for footage that no longer exists. A budget of zero or
// less returns nil, the disabled sentinel.
func New(kv KV, budgetBytes int64, valid func(stream string, seg int) bool) *Store {
	if budgetBytes <= 0 {
		return nil
	}
	s := &Store{
		kv:      kv,
		budget:  budgetBytes,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		bySeg:   make(map[string]map[string]*list.Element),
		gens:    make(map[string]*streamState),
	}
	// Adoption order is the sorted key order the kvstore reports — a
	// deterministic LRU seed; real recency re-establishes itself under use.
	// Each value is decoded to recover the covered-segment list (range
	// entries register under every covered segment); a value that does not
	// decode is garbage and is removed rather than adopted.
	for _, k := range kv.Keys(Prefix) {
		stream, seg, ok := decodeKey(k)
		if !ok {
			_ = kv.Delete(k)
			continue
		}
		v, err := kv.Get(k)
		if err != nil {
			_ = kv.Delete(k)
			continue
		}
		ent, err := decodeEntry(v)
		if err != nil {
			_ = kv.Delete(k)
			continue
		}
		segs := ent.Segs
		if len(segs) == 0 {
			segs = []int{seg}
		}
		adoptable := true
		if valid != nil {
			for _, sg := range segs {
				if !valid(stream, sg) {
					adoptable = false
					break
				}
			}
		}
		if !adoptable {
			_ = kv.Delete(k)
			continue
		}
		s.insertLocked(&entryMeta{key: k, stream: stream, segs: segs, bytes: int64(len(v))})
	}
	s.evictToBudgetLocked()
	return s
}

// Get returns the stored entry for k, marking it most recently used. On a
// miss it registers an in-flight fill and returns the stream's generation
// token: the caller MUST balance the miss with exactly one Put (to land
// the fill) or Abandon (to discard it), or the stream's generation state
// stays pinned.
func (s *Store) Get(k Key) (Entry, int64, bool) {
	return s.GetRange(k, nil)
}

// GetRange is Get with a covered-segment check for range entries: a
// resident entry only hits when the segments it covers equal want — the
// segments the caller's snapshot would actually retrieve. A mismatched
// entry (filled under a different erosion state) reads as a miss; it stays
// resident, since a snapshot matching its coverage can still legitimately
// serve it, and a landing refill simply replaces it. want == nil skips the
// check (the single-segment path, where the caller's visibility gate
// already decided).
func (s *Store) GetRange(k Key, want []int) (Entry, int64, bool) {
	key := k.encode()
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if ok {
		v, err := s.kv.Get(key)
		if err == nil {
			if ent, derr := decodeEntry(v); derr == nil {
				if want == nil || coveredEqual(k, ent, want) {
					s.hits++
					s.ll.MoveToFront(el)
					return ent, 0, true
				}
				// Coverage mismatch: miss, entry left resident.
				s.misses++
				st := s.stateLocked(k.Stream)
				st.inflight++
				return Entry{}, st.gen, false
			}
		}
		// Index and kvstore disagree (a torn write healed by replay, or a
		// corrupt value): drop the entry and miss, re-filling it cleanly.
		s.removeLocked(el)
	}
	s.misses++
	st := s.stateLocked(k.Stream)
	st.inflight++
	return Entry{}, st.gen, false
}

// coveredEqual reports whether the entry's covered segments equal want
// (both are ascending). An entry with no explicit list covers exactly the
// key's own segment.
func coveredEqual(k Key, ent Entry, want []int) bool {
	segs := ent.Segs
	if len(segs) == 0 {
		segs = []int{k.Seg}
	}
	if len(segs) != len(want) {
		return false
	}
	for i := range segs {
		if segs[i] != want[i] {
			return false
		}
	}
	return true
}

// Put lands a fill observed at Get-miss time carrying generation token
// gen. If the stream was invalidated since — the fill may predate an
// erosion — the entry is silently dropped. Oversized entries (larger than
// the whole budget) are never stored; a refresh that grew past the budget
// additionally drops the resident entry.
func (s *Store) Put(k Key, e Entry, gen int64) {
	v := e.encode()
	key := k.encode()
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stateLocked(k.Stream)
	if st.inflight > 0 {
		st.inflight--
	}
	if gen != st.gen {
		s.dropped++
		s.pruneLocked(k.Stream)
		return
	}
	el, resident := s.entries[key]
	if int64(len(v)) > s.budget {
		if resident {
			s.removeLocked(el)
			s.evictions++
		}
		s.pruneLocked(k.Stream)
		return
	}
	if err := s.kv.Put(key, v); err != nil {
		// The persisted value is unknown; drop any resident entry rather
		// than serve bytes that may disagree with the index.
		if resident {
			s.removeLocked(el)
		}
		s.pruneLocked(k.Stream)
		return
	}
	segs := e.Segs
	if len(segs) == 0 {
		segs = []int{k.Seg}
	}
	if resident {
		// A refresh may change the covered-segment set (a range refilled
		// under a different erosion state): re-register so invalidation
		// keeps finding the entry under every segment it now covers.
		meta := el.Value.(*entryMeta)
		s.deregisterSegsLocked(meta, el)
		s.bytes += int64(len(v)) - meta.bytes
		meta.bytes = int64(len(v))
		meta.segs = segs
		s.registerSegsLocked(meta, el)
		s.ll.MoveToFront(el)
	} else {
		s.insertLocked(&entryMeta{key: key, stream: k.Stream, segs: segs, bytes: int64(len(v))})
	}
	s.puts++
	s.evictToBudgetLocked()
}

// Abandon balances a Get miss whose fill will never arrive (the retrieval
// errored, or the segment turned out to be eroded). Without it the
// stream's generation state would stay pinned by the phantom in-flight
// fill.
func (s *Store) Abandon(stream string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.gens[stream]; st != nil {
		if st.inflight > 0 {
			st.inflight--
		}
		s.pruneLocked(stream)
	}
}

// InvalidateSegment drops every stored result of one segment — called when
// erosion removes a segment (or any of its format replicas) from the
// manifest, BEFORE its bytes are physically deleted — and bumps the
// stream's generation so fills in flight across the removal are dropped at
// Put (they may have read pre-erosion frames). Other streams, and the
// stream's other segments, stay resident.
func (s *Store) InvalidateSegment(stream string, seg int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpLocked(stream)
	set := s.bySeg[segPrefix(stream, seg)]
	for _, el := range set {
		s.invalidations++
		s.removeLocked(el)
	}
	s.pruneLocked(stream)
}

// InvalidateStream drops every stored result of the stream and bumps its
// generation — the coarse hammer for stream-wide deletions.
func (s *Store) InvalidateStream(stream string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpLocked(stream)
	for el := s.ll.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*entryMeta).stream == stream {
			s.invalidations++
			s.removeLocked(el)
		}
		el = next
	}
	s.pruneLocked(stream)
}

// BumpGeneration invalidates in-flight fills for the stream without
// touching resident entries — the defensive bump for passes that already
// dropped the affected segments individually.
func (s *Store) BumpGeneration(stream string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bumpLocked(stream)
	s.pruneLocked(stream)
}

// bumpLocked advances the stream's generation. It only materializes state
// when something can still reference the old generation; an untouched
// stream needs no entry to be "at a fresh generation". Caller holds mu.
func (s *Store) bumpLocked(stream string) {
	// With no state there are no residents and no in-flight fills: every
	// future Get-miss allocates fresh state, so there is nothing a bump
	// must outdate.
	if st := s.gens[stream]; st != nil {
		st.gen++
	}
}

// Purge drops every entry, deleting the persisted values — used when the
// store is disabled at runtime so a later re-enable (or reopen) cannot
// adopt entries that missed invalidations while no store was attached.
func (s *Store) Purge() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.ll.Front(); el != nil; {
		next := el.Next()
		s.removeLocked(el)
		el = next
	}
}

// Resize changes the byte budget, evicting as needed to honour a smaller
// one.
func (s *Store) Resize(budgetBytes int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget = budgetBytes
	s.evictToBudgetLocked()
}

// Stats snapshots the counters. A nil store reports zeroes.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:          s.hits,
		Misses:        s.misses,
		Puts:          s.puts,
		Dropped:       s.dropped,
		Bytes:         s.bytes,
		Entries:       s.ll.Len(),
		Evictions:     s.evictions,
		Invalidations: s.invalidations,
		Budget:        s.budget,
	}
}

// stateLocked returns the stream's generation state, creating it at
// generation zero. Creation at zero is safe because pruning only ever runs
// with no tokens outstanding: no stale token can match the fresh zero.
// Caller holds mu.
func (s *Store) stateLocked(stream string) *streamState {
	st := s.gens[stream]
	if st == nil {
		st = &streamState{}
		s.gens[stream] = st
	}
	return st
}

// pruneLocked drops the stream's generation state once nothing references
// it. Caller holds mu.
func (s *Store) pruneLocked(stream string) {
	if st := s.gens[stream]; st != nil && st.inflight == 0 && st.residents == 0 {
		delete(s.gens, stream)
	}
}

// insertLocked indexes one entry as most recently used. Caller holds mu.
func (s *Store) insertLocked(meta *entryMeta) {
	el := s.ll.PushFront(meta)
	s.entries[meta.key] = el
	s.registerSegsLocked(meta, el)
	s.bytes += meta.bytes
	s.stateLocked(meta.stream).residents++
}

// registerSegsLocked indexes the entry under every segment it covers, so
// any covered segment's invalidation finds it. Caller holds mu.
func (s *Store) registerSegsLocked(meta *entryMeta, el *list.Element) {
	for _, seg := range meta.segs {
		sp := segPrefix(meta.stream, seg)
		set := s.bySeg[sp]
		if set == nil {
			set = make(map[string]*list.Element)
			s.bySeg[sp] = set
		}
		set[meta.key] = el
	}
}

// deregisterSegsLocked removes the entry's per-segment index records.
// Caller holds mu.
func (s *Store) deregisterSegsLocked(meta *entryMeta, el *list.Element) {
	for _, seg := range meta.segs {
		sp := segPrefix(meta.stream, seg)
		if set := s.bySeg[sp]; set != nil {
			delete(set, meta.key)
			if len(set) == 0 {
				delete(s.bySeg, sp)
			}
		}
	}
}

// removeLocked unlinks one entry from the index and deletes its persisted
// value. Caller holds mu.
func (s *Store) removeLocked(el *list.Element) {
	meta := el.Value.(*entryMeta)
	s.ll.Remove(el)
	delete(s.entries, meta.key)
	s.deregisterSegsLocked(meta, el)
	s.bytes -= meta.bytes
	_ = s.kv.Delete(meta.key)
	if st := s.gens[meta.stream]; st != nil {
		st.residents--
		s.pruneLocked(meta.stream)
	}
}

// evictToBudgetLocked evicts least-recently-used entries until the byte
// budget holds. Caller holds mu.
func (s *Store) evictToBudgetLocked() {
	for s.bytes > s.budget && s.ll.Len() > 0 {
		el := s.ll.Back()
		if el == nil {
			return
		}
		s.evictions++
		s.removeLocked(el)
	}
}
