// Package frame provides the raw video frame representation used throughout
// the store: planar YUV 4:2:0 buffers plus the geometric transforms the data
// path needs (box-filter downscaling, centre cropping) and comparison
// helpers (absolute difference, PSNR).
//
// # Read-only frame contract
//
// Frames flowing through the read path — decoder output, retrieval cache
// entries, the slices handed to operators — are SHARED, not copied: the
// identity transforms (Downscale to the source dimensions, CropCenter(1))
// return their receiver, cached segments hand the same frames to every
// hit, and arena batches (NewBatch) share one backing allocation. Every
// consumer of delivered frames must treat them as immutable; an operator
// or caller that needs to scribble on pixels must Clone first. Producers
// (the scene renderer, the decoder) may freely mutate frames they have
// not yet delivered. The aliasing-safety tests in the retrieve package
// enforce the contract end to end; the one boundary that hands out owned,
// mutation-safe copies is the public Retriever.Segment/Range surface.
package frame

import (
	"fmt"
	"math"
)

// Frame is a planar YUV 4:2:0 picture. Y has W*H samples; Cb and Cr each
// have (W/2)*(H/2) samples (W and H are kept even). PTS is the frame's index
// in its stream at the stream's native rate.
type Frame struct {
	W, H      int
	Y, Cb, Cr []byte
	PTS       int
}

// New allocates a zeroed frame of the given luma dimensions. Dimensions are
// rounded up to even so the chroma planes subsample cleanly.
func New(w, h int) *Frame {
	if w < 2 {
		w = 2
	}
	if h < 2 {
		h = 2
	}
	w += w & 1
	h += h & 1
	return &Frame{
		W:  w,
		H:  h,
		Y:  make([]byte, w*h),
		Cb: make([]byte, (w/2)*(h/2)),
		Cr: make([]byte, (w/2)*(h/2)),
	}
}

// NewBatch returns n zeroed frames of identical luma dimensions whose
// planes are carved from a single contiguous allocation — the decoder's
// output allocator (one arena per GOP instead of four allocations per
// frame). The frames are ordinary GC-managed frames; they merely share a
// backing array, which the read-only contract above makes safe.
func NewBatch(w, h, n int) []*Frame {
	if n <= 0 {
		return nil
	}
	if w < 2 {
		w = 2
	}
	if h < 2 {
		h = 2
	}
	w += w & 1
	h += h & 1
	ylen := w * h
	clen := (w / 2) * (h / 2)
	flen := ylen + 2*clen
	arena := make([]byte, n*flen)
	frames := make([]Frame, n)
	out := make([]*Frame, n)
	for i := range frames {
		p := arena[i*flen : (i+1)*flen]
		frames[i] = Frame{
			W:  w,
			H:  h,
			Y:  p[:ylen:ylen],
			Cb: p[ylen : ylen+clen : ylen+clen],
			Cr: p[ylen+clen : flen : flen],
		}
		out[i] = &frames[i]
	}
	return out
}

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := &Frame{W: f.W, H: f.H, PTS: f.PTS}
	g.Y = append([]byte(nil), f.Y...)
	g.Cb = append([]byte(nil), f.Cb...)
	g.Cr = append([]byte(nil), f.Cr...)
	return g
}

// NumPixels returns the luma sample count.
func (f *Frame) NumPixels() int { return f.W * f.H }

// Bytes returns the total sample count across all three planes, which is the
// frame's raw storage footprint in bytes.
func (f *Frame) Bytes() int { return len(f.Y) + len(f.Cb) + len(f.Cr) }

// At returns the luma sample at (x, y) without bounds checking beyond the
// slice's own.
func (f *Frame) At(x, y int) byte { return f.Y[y*f.W+x] }

// Set writes the luma sample at (x, y).
func (f *Frame) Set(x, y int, v byte) { f.Y[y*f.W+x] = v }

func (f *Frame) String() string {
	return fmt.Sprintf("frame %dx%d pts=%d", f.W, f.H, f.PTS)
}

// Downscale returns a frame scaled to the target luma dimensions with a
// box filter. Upscaling is not supported: target dimensions are clamped to
// the source's. Scaling to the same size is the identity and returns the
// receiver itself — zero copies, under the read-only contract; callers
// that need an independent frame must Clone.
func (f *Frame) Downscale(tw, th int) *Frame {
	if tw > f.W {
		tw = f.W
	}
	if th > f.H {
		th = f.H
	}
	if tw == f.W && th == f.H {
		return f
	}
	g := New(tw, th)
	f.DownscaleInto(g)
	return g
}

// DownscaleInto box-filters f into g, whose dimensions select the target
// scale (they must not exceed f's). It is the allocation-free core of
// Downscale: the retrieval fast path scales into arena-carved batches
// instead of allocating one frame at a time. g must not alias f.
func (f *Frame) DownscaleInto(g *Frame) {
	g.PTS = f.PTS
	boxScale(g.Y, g.W, g.H, f.Y, f.W, f.H)
	boxScale(g.Cb, g.W/2, g.H/2, f.Cb, f.W/2, f.H/2)
	boxScale(g.Cr, g.W/2, g.H/2, f.Cr, f.W/2, f.H/2)
}

// boxScale fills dst (dw×dh) by averaging the source box mapped to each
// destination sample.
func boxScale(dst []byte, dw, dh int, src []byte, sw, sh int) {
	if dw == 0 || dh == 0 {
		return
	}
	for dy := 0; dy < dh; dy++ {
		sy0 := dy * sh / dh
		sy1 := (dy + 1) * sh / dh
		if sy1 <= sy0 {
			sy1 = sy0 + 1
		}
		for dx := 0; dx < dw; dx++ {
			sx0 := dx * sw / dw
			sx1 := (dx + 1) * sw / dw
			if sx1 <= sx0 {
				sx1 = sx0 + 1
			}
			var sum, n int
			for y := sy0; y < sy1; y++ {
				row := y * sw
				for x := sx0; x < sx1; x++ {
					sum += int(src[row+x])
					n++
				}
			}
			dst[dy*dw+dx] = byte(sum / n)
		}
	}
}

// CropCenter returns a frame retaining the central fraction frac of each
// dimension (frac in (0,1]). The retained dimensions are kept even.
// CropCenter(1) is the identity and returns the receiver itself — zero
// copies, under the read-only contract; callers that need an independent
// frame must Clone.
func (f *Frame) CropCenter(frac float64) *Frame {
	if frac >= 1 {
		return f
	}
	if frac <= 0 {
		frac = 0.01
	}
	cw := int(float64(f.W)*frac) &^ 1
	ch := int(float64(f.H)*frac) &^ 1
	if cw < 2 {
		cw = 2
	}
	if ch < 2 {
		ch = 2
	}
	x0 := (f.W - cw) / 2 &^ 1
	y0 := (f.H - ch) / 2 &^ 1
	g := New(cw, ch)
	g.PTS = f.PTS
	for y := 0; y < ch; y++ {
		copy(g.Y[y*cw:(y+1)*cw], f.Y[(y0+y)*f.W+x0:(y0+y)*f.W+x0+cw])
	}
	hw, hh := cw/2, ch/2
	sx0, sy0 := x0/2, y0/2
	shw := f.W / 2
	for y := 0; y < hh; y++ {
		copy(g.Cb[y*hw:(y+1)*hw], f.Cb[(sy0+y)*shw+sx0:(sy0+y)*shw+sx0+hw])
		copy(g.Cr[y*hw:(y+1)*hw], f.Cr[(sy0+y)*shw+sx0:(sy0+y)*shw+sx0+hw])
	}
	return g
}

// MeanAbsDiff returns the mean absolute luma difference between two frames
// of identical dimensions. It panics if the dimensions differ, which always
// indicates a caller bug.
func MeanAbsDiff(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("frame: MeanAbsDiff dimension mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	var sum int64
	for i := range a.Y {
		d := int(a.Y[i]) - int(b.Y[i])
		if d < 0 {
			d = -d
		}
		sum += int64(d)
	}
	return float64(sum) / float64(len(a.Y))
}

// PSNR returns the luma peak signal-to-noise ratio of b against reference a,
// in dB. Identical frames return +Inf.
func PSNR(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("frame: PSNR dimension mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	var se int64
	for i := range a.Y {
		d := int64(a.Y[i]) - int64(b.Y[i])
		se += d * d
	}
	if se == 0 {
		return math.Inf(1)
	}
	mse := float64(se) / float64(len(a.Y))
	return 10 * math.Log10(255*255/mse)
}

// Equal reports whether two frames have identical dimensions and samples.
func Equal(a, b *Frame) bool {
	if a.W != b.W || a.H != b.H || len(a.Y) != len(b.Y) {
		return false
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			return false
		}
	}
	for i := range a.Cb {
		if a.Cb[i] != b.Cb[i] {
			return false
		}
	}
	for i := range a.Cr {
		if a.Cr[i] != b.Cr[i] {
			return false
		}
	}
	return true
}

// FillRect paints a solid luma+chroma rectangle clipped to the frame.
func (f *Frame) FillRect(x0, y0, w, h int, y, cb, cr byte) {
	x1, y1 := x0+w, y0+h
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > f.W {
		x1 = f.W
	}
	if y1 > f.H {
		y1 = f.H
	}
	for yy := y0; yy < y1; yy++ {
		row := yy * f.W
		for xx := x0; xx < x1; xx++ {
			f.Y[row+xx] = y
		}
	}
	hw := f.W / 2
	for yy := y0 / 2; yy < y1/2; yy++ {
		row := yy * hw
		for xx := x0 / 2; xx < x1/2; xx++ {
			f.Cb[row+xx] = cb
			f.Cr[row+xx] = cr
		}
	}
}
