package frame

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomFrame(r *rand.Rand, w, h int) *Frame {
	f := New(w, h)
	r.Read(f.Y)
	r.Read(f.Cb)
	r.Read(f.Cr)
	return f
}

func TestNewDimensionsEven(t *testing.T) {
	for _, d := range [][2]int{{0, 0}, {1, 1}, {3, 5}, {160, 90}, {15, 15}} {
		f := New(d[0], d[1])
		if f.W%2 != 0 || f.H%2 != 0 {
			t.Fatalf("New(%d,%d) -> odd dims %dx%d", d[0], d[1], f.W, f.H)
		}
		if len(f.Y) != f.W*f.H || len(f.Cb) != (f.W/2)*(f.H/2) || len(f.Cr) != len(f.Cb) {
			t.Fatalf("New(%d,%d): plane sizes wrong", d[0], d[1])
		}
	}
}

func TestDownscaleIdentityReturnsReceiver(t *testing.T) {
	f := New(32, 18)
	if g := f.Downscale(32, 18); g != f {
		t.Fatal("identity Downscale did not return the receiver")
	}
	if g := f.Downscale(64, 64); g != f {
		t.Fatal("clamped (upscale) Downscale did not return the receiver")
	}
	if g := f.Downscale(16, 10); g == f || g.W != 16 || g.H != 10 {
		t.Fatalf("real downscale returned %v", g)
	}
}

func TestCropCenterIdentityReturnsReceiver(t *testing.T) {
	f := New(32, 18)
	if g := f.CropCenter(1); g != f {
		t.Fatal("CropCenter(1) did not return the receiver")
	}
	if g := f.CropCenter(0.5); g == f || g.W != 16 {
		t.Fatalf("CropCenter(0.5) returned %v", g)
	}
}

func TestDownscaleIntoMatchesDownscale(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := randomFrame(r, 64, 36)
	want := f.Downscale(20, 12)
	got := New(20, 12)
	f.DownscaleInto(got)
	if !Equal(want, got) || got.PTS != want.PTS {
		t.Fatal("DownscaleInto differs from Downscale")
	}
}

func TestNewBatch(t *testing.T) {
	batch := NewBatch(31, 17, 5) // odd dims round up to even, like New
	if len(batch) != 5 {
		t.Fatalf("batch size %d", len(batch))
	}
	single := New(31, 17)
	for i, f := range batch {
		if f.W != single.W || f.H != single.H {
			t.Fatalf("frame %d dims %dx%d, want %dx%d", i, f.W, f.H, single.W, single.H)
		}
		if len(f.Y) != len(single.Y) || len(f.Cb) != len(single.Cb) || len(f.Cr) != len(single.Cr) {
			t.Fatalf("frame %d plane sizes differ from New", i)
		}
	}
	// Full-slice expressions must keep writes through one frame's plane
	// from spilling into its arena neighbour via append.
	grown := append(batch[0].Y, 0xEE)
	_ = grown
	if batch[0].Cb[0] != 0 || batch[1].Y[0] != 0 {
		t.Fatal("append through a batch plane overwrote a neighbour")
	}
	// Writes land only in the addressed frame.
	for i := range batch[2].Y {
		batch[2].Y[i] = 9
	}
	if batch[1].Y[len(batch[1].Y)-1] != 0 || batch[3].Y[0] != 0 {
		t.Fatal("write to one batch frame bled into a neighbour")
	}
	if NewBatch(8, 8, 0) != nil {
		t.Fatal("empty batch not nil")
	}
}

func TestCloneIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := randomFrame(r, 32, 18)
	g := f.Clone()
	if !Equal(f, g) {
		t.Fatal("clone differs from original")
	}
	g.Y[0] ^= 0xFF
	if Equal(f, g) {
		t.Fatal("mutating clone changed original")
	}
}

func TestDownscalePreservesMean(t *testing.T) {
	f := New(64, 64)
	for i := range f.Y {
		f.Y[i] = 100
	}
	g := f.Downscale(16, 16)
	for i, v := range g.Y {
		if v != 100 {
			t.Fatalf("downscale of constant frame changed sample %d to %d", i, v)
		}
	}
	if g.W != 16 || g.H != 16 {
		t.Fatalf("downscale dims %dx%d", g.W, g.H)
	}
}

func TestDownscaleClampsUpscale(t *testing.T) {
	f := New(16, 16)
	g := f.Downscale(64, 64)
	if g.W != 16 || g.H != 16 {
		t.Fatalf("upscale not clamped: %dx%d", g.W, g.H)
	}
}

func TestDownscaleIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := randomFrame(r, 24, 12)
	g := f.Downscale(24, 12)
	if !Equal(f, g) {
		t.Fatal("identity downscale altered frame")
	}
}

// Property: downscaling never produces samples outside the source range.
func TestDownscaleRangeProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	check := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		f := randomFrame(rr, 8+rr.Intn(56), 8+rr.Intn(56))
		var lo, hi byte = 255, 0
		for _, v := range f.Y {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		g := f.Downscale(2+rr.Intn(f.W-1), 2+rr.Intn(f.H-1))
		for _, v := range g.Y {
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: r}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCropCenterDims(t *testing.T) {
	f := New(160, 90)
	g := f.CropCenter(0.5)
	if g.W != 80 || g.H != 44 { // 45 rounded down to even
		t.Fatalf("crop 50%% dims = %dx%d", g.W, g.H)
	}
	id := f.CropCenter(1.0)
	if !Equal(f, id) {
		t.Fatal("crop 100% altered frame")
	}
}

func TestCropCenterTakesCentre(t *testing.T) {
	f := New(40, 40)
	f.FillRect(0, 0, 40, 40, 10, 128, 128)
	f.FillRect(16, 16, 8, 8, 200, 128, 128) // bright centre block
	g := f.CropCenter(0.5)
	var mean int
	for _, v := range g.Y {
		mean += int(v)
	}
	mean /= len(g.Y)
	if mean < 40 {
		t.Fatalf("cropped centre mean %d; crop did not keep the centre", mean)
	}
	// The corner content (value 10 only) must dominate a corner crop check:
	// top-left sample of the crop should still be background since centre
	// block spans 16..24 and crop starts at 10.
	if g.Y[0] != 10 {
		t.Fatalf("crop misaligned: corner sample %d", g.Y[0])
	}
}

func TestMeanAbsDiffAndPSNR(t *testing.T) {
	f := New(16, 16)
	g := f.Clone()
	if d := MeanAbsDiff(f, g); d != 0 {
		t.Fatalf("MAD of identical frames = %v", d)
	}
	if p := PSNR(f, g); !math.IsInf(p, 1) {
		t.Fatalf("PSNR of identical frames = %v", p)
	}
	for i := range g.Y {
		g.Y[i] = 10
	}
	if d := MeanAbsDiff(f, g); d != 10 {
		t.Fatalf("MAD = %v, want 10", d)
	}
	if p := PSNR(f, g); p <= 0 || math.IsInf(p, 1) {
		t.Fatalf("PSNR = %v", p)
	}
}

func TestMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MeanAbsDiff on mismatched dims did not panic")
		}
	}()
	MeanAbsDiff(New(8, 8), New(16, 16))
}

func TestFillRectClips(t *testing.T) {
	f := New(16, 16)
	f.FillRect(-4, -4, 100, 100, 77, 10, 20)
	for _, v := range f.Y {
		if v != 77 {
			t.Fatal("FillRect full cover failed")
		}
	}
	f.FillRect(100, 100, 10, 10, 1, 1, 1) // fully out of bounds: no-op
	if f.Y[0] != 77 {
		t.Fatal("out-of-bounds FillRect wrote data")
	}
}
