// Package ingest implements VStore's ingestion stage: arriving video is
// transcoded into every storage format of the configuration and written to
// the segment store, one 8-second segment at a time (§2.2, §4.1). Ingestion
// cost is accounted in CPU-seconds per second of video — the quantity the
// ingest budget (Table 4) caps.
package ingest

import (
	"fmt"
	"time"

	"repro/internal/codec"
	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/profile"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

// Stats summarises one ingestion run.
type Stats struct {
	Segments    int
	PerSF       []SFStats
	CPUSeconds  float64 // virtual transcoding CPU over the whole run
	WallSeconds float64
}

// SFStats is the per-storage-format breakdown.
type SFStats struct {
	SF         format.StorageFormat
	Bytes      int64
	CPUSeconds float64
}

// VideoSeconds returns the ingested video duration.
func (s Stats) VideoSeconds() float64 { return float64(s.Segments) * segment.Seconds }

// CPUSecPerVideoSec returns the ingest cost in cores.
func (s Stats) CPUSecPerVideoSec() float64 {
	if s.Segments == 0 {
		return 0
	}
	return s.CPUSeconds / s.VideoSeconds()
}

// BytesPerSec returns the storage cost in stored bytes per video second.
func (s Stats) BytesPerSec() float64 {
	if s.Segments == 0 {
		return 0
	}
	var b int64
	for _, sf := range s.PerSF {
		b += sf.Bytes
	}
	return float64(b) / s.VideoSeconds()
}

// Ingester transcodes a scene's stream into a set of storage formats.
type Ingester struct {
	Store *segment.Store
	SFs   []format.StorageFormat
}

// Stream ingests nSegments segments of the scene under the given stream
// name, starting at segment index seg0.
func (ing *Ingester) Stream(scene vidsim.Scene, stream string, seg0, nSegments int) (Stats, error) {
	src := vidsim.NewSource(scene)
	stats := Stats{PerSF: make([]SFStats, len(ing.SFs))}
	for i := range ing.SFs {
		stats.PerSF[i].SF = ing.SFs[i]
	}
	t0 := time.Now()
	for si := 0; si < nSegments; si++ {
		idx := seg0 + si
		full := src.Clip(idx*segment.Frames, segment.Frames)
		for fi, sf := range ing.SFs {
			bytes, cpu, err := ing.TranscodeSegment(full, stream, sf, idx)
			if err != nil {
				return stats, fmt.Errorf("ingest: segment %d into %v: %w", idx, sf, err)
			}
			stats.PerSF[fi].Bytes += bytes
			stats.PerSF[fi].CPUSeconds += cpu
			stats.CPUSeconds += cpu
		}
		stats.Segments++
	}
	stats.WallSeconds = time.Since(t0).Seconds()
	return stats, nil
}

// TranscodeSegment converts one full-fidelity segment into sf and stores
// it, returning stored bytes and virtual CPU seconds. It is safe to call
// concurrently for distinct formats of the same segment.
func (ing *Ingester) TranscodeSegment(full []*frame.Frame, stream string, sf format.StorageFormat, idx int) (int64, float64, error) {
	var srcPixels int64
	for _, f := range full {
		srcPixels += int64(f.NumPixels())
	}
	tw, th := vidsim.Dims(sf.Fidelity.Res)
	fid := sf.Fidelity
	fid.Quality = format.QBest // quality is applied by the encoder, not here
	frames := codec.ApplyFidelity(full, fid, tw, th)
	if len(frames) == 0 {
		return 0, 0, fmt.Errorf("fidelity %v yields no frames", sf.Fidelity)
	}
	cpu := profile.TransformSeconds(srcPixels)
	if sf.Coding.Raw {
		if err := ing.Store.PutRaw(stream, sf, idx, frames); err != nil {
			return 0, 0, err
		}
		var bytes int64
		for _, f := range frames {
			bytes += int64(f.Bytes())
		}
		return bytes, cpu, nil
	}
	enc, st, err := codec.Encode(frames, codec.ParamsFor(sf))
	if err != nil {
		return 0, 0, err
	}
	cpu += profile.EncodeSeconds(st, sf.Coding.Speed, enc.Size())
	if err := ing.Store.PutEncoded(stream, sf, idx, enc); err != nil {
		return 0, 0, err
	}
	return int64(enc.Size()), cpu, nil
}
