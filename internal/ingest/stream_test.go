package ingest

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/frame"
)

func oneFrame(pts int) []*frame.Frame {
	f := frame.New(8, 8)
	f.PTS = pts
	return []*frame.Frame{f}
}

// TestStreamOrderAndDrain: segments of one stream are ingested strictly in
// submission order, and Drain waits for all of them.
func TestStreamOrderAndDrain(t *testing.T) {
	var mu sync.Mutex
	var order []int
	st := NewStream("cam", 2, func(frames []*frame.Frame) error {
		mu.Lock()
		order = append(order, frames[0].PTS)
		mu.Unlock()
		return nil
	})
	const n = 10
	for i := 0; i < n; i++ {
		if err := st.Submit(oneFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	st.Drain()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != n {
		t.Fatalf("ingested %d of %d", len(order), n)
	}
	for i, pts := range order {
		if pts != i {
			t.Fatalf("out of order at %d: %v", i, order)
		}
	}
	s := st.Stats()
	if s.Submitted != n || s.Ingested != n || s.Queued != 0 || s.Failed != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamBackpressure: with queue depth 1 and a blocked sink, a second
// Submit must block until the sink makes progress.
func TestStreamBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	st := NewStream("cam", 1, func([]*frame.Frame) error {
		started <- struct{}{}
		<-release
		return nil
	})
	if err := st.Submit(oneFrame(0)); err != nil { // picked up by the worker
		t.Fatal(err)
	}
	<-started
	if err := st.Submit(oneFrame(1)); err != nil { // fills the queue
		t.Fatal(err)
	}
	blocked := make(chan error, 1)
	go func() { blocked <- st.Submit(oneFrame(2)) }()
	select {
	case <-blocked:
		t.Fatal("third Submit did not block on a full queue")
	case <-time.After(50 * time.Millisecond):
	}
	close(release) // sink proceeds; queue drains; blocked Submit lands
	if err := <-blocked; err != nil {
		t.Fatal(err)
	}
	st.Drain()
	if s := st.Stats(); s.Ingested != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamStop: Stop drains queued segments, rejects later submissions,
// and reports the first sink error; it is idempotent.
func TestStreamStop(t *testing.T) {
	var mu sync.Mutex
	var seen int
	sinkErr := errors.New("transcode failed")
	st := NewStream("cam", 8, func(frames []*frame.Frame) error {
		mu.Lock()
		seen++
		mu.Unlock()
		if frames[0].PTS == 1 {
			return fmt.Errorf("segment 1: %w", sinkErr)
		}
		return nil
	})
	for i := 0; i < 5; i++ {
		if err := st.Submit(oneFrame(i)); err != nil {
			t.Fatal(err)
		}
	}
	err := st.Stop()
	if !errors.Is(err, sinkErr) {
		t.Fatalf("Stop error = %v", err)
	}
	mu.Lock()
	if seen != 5 {
		t.Fatalf("Stop dropped queued segments: processed %d of 5", seen)
	}
	mu.Unlock()
	if err := st.Submit(oneFrame(9)); err == nil {
		t.Fatal("Submit accepted after Stop")
	}
	if err := st.Stop(); !errors.Is(err, sinkErr) { // idempotent, same error
		t.Fatalf("second Stop = %v", err)
	}
	s := st.Stats()
	if !s.Stopped || s.Ingested != 4 || s.Failed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestStreamConcurrentSubmitters: many goroutines feeding one stream never
// lose or duplicate a segment (run under -race in CI).
func TestStreamConcurrentSubmitters(t *testing.T) {
	var mu sync.Mutex
	got := map[int]int{}
	st := NewStream("cam", 3, func(frames []*frame.Frame) error {
		mu.Lock()
		got[frames[0].PTS]++
		mu.Unlock()
		return nil
	})
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := st.Submit(oneFrame(w*per + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := st.Stop(); err != nil {
		t.Fatal(err)
	}
	if len(got) != workers*per {
		t.Fatalf("ingested %d unique segments, want %d", len(got), workers*per)
	}
	for pts, n := range got {
		if n != 1 {
			t.Fatalf("segment %d ingested %d times", pts, n)
		}
	}
}
