package ingest

import (
	"fmt"
	"sync"

	"repro/internal/frame"
)

// DefaultQueueDepth bounds a live stream's pending-segment queue when the
// configuration does not specify one (Runtime.IngestQueueDepth).
const DefaultQueueDepth = 4

// StreamStats reports a live stream's ingest activity.
type StreamStats struct {
	Submitted int64 // segments accepted by Submit
	Ingested  int64 // segments durably ingested and committed
	Failed    int64 // segments whose ingestion errored (dropped)
	Queued    int   // segments submitted but not yet ingested (incl. in flight)
	Stopped   bool
}

// Stream is a live per-stream ingest pipeline: a single goroutine drains a
// bounded segment queue, so segments of one stream are ingested strictly
// in submission order while distinct streams proceed concurrently. Submit
// blocks once the queue is full — backpressure toward the camera — and the
// heavy transcode work happens in the sink (the server fans it across a
// shared worker pool). All methods are safe for concurrent use.
type Stream struct {
	name string
	sink func([]*frame.Frame) error
	ch   chan []*frame.Frame
	quit chan struct{}
	done chan struct{}

	mu        sync.Mutex
	cond      *sync.Cond
	closed    bool
	queued    int
	submitted int64
	ingested  int64
	failed    int64
	firstErr  error
	pending   sync.WaitGroup // Submit calls past the closed check
}

// NewStream starts the pipeline for one stream. depth bounds the pending
// queue (<= 0 selects DefaultQueueDepth). sink ingests one full-fidelity
// segment durably; it is called from the stream's single worker goroutine,
// never concurrently for the same stream.
func NewStream(name string, depth int, sink func([]*frame.Frame) error) *Stream {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	st := &Stream{
		name: name,
		sink: sink,
		ch:   make(chan []*frame.Frame, depth),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	st.cond = sync.NewCond(&st.mu)
	go st.loop()
	return st
}

// Name returns the stream's name.
func (st *Stream) Name() string { return st.name }

// Submit enqueues one segment's full-fidelity frames, blocking while the
// queue is full. It fails once the stream is stopped. A sink error on an
// earlier segment does not fail Submit: segments are independent, and the
// first error is latched for Stop.
func (st *Stream) Submit(frames []*frame.Frame) error {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return fmt.Errorf("ingest: stream %q is stopped", st.name)
	}
	st.pending.Add(1)
	st.submitted++
	st.queued++
	st.mu.Unlock()
	defer st.pending.Done()
	st.ch <- frames // backpressure: blocks while the queue is full
	return nil
}

func (st *Stream) loop() {
	defer close(st.done)
	for {
		select {
		case frames := <-st.ch:
			st.process(frames)
		case <-st.quit:
			// Stop has guaranteed no further sends: drain what is queued
			// and exit.
			for {
				select {
				case frames := <-st.ch:
					st.process(frames)
				default:
					return
				}
			}
		}
	}
}

func (st *Stream) process(frames []*frame.Frame) {
	err := st.sink(frames)
	st.mu.Lock()
	st.queued--
	if err != nil {
		st.failed++
		if st.firstErr == nil {
			st.firstErr = fmt.Errorf("ingest: stream %q: %w", st.name, err)
		}
	} else {
		st.ingested++
	}
	st.cond.Broadcast()
	st.mu.Unlock()
}

// Drain blocks until every segment submitted so far has been ingested (or
// failed). The stream keeps accepting new segments.
func (st *Stream) Drain() {
	st.mu.Lock()
	for st.queued > 0 {
		st.cond.Wait()
	}
	st.mu.Unlock()
}

// Stop rejects further submissions, drains the queue, stops the worker,
// and returns the first sink error of the stream's lifetime. It is
// idempotent.
func (st *Stream) Stop() error {
	st.mu.Lock()
	already := st.closed
	st.closed = true
	st.mu.Unlock()
	if !already {
		// Submits past the closed check hold a pending slot until their
		// enqueue lands; after Wait no new sends can start, so the drain
		// loop's emptiness check is exact.
		st.pending.Wait()
		close(st.quit)
	}
	<-st.done
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.firstErr
}

// Err returns the first sink error latched so far (nil if none).
func (st *Stream) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.firstErr
}

// Stats returns a snapshot of the stream's counters.
func (st *Stream) Stats() StreamStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StreamStats{
		Submitted: st.submitted,
		Ingested:  st.ingested,
		Failed:    st.failed,
		Queued:    st.queued,
		Stopped:   st.closed,
	}
}
