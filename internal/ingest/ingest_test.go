package ingest

import (
	"testing"

	"repro/internal/format"
	"repro/internal/kvstore"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

func newStore(t *testing.T) *segment.Store {
	t.Helper()
	kv, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kv.Close() })
	return segment.NewStore(kv)
}

func sfEncoded(res format.Resolution, s format.Sampling, speed format.SpeedStep) format.StorageFormat {
	return format.StorageFormat{
		Fidelity: format.Fidelity{Quality: format.QGood, Crop: format.Crop100, Res: res, Sampling: s},
		Coding:   format.Coding{Speed: speed, KeyframeI: 50},
	}
}

func TestStreamStoresEverySegmentAndFormat(t *testing.T) {
	store := newStore(t)
	sfs := []format.StorageFormat{
		sfEncoded(360, format.Sampling{Num: 1, Den: 1}, format.SpeedFast),
		{Fidelity: format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: 144, Sampling: format.Sampling{Num: 1, Den: 6}},
			Coding: format.RawCoding},
	}
	ing := Ingester{Store: store, SFs: sfs}
	sc, _ := vidsim.DatasetByName("park")
	st, err := ing.Stream(sc, "park", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 3 || st.VideoSeconds() != 24 {
		t.Fatalf("stats = %+v", st)
	}
	for _, sf := range sfs {
		segs := store.Segments("park", sf)
		if len(segs) != 3 || segs[0] != 2 || segs[2] != 4 {
			t.Fatalf("%v segments = %v", sf, segs)
		}
	}
	if st.BytesPerSec() <= 0 {
		t.Fatal("no bytes accounted")
	}
	// The raw format costs no encoder CPU; the encoded one does.
	if st.PerSF[1].CPUSeconds >= st.PerSF[0].CPUSeconds {
		t.Fatalf("raw CPU %.4f not below encoded %.4f", st.PerSF[1].CPUSeconds, st.PerSF[0].CPUSeconds)
	}
}

func TestSlowerCodingCostsMoreCPU(t *testing.T) {
	sc, _ := vidsim.DatasetByName("park")
	slow := Ingester{Store: newStore(t), SFs: []format.StorageFormat{sfEncoded(360, format.Sampling{Num: 1, Den: 1}, format.SpeedSlowest)}}
	fast := Ingester{Store: newStore(t), SFs: []format.StorageFormat{sfEncoded(360, format.Sampling{Num: 1, Den: 1}, format.SpeedFastest)}}
	s1, err := slow.Stream(sc, "a", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := fast.Stream(sc, "a", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1.CPUSecPerVideoSec() <= s2.CPUSecPerVideoSec() {
		t.Fatalf("slowest coding %.3f cores not above fastest %.3f", s1.CPUSecPerVideoSec(), s2.CPUSecPerVideoSec())
	}
	if s1.BytesPerSec() > s2.BytesPerSec() {
		t.Fatalf("slowest coding stored more: %.0f vs %.0f B/s", s1.BytesPerSec(), s2.BytesPerSec())
	}
}

func TestSampledFormatStoresFewerFrames(t *testing.T) {
	store := newStore(t)
	full := sfEncoded(200, format.Sampling{Num: 1, Den: 1}, format.SpeedFast)
	sparse := sfEncoded(200, format.Sampling{Num: 1, Den: 30}, format.SpeedFast)
	ing := Ingester{Store: store, SFs: []format.StorageFormat{full, sparse}}
	sc, _ := vidsim.DatasetByName("park")
	if _, err := ing.Stream(sc, "cam", 0, 1); err != nil {
		t.Fatal(err)
	}
	fe, err := store.GetEncoded("cam", full, 0)
	if err != nil {
		t.Fatal(err)
	}
	se, err := store.GetEncoded("cam", sparse, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fe.N != segment.Frames || se.N != segment.Frames/30 {
		t.Fatalf("frame counts: full %d, sparse %d", fe.N, se.N)
	}
	// Stored PTS values of the sparse format are original-timeline indices.
	for i := 0; i < se.N; i++ {
		if pts := se.PTSAt(i); pts%30 != 29 {
			t.Fatalf("sparse stored PTS %d not on the 1/30 grid", pts)
		}
	}
}

func TestIngestEmptyRun(t *testing.T) {
	ing := Ingester{Store: newStore(t), SFs: nil}
	sc, _ := vidsim.DatasetByName("park")
	st, err := ing.Stream(sc, "cam", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.CPUSecPerVideoSec() != 0 || st.BytesPerSec() != 0 {
		t.Fatalf("empty run stats: %+v", st)
	}
}
