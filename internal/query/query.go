// Package query executes video queries as operator cascades (§2.1, Figure
// 2): early, cheap operators scan the whole queried span and activate late,
// expensive operators on the fraction of video that passed. Each stage
// consumes its own consumption format, retrieved from the storage format its
// consumer subscribes to.
package query

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/ops"
	"repro/internal/profile"
	"repro/internal/results"
	"repro/internal/retrieve"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

// Stage is one operator of a cascade.
type Stage struct {
	Op ops.Operator
}

// Cascade is an ordered operator pipeline.
type Cascade struct {
	Name   string
	Stages []Stage
}

// QueryA is the car-detection cascade of Figure 2(a): Diff filters similar
// frames, S-NN rapidly detects obvious cars, NN analyses the remainder.
func QueryA() Cascade {
	return Cascade{Name: "A (Diff+S-NN+NN)", Stages: []Stage{{ops.Diff{}}, {ops.SNN{}}, {ops.NN{}}}}
}

// QueryB is the license-plate recognition cascade of Figure 2(b): Motion
// filters still frames, License spots plate regions, OCR reads characters.
func QueryB() Cascade {
	return Cascade{Name: "B (Motion+License+OCR)", Stages: []Stage{{ops.Motion{}}, {ops.License{}}, {ops.OCR{}}}}
}

// ByName resolves the named standard cascade and its operator names — the
// shared lookup behind the CLI's and the HTTP API's -query/"query" knob.
func ByName(name string) (Cascade, []string, error) {
	switch name {
	case "A", "a":
		return QueryA(), []string{"Diff", "S-NN", "NN"}, nil
	case "B", "b":
		return QueryB(), []string{"Motion", "License", "OCR"}, nil
	}
	return Cascade{}, nil, fmt.Errorf("query: unknown cascade %q (want A or B)", name)
}

// StageBinding tells a stage which consumption format to consume and which
// storage format to retrieve it from. Bindings are produced from a derived
// configuration, or from the 1→1 / 1→N baselines of §6.2.
type StageBinding struct {
	CF format.ConsumptionFormat
	SF format.StorageFormat
}

// Binding is the per-stage format assignment of one query execution.
type Binding []StageBinding

// Result is the outcome of a query execution.
type Result struct {
	Detections   []ops.Detection // final-stage detections
	FinalPTS     []int           // frames the final stage consumed
	VideoSeconds float64
	// VirtualSeconds is the pipelined execution time on the virtual clock:
	// per stage, retrieval and consumption overlap.
	VirtualSeconds float64
	WallSeconds    float64
	StageStats     []StageStats
}

// StageStats reports one stage's work.
type StageStats struct {
	Op             string
	FramesConsumed int64
	RetrievalSec   float64
	ConsumptionSec float64
	ActivatedSpans int
}

// Speed returns the query speed as a multiple of video realtime on the
// virtual clock.
func (r Result) Speed() float64 {
	if r.VirtualSeconds <= 0 {
		return 0
	}
	return r.VideoSeconds / r.VirtualSeconds
}

// Engine runs cascades against a segment store — a bare *segment.Store,
// or a segment.View pinning a server snapshot so a live query observes one
// immutable segment set for its whole run.
type Engine struct {
	Store retrieve.SegmentReader
	// Cache, when non-nil, memoises full-segment retrievals (see
	// retrieve.Cache).
	Cache *retrieve.Cache
	// Results, when non-nil, materializes finalized per-segment stage
	// outputs (see the results package): eligible stages consult it before
	// computing and write behind after, so a repeated query serves stored
	// detections at kvstore speed instead of re-decoding and re-running
	// operators. A stage is eligible when its operator is frame-independent
	// (per-segment outputs concatenate into exactly the whole-range output)
	// or the range is a single segment (a stateful operator's output over
	// one segment is self-contained); segment visibility gates every lookup
	// exactly as it gates the frame cache, and entries carry the exact
	// accounting of the computation they memoise — so results are
	// byte-identical to the recomputing path at any worker count.
	Results *results.Store
	// Workers bounds the engine's worker pool. Each stage fans its segment
	// retrievals across the pool and merges frames in segment order, and
	// operators declaring per-frame independence (ops.FrameIndependent)
	// additionally fan consumption across frame chunks reassembled in
	// order — so the cascade's output is identical to the sequential path
	// in both cases. Stateful operators (frame differencing, background
	// models) consume sequentially, since splitting their input would
	// change detections. Zero selects runtime.GOMAXPROCS; one forces fully
	// sequential execution.
	Workers int
	// Rebuild, when non-nil, reconstructs a damaged or lost replica from
	// a richer surviving ancestor so the query answers degraded instead
	// of failing (see retrieve.Retriever.Rebuild). Degraded serves skip
	// the frame cache and the results store.
	Rebuild retrieve.RebuildFunc
	// OnDegraded, when non-nil, observes every degraded serve — the
	// server's hook for counting and enqueueing background repair.
	OnDegraded func(stream string, seg int, sf format.StorageFormat)
}

// Run executes the cascade over segments [seg0, seg1) of the stream using
// the given binding (one entry per stage). ctx cancels the run between
// per-segment retrieval batches: a canceled query stops scheduling decode
// work promptly — segments already decoding finish, nothing further
// starts — and Run returns ctx.Err(). Pass context.Background() for an
// uncancellable run; nil is treated the same.
func (e *Engine) Run(ctx context.Context, stream string, c Cascade, b Binding, seg0, seg1 int) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(b) != len(c.Stages) {
		return Result{}, fmt.Errorf("query: binding has %d stages, cascade %d", len(b), len(c.Stages))
	}
	r := retrieve.Retriever{Store: e.Store, Cache: e.Cache, Rebuild: e.Rebuild, OnDegraded: e.OnDegraded}
	if e.Workers != 1 {
		// Intra-segment decode parallelism: each retrieval fans its
		// segment's independent GOPs across this pool (merged in position
		// order, so output is byte-identical to sequential). The pool is
		// distinct from the per-range segment fan-out pools — a segment
		// task blocking on a decode slot can never deadlock against its
		// own pool.
		r.DecodePool = NewPool(e.Workers)
	}
	res := Result{VideoSeconds: float64(seg1-seg0) * segment.Seconds}
	t0 := time.Now()

	// Activation filter: nil for the first stage (scan everything); later
	// stages consume only spans around the previous stage's detections. The
	// tag digests the activation spans so filtered retrievals stay
	// cacheable (spans are a deterministic function of the earlier stages'
	// output, so equal tags imply equal delivered frame sets).
	var within func(pts int) bool
	var tag string
	for si, stage := range c.Stages {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		// A stage routes through the results store per segment when its
		// per-segment outputs provably compose into the whole-range output:
		// frame-independent operators by contract, and any operator over a
		// single segment (its output there is self-contained). Stateful
		// operators over multi-segment ranges — splitting their input per
		// segment would change detections — materialize the whole range as
		// one unit instead, validated against the exact segment set the
		// caller's snapshot would retrieve.
		var out ops.Output
		var rst retrieve.Stats
		var ost ops.Stats
		var err error
		switch {
		case e.Results == nil || (within != nil && tag == ""):
			var frames []*frame.Frame
			frames, rst, err = e.retrieveRange(ctx, &r, stream, b[si].SF, b[si].CF, seg0, seg1, within, tag)
			if err == nil {
				out, ost = runStage(stage.Op, frames, b[si].CF.Fidelity, e.Workers)
			}
		case ops.IsFrameIndependent(stage.Op) || seg1-seg0 <= 1:
			out, rst, ost, err = e.runStageMaterialized(ctx, &r, stream, stage.Op, b[si], seg0, seg1, within, tag)
		default:
			out, rst, ost, err = e.runStageRangeMaterialized(ctx, &r, stream, stage.Op, b[si], seg0, seg1, within, tag)
		}
		if err != nil {
			if ctx.Err() != nil {
				return res, ctx.Err()
			}
			return res, fmt.Errorf("query: stage %s: %w", stage.Op.Name(), err)
		}
		stageStat := StageStats{
			Op: stage.Op.Name(),
			// Delivered == consumed: every frame a retrieval delivers, the
			// stage consumes. The delivered count is part of the retrieval
			// stats, so hit and recompute paths report it identically.
			FramesConsumed: rst.FramesDelivered,
			RetrievalSec:   rst.VirtualSeconds,
			ConsumptionSec: profile.OpSeconds(ost),
		}
		// Pipelined stage time: decoder and operator overlap, so the stage
		// runs at the slower of the two (§2.2: "the operator runs at the
		// speed of retrieval or consumption, whichever is lower").
		res.VirtualSeconds += maxf(rst.VirtualSeconds, stageStat.ConsumptionSec)
		if si == len(c.Stages)-1 {
			res.Detections = out.Detections
			res.FinalPTS = out.PTS
			res.StageStats = append(res.StageStats, stageStat)
			break
		}
		// Build the next stage's activation window set.
		spans := activationSpans(out, b[si].CF.Fidelity.Sampling)
		stageStat.ActivatedSpans = len(spans)
		res.StageStats = append(res.StageStats, stageStat)
		if len(spans) == 0 {
			// Nothing passed the filter: the cascade short-circuits.
			for _, later := range c.Stages[si+1:] {
				res.StageStats = append(res.StageStats, StageStats{Op: later.Op.Name()})
			}
			break
		}
		within = spanPredicate(spans)
		tag = spanTag(spans)
	}
	res.WallSeconds = time.Since(t0).Seconds()
	return res, nil
}

// retrieveRange fetches segments [seg0, seg1), fanning them across the
// engine's worker pool and merging frames and stats in segment order — the
// same fold the sequential retrieve.Range performs, so results (including
// the order-sensitive float accumulation of virtual seconds) are identical.
// Missing (eroded) segments are skipped exactly as in the sequential path.
// ctx is checked between per-segment batches (before each sequential
// retrieval, and before each pooled segment task starts): cancellation
// stops further decode work promptly and surfaces as ctx.Err().
func (e *Engine) retrieveRange(ctx context.Context, r *retrieve.Retriever, stream string, sf format.StorageFormat, cf format.ConsumptionFormat, seg0, seg1 int, within func(pts int) bool, tag string) ([]*frame.Frame, retrieve.Stats, error) {
	n := seg1 - seg0
	if e.Workers == 1 || n <= 1 {
		return r.RangeTagged(ctx, stream, sf, cf, seg0, seg1, within, tag)
	}
	type segResult struct {
		frames []*frame.Frame
		st     retrieve.Stats
		err    error
	}
	results := make([]segResult, n)
	pool := NewPool(e.Workers)
	for i := 0; i < n; i++ {
		idx := seg0 + i
		slot := &results[i]
		pool.Go(func() {
			// A canceled query abandons queued segment tasks before their
			// decode starts; in-flight decodes run to completion.
			if err := ctx.Err(); err != nil {
				slot.err = err
				return
			}
			slot.frames, slot.st, slot.err = r.SegmentTagged(stream, sf, cf, idx, within, tag)
		})
	}
	pool.Wait()
	if err := ctx.Err(); err != nil {
		return nil, retrieve.Stats{}, err
	}
	var all []*frame.Frame
	var total retrieve.Stats
	for i := range results {
		total.Add(results[i].st)
		if errors.Is(results[i].err, segment.ErrNotFound) {
			continue // eroded segment: caller handles fallback
		}
		if results[i].err != nil {
			return nil, total, results[i].err
		}
		all = append(all, results[i].frames...)
	}
	return all, total, nil
}

// runStageMaterialized executes one eligible stage per segment through the
// results store: each segment is answered from a stored entry when one
// exists (visibility-gated, exactly like the frame cache) and
// computed-then-stored otherwise. Outputs and stats merge in segment order —
// the same fold retrieveRange performs, including its order-sensitive
// virtual-seconds accumulation and its skip of eroded segments — so the
// stage result is byte-identical to the recomputing path at any worker
// count and under any hit/miss mix.
func (e *Engine) runStageMaterialized(ctx context.Context, r *retrieve.Retriever, stream string, op ops.Operator, sb StageBinding, seg0, seg1 int, within func(pts int) bool, tag string) (ops.Output, retrieve.Stats, ops.Stats, error) {
	n := seg1 - seg0
	var out ops.Output
	var rst retrieve.Stats
	var ost ops.Stats
	if e.Workers == 1 || n <= 1 {
		for idx := seg0; idx < seg1; idx++ {
			if err := ctx.Err(); err != nil {
				return ops.Output{}, rst, ost, err
			}
			o, srst, sost, err := e.materializedSegment(r, stream, op, sb, idx, within, tag, e.Workers)
			rst.Add(srst)
			if errors.Is(err, segment.ErrNotFound) {
				continue // eroded segment: same skip as the retrieval fold
			}
			if err != nil {
				return ops.Output{}, rst, ost, err
			}
			out.PTS = append(out.PTS, o.PTS...)
			out.Detections = append(out.Detections, o.Detections...)
			ost.Add(sost)
		}
		return out, rst, ost, nil
	}
	type segResult struct {
		out ops.Output
		rst retrieve.Stats
		ost ops.Stats
		err error
	}
	slots := make([]segResult, n)
	pool := NewPool(e.Workers)
	for i := 0; i < n; i++ {
		idx := seg0 + i
		slot := &slots[i]
		pool.Go(func() {
			// A canceled query abandons queued segment tasks before they
			// touch the store; a task that has started always balances its
			// own Get miss (Put or Abandon) before finishing.
			if err := ctx.Err(); err != nil {
				slot.err = err
				return
			}
			slot.out, slot.rst, slot.ost, slot.err = e.materializedSegment(r, stream, op, sb, idx, within, tag, 1)
		})
	}
	pool.Wait()
	if err := ctx.Err(); err != nil {
		return ops.Output{}, retrieve.Stats{}, ops.Stats{}, err
	}
	for i := range slots {
		rst.Add(slots[i].rst)
		if errors.Is(slots[i].err, segment.ErrNotFound) {
			continue // eroded segment: same skip as the retrieval fold
		}
		if slots[i].err != nil {
			return ops.Output{}, rst, ost, slots[i].err
		}
		out.PTS = append(out.PTS, slots[i].out.PTS...)
		out.Detections = append(out.Detections, slots[i].out.Detections...)
		ost.Add(slots[i].ost)
	}
	return out, rst, ost, nil
}

// materializedSegment answers one segment of an eligible stage: visibility
// check first (an eroded segment must miss even while its entry is still
// resident), then consult the store, then compute and write behind on a
// miss. Every Get miss is balanced — Put on success, Abandon on retrieval
// error — so the stream's generation state never leaks; the generation
// token carried from Get to Put drops fills that raced an invalidation.
func (e *Engine) materializedSegment(r *retrieve.Retriever, stream string, op ops.Operator, sb StageBinding, idx int, within func(pts int) bool, tag string, workers int) (ops.Output, retrieve.Stats, ops.Stats, error) {
	if !e.Store.Visible(stream, sb.SF, idx) {
		return ops.Output{}, retrieve.Stats{}, ops.Stats{}, segment.ErrNotFound
	}
	k := results.Key{Stream: stream, Seg: idx, Op: op.Name(), SF: sb.SF.Key(), CF: sb.CF.Fidelity.Key(), Span: tag}
	ent, gen, ok := e.Results.Get(k)
	if ok {
		return ops.Output{PTS: ent.PTS, Detections: ent.Detections}, ent.Retrieval, ent.Consumption, nil
	}
	frames, rst, err := r.SegmentTagged(stream, sb.SF, sb.CF, idx, within, tag)
	if err != nil {
		e.Results.Abandon(stream)
		return ops.Output{}, rst, ops.Stats{}, err
	}
	out, ost := runStage(op, frames, sb.CF.Fidelity, workers)
	if rst.Degraded > 0 {
		// The frames came from a fallback reconstruction, possibly
		// best-effort: answer the query but never materialize the output,
		// so post-repair queries recompute from the restored replica.
		e.Results.Abandon(stream)
		return out, rst, ost, nil
	}
	e.Results.Put(k, results.Entry{PTS: out.PTS, Detections: out.Detections, Retrieval: rst, Consumption: ost}, gen)
	return out, rst, ost, nil
}

// runStageRangeMaterialized executes a stateful stage over a multi-segment
// range through the results store as one unit: the whole sequential
// computation — retrieval fold, operator run, exact accounting — is
// memoised under a range key and served back only to callers whose
// snapshot would retrieve exactly the same segments. That coverage check,
// plus the per-stream generation token, keeps the invariant the
// per-segment path gets from its visibility gate: an eroded segment can
// never contribute stale frames to a served result. A stored range entry
// memoises the sequential path verbatim (outputs and folded stats as one
// blob), so hits are byte-identical to recomputation at any worker count.
func (e *Engine) runStageRangeMaterialized(ctx context.Context, r *retrieve.Retriever, stream string, op ops.Operator, sb StageBinding, seg0, seg1 int, within func(pts int) bool, tag string) (ops.Output, retrieve.Stats, ops.Stats, error) {
	visible := make([]int, 0, seg1-seg0)
	for idx := seg0; idx < seg1; idx++ {
		if e.Store.Visible(stream, sb.SF, idx) {
			visible = append(visible, idx)
		}
	}
	recompute := func() (ops.Output, retrieve.Stats, ops.Stats, error) {
		frames, rst, err := e.retrieveRange(ctx, r, stream, sb.SF, sb.CF, seg0, seg1, within, tag)
		if err != nil {
			return ops.Output{}, rst, ops.Stats{}, err
		}
		out, ost := runStage(op, frames, sb.CF.Fidelity, e.Workers)
		return out, rst, ost, nil
	}
	if len(visible) == 0 {
		// Nothing this snapshot can retrieve: run the (empty) fold without
		// storing an uninvalidatable entry.
		return recompute()
	}
	k := results.Key{Stream: stream, Seg: seg0, End: seg1, Op: op.Name(), SF: sb.SF.Key(), CF: sb.CF.Fidelity.Key(), Span: tag}
	ent, gen, ok := e.Results.GetRange(k, visible)
	if ok {
		return ops.Output{PTS: ent.PTS, Detections: ent.Detections}, ent.Retrieval, ent.Consumption, nil
	}
	out, rst, ost, err := recompute()
	if err != nil {
		e.Results.Abandon(stream)
		return ops.Output{}, rst, ops.Stats{}, err
	}
	if rst.Degraded > 0 {
		// Degraded serves are answered but never materialized (see
		// materializedSegment).
		e.Results.Abandon(stream)
		return out, rst, ost, nil
	}
	e.Results.Put(k, results.Entry{Segs: visible, PTS: out.PTS, Detections: out.Detections, Retrieval: rst, Consumption: ost}, gen)
	return out, rst, ost, nil
}

// spanTag digests activation spans into a cache tag: equal span sets — and
// only equal span sets, short of a SHA-256 collision — produce equal tags.
func spanTag(spans []span) string {
	h := sha256.New()
	var buf [16]byte
	for _, s := range spans {
		binary.BigEndian.PutUint64(buf[:8], uint64(int64(s.lo)))
		binary.BigEndian.PutUint64(buf[8:], uint64(int64(s.hi)))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// minChunkFrames keeps consumption fan-out worthwhile: chunks smaller than
// this run sequentially, as goroutine overhead would swamp the work.
const minChunkFrames = 4

// runStage executes one cascade stage's consumption. Operators declaring
// per-frame independence (ops.FrameIndependent) run on contiguous frame
// chunks fanned across a worker pool, with outputs concatenated in chunk
// order and stats summed — which the contract guarantees is identical to a
// single sequential call. Stateful operators (frame differencing,
// background models) always run sequentially.
func runStage(op ops.Operator, frames []*frame.Frame, fid format.Fidelity, workers int) (ops.Output, ops.Stats) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunks := workers
	if max := len(frames) / minChunkFrames; chunks > max {
		chunks = max
	}
	if workers == 1 || chunks < 2 || !ops.IsFrameIndependent(op) {
		return ops.RunAtFidelity(op, frames, fid)
	}
	type chunkResult struct {
		out ops.Output
		st  ops.Stats
	}
	results := make([]chunkResult, chunks)
	pool := NewPool(workers)
	for i := 0; i < chunks; i++ {
		lo := len(frames) * i / chunks
		hi := len(frames) * (i + 1) / chunks
		slot := &results[i]
		pool.Go(func() {
			slot.out, slot.st = ops.RunAtFidelity(op, frames[lo:hi], fid)
		})
	}
	pool.Wait()
	var out ops.Output
	var st ops.Stats
	for i := range results {
		out.PTS = append(out.PTS, results[i].out.PTS...)
		out.Detections = append(out.Detections, results[i].out.Detections...)
		st.Add(results[i].st)
	}
	return out, st
}

type span struct{ lo, hi int }

// activationSpans converts a stage's detections into original-timeline
// windows: each detection covers its consumed frame's sampling interval.
func activationSpans(out ops.Output, s format.Sampling) []span {
	interval := int(s.Interval())
	if interval < 1 {
		interval = 1
	}
	var spans []span
	for _, d := range out.Detections {
		lo := d.PTS - interval/2
		hi := d.PTS + interval + interval/2
		if n := len(spans); n > 0 && lo <= spans[n-1].hi {
			if hi > spans[n-1].hi {
				spans[n-1].hi = hi
			}
			continue
		}
		spans = append(spans, span{lo, hi})
	}
	return spans
}

func spanPredicate(spans []span) func(int) bool {
	return func(pts int) bool {
		// Binary search over sorted spans.
		lo, hi := 0, len(spans)-1
		for lo <= hi {
			mid := (lo + hi) / 2
			switch {
			case pts < spans[mid].lo:
				hi = mid - 1
			case pts > spans[mid].hi:
				lo = mid + 1
			default:
				return true
			}
		}
		return false
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// GroundTruth runs the cascade entirely at the ingestion fidelity directly
// from the scene source (no store), producing the reference output used to
// score query accuracy in examples and experiments.
func GroundTruth(scene vidsim.Scene, c Cascade, seg0, seg1 int) ops.Output {
	src := vidsim.NewSource(scene)
	frames := src.Clip(seg0*segment.Frames, (seg1-seg0)*segment.Frames)
	var within func(int) bool
	var out ops.Output
	full := format.MaxFidelity()
	for si, stage := range c.Stages {
		in := frames
		if within != nil {
			in = in[:0:0]
			for _, f := range frames {
				if within(f.PTS) {
					in = append(in, f)
				}
			}
		}
		res, _ := ops.RunAtFidelity(stage.Op, in, full)
		out = res
		if si < len(c.Stages)-1 {
			spans := activationSpans(res, full.Sampling)
			if len(spans) == 0 {
				return ops.Output{PTS: res.PTS}
			}
			within = spanPredicate(spans)
		}
	}
	return out
}
