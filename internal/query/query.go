// Package query executes video queries as operator cascades (§2.1, Figure
// 2): early, cheap operators scan the whole queried span and activate late,
// expensive operators on the fraction of video that passed. Each stage
// consumes its own consumption format, retrieved from the storage format its
// consumer subscribes to.
package query

import (
	"fmt"
	"time"

	"repro/internal/format"
	"repro/internal/ops"
	"repro/internal/profile"
	"repro/internal/retrieve"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

// Stage is one operator of a cascade.
type Stage struct {
	Op ops.Operator
}

// Cascade is an ordered operator pipeline.
type Cascade struct {
	Name   string
	Stages []Stage
}

// QueryA is the car-detection cascade of Figure 2(a): Diff filters similar
// frames, S-NN rapidly detects obvious cars, NN analyses the remainder.
func QueryA() Cascade {
	return Cascade{Name: "A (Diff+S-NN+NN)", Stages: []Stage{{ops.Diff{}}, {ops.SNN{}}, {ops.NN{}}}}
}

// QueryB is the license-plate recognition cascade of Figure 2(b): Motion
// filters still frames, License spots plate regions, OCR reads characters.
func QueryB() Cascade {
	return Cascade{Name: "B (Motion+License+OCR)", Stages: []Stage{{ops.Motion{}}, {ops.License{}}, {ops.OCR{}}}}
}

// StageBinding tells a stage which consumption format to consume and which
// storage format to retrieve it from. Bindings are produced from a derived
// configuration, or from the 1→1 / 1→N baselines of §6.2.
type StageBinding struct {
	CF format.ConsumptionFormat
	SF format.StorageFormat
}

// Binding is the per-stage format assignment of one query execution.
type Binding []StageBinding

// Result is the outcome of a query execution.
type Result struct {
	Detections   []ops.Detection // final-stage detections
	FinalPTS     []int           // frames the final stage consumed
	VideoSeconds float64
	// VirtualSeconds is the pipelined execution time on the virtual clock:
	// per stage, retrieval and consumption overlap.
	VirtualSeconds float64
	WallSeconds    float64
	StageStats     []StageStats
}

// StageStats reports one stage's work.
type StageStats struct {
	Op             string
	FramesConsumed int64
	RetrievalSec   float64
	ConsumptionSec float64
	ActivatedSpans int
}

// Speed returns the query speed as a multiple of video realtime on the
// virtual clock.
func (r Result) Speed() float64 {
	if r.VirtualSeconds <= 0 {
		return 0
	}
	return r.VideoSeconds / r.VirtualSeconds
}

// Engine runs cascades against a segment store.
type Engine struct {
	Store *segment.Store
}

// Run executes the cascade over segments [seg0, seg1) of the stream using
// the given binding (one entry per stage).
func (e *Engine) Run(stream string, c Cascade, b Binding, seg0, seg1 int) (Result, error) {
	if len(b) != len(c.Stages) {
		return Result{}, fmt.Errorf("query: binding has %d stages, cascade %d", len(b), len(c.Stages))
	}
	r := retrieve.Retriever{Store: e.Store}
	res := Result{VideoSeconds: float64(seg1-seg0) * segment.Seconds}
	t0 := time.Now()

	// Activation filter: nil for the first stage (scan everything); later
	// stages consume only spans around the previous stage's detections.
	var within func(pts int) bool
	for si, stage := range c.Stages {
		frames, rst, err := r.Range(stream, b[si].SF, b[si].CF, seg0, seg1, within)
		if err != nil {
			return res, fmt.Errorf("query: stage %s: %w", stage.Op.Name(), err)
		}
		out, ost := ops.RunAtFidelity(stage.Op, frames, b[si].CF.Fidelity)
		stageStat := StageStats{
			Op:             stage.Op.Name(),
			FramesConsumed: int64(len(frames)),
			RetrievalSec:   rst.VirtualSeconds,
			ConsumptionSec: profile.OpSeconds(ost),
		}
		// Pipelined stage time: decoder and operator overlap, so the stage
		// runs at the slower of the two (§2.2: "the operator runs at the
		// speed of retrieval or consumption, whichever is lower").
		res.VirtualSeconds += maxf(rst.VirtualSeconds, stageStat.ConsumptionSec)
		if si == len(c.Stages)-1 {
			res.Detections = out.Detections
			res.FinalPTS = out.PTS
			res.StageStats = append(res.StageStats, stageStat)
			break
		}
		// Build the next stage's activation window set.
		spans := activationSpans(out, b[si].CF.Fidelity.Sampling)
		stageStat.ActivatedSpans = len(spans)
		res.StageStats = append(res.StageStats, stageStat)
		if len(spans) == 0 {
			// Nothing passed the filter: the cascade short-circuits.
			for _, later := range c.Stages[si+1:] {
				res.StageStats = append(res.StageStats, StageStats{Op: later.Op.Name()})
			}
			break
		}
		within = spanPredicate(spans)
	}
	res.WallSeconds = time.Since(t0).Seconds()
	return res, nil
}

type span struct{ lo, hi int }

// activationSpans converts a stage's detections into original-timeline
// windows: each detection covers its consumed frame's sampling interval.
func activationSpans(out ops.Output, s format.Sampling) []span {
	interval := int(s.Interval())
	if interval < 1 {
		interval = 1
	}
	var spans []span
	for _, d := range out.Detections {
		lo := d.PTS - interval/2
		hi := d.PTS + interval + interval/2
		if n := len(spans); n > 0 && lo <= spans[n-1].hi {
			if hi > spans[n-1].hi {
				spans[n-1].hi = hi
			}
			continue
		}
		spans = append(spans, span{lo, hi})
	}
	return spans
}

func spanPredicate(spans []span) func(int) bool {
	return func(pts int) bool {
		// Binary search over sorted spans.
		lo, hi := 0, len(spans)-1
		for lo <= hi {
			mid := (lo + hi) / 2
			switch {
			case pts < spans[mid].lo:
				hi = mid - 1
			case pts > spans[mid].hi:
				lo = mid + 1
			default:
				return true
			}
		}
		return false
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// GroundTruth runs the cascade entirely at the ingestion fidelity directly
// from the scene source (no store), producing the reference output used to
// score query accuracy in examples and experiments.
func GroundTruth(scene vidsim.Scene, c Cascade, seg0, seg1 int) ops.Output {
	src := vidsim.NewSource(scene)
	frames := src.Clip(seg0*segment.Frames, (seg1-seg0)*segment.Frames)
	var within func(int) bool
	var out ops.Output
	full := format.MaxFidelity()
	for si, stage := range c.Stages {
		in := frames
		if within != nil {
			in = in[:0:0]
			for _, f := range frames {
				if within(f.PTS) {
					in = append(in, f)
				}
			}
		}
		res, _ := ops.RunAtFidelity(stage.Op, in, full)
		out = res
		if si < len(c.Stages)-1 {
			spans := activationSpans(res, full.Sampling)
			if len(spans) == 0 {
				return ops.Output{PTS: res.PTS}
			}
			within = spanPredicate(spans)
		}
	}
	return out
}
