package query

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/codec"
	"repro/internal/format"
	"repro/internal/retrieve"
)

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	pool := NewPool(workers)
	if pool.Workers() != workers {
		t.Fatalf("Workers() = %d", pool.Workers())
	}
	var running, peak, total int32
	var mu sync.Mutex
	for i := 0; i < 20; i++ {
		pool.Go(func() {
			n := atomic.AddInt32(&running, 1)
			mu.Lock()
			if n > peak {
				peak = n
			}
			mu.Unlock()
			atomic.AddInt32(&total, 1)
			atomic.AddInt32(&running, -1)
		})
	}
	pool.Wait()
	if total != 20 {
		t.Fatalf("ran %d tasks, want 20", total)
	}
	if peak > workers {
		t.Fatalf("peak concurrency %d exceeds pool width %d", peak, workers)
	}
}

func TestPoolDefaultsToGOMAXPROCS(t *testing.T) {
	if NewPool(0).Workers() <= 0 {
		t.Fatal("zero-worker pool")
	}
	if NewPool(-3).Workers() <= 0 {
		t.Fatal("negative-worker pool")
	}
}

// TestParallelRetrievalMatchesSequential runs the same cascade with the
// sequential and parallel engines over the same store and asserts
// byte-identical results, including the order-sensitive virtual-clock
// accumulation — with and without a retrieval cache.
func TestParallelRetrievalMatchesSequential(t *testing.T) {
	store := newStore(t)
	ingestSegments(t, store, "jackson", 3)
	sfs := testSFs()
	cfLow := format.ConsumptionFormat{Fidelity: format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: 200, Sampling: s12}}
	cfHigh := format.ConsumptionFormat{Fidelity: format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: 400, Sampling: s16}}
	binding := Binding{
		{CF: cfLow, SF: sfs[1]},
		{CF: cfLow, SF: sfs[1]},
		{CF: cfHigh, SF: sfs[0]},
	}

	seq := Engine{Store: store, Workers: 1}
	ref, err := seq.Run(context.Background(), "jackson", QueryA(), binding, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Every worker count, with codec buffer pooling on and off: the
	// engine's output — including the GOP-parallel decode merge — must be
	// byte-identical to the sequential, pooling-free run.
	defer codec.SetPooling(true)
	for _, pooling := range []bool{true, false} {
		codec.SetPooling(pooling)
		for _, workers := range []int{2, 8} {
			for _, cache := range []*retrieve.Cache{nil, retrieve.NewCache(1 << 30)} {
				par := Engine{Store: store, Workers: workers, Cache: cache}
				// Two passes: the second exercises cache hits when enabled.
				for pass := 0; pass < 2; pass++ {
					got, err := par.Run(context.Background(), "jackson", QueryA(), binding, 0, 3)
					if err != nil {
						t.Fatalf("pooling=%v workers=%d cache=%v pass=%d: %v", pooling, workers, cache != nil, pass, err)
					}
					if !reflect.DeepEqual(got.Detections, ref.Detections) {
						t.Fatalf("pooling=%v workers=%d cache=%v pass=%d: detections differ", pooling, workers, cache != nil, pass)
					}
					if !reflect.DeepEqual(got.FinalPTS, ref.FinalPTS) {
						t.Fatalf("pooling=%v workers=%d cache=%v pass=%d: final PTS differ", pooling, workers, cache != nil, pass)
					}
					if cache == nil && got.VirtualSeconds != ref.VirtualSeconds {
						t.Fatalf("pooling=%v workers=%d pass=%d: virtual seconds %v != %v", pooling, workers, pass, got.VirtualSeconds, ref.VirtualSeconds)
					}
				}
				if cache != nil {
					if st := cache.Stats(); st.Hits == 0 {
						t.Fatalf("workers=%d: no cache hits on repeated run: %+v", workers, st)
					}
				}
			}
		}
	}
}
