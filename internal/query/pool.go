package query

import "repro/internal/sched"

// Pool is the bounded worker pool of the execution engine. The
// implementation lives in the leaf package sched so lower layers (the
// GOP-parallel decoder, the retriever) can schedule onto the same
// primitive; the aliases keep the engine's public surface unchanged.
type Pool = sched.Pool

// Batch groups tasks scheduled on a shared Pool; see sched.Batch.
type Batch = sched.Batch

// NewPool returns a pool running at most workers tasks concurrently;
// workers <= 0 selects runtime.GOMAXPROCS(0).
func NewPool(workers int) *Pool { return sched.NewPool(workers) }
