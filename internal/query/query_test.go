// Package query's tests double as the cross-module integration suite:
// vidsim → ingest → kvstore/segment → retrieve → ops, end to end.
package query

import (
	"context"
	"testing"

	"repro/internal/format"
	"repro/internal/ingest"
	"repro/internal/kvstore"
	"repro/internal/ops"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

var (
	s11  = format.Sampling{Num: 1, Den: 1}
	s12  = format.Sampling{Num: 1, Den: 2}
	s16  = format.Sampling{Num: 1, Den: 6}
	s130 = format.Sampling{Num: 1, Den: 30}
)

func fullFid() format.Fidelity { return format.MaxFidelity() }

func newStore(t *testing.T) *segment.Store {
	t.Helper()
	kv, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kv.Close() })
	return segment.NewStore(kv)
}

// testSFs is a small hand-written configuration: a golden-like rich format
// and a raw low-fidelity one.
func testSFs() []format.StorageFormat {
	return []format.StorageFormat{
		{Fidelity: fullFid(), Coding: format.Coding{Speed: format.SpeedFast, KeyframeI: 50}},
		{
			Fidelity: format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: 200, Sampling: s11},
			Coding:   format.RawCoding,
		},
	}
}

func ingestSegments(t *testing.T, store *segment.Store, scene string, n int) vidsim.Scene {
	t.Helper()
	sc, err := vidsim.DatasetByName(scene)
	if err != nil {
		t.Fatal(err)
	}
	ing := ingest.Ingester{Store: store, SFs: testSFs()}
	st, err := ing.Stream(sc, scene, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != n {
		t.Fatalf("ingested %d segments, want %d", st.Segments, n)
	}
	if st.CPUSecPerVideoSec() <= 0 {
		t.Fatal("no ingest CPU accounted")
	}
	return sc
}

func TestQueryAEndToEnd(t *testing.T) {
	store := newStore(t)
	ingestSegments(t, store, "jackson", 2)
	sfs := testSFs()
	binding := Binding{
		{CF: format.ConsumptionFormat{Fidelity: format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: 200, Sampling: s12}}, SF: sfs[1]},
		{CF: format.ConsumptionFormat{Fidelity: format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: 200, Sampling: s12}}, SF: sfs[1]},
		{CF: format.ConsumptionFormat{Fidelity: format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: 400, Sampling: s16}}, SF: sfs[0]},
	}
	eng := Engine{Store: store}
	res, err := eng.Run(context.Background(), "jackson", QueryA(), binding, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.VideoSeconds != 16 {
		t.Fatalf("video seconds = %v", res.VideoSeconds)
	}
	if res.Speed() <= 1 {
		t.Fatalf("query speed %.1fx not above realtime", res.Speed())
	}
	if len(res.StageStats) != 3 {
		t.Fatalf("stage stats: %d", len(res.StageStats))
	}
	// The cascade must narrow work: NN consumes fewer frames than Diff.
	if res.StageStats[2].FramesConsumed >= res.StageStats[0].FramesConsumed {
		t.Fatalf("cascade did not filter: NN consumed %d, Diff %d",
			res.StageStats[2].FramesConsumed, res.StageStats[0].FramesConsumed)
	}
	// jackson has steady traffic: the final stage should find cars.
	if len(res.Detections) == 0 {
		t.Fatal("query A found no cars in 16s of jackson")
	}
}

func TestQueryBEndToEnd(t *testing.T) {
	store := newStore(t)
	ingestSegments(t, store, "dashcam", 2)
	sfs := testSFs()
	cf := func(res format.Resolution, s format.Sampling) format.ConsumptionFormat {
		return format.ConsumptionFormat{Fidelity: format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: res, Sampling: s}}
	}
	binding := Binding{
		{CF: cf(180, s130), SF: sfs[1]},
		{CF: cf(720, s12), SF: sfs[0]},
		{CF: cf(720, s12), SF: sfs[0]},
	}
	eng := Engine{Store: store}
	res, err := eng.Run(context.Background(), "dashcam", QueryB(), binding, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speed() <= 0 {
		t.Fatalf("speed %v", res.Speed())
	}
	for _, d := range res.Detections {
		if len(d.Label) != vidsim.PlateDigits {
			t.Fatalf("OCR output %q is not a plate string", d.Label)
		}
	}
}

func TestBindingMismatch(t *testing.T) {
	store := newStore(t)
	eng := Engine{Store: store}
	if _, err := eng.Run(context.Background(), "x", QueryA(), Binding{}, 0, 1); err == nil {
		t.Fatal("mismatched binding accepted")
	}
}

func TestR1ViolationSurfaces(t *testing.T) {
	store := newStore(t)
	ingestSegments(t, store, "jackson", 1)
	sfs := testSFs()
	// Demand richer fidelity than the raw 200p format stores.
	binding := Binding{
		{CF: format.ConsumptionFormat{Fidelity: fullFid()}, SF: sfs[1]},
		{CF: format.ConsumptionFormat{Fidelity: fullFid()}, SF: sfs[0]},
		{CF: format.ConsumptionFormat{Fidelity: fullFid()}, SF: sfs[0]},
	}
	eng := Engine{Store: store}
	if _, err := eng.Run(context.Background(), "jackson", QueryA(), binding, 0, 1); err == nil {
		t.Fatal("R1 violation not detected")
	}
}

// TestLowerFidelityFasterQuery is Figure 11(a)'s essence: cheaper formats
// accelerate the same query.
func TestLowerFidelityFasterQuery(t *testing.T) {
	store := newStore(t)
	ingestSegments(t, store, "jackson", 2)
	sfs := testSFs()
	rich := Binding{
		{CF: format.ConsumptionFormat{Fidelity: fullFid()}, SF: sfs[0]},
		{CF: format.ConsumptionFormat{Fidelity: fullFid()}, SF: sfs[0]},
		{CF: format.ConsumptionFormat{Fidelity: fullFid()}, SF: sfs[0]},
	}
	cheapFid := format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: 200, Sampling: s130}
	cheap := Binding{
		{CF: format.ConsumptionFormat{Fidelity: cheapFid}, SF: sfs[1]},
		{CF: format.ConsumptionFormat{Fidelity: cheapFid}, SF: sfs[1]},
		{CF: format.ConsumptionFormat{Fidelity: cheapFid}, SF: sfs[1]},
	}
	eng := Engine{Store: store}
	r1, err := eng.Run(context.Background(), "jackson", QueryA(), rich, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Run(context.Background(), "jackson", QueryA(), cheap, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Speed() <= r1.Speed() {
		t.Fatalf("cheap binding %.0fx not faster than rich %.0fx", r2.Speed(), r1.Speed())
	}
}

func TestGroundTruthCascade(t *testing.T) {
	sc, _ := vidsim.DatasetByName("jackson")
	out := GroundTruth(sc, QueryA(), 0, 1)
	if len(out.PTS) == 0 {
		t.Fatal("ground truth consumed nothing")
	}
	for _, d := range out.Detections {
		if d.Label != "car" && d.Label != "person" {
			t.Fatalf("unexpected final-stage label %q", d.Label)
		}
	}
}

func TestActivationSpans(t *testing.T) {
	out := ops.Output{Detections: []ops.Detection{
		{PTS: 10}, {PTS: 12}, {PTS: 100},
	}}
	spans := activationSpans(out, s16)
	if len(spans) != 2 {
		t.Fatalf("spans = %v, want 2 merged spans", spans)
	}
	pred := spanPredicate(spans)
	for _, pts := range []int{10, 12, 15, 100} {
		if !pred(pts) {
			t.Errorf("pts %d not within spans", pts)
		}
	}
	if pred(60) {
		t.Error("pts 60 should be outside spans")
	}
}
