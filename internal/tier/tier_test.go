package tier

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/kvstore"
)

func openTest(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetAcrossTiers(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 4})
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d", s.Shards())
	}
	if err := s.Put("hot/a", []byte("fast bytes")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTier(Cold, "archive/a", []byte("cold bytes")); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]string{"hot/a": "fast bytes", "archive/a": "cold bytes"} {
		got, err := s.Get(key)
		if err != nil {
			t.Fatalf("Get(%q): %v", key, err)
		}
		if string(got) != want {
			t.Fatalf("Get(%q) = %q, want %q", key, got, want)
		}
		if !s.Has(key) {
			t.Fatalf("Has(%q) = false", key)
		}
	}
	if tid, ok := s.TierOf("hot/a"); !ok || tid != Fast {
		t.Fatalf("TierOf(hot/a) = %v, %v", tid, ok)
	}
	if tid, ok := s.TierOf("archive/a"); !ok || tid != Cold {
		t.Fatalf("TierOf(archive/a) = %v, %v", tid, ok)
	}
	if _, ok := s.TierOf("missing"); ok {
		t.Fatal("TierOf(missing) reported present")
	}
	if _, err := s.Get("missing"); err != kvstore.ErrNotFound {
		t.Fatalf("Get(missing) = %v", err)
	}
	if err := s.Delete("hot/a"); err != nil {
		t.Fatal(err)
	}
	if s.Has("hot/a") {
		t.Fatal("deleted key still present")
	}
}

// TestPutTierMovesKey: re-placing a key on the other tier must not leave
// a stale replica behind.
func TestPutTierMovesKey(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 2})
	if err := s.PutTier(Fast, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutTier(Cold, "k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if tid, _ := s.TierOf("k"); tid != Cold {
		t.Fatalf("TierOf after cold re-place = %v", tid)
	}
	if got, _ := s.Get("k"); string(got) != "v2" {
		t.Fatalf("Get = %q", got)
	}
	if keys := s.Keys(""); len(keys) != 1 {
		t.Fatalf("Keys = %v, want exactly one", keys)
	}
	if err := s.PutTier(Fast, "k", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if tid, _ := s.TierOf("k"); tid != Fast {
		t.Fatalf("TierOf after fast re-place = %v", tid)
	}
	if got, _ := s.Get("k"); string(got) != "v3" {
		t.Fatalf("Get = %q", got)
	}
}

// TestKeysMergeSortedAcrossShardsAndTiers: enumeration is sorted,
// deduplicated, and identical whatever the shard count.
func TestKeysMergeSortedAcrossShardsAndTiers(t *testing.T) {
	var want []string
	for i := 0; i < 40; i++ {
		want = append(want, fmt.Sprintf("seg/cam/%08d", i))
	}
	sort.Strings(want)
	for _, shards := range []int{1, 4, 16} {
		s := openTest(t, t.TempDir(), Options{Shards: shards})
		for i, k := range want {
			tid := Fast
			if i%3 == 0 {
				tid = Cold
			}
			if err := s.PutTier(tid, k, []byte(k)); err != nil {
				t.Fatal(err)
			}
		}
		if got := s.Keys("seg/"); !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: Keys = %d entries, want %d sorted", shards, len(got), len(want))
		}
		var scanned []string
		if err := s.Scan("seg/", func(k string, v []byte) bool {
			if string(v) != k {
				t.Fatalf("Scan value mismatch for %q", k)
			}
			scanned = append(scanned, k)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(scanned, want) {
			t.Fatalf("shards=%d: Scan order differs from sorted keys", shards)
		}
	}
}

func TestRouteCoLocatesTokens(t *testing.T) {
	route := func(key string) string { return key[:1] } // first byte routes
	s := openTest(t, t.TempDir(), Options{Shards: 8, Route: route})
	for i := 0; i < 16; i++ {
		if err := s.Put(fmt.Sprintf("a/%02d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// All "a"-routed keys share one shard: exactly one fast shard is
	// non-empty.
	nonEmpty := 0
	for _, kv := range s.fast {
		if kv.Len() > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("co-routed keys landed on %d shards", nonEmpty)
	}
}

func TestDemoteMovesBytesAndPreservesContent(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 4})
	var keys []string
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("seg/cam/%08d", i)
		keys = append(keys, k)
		if err := s.Put(k, bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.TierBytes(Cold); got != 0 {
		t.Fatalf("cold bytes before demotion = %d", got)
	}
	fastBefore := s.TierBytes(Fast)
	if err := s.Demote(keys[:5]); err != nil {
		t.Fatal(err)
	}
	// Demoting again (and demoting a missing key) is a no-op.
	if err := s.Demote(append([]string{"missing"}, keys[:5]...)); err != nil {
		t.Fatal(err)
	}
	if got := s.TierBytes(Fast); got != fastBefore/2 {
		t.Fatalf("fast bytes after demotion = %d, want %d", got, fastBefore/2)
	}
	if got := s.TierBytes(Cold); got != fastBefore/2 {
		t.Fatalf("cold bytes after demotion = %d, want %d", got, fastBefore/2)
	}
	for i, k := range keys {
		v, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get(%q) after demotion: %v", k, err)
		}
		if !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 100)) {
			t.Fatalf("demoted key %q changed bytes", k)
		}
	}
	st := s.Stats()
	if st.FastKeys != 5 || st.ColdKeys != 5 || st.Shards != 4 {
		t.Fatalf("stats after demotion = %+v", st)
	}
	if st.Keys != 10 || st.LiveBytes != st.FastLiveBytes+st.ColdLiveBytes {
		t.Fatalf("aggregate stats inconsistent: %+v", st)
	}
}

// TestCrashRecoveryMidDemotion simulates a crash in the window the
// two-phase migration leaves open — every cold copy written, no fast
// delete applied — plus a half-copied tail, and asserts Open settles
// every key into exactly one tier with its bytes intact.
func TestCrashRecoveryMidDemotion(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][]byte{}
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("seg/cam/%08d", i)
		vals[k] = bytes.Repeat([]byte{byte('A' + i)}, 64)
		if err := s.Put(k, vals[k]); err != nil {
			t.Fatal(err)
		}
	}
	// Crash simulation: write cold copies directly (the copy phase) for
	// half the keys and never delete the fast originals.
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("seg/cam/%08d", i)
		if err := s.cold[s.shardOf(k)].Put(k, vals[k]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Shards() != 4 {
		t.Fatalf("reopened shards = %d, want 4 from disk layout", re.Shards())
	}
	keys := re.Keys("")
	if len(keys) != len(vals) {
		t.Fatalf("reopened store has %d keys, want %d (no loss, no duplicates)", len(keys), len(vals))
	}
	for k, want := range vals {
		got, err := re.Get(k)
		if err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("key %q bytes changed across crash recovery", k)
		}
		// Exactly one tier holds each key: recovery completed the
		// interrupted migrations (cold wins) and left the rest fast.
		i := re.shardOf(k)
		inFast, inCold := re.fast[i].Has(k), re.cold[i].Has(k)
		if inFast == inCold {
			t.Fatalf("key %q live in fast=%v cold=%v", k, inFast, inCold)
		}
	}
	st := re.Stats()
	if st.FastKeys != 4 || st.ColdKeys != 4 {
		t.Fatalf("recovered tier split = %+v", st)
	}
}

// TestCrashRecoveryReplacedKeyKeepsFast covers the inverse interruption:
// PutTier(Fast) over a cold key writes the new fast value first and
// deletes the stale cold copy second, so a crash between the two leaves
// DIFFERENT bytes in the tiers. Recovery must keep the newer fast write
// and drop the stale cold copy — never resurrect old data.
func TestCrashRecoveryReplacedKeyKeepsFast(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutTier(Cold, "k", []byte("stale cold value")); err != nil {
		t.Fatal(err)
	}
	// Crash simulation: the fast write of a re-place landed, the cold
	// delete did not.
	if err := s.fast[s.shardOf("k")].Put("k", []byte("fresh fast value")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got, err := re.Get("k")
	if err != nil || string(got) != "fresh fast value" {
		t.Fatalf("recovery served %q, %v; want the fresh fast value", got, err)
	}
	if tid, ok := re.TierOf("k"); !ok || tid != Fast {
		t.Fatalf("TierOf after recovery = %v, %v", tid, ok)
	}
	if st := re.Stats(); st.FastKeys != 1 || st.ColdKeys != 0 {
		t.Fatalf("stale cold copy survived recovery: %+v", st)
	}
}

// TestLegacyMigration: a pre-tiering store (logs directly in the
// directory) is adopted as fast shard 0 and reads back byte-identically.
func TestLegacyMigration(t *testing.T) {
	dir := t.TempDir()
	kv, err := kvstore.Open(dir, kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put("seg/cam/00000000", []byte("legacy")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	s := openTest(t, dir, Options{Shards: 8})
	if s.Shards() != 1 {
		t.Fatalf("legacy store adopted with %d shards, want 1", s.Shards())
	}
	got, err := s.Get("seg/cam/00000000")
	if err != nil || string(got) != "legacy" {
		t.Fatalf("legacy read = %q, %v", got, err)
	}
	if entries, _ := filepath.Glob(filepath.Join(dir, "*.log")); len(entries) != 0 {
		t.Fatalf("legacy logs left behind: %v", entries)
	}
}

func TestCompactShardsParallel(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 4})
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("k/%04d", i)
		if err := s.Put(k, bytes.Repeat([]byte{1}, 256)); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := s.Delete(k); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Demote(s.Keys("k/")[:4]); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.GarbageBytes == 0 {
		t.Fatal("no garbage to compact")
	}
	before := s.Keys("")
	if err := s.CompactShards(&waitGroupBatcher{}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.GarbageBytes != 0 {
		t.Fatalf("garbage after compaction: %+v", st)
	}
	if after := s.Keys(""); !reflect.DeepEqual(before, after) {
		t.Fatal("compaction changed the key set")
	}
	if disk, err := s.DiskBytes(); err != nil || disk <= 0 {
		t.Fatalf("DiskBytes = %d, %v", disk, err)
	}
	// Sequential compaction path (nil batcher) also works.
	if err := s.CompactShards(nil); err != nil {
		t.Fatal(err)
	}
}

// waitGroupBatcher runs everything concurrently — the widest legal
// Batcher — so parallel per-shard compaction races are visible to -race.
type waitGroupBatcher struct{ wg sync.WaitGroup }

func (b *waitGroupBatcher) Go(fn func()) {
	b.wg.Add(1)
	go func() { defer b.wg.Done(); fn() }()
}

func (b *waitGroupBatcher) Wait() { b.wg.Wait() }

// TestConcurrentAccessAcrossShards: puts, demotions, reads and scans on
// distinct shards proceed concurrently without data races.
func TestConcurrentAccessAcrossShards(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				k := fmt.Sprintf("w%d/%04d", w, i)
				if err := s.Put(k, []byte(k)); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if err := s.Demote([]string{k}); err != nil {
						t.Error(err)
						return
					}
				}
				if _, err := s.Get(k); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			s.Keys("")
			s.Stats()
			s.TierBytes(Fast)
		}
	}()
	wg.Wait()
	<-done
	if got := len(s.Keys("")); got != 160 {
		t.Fatalf("lost keys under concurrency: %d", got)
	}
}

func TestShardMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	// A cold tier wider than fast is structurally impossible for this
	// engine; refuse to guess.
	if err := os.MkdirAll(filepath.Join(dir, "fast", "000"), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"000", "001"} {
		if err := os.MkdirAll(filepath.Join(dir, "cold", d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("mismatched tier layout accepted")
	}
}

// TestLegacyBesideTieredRejected: loose legacy logs next to an existing
// tiered layout would collide with shard 0's numbered logs on migration;
// Open must refuse rather than clobber.
func TestLegacyBesideTieredRejected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "000001.log"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("mixed legacy/tiered layout accepted")
	}
}
