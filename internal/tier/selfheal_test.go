package tier

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/fault"
	"repro/internal/kvstore"
)

func installFaults(t *testing.T, seed uint64, spec string) {
	t.Helper()
	rules, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	fault.Install(fault.New(seed, rules))
	t.Cleanup(func() { fault.Install(nil) })
}

// TestCorruptFastFallsThroughToCold: a damaged fast replica must not
// take the key down when a cold copy exists — the read degrades, it
// does not fail.
func TestCorruptFastFallsThroughToCold(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 2})
	val := bytes.Repeat([]byte{0x42}, 300)
	if err := s.PutTier(Cold, "seg/cam/sf1/00000000", val); err != nil {
		t.Fatal(err)
	}
	// A second, richer copy placed fast — then damaged on disk.
	if err := s.PutTier(Fast, "seg/cam/sf1/00000000", val); err != nil {
		t.Fatal(err)
	}
	// PutTier(Fast) deletes the cold copy; rebuild the two-copy state
	// directly on the shards to model a replica pair.
	i := s.shardOf("seg/cam/sf1/00000000")
	if err := s.cold[i].Put("seg/cam/sf1/00000000", val); err != nil {
		t.Fatal(err)
	}
	if err := s.fast[i].DamageValue("seg/cam/sf1/00000000"); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("seg/cam/sf1/00000000")
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("Get through corrupt fast = %v (len %d), want cold bytes", err, len(got))
	}
	if s.Stats().CorruptReads == 0 {
		t.Fatal("corrupt fast read not counted")
	}
}

// TestCorruptOnlyCopySurfacesOriginalError: when the only replica is
// damaged, the caller sees ErrCorrupt (data exists but is damaged), not
// ErrNotFound (data was never there) — the repair layer keys off the
// difference.
func TestCorruptOnlyCopySurfacesOriginalError(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 2})
	if err := s.PutTier(Fast, "k", []byte("only-copy")); err != nil {
		t.Fatal(err)
	}
	if err := s.DamageValue("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.Is(err, kvstore.ErrCorrupt) {
		t.Fatalf("Get = %v, want ErrCorrupt", err)
	}
	if _, err := s.Get("absent"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("Get(absent) = %v, want ErrNotFound", err)
	}
}

// TestFastShardOutageServesFromCold: an injected whole-tier read outage
// on fast shards must leave cold-resident keys fully readable — the
// availability property the vload fault-probe asserts end to end.
func TestFastShardOutageServesFromCold(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 2})
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("seg/cam/sf0/%08d", i)
		if err := s.PutTier(Cold, k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	installFaults(t, 1, "read@fast/=err")
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("seg/cam/sf0/%08d", i)
		v, err := s.Get(k)
		if err != nil || string(v) != k {
			t.Fatalf("Get(%s) during fast outage = %q, %v", k, v, err)
		}
	}
}

func TestVerifyAllLocatesDamage(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 2})
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("key-%d", i)
		tier := Fast
		if i%2 == 0 {
			tier = Cold
		}
		if err := s.PutTier(tier, k, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	bad, err := s.VerifyAll()
	if err != nil || len(bad) != 0 {
		t.Fatalf("clean store: %v %v", bad, err)
	}
	if err := s.DamageValue("key-3"); err != nil { // fast
		t.Fatal(err)
	}
	if err := s.DamageValue("key-4"); err != nil { // cold
		t.Fatal(err)
	}
	bad, err = s.VerifyAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 2 || bad[0].Key != "key-3" || bad[1].Key != "key-4" {
		t.Fatalf("VerifyAll = %+v, want key-3 and key-4", bad)
	}
	if bad[0].Tier != Fast || bad[1].Tier != Cold {
		t.Fatalf("tiers = %v/%v, want fast/cold", bad[0].Tier, bad[1].Tier)
	}
}

// TestRecoverySettlesCorruptDuplicates: a key live in both tiers (crash
// mid-demotion) where one copy is damaged must settle keeping the intact
// copy — and must not make the store unopenable.
func TestRecoverySettlesCorruptDuplicates(t *testing.T) {
	for _, damage := range []ID{Fast, Cold} {
		t.Run(damage.String(), func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir, Options{Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			val := bytes.Repeat([]byte{0x11}, 128)
			// Duplicate by writing the shards directly (PutTier would
			// delete the other copy).
			if err := s.fast[0].Put("dup", val); err != nil {
				t.Fatal(err)
			}
			if err := s.cold[0].Put("dup", val); err != nil {
				t.Fatal(err)
			}
			if err := s.tier(damage)[0].DamageValue("dup"); err != nil {
				t.Fatal(err)
			}
			s.Close()

			s2, err := Open(dir, Options{Shards: 1})
			if err != nil {
				t.Fatalf("reopen with corrupt duplicate: %v", err)
			}
			defer s2.Close()
			got, err := s2.Get("dup")
			if err != nil || !bytes.Equal(got, val) {
				t.Fatalf("Get after settle = %v, want intact copy", err)
			}
			// Exactly one copy survived — the intact one.
			intact := Fast
			if damage == Fast {
				intact = Cold
			}
			if s2.tier(damage)[0].Has("dup") {
				t.Fatalf("damaged %s copy survived the settle", damage)
			}
			if !s2.tier(intact)[0].Has("dup") {
				t.Fatalf("intact %s copy was deleted", intact)
			}
		})
	}
}

func TestTierDamageValueMissing(t *testing.T) {
	s := openTest(t, t.TempDir(), Options{Shards: 1})
	if err := s.DamageValue("nope"); !errors.Is(err, kvstore.ErrNotFound) {
		t.Fatalf("DamageValue(missing) = %v", err)
	}
}
