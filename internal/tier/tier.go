// Package tier is the tiered, sharded storage engine underneath the
// segment store: it composes N kvstore shards across a fast tier
// (retrieval-hot formats, §4.1's fast media) and a cold tier (cheap
// archival media), so VStore's two-disk placement is expressed in the
// storage layout instead of funnelling every byte through one
// globally-locked log. Each shard is an independent kvstore with its own
// directory and lock; keys are routed to shards by a caller-supplied
// routing token (the segment layer routes by stream+segment), so
// Put/Get/Scan/Compact on different shards never contend.
//
// Reads are tier-transparent: Get consults the fast tier first and falls
// through to cold, so a segment serves byte-identical results wherever it
// lives. Demotion (fast→cold migration, driven by age and the fast-tier
// byte budget) is copy-then-delete: the cold copy is written completely
// before any fast record is removed, and Open heals a crash between the
// two phases by deleting fast records whose cold copy is already durable —
// every key ends up live in exactly one tier, with no loss and no
// duplicates.
package tier

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/kvstore"
)

// ID names a storage tier.
type ID int

// The two tiers: fast media for retrieval-hot formats, cold media for
// cheap archival.
const (
	Fast ID = iota
	Cold
)

// String returns the tier's directory name.
func (t ID) String() string {
	if t == Cold {
		return "cold"
	}
	return "fast"
}

// DefaultShards is the shard count for a freshly created store when the
// options do not specify one.
const DefaultShards = 4

// Options configures a tiered store.
type Options struct {
	// Shards is the number of kvstore shards per tier when creating a
	// fresh store; zero selects DefaultShards. An existing store's shard
	// count is discovered from disk and wins over this value: sharding is
	// a creation-time property of the layout.
	Shards int
	// Route maps a key to its routing token; keys with equal tokens land
	// on the same shard. Nil routes by the whole key.
	Route func(key string) string
	// KV configures every underlying shard.
	KV kvstore.Options
}

// Batcher schedules functions concurrently and waits for them — the
// subset of the query pool's Batch that per-shard parallel compaction
// needs, kept as an interface so this package does not import the query
// engine.
type Batcher interface {
	Go(fn func())
	Wait()
}

// Store is a tiered, sharded key-value store. All methods are safe for
// concurrent use; cross-shard and cross-tier locking is per-shard (each
// shard is an independent kvstore), so operations on different shards
// proceed concurrently.
type Store struct {
	dir    string
	opts   Options
	shards int
	fast   []*kvstore.Store
	cold   []*kvstore.Store
}

// Open opens (creating if necessary) a tiered store under dir. A legacy
// single-store layout (log files directly in dir) is migrated into fast
// shard 0. Interrupted migrations — keys live in both tiers after a
// crash between a two-phase operation's write and delete — are settled
// by recoverDemotions: identical copies complete the demotion (fast
// duplicate deleted), differing copies keep the newer fast write.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tier: %w", err)
	}
	if err := migrateLegacy(dir); err != nil {
		return nil, err
	}
	shards, err := discoverShards(dir)
	if err != nil {
		return nil, err
	}
	if shards == 0 {
		shards = opts.Shards
		if shards <= 0 {
			shards = DefaultShards
		}
	}
	s := &Store{dir: dir, opts: opts, shards: shards}
	for i := 0; i < shards; i++ {
		kvOpts := opts.KV
		kvOpts.FaultScope = fmt.Sprintf("%s/%03d", Fast, i)
		f, err := kvstore.Open(s.shardDir(Fast, i), kvOpts)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.fast = append(s.fast, f)
		kvOpts.FaultScope = fmt.Sprintf("%s/%03d", Cold, i)
		c, err := kvstore.Open(s.shardDir(Cold, i), kvOpts)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.cold = append(s.cold, c)
	}
	if err := s.recoverDemotions(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

func (s *Store) shardDir(t ID, i int) string {
	return filepath.Join(s.dir, t.String(), fmt.Sprintf("%03d", i))
}

// migrateLegacy adopts a pre-tiering single-store layout (numbered logs
// directly in dir) as fast shard 0 of a 1-shard store.
func migrateLegacy(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("tier: %w", err)
	}
	var logs []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".log") {
			logs = append(logs, e.Name())
		}
	}
	if len(logs) == 0 {
		return nil
	}
	dst := filepath.Join(dir, Fast.String(), "000")
	if _, err := os.Stat(dst); err == nil {
		// Loose legacy logs beside an existing tiered layout: renaming
		// would collide with (and clobber) the shard's numbered logs.
		return fmt.Errorf("tier: %s holds both legacy logs and a tiered layout; refusing to merge", dir)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		return fmt.Errorf("tier: %w", err)
	}
	for _, name := range logs {
		if err := os.Rename(filepath.Join(dir, name), filepath.Join(dst, name)); err != nil {
			return fmt.Errorf("tier: migrating legacy log %s: %w", name, err)
		}
	}
	return nil
}

// discoverShards counts the shard directories of an existing store, and
// verifies the fast and cold tiers agree (a cold tier shorter than fast —
// a store that never demoted under an older layout — is padded by Open
// creating the missing shard directories).
func discoverShards(dir string) (int, error) {
	count := func(t ID) (int, error) {
		entries, err := os.ReadDir(filepath.Join(dir, t.String()))
		if os.IsNotExist(err) {
			return 0, nil
		}
		if err != nil {
			return 0, fmt.Errorf("tier: %w", err)
		}
		n := 0
		for _, e := range entries {
			if e.IsDir() {
				n++
			}
		}
		return n, nil
	}
	nf, err := count(Fast)
	if err != nil {
		return 0, err
	}
	nc, err := count(Cold)
	if err != nil {
		return 0, err
	}
	if nf == 0 && nc == 0 {
		return 0, nil
	}
	if nc > nf {
		return 0, fmt.Errorf("tier: cold tier has %d shards, fast has %d", nc, nf)
	}
	return nf, nil
}

// recoverDemotions settles keys left live in both tiers by an
// interrupted migration. Two operations can leave that state, told apart
// by the bytes: a demotion crash leaves identical copies (the cold copy
// wins — deleting the fast duplicate completes the migration, and the
// bytes are equal either way), while a PutTier(Fast) over a cold key
// crashed before its cold delete leaves a NEWER fast value — there the
// stale cold copy is dropped, never the fresh write.
func (s *Store) recoverDemotions() error {
	for i := range s.fast {
		for _, k := range s.fast[i].Keys("") {
			cv, cerr := s.cold[i].Get(k)
			if errors.Is(cerr, kvstore.ErrNotFound) {
				continue
			}
			if cerr != nil && !errors.Is(cerr, kvstore.ErrCorrupt) {
				return fmt.Errorf("tier: recovering demotion of %q: %w", k, cerr)
			}
			fv, ferr := s.fast[i].Get(k)
			if ferr != nil && !errors.Is(ferr, kvstore.ErrCorrupt) {
				return fmt.Errorf("tier: recovering demotion of %q: %w", k, ferr)
			}
			// A corrupt copy never wins the settle: keep the intact one
			// (damage on both sides keeps cold — either choice serves
			// ErrCorrupt until repair re-derives the replica, and cold is
			// where a completed demotion would have left the key).
			victim := s.fast[i]
			switch {
			case cerr != nil && ferr == nil:
				victim = s.cold[i]
			case cerr == nil && ferr != nil:
				// victim stays fast
			case cerr == nil && ferr == nil && !bytes.Equal(fv, cv):
				victim = s.cold[i]
			}
			if err := victim.Delete(k); err != nil {
				return fmt.Errorf("tier: recovering demotion of %q: %w", k, err)
			}
		}
	}
	return nil
}

// Shards returns the per-tier shard count.
func (s *Store) Shards() int { return s.shards }

func (s *Store) shardOf(key string) int {
	token := key
	if s.opts.Route != nil {
		token = s.opts.Route(key)
	}
	h := fnv.New32a()
	h.Write([]byte(token))
	return int(h.Sum32() % uint32(s.shards))
}

func (s *Store) tier(t ID) []*kvstore.Store {
	if t == Cold {
		return s.cold
	}
	return s.fast
}

// Put stores value under key in the fast tier (the default for
// placement-less writers, e.g. server metadata).
func (s *Store) Put(key string, value []byte) error {
	return s.PutTier(Fast, key, value)
}

// PutTier stores value under key in the given tier — how
// derivation-driven placement lands each storage format on its medium.
// The other tier's copy, if any, is removed so the key stays live in
// exactly one tier; the new value is fsynced first, so a crash between
// the write and the cross-tier delete can never leave the key torn in
// one tier and tombstoned in the other (recovery then keeps the newer
// write — see recoverDemotions).
func (s *Store) PutTier(t ID, key string, value []byte) error {
	i := s.shardOf(key)
	if err := s.tier(t)[i].Put(key, value); err != nil {
		return err
	}
	other := Fast
	if t == Fast {
		other = Cold
	}
	if s.tier(other)[i].Has(key) {
		if err := s.tier(t)[i].Sync(); err != nil {
			return err
		}
		return s.tier(other)[i].Delete(key)
	}
	return nil
}

// Get returns the value stored under key, reading through fast→cold: the
// fast tier is consulted first, and a demoted key serves byte-identically
// from cold. A fast read that fails for any reason — a corrupt record, a
// failing device — is treated as a miss and falls through to the cold
// replica, so one damaged tier degrades a stream instead of taking it
// down. If the cold tier has no copy either, the original fast error is
// returned (it carries the real diagnosis: the data exists but is
// damaged, not absent).
func (s *Store) Get(key string) ([]byte, error) {
	i := s.shardOf(key)
	v, err := s.fast[i].Get(key)
	if err == nil {
		return v, nil
	}
	cv, cerr := s.cold[i].Get(key)
	if cerr == nil {
		return cv, nil
	}
	if errors.Is(err, kvstore.ErrNotFound) {
		return nil, cerr
	}
	return nil, err
}

// Has reports whether key is present in either tier.
func (s *Store) Has(key string) bool {
	i := s.shardOf(key)
	return s.fast[i].Has(key) || s.cold[i].Has(key)
}

// TierOf returns the tier holding key. A key mid-demotion (live in both
// tiers) reports Fast, matching what Get serves.
func (s *Store) TierOf(key string) (ID, bool) {
	i := s.shardOf(key)
	if s.fast[i].Has(key) {
		return Fast, true
	}
	if s.cold[i].Has(key) {
		return Cold, true
	}
	return Fast, false
}

// Delete removes key from both tiers. Deleting a missing key is a no-op.
func (s *Store) Delete(key string) error {
	i := s.shardOf(key)
	if err := s.fast[i].Delete(key); err != nil {
		return err
	}
	return s.cold[i].Delete(key)
}

// Keys returns all live keys with the given prefix across every shard of
// both tiers, sorted and deduplicated (a key mid-demotion appears once).
func (s *Store) Keys(prefix string) []string {
	var out []string
	for i := 0; i < s.shards; i++ {
		out = append(out, s.fast[i].Keys(prefix)...)
		out = append(out, s.cold[i].Keys(prefix)...)
	}
	sort.Strings(out)
	dedup := out[:0]
	for i, k := range out {
		if i > 0 && out[i-1] == k {
			continue
		}
		dedup = append(dedup, k)
	}
	return dedup
}

// Scan calls fn for every live key with the given prefix in sorted key
// order, reading each value through the tiers. Scanning stops early if fn
// returns false.
func (s *Store) Scan(prefix string, fn func(key string, value []byte) bool) error {
	for _, k := range s.Keys(prefix) {
		v, err := s.Get(k)
		if errors.Is(err, kvstore.ErrNotFound) {
			continue // deleted between listing and read
		}
		if err != nil {
			return err
		}
		if !fn(k, v) {
			return nil
		}
	}
	return nil
}

// Demote migrates the given keys fast→cold with crash-safe two-phase
// copy-then-delete: every cold copy is written and fsynced before any
// fast record is deleted, in the given key order for both phases. Keys
// already cold or absent are skipped. A crash between the phases leaves
// keys live in both tiers; Open completes the migration. Callers must
// not PutTier the same keys concurrently (the owner — the server —
// serialises demotion against writers).
func (s *Store) Demote(keys []string) error {
	copied := make([]int, 0, len(keys)) // shard of each key needing deletion
	live := make([]string, 0, len(keys))
	synced := make(map[int]bool)
	for _, k := range keys {
		i := s.shardOf(k)
		v, err := s.fast[i].Get(k)
		if errors.Is(err, kvstore.ErrNotFound) {
			continue
		}
		if err != nil {
			return err
		}
		if err := s.cold[i].Put(k, v); err != nil {
			return err
		}
		copied = append(copied, i)
		live = append(live, k)
		synced[i] = false
	}
	// Durability barrier: the cold copies must survive a power cut
	// before the first fast delete hits a log, or the replay could apply
	// a surviving tombstone against a torn (vanished) cold copy and lose
	// the key in both tiers.
	for i := range synced {
		if err := s.cold[i].Sync(); err != nil {
			return err
		}
	}
	for n, k := range live {
		if err := s.fast[copied[n]].Delete(k); err != nil {
			return err
		}
	}
	return nil
}

// TierBytes returns the tier's live value bytes across all shards — the
// quantity the fast-tier budget bounds.
func (s *Store) TierBytes(t ID) int64 {
	var total int64
	for _, kv := range s.tier(t) {
		total += kv.Stats().LiveBytes
	}
	return total
}

// TierStats returns the tier's aggregated occupancy counters.
func (s *Store) TierStats(t ID) kvstore.Stats {
	var out kvstore.Stats
	for _, kv := range s.tier(t) {
		st := kv.Stats()
		out.Keys += st.Keys
		out.LiveBytes += st.LiveBytes
		out.GarbageBytes += st.GarbageBytes
		out.Files += st.Files
		out.CorruptReads += st.CorruptReads
		out.TransientReads += st.TransientReads
	}
	return out
}

// Stats returns occupancy counters aggregated over both tiers, with the
// per-tier breakdown in the tier fields.
func (s *Store) Stats() kvstore.Stats {
	f, c := s.TierStats(Fast), s.TierStats(Cold)
	return kvstore.Stats{
		Keys:           f.Keys + c.Keys,
		LiveBytes:      f.LiveBytes + c.LiveBytes,
		GarbageBytes:   f.GarbageBytes + c.GarbageBytes,
		Files:          f.Files + c.Files,
		Shards:         s.shards,
		FastKeys:       f.Keys,
		ColdKeys:       c.Keys,
		FastLiveBytes:  f.LiveBytes,
		ColdLiveBytes:  c.LiveBytes,
		CorruptReads:   f.CorruptReads + c.CorruptReads,
		TransientReads: f.TransientReads + c.TransientReads,
	}
}

// Sync fsyncs every shard of both tiers — the durability barrier the
// repair layer uses after committing a re-derived replica.
func (s *Store) Sync() error {
	for i := 0; i < s.shards; i++ {
		if err := s.fast[i].Sync(); err != nil {
			return err
		}
		if err := s.cold[i].Sync(); err != nil {
			return err
		}
	}
	return nil
}

// BadKey locates one damaged key: the tier and shard it lives on, for
// per-shard health reporting.
type BadKey struct {
	Key   string
	Tier  ID
	Shard int
}

// VerifyAll runs checksum verification over every record of every shard
// in both tiers — the scrubber's walk. It returns the damaged keys in
// sorted key order; an empty slice means the whole store is intact.
func (s *Store) VerifyAll() ([]BadKey, error) {
	var out []BadKey
	for i := 0; i < s.shards; i++ {
		for _, t := range []ID{Fast, Cold} {
			bad, err := s.tier(t)[i].VerifyAll()
			if err != nil {
				return nil, fmt.Errorf("tier: verify %s/%03d: %w", t, i, err)
			}
			for _, k := range bad {
				out = append(out, BadKey{Key: k, Tier: t, Shard: i})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key < out[b].Key })
	return out, nil
}

// DamageValue flips one stored bit of key's record in whichever tier
// holds it — the on-disk bit-rot simulator behind `vstore damage` and
// the scrub smoke test. Returns kvstore.ErrNotFound for absent keys.
func (s *Store) DamageValue(key string) error {
	i := s.shardOf(key)
	if s.fast[i].Has(key) {
		return s.fast[i].DamageValue(key)
	}
	if s.cold[i].Has(key) {
		return s.cold[i].DamageValue(key)
	}
	return kvstore.ErrNotFound
}

// DiskBytes returns the total log-file size across all shards of both
// tiers.
func (s *Store) DiskBytes() (int64, error) {
	var total int64
	for i := 0; i < s.shards; i++ {
		for _, kv := range []*kvstore.Store{s.fast[i], s.cold[i]} {
			n, err := kv.DiskBytes()
			if err != nil {
				return 0, err
			}
			total += n
		}
	}
	return total, nil
}

// Compact rewrites every shard's live records sequentially. Use
// CompactShards to fan the per-shard compactions across a worker pool.
func (s *Store) Compact() error {
	return s.compact(func(fn func()) { fn() }, func() {})
}

// CompactShards compacts every shard of both tiers, scheduling the
// per-shard compactions on b — shards lock independently, so compactions
// proceed in parallel up to the batcher's width. A nil batcher compacts
// sequentially.
func (s *Store) CompactShards(b Batcher) error {
	if b == nil {
		return s.Compact()
	}
	return s.compact(b.Go, b.Wait)
}

func (s *Store) compact(schedule func(func()), wait func()) error {
	errs := make([]error, 2*s.shards)
	for i := 0; i < s.shards; i++ {
		i := i
		schedule(func() { errs[2*i] = s.fast[i].Compact() })
		schedule(func() { errs[2*i+1] = s.cold[i].Compact() })
	}
	wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close releases every shard. The store must not be used afterwards.
func (s *Store) Close() error {
	var firstErr error
	for _, kv := range append(append([]*kvstore.Store(nil), s.fast...), s.cold...) {
		if err := kv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
