package fault

import (
	"bytes"
	"errors"
	"testing"
)

// install swaps in an injector for one test and restores the disabled
// state afterwards, so tests never leak faults into each other.
func install(t *testing.T, in *Injector) {
	t.Helper()
	Install(in)
	t.Cleanup(func() { Install(nil) })
}

func TestDisabledIsNoOp(t *testing.T) {
	if Enabled() {
		t.Fatal("injector installed at test start")
	}
	buf := []byte{1, 2, 3}
	want := append([]byte(nil), buf...)
	if err := OnRead("fast/000:k", buf); err != nil || !bytes.Equal(buf, want) {
		t.Fatalf("OnRead disabled: err=%v buf=%v", err, buf)
	}
	if n, err := OnWrite("fast/000:k", 10); n != 10 || err != nil {
		t.Fatalf("OnWrite disabled: n=%d err=%v", n, err)
	}
	if err := OnSync("fast/000"); err != nil {
		t.Fatalf("OnSync disabled: %v", err)
	}
	if err := OnCompact("fast/000"); err != nil {
		t.Fatalf("OnCompact disabled: %v", err)
	}
	if Injected() != 0 {
		t.Fatalf("Injected() = %d with no injector", Injected())
	}
}

func TestReadErrAlways(t *testing.T) {
	install(t, New(7, []Rule{{Op: Read, Mode: Err, Rate: 1}}))
	err := OnRead("fast/000:seg/cam/sf0/00000000", nil)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Other ops stay clean: the rule arms reads only.
	if n, err := OnWrite("fast/000:k", 5); n != 5 || err != nil {
		t.Fatalf("write affected by read rule: n=%d err=%v", n, err)
	}
	if err := OnSync("fast/000"); err != nil {
		t.Fatalf("sync affected by read rule: %v", err)
	}
	if Injected() == 0 {
		t.Fatal("no injections counted")
	}
}

func TestScopeFiltering(t *testing.T) {
	install(t, New(1, []Rule{{Op: Read, Scope: []string{"fast", ":seg/"}, Mode: Err, Rate: 1}}))
	if err := OnRead("fast/001:seg/cam/sf1/00000002", nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("scoped site should fire: %v", err)
	}
	// Cold tier: one scope substring missing.
	if err := OnRead("cold/001:seg/cam/sf1/00000002", nil); err != nil {
		t.Fatalf("cold site fired: %v", err)
	}
	// Fast tier but a metadata key: the :seg/ substring is missing.
	if err := OnRead("fast/000:meta/config/3", nil); err != nil {
		t.Fatalf("metadata site fired: %v", err)
	}
}

func TestFlipFlipsExactlyOneBit(t *testing.T) {
	install(t, New(3, []Rule{{Op: Read, Mode: Flip, Rate: 1}}))
	buf := make([]byte, 64)
	orig := append([]byte(nil), buf...)
	if err := OnRead("fast/000:k", buf); err != nil {
		t.Fatalf("flip returned error: %v", err)
	}
	diffBits := 0
	for i := range buf {
		for b := 0; b < 8; b++ {
			if (buf[i]^orig[i])&(1<<b) != 0 {
				diffBits++
			}
		}
	}
	if diffBits != 1 {
		t.Fatalf("flip changed %d bits, want exactly 1", diffBits)
	}
	// Empty buffer: nothing to flip, no error, no panic.
	if err := OnRead("fast/000:k", nil); err != nil {
		t.Fatalf("flip on empty buf: %v", err)
	}
}

func TestTornWriteReturnsStrictPrefix(t *testing.T) {
	install(t, New(9, []Rule{{Op: Write, Mode: Torn, Rate: 1}}))
	for i := 0; i < 50; i++ {
		n, err := OnWrite("fast/000:k", 100)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("torn write err = %v", err)
		}
		if n < 0 || n >= 100 {
			t.Fatalf("torn write n = %d, want strict prefix of 100", n)
		}
	}
}

func TestWriteErrWritesNothing(t *testing.T) {
	install(t, New(2, []Rule{{Op: Write, Mode: Err, Rate: 1}}))
	n, err := OnWrite("fast/000:k", 100)
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("write err: n=%d err=%v", n, err)
	}
}

func TestSyncAndCompact(t *testing.T) {
	install(t, New(4, []Rule{
		{Op: Sync, Mode: Err, Rate: 1},
		{Op: Compact, Mode: Err, Rate: 1},
	}))
	if err := OnSync("fast/000"); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync: %v", err)
	}
	if err := OnCompact("cold/002"); !errors.Is(err, ErrInjected) {
		t.Fatalf("compact: %v", err)
	}
}

// TestDeterministicSchedule proves the core contract: the same seed and
// operation order produce the same fault schedule; a different seed
// produces a different one.
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed uint64) []bool {
		in := New(seed, []Rule{{Op: Read, Mode: Err, Rate: 0.3}})
		out := make([]bool, 200)
		for i := range out {
			Install(in)
			out[i] = OnRead("fast/000:k", nil) != nil
		}
		Install(nil)
		return out
	}
	a, b := schedule(42), schedule(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
	c := schedule(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRateIsApproximatelyHonoured(t *testing.T) {
	in := New(11, []Rule{{Op: Read, Mode: Err, Rate: 0.25}})
	install(t, in)
	fired := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		if OnRead("fast/000:k", nil) != nil {
			fired++
		}
	}
	got := float64(fired) / trials
	if got < 0.18 || got > 0.32 {
		t.Fatalf("rate 0.25 fired %.3f of the time", got)
	}
	if in.Injected() != uint64(fired) {
		t.Fatalf("Injected() = %d, fired %d", in.Injected(), fired)
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	install(t, New(5, []Rule{
		{Op: Read, Scope: []string{"fast"}, Mode: Err, Rate: 1},
		{Op: Read, Mode: Flip, Rate: 1},
	}))
	buf := []byte{0}
	if err := OnRead("fast/000:k", buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("fast read should hit the err rule: %v", err)
	}
	if buf[0] != 0 {
		t.Fatal("err rule also flipped bits")
	}
	if err := OnRead("cold/000:k", buf); err != nil {
		t.Fatalf("cold read should fall to the flip rule: %v", err)
	}
	if buf[0] == 0 {
		t.Fatal("flip rule did not fire on cold read")
	}
}

func TestParse(t *testing.T) {
	rules, err := Parse("read@fast+:seg/=err:1, write=torn:0.05 ,sync=err,compact@cold=err:0.5,read=flip:0.01")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Op: Read, Scope: []string{"fast", ":seg/"}, Mode: Err, Rate: 1},
		{Op: Write, Mode: Torn, Rate: 0.05},
		{Op: Sync, Mode: Err, Rate: 1},
		{Op: Compact, Scope: []string{"cold"}, Mode: Err, Rate: 0.5},
		{Op: Read, Mode: Flip, Rate: 0.01},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i].String() != want[i].String() {
			t.Fatalf("rule %d = %v, want %v", i, rules[i], want[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"read",            // no mode
		"jump=err",        // unknown op
		"read=explode",    // unknown mode
		"read=err:2",      // rate out of range
		"read=err:0",      // rate out of range
		"read=err:banana", // unparseable rate
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv("VSTORE_FAULTS", "")
	if in, err := FromEnv(); in != nil || err != nil {
		t.Fatalf("empty env: %v %v", in, err)
	}
	t.Setenv("VSTORE_FAULTS", "read=flip:0.5")
	t.Setenv("VSTORE_FAULT_SEED", "99")
	in, err := FromEnv()
	if err != nil || in == nil {
		t.Fatalf("FromEnv: %v %v", in, err)
	}
	if in.seed != 99 || len(in.Rules()) != 1 {
		t.Fatalf("injector = seed %d rules %v", in.seed, in.Rules())
	}
	t.Setenv("VSTORE_FAULT_SEED", "nope")
	if _, err := FromEnv(); err == nil {
		t.Fatal("bad seed accepted")
	}
	t.Setenv("VSTORE_FAULTS", "read=bogus")
	if _, err := FromEnv(); err == nil {
		t.Fatal("bad spec accepted")
	}
	// InstallFromEnv wires a valid spec globally.
	t.Setenv("VSTORE_FAULTS", "sync=err")
	t.Setenv("VSTORE_FAULT_SEED", "1")
	ok, err := InstallFromEnv()
	if err != nil || !ok || !Enabled() {
		t.Fatalf("InstallFromEnv: ok=%v err=%v enabled=%v", ok, err, Enabled())
	}
	t.Cleanup(func() { Install(nil) })
	if err := OnSync("fast/000"); !errors.Is(err, ErrInjected) {
		t.Fatalf("installed injector inert: %v", err)
	}
}
