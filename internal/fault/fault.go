// Package fault is the store's failpoint layer: deterministic, seeded
// injection of I/O faults — read and write errors, torn (short) writes,
// sync failures, and single-bit flips — at the sites kvstore instruments.
// It exists so tests, the nightly soak, and operational drills can
// exercise every failure path the self-healing machinery must survive,
// without touching real disks.
//
// The package is a no-op unless an Injector is installed: every hook
// starts with one atomic pointer load, so production reads and writes pay
// nothing measurable. Rules come from the VSTORE_FAULTS environment
// variable (see Parse) with VSTORE_FAULT_SEED picking the deterministic
// decision stream, or programmatically via New + Install.
//
// Determinism: each decision hashes (seed, rule index, site, n) where n
// is the injector's operation counter, so a fixed operation order yields
// a fixed fault schedule. Concurrent schedules interleave the counter,
// but any individual decision is a pure function of its inputs — reruns
// with the same seed explore the same fault density.
package fault

import (
	"errors"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

// ErrInjected is the sentinel every injected error wraps: callers (and
// tests) distinguish deliberate faults from real I/O failures with
// errors.Is(err, ErrInjected).
var ErrInjected = errors.New("fault: injected")

// Op classifies the I/O operation a rule arms.
type Op uint8

const (
	Read Op = iota
	Write
	Sync
	Compact
)

func (o Op) String() string {
	switch o {
	case Read:
		return "read"
	case Write:
		return "write"
	case Sync:
		return "sync"
	case Compact:
		return "compact"
	}
	return fmt.Sprintf("op(%d)", o)
}

// Mode is what happens when a rule fires.
type Mode uint8

const (
	// Err fails the operation outright (reads return an error, writes
	// fail before any byte lands).
	Err Mode = iota
	// Torn writes a strict prefix of the record and then fails — the
	// on-disk image a crash mid-write leaves behind. Meaningful for
	// writes only; on other ops it degrades to Err.
	Torn
	// Flip flips one deterministic bit of the bytes read — post-write
	// bit rot as the read path observes it. Meaningful for reads only;
	// on other ops it degrades to Err.
	Flip
)

func (m Mode) String() string {
	switch m {
	case Err:
		return "err"
	case Torn:
		return "torn"
	case Flip:
		return "flip"
	}
	return fmt.Sprintf("mode(%d)", m)
}

// Rule arms one failure: operations of class Op at sites matching every
// Scope substring fire Mode with probability Rate.
type Rule struct {
	Op    Op
	Scope []string // substrings that must ALL appear in the site; empty = every site
	Mode  Mode
	Rate  float64 // probability in (0,1]; 1 fires every time
}

func (r Rule) String() string {
	s := r.Op.String()
	if len(r.Scope) > 0 {
		s += "@" + strings.Join(r.Scope, "+")
	}
	return fmt.Sprintf("%s=%s:%g", s, r.Mode, r.Rate)
}

// Injector evaluates rules against instrumented I/O sites.
type Injector struct {
	seed     uint64
	rules    []Rule
	n        atomic.Uint64 // decision counter: the determinism clock
	injected atomic.Uint64
}

// New builds an injector with the given decision seed and rules.
func New(seed uint64, rules []Rule) *Injector {
	return &Injector{seed: seed, rules: rules}
}

// Injected returns how many faults this injector has fired.
func (in *Injector) Injected() uint64 { return in.injected.Load() }

// Rules returns a copy of the injector's rule set.
func (in *Injector) Rules() []Rule { return append([]Rule(nil), in.rules...) }

// active is the process-global injector; nil means every hook is a no-op.
var active atomic.Pointer[Injector]

// Install makes in the process-global injector. Install(nil) disables
// injection. Safe to call concurrently with instrumented I/O.
func Install(in *Injector) { active.Store(in) }

// Enabled reports whether an injector is installed.
func Enabled() bool { return active.Load() != nil }

// Injected returns the installed injector's fired-fault count (0 when
// none is installed).
func Injected() uint64 {
	if in := active.Load(); in != nil {
		return in.Injected()
	}
	return 0
}

// splitmix64 is the decision hash: tiny, stateless, well mixed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func hashString(s string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a 64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// decide returns the firing rule (and a per-decision hash for torn/flip
// positioning) for one operation at site, or nil.
func (in *Injector) decide(op Op, site string) (*Rule, uint64) {
	n := in.n.Add(1)
	for ri := range in.rules {
		r := &in.rules[ri]
		if r.Op != op || !matches(r.Scope, site) {
			continue
		}
		h := splitmix64(in.seed ^ splitmix64(n) ^ hashString(site) ^ uint64(ri)<<56)
		if r.Rate >= 1 || float64(h>>11)/float64(1<<53) < r.Rate {
			in.injected.Add(1)
			return r, splitmix64(h)
		}
	}
	return nil, 0
}

func matches(scope []string, site string) bool {
	for _, s := range scope {
		if !strings.Contains(site, s) {
			return false
		}
	}
	return true
}

// OnRead runs read-site rules for site. Flip mode flips one
// deterministic bit of buf in place (the caller's checksum verification
// must catch it); Err and Torn return an injected error. A nil return
// with an unmodified buf means no fault fired.
func OnRead(site string, buf []byte) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	r, h := in.decide(Read, site)
	if r == nil {
		return nil
	}
	if r.Mode == Flip {
		if len(buf) > 0 {
			bit := h % uint64(len(buf)*8)
			buf[bit/8] ^= 1 << (bit % 8)
		}
		return nil
	}
	return fmt.Errorf("%w: read at %s", ErrInjected, site)
}

// OnWrite runs write-site rules for a write of n bytes at site. It
// returns how many bytes the caller should actually write and the error
// to surface after writing them: (n, nil) when no fault fires, (k < n,
// ErrInjected) for a torn write, (0, ErrInjected) for a failed write.
func OnWrite(site string, n int) (int, error) {
	in := active.Load()
	if in == nil {
		return n, nil
	}
	r, h := in.decide(Write, site)
	if r == nil {
		return n, nil
	}
	if r.Mode == Torn && n > 0 {
		return int(h % uint64(n)), fmt.Errorf("%w: torn write at %s", ErrInjected, site)
	}
	return 0, fmt.Errorf("%w: write at %s", ErrInjected, site)
}

// OnSync runs sync-site rules for site.
func OnSync(site string) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	if r, _ := in.decide(Sync, site); r != nil {
		return fmt.Errorf("%w: sync at %s", ErrInjected, site)
	}
	return nil
}

// OnCompact runs compaction-site rules for site.
func OnCompact(site string) error {
	in := active.Load()
	if in == nil {
		return nil
	}
	if r, _ := in.decide(Compact, site); r != nil {
		return fmt.Errorf("%w: compact at %s", ErrInjected, site)
	}
	return nil
}

// Parse decodes a rule list from the VSTORE_FAULTS grammar:
//
//	spec  := rule ("," rule)*
//	rule  := op ["@" scope ("+" scope)*] "=" mode [":" rate]
//	op    := "read" | "write" | "sync" | "compact"
//	mode  := "err" | "torn" | "flip"
//	rate  := float in (0,1]   (default 1)
//
// A site is "<tier>/<shard>:<key>" (e.g. "fast/000:seg/cam/..."), so a
// scope of "fast" arms every fast shard, "fast+:seg/" only segment data
// on fast shards, and "fast/002" one shard. Examples:
//
//	read@fast=err:1            every fast-tier read fails
//	read=flip:0.01             1% of reads come back with one bit flipped
//	write=torn:0.05,sync=err:0.05
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		lhs, rhs, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("fault: rule %q: want op[@scope]=mode[:rate]", part)
		}
		var r Rule
		opStr, scopeStr, scoped := strings.Cut(lhs, "@")
		switch opStr {
		case "read":
			r.Op = Read
		case "write":
			r.Op = Write
		case "sync":
			r.Op = Sync
		case "compact":
			r.Op = Compact
		default:
			return nil, fmt.Errorf("fault: rule %q: unknown op %q", part, opStr)
		}
		if scoped {
			for _, s := range strings.Split(scopeStr, "+") {
				if s != "" {
					r.Scope = append(r.Scope, s)
				}
			}
		}
		modeStr, rateStr, hasRate := strings.Cut(rhs, ":")
		switch modeStr {
		case "err":
			r.Mode = Err
		case "torn":
			r.Mode = Torn
		case "flip":
			r.Mode = Flip
		default:
			return nil, fmt.Errorf("fault: rule %q: unknown mode %q", part, modeStr)
		}
		r.Rate = 1
		if hasRate {
			rate, err := strconv.ParseFloat(rateStr, 64)
			if err != nil || math.IsNaN(rate) || rate <= 0 || rate > 1 {
				return nil, fmt.Errorf("fault: rule %q: rate must be in (0,1]", part)
			}
			r.Rate = rate
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// FromEnv builds an injector from VSTORE_FAULTS and VSTORE_FAULT_SEED.
// It returns (nil, nil) when VSTORE_FAULTS is unset or empty — the
// production case.
func FromEnv() (*Injector, error) {
	spec := os.Getenv("VSTORE_FAULTS")
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	rules, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	if len(rules) == 0 {
		return nil, nil
	}
	seed := uint64(1)
	if s := os.Getenv("VSTORE_FAULT_SEED"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: VSTORE_FAULT_SEED %q: %w", s, err)
		}
		seed = v
	}
	return New(seed, rules), nil
}

// InstallFromEnv is the boot-time wiring: parse the environment and
// install the result (a no-op when VSTORE_FAULTS is unset). It returns
// whether an injector was installed.
func InstallFromEnv() (bool, error) {
	in, err := FromEnv()
	if err != nil {
		return false, err
	}
	if in == nil {
		return false, nil
	}
	Install(in)
	return true, nil
}
