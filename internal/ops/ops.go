// Package ops implements VStore's operator library (Table 2): nine
// algorithmic video consumers spanning three orders of magnitude in cost.
// Diff, Motion, Color, Contour and Opflow are genuine pixel algorithms;
// S-NN, NN, License and OCR are feature-pipeline classifiers standing in for
// the neural networks and OpenALPR stages of the paper (the documented
// substitution for Go's weak NN ecosystem). Every operator does real,
// fidelity-proportional pixel work, so consumption cost scales with the
// data quantity knobs and is independent of image quality (observation O2).
//
// Accuracy follows the paper's definition (§6.1): the F1 score of the
// operator's output at a test fidelity against its own output when consuming
// the ingestion-format (full fidelity) video.
package ops

import (
	"fmt"
	"sort"

	"repro/internal/format"
	"repro/internal/frame"
)

// Detection is one semantic finding in one frame. X and Y are the normalised
// centre position in [0,1], in the coordinates of the frame the operator
// consumed; RunAtFidelity converts them to full-frame coordinates.
type Detection struct {
	PTS   int
	Label string
	X, Y  float64
}

// Output is an operator's result over a clip: the consumed frame timeline
// and the detections on it.
type Output struct {
	PTS        []int // consumed original-timeline frame indices, ascending
	Detections []Detection
}

// Stats accounts the deterministic consumption work of a run.
type Stats struct {
	Pixels int64 // pixels examined
	Work   int64 // abstract work units: pixels × operator depth
	Frames int64 // frames consumed (per-frame dispatch overhead accounting)
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Pixels += other.Pixels
	s.Work += other.Work
	s.Frames += other.Frames
}

// Operator is an algorithmic video consumer. Run consumes a clip of frames
// (already converted to the consumption fidelity) and reports detections
// plus the work performed. Implementations are stateless values; all
// per-run state lives inside Run.
type Operator interface {
	Name() string
	Run(frames []*frame.Frame) (Output, Stats)
}

// All returns the operator library in Table 2 order: Diff, S-NN, NN, Motion,
// License, OCR, Opflow, Color, Contour.
func All() []Operator {
	return []Operator{
		Diff{}, SNN{}, NN{}, Motion{}, License{}, OCR{}, Opflow{}, Color{}, Contour{},
	}
}

// ByName returns the named operator.
func ByName(name string) (Operator, error) {
	for _, op := range All() {
		if op.Name() == name {
			return op, nil
		}
	}
	return nil, fmt.Errorf("ops: unknown operator %q", name)
}

// RunAtFidelity runs op on frames produced at fidelity fid and converts
// detection positions from cropped-frame coordinates back to full-frame
// coordinates, so outputs at different fidelities are comparable.
func RunAtFidelity(op Operator, frames []*frame.Frame, fid format.Fidelity) (Output, Stats) {
	out, st := op.Run(frames)
	cf := fid.Crop.Fraction()
	if cf < 1 {
		for i := range out.Detections {
			out.Detections[i].X = 0.5 + (out.Detections[i].X-0.5)*cf
			out.Detections[i].Y = 0.5 + (out.Detections[i].Y-0.5)*cf
		}
	}
	return out, st
}

// posTolerance is the normalised distance within which two detections of the
// same label in the same frame are considered the same finding. It is wide
// enough to absorb the drift of step-expanded answers at 1/30 sampling
// (objects move about 0.19 of the frame in 30 frames).
const posTolerance = 0.28

// F1 scores test against ref, following the paper's accuracy definition.
// ref is the output at the ingestion format (full frame rate): its PTS set
// is the evaluation timeline. test may be sparsely sampled; its detections
// extend forward in time until its next consumed frame (the query's answer
// for unconsumed frames is the latest consumed one).
func F1(ref, test Output) float64 {
	if len(ref.PTS) == 0 {
		return 1
	}
	refByPTS := groupByPTS(ref.Detections)
	testByPTS := groupByPTS(test.Detections)

	var tp, fp, fn int
	ti := 0
	for _, pts := range ref.PTS {
		// Step-expansion: the test's answer for pts is its latest consumed
		// frame at or before pts (or its first frame if none).
		for ti+1 < len(test.PTS) && test.PTS[ti+1] <= pts {
			ti++
		}
		var testDets []Detection
		if len(test.PTS) > 0 {
			testDets = testByPTS[test.PTS[ti]]
		}
		t, p, n := matchFrame(refByPTS[pts], testDets)
		tp += t
		fp += p
		fn += n
	}
	if tp == 0 {
		if fp == 0 && fn == 0 {
			return 1 // both outputs empty everywhere: perfect agreement
		}
		return 0
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	return 2 * precision * recall / (precision + recall)
}

func groupByPTS(dets []Detection) map[int][]Detection {
	m := make(map[int][]Detection)
	for _, d := range dets {
		m[d.PTS] = append(m[d.PTS], d)
	}
	return m
}

// matchFrame greedily matches same-label detections within the position
// tolerance and returns (tp, fp, fn) for one frame.
func matchFrame(ref, test []Detection) (tp, fp, fn int) {
	used := make([]bool, len(ref))
	for _, td := range test {
		matched := false
		best, bestD := -1, posTolerance
		for i, rd := range ref {
			if used[i] || rd.Label != td.Label {
				continue
			}
			d := chebyshev(rd, td)
			if d <= bestD {
				best, bestD = i, d
			}
		}
		if best >= 0 {
			used[best] = true
			matched = true
			tp++
		}
		if !matched {
			fp++
		}
	}
	for i := range ref {
		if !used[i] {
			fn++
		}
	}
	return
}

func chebyshev(a, b Detection) float64 {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

// Labels returns the sorted distinct labels in an output (test helper and
// diagnostic).
func (o Output) Labels() []string {
	set := map[string]bool{}
	for _, d := range o.Detections {
		set[d.Label] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
