package ops

import (
	"strings"
	"testing"

	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/vidsim"
)

func fid(q format.Quality, res format.Resolution, s format.Sampling, c format.Crop) format.Fidelity {
	return format.Fidelity{Quality: q, Res: res, Sampling: s, Crop: c}
}

var (
	s11  = format.Sampling{Num: 1, Den: 1}
	s12  = format.Sampling{Num: 1, Den: 2}
	s16  = format.Sampling{Num: 1, Den: 6}
	s130 = format.Sampling{Num: 1, Den: 30}
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("library has %d operators, want 9 (Table 2)", len(all))
	}
	want := []string{"Diff", "S-NN", "NN", "Motion", "License", "OCR", "Opflow", "Color", "Contour"}
	for i, op := range all {
		if op.Name() != want[i] {
			t.Errorf("operator %d = %s, want %s", i, op.Name(), want[i])
		}
		got, err := ByName(want[i])
		if err != nil || got.Name() != want[i] {
			t.Errorf("ByName(%s): %v", want[i], err)
		}
	}
	if _, err := ByName("YOLO9000"); err == nil {
		t.Error("unknown operator accepted")
	}
}

// opScene pairs each operator with a dataset that exercises it, as §6.1
// profiles query A operators on jackson and query B on dashcam.
func opScene(name string) (string, int) {
	switch name {
	case "Motion", "License", "OCR":
		return "dashcam", 150
	case "Color":
		return "jackson", 600
	default:
		return "jackson", 150
	}
}

// TestSamplingDegradesAccuracy: consuming fewer frames can only lose events.
func TestSamplingDegradesAccuracy(t *testing.T) {
	for _, op := range All() {
		scene, n := opScene(op.Name())
		refFrames := renderAt(t, scene, 0, n, fullFid())
		ref, _ := RunAtFidelity(op, refFrames, fullFid())
		if len(ref.Detections) == 0 && op.Name() != "Opflow" {
			t.Errorf("%s: no reference detections; scene/op pairing broken", op.Name())
			continue
		}
		fSparse := fid(format.QBest, 720, s130, format.Crop100)
		sparse, _ := RunAtFidelity(op, renderAt(t, scene, 0, n, fSparse), fSparse)
		f1Sparse := F1(ref, sparse)
		if f1Sparse > 1.0 || f1Sparse < 0 {
			t.Errorf("%s: F1 out of range: %v", op.Name(), f1Sparse)
		}
		fHalf := fid(format.QBest, 720, s12, format.Crop100)
		half, _ := RunAtFidelity(op, renderAt(t, scene, 0, n, fHalf), fHalf)
		f1Half := F1(ref, half)
		if f1Half < f1Sparse-0.15 {
			t.Errorf("%s: half-rate F1 %.3f clearly below 1/30-rate F1 %.3f", op.Name(), f1Half, f1Sparse)
		}
		if f1Half < 0.5 {
			t.Errorf("%s: half-rate F1 %.3f implausibly low", op.Name(), f1Half)
		}
	}
}

// TestConsumptionCostScalesWithPixels: work must track the data-quantity
// knobs (resolution here) and be independent of image quality (O2).
func TestConsumptionCostScalesWithPixels(t *testing.T) {
	for _, op := range All() {
		scene, _ := opScene(op.Name())
		n := 30
		fHi := fid(format.QBest, 720, s11, format.Crop100)
		fLo := fid(format.QBest, 180, s11, format.Crop100)
		_, hi := RunAtFidelity(op, renderAt(t, scene, 0, n, fHi), fHi)
		_, lo := RunAtFidelity(op, renderAt(t, scene, 0, n, fLo), fLo)
		if hi.Work <= lo.Work {
			t.Errorf("%s: work at 720p (%d) not above 180p (%d)", op.Name(), hi.Work, lo.Work)
		}
		// 720p has 16x the pixels of 180p; allow wide tolerance for
		// rounding of internal dims.
		if ratio := float64(hi.Work) / float64(lo.Work); ratio < 8 || ratio > 32 {
			t.Errorf("%s: work ratio 720p/180p = %.1f, want ~16", op.Name(), ratio)
		}
		fWorst := fid(format.QWorst, 720, s11, format.Crop100)
		_, worst := RunAtFidelity(op, renderAt(t, scene, 0, n, fWorst), fWorst)
		if worst.Work != hi.Work {
			t.Errorf("%s: image quality changed consumption work: %d vs %d (violates O2)", op.Name(), worst.Work, hi.Work)
		}
	}
}

// TestCostSpreadAcrossCascade: the paper reports three orders of magnitude
// between the cheapest and costliest operators of a cascade.
func TestCostSpreadAcrossCascade(t *testing.T) {
	frames := renderAt(t, "jackson", 0, 30, fullFid())
	_, diff := Diff{}.Run(frames)
	_, snn := SNN{}.Run(frames)
	_, nn := NN{}.Run(frames)
	if !(diff.Work < snn.Work && snn.Work < nn.Work) {
		t.Fatalf("cascade cost order broken: Diff %d, S-NN %d, NN %d", diff.Work, snn.Work, nn.Work)
	}
	if ratio := float64(nn.Work) / float64(diff.Work); ratio < 50 {
		t.Fatalf("NN/Diff work ratio %.0f, want around two orders of magnitude", ratio)
	}
}

func TestOCRReadsPlateExactly(t *testing.T) {
	// Find a frame with a fully visible plate and verify OCR reads it.
	src := vidsim.NewSource(vidsim.Datasets[0])
	for i := 0; i < 120*vidsim.FPS; i++ {
		for _, o := range src.Truth(i).Objects {
			if o.Kind != vidsim.Car || o.Plate == "" {
				continue
			}
			x, y, w, h := vidsim.PlateGeometry(o)
			if x < 4 || y < 0 || x+w > src.W-4 || y+h > src.H {
				continue
			}
			out, _ := OCR{}.Run([]*frame.Frame{src.Frame(i)})
			for _, d := range out.Detections {
				if d.Label == o.Plate {
					return // success
				}
			}
			// Look at a few more frames before failing: noise may perturb
			// one sample.
		}
	}
	t.Fatal("OCR never read a visible plate exactly in 120s")
}

func TestLicenseFindsPlates(t *testing.T) {
	frames := renderAt(t, "dashcam", 0, 90, fullFid())
	out, _ := RunAtFidelity(License{}, frames, fullFid())
	if len(out.Detections) == 0 {
		t.Fatal("License found no plates in 3s of dashcam")
	}
	for _, d := range out.Detections {
		if d.Label != "plate" {
			t.Fatalf("unexpected label %q", d.Label)
		}
	}
}

func TestColorFindsOnlyRed(t *testing.T) {
	src := vidsim.NewSource(vidsim.Datasets[0])
	// Scan for a frame with a red car near centre and one with no red car.
	foundRed := false
	for i := 0; i < 90*vidsim.FPS && !foundRed; i += 5 {
		tr := src.Truth(i)
		for _, o := range tr.Objects {
			if o.Red && o.X > src.W/4 && o.X+o.W < 3*src.W/4 {
				out, _ := Color{}.Run(src.Clip(i, 1))
				if len(out.Detections) > 0 && out.Detections[0].Label == "red" {
					foundRed = true
				}
			}
		}
	}
	if !foundRed {
		t.Fatal("Color never detected a centred red car")
	}
}

func TestF1Properties(t *testing.T) {
	ref := Output{PTS: []int{0, 1, 2}, Detections: []Detection{
		{PTS: 0, Label: "a", X: 0.5, Y: 0.5},
		{PTS: 1, Label: "a", X: 0.5, Y: 0.5},
	}}
	if f := F1(ref, ref); f != 1 {
		t.Fatalf("F1(x,x) = %v", f)
	}
	empty := Output{PTS: []int{0, 1, 2}}
	if f := F1(ref, empty); f != 0 {
		t.Fatalf("F1 vs empty = %v, want 0", f)
	}
	if f := F1(empty, empty); f != 1 {
		t.Fatalf("F1(empty,empty) = %v, want 1", f)
	}
	// Step expansion: a single consumed frame answering for the whole clip.
	step := Output{PTS: []int{0}, Detections: []Detection{{PTS: 0, Label: "a", X: 0.5, Y: 0.5}}}
	f := F1(ref, step)
	if f <= 0 || f > 1 {
		t.Fatalf("step-expanded F1 = %v", f)
	}
	// Wrong label never matches.
	wrong := Output{PTS: []int{0, 1, 2}, Detections: []Detection{
		{PTS: 0, Label: "b", X: 0.5, Y: 0.5},
		{PTS: 1, Label: "b", X: 0.5, Y: 0.5},
	}}
	if f := F1(ref, wrong); f != 0 {
		t.Fatalf("wrong-label F1 = %v, want 0", f)
	}
	// Position tolerance: far-away same-label detection does not match.
	far := Output{PTS: []int{0, 1, 2}, Detections: []Detection{
		{PTS: 0, Label: "a", X: 0.05, Y: 0.05},
		{PTS: 1, Label: "a", X: 0.05, Y: 0.05},
	}}
	if f := F1(ref, far); f != 0 {
		t.Fatalf("far-position F1 = %v, want 0", f)
	}
}

func TestRunAtFidelityRemapsCrop(t *testing.T) {
	scene, _ := opScene("Motion")
	f := fid(format.QBest, 720, s11, format.Crop50)
	frames := renderAt(t, scene, 0, 60, f)
	out, _ := RunAtFidelity(Motion{}, frames, f)
	for _, d := range out.Detections {
		if d.X < 0.25-1e-9 || d.X > 0.75+1e-9 || d.Y < 0.25-1e-9 || d.Y > 0.75+1e-9 {
			t.Fatalf("crop-remapped position (%v,%v) outside central half", d.X, d.Y)
		}
	}
}

func TestOutputLabels(t *testing.T) {
	o := Output{Detections: []Detection{{Label: "b"}, {Label: "a"}, {Label: "b"}}}
	got := o.Labels()
	if strings.Join(got, ",") != "a,b" {
		t.Fatalf("Labels() = %v", got)
	}
}
