package ops

import "repro/internal/frame"

// Diff is the frame-difference detector used as the first, cheapest stage of
// NoScope-style cascades: it flags consumed frames whose mean absolute luma
// difference against the previous consumed frame exceeds a threshold.
type Diff struct{}

// Name implements Operator.
func (Diff) Name() string { return "Diff" }

const (
	// diffPixelDelta is the per-pixel luma change that counts as "changed".
	// Sensor noise deltas are bounded by twice the noise amplitude (±8 for
	// the noisiest scene), so the signal is object edges, not noise.
	diffPixelDelta = 14
	// diffMinFrac is the changed-pixel fraction above which the frame is
	// flagged. The fraction is scale-free, which is what lets Diff run on
	// very low resolutions (Table 3 assigns it 60p–200p inputs).
	diffMinFrac = 0.002
)

// Run implements Operator.
func (Diff) Run(frames []*frame.Frame) (Output, Stats) {
	var out Output
	var st Stats
	var prev *frame.Frame
	for _, f := range frames {
		out.PTS = append(out.PTS, f.PTS)
		st.Frames++
		st.Pixels += int64(f.NumPixels())
		st.Work += int64(f.NumPixels())
		if prev != nil && f.W == prev.W && f.H == prev.H {
			changed := 0
			for i := range f.Y {
				d := int(f.Y[i]) - int(prev.Y[i])
				if d < 0 {
					d = -d
				}
				if d > diffPixelDelta {
					changed++
				}
			}
			if float64(changed) > diffMinFrac*float64(f.NumPixels()) {
				out.Detections = append(out.Detections, Detection{PTS: f.PTS, Label: "change", X: 0.5, Y: 0.5})
			}
		}
		prev = f
	}
	return out, st
}

// Motion is the background-subtraction motion detector (the OpenALPR
// pipeline's first stage). It maintains a running-average background and
// reports the centroid of foreground regions.
type Motion struct{}

// Name implements Operator.
func (Motion) Name() string { return "Motion" }

const (
	motionAlpha     = 0.12  // background update rate
	motionFgThresh  = 22.0  // luma delta for a foreground pixel
	motionMinFgFrac = 0.004 // minimum foreground fraction to report motion
)

// Run implements Operator.
func (Motion) Run(frames []*frame.Frame) (Output, Stats) {
	var out Output
	var st Stats
	var bg []float64
	var bw, bh int
	for fi, f := range frames {
		out.PTS = append(out.PTS, f.PTS)
		st.Frames++
		st.Pixels += int64(f.NumPixels())
		st.Work += int64(f.NumPixels()) * 2
		if bg == nil || bw != f.W || bh != f.H {
			bg = make([]float64, len(f.Y))
			for i, v := range f.Y {
				bg[i] = float64(v)
			}
			bw, bh = f.W, f.H
			continue
		}
		var fg, sx, sy int
		for y := 0; y < f.H; y++ {
			row := y * f.W
			for x := 0; x < f.W; x++ {
				i := row + x
				d := float64(f.Y[i]) - bg[i]
				if d < 0 {
					d = -d
				}
				if d > motionFgThresh {
					fg++
					sx += x
					sy += y
				}
				bg[i] += motionAlpha * (float64(f.Y[i]) - bg[i])
			}
		}
		if fi > 0 && float64(fg) > motionMinFgFrac*float64(f.NumPixels()) {
			out.Detections = append(out.Detections, Detection{
				PTS:   f.PTS,
				Label: "motion",
				X:     float64(sx) / float64(fg) / float64(f.W),
				Y:     float64(sy) / float64(fg) / float64(f.H),
			})
		}
	}
	return out, st
}

// Color detects objects of a specific colour (red, as in the BlazeIt "blue
// cars" style of predicate) by thresholding the chroma planes.
type Color struct{}

// Name implements Operator.
func (Color) Name() string { return "Color" }

const (
	colorCrMin   = 170 // red has high Cr
	colorCbMax   = 110 // and low Cb
	colorMinFrac = 0.002
)

// Run implements Operator.
func (Color) Run(frames []*frame.Frame) (Output, Stats) {
	var out Output
	var st Stats
	for _, f := range frames {
		out.PTS = append(out.PTS, f.PTS)
		st.Frames++
		hw, hh := f.W/2, f.H/2
		st.Pixels += int64(hw * hh)
		st.Work += int64(hw * hh)
		var hits, sx, sy int
		for y := 0; y < hh; y++ {
			row := y * hw
			for x := 0; x < hw; x++ {
				if f.Cr[row+x] >= colorCrMin && f.Cb[row+x] <= colorCbMax {
					hits++
					sx += x
					sy += y
				}
			}
		}
		if float64(hits) > colorMinFrac*float64(hw*hh) {
			out.Detections = append(out.Detections, Detection{
				PTS:   f.PTS,
				Label: "red",
				X:     float64(sx) / float64(hits) / float64(hw),
				Y:     float64(sy) / float64(hits) / float64(hh),
			})
		}
	}
	return out, st
}
