package ops

import "repro/internal/frame"

// sigGrad is the horizontal gradient magnitude considered "significant":
// above background texture, noise and quantisation steps, below the
// plate-column alternation amplitude.
const sigGrad = 30

// cellStats holds per-cell first and second moments of the luma plane plus
// horizontal gradient energy, the shared feature grid behind the classifier
// operators. A cellStats is reusable: update recomputes it for a new frame
// on the same buffers, which is how the per-frame Run loops keep the grid
// allocation-free after the first frame (per-frame scratch reused purely
// for allocation economy — explicitly not "state" under the
// FrameIndependent contract).
type cellStats struct {
	cw, ch   int // cells across and down
	px       int // cell pixel size
	mean     []float64
	variance []float64
	hGrad    []float64 // mean |horizontal gradient|
	flips    []float64 // horizontal gradient sign-flip density (plate signature)
	// accumulation and helper scratch, reused across update calls
	sum, sum2, grad, flip, cnt []float64
	med                        []float64 // median sort buffer
	rows                       []float64 // rowMedianMean output
}

// gridStats computes cell statistics over f with the given cell pixel size
// into a fresh grid. The work is one pass over the luma plane. Hot loops
// reuse one cellStats via update instead.
func gridStats(f *frame.Frame, px int) *cellStats {
	g := new(cellStats)
	g.update(f, px)
	return g
}

// growZero returns buf resized to n elements, all zero, reusing its
// capacity when possible.
func growZero(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// update recomputes the grid over f, reusing g's buffers when their
// capacity allows. Slices previously returned by g's helpers are
// overwritten.
func (g *cellStats) update(f *frame.Frame, px int) {
	if px < 2 {
		px = 2
	}
	cw := (f.W + px - 1) / px
	ch := (f.H + px - 1) / px
	n := cw * ch
	g.cw, g.ch, g.px = cw, ch, px
	g.mean = growZero(g.mean, n)
	g.variance = growZero(g.variance, n)
	g.hGrad = growZero(g.hGrad, n)
	g.flips = growZero(g.flips, n)
	g.sum = growZero(g.sum, n)
	g.sum2 = growZero(g.sum2, n)
	g.grad = growZero(g.grad, n)
	g.flip = growZero(g.flip, n)
	g.cnt = growZero(g.cnt, n)
	sum, sum2, grad, flip, count := g.sum, g.sum2, g.grad, g.flip, g.cnt
	for y := 0; y < f.H; y++ {
		cy := y / px
		row := y * f.W
		lastSig := 0 // sign of the last significant gradient in this row
		for x := 0; x < f.W; x++ {
			c := cy*cw + x/px
			v := float64(f.Y[row+x])
			sum[c] += v
			sum2[c] += v * v
			count[c]++
			if x > 0 {
				gv := int(f.Y[row+x]) - int(f.Y[row+x-1])
				ag := gv
				if ag < 0 {
					ag = -ag
				}
				grad[c] += float64(ag)
				// A flip is a significant gradient whose sign opposes the
				// previous significant one: the pixel-pitch alternation of a
				// plate, which texture and object edges do not produce.
				if ag >= sigGrad {
					sig := 1
					if gv < 0 {
						sig = -1
					}
					if lastSig == -sig {
						flip[c]++
					}
					lastSig = sig
				}
			}
		}
	}
	for c := range sum {
		if count[c] == 0 {
			continue
		}
		m := sum[c] / count[c]
		g.mean[c] = m
		g.variance[c] = sum2[c]/count[c] - m*m
		g.hGrad[c] = grad[c] / count[c]
		g.flips[c] = flip[c] / count[c]
	}
}

// globalMean returns the mean of all cell means.
func (g *cellStats) globalMean() float64 {
	var s float64
	for _, m := range g.mean {
		s += m
	}
	return s / float64(len(g.mean))
}

// medianVariance returns the median cell variance: a robust estimate of the
// background texture level.
func (g *cellStats) medianVariance() float64 {
	m, buf := medianInto(g.med, g.variance)
	g.med = buf
	return m
}

// medianMean returns the median cell mean: a robust estimate of the
// background brightness that, unlike the global mean, is not dragged by
// bright or dark objects.
func (g *cellStats) medianMean() float64 {
	m, buf := medianInto(g.med, g.mean)
	g.med = buf
	return m
}

// rowMedianMean returns, per cell row, the median of that row's cell means.
// Scenes have a vertical luminance gradient, so a per-row background
// estimate is what keeps the top and bottom of the frame from reading as
// objects. The returned slice is g's scratch, valid until the next call.
func (g *cellStats) rowMedianMean() []float64 {
	if cap(g.rows) < g.ch {
		g.rows = make([]float64, g.ch)
	}
	g.rows = g.rows[:g.ch]
	for cy := 0; cy < g.ch; cy++ {
		g.rows[cy], g.med = medianInto(g.med, g.mean[cy*g.cw:(cy+1)*g.cw])
	}
	return g.rows
}

// medianInto computes the median of src, sorting in buf (grown as needed)
// so hot loops amortise the copy buffer; it returns the median and the
// buffer for reuse. src is not modified.
func medianInto(buf, src []float64) (float64, []float64) {
	if cap(buf) < len(src) {
		buf = make([]float64, len(src))
	}
	vs := buf[:len(src)]
	copy(vs, src)
	// Insertion sort is fine at these sizes (tens of cells).
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
	return vs[len(vs)/2], buf
}

func median(src []float64) float64 {
	m, _ := medianInto(nil, src)
	return m
}

// centre returns the normalised centre of cell c.
func (g *cellStats) centre(c int) (x, y float64) {
	cx, cy := c%g.cw, c/g.cw
	return (float64(cx) + 0.5) / float64(g.cw), (float64(cy) + 0.5) / float64(g.ch)
}

// mergePoints clusters normalised points closer than radius (Chebyshev) and
// returns the cluster centroids. Greedy single pass: fine for handfuls of
// detections per frame.
func mergePoints(xs, ys []float64, radius float64) (cx, cy []float64) {
	type cluster struct {
		sx, sy float64
		n      int
	}
	var clusters []cluster
outer:
	for i := range xs {
		for j := range clusters {
			mx := clusters[j].sx / float64(clusters[j].n)
			my := clusters[j].sy / float64(clusters[j].n)
			dx, dy := xs[i]-mx, ys[i]-my
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			if dx <= radius && dy <= radius {
				clusters[j].sx += xs[i]
				clusters[j].sy += ys[i]
				clusters[j].n++
				continue outer
			}
		}
		clusters = append(clusters, cluster{xs[i], ys[i], 1})
	}
	for _, c := range clusters {
		cx = append(cx, c.sx/float64(c.n))
		cy = append(cy, c.sy/float64(c.n))
	}
	return
}

// boxBlur3 performs one 3×3 box blur pass over the luma plane in place,
// using a scratch buffer. Used by NN to model convolutional feature passes;
// the work is real.
func boxBlur3(y []byte, w, h int, scratch []byte) {
	copy(scratch, y)
	for yy := 1; yy < h-1; yy++ {
		for xx := 1; xx < w-1; xx++ {
			i := yy*w + xx
			s := int(scratch[i-w-1]) + int(scratch[i-w]) + int(scratch[i-w+1]) +
				int(scratch[i-1]) + int(scratch[i]) + int(scratch[i+1]) +
				int(scratch[i+w-1]) + int(scratch[i+w]) + int(scratch[i+w+1])
			y[i] = byte(s / 9)
		}
	}
}
