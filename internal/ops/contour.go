package ops

import "repro/internal/frame"

// Contour detects object boundaries: gradient-magnitude edge extraction
// followed by connected-component labelling, reporting one detection per
// sufficiently large component (the OpenCV contours operator of Table 2).
type Contour struct{}

// Name implements Operator.
func (Contour) Name() string { return "Contour" }

const (
	contourEdgeThresh = 34 // gradient magnitude for an edge pixel
	contourMinPerim   = 12 // minimum component size in edge pixels
)

// Run implements Operator.
func (Contour) Run(frames []*frame.Frame) (Output, Stats) {
	var out Output
	var st Stats
	var edge []bool
	var labels []int32
	for _, f := range frames {
		out.PTS = append(out.PTS, f.PTS)
		st.Frames++
		n := f.NumPixels()
		st.Pixels += int64(n)
		st.Work += int64(n) * 3
		if cap(edge) < n {
			edge = make([]bool, n)
			labels = make([]int32, n)
		}
		edge = edge[:n]
		labels = labels[:n]
		for i := range edge {
			edge[i] = false
			labels[i] = 0
		}
		for y := 1; y < f.H-1; y++ {
			row := y * f.W
			for x := 1; x < f.W-1; x++ {
				i := row + x
				gx := int(f.Y[i+1]) - int(f.Y[i-1])
				gy := int(f.Y[i+f.W]) - int(f.Y[i-f.W])
				if gx < 0 {
					gx = -gx
				}
				if gy < 0 {
					gy = -gy
				}
				if gx+gy > contourEdgeThresh {
					edge[i] = true
				}
			}
		}
		// Connected components over edge pixels (8-connectivity) via an
		// explicit stack flood fill.
		var next int32 = 1
		var stack []int
		for i0 := range edge {
			if !edge[i0] || labels[i0] != 0 {
				continue
			}
			next++
			var count, sx, sy int
			stack = append(stack[:0], i0)
			labels[i0] = next
			for len(stack) > 0 {
				i := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				x, y := i%f.W, i/f.W
				count++
				sx += x
				sy += y
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						nx, ny := x+dx, y+dy
						if nx < 0 || ny < 0 || nx >= f.W || ny >= f.H {
							continue
						}
						j := ny*f.W + nx
						if edge[j] && labels[j] == 0 {
							labels[j] = next
							stack = append(stack, j)
						}
					}
				}
			}
			// Scale the perimeter requirement with resolution so the same
			// physical object qualifies across fidelities.
			minPerim := contourMinPerim * f.H / 90
			if minPerim < 6 {
				minPerim = 6
			}
			if count >= minPerim {
				out.Detections = append(out.Detections, Detection{
					PTS:   f.PTS,
					Label: "contour",
					X:     float64(sx) / float64(count) / float64(f.W),
					Y:     float64(sy) / float64(count) / float64(f.H),
				})
			}
		}
	}
	return out, st
}
