package ops

import "repro/internal/frame"

// Opflow estimates optical flow between consecutive consumed frames by block
// matching and reports the dominant horizontal motion direction, the
// tracking primitive of the paper's operator library.
type Opflow struct{}

// Name implements Operator.
func (Opflow) Name() string { return "Opflow" }

const (
	flowBlockDiv  = 8 // block size: frame height / 8
	flowSearch    = 4 // ± pixels searched horizontally
	flowMinEnergy = 6 // minimum mean per-pixel residual improvement
	// flowWorkDepth models dense optical flow's arithmetic intensity
	// (multi-scale search over every block); real CPU implementations run
	// near video realtime, far below the decoder.
	flowWorkDepth = 100
)

// Run implements Operator.
func (Opflow) Run(frames []*frame.Frame) (Output, Stats) {
	var out Output
	var st Stats
	var prev *frame.Frame
	for _, f := range frames {
		out.PTS = append(out.PTS, f.PTS)
		st.Frames++
		st.Pixels += int64(f.NumPixels())
		st.Work += int64(f.NumPixels()) * flowWorkDepth
		if prev != nil && prev.W == f.W && prev.H == f.H {
			if dir, x, y, ok := dominantFlow(prev, f); ok {
				out.Detections = append(out.Detections, Detection{PTS: f.PTS, Label: dir, X: x, Y: y})
			}
		}
		prev = f
	}
	return out, st
}

// dominantFlow block-matches f against prev and returns the dominant
// direction ("flow-left" or "flow-right") with the centroid of moving
// blocks.
func dominantFlow(prev, f *frame.Frame) (string, float64, float64, bool) {
	bs := max(f.H/flowBlockDiv, 4)
	var left, right int
	var sx, sy, n float64
	for by := 0; by+bs <= f.H; by += bs {
		for bx := flowSearch; bx+bs <= f.W-flowSearch; bx += bs {
			static := blockSAD(prev, f, bx, by, bs, 0)
			bestDx, bestSAD := 0, static
			for dx := -flowSearch; dx <= flowSearch; dx++ {
				if dx == 0 {
					continue
				}
				if s := blockSAD(prev, f, bx, by, bs, dx); s < bestSAD {
					bestSAD, bestDx = s, dx
				}
			}
			if bestDx != 0 && static-bestSAD > flowMinEnergy*bs*bs {
				if bestDx > 0 {
					right++
				} else {
					left++
				}
				sx += float64(bx) + float64(bs)/2
				sy += float64(by) + float64(bs)/2
				n++
			}
		}
	}
	if n == 0 {
		return "", 0, 0, false
	}
	dir := "flow-right"
	if left > right {
		dir = "flow-left"
	}
	return dir, sx / n / float64(f.W), sy / n / float64(f.H), true
}

// blockSAD returns the sum of absolute differences between the block at
// (bx,by) in f and the block displaced by dx in prev.
func blockSAD(prev, f *frame.Frame, bx, by, bs, dx int) int {
	var sad int
	for y := by; y < by+bs; y++ {
		rowF := y * f.W
		rowP := y * prev.W
		for x := bx; x < bx+bs; x++ {
			d := int(f.Y[rowF+x]) - int(prev.Y[rowP+x+dx])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}
