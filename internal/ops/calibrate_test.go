package ops

import (
	"fmt"
	"testing"

	"repro/internal/codec"
	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/vidsim"
)

// renderAt produces a clip at the given fidelity, including the quality
// knob's quantisation via an encode/decode round trip, exactly as the
// profiler will.
func renderAt(t testing.TB, scene string, start, n int, fid format.Fidelity) []*frame.Frame {
	t.Helper()
	sc, err := vidsim.DatasetByName(scene)
	if err != nil {
		t.Fatal(err)
	}
	src := vidsim.NewSource(sc)
	full := src.Clip(start, n)
	tw, th := vidsim.Dims(fid.Res)
	frames := codec.ApplyFidelity(full, fid, tw, th)
	if len(frames) == 0 {
		t.Fatalf("fidelity %v produced no frames from %d", fid, n)
	}
	if fid.Quality != format.QBest {
		enc, _, err := codec.Encode(frames, codec.Params{Quality: fid.Quality, Speed: format.SpeedFastest, KeyframeI: 50})
		if err != nil {
			t.Fatal(err)
		}
		frames, _, err = enc.Decode()
		if err != nil {
			t.Fatal(err)
		}
	}
	return frames
}

func fullFid() format.Fidelity { return format.MaxFidelity() }

// TestCalibrationSweep prints the operator accuracy landscape. Run with
// -v -run Calibration to inspect; it asserts only weak sanity so the suite
// stays robust.
func TestCalibrationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep is slow")
	}
	type cfg struct {
		scene string
		n     int
	}
	scenes := map[string]cfg{
		"Diff": {"jackson", 300}, "S-NN": {"jackson", 300}, "NN": {"jackson", 240},
		"Motion": {"dashcam", 300}, "License": {"dashcam", 120}, "OCR": {"dashcam", 120},
		"Opflow": {"jackson", 120}, "Color": {"jackson", 900}, "Contour": {"jackson", 120},
	}
	fids := []format.Fidelity{
		{Quality: format.QBest, Crop: format.Crop100, Res: 720, Sampling: format.Sampling{Num: 1, Den: 1}},
		{Quality: format.QBest, Crop: format.Crop100, Res: 540, Sampling: format.Sampling{Num: 1, Den: 1}},
		{Quality: format.QBest, Crop: format.Crop100, Res: 400, Sampling: format.Sampling{Num: 1, Den: 1}},
		{Quality: format.QBest, Crop: format.Crop100, Res: 200, Sampling: format.Sampling{Num: 1, Den: 1}},
		{Quality: format.QBest, Crop: format.Crop100, Res: 100, Sampling: format.Sampling{Num: 1, Den: 1}},
		{Quality: format.QGood, Crop: format.Crop100, Res: 720, Sampling: format.Sampling{Num: 1, Den: 1}},
		{Quality: format.QBad, Crop: format.Crop100, Res: 720, Sampling: format.Sampling{Num: 1, Den: 1}},
		{Quality: format.QWorst, Crop: format.Crop100, Res: 720, Sampling: format.Sampling{Num: 1, Den: 1}},
		{Quality: format.QBest, Crop: format.Crop100, Res: 720, Sampling: format.Sampling{Num: 1, Den: 2}},
		{Quality: format.QBest, Crop: format.Crop100, Res: 720, Sampling: format.Sampling{Num: 1, Den: 6}},
		{Quality: format.QBest, Crop: format.Crop100, Res: 720, Sampling: format.Sampling{Num: 1, Den: 30}},
		{Quality: format.QBest, Crop: format.Crop75, Res: 720, Sampling: format.Sampling{Num: 1, Den: 1}},
		{Quality: format.QBest, Crop: format.Crop50, Res: 720, Sampling: format.Sampling{Num: 1, Den: 1}},
	}
	for _, op := range All() {
		c := scenes[op.Name()]
		refFrames := renderAt(t, c.scene, 0, c.n, fullFid())
		ref, _ := RunAtFidelity(op, refFrames, fullFid())
		t.Logf("%-8s ref detections=%d labels=%v", op.Name(), len(ref.Detections), truncLabels(ref.Labels()))
		for _, fid := range fids {
			frames := renderAt(t, c.scene, 0, c.n, fid)
			out, st := RunAtFidelity(op, frames, fid)
			f1 := F1(ref, out)
			t.Logf("  %-24s F1=%.3f dets=%d work=%d", fid, f1, len(out.Detections), st.Work)
		}
	}
}

func truncLabels(l []string) []string {
	if len(l) > 6 {
		return append(l[:6:6], "...")
	}
	return l
}

func TestSelfAccuracyIsPerfect(t *testing.T) {
	for _, op := range All() {
		frames := renderAt(t, "jackson", 0, 60, fullFid())
		a, _ := RunAtFidelity(op, frames, fullFid())
		b, _ := RunAtFidelity(op, frames, fullFid())
		if f1 := F1(a, b); f1 != 1.0 {
			t.Errorf("%s: self-F1 = %.3f, want 1.0", op.Name(), f1)
		}
	}
}

func fmtF1(f float64) string { return fmt.Sprintf("%.3f", f) }
