package ops

// FrameIndependent marks operators whose Run computes every frame's result
// from that frame alone: no differencing against previous frames, no
// running background model, no carried state of any kind (per-frame
// scratch buffers reused across iterations purely for allocation economy
// do not count as state). For such operators, running disjoint contiguous
// chunks of the input and concatenating the outputs in chunk order yields
// exactly the single-call result — the contract the parallel query engine
// relies on to fan consumption across a worker pool without changing
// detections.
//
// Operators consume frames under the frame package's read-only contract:
// the chunks they are handed may alias the retrieval cache, decoder
// arenas, and the chunks of concurrently running siblings — zero copies
// on the way in. An operator must never write to an input frame's planes;
// one that needs mutable pixels copies them into its own scratch first
// (see NN's feature buffer).
//
// Operators that compare frames (Diff, Opflow) or accumulate models
// (Motion) must NOT implement this interface.
type FrameIndependent interface {
	Operator
	// FrameIndependent is a marker; implementations are empty.
	FrameIndependent()
}

// The stateless classifiers and scanners of the library. Each processes
// frames strictly one at a time with no memory of earlier ones.
func (SNN) FrameIndependent()     {}
func (NN) FrameIndependent()      {}
func (Color) FrameIndependent()   {}
func (Contour) FrameIndependent() {}
func (License) FrameIndependent() {}
func (OCR) FrameIndependent()     {}

// IsFrameIndependent reports whether op declares the per-frame
// independence contract above.
func IsFrameIndependent(op Operator) bool {
	_, ok := op.(FrameIndependent)
	return ok
}
