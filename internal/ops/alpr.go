package ops

import (
	"repro/internal/frame"
	"repro/internal/vidsim"
)

// License is the license-plate detector of the ALPR pipeline. Plates are
// rendered as alternating dark/bright columns, so their signature is a high
// density of significant horizontal-gradient sign flips concentrated in a
// small cell — background texture and car-body edges do not alternate at
// pixel pitch.
type License struct{}

// Name implements Operator.
func (License) Name() string { return "License" }

// plateFlipDensity is the per-pixel sign-flip density above which a cell is
// plate-like.
const plateFlipDensity = 0.06

// licenseCellDivisor sizes cells to roughly plate height ×4.
const licenseCellDivisor = 10

// Work depths for the CPU-bound ALPR stages, calibrated to the paper's
// consumption speeds (License 10-60×, OCR 11-165× in Table 3). The paper
// notes License is slow, "likely due to its CPU-based implementation".
const (
	licenseWorkDepth = 100
	ocrWorkDepth     = 150
)

// Run implements Operator.
func (License) Run(frames []*frame.Frame) (Output, Stats) {
	var out Output
	var st Stats
	var grid cellStats // reused across frames (allocation economy)
	for _, f := range frames {
		out.PTS = append(out.PTS, f.PTS)
		st.Frames++
		st.Pixels += int64(f.NumPixels())
		st.Work += int64(f.NumPixels()) * licenseWorkDepth
		out.Detections = append(out.Detections, plateCells(f, &grid)...)
	}
	return out, st
}

func plateCells(f *frame.Frame, g *cellStats) []Detection {
	g.update(f, max(f.H/licenseCellDivisor, 2))
	var xs, ys []float64
	for c := range g.flips {
		if g.flips[c] >= plateFlipDensity {
			x, y := g.centre(c)
			xs = append(xs, x)
			ys = append(ys, y)
		}
	}
	cx, cy := mergePoints(xs, ys, 0.15)
	dets := make([]Detection, 0, len(cx))
	for i := range cx {
		dets = append(dets, Detection{PTS: f.PTS, Label: "plate", X: cx[i], Y: cy[i]})
	}
	return dets
}

// OCR recognises the characters of detected plates. Plates encode one digit
// per dark column group as a luma level; OCR locates plate regions as
// License does, segments the dark intervals between opposing significant
// gradients, and decodes each interval's darkest pixel back to a digit. The
// output label is the decoded string, so one misread character is a miss —
// which is why OCR demands both high resolution and high image quality.
type OCR struct{}

// Name implements Operator.
func (OCR) Name() string { return "OCR" }

// Run implements Operator.
func (OCR) Run(frames []*frame.Frame) (Output, Stats) {
	var out Output
	var st Stats
	var grid cellStats // reused across frames (allocation economy)
	for _, f := range frames {
		out.PTS = append(out.PTS, f.PTS)
		st.Frames++
		st.Pixels += int64(f.NumPixels())
		st.Work += int64(f.NumPixels()) * ocrWorkDepth
		for _, det := range plateCells(f, &grid) {
			if s, ok := readPlate(f, det.X, det.Y); ok {
				out.Detections = append(out.Detections, Detection{PTS: f.PTS, Label: s, X: det.X, Y: det.Y})
			}
		}
	}
	return out, st
}

// readPlate scans rows around the normalised position for the plate's
// dark-interval structure and decodes the digits. The decode is
// self-calibrating: intervals are delimited by opposing significant
// gradients, so no assumption about the consumed resolution is needed.
func readPlate(f *frame.Frame, nx, ny float64) (string, bool) {
	cx := int(nx * float64(f.W))
	cy := int(ny * float64(f.H))
	// The search window scales with the frame: plates are ~1/6 of frame
	// width wide and a few pixels tall.
	rw := max(f.W/8, vidsim.PlateDigits+2)
	rh := max(f.H/10, 2)
	var best []byte
	for y := cy - rh; y <= cy+rh; y++ {
		if y < 1 || y >= f.H {
			continue
		}
		digits := decodeRow(f, y, max(cx-rw, 1), min(cx+rw, f.W))
		if len(digits) == vidsim.PlateDigits {
			best = digits
			break
		}
		if len(digits) > len(best) && len(digits) < vidsim.PlateDigits {
			// Keep partial reads only as evidence; they never decode.
			continue
		}
	}
	if len(best) != vidsim.PlateDigits {
		return "", false
	}
	return string(best), true
}

// decodeRow segments [x0,x1) of row y into dark intervals bounded by a
// significant negative gradient (drop into a dark column) and a significant
// positive one (rise into a separator), decoding each interval's minimum
// luma to a digit. Exactly PlateDigits consecutive intervals constitute a
// successful read.
func decodeRow(f *frame.Frame, y, x0, x1 int) []byte {
	row := y * f.W
	var digits []byte
	inDark := false
	minLuma := 255
	lastEdge := -1
	for x := x0; x < x1; x++ {
		g := int(f.Y[row+x]) - int(f.Y[row+x-1])
		switch {
		case g <= -sigGrad:
			inDark = true
			minLuma = int(f.Y[row+x])
			lastEdge = x
		case g >= sigGrad && inDark:
			digits = append(digits, nearestDigit(byte(minLuma)))
			if len(digits) == vidsim.PlateDigits {
				return digits
			}
			inDark = false
		default:
			if inDark {
				if v := int(f.Y[row+x]); v < minLuma {
					minLuma = v
				}
				// Abandon an interval that runs implausibly long: a shadow,
				// not a plate column.
				if lastEdge >= 0 && x-lastEdge > max(f.W/16, 6) {
					inDark = false
					digits = digits[:0]
				}
			}
		}
	}
	return digits
}

// nearestDigit inverts vidsim.DigitLuma.
func nearestDigit(v byte) byte {
	best, bestD := byte('0'), 256
	for d := byte('0'); d <= '9'; d++ {
		lv := int(vidsim.DigitLuma(d))
		diff := int(v) - lv
		if diff < 0 {
			diff = -diff
		}
		if diff < bestD {
			best, bestD = d, diff
		}
	}
	return best
}
