package ops

import "repro/internal/frame"

// Car bodies are solid fills that shift a cell's brightness away from the
// textured background, so the classifiers look for cells whose mean departs
// from the median cell mean (a robust background estimate). These constants
// are shared by S-NN and NN; NN differs by running convolutional feature
// passes first (real work standing in for deep layers), scanning a finer
// grid with a more permissive evidence rule, and classifying detections into
// cars and persons by spatial extent — which is what makes it both costlier
// and more discriminating on the same input.
const (
	carMeanDelta   = 14.0 // |cell mean − median cell mean| for an object cell
	snnCellDivisor = 9    // S-NN cell size: 2/3 of car height, so a car always covers a full cell
	nnCellDivisor  = 12   // NN cell size: half of S-NN's
	nnConvPasses   = 10   // NN convolutional feature passes per frame
	nnCarMinCells  = 4    // clusters at least this many cells wide are cars

	// Work depths (work units per pixel) model each operator's arithmetic
	// intensity on the virtual clock's reference hardware; a real deep
	// network does far more per pixel than the box-blur feature passes we
	// physically run. Calibrated so consumption speeds land in the paper's
	// Table 3 ranges: NN ~4-10× realtime at rich fidelity, S-NN in the
	// hundreds-to-thousands.
	snnWorkDepth = 12
	nnWorkDepth  = 588
)

// SNN is the specialised, very shallow network of NoScope's model search:
// a single-scale coarse scan that spots obvious cars cheaply.
type SNN struct{}

// Name implements Operator.
func (SNN) Name() string { return "S-NN" }

// Run implements Operator. S-NN scans horizontal bands for runs of columns
// whose band-mean departs from the band's median: a car is a wide run, and
// run geometry is expressed as frame fractions, so the detector is robust
// to the consumption resolution (it is the operator the paper assigns 200p
// inputs at every accuracy level).
func (SNN) Run(frames []*frame.Frame) (Output, Stats) {
	var out Output
	var st Stats
	var colMean, medBuf []float64 // per-band scratch reused across frames
	for _, f := range frames {
		out.PTS = append(out.PTS, f.PTS)
		st.Frames++
		st.Pixels += int64(f.NumPixels())
		st.Work += int64(f.NumPixels()) * snnWorkDepth
		var xs, ys []float64
		bandH := max(f.H/snnCellDivisor, 2)
		if cap(colMean) < f.W {
			colMean = make([]float64, f.W)
		}
		colMean = colMean[:f.W]
		for y0 := 0; y0+bandH <= f.H; y0 += bandH {
			for x := 0; x < f.W; x++ {
				var s int
				for y := y0; y < y0+bandH; y++ {
					s += int(f.Y[y*f.W+x])
				}
				colMean[x] = float64(s) / float64(bandH)
			}
			var bg float64
			bg, medBuf = medianInto(medBuf, colMean)
			minRun := max(f.W*8/100, 2) // cars are ~19% of frame width
			maxGap := max(minRun/2, 1)  // plates and roof stripes split runs
			run, gap := 0, 0
			for x := 0; x <= f.W; x++ {
				hit := false
				if x < f.W {
					d := colMean[x] - bg
					if d < 0 {
						d = -d
					}
					hit = d >= carMeanDelta
				}
				switch {
				case hit:
					run += 1 + gap
					gap = 0
				case run > 0 && gap < maxGap:
					gap++
				default:
					if run >= minRun {
						end := float64(x - gap)
						xs = append(xs, (end-float64(run)/2)/float64(f.W))
						ys = append(ys, (float64(y0)+float64(bandH)/2)/float64(f.H))
					}
					run, gap = 0, 0
				}
			}
			if run >= minRun {
				xs = append(xs, (float64(f.W)-float64(run)/2)/float64(f.W))
				ys = append(ys, (float64(y0)+float64(bandH)/2)/float64(f.H))
			}
		}
		// NoScope-style binary output: S-NN answers "does this frame
		// contain a car", not where. The paper's F1 for it is over these
		// per-frame binary labels.
		if len(xs) > 0 {
			out.Detections = append(out.Detections, Detection{PTS: f.PTS, Label: "car", X: 0.5, Y: 0.5})
		}
	}
	return out, st
}

// objCluster is a group of adjacent object-evidence cells.
type objCluster struct {
	x, y  float64
	cells int
}

// objectClusters applies the evidence rule over a stats grid and clusters
// adjacent hits. tighten scales the mean-delta requirement (NN uses <1 to
// catch fainter objects).
func objectClusters(g *cellStats, tighten float64) []objCluster {
	rowBG := g.rowMedianMean()
	var xs, ys []float64
	for c := range g.mean {
		dm := g.mean[c] - rowBG[c/g.cw]
		if dm < 0 {
			dm = -dm
		}
		if dm >= carMeanDelta*tighten {
			x, y := g.centre(c)
			xs = append(xs, x)
			ys = append(ys, y)
		}
	}
	// Cluster radius just over one cell pitch so touching cells merge.
	rx := 1.2 / float64(g.cw)
	ry := 1.2 / float64(g.ch)
	r := rx
	if ry > r {
		r = ry
	}
	return clusterPoints(xs, ys, r)
}

// clusterPoints greedily clusters points within radius (Chebyshev, against
// the running centroid) and returns centroid plus member count.
func clusterPoints(xs, ys []float64, radius float64) []objCluster {
	type acc struct {
		sx, sy float64
		n      int
	}
	var accs []acc
outer:
	for i := range xs {
		for j := range accs {
			mx := accs[j].sx / float64(accs[j].n)
			my := accs[j].sy / float64(accs[j].n)
			dx, dy := xs[i]-mx, ys[i]-my
			if dx < 0 {
				dx = -dx
			}
			if dy < 0 {
				dy = -dy
			}
			if dx <= radius && dy <= radius {
				accs[j].sx += xs[i]
				accs[j].sy += ys[i]
				accs[j].n++
				continue outer
			}
		}
		accs = append(accs, acc{xs[i], ys[i], 1})
	}
	out := make([]objCluster, 0, len(accs))
	for _, a := range accs {
		out = append(out, objCluster{x: a.sx / float64(a.n), y: a.sy / float64(a.n), cells: a.n})
	}
	return out
}

// NN is the generic full network (YOLOv2 in the paper): convolutional
// feature passes followed by a fine-grained scan whose clusters are
// classified by extent into cars and persons. Its per-pixel work is roughly
// two orders of magnitude above S-NN's, matching the paper's cost spread
// across a cascade. Because persons span only a cell or two, they vanish at
// low resolutions — NN's accuracy is the one that pays for cheap fidelity.
type NN struct{}

// Name implements Operator.
func (NN) Name() string { return "NN" }

// Run implements Operator.
func (NN) Run(frames []*frame.Frame) (Output, Stats) {
	var out Output
	var st Stats
	var feat, scratch []byte
	var grid cellStats // feature grid reused across frames (allocation economy)
	for _, f := range frames {
		out.PTS = append(out.PTS, f.PTS)
		st.Frames++
		n := f.NumPixels()
		st.Pixels += int64(n)
		st.Work += int64(n) * nnWorkDepth
		if cap(feat) < n {
			feat = make([]byte, n)
			scratch = make([]byte, n)
		}
		feat = feat[:n]
		scratch = scratch[:n]
		copy(feat, f.Y)
		// Feature extraction: repeated 3×3 passes denoise and pool context;
		// the blurred plane is what lets NN see fainter objects than S-NN.
		ff := &frame.Frame{W: f.W, H: f.H, Y: feat, Cb: f.Cb, Cr: f.Cr, PTS: f.PTS}
		for p := 0; p < nnConvPasses; p++ {
			boxBlur3(ff.Y, ff.W, ff.H, scratch)
		}
		grid.update(ff, max(ff.H/nnCellDivisor, 2))
		fine := &grid
		car, person := false, false
		for _, cl := range objectClusters(fine, 0.7) {
			if cl.cells >= nnCarMinCells {
				car = true
			} else {
				person = true
			}
		}
		// Binary per-class frame labels, as NoScope's evaluation defines
		// them. Low resolutions lose the person class first (persons span
		// too few cells), which is what degrades NN's accuracy on cheap
		// fidelity.
		if car {
			out.Detections = append(out.Detections, Detection{PTS: f.PTS, Label: "car", X: 0.5, Y: 0.5})
		}
		if person {
			out.Detections = append(out.Detections, Detection{PTS: f.PTS, Label: "person", X: 0.5, Y: 0.5})
		}
	}
	return out, st
}
