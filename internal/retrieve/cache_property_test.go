package retrieve

import (
	"fmt"
	"math/rand"
	"testing"
)

// checkCacheInvariants asserts the structural invariants every operation
// sequence must preserve: the byte budget holds, the byte account matches
// the resident entries, and the list and map agree.
func checkCacheInvariants(t *testing.T, c *Cache, step string) {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.bytes > c.budget {
		t.Fatalf("%s: Bytes %d > Budget %d", step, c.bytes, c.budget)
	}
	if c.ll.Len() != len(c.entries) {
		t.Fatalf("%s: list has %d entries, map %d", step, c.ll.Len(), len(c.entries))
	}
	var sum int64
	for el := c.ll.Front(); el != nil; el = el.Next() {
		ent := el.Value.(*cacheEntry)
		if got, ok := c.entries[ent.key]; !ok || got != el {
			t.Fatalf("%s: list entry %q not in map", step, ent.key)
		}
		sum += ent.bytes
	}
	if sum != c.bytes {
		t.Fatalf("%s: accounted %d bytes, entries hold %d", step, c.bytes, sum)
	}
	// Generation-state invariants: resident counts must match the entries
	// actually cached, counts never go negative, and a state nothing
	// references must have been pruned (the leak the per-dead-stream
	// generation map would otherwise grow).
	residents := map[string]int{}
	for el := c.ll.Front(); el != nil; el = el.Next() {
		residents[el.Value.(*cacheEntry).stream]++
	}
	for stream, st := range c.gens {
		if st.inflight < 0 {
			t.Fatalf("%s: stream %q inflight %d < 0", step, stream, st.inflight)
		}
		if st.residents != residents[stream] {
			t.Fatalf("%s: stream %q state claims %d residents, cache holds %d",
				step, stream, st.residents, residents[stream])
		}
		if st.inflight == 0 && st.residents == 0 {
			t.Fatalf("%s: stream %q generation state with no residents and no fills not pruned",
				step, stream)
		}
	}
	for stream, n := range residents {
		if n > 0 && c.gens[stream] == nil {
			t.Fatalf("%s: stream %q has %d residents but no generation state", step, stream, n)
		}
	}
}

// TestCacheGenerationStatePruned drives full miss→put / miss→abandon /
// generation→put cycles across many stream names and asserts the
// generation map ends empty: a deployment churning through stream names
// must not leak one state per dead stream.
func TestCacheGenerationStatePruned(t *testing.T) {
	unit := framesBytes(testFrames(1, 16, 16))
	c := NewCache(8 * unit)
	for i := 0; i < 200; i++ {
		stream := fmt.Sprintf("stream-%d", i)
		k := fmt.Sprintf("%s/0", stream)
		switch i % 3 {
		case 0: // miss → put → Invalidate
			if _, gen, ok := c.get(stream, k); !ok {
				c.put(stream, k, testFrames(1, 16, 16), gen)
			}
			c.Invalidate(stream)
		case 1: // miss → abandon (retrieval failed)
			if _, _, ok := c.get(stream, k); !ok {
				c.abandon(stream)
			}
		case 2: // direct fill via generation token, then Invalidate
			gen := c.generation(stream)
			c.put(stream, k, testFrames(1, 16, 16), gen)
			c.Invalidate(stream)
		}
		checkCacheInvariants(t, c, fmt.Sprintf("cycle %d", i))
	}
	c.mu.Lock()
	n := len(c.gens)
	c.mu.Unlock()
	if n != 0 {
		t.Fatalf("generation map holds %d states after full churn, want 0", n)
	}
}

// TestCachePropertyBudgetAndInvalidation drives the cache with random
// put / refresh / invalidate / resize / in-flight-fill sequences and
// asserts after every operation that Bytes <= Budget (the invariant the
// oversized-refresh bug broke), the byte accounting is exact, and that a
// stream's invalidation never drops another stream's in-flight fill (the
// invariant the global generation broke).
func TestCachePropertyBudgetAndInvalidation(t *testing.T) {
	streams := []string{"a", "b", "c"}
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			unit := framesBytes(testFrames(1, 16, 16))
			c := NewCache(int64(4+rng.Intn(8)) * unit)

			// In-flight fills: miss observed (generation captured), put not
			// yet issued — the state an Invalidate races against.
			type fill struct {
				stream, key string
				gen         int64
				invalidated bool // Invalidate(stream) ran after the miss
			}
			var fills []fill

			key := func(stream string, idx int) string { return fmt.Sprintf("%s/%d", stream, idx) }
			const ops = 400
			for op := 0; op < ops; op++ {
				stream := streams[rng.Intn(len(streams))]
				k := key(stream, rng.Intn(6))
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // direct put/refresh, occasionally oversized
					n := 1 + rng.Intn(4)
					if rng.Intn(8) == 0 {
						n = 64 // deliberately larger than any budget above
					}
					c.put(stream, k, testFrames(n, 16, 16), c.generation(stream))
				case 4, 5: // begin an in-flight fill (observe the miss)
					_, gen, ok := c.get(stream, k)
					if !ok {
						fills = append(fills, fill{stream: stream, key: k, gen: gen})
					}
				case 6: // complete a random in-flight fill
					if len(fills) == 0 {
						continue
					}
					i := rng.Intn(len(fills))
					f := fills[i]
					fills = append(fills[:i], fills[i+1:]...)
					_, _, before := c.get(f.stream, f.key)
					c.put(f.stream, f.key, testFrames(1, 16, 16), f.gen)
					_, _, resident := c.get(f.stream, f.key)
					if f.invalidated && !before && resident {
						t.Fatalf("op %d: fill for %s observed before Invalidate(%s) landed",
							op, f.key, f.stream)
					}
					// A non-invalidated fill must land unless the cache
					// evicted it for capacity — with 1-unit fills and a
					// >=4-unit budget the freshly-used entry survives.
					if !f.invalidated && !resident {
						t.Fatalf("op %d: fill for %s dropped without an Invalidate(%s) — "+
							"cross-stream invalidation starved it", op, f.key, f.stream)
					}
				case 7: // erosion: invalidate one stream
					c.Invalidate(stream)
					for i := range fills {
						if fills[i].stream == stream {
							fills[i].invalidated = true
						}
					}
				case 8: // operator resize
					c.Resize(int64(1+rng.Intn(10)) * unit)
				case 9: // plain lookup traffic
					c.get(stream, k)
				}
				checkCacheInvariants(t, c, fmt.Sprintf("op %d", op))
			}
		})
	}
}
