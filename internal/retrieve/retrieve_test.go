package retrieve

import (
	"testing"

	"repro/internal/codec"
	"repro/internal/format"
	"repro/internal/kvstore"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

var (
	s11  = format.Sampling{Num: 1, Den: 1}
	s16  = format.Sampling{Num: 1, Den: 6}
	s130 = format.Sampling{Num: 1, Den: 30}
)

func setup(t *testing.T) (*Retriever, format.StorageFormat, format.StorageFormat) {
	t.Helper()
	kv, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { kv.Close() })
	store := segment.NewStore(kv)
	src := vidsim.NewSource(vidsim.Datasets[0])

	encSF := format.StorageFormat{
		Fidelity: format.Fidelity{Quality: format.QGood, Crop: format.Crop100, Res: 540, Sampling: s11},
		Coding:   format.Coding{Speed: format.SpeedFast, KeyframeI: 10},
	}
	rawSF := format.StorageFormat{
		Fidelity: format.Fidelity{Quality: format.QBest, Crop: format.Crop100, Res: 200, Sampling: s11},
		Coding:   format.RawCoding,
	}
	for idx := 0; idx < 2; idx++ {
		full := src.Clip(idx*segment.Frames, segment.Frames)
		tw, th := vidsim.Dims(540)
		frames := codec.ApplyFidelity(full, encSF.Fidelity, tw, th)
		enc, _, err := codec.Encode(frames, codec.ParamsFor(encSF))
		if err != nil {
			t.Fatal(err)
		}
		if err := store.PutEncoded("cam", encSF, idx, enc); err != nil {
			t.Fatal(err)
		}
		tw, th = vidsim.Dims(200)
		raw := codec.ApplyFidelity(full, rawSF.Fidelity, tw, th)
		if err := store.PutRaw("cam", rawSF, idx, raw); err != nil {
			t.Fatal(err)
		}
	}
	return &Retriever{Store: store}, encSF, rawSF
}

func TestRetrieveEncodedSampled(t *testing.T) {
	r, encSF, _ := setup(t)
	cf := format.ConsumptionFormat{Fidelity: format.Fidelity{
		Quality: format.QGood, Crop: format.Crop100, Res: 200, Sampling: s16}}
	frames, st, err := r.Segment("cam", encSF, cf, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := segment.Frames / 6
	if len(frames) != want {
		t.Fatalf("got %d frames, want %d", len(frames), want)
	}
	tw, th := vidsim.Dims(200)
	for _, f := range frames {
		if f.W != tw || f.H != th {
			t.Fatalf("frame %dx%d, want %dx%d", f.W, f.H, tw, th)
		}
	}
	if st.VirtualSeconds <= 0 || st.BytesRead <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetrieveR1Enforced(t *testing.T) {
	r, encSF, _ := setup(t)
	cf := format.ConsumptionFormat{Fidelity: format.MaxFidelity()} // richer than stored
	if _, _, err := r.Segment("cam", encSF, cf, 0, nil); err == nil {
		t.Fatal("R1 violation accepted")
	}
}

func TestRawSparseCheaperThanFull(t *testing.T) {
	r, _, rawSF := setup(t)
	mk := func(s format.Sampling) format.ConsumptionFormat {
		return format.ConsumptionFormat{Fidelity: format.Fidelity{
			Quality: format.QBest, Crop: format.Crop100, Res: 200, Sampling: s}}
	}
	_, full, err := r.Segment("cam", rawSF, mk(s11), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, sparse, err := r.Segment("cam", rawSF, mk(s130), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sparse.BytesRead*10 > full.BytesRead {
		t.Fatalf("sparse raw read %d bytes, full %d: individual-frame sampling broken", sparse.BytesRead, full.BytesRead)
	}
	if sparse.VirtualSeconds >= full.VirtualSeconds {
		t.Fatal("sparse raw retrieval not faster than full")
	}
}

func TestWithinFilter(t *testing.T) {
	r, encSF, _ := setup(t)
	cf := format.ConsumptionFormat{Fidelity: format.Fidelity{
		Quality: format.QGood, Crop: format.Crop100, Res: 200, Sampling: s11}}
	within := func(pts int) bool { return pts >= 60 && pts < 90 }
	frames, _, err := r.Segment("cam", encSF, cf, 0, within)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 30 {
		t.Fatalf("filtered retrieval returned %d frames, want 30", len(frames))
	}
	for _, f := range frames {
		if !within(f.PTS) {
			t.Fatalf("frame PTS %d outside filter", f.PTS)
		}
	}
}

func TestQualityDowngradeOnConversion(t *testing.T) {
	r, _, rawSF := setup(t)
	cf := format.ConsumptionFormat{Fidelity: format.Fidelity{
		Quality: format.QWorst, Crop: format.Crop100, Res: 200, Sampling: s130}}
	frames, _, err := r.Segment("cam", rawSF, cf, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) == 0 {
		t.Fatal("no frames")
	}
	// Worst quality quantises to a step of 48: few distinct values remain.
	distinct := map[byte]bool{}
	for _, v := range frames[0].Y {
		distinct[v] = true
	}
	if len(distinct) > 8 {
		t.Fatalf("quality downgrade not applied: %d distinct luma values", len(distinct))
	}
}

func TestRangeSkipsMissingSegments(t *testing.T) {
	r, encSF, _ := setup(t)
	cf := format.ConsumptionFormat{Fidelity: format.Fidelity{
		Quality: format.QGood, Crop: format.Crop100, Res: 200, Sampling: s16}}
	// Segments 0..1 exist; 2..3 do not: Range must deliver what exists.
	frames, _, err := r.Range("cam", encSF, cf, 0, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * segment.Frames / 6; len(frames) != want {
		t.Fatalf("range returned %d frames, want %d", len(frames), want)
	}
}
