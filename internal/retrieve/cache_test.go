package retrieve

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/ingest"
	"repro/internal/kvstore"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

func testFrames(n, w, h int) []*frame.Frame {
	out := make([]*frame.Frame, n)
	for i := range out {
		out[i] = frame.New(w, h)
		out[i].PTS = i
	}
	return out
}

func framesBytes(fs []*frame.Frame) int64 {
	var b int64
	for _, f := range fs {
		b += int64(f.Bytes())
	}
	return b
}

func TestCacheLRUEviction(t *testing.T) {
	seg := testFrames(2, 32, 32)
	per := framesBytes(seg)
	c := NewCache(3 * per) // room for exactly three segments
	for i := 0; i < 3; i++ {
		c.put("s", fmt.Sprintf("s/%d", i), testFrames(2, 32, 32), c.generation("s"))
	}
	if st := c.Stats(); st.Entries != 3 || st.Evictions != 0 || st.Bytes != 3*per {
		t.Fatalf("after 3 puts: %+v", st)
	}
	// Touch entry 0 so entry 1 is the LRU victim.
	if _, _, ok := c.get("s", "s/0"); !ok {
		t.Fatal("entry 0 missing")
	}
	c.put("s", "s/3", testFrames(2, 32, 32), c.generation("s"))
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 || st.Bytes > st.Budget {
		t.Fatalf("after eviction: %+v", st)
	}
	if _, _, ok := c.get("s", "s/1"); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	if _, _, ok := c.get("s", "s/0"); !ok {
		t.Fatal("recently used entry 0 was evicted")
	}
}

func TestCacheByteBudgetHeld(t *testing.T) {
	per := framesBytes(testFrames(1, 64, 64))
	c := NewCache(5*per + per/2)
	for i := 0; i < 20; i++ {
		c.put("s", fmt.Sprintf("s/%d", i), testFrames(1, 64, 64), c.generation("s"))
		if st := c.Stats(); st.Bytes > st.Budget {
			t.Fatalf("budget exceeded at put %d: %+v", i, st)
		}
	}
	st := c.Stats()
	if st.Entries != 5 || st.Evictions != 15 {
		t.Fatalf("final state: %+v", st)
	}
}

func TestCacheOversizedEntryNotCached(t *testing.T) {
	small := testFrames(1, 16, 16)
	c := NewCache(framesBytes(small))
	c.put("s", "big", testFrames(8, 64, 64), c.generation("s"))
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("oversized entry cached: %+v", st)
	}
	c.put("s", "small", small, c.generation("s"))
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("small entry rejected: %+v", st)
	}
}

// TestCacheOversizedRefreshRejected is the budget regression: refreshing
// an EXISTING key with frames larger than the whole budget used to skip
// the oversize reject (insert-only) and then could not evict the last
// entry (the loop stopped at Len() > 1), pinning Bytes > Budget forever.
// An oversize refresh must leave the cache within budget, with the stale
// resident entry dropped rather than served.
func TestCacheOversizedRefreshRejected(t *testing.T) {
	small := testFrames(1, 16, 16)
	c := NewCache(2 * framesBytes(small))
	c.put("s", "s/0", small, c.generation("s"))
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("seed entry missing: %+v", st)
	}
	// Refresh the same key with an over-budget frame set.
	c.put("s", "s/0", testFrames(8, 64, 64), c.generation("s"))
	st := c.Stats()
	if st.Bytes > st.Budget {
		t.Fatalf("oversized refresh pinned the cache over budget: %+v", st)
	}
	if st.Entries != 0 {
		t.Fatalf("oversized refresh left a resident entry: %+v", st)
	}
	// The cache still works afterwards.
	c.put("s", "s/0", testFrames(1, 16, 16), c.generation("s"))
	if st := c.Stats(); st.Entries != 1 || st.Bytes > st.Budget {
		t.Fatalf("cache unusable after oversized refresh: %+v", st)
	}
}

// TestCacheInvalidateIsStreamScoped is the cross-stream regression: the
// generation used to be global, so eroding stream A dropped every
// in-flight fill for streams B, C, … — a periodic erosion daemon would
// starve the whole cache. A fill for B whose miss was observed before
// Invalidate(A) must still land; a fill for A must still be dropped.
func TestCacheInvalidateIsStreamScoped(t *testing.T) {
	c := NewCache(1 << 20)
	c.put("a", "a/0", testFrames(1, 16, 16), c.generation("a"))
	c.put("b", "b/0", testFrames(1, 16, 16), c.generation("b"))

	// Two fills in flight — one per stream — when A is eroded.
	_, genA, _ := c.get("a", "a/1")
	_, genB, _ := c.get("b", "b/1")
	c.Invalidate("a")

	if _, _, ok := c.get("b", "b/0"); !ok {
		t.Fatal("invalidating a dropped b's resident entry")
	}
	c.put("a", "a/1", testFrames(1, 16, 16), genA)
	if _, _, ok := c.get("a", "a/1"); ok {
		t.Fatal("stale fill for the invalidated stream landed")
	}
	c.put("b", "b/1", testFrames(1, 16, 16), genB)
	if _, _, ok := c.get("b", "b/1"); !ok {
		t.Fatal("cross-stream fill dropped by another stream's invalidation")
	}
}

func TestCacheResizeAndInvalidate(t *testing.T) {
	per := framesBytes(testFrames(1, 32, 32))
	c := NewCache(4 * per)
	for i := 0; i < 4; i++ {
		c.put("cam", fmt.Sprintf("cam/%d", i), testFrames(1, 32, 32), c.generation("cam"))
	}
	c.put("other", "other/0", testFrames(1, 32, 32), c.generation("other")) // evicts one cam entry
	c.Resize(2 * per)
	if st := c.Stats(); st.Bytes > 2*per {
		t.Fatalf("resize did not evict: %+v", st)
	}
	c.Invalidate("cam")
	for i := 0; i < 4; i++ {
		if _, _, ok := c.get("cam", fmt.Sprintf("cam/%d", i)); ok {
			t.Fatalf("cam/%d survived invalidation", i)
		}
	}
}

// TestCacheStalePutDropped covers the erosion race: a retrieval that
// observed its miss before an Invalidate must not repopulate the cache
// with pre-invalidation frames.
func TestCacheStalePutDropped(t *testing.T) {
	c := NewCache(1 << 20)
	gen := c.generation("cam") // miss observed here...
	c.Invalidate("cam")        // ...erosion invalidates while retrieval is in flight
	c.put("cam", "cam/0", testFrames(1, 16, 16), gen)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("stale put survived invalidation: %+v", st)
	}
	c.put("cam", "cam/0", testFrames(1, 16, 16), c.generation("cam"))
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("fresh put rejected: %+v", st)
	}
}

// TestCacheInvalidateCountsMisses pins the post-erosion contract the
// background erosion daemon relies on: after Invalidate, lookups for the
// stream register as misses (never hits), exactly what the server's
// hit/miss counters surface after a daemon pass.
func TestCacheInvalidateCountsMisses(t *testing.T) {
	c := NewCache(1 << 20)
	c.put("cam", "cam/0", testFrames(1, 16, 16), c.generation("cam"))
	if _, _, ok := c.get("cam", "cam/0"); !ok {
		t.Fatal("warm entry missing")
	}
	before := c.Stats()
	c.Invalidate("cam") // one erosion-daemon pass
	if _, _, ok := c.get("cam", "cam/0"); ok {
		t.Fatal("eroded stream served from cache")
	}
	after := c.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses+1 {
		t.Fatalf("counters after invalidation: %+v -> %+v", before, after)
	}
	// Repeated passes keep advancing the generation: each drops the puts
	// of retrievals that began before it.
	gen := c.generation("cam")
	c.Invalidate("cam")
	c.Invalidate("cam")
	c.put("cam", "cam/0", testFrames(1, 16, 16), gen)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("put from before two passes survived: %+v", st)
	}
}

// TestRetrieverErodedSegmentNeverServedFromCache is the belt-and-braces
// regression behind the daemon: even if an eroded segment's frames were
// still resident (an invalidation raced or was skipped), the retriever
// checks visibility BEFORE the cache, so the segment reads as gone rather
// than serving stale bytes.
func TestRetrieverErodedSegmentNeverServedFromCache(t *testing.T) {
	kv, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	store := segment.NewStore(kv)
	sc, err := vidsim.DatasetByName("jackson")
	if err != nil {
		t.Fatal(err)
	}
	sf := format.StorageFormat{Fidelity: format.MaxFidelity(), Coding: format.Coding{Speed: format.SpeedFastest, KeyframeI: 30}}
	ing := ingest.Ingester{Store: store, SFs: []format.StorageFormat{sf}}
	if _, err := ing.Stream(sc, "cam", 0, 1); err != nil {
		t.Fatal(err)
	}
	cf := format.ConsumptionFormat{Fidelity: format.MaxFidelity()}
	r := Retriever{Store: store, Cache: NewCache(1 << 30)}
	if _, _, err := r.Segment("cam", sf, cf, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Erode the segment physically but deliberately do NOT invalidate the
	// cache: its frames are still resident under the segment's key.
	if err := store.Delete("cam", sf, 0); err != nil {
		t.Fatal(err)
	}
	before := r.Cache.Stats()
	if _, _, err := r.Segment("cam", sf, cf, 0, nil); !errors.Is(err, segment.ErrNotFound) {
		t.Fatalf("eroded segment retrieval = %v, want ErrNotFound", err)
	}
	after := r.Cache.Stats()
	if after.Hits != before.Hits {
		t.Fatal("eroded segment served from cache")
	}
}

func TestNewCacheZeroBudgetDisabled(t *testing.T) {
	c := NewCache(0)
	if c != nil {
		t.Fatal("zero budget should return the nil no-cache sentinel")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats: %+v", st)
	}
}

// TestRetrieverCacheHit exercises the cache through the real retrieval
// path: the second identical retrieval must hit, deliver identical frames,
// and report no disk bytes read.
func TestRetrieverCacheHit(t *testing.T) {
	kv, err := kvstore.Open(t.TempDir(), kvstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	store := segment.NewStore(kv)
	sc, err := vidsim.DatasetByName("jackson")
	if err != nil {
		t.Fatal(err)
	}
	sf := format.StorageFormat{Fidelity: format.MaxFidelity(), Coding: format.Coding{Speed: format.SpeedSlowest, KeyframeI: 30}}
	ing := ingest.Ingester{Store: store, SFs: []format.StorageFormat{sf}}
	if _, err := ing.Stream(sc, "cam", 0, 1); err != nil {
		t.Fatal(err)
	}
	cf := format.ConsumptionFormat{Fidelity: format.MaxFidelity()}
	r := Retriever{Store: store, Cache: NewCache(1 << 30)}

	miss, mst, err := r.Segment("cam", sf, cf, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Cache.Stats(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after miss: %+v", st)
	}
	hit, hst, err := r.Segment("cam", sf, cf, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Cache.Stats(); st.Hits != 1 {
		t.Fatalf("after hit: %+v", st)
	}
	if hst.BytesRead != 0 || hst.VirtualSeconds != 0 {
		t.Fatalf("hit reported retrieval cost: %+v", hst)
	}
	if mst.BytesRead == 0 {
		t.Fatalf("miss reported no disk traffic: %+v", mst)
	}
	if len(hit) != len(miss) {
		t.Fatalf("hit delivered %d frames, miss %d", len(hit), len(miss))
	}
	for i := range hit {
		if !frame.Equal(hit[i], miss[i]) {
			t.Fatalf("frame %d: cache returned different pixels", i)
		}
		if hit[i] == miss[i] {
			t.Fatalf("frame %d: owned-delivery boundary returned a shared frame", i)
		}
	}
	// The zero-copy engine path (SegmentTagged) shares the cached set
	// across hits: same frames, no copies.
	t1, _, err := r.SegmentTagged("cam", sf, cf, 0, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := r.SegmentTagged("cam", sf, cf, 0, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("frame %d: tagged hits did not share the cached frame", i)
		}
	}
	// Filtered retrievals bypass the cache: no new hits or misses.
	before := r.Cache.Stats()
	if _, _, err := r.Segment("cam", sf, cf, 0, func(pts int) bool { return pts%2 == 0 }); err != nil {
		t.Fatal(err)
	}
	after := r.Cache.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("filtered retrieval touched the cache: %+v -> %+v", before, after)
	}
}
