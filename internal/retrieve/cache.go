package retrieve

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/format"
	"repro/internal/frame"
)

// CacheStats reports a retrieval cache's activity and occupancy.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Bytes     int64 // bytes of cached frames
	Entries   int
	Budget    int64
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheEntry struct {
	key    string
	stream string
	frames []*frame.Frame
	bytes  int64
}

// Cache is an LRU cache of retrieved segments in their consumption format,
// keyed by (stream, segment, storage format, consumption format), bounded by
// a byte budget. It sits in front of the store so repeated queries skip
// decode and fidelity conversion entirely — the consumption-format caching
// that VSS (Haynes et al., 2021) showed cuts retrieval latency.
//
// Cached frames are shared between callers and must be treated as
// immutable. Operators only read the frames they consume, preserving the
// invariant. All methods are safe for concurrent use.
type Cache struct {
	mu        sync.Mutex
	budget    int64
	ll        *list.List // front = most recently used; values are *cacheEntry
	entries   map[string]*list.Element
	bytes     int64
	hits      int64
	misses    int64
	evictions int64
	// gens holds one invalidation state per stream: the generation
	// Invalidate(stream) bumps — put drops fills whose retrieval began
	// before the bump, so an in-flight retrieval racing an erosion cannot
	// repopulate the cache with pre-erosion frames, while fills for OTHER
	// streams land unharmed (a single global generation would let one
	// stream's erosion daemon starve every other stream's fills) — plus
	// the reference counts that let the state be PRUNED: an entry exists
	// only while the stream has resident entries or in-flight fills, so a
	// deployment churning through stream names cannot leak one generation
	// per dead stream forever. Pruning is safe exactly under that rule:
	// with no token outstanding, no later put can mistake a re-created
	// zero generation for the one it observed.
	gens map[string]*streamState
}

// streamState is one stream's invalidation generation and what pins it.
type streamState struct {
	gen       int64
	inflight  int // get misses (and generation calls) awaiting their put
	residents int // cached entries of this stream
}

// NewCache returns a cache bounded by budgetBytes of frame data. A budget
// of zero or less returns nil: the no-cache sentinel every lookup path
// accepts.
func NewCache(budgetBytes int64) *Cache {
	if budgetBytes <= 0 {
		return nil
	}
	return &Cache{
		budget:  budgetBytes,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		gens:    make(map[string]*streamState),
	}
}

func cacheKey(stream string, sf format.StorageFormat, cf format.ConsumptionFormat, idx int) string {
	return fmt.Sprintf("%s/%s/%s/%d", stream, sf.Key(), cf.Fidelity.Key(), idx)
}

// get returns the cached frames for key, marking the entry most recently
// used. Misses are counted here, so only cacheable lookups count. stream is
// the key's stream: on a miss the returned generation is the stream's
// in-flight-fill token, and the caller MUST balance the miss with exactly
// one put (landing the fill) or abandon (discarding it) — the token pins
// the stream's generation state against pruning until then.
func (c *Cache) get(stream, key string) ([]*frame.Frame, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		st := c.stateLocked(stream)
		st.inflight++
		return nil, st.gen, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	var gen int64
	if st := c.gens[stream]; st != nil {
		gen = st.gen
	}
	return el.Value.(*cacheEntry).frames, gen, true
}

// put inserts (or refreshes) the frames under key and evicts least recently
// used entries until the byte budget holds. An entry larger than the whole
// budget is never cached — inserts AND refreshes: a refresh that grew past
// the budget additionally drops the resident entry, since the two
// deliveries disagree and the new one cannot be held. gen is the stream's
// generation get returned when the miss was observed: if Invalidate ran on
// this stream in between, the retrieval may predate a deletion and is
// silently dropped; other streams' invalidations never drop this fill.
func (c *Cache) put(stream, key string, frames []*frame.Frame, gen int64) {
	var bytes int64
	for _, f := range frames {
		bytes += int64(f.Bytes())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stateLocked(stream)
	if st.inflight > 0 {
		st.inflight--
	}
	if gen != st.gen {
		c.pruneLocked(stream)
		return
	}
	el, ok := c.entries[key]
	if bytes > c.budget {
		if ok {
			c.removeLocked(el)
			c.evictions++
		}
		c.pruneLocked(stream)
		return
	}
	if ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += bytes - ent.bytes
		ent.frames, ent.bytes = frames, bytes
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, stream: stream, frames: frames, bytes: bytes})
		c.bytes += bytes
		st.residents++
	}
	// Same semantics as Resize: evict down to the budget, the last entry
	// included. (An earlier Len() > 1 guard here let one oversized refresh
	// pin Bytes > Budget forever.) The loop can never evict the entry just
	// written: it sits at the front, and once it is the only entry left,
	// bytes <= budget guarantees the loop has terminated.
	for c.bytes > c.budget && c.ll.Len() > 0 {
		c.evictOldest()
	}
}

// abandon balances a get miss whose fill will never arrive (the read or
// decode errored). Without it the phantom in-flight fill would pin the
// stream's generation state forever.
func (c *Cache) abandon(stream string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.gens[stream]; st != nil {
		if st.inflight > 0 {
			st.inflight--
		}
		c.pruneLocked(stream)
	}
}

// stateLocked returns the stream's generation state, creating it at
// generation zero — safe because pruning only runs with no fill token
// outstanding, so no stale token can match the fresh zero. Caller holds mu.
func (c *Cache) stateLocked(stream string) *streamState {
	st := c.gens[stream]
	if st == nil {
		st = &streamState{}
		c.gens[stream] = st
	}
	return st
}

// pruneLocked drops the stream's generation state once neither residents
// nor in-flight fills reference it. Caller holds mu.
func (c *Cache) pruneLocked(stream string) {
	if st := c.gens[stream]; st != nil && st.inflight == 0 && st.residents == 0 {
		delete(c.gens, stream)
	}
}

// evictOldest drops the least recently used entry. Caller holds mu.
func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.removeLocked(el)
	c.evictions++
}

// removeLocked unlinks one entry from the list, the map and the byte
// account, releasing its pin on the stream's generation state. Caller
// holds mu.
func (c *Cache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.entries, ent.key)
	c.bytes -= ent.bytes
	if st := c.gens[ent.stream]; st != nil {
		st.residents--
		c.pruneLocked(ent.stream)
	}
}

// Resize changes the byte budget, evicting as needed to honour a smaller
// one.
func (c *Cache) Resize(budgetBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = budgetBytes
	for c.bytes > c.budget && c.ll.Len() > 0 {
		c.evictOldest()
	}
}

// Invalidate drops every cached segment of the stream, in any format, and
// bumps the stream's generation so in-flight fills for it are dropped at
// put. Used after erosion or deletion changes what the store would return.
// Other streams are untouched: their entries stay resident and their
// in-flight fills still land. With no fills in flight the stream's
// generation state is pruned outright — nothing can reference the old
// generation, and keeping it would leak one entry per dead stream.
func (c *Cache) Invalidate(stream string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.gens[stream]; st != nil {
		st.gen++
	}
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if el.Value.(*cacheEntry).stream == stream {
			c.removeLocked(el)
		}
		el = next
	}
	c.pruneLocked(stream)
}

// generation returns the stream's current invalidation generation: the
// token a direct put must carry, observed before the retrieval it caches
// began. Like a get miss, it registers an in-flight fill that MUST be
// balanced by exactly one put or abandon.
func (c *Cache) generation(stream string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stateLocked(stream)
	st.inflight++
	return st.gen
}

// Stats returns a snapshot of the cache counters. A nil cache reports
// zeroes, so callers need not special-case the disabled state.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   c.ll.Len(),
		Budget:    c.budget,
	}
}
