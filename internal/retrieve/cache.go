package retrieve

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/format"
	"repro/internal/frame"
)

// CacheStats reports a retrieval cache's activity and occupancy.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Bytes     int64 // bytes of cached frames
	Entries   int
	Budget    int64
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheEntry struct {
	key    string
	frames []*frame.Frame
	bytes  int64
}

// Cache is an LRU cache of retrieved segments in their consumption format,
// keyed by (stream, segment, storage format, consumption format), bounded by
// a byte budget. It sits in front of the store so repeated queries skip
// decode and fidelity conversion entirely — the consumption-format caching
// that VSS (Haynes et al., 2021) showed cuts retrieval latency.
//
// Cached frames are shared between callers and must be treated as
// immutable. Operators only read the frames they consume, preserving the
// invariant. All methods are safe for concurrent use.
type Cache struct {
	mu        sync.Mutex
	budget    int64
	ll        *list.List // front = most recently used; values are *cacheEntry
	entries   map[string]*list.Element
	bytes     int64
	hits      int64
	misses    int64
	evictions int64
	// gens holds one invalidation generation per stream, bumped by
	// Invalidate(stream). put drops fills whose retrieval began before the
	// bump, so an in-flight retrieval racing an erosion cannot repopulate
	// the cache with pre-erosion frames — while fills for OTHER streams,
	// whose segments the erosion never touched, land unharmed. (A single
	// global generation here would make one stream's erosion daemon starve
	// every other stream's cache fills under live multi-stream serving.)
	gens map[string]int64
}

// NewCache returns a cache bounded by budgetBytes of frame data. A budget
// of zero or less returns nil: the no-cache sentinel every lookup path
// accepts.
func NewCache(budgetBytes int64) *Cache {
	if budgetBytes <= 0 {
		return nil
	}
	return &Cache{
		budget:  budgetBytes,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
		gens:    make(map[string]int64),
	}
}

func cacheKey(stream string, sf format.StorageFormat, cf format.ConsumptionFormat, idx int) string {
	return fmt.Sprintf("%s/%s/%s/%d", stream, sf.Key(), cf.Fidelity.Key(), idx)
}

// get returns the cached frames for key, marking the entry most recently
// used. Misses are counted here, so only cacheable lookups count. stream is
// the key's stream: the returned generation is the stream's, and must
// accompany the put that fills the miss.
func (c *Cache) get(stream, key string) ([]*frame.Frame, int64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, c.gens[stream], false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).frames, c.gens[stream], true
}

// put inserts (or refreshes) the frames under key and evicts least recently
// used entries until the byte budget holds. An entry larger than the whole
// budget is never cached — inserts AND refreshes: a refresh that grew past
// the budget additionally drops the resident entry, since the two
// deliveries disagree and the new one cannot be held. gen is the stream's
// generation get returned when the miss was observed: if Invalidate ran on
// this stream in between, the retrieval may predate a deletion and is
// silently dropped; other streams' invalidations never drop this fill.
func (c *Cache) put(stream, key string, frames []*frame.Frame, gen int64) {
	var bytes int64
	for _, f := range frames {
		bytes += int64(f.Bytes())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if gen != c.gens[stream] {
		return
	}
	el, ok := c.entries[key]
	if bytes > c.budget {
		if ok {
			c.removeLocked(el)
			c.evictions++
		}
		return
	}
	if ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += bytes - ent.bytes
		ent.frames, ent.bytes = frames, bytes
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, frames: frames, bytes: bytes})
		c.bytes += bytes
	}
	// Same semantics as Resize: evict down to the budget, the last entry
	// included. (An earlier Len() > 1 guard here let one oversized refresh
	// pin Bytes > Budget forever.) The loop can never evict the entry just
	// written: it sits at the front, and once it is the only entry left,
	// bytes <= budget guarantees the loop has terminated.
	for c.bytes > c.budget && c.ll.Len() > 0 {
		c.evictOldest()
	}
}

// evictOldest drops the least recently used entry. Caller holds mu.
func (c *Cache) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.removeLocked(el)
	c.evictions++
}

// removeLocked unlinks one entry from the list, the map and the byte
// account. Caller holds mu.
func (c *Cache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.entries, ent.key)
	c.bytes -= ent.bytes
}

// Resize changes the byte budget, evicting as needed to honour a smaller
// one.
func (c *Cache) Resize(budgetBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = budgetBytes
	for c.bytes > c.budget && c.ll.Len() > 0 {
		c.evictOldest()
	}
}

// Invalidate drops every cached segment of the stream, in any format, and
// bumps the stream's generation so in-flight fills for it are dropped at
// put. Used after erosion or deletion changes what the store would return.
// Other streams are untouched: their entries stay resident and their
// in-flight fills still land.
func (c *Cache) Invalidate(stream string) {
	prefix := stream + "/"
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gens[stream]++
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		ent := el.Value.(*cacheEntry)
		if len(ent.key) > len(prefix) && ent.key[:len(prefix)] == prefix {
			c.removeLocked(el)
		}
		el = next
	}
}

// generation returns the stream's current invalidation generation: the
// token a direct put must carry, observed before the retrieval it caches
// began.
func (c *Cache) generation(stream string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gens[stream]
}

// Stats returns a snapshot of the cache counters. A nil cache reports
// zeroes, so callers need not special-case the disabled state.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Bytes:     c.bytes,
		Entries:   c.ll.Len(),
		Budget:    c.budget,
	}
}
