// Aliasing-safety suite for the zero-copy read path: delivered frames may
// share storage with the retrieval cache and with decoder arenas, and the
// public Segment/Range boundary hands out owned copies — so mutating what
// a caller was given must never change what anyone else reads. Run under
// -race via the repo's race job.
package retrieve

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/sched"
	"repro/internal/segment"
)

func aliasSetup(t *testing.T) (*Retriever, format.StorageFormat) {
	t.Helper()
	r, encSF, _ := setup(t)
	r.Cache = NewCache(1 << 30)
	return r, encSF
}

var aliasCF = format.ConsumptionFormat{Fidelity: format.Fidelity{
	Quality: format.QGood, Crop: format.Crop100, Res: 540, Sampling: s11}}

func scribble(frames []*frame.Frame) {
	for _, f := range frames {
		for i := range f.Y {
			f.Y[i] ^= 0xFF
		}
		for i := range f.Cb {
			f.Cb[i] ^= 0xFF
		}
		for i := range f.Cr {
			f.Cr[i] ^= 0xFF
		}
		f.PTS = -1
	}
}

func golden(t *testing.T, r *Retriever, sf format.StorageFormat) []*frame.Frame {
	t.Helper()
	// A cache-bypassing, pooling-free reference copy of the segment.
	prev := codec.SetPooling(false)
	defer codec.SetPooling(prev)
	plain := &Retriever{Store: r.Store}
	ref, _, err := plain.Segment("cam", sf, aliasCF, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestMutateOwnedDeliveryLeavesCachePristine scribbles over frames
// returned by the owned-delivery boundary (Segment) — both the miss that
// populated the cache and a subsequent hit — and asserts the cached
// segment still serves the original bytes.
func TestMutateOwnedDeliveryLeavesCachePristine(t *testing.T) {
	r, sf := aliasSetup(t)
	ref := golden(t, r, sf)

	miss, _, err := r.Segment("cam", sf, aliasCF, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	scribble(miss)
	hit, _, err := r.Segment("cam", sf, aliasCF, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	scribble(hit)
	if st := r.Cache.Stats(); st.Hits == 0 {
		t.Fatalf("second retrieval did not hit the cache: %+v", st)
	}
	// The engine-path view of the cache must be untouched.
	shared, _, err := r.SegmentTagged("cam", sf, aliasCF, 0, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, shared, ref)
}

// TestMutatePooledDecodeOutputLeavesStorePristine scribbles over frames
// produced by the pooled decoder via an uncached retrieval, then re-runs
// the retrieval (pooled scratch now recycled) and asserts byte-identical
// delivery.
func TestMutatePooledDecodeOutputLeavesStorePristine(t *testing.T) {
	r, sf := aliasSetup(t)
	r.Cache = nil // exercise the raw decode path, no cache in front
	first, _, err := r.Segment("cam", sf, aliasCF, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := golden(t, r, sf)
	scribble(first)
	again, _, err := r.Segment("cam", sf, aliasCF, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, again, ref)
}

// TestPoolReuseDeterminism runs the same retrieval through GOP-parallel
// decode at workers {1, 2, 8}, with pooling on and off, and asserts every
// combination delivers byte-identical frames and stats.
func TestPoolReuseDeterminism(t *testing.T) {
	r, sf := aliasSetup(t)
	r.Cache = nil
	cf := format.ConsumptionFormat{Fidelity: format.Fidelity{
		Quality: format.QGood, Crop: format.Crop100, Res: 200, Sampling: s16}}
	ref, refSt, err := r.SegmentTagged("cam", sf, cf, 0, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	defer codec.SetPooling(codec.SetPooling(true))
	for _, pooling := range []bool{true, false} {
		codec.SetPooling(pooling)
		for _, workers := range []int{1, 2, 8} {
			rr := &Retriever{Store: r.Store, DecodePool: sched.NewPool(workers)}
			for pass := 0; pass < 2; pass++ { // second pass rides recycled buffers
				got, st, err := rr.SegmentTagged("cam", sf, cf, 0, nil, "")
				if err != nil {
					t.Fatalf("pooling=%v workers=%d: %v", pooling, workers, err)
				}
				if st != refSt {
					t.Fatalf("pooling=%v workers=%d: stats %+v != %+v", pooling, workers, st, refSt)
				}
				assertFramesEqual(t, got, ref)
			}
		}
	}
}

// TestConcurrentSharedHitsWithMutatingOwner hammers the cache with
// concurrent zero-copy readers while an owned-delivery caller keeps
// scribbling on its copies — the race job proves no write ever lands on
// shared planes.
func TestConcurrentSharedHitsWithMutatingOwner(t *testing.T) {
	r, sf := aliasSetup(t)
	ref := golden(t, r, sf)
	if _, _, err := r.SegmentTagged("cam", sf, aliasCF, 0, nil, ""); err != nil {
		t.Fatal(err) // warm the cache
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				shared, _, err := r.SegmentTagged("cam", sf, aliasCF, 0, nil, "")
				if err != nil {
					errc <- err
					return
				}
				if !frame.Equal(shared[0], ref[0]) {
					errc <- errFrameCorrupted
					return
				}
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				owned, _, err := r.Segment("cam", sf, aliasCF, 0, nil)
				if err != nil {
					errc <- err
					return
				}
				scribble(owned)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	shared, _, err := r.SegmentTagged("cam", sf, aliasCF, 0, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, shared, ref)
}

// TestRangeOwnedDelivery mirrors the Segment boundary test for Range.
func TestRangeOwnedDelivery(t *testing.T) {
	r, sf := aliasSetup(t)
	got, _, err := r.Range("cam", sf, aliasCF, 0, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2*segment.Frames {
		t.Fatalf("range delivered %d frames", len(got))
	}
	scribble(got)
	ref := golden(t, r, sf)
	shared, _, err := r.SegmentTagged("cam", sf, aliasCF, 0, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	assertFramesEqual(t, shared, ref)
}

var errFrameCorrupted = errors.New("concurrent reader observed corrupted cached frame")

func assertFramesEqual(t *testing.T, got, want []*frame.Frame) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d frames, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].PTS != want[i].PTS {
			t.Fatalf("frame %d: PTS %d != %d", i, got[i].PTS, want[i].PTS)
		}
		if !frame.Equal(got[i], want[i]) {
			t.Fatalf("frame %d (pts %d): pixels differ", i, got[i].PTS)
		}
	}
}
