package retrieve

import (
	"os"
	"sync"
	"testing"

	"repro/internal/codec"
	"repro/internal/format"
	"repro/internal/kvstore"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

// The benchmark store is built once per process: encoding the fixture
// segments costs far more than the retrievals being measured.
var (
	benchOnce  sync.Once
	benchStore *segment.Store
	benchSF    format.StorageFormat
	benchErr   error
)

const benchSegs = 2

func benchSetup(b *testing.B) (*segment.Store, format.StorageFormat) {
	b.Helper()
	benchOnce.Do(func() {
		dir, err := os.MkdirTemp("", "retrieve-bench-*")
		if err != nil {
			benchErr = err
			return
		}
		kv, err := kvstore.Open(dir, kvstore.Options{})
		if err != nil {
			benchErr = err
			return
		}
		store := segment.NewStore(kv)
		src := vidsim.NewSource(vidsim.Datasets[0])
		sf := format.StorageFormat{
			Fidelity: format.Fidelity{Quality: format.QGood, Crop: format.Crop100, Res: 540, Sampling: s11},
			Coding:   format.Coding{Speed: format.SpeedFast, KeyframeI: 10},
		}
		tw, th := vidsim.Dims(540)
		for idx := 0; idx < benchSegs; idx++ {
			full := src.Clip(idx*segment.Frames, segment.Frames)
			frames := codec.ApplyFidelity(full, sf.Fidelity, tw, th)
			enc, _, err := codec.Encode(frames, codec.ParamsFor(sf))
			if err != nil {
				benchErr = err
				return
			}
			if err := store.PutEncoded("cam", sf, idx, enc); err != nil {
				benchErr = err
				return
			}
		}
		benchStore, benchSF = store, sf
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchStore, benchSF
}

func benchRetrieve(b *testing.B, cf format.ConsumptionFormat, cacheBytes int64) {
	store, sf := benchSetup(b)
	r := &Retriever{Store: store, Cache: NewCache(cacheBytes)}
	frames, _, err := r.SegmentTagged("cam", sf, cf, 0, nil, "")
	if err != nil {
		b.Fatal(err)
	}
	var bytes int64
	for _, f := range frames {
		bytes += int64(f.Bytes())
	}
	b.SetBytes(bytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.SegmentTagged("cam", sf, cf, 0, nil, ""); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetrieveSegment is the headline retrieval benchmark: one
// 8-second encoded segment decoded and converted to its consumption
// format. cold decodes on every iteration (no cache); warm serves the
// steady state from the retrieval cache; identity-cf decodes with a
// consumption format whose fidelity matches the storage format exactly,
// the case the fast path delivers without conversion work.
func BenchmarkRetrieveSegment(b *testing.B) {
	downCF := format.ConsumptionFormat{Fidelity: format.Fidelity{
		Quality: format.QGood, Crop: format.Crop100, Res: 200, Sampling: s11}}
	idCF := format.ConsumptionFormat{Fidelity: format.Fidelity{
		Quality: format.QGood, Crop: format.Crop100, Res: 540, Sampling: s11}}
	b.Run("cold", func(b *testing.B) { benchRetrieve(b, downCF, 0) })
	b.Run("warm", func(b *testing.B) { benchRetrieve(b, downCF, 1<<30) })
	b.Run("identity-cf", func(b *testing.B) { benchRetrieve(b, idCF, 0) })
}

// BenchmarkRetrieveSparse samples 1 frame in 30 from the stored segment:
// the GOP-skipping sparse-consumer path (Fig 3b).
func BenchmarkRetrieveSparse(b *testing.B) {
	cf := format.ConsumptionFormat{Fidelity: format.Fidelity{
		Quality: format.QGood, Crop: format.Crop100, Res: 200, Sampling: s130}}
	benchRetrieve(b, cf, 0)
}
