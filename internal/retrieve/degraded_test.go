package retrieve

import (
	"errors"
	"testing"

	"repro/internal/codec"
	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

// rederive recomputes segment idx in sf from the simulated source — the
// same pipeline setup() used to ingest it, so the reconstruction is
// byte-identical to the stored replica.
func rederive(t *testing.T, sf format.StorageFormat, idx int) (*codec.Encoded, []*frame.Frame) {
	t.Helper()
	src := vidsim.NewSource(vidsim.Datasets[0])
	full := src.Clip(idx*segment.Frames, segment.Frames)
	tw, th := vidsim.Dims(sf.Fidelity.Res)
	frames := codec.ApplyFidelity(full, sf.Fidelity, tw, th)
	if sf.Coding.Raw {
		return nil, frames
	}
	enc, _, err := codec.Encode(frames, codec.ParamsFor(sf))
	if err != nil {
		t.Fatal(err)
	}
	return enc, nil
}

// TestDegradedServeEncoded: a corrupt encoded replica fails the query
// without a rebuild hook, and answers byte-identically through one — with
// the degraded serve counted and reported.
func TestDegradedServeEncoded(t *testing.T) {
	r, encSF, _ := setup(t)
	cf := format.ConsumptionFormat{Fidelity: format.Fidelity{
		Quality: format.QGood, Crop: format.Crop100, Res: 200, Sampling: s16}}
	want, _, err := r.Segment("cam", encSF, cf, 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	store := r.Store.(*segment.Store)
	if err := store.DamageRef(segment.RefOf("cam", encSF, 0)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Segment("cam", encSF, cf, 0, nil); !errors.Is(err, segment.ErrCorrupt) {
		t.Fatalf("no rebuild hook: err = %v, want ErrCorrupt", err)
	}

	var gotStream string
	var gotSeg = -1
	r.Rebuild = func(stream string, seg int, sf format.StorageFormat) (*codec.Encoded, []*frame.Frame, error) {
		enc, _ := rederive(t, sf, seg)
		return enc, nil, nil
	}
	r.OnDegraded = func(stream string, seg int, sf format.StorageFormat) {
		gotStream, gotSeg = stream, seg
	}
	got, st, err := r.Segment("cam", encSF, cf, 0, nil)
	if err != nil {
		t.Fatalf("degraded serve failed: %v", err)
	}
	if st.Degraded != 1 {
		t.Fatalf("Stats.Degraded = %d, want 1", st.Degraded)
	}
	if gotStream != "cam" || gotSeg != 0 {
		t.Fatalf("OnDegraded(%q, %d), want (cam, 0)", gotStream, gotSeg)
	}
	if len(got) != len(want) {
		t.Fatalf("degraded serve delivered %d frames, want %d", len(got), len(want))
	}
	for i := range got {
		if !frameEqual(got[i], want[i]) {
			t.Fatalf("frame %d differs from pre-damage retrieval", i)
		}
	}
}

// TestDegradedServeRaw is the raw-format path: the damaged anchor makes
// GetRaw fail, the rebuild supplies the full frame set, and sampling and
// the within filter still apply to the reconstruction.
func TestDegradedServeRaw(t *testing.T) {
	r, _, rawSF := setup(t)
	cf := format.ConsumptionFormat{Fidelity: format.Fidelity{
		Quality: format.QBest, Crop: format.Crop100, Res: 200, Sampling: s130}}
	want, _, err := r.Segment("cam", rawSF, cf, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	store := r.Store.(*segment.Store)
	if err := store.DamageRef(segment.RefOf("cam", rawSF, 1)); err != nil {
		t.Fatal(err)
	}
	r.Rebuild = func(stream string, seg int, sf format.StorageFormat) (*codec.Encoded, []*frame.Frame, error) {
		_, frames := rederive(t, sf, seg)
		return nil, frames, nil
	}
	got, st, err := r.Segment("cam", rawSF, cf, 1, nil)
	if err != nil {
		t.Fatalf("degraded raw serve failed: %v", err)
	}
	if st.Degraded != 1 {
		t.Fatalf("Stats.Degraded = %d, want 1", st.Degraded)
	}
	if len(got) != len(want) {
		t.Fatalf("degraded serve delivered %d frames, want %d", len(got), len(want))
	}
	for i := range got {
		if !frameEqual(got[i], want[i]) {
			t.Fatalf("frame %d differs from pre-damage retrieval", i)
		}
	}
}

// TestDegradedServeNeverCached: with a cache configured, a degraded serve
// must not populate it — every repeat query rebuilds (and re-reports)
// until the replica is repaired, and the repaired replica is then read
// from disk, not shadowed by best-effort cached frames.
func TestDegradedServeNeverCached(t *testing.T) {
	r, encSF, _ := setup(t)
	r.Cache = NewCache(1 << 24)
	cf := format.ConsumptionFormat{Fidelity: format.Fidelity{
		Quality: format.QGood, Crop: format.Crop100, Res: 200, Sampling: s16}}
	store := r.Store.(*segment.Store)
	if err := store.DamageRef(segment.RefOf("cam", encSF, 0)); err != nil {
		t.Fatal(err)
	}
	rebuilds := 0
	r.Rebuild = func(stream string, seg int, sf format.StorageFormat) (*codec.Encoded, []*frame.Frame, error) {
		rebuilds++
		enc, _ := rederive(t, sf, seg)
		return enc, nil, nil
	}
	for i := 0; i < 2; i++ {
		_, st, err := r.Segment("cam", encSF, cf, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st.Degraded != 1 {
			t.Fatalf("call %d: Degraded = %d, want 1 (degraded serve was cached?)", i, st.Degraded)
		}
	}
	if rebuilds != 2 {
		t.Fatalf("rebuilds = %d, want 2: degraded output must not be cached", rebuilds)
	}
	// Repair the replica; the next retrieval reads the stored copy again.
	enc, _ := rederive(t, encSF, 0)
	if err := store.PutEncoded("cam", encSF, 0, enc); err != nil {
		t.Fatal(err)
	}
	_, st, err := r.Segment("cam", encSF, cf, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded != 0 {
		t.Fatal("post-repair retrieval still degraded")
	}
	if rebuilds != 2 {
		t.Fatalf("post-repair retrieval invoked rebuild (%d calls)", rebuilds)
	}
}

// TestRebuildFailureSurfacesOriginalError: when re-derivation itself
// fails (e.g. every ancestor is gone too), the caller sees the original
// read error, not a rebuild artifact.
func TestRebuildFailureSurfacesOriginalError(t *testing.T) {
	r, encSF, _ := setup(t)
	cf := format.ConsumptionFormat{Fidelity: format.Fidelity{
		Quality: format.QGood, Crop: format.Crop100, Res: 200, Sampling: s16}}
	store := r.Store.(*segment.Store)
	if err := store.DamageRef(segment.RefOf("cam", encSF, 0)); err != nil {
		t.Fatal(err)
	}
	r.Rebuild = func(stream string, seg int, sf format.StorageFormat) (*codec.Encoded, []*frame.Frame, error) {
		return nil, nil, errors.New("ancestors gone")
	}
	fired := false
	r.OnDegraded = func(string, int, format.StorageFormat) { fired = true }
	if _, _, err := r.Segment("cam", encSF, cf, 0, nil); !errors.Is(err, segment.ErrCorrupt) {
		t.Fatalf("err = %v, want the original ErrCorrupt", err)
	}
	if fired {
		t.Fatal("OnDegraded fired for a failed serve")
	}
}

func frameEqual(a, b *frame.Frame) bool {
	if a.PTS != b.PTS || a.W != b.W || a.H != b.H || len(a.Y) != len(b.Y) {
		return false
	}
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			return false
		}
	}
	return true
}
