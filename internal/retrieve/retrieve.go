// Package retrieve implements VStore's retrieval stage: segments stream
// from the store through the decoder (skipping GOPs the consumer does not
// sample) and through fidelity conversion to the consumption format (§2.2).
// Raw segments are read frame-by-frame, touching only sampled frames.
package retrieve

import (
	"errors"
	"fmt"

	"repro/internal/codec"
	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/profile"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

// Stats accounts one retrieval.
type Stats struct {
	BytesRead       int64
	FramesDecoded   int64
	FramesDelivered int64
	VirtualSeconds  float64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.BytesRead += other.BytesRead
	s.FramesDecoded += other.FramesDecoded
	s.FramesDelivered += other.FramesDelivered
	s.VirtualSeconds += other.VirtualSeconds
}

// SegmentReader is the read surface the retriever needs from segment
// storage. A bare *segment.Store satisfies it (visibility is physical
// presence); a segment.View satisfies it scoped to a snapshot, which is
// how live queries get snapshot isolation from concurrent ingest and
// erosion.
type SegmentReader interface {
	// Visible reports whether the segment may be read at all. The
	// retriever consults it before every lookup — including cache lookups,
	// so an eroded or not-yet-committed segment can never be served from
	// stale cached frames.
	Visible(stream string, sf format.StorageFormat, idx int) bool
	GetEncoded(stream string, sf format.StorageFormat, idx int) (*codec.Encoded, error)
	GetRaw(stream string, sf format.StorageFormat, idx int, keep func(pts int) bool) ([]*frame.Frame, int64, error)
}

// Retriever streams stored segments to consumers.
type Retriever struct {
	Store SegmentReader
	// Cache, when non-nil, memoises full-segment retrievals in their
	// consumption format. Filtered retrievals (a non-nil within predicate)
	// bypass it: the delivered frame set depends on the predicate, which
	// cannot be keyed.
	Cache *Cache
}

// Segment retrieves segment idx of the stream stored in sf and converts it
// to cf. sf must satisfy cf (R1). The within predicate, if non-nil, further
// restricts the delivered original-timeline frame indices — the mechanism
// cascades use to fetch only activated spans.
func (r *Retriever) Segment(stream string, sf format.StorageFormat, cf format.ConsumptionFormat, idx int, within func(pts int) bool) ([]*frame.Frame, Stats, error) {
	return r.SegmentTagged(stream, sf, cf, idx, within, "")
}

// SegmentTagged is Segment with a caller-supplied cache tag. A non-empty
// tag must uniquely identify the frame set the within predicate admits
// (the query engine digests its activation spans); equal tags make
// filtered retrievals cacheable, so repeated queries hit on every cascade
// stage, not just the unfiltered first scan. An empty tag with a non-nil
// predicate bypasses the cache.
func (r *Retriever) SegmentTagged(stream string, sf format.StorageFormat, cf format.ConsumptionFormat, idx int, within func(pts int) bool, tag string) ([]*frame.Frame, Stats, error) {
	if !sf.Satisfies(cf) {
		return nil, Stats{}, fmt.Errorf("retrieve: %v cannot supply %v (R1)", sf, cf)
	}
	// Visibility gates the cache too: a segment outside the reader's view
	// (eroded, or not yet committed) must miss even if frames for it are
	// still resident from before the deletion.
	if !r.Store.Visible(stream, sf, idx) {
		return nil, Stats{}, segment.ErrNotFound
	}
	cacheable := r.Cache != nil && (within == nil || tag != "")
	var key string
	var gen int64
	if cacheable {
		key = cacheKey(stream, sf, cf, idx) + "#" + tag
		cached, g, ok := r.Cache.get(key)
		if ok {
			// A hit skips the disk read, decode and conversion entirely;
			// only the delivery count is accounted.
			return cached, Stats{FramesDelivered: int64(len(cached))}, nil
		}
		gen = g
	}
	var frames []*frame.Frame
	var st Stats
	if sf.Coding.Raw {
		got, bytes, err := r.Store.GetRaw(stream, sf, idx, rawKeep(cf.Fidelity.Sampling, within))
		if err != nil {
			return nil, st, err
		}
		frames = got
		st.BytesRead = bytes
		st.VirtualSeconds += profile.RawReadSeconds(bytes, len(got))
	} else {
		enc, err := r.Store.GetEncoded(stream, sf, idx)
		if err != nil {
			return nil, st, err
		}
		keep := encodedKeep(enc, cf.Fidelity.Sampling, within)
		got, cst, err := enc.DecodeSampled(func(i int) bool { return keep[i] })
		if err != nil {
			return nil, st, err
		}
		frames = got
		st.BytesRead = cst.BytesFlate
		st.FramesDecoded = cst.Frames
		st.VirtualSeconds += profile.DecodeSeconds(cst, cst.BytesFlate)
	}
	// Fidelity conversion to the consumption format.
	var pixels int64
	tw, th := vidsim.Dims(cf.Fidelity.Res)
	out := make([]*frame.Frame, 0, len(frames))
	for _, f := range frames {
		pixels += int64(f.NumPixels())
		g := f.Downscale(tw, th)
		if cf.Fidelity.Crop != format.Crop100 {
			g = g.CropCenter(cf.Fidelity.Crop.Fraction())
		}
		out = append(out, g)
	}
	if cf.Fidelity.Quality < sf.Fidelity.Quality {
		codec.ApplyQuality(out, cf.Fidelity.Quality)
	}
	st.VirtualSeconds += profile.TransformSeconds(pixels)
	st.FramesDelivered = int64(len(out))
	if cacheable {
		r.Cache.put(key, out, gen)
	}
	return out, st, nil
}

// rawKeep composes the consumption sampling pattern with the cascade filter
// for per-frame raw reads.
func rawKeep(s format.Sampling, within func(int) bool) func(int) bool {
	return func(pts int) bool {
		if !s.Keep(pts) {
			return false
		}
		return within == nil || within(pts)
	}
}

// encodedKeep marks the stored positions to deliver: the nearest stored
// frames realising the consumption sampling, filtered by within.
func encodedKeep(enc *codec.Encoded, s format.Sampling, within func(int) bool) []bool {
	pts := enc.PTSList()
	keep := make([]bool, enc.N)
	for _, pos := range codec.SelectPositions(pts, s) {
		if within == nil || within(pts[pos]) {
			keep[pos] = true
		}
	}
	return keep
}

// Range retrieves segments [seg0, seg1) and concatenates the frames.
func (r *Retriever) Range(stream string, sf format.StorageFormat, cf format.ConsumptionFormat, seg0, seg1 int, within func(pts int) bool) ([]*frame.Frame, Stats, error) {
	return r.RangeTagged(stream, sf, cf, seg0, seg1, within, "")
}

// RangeTagged is Range with a cache tag for the within predicate (see
// SegmentTagged). It owns the sequential fold — skip eroded segments,
// accumulate stats in segment order — that parallel retrievers replicate.
func (r *Retriever) RangeTagged(stream string, sf format.StorageFormat, cf format.ConsumptionFormat, seg0, seg1 int, within func(pts int) bool, tag string) ([]*frame.Frame, Stats, error) {
	var all []*frame.Frame
	var total Stats
	for idx := seg0; idx < seg1; idx++ {
		frames, st, err := r.SegmentTagged(stream, sf, cf, idx, within, tag)
		total.Add(st)
		if errors.Is(err, segment.ErrNotFound) {
			continue // eroded segment: caller handles fallback
		}
		if err != nil {
			return nil, total, err
		}
		all = append(all, frames...)
	}
	return all, total, nil
}
