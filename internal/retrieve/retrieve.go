// Package retrieve implements VStore's retrieval stage: segments stream
// from the store through the decoder (skipping GOPs the consumer does not
// sample) and through fidelity conversion to the consumption format (§2.2).
// Raw segments are read frame-by-frame, touching only sampled frames.
package retrieve

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/codec"
	"repro/internal/format"
	"repro/internal/frame"
	"repro/internal/profile"
	"repro/internal/sched"
	"repro/internal/segment"
	"repro/internal/vidsim"
)

// Stats accounts one retrieval.
type Stats struct {
	BytesRead       int64
	FramesDecoded   int64
	FramesDelivered int64
	VirtualSeconds  float64
	// Degraded counts segments served by reconstructing a damaged or
	// lost replica from a fallback ancestor instead of reading the
	// subscribed replica. Degraded output may be best-effort (see
	// Retriever.Rebuild), so callers gate caching and materialization
	// on it.
	Degraded int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.BytesRead += other.BytesRead
	s.FramesDecoded += other.FramesDecoded
	s.FramesDelivered += other.FramesDelivered
	s.VirtualSeconds += other.VirtualSeconds
	s.Degraded += other.Degraded
}

// SegmentReader is the read surface the retriever needs from segment
// storage. A bare *segment.Store satisfies it (visibility is physical
// presence); a segment.View satisfies it scoped to a snapshot, which is
// how live queries get snapshot isolation from concurrent ingest and
// erosion.
type SegmentReader interface {
	// Visible reports whether the segment may be read at all. The
	// retriever consults it before every lookup — including cache lookups,
	// so an eroded or not-yet-committed segment can never be served from
	// stale cached frames.
	Visible(stream string, sf format.StorageFormat, idx int) bool
	GetEncoded(stream string, sf format.StorageFormat, idx int) (*codec.Encoded, error)
	GetRaw(stream string, sf format.StorageFormat, idx int, keep func(pts int) bool) ([]*frame.Frame, int64, error)
}

// Retriever streams stored segments to consumers.
type Retriever struct {
	Store SegmentReader
	// Cache, when non-nil, memoises full-segment retrievals in their
	// consumption format. Filtered retrievals (a non-nil within predicate)
	// bypass it: the delivered frame set depends on the predicate, which
	// cannot be keyed.
	Cache *Cache
	// DecodePool, when non-nil, fans the independent GOPs of each encoded
	// segment across the pool (codec.DecodeSampledParallel) — intra-segment
	// decode parallelism on top of the engine's inter-segment fan-out.
	// Results are merged in position order, so delivered frames and stats
	// are byte-identical to the sequential path at any worker count.
	DecodePool *sched.Pool
	// Rebuild, when non-nil, reconstructs a replica whose stored bytes
	// are damaged (segment.ErrCorrupt, a failing shard) or lost (visible
	// in the reader's view yet physically absent): it re-derives segment
	// seg of the stream in sf from the nearest richer surviving ancestor
	// on the erosion fallback tree, returning the encoded container (for
	// encoded formats) or the full frame set (for raw formats). The query
	// then answers from the reconstruction — degraded, not failed — and
	// OnDegraded lets the owner enqueue a background repair. The
	// reconstruction is byte-identical to the original when rebuilt from
	// a lossless ancestor and best-effort otherwise, so degraded serves
	// are never cached or materialized.
	Rebuild RebuildFunc
	// OnDegraded, when non-nil, observes every successful degraded serve.
	// Called synchronously; implementations hand off and return.
	OnDegraded func(stream string, seg int, sf format.StorageFormat)
}

// RebuildFunc re-derives one replica: exactly one of enc (encoded
// formats) and frames (raw formats) is non-nil on success.
type RebuildFunc func(stream string, seg int, sf format.StorageFormat) (enc *codec.Encoded, frames []*frame.Frame, err error)

// Segment retrieves segment idx of the stream stored in sf and converts it
// to cf. sf must satisfy cf (R1). The within predicate, if non-nil, further
// restricts the delivered original-timeline frame indices — the mechanism
// cascades use to fetch only activated spans.
//
// Segment is the owned-delivery boundary: the returned frames are the
// caller's to mutate. SegmentTagged is the zero-copy variant for
// consumers that honour the read-only frame contract.
func (r *Retriever) Segment(stream string, sf format.StorageFormat, cf format.ConsumptionFormat, idx int, within func(pts int) bool) ([]*frame.Frame, Stats, error) {
	frames, st, err := r.SegmentTagged(stream, sf, cf, idx, within, "")
	if err == nil && r.Cache != nil && within == nil {
		// The set is (or just became) cache-resident and therefore shared;
		// hand the caller a private copy. Non-cached retrievals are already
		// exclusively owned.
		frames = cloneFrames(frames)
	}
	return frames, st, err
}

// SegmentTagged is Segment with a caller-supplied cache tag. A non-empty
// tag must uniquely identify the frame set the within predicate admits
// (the query engine digests its activation spans); equal tags make
// filtered retrievals cacheable, so repeated queries hit on every cascade
// stage, not just the unfiltered first scan. An empty tag with a non-nil
// predicate bypasses the cache.
//
// SegmentTagged is the zero-copy fast path: delivered frames may be
// shared with the retrieval cache and with concurrent readers, and must
// be treated as read-only (see the frame package's contract). Callers
// that need to mutate frames use Segment, which delivers owned copies.
func (r *Retriever) SegmentTagged(stream string, sf format.StorageFormat, cf format.ConsumptionFormat, idx int, within func(pts int) bool, tag string) ([]*frame.Frame, Stats, error) {
	if !sf.Satisfies(cf) {
		return nil, Stats{}, fmt.Errorf("retrieve: %v cannot supply %v (R1)", sf, cf)
	}
	// Visibility gates the cache too: a segment outside the reader's view
	// (eroded, or not yet committed) must miss even if frames for it are
	// still resident from before the deletion.
	if !r.Store.Visible(stream, sf, idx) {
		return nil, Stats{}, segment.ErrNotFound
	}
	cacheable := r.Cache != nil && (within == nil || tag != "")
	var key string
	var gen int64
	if cacheable {
		key = cacheKey(stream, sf, cf, idx) + "#" + tag
		cached, g, ok := r.Cache.get(stream, key)
		if ok {
			// A hit skips the disk read, decode and conversion entirely;
			// only the delivery count is accounted. The cached set itself
			// is delivered, shared across hits — zero copies.
			return cached, Stats{FramesDelivered: int64(len(cached))}, nil
		}
		gen = g
	}
	var frames []*frame.Frame
	var st Stats
	degraded := false
	if sf.Coding.Raw {
		got, bytes, err := r.Store.GetRaw(stream, sf, idx, rawKeep(cf.Fidelity.Sampling, within))
		if err != nil {
			// The segment is visible, so any read failure — corrupt
			// record, failing shard, or a replica that vanished without
			// being eroded — is damage. Reconstruct from a fallback
			// ancestor and answer degraded rather than failing the query.
			full, ok := r.rebuildRaw(stream, sf, idx)
			if !ok {
				if cacheable {
					r.Cache.abandon(stream)
				}
				return nil, st, err
			}
			degraded = true
			keep := rawKeep(cf.Fidelity.Sampling, within)
			got = got[:0:0]
			for _, f := range full {
				if keep(f.PTS) {
					got = append(got, f)
				}
			}
			bytes = 0
		}
		frames = got
		st.BytesRead = bytes
		st.VirtualSeconds += profile.RawReadSeconds(bytes, len(got))
	} else {
		enc, err := r.Store.GetEncoded(stream, sf, idx)
		if err != nil {
			renc, ok := r.rebuildEncoded(stream, sf, idx)
			if !ok {
				if cacheable {
					r.Cache.abandon(stream)
				}
				return nil, st, err
			}
			degraded = true
			enc = renc
		}
		keep := encodedKeep(enc, cf.Fidelity.Sampling, within)
		keepFn := func(i int) bool { return keep[i] }
		var got []*frame.Frame
		var cst codec.Stats
		if r.DecodePool != nil && r.DecodePool.Workers() > 1 {
			got, cst, err = enc.DecodeSampledParallel(keepFn, r.DecodePool.Batch())
		} else {
			got, cst, err = enc.DecodeSampled(keepFn)
		}
		if err != nil {
			if cacheable {
				r.Cache.abandon(stream)
			}
			return nil, st, err
		}
		frames = got
		st.BytesRead = cst.BytesFlate
		st.FramesDecoded = cst.Frames
		st.VirtualSeconds += profile.DecodeSeconds(cst, cst.BytesFlate)
	}
	out, pixels := convertFidelity(frames, sf, cf)
	// The virtual clock still accounts the conversion scan (the simulated
	// hardware's transform stage is unchanged); only the physical copies
	// are elided on the identity path, keeping stats and artifacts
	// byte-identical to the pre-pooling engine.
	st.VirtualSeconds += profile.TransformSeconds(pixels)
	st.FramesDelivered = int64(len(out))
	if cacheable {
		if degraded {
			// Reconstructed bytes may be best-effort; never let them
			// shadow the repaired replica from the cache.
			r.Cache.abandon(stream)
		} else {
			r.Cache.put(stream, key, out, gen)
		}
	}
	if degraded {
		st.Degraded = 1
		if r.OnDegraded != nil {
			r.OnDegraded(stream, idx, sf)
		}
	}
	return out, st, nil
}

// rebuildEncoded reconstructs an encoded replica through Rebuild,
// reporting ok=false when no rebuild path exists (no hook installed, or
// re-derivation itself failed — e.g. the segment really was eroded).
func (r *Retriever) rebuildEncoded(stream string, sf format.StorageFormat, idx int) (*codec.Encoded, bool) {
	if r.Rebuild == nil {
		return nil, false
	}
	enc, _, err := r.Rebuild(stream, idx, sf)
	if err != nil || enc == nil {
		return nil, false
	}
	return enc, true
}

// rebuildRaw is rebuildEncoded for raw (coding-bypass) formats.
func (r *Retriever) rebuildRaw(stream string, sf format.StorageFormat, idx int) ([]*frame.Frame, bool) {
	if r.Rebuild == nil {
		return nil, false
	}
	_, frames, err := r.Rebuild(stream, idx, sf)
	if err != nil || len(frames) == 0 {
		return nil, false
	}
	return frames, true
}

// convertFidelity converts decoded frames to the consumption fidelity,
// returning the delivered set and the source pixels scanned. Three paths,
// fastest first: when the consumption fidelity matches the stored frames
// (same dimensions, no crop) the decoded frames are delivered as-is —
// zero copies, the identity fast path; when only a downscale is needed,
// output planes are carved from one arena batch; the general
// downscale+crop path allocates per frame. A quality downgrade quantises
// in place: every branch delivers frames this retrieval exclusively owns
// (decoder arenas or fresh conversions), never cache- or caller-visible
// memory.
func convertFidelity(frames []*frame.Frame, sf format.StorageFormat, cf format.ConsumptionFormat) ([]*frame.Frame, int64) {
	var pixels int64
	for _, f := range frames {
		pixels += int64(f.NumPixels())
	}
	tw, th := vidsim.Dims(cf.Fidelity.Res)
	if len(frames) > 0 {
		// Downscale clamps to the source dimensions (upscaling is not
		// supported); apply the same clamp up front so the arena batch
		// gets the dimensions the per-frame path would produce.
		tw = min(tw, frames[0].W)
		th = min(th, frames[0].H)
	}
	var out []*frame.Frame
	switch {
	case len(frames) == 0:
		out = make([]*frame.Frame, 0)
	case cf.Fidelity.Crop == format.Crop100 && tw == frames[0].W && th == frames[0].H:
		// Identity: the stored resolution already is the consumption
		// resolution. Deliver the decoded frames themselves — zero copies.
		out = frames
	case cf.Fidelity.Crop == format.Crop100:
		batch := frame.NewBatch(tw, th, len(frames))
		for i, f := range frames {
			f.DownscaleInto(batch[i])
		}
		out = batch
	default:
		out = make([]*frame.Frame, 0, len(frames))
		for _, f := range frames {
			g := f.Downscale(tw, th)
			g = g.CropCenter(cf.Fidelity.Crop.Fraction())
			out = append(out, g)
		}
	}
	if cf.Fidelity.Quality < sf.Fidelity.Quality {
		codec.ApplyQuality(out, cf.Fidelity.Quality)
	}
	return out, pixels
}

// cloneFrames deep-copies a delivered frame set — the defensive copy the
// owned-delivery boundary (Segment, Range) makes when the set is shared
// with the cache.
func cloneFrames(frames []*frame.Frame) []*frame.Frame {
	out := make([]*frame.Frame, len(frames))
	for i, f := range frames {
		out[i] = f.Clone()
	}
	return out
}

// rawKeep composes the consumption sampling pattern with the cascade filter
// for per-frame raw reads.
func rawKeep(s format.Sampling, within func(int) bool) func(int) bool {
	return func(pts int) bool {
		if !s.Keep(pts) {
			return false
		}
		return within == nil || within(pts)
	}
}

// encodedKeep marks the stored positions to deliver: the nearest stored
// frames realising the consumption sampling, filtered by within. It walks
// the container's PTS table in place (PTSAt) rather than materialising a
// fresh []int per retrieval.
func encodedKeep(enc *codec.Encoded, s format.Sampling, within func(int) bool) []bool {
	keep := make([]bool, enc.N)
	for _, pos := range codec.SelectPositionsFunc(enc.N, enc.PTSAt, s) {
		if within == nil || within(enc.PTSAt(pos)) {
			keep[pos] = true
		}
	}
	return keep
}

// Range retrieves segments [seg0, seg1) and concatenates the frames. Like
// Segment, it is an owned-delivery boundary: when a cache is configured
// the concatenated set is defensively copied, so callers may mutate it
// without corrupting cached segments.
func (r *Retriever) Range(stream string, sf format.StorageFormat, cf format.ConsumptionFormat, seg0, seg1 int, within func(pts int) bool) ([]*frame.Frame, Stats, error) {
	frames, st, err := r.RangeTagged(context.Background(), stream, sf, cf, seg0, seg1, within, "")
	if err == nil && r.Cache != nil && within == nil {
		frames = cloneFrames(frames)
	}
	return frames, st, err
}

// RangeTagged is Range with a cache tag for the within predicate (see
// SegmentTagged). It owns the sequential fold — skip eroded segments,
// accumulate stats in segment order — that parallel retrievers replicate.
// ctx is checked between segments: a canceled range retrieval stops
// before its next segment's decode and returns ctx.Err().
func (r *Retriever) RangeTagged(ctx context.Context, stream string, sf format.StorageFormat, cf format.ConsumptionFormat, seg0, seg1 int, within func(pts int) bool, tag string) ([]*frame.Frame, Stats, error) {
	var all []*frame.Frame
	var total Stats
	for idx := seg0; idx < seg1; idx++ {
		if err := ctx.Err(); err != nil {
			return nil, total, err
		}
		frames, st, err := r.SegmentTagged(stream, sf, cf, idx, within, tag)
		total.Add(st)
		if errors.Is(err, segment.ErrNotFound) {
			continue // eroded segment: caller handles fallback
		}
		if err != nil {
			return nil, total, err
		}
		all = append(all, frames...)
	}
	return all, total, nil
}
