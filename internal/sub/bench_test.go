package sub_test

import (
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/sub"
	"repro/internal/vidsim"
)

// BenchmarkSubscribePush measures the standing-query push path end to
// end: each iteration commits one freshly ingested segment and the
// subscriber receives its evaluated chunk. The wall time per op is
// dominated by the transcode; the commit-to-push-ns metric isolates what
// the subsystem adds — commit notification, queueing, snapshot-pinned
// evaluation, and delivery.
func BenchmarkSubscribePush(b *testing.B) {
	dir, err := os.MkdirTemp("", "sub-bench-*")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	srv, err := server.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Reconfigure(testConfig(b)); err != nil {
		b.Fatal(err)
	}
	sc, err := vidsim.DatasetByName("jackson")
	if err != nil {
		b.Fatal(err)
	}
	hub := sub.NewHub(srv, sub.HubOptions{})
	defer hub.Close()
	sn, err := hub.Subscribe(sub.Request{Stream: "cam", Query: testQuery, Buffer: 1024})
	if err != nil {
		b.Fatal(err)
	}
	var latencyNs, delivered int64
	go func() {
		for p := range sn.Out() {
			atomic.AddInt64(&latencyNs, time.Since(p.Enqueued).Nanoseconds())
			atomic.AddInt64(&delivered, 1)
		}
	}()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Ingest(sc, "cam", 1); err != nil {
			b.Fatal(err)
		}
	}
	for atomic.LoadInt64(&delivered) < int64(b.N) {
		time.Sleep(100 * time.Microsecond)
	}
	b.StopTimer()
	b.ReportMetric(float64(atomic.LoadInt64(&latencyNs))/float64(b.N), "commit-to-push-ns/op")
	if !hub.Unsubscribe(sn.ID()) {
		b.Fatalf("subscriber died mid-benchmark: %v", sn.Err())
	}
}
