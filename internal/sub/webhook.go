// Webhook delivery for rule alerts: buffered behind a bounded queue so a
// slow or dead endpoint never stalls an evaluator, retried with
// exponential backoff so a transient endpoint failure loses nothing, and
// bounded in attempts so a permanently dead endpoint only burns a counter.

package sub

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

// WebhookOptions tunes alert delivery. The zero value selects working
// defaults.
type WebhookOptions struct {
	// Queue bounds deliveries waiting for the dispatcher; overflow is
	// dropped and counted as a failure. Zero selects 256.
	Queue int
	// Attempts is the per-delivery try budget. Zero selects 4.
	Attempts int
	// Backoff is the delay before the first retry; it doubles per
	// attempt, capped at MaxBackoff. Zero selects 250ms.
	Backoff time.Duration
	// MaxBackoff caps the doubling: with a large Attempts budget the
	// uncapped double would grow the sleep geometrically (attempt 12 of a
	// 250ms base waits over eight minutes) and pin the single dispatcher
	// worker behind one dead endpoint. Zero selects 2s — above every sleep
	// the default (4-attempt, 250ms) schedule produces, so capping does not
	// change default behaviour.
	MaxBackoff time.Duration
	// Timeout caps one HTTP attempt. Zero selects 5s.
	Timeout time.Duration
	// Sender overrides the HTTP POST — tests inject failures and capture
	// payloads here. It must return nil only on successful delivery.
	Sender func(url string, body []byte) error
}

func (o WebhookOptions) withDefaults() WebhookOptions {
	if o.Queue <= 0 {
		o.Queue = 256
	}
	if o.Attempts <= 0 {
		o.Attempts = 4
	}
	if o.Backoff <= 0 {
		o.Backoff = 250 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.Backoff > o.MaxBackoff {
		o.Backoff = o.MaxBackoff
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	return o
}

// WebhookStats reports the dispatcher's lifetime counters.
type WebhookStats struct {
	Sent     int64 // deliveries acknowledged by the endpoint
	Retries  int64 // attempts beyond each delivery's first
	Failures int64 // deliveries abandoned: attempts exhausted or queue full
}

type delivery struct {
	url   string
	alert Alert
}

// webhooks is the hub's alert dispatcher: one worker goroutine draining a
// bounded queue.
type webhooks struct {
	opt  WebhookOptions
	ch   chan delivery
	quit chan struct{}
	done chan struct{}

	sent     atomic.Int64
	retries  atomic.Int64
	failures atomic.Int64
}

func newWebhooks(opt WebhookOptions) *webhooks {
	w := &webhooks{
		opt:  opt.withDefaults(),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	w.ch = make(chan delivery, w.opt.Queue)
	if w.opt.Sender == nil {
		client := &http.Client{Timeout: w.opt.Timeout}
		w.opt.Sender = func(url string, body []byte) error {
			resp, err := client.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode < 200 || resp.StatusCode >= 300 {
				return fmt.Errorf("webhook: endpoint answered HTTP %d", resp.StatusCode)
			}
			return nil
		}
	}
	go w.loop()
	return w
}

// enqueue is the evaluator-side handoff: non-blocking, overflow counted
// as a failure — an alert flood must not stall chunk pushes.
func (w *webhooks) enqueue(url string, a Alert) {
	select {
	case w.ch <- delivery{url: url, alert: a}:
	default:
		w.failures.Add(1)
	}
}

func (w *webhooks) loop() {
	defer close(w.done)
	for {
		select {
		case <-w.quit:
			return
		case d := <-w.ch:
			w.deliver(d)
		}
	}
}

// deliver POSTs one alert, retrying with doubling backoff (capped at
// MaxBackoff) until the try budget is spent. A hub close aborts between
// attempts, never mid-POST; the backoff timer is stopped on that path, so
// an aborted sleep releases its timer immediately instead of leaving it
// pending until it would have fired.
func (w *webhooks) deliver(d delivery) {
	body, err := json.Marshal(d.alert)
	if err != nil {
		w.failures.Add(1)
		return
	}
	backoff := w.opt.Backoff
	for attempt := 0; attempt < w.opt.Attempts; attempt++ {
		if attempt > 0 {
			w.retries.Add(1)
			t := time.NewTimer(backoff)
			select {
			case <-w.quit:
				t.Stop()
				w.failures.Add(1)
				return
			case <-t.C:
			}
			if backoff *= 2; backoff > w.opt.MaxBackoff {
				backoff = w.opt.MaxBackoff
			}
		}
		if err := w.opt.Sender(d.url, body); err == nil {
			w.sent.Add(1)
			return
		}
	}
	w.failures.Add(1)
}

func (w *webhooks) stats() WebhookStats {
	return WebhookStats{
		Sent:     w.sent.Load(),
		Retries:  w.retries.Load(),
		Failures: w.failures.Load(),
	}
}

// close stops the dispatcher after its in-flight delivery attempt;
// queued deliveries are abandoned (counted as failures).
func (w *webhooks) close() {
	select {
	case <-w.quit:
	default:
		close(w.quit)
	}
	<-w.done
	for {
		select {
		case <-w.ch:
			w.failures.Add(1)
		default:
			return
		}
	}
}
