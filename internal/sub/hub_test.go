// White-box tests of the pieces that never touch a store: rule windowing,
// webhook delivery, and the policy parser.

package sub

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/ops"
	"repro/internal/query"
	"repro/internal/segment"
	"repro/internal/server"
)

func resultWithLabels(labels ...string) server.QueryResult {
	r := query.Result{}
	for _, l := range labels {
		r.Detections = append(r.Detections, ops.Detection{Label: l})
	}
	return server.QueryResult{Results: []query.Result{r}}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"", PolicyDisconnect, true},
		{"disconnect", PolicyDisconnect, true},
		{"drop", PolicyDrop, true},
		{"block", PolicyDisconnect, false},
	} {
		got, err := ParsePolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if PolicyDrop.String() != "drop" || PolicyDisconnect.String() != "disconnect" {
		t.Fatal("Policy.String round-trip broken")
	}
}

// TestApplyRulesWindow drives the sliding window directly: a rule counting
// "car" over the last 2 chunks fires only once the window total crosses
// the threshold, and firings enqueue to the rule's webhook.
func TestApplyRulesWindow(t *testing.T) {
	var mu sync.Mutex
	var sent []Alert
	hooks := newWebhooks(WebhookOptions{Sender: func(url string, body []byte) error {
		var a Alert
		if err := json.Unmarshal(body, &a); err != nil {
			t.Errorf("webhook body: %v", err)
			return err
		}
		mu.Lock()
		sent = append(sent, a)
		mu.Unlock()
		return nil
	}})
	defer hooks.close()

	s := &Subscription{
		id: "s1",
		req: Request{Stream: "cam", Rules: []Rule{
			{Label: "car", MinCount: 3, WindowSegments: 2, Webhook: "http://hooks.example/car"},
			{MinCount: 1, WindowSegments: 1}, // label-less: counts everything, no webhook
		}},
		hooks:   hooks,
		windows: [][]int{make([]int, 2), make([]int, 1)},
	}

	commit := func(idx int) segment.Commit {
		return segment.Commit{Stream: "cam", Idx: idx, Seq: int64(idx + 1)}
	}
	// Chunk 0: 2 cars + 1 truck. Rule 0 window total 2 < 3: silent.
	// Rule 1 counts all 3 detections: fires.
	alerts := s.applyRules(commit(0), resultWithLabels("car", "car", "truck"))
	if len(alerts) != 1 || alerts[0].Rule != 1 || alerts[0].Count != 3 {
		t.Fatalf("chunk 0 alerts = %+v", alerts)
	}
	// Chunk 1: 1 car. Rule 0 window total 2+1 = 3: fires with the window
	// total and this chunk's span.
	alerts = s.applyRules(commit(1), resultWithLabels("car"))
	if len(alerts) != 2 {
		t.Fatalf("chunk 1 alerts = %+v", alerts)
	}
	car := alerts[0]
	if car.Rule != 0 || car.Count != 3 || car.Label != "car" || car.WindowSegments != 2 ||
		car.Seg0 != 1 || car.Seg1 != 2 || car.Seq != 2 || car.SubID != "s1" || car.Stream != "cam" {
		t.Fatalf("car alert = %+v", car)
	}
	// Chunk 2: nothing. The 2-chunk window slides past chunk 0's cars
	// (total 1 < 3): rule 0 goes quiet again; rule 1 sees zero detections.
	if alerts = s.applyRules(commit(2), resultWithLabels()); len(alerts) != 0 {
		t.Fatalf("chunk 2 alerts = %+v", alerts)
	}
	if got := s.rulesFired.Load(); got != 3 {
		t.Fatalf("rulesFired = %d", got)
	}

	// Only rule 0 names a webhook: exactly its one firing is delivered.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(sent)
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("webhook deliveries = %d, want 1", n)
		}
		time.Sleep(time.Millisecond)
	}
	if sent[0] != car {
		t.Fatalf("webhook payload %+v, want %+v", sent[0], car)
	}
}

// TestWebhookRetry: a transiently failing endpoint is retried with backoff
// and eventually counted sent; a permanently failing one exhausts the
// attempt budget and is counted a failure.
func TestWebhookRetry(t *testing.T) {
	var calls int
	var mu sync.Mutex
	w := newWebhooks(WebhookOptions{Backoff: time.Millisecond, Attempts: 4, Sender: func(url string, body []byte) error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls < 3 {
			return errors.New("endpoint down")
		}
		return nil
	}})
	w.enqueue("http://hooks.example/a", Alert{SubID: "s1"})
	waitStats(t, w, func(st WebhookStats) bool { return st.Sent == 1 })
	if st := w.stats(); st.Sent != 1 || st.Retries != 2 || st.Failures != 0 {
		t.Fatalf("stats after transient failure = %+v", st)
	}

	mu.Lock()
	calls = -1 << 30 // never recovers
	mu.Unlock()
	w.enqueue("http://hooks.example/b", Alert{SubID: "s1"})
	waitStats(t, w, func(st WebhookStats) bool { return st.Failures == 1 })
	if st := w.stats(); st.Sent != 1 || st.Retries != 2+3 || st.Failures != 1 {
		t.Fatalf("stats after permanent failure = %+v", st)
	}
	w.close()
}

// TestWebhookOverflowAndClose: enqueue never blocks — overflow beyond the
// bounded queue is counted as failures — and close abandons what is still
// queued rather than waiting out retry backoffs.
func TestWebhookOverflowAndClose(t *testing.T) {
	block := make(chan struct{})
	w := newWebhooks(WebhookOptions{Queue: 1, Attempts: 1, Sender: func(url string, body []byte) error {
		<-block
		return nil
	}})
	// First delivery occupies the worker, second fills the queue; the rest
	// must overflow without blocking this goroutine.
	for i := 0; i < 5; i++ {
		w.enqueue("http://hooks.example/x", Alert{})
	}
	waitStats(t, w, func(st WebhookStats) bool { return st.Failures >= 3 })
	close(block)
	w.close()
	st := w.stats()
	if st.Sent+st.Failures != 5 {
		t.Fatalf("deliveries unaccounted for: %+v", st)
	}
	// close is idempotent.
	w.close()
}

func waitStats(t *testing.T, w *webhooks, ok func(WebhookStats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !ok(w.stats()) {
		if time.Now().After(deadline) {
			t.Fatalf("webhook stats never converged: %+v", w.stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWebhookBackoffCapped: with a deep attempt budget, the doubling
// backoff must saturate at MaxBackoff rather than growing geometrically.
// Uncapped, this schedule (10ms base, 10 attempts) would sleep
// 10+20+40+...+2560ms ≈ 5.1s; capped at 20ms it sleeps 170ms total.
func TestWebhookBackoffCapped(t *testing.T) {
	w := newWebhooks(WebhookOptions{
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 20 * time.Millisecond,
		Attempts:   10,
		Sender:     func(url string, body []byte) error { return errors.New("endpoint down") },
	})
	defer w.close()
	start := time.Now()
	w.enqueue("http://hooks.example/a", Alert{SubID: "s1"})
	waitStats(t, w, func(st WebhookStats) bool { return st.Failures == 1 })
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("capped backoff schedule took %v; doubling was not capped", elapsed)
	}
	if st := w.stats(); st.Retries != 9 || st.Sent != 0 {
		t.Fatalf("stats after exhausted budget = %+v", st)
	}
}

// TestWebhookCloseDuringBackoff: a close landing while the dispatcher is
// asleep between attempts must return promptly — the backoff timer is
// stopped, not waited out — and the interrupted delivery counts failed.
func TestWebhookCloseDuringBackoff(t *testing.T) {
	w := newWebhooks(WebhookOptions{
		Backoff:  time.Hour, // the test only passes if close interrupts this sleep
		Attempts: 3,
		Sender:   func(url string, body []byte) error { return errors.New("endpoint down") },
	})
	w.enqueue("http://hooks.example/a", Alert{SubID: "s1"})
	// Retries increments before the sleep, so Retries==1 means the worker
	// is inside the hour-long backoff.
	waitStats(t, w, func(st WebhookStats) bool { return st.Retries == 1 })
	start := time.Now()
	w.close()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("close during backoff took %v; timer not interrupted", elapsed)
	}
	if st := w.stats(); st.Failures != 1 || st.Sent != 0 {
		t.Fatalf("stats after interrupted delivery = %+v", st)
	}
}
