package sub_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/erode"
	"repro/internal/ops"
	"repro/internal/profile"
	"repro/internal/query"
	"repro/internal/segment"
	"repro/internal/server"
	"repro/internal/sub"
	"repro/internal/vidsim"
)

// testConfig derives the three-operator configuration query "B" resolves
// against, with erosion pressure, memoised across tests (derivation
// profiles operators, which is expensive under the race detector).
func testConfig(t testing.TB) *core.Config {
	t.Helper()
	cfgOnce.Do(func() { cfgShared = deriveTestConfig(t) })
	if cfgShared == nil {
		t.Fatal("config derivation failed in an earlier test")
	}
	return cfgShared
}

var (
	cfgOnce   sync.Once
	cfgShared *core.Config
)

func deriveTestConfig(t testing.TB) *core.Config {
	t.Helper()
	sc, err := vidsim.DatasetByName("jackson")
	if err != nil {
		t.Fatal(err)
	}
	p := profile.New(sc)
	p.ClipFrames = 120
	consumers := []core.Consumer{
		{Op: ops.Motion{}, Target: 0.9, Prof: p},
		{Op: ops.License{}, Target: 0.9, Prof: p},
		{Op: ops.OCR{}, Target: 0.9, Prof: p},
	}
	choices := core.DeriveConsumptionFormats(consumers)
	d, err := core.DeriveStorageFormats(choices, core.SFOptions{Profiler: p})
	if err != nil {
		t.Fatal(err)
	}
	const lifespan = 3
	golden := d.SFs[d.Golden].Prof.BytesPerSec * 86400
	floor := d.TotalBytesPerSec()*86400 + float64(lifespan-1)*golden
	full := d.TotalBytesPerSec() * 86400 * float64(lifespan)
	plan, err := core.PlanErosion(d, core.ErosionOptions{
		Profiler: p, LifespanDays: lifespan,
		StorageBudgetBytes: int64(floor + 0.3*(full-floor)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return &core.Config{Derivation: d, Erosion: plan}
}

func newStore(t testing.TB) *server.Server {
	t.Helper()
	srv, err := server.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	if err := srv.Reconfigure(testConfig(t)); err != nil {
		t.Fatal(err)
	}
	return srv
}

const testQuery = "B" // Motion+License+OCR resolves against the test config

// TestSubscribeCommitOrderByteIdentical is the acceptance scenario: two
// live streams ingest through their pipelines while a subscriber on each —
// registered before any ingest — consumes pushes, the erosion daemon
// erodes an aged third stream, and batch ingest keeps committing to that
// unsubscribed stream. Each subscriber must receive every committed
// segment of its stream exactly once, in commit order, with every pushed
// chunk byte-identical (at the wire-chunk level) to a post-hoc historical
// query over the same span.
func TestSubscribeCommitOrderByteIdentical(t *testing.T) {
	srv := newStore(t)
	// Cache off: a warm retrieval reports zero virtual retrieval cost, so
	// the post-hoc query would differ in the timing fields.
	srv.SetCacheBudget(0)
	ctx := context.Background()
	jackson, _ := vidsim.DatasetByName("jackson")
	park, _ := vidsim.DatasetByName("park")

	// Prey for the eroder: an unsubscribed stream whose prefix is aged.
	if _, err := srv.Ingest(jackson, "old", 3); err != nil {
		t.Fatal(err)
	}

	hub := sub.NewHub(srv, sub.HubOptions{})
	defer hub.Close()

	segments := 4
	if testing.Short() {
		segments = 2
	}
	streams := []string{"cam0", "cam1"}
	scenes := []vidsim.Scene{jackson, park}
	subs := make([]*sub.Subscription, len(streams))
	for i, name := range streams {
		sn, err := hub.Subscribe(sub.Request{Stream: name, Query: testQuery})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sn
	}

	// The daemon ticks as fast as the firer drives it; only "old" ages, so
	// erosion races the manifest without perturbing the verified streams.
	clock := erode.NewManualClock()
	if _, err := srv.StartErosionDaemon(time.Hour, clock, func(stream string, idx int) int {
		if stream == "old" {
			return 3 - idx
		}
		return 0
	}); err != nil {
		t.Fatal(err)
	}
	fireDone := make(chan struct{})
	var firer sync.WaitGroup
	firer.Add(1)
	go func() {
		defer firer.Done()
		for {
			select {
			case <-fireDone:
				return
			default:
				if !clock.TryFire() {
					time.Sleep(time.Millisecond)
				}
			}
		}
	}()

	// Consumers first: pushes flow while ingest is still running.
	pushes := make([][]sub.Push, len(streams))
	var consumers sync.WaitGroup
	for i := range subs {
		i := i
		consumers.Add(1)
		go func() {
			defer consumers.Done()
			for p := range subs[i].Out() {
				pushes[i] = append(pushes[i], p)
				if len(pushes[i]) == segments {
					return
				}
			}
		}()
	}

	// Feeders: the two subscribed streams ingest through live pipelines;
	// a third feeder batch-commits to the unsubscribed, eroding stream.
	var feeders sync.WaitGroup
	for i, name := range streams {
		i, name := i, name
		if _, err := srv.StartStream(name); err != nil {
			t.Fatal(err)
		}
		feeders.Add(1)
		go func() {
			defer feeders.Done()
			src := vidsim.NewSource(scenes[i])
			live := srv.Stream(name)
			for seg := 0; seg < segments; seg++ {
				if err := live.Submit(src.Clip(seg*segment.Frames, segment.Frames)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	feeders.Add(1)
	go func() {
		defer feeders.Done()
		if _, err := srv.Ingest(jackson, "old", 2); err != nil {
			t.Error(err)
		}
	}()

	feeders.Wait()
	srv.DrainStreams()
	consumers.Wait()
	close(fireDone)
	firer.Wait()
	if err := srv.StopErosionDaemon(); err != nil {
		t.Fatal(err)
	}
	for _, name := range streams {
		if err := srv.StopStream(name); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Stats().ErosionPasses == 0 {
		t.Fatal("erosion daemon never ran a pass during the live phase")
	}

	// Clean detach: every subscription is live (nothing lagged or failed).
	for i, sn := range subs {
		st := sn.Stats()
		if !hub.Unsubscribe(sn.ID()) {
			t.Fatalf("subscriber %d not live at unsubscribe: %+v", i, st)
		}
		if err := sn.Err(); err != nil {
			t.Fatalf("subscriber %d ended with %v", i, err)
		}
		if st.Delivered != int64(segments) || st.Dropped != 0 || st.EvalErrors != 0 {
			t.Fatalf("subscriber %d stats = %+v", i, st)
		}
	}

	// Exactly once, in commit order, byte-identical to the historical path.
	cascade, names, err := query.ByName(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range streams {
		got := pushes[i]
		if len(got) != segments {
			t.Fatalf("%s delivered %d pushes, want %d", name, len(got), segments)
		}
		for j, p := range got {
			if p.Seg0 != j || p.Seg1 != j+1 {
				t.Fatalf("%s push %d covers [%d,%d), want [%d,%d)", name, j, p.Seg0, p.Seg1, j, j+1)
			}
			if j > 0 && p.Seq <= got[j-1].Seq {
				t.Fatalf("%s push %d seq %d after %d", name, j, p.Seq, got[j-1].Seq)
			}
			if p.Dropped != 0 {
				t.Fatalf("%s push %d reports %d drops", name, j, p.Dropped)
			}
			ref, err := srv.Query(ctx, name, cascade, names, 0.9, j, j+1)
			if err != nil {
				t.Fatal(err)
			}
			gotJSON := mustMarshal(t, api.ChunkFromResult(p.Seg0, p.Seg1, p.Result))
			wantJSON := mustMarshal(t, api.ChunkFromResult(j, j+1, ref))
			if gotJSON != wantJSON {
				t.Fatalf("%s push %d differs from historical query:\n got %s\nwant %s", name, j, gotJSON, wantJSON)
			}
		}
	}
	if hs := hub.Stats(); hs.Active != 0 || hs.Opened != 2 {
		t.Fatalf("hub stats = %+v", hs)
	}
	if st := srv.Stats(); st.ActiveSnapshots != 0 {
		t.Fatalf("evaluators leaked snapshots: %+v", st)
	}
}

// mustMarshal pins "byte-identical": both sides of a comparison are
// serialised through the same wire struct.
func mustMarshal(t testing.TB, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSubscribePolicyDrop: with a one-deep buffer and a consumer that
// reads nothing during ingest, overflowing commits are skipped and
// counted — and the subscription stays alive. Every commit is either
// delivered or counted dropped; none vanish.
func TestSubscribePolicyDrop(t *testing.T) {
	srv := newStore(t)
	hub := sub.NewHub(srv, sub.HubOptions{})
	defer hub.Close()
	sn, err := hub.Subscribe(sub.Request{Stream: "cam", Query: testQuery, Buffer: 1, Policy: sub.PolicyDrop})
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := vidsim.DatasetByName("jackson")
	const total = 6
	if _, err := srv.Ingest(sc, "cam", total); err != nil {
		t.Fatal(err)
	}
	// Ingest has returned, so every commit has been routed: the drop count
	// is final. A one-deep buffer with a blocked consumer absorbs at most
	// two commits (one queued + one in flight), so at least total-2 dropped.
	dropped := sn.Stats().Dropped
	if dropped < total-2 {
		t.Fatalf("dropped = %d, want >= %d", dropped, total-2)
	}
	expect := total - int(dropped)
	var got []sub.Push
	for i := 0; i < expect; i++ {
		p, ok := <-sn.Out()
		if !ok {
			t.Fatalf("out closed after %d pushes (err %v), want %d", i, sn.Err(), expect)
		}
		got = append(got, p)
	}
	last := got[len(got)-1]
	if last.Dropped != dropped {
		t.Fatalf("last push reports %d drops, want %d", last.Dropped, dropped)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatal("pushes out of commit order")
		}
	}
	if err := sn.Err(); err != nil {
		t.Fatalf("drop-policy subscription died: %v", err)
	}
	if !hub.Unsubscribe(sn.ID()) {
		t.Fatal("subscription not live after drops")
	}
	if st := sn.Stats(); st.Delivered != int64(expect) || st.Delivered+st.Dropped != total {
		t.Fatalf("commits unaccounted for: %+v", st)
	}
}

// TestSubscribePolicyDisconnect: the default policy trades liveness for
// gap-freedom — a subscriber that cannot keep up is disconnected with
// ErrLagged instead of silently missing segments.
func TestSubscribePolicyDisconnect(t *testing.T) {
	srv := newStore(t)
	hub := sub.NewHub(srv, sub.HubOptions{})
	defer hub.Close()
	sn, err := hub.Subscribe(sub.Request{Stream: "cam", Query: testQuery, Buffer: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := vidsim.DatasetByName("jackson")
	if _, err := srv.Ingest(sc, "cam", 4); err != nil {
		t.Fatal(err)
	}
	// Nothing consumed during ingest: the buffer must have overflowed.
	var got []sub.Push
	for p := range sn.Out() {
		got = append(got, p)
	}
	if !errors.Is(sn.Err(), sub.ErrLagged) {
		t.Fatalf("Err = %v, want ErrLagged", sn.Err())
	}
	// What was delivered before the disconnect is gap-free.
	for i, p := range got {
		if p.Seg0 != i || p.Dropped != 0 {
			t.Fatalf("delivered prefix not contiguous: push %d = %+v", i, p)
		}
	}
	// The evaluator detached itself: the hub no longer knows the ID.
	waitFor(t, func() bool { return hub.Stats().Active == 0 })
	if hub.Unsubscribe(sn.ID()) {
		t.Fatal("lagged subscription still registered")
	}
}

// TestSubscribeAdmissionAndValidation covers the subscribe-time error
// surface: bad requests, the subscription cap, and the closed hub.
func TestSubscribeAdmissionAndValidation(t *testing.T) {
	srv := newStore(t)
	hub := sub.NewHub(srv, sub.HubOptions{MaxSubscriptions: 1})
	if _, err := hub.Subscribe(sub.Request{Query: testQuery}); err == nil {
		t.Fatal("missing stream accepted")
	}
	if _, err := hub.Subscribe(sub.Request{Stream: "cam", Query: "nope"}); err == nil {
		t.Fatal("unknown query accepted")
	}
	if _, err := hub.Subscribe(sub.Request{Stream: "cam", Query: testQuery, Rules: []sub.Rule{{MinCount: 0}}}); err == nil {
		t.Fatal("rule with min_count 0 accepted")
	}
	sn, err := hub.Subscribe(sub.Request{Stream: "cam", Query: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Subscribe(sub.Request{Stream: "cam", Query: testQuery}); !errors.Is(err, sub.ErrLimit) {
		t.Fatalf("over-limit subscribe: %v, want ErrLimit", err)
	}
	if !hub.Unsubscribe(sn.ID()) {
		t.Fatal("unsubscribe of a live subscription reported not found")
	}
	if hub.Unsubscribe(sn.ID()) {
		t.Fatal("double unsubscribe reported found")
	}
	// The freed slot is reusable; a hub close then ends it with ErrClosed.
	sn2, err := hub.Subscribe(sub.Request{Stream: "cam", Query: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	hub.Close()
	if _, ok := <-sn2.Out(); ok {
		t.Fatal("push after hub close")
	}
	if !errors.Is(sn2.Err(), sub.ErrClosed) {
		t.Fatalf("Err after close = %v, want ErrClosed", sn2.Err())
	}
	if _, err := hub.Subscribe(sub.Request{Stream: "cam", Query: testQuery}); !errors.Is(err, sub.ErrClosed) {
		t.Fatalf("subscribe after close: %v, want ErrClosed", err)
	}
	hub.Close() // idempotent
}

// TestSubscribeSoak holds one subscription against a continuously
// ingesting live stream for a wall-clock window — 400ms by default, the
// nightly job sets VSTORE_SOAK=60s — while a drop-policy churner with a
// starved buffer exercises the overflow path concurrently. The main
// subscriber must see every segment exactly once, in order, with zero
// drops.
func TestSubscribeSoak(t *testing.T) {
	dur := 400 * time.Millisecond
	if v := os.Getenv("VSTORE_SOAK"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("VSTORE_SOAK: %v", err)
		}
		dur = d
	}
	srv := newStore(t)
	hub := sub.NewHub(srv, sub.HubOptions{})
	defer hub.Close()

	sn, err := hub.Subscribe(sub.Request{Stream: "cam", Query: testQuery, Buffer: 1024})
	if err != nil {
		t.Fatal(err)
	}
	churn, err := hub.Subscribe(sub.Request{Stream: "cam", Query: testQuery, Buffer: 1, Policy: sub.PolicyDrop})
	if err != nil {
		t.Fatal(err)
	}
	_ = churn // never consumed: every commit beyond the first few drops

	var mu sync.Mutex
	var got []sub.Push
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		for p := range sn.Out() {
			mu.Lock()
			got = append(got, p)
			mu.Unlock()
		}
	}()

	live, err := srv.StartStream("cam")
	if err != nil {
		t.Fatal(err)
	}
	sc, _ := vidsim.DatasetByName("jackson")
	src := vidsim.NewSource(sc)
	deadline := time.Now().Add(dur)
	segments := 0
	for time.Now().Before(deadline) {
		if err := live.Submit(src.Clip(segments*segment.Frames, segment.Frames)); err != nil {
			t.Fatal(err)
		}
		segments++
	}
	srv.DrainStreams()
	if err := srv.StopStream("cam"); err != nil {
		t.Fatal(err)
	}
	// Every committed segment must reach the subscriber before detaching.
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == segments
	})
	if !hub.Unsubscribe(sn.ID()) {
		t.Fatalf("soak subscriber dead: %v", sn.Err())
	}
	<-consumerDone
	for i, p := range got {
		if p.Seg0 != i || p.Dropped != 0 {
			t.Fatalf("soak push %d = %+v, want segment %d with no drops", i, p, i)
		}
		if i > 0 && p.Seq <= got[i-1].Seq {
			t.Fatalf("soak push %d out of order", i)
		}
	}
	t.Logf("soak: %d segments over %v, churner dropped %d", segments, dur, churn.Stats().Dropped)
}

func waitFor(t testing.TB, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSharedEvaluationDedup: subscriptions with the same stream, cascade
// and accuracy share one cascade evaluation per commit through the hub's
// flight table — three identical subscribers cost one run per segment,
// not three — while a subscription on a different stream keys its own
// flights. Shared pushes carry the leader's QueryResult verbatim, so the
// three subscribers' chunks are identical field for field.
func TestSharedEvaluationDedup(t *testing.T) {
	srv := newStore(t)
	jackson, err := vidsim.DatasetByName("jackson")
	if err != nil {
		t.Fatal(err)
	}
	hub := sub.NewHub(srv, sub.HubOptions{})
	defer hub.Close()

	const segments = 3
	trio := make([]*sub.Subscription, 3)
	for i := range trio {
		sn, err := hub.Subscribe(sub.Request{Stream: "cam", Query: testQuery})
		if err != nil {
			t.Fatal(err)
		}
		trio[i] = sn
	}
	solo, err := hub.Subscribe(sub.Request{Stream: "other", Query: testQuery})
	if err != nil {
		t.Fatal(err)
	}

	// Commits fan out to every subscriber's pending queue (depth 64, far
	// above 3 segments), so batch ingest completes before any draining.
	if _, err := srv.Ingest(jackson, "cam", segments); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Ingest(jackson, "other", segments); err != nil {
		t.Fatal(err)
	}

	drain := func(name string, sn *sub.Subscription) []sub.Push {
		var out []sub.Push
		for p := range sn.Out() {
			out = append(out, p)
			if len(out) == segments {
				return out
			}
		}
		t.Fatalf("%s: subscription ended after %d of %d pushes: %v", name, len(out), segments, sn.Err())
		return nil
	}
	pushes := make([][]sub.Push, len(trio))
	for i, sn := range trio {
		pushes[i] = drain(fmt.Sprintf("trio[%d]", i), sn)
	}
	drain("solo", solo)

	// Two distinct flight keys (one per stream) × segments runs; the two
	// non-leading trio subscribers adopt the shared result every commit.
	st := hub.Stats()
	if st.EvalRuns != 2*segments {
		t.Fatalf("EvalRuns = %d, want %d (one run per stream per segment)", st.EvalRuns, 2*segments)
	}
	if st.EvalShared != 2*segments {
		t.Fatalf("EvalShared = %d, want %d (two adopters per shared segment)", st.EvalShared, 2*segments)
	}

	for j := 0; j < segments; j++ {
		ref, err := json.Marshal(pushes[0][j].Result)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(trio); i++ {
			p := pushes[i][j]
			if p.Seg0 != j || p.Seg1 != j+1 {
				t.Fatalf("trio[%d] push %d covers [%d,%d), want [%d,%d)", i, j, p.Seg0, p.Seg1, j, j+1)
			}
			got, err := json.Marshal(p.Result)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(ref) {
				t.Fatalf("trio[%d] push %d result diverged from trio[0]", i, j)
			}
		}
	}
}
