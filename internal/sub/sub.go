// Package sub is the standing-query subsystem: a client registers a query
// once and the store evaluates it incrementally — only over newly
// committed segments, as each stream's ingest pipeline commits them —
// pushing result chunks instead of being polled.
//
// The design keeps push strictly off the ingest path:
//
//   - the Hub registers ONE commit listener with the server's segment
//     manifest; the listener runs inside the commit step (so it observes
//     commits exactly once, in commit order, atomically with visibility)
//     and does nothing but a non-blocking send into each matching
//     subscriber's bounded pending queue — ingest never waits on a
//     subscriber;
//   - each subscription owns an evaluator goroutine that drains its
//     pending queue, pins a fresh server snapshot per commit, and reuses
//     the exact historical query path (Server.QueryAt over [idx, idx+1)),
//     so every pushed chunk is byte-identical to a post-hoc query over the
//     same span;
//   - a slow consumer fills its own pending queue and hits its configured
//     policy: PolicyDisconnect (default) ends the subscription with
//     ErrLagged — the client re-subscribes and backfills with a historical
//     query — while PolicyDrop skips the segment and counts the gap
//     (surfaced as Push.Dropped so the consumer can detect it). Ingest
//     backpressure is never an outcome.
//
// Predicate rules ("≥ N car detections in the last W segments") ride on
// the evaluator: each pushed chunk updates a per-rule sliding window, and
// a window crossing its threshold emits an Alert on the push and, when the
// rule names a webhook, enqueues a buffered, bounded-retry delivery (see
// webhook.go).
package sub

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/query"
	"repro/internal/segment"
	"repro/internal/store"
)

// DefaultBuffer is a subscription's pending-commit queue depth when the
// request does not specify one: deep enough to absorb an ingest burst
// while one chunk is evaluated, small enough that a stuck consumer is
// detected within a handful of segments.
const DefaultBuffer = 64

// DefaultMaxSubscriptions bounds concurrently active subscriptions when
// HubOptions is silent.
const DefaultMaxSubscriptions = 64

var (
	// ErrLagged ends a PolicyDisconnect subscription whose pending queue
	// overflowed: the consumer fell behind ingest and the contiguous
	// stream could not be preserved.
	ErrLagged = errors.New("sub: subscriber lagged behind ingest")
	// ErrClosed is returned for operations on a closed hub, and is the
	// terminal reason of subscriptions ended by a hub drain.
	ErrClosed = errors.New("sub: hub closed")
	// ErrLimit rejects a Subscribe beyond the configured maximum — the
	// admission-control signal the API layer maps to 429.
	ErrLimit = errors.New("sub: subscription limit reached")
)

// Policy selects what happens when a commit arrives and the subscriber's
// bounded pending queue is full.
type Policy int

const (
	// PolicyDisconnect ends the subscription with ErrLagged. The pushed
	// stream is therefore always gap-free: every delivered chunk is
	// contiguous in commit order, or the subscription dies telling you so.
	PolicyDisconnect Policy = iota
	// PolicyDrop skips the overflowing segment and keeps the subscription
	// alive; the cumulative drop count travels on every later Push.
	PolicyDrop
)

func (p Policy) String() string {
	if p == PolicyDrop {
		return "drop"
	}
	return "disconnect"
}

// ParsePolicy maps the wire spelling to a Policy ("" selects disconnect).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "disconnect":
		return PolicyDisconnect, nil
	case "drop":
		return PolicyDrop, nil
	}
	return PolicyDisconnect, fmt.Errorf("sub: unknown policy %q (want disconnect or drop)", s)
}

// Rule is one predicate over a subscription's pushed chunks: fire when the
// matching detections across the last WindowSegments chunks reach
// MinCount. A firing rule emits an Alert on the push; when Webhook is set
// it is also delivered there with bounded retry.
type Rule struct {
	Label          string // detection label to count; "" counts all
	MinCount       int    // threshold (>= 1)
	WindowSegments int    // sliding window; <= 0 selects 1
	Webhook        string // optional POST target
}

// Alert is one rule firing, as pushed in-band and POSTed to webhooks.
type Alert struct {
	SubID          string `json:"sub_id"`
	Rule           int    `json:"rule"` // index into the subscription's rules
	Label          string `json:"label,omitempty"`
	Count          int    `json:"count"`
	WindowSegments int    `json:"window_segments"`
	Stream         string `json:"stream"`
	Seg0           int    `json:"seg0"`
	Seg1           int    `json:"seg1"`
	Seq            int64  `json:"seq"`
}

// Request registers one standing query.
type Request struct {
	Stream   string
	Query    string  // cascade name for query.ByName; "" selects "A"
	Accuracy float64 // target operator accuracy; 0 selects 0.9
	Buffer   int     // pending-commit queue depth; <= 0 selects DefaultBuffer
	Policy   Policy
	Rules    []Rule
}

// Push is one incremental result: the query evaluated over exactly the
// committed segments [Seg0, Seg1) against a snapshot pinned for this
// evaluation — byte-identical (at the wire-chunk level) to a historical
// query over the same span. Result may be shared with other subscriptions
// of the same (stream, query, accuracy) — one evaluation feeds them all —
// so consumers must treat it as read-only.
type Push struct {
	Seq        int64 // manifest commit sequence (strictly increasing)
	Seg0, Seg1 int
	Result     store.Result
	Alerts     []Alert
	Dropped    int64     // cumulative PolicyDrop gaps so far (0 = gap-free)
	Enqueued   time.Time // when the commit was observed (latency = deliver time - Enqueued)
}

// event is one pending commit awaiting evaluation.
type event struct {
	c  segment.Commit
	at time.Time
}

// Subscription is one registered standing query. Read pushes from Out;
// when it closes, Err explains why (nil for a clean Unsubscribe).
type Subscription struct {
	id      string
	req     Request
	cascade query.Cascade
	opNames []string

	pending chan event
	out     chan Push
	quit    chan struct{}
	done    chan struct{}
	cancel  context.CancelFunc
	hooks   *webhooks

	closeOnce sync.Once
	errMu     sync.Mutex
	err       error

	delivered  atomic.Int64
	dropped    atomic.Int64
	evalErrors atomic.Int64
	rulesFired atomic.Int64
	lastSeq    atomic.Int64
	latencyNs  atomic.Int64

	windows [][]int // per-rule ring of the last WindowSegments chunk counts
	winPos  int
}

// ID returns the subscription's hub-unique identifier.
func (s *Subscription) ID() string { return s.id }

// Out is the push stream. It closes when the subscription ends; consume
// promptly — a full pending queue triggers the subscription's Policy.
func (s *Subscription) Out() <-chan Push { return s.out }

// Err reports why the subscription ended: nil while live and after a clean
// Unsubscribe, ErrLagged on a disconnect-policy overflow, ErrClosed after
// a hub drain, or the evaluation error that killed it.
func (s *Subscription) Err() error {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.err
}

// fail latches the terminal reason and stops the evaluator. Safe from any
// goroutine, including the manifest-side listener; first reason wins.
func (s *Subscription) fail(err error) {
	s.closeOnce.Do(func() {
		s.errMu.Lock()
		s.err = err
		s.errMu.Unlock()
		s.cancel()
		close(s.quit)
	})
}

// Stats is one subscription's counters, surfaced via /v1/stats.
type Stats struct {
	ID         string  `json:"id"`
	Stream     string  `json:"stream"`
	Query      string  `json:"query"`
	Policy     string  `json:"policy"`
	Rules      int     `json:"rules,omitempty"`
	Delivered  int64   `json:"delivered"`
	Dropped    int64   `json:"dropped"`
	Pending    int     `json:"pending"`
	EvalErrors int64   `json:"eval_errors"`
	RulesFired int64   `json:"rules_fired"`
	LastSeq    int64   `json:"last_seq"`
	AvgPushMs  float64 `json:"avg_push_ms"` // mean commit-to-delivery latency
}

// Stats snapshots the subscription's counters.
func (s *Subscription) Stats() Stats {
	st := Stats{
		ID:         s.id,
		Stream:     s.req.Stream,
		Query:      s.req.Query,
		Policy:     s.req.Policy.String(),
		Rules:      len(s.req.Rules),
		Delivered:  s.delivered.Load(),
		Dropped:    s.dropped.Load(),
		Pending:    len(s.pending),
		EvalErrors: s.evalErrors.Load(),
		RulesFired: s.rulesFired.Load(),
		LastSeq:    s.lastSeq.Load(),
	}
	if st.Delivered > 0 {
		st.AvgPushMs = float64(s.latencyNs.Load()) / float64(st.Delivered) / 1e6
	}
	return st
}

// HubOptions shapes a hub. The zero value selects working defaults.
type HubOptions struct {
	// MaxSubscriptions bounds concurrently active subscriptions: one more
	// and Subscribe returns ErrLimit. Zero selects
	// DefaultMaxSubscriptions; negative disables subscriptions entirely.
	MaxSubscriptions int
	// Webhook tunes alert delivery (see WebhookOptions).
	Webhook WebhookOptions
}

// Hub fans segment commits out to standing queries. Create with NewHub,
// register with Subscribe, tear down with Close (part of graceful drain:
// in-flight pushes finish, every subscription ends with ErrClosed).
type Hub struct {
	store store.Store
	opt   HubOptions
	hooks *webhooks

	ctx       context.Context
	cancelCtx context.CancelFunc
	unhook    func() // manifest listener cancel

	mu     sync.Mutex
	subs   map[string]*Subscription
	nextID int
	opened int64
	closed bool

	// flights dedupes evaluations across subscriptions: N standing queries
	// with the same (stream, query, accuracy) watching one stream cost ONE
	// cascade run per commit, not N — the first evaluator to reach a commit
	// leads, the rest reuse its QueryResult (see sharedEval). flightOrder
	// bounds the table FIFO at maxFlights so a long-lived hub cannot
	// accumulate one entry per commit forever.
	flights     map[string]*flight
	flightOrder []string

	evalRuns   atomic.Int64 // cascade evaluations actually executed
	evalShared atomic.Int64 // pushes served from another subscription's run
}

// flight is one in-progress (or completed) shared evaluation. done closes
// once res/err are final; waiters hold the pointer, so evicting the table
// entry never strands them.
type flight struct {
	done chan struct{}
	res  store.Result
	err  error
}

// maxFlights bounds the shared-evaluation table. Evicting a still-running
// flight is safe — a later subscriber just evaluates independently.
const maxFlights = 256

// flightKey identifies evaluations that are provably interchangeable: same
// stream, same segment, same canonical cascade, same accuracy. The cascade
// name is canonical (query.ByName normalises "a" and "A" to one cascade),
// so differently-spelled requests still share.
func flightKey(s *Subscription, idx int) string {
	return fmt.Sprintf("%s\x00%d\x00%s\x00%g", s.req.Stream, idx, s.cascade.Name, s.req.Accuracy)
}

// NewHub wires a hub to the store's commit stream — any store.Store: the
// in-process server or a remote peer, the hub cannot tell. The caller must
// Close it before closing the store.
func NewHub(store store.Store, opt HubOptions) *Hub {
	if opt.MaxSubscriptions == 0 {
		opt.MaxSubscriptions = DefaultMaxSubscriptions
	}
	h := &Hub{store: store, opt: opt, subs: map[string]*Subscription{}, flights: map[string]*flight{}}
	h.ctx, h.cancelCtx = context.WithCancel(context.Background())
	h.hooks = newWebhooks(opt.Webhook)
	h.unhook = store.SubscribeCommits(h.onCommit)
	return h
}

// onCommit is the manifest-side listener: it runs inside the commit step,
// so it only routes — a non-blocking send per matching subscriber, with
// the subscriber's policy applied on overflow. Lock order is manifest.mu →
// hub.mu; nothing here may call back into the store.
func (h *Hub) onCommit(c segment.Commit) {
	now := time.Now()
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.subs {
		if s.req.Stream != c.Stream {
			continue
		}
		select {
		case s.pending <- event{c: c, at: now}:
		default:
			s.dropped.Add(1)
			if s.req.Policy == PolicyDisconnect {
				s.fail(ErrLagged)
			}
		}
	}
}

// Subscribe registers a standing query and starts its evaluator. The
// subscription observes every segment committed to its stream from this
// call on, exactly once, in commit order.
func (h *Hub) Subscribe(req Request) (*Subscription, error) {
	cascade, names, err := query.ByName(orA(req.Query))
	if err != nil {
		return nil, err
	}
	if req.Stream == "" {
		return nil, errors.New("sub: missing stream")
	}
	if req.Accuracy == 0 {
		req.Accuracy = 0.9
	}
	if req.Buffer <= 0 {
		req.Buffer = DefaultBuffer
	}
	windows := make([][]int, len(req.Rules))
	for i, r := range req.Rules {
		if r.MinCount < 1 {
			return nil, fmt.Errorf("sub: rule %d: min_count must be >= 1", i)
		}
		if r.WindowSegments <= 0 {
			req.Rules[i].WindowSegments = 1
		}
		windows[i] = make([]int, req.Rules[i].WindowSegments)
	}

	ctx, cancel := context.WithCancel(h.ctx)
	s := &Subscription{
		req:     req,
		cascade: cascade,
		opNames: names,
		pending: make(chan event, req.Buffer),
		out:     make(chan Push),
		quit:    make(chan struct{}),
		done:    make(chan struct{}),
		cancel:  cancel,
		hooks:   h.hooks,
		windows: windows,
	}

	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	if h.opt.MaxSubscriptions < 0 || len(h.subs) >= h.opt.MaxSubscriptions {
		h.mu.Unlock()
		cancel()
		return nil, ErrLimit
	}
	h.nextID++
	h.opened++
	s.id = fmt.Sprintf("s%d", h.nextID)
	h.subs[s.id] = s
	h.mu.Unlock()

	go h.evaluate(ctx, s)
	return s, nil
}

// Unsubscribe ends the named subscription cleanly: its evaluator stops
// after any in-flight push, Out closes, Err stays nil. It reports whether
// the subscription was live.
func (h *Hub) Unsubscribe(id string) bool {
	h.mu.Lock()
	s := h.subs[id]
	h.mu.Unlock()
	if s == nil {
		return false
	}
	s.fail(nil)
	<-s.done
	return true
}

// remove detaches a finished subscription from the hub's routing table.
func (h *Hub) remove(s *Subscription) {
	h.mu.Lock()
	if h.subs[s.id] == s {
		delete(h.subs, s.id)
	}
	h.mu.Unlock()
}

// evaluate is the per-subscription evaluator: one commit at a time, a
// fresh pinned snapshot per commit, results pushed in commit order. It
// owns s.out and closes it on exit.
func (h *Hub) evaluate(ctx context.Context, s *Subscription) {
	defer close(s.done)
	defer close(s.out)
	defer h.remove(s)
	for {
		// Quit wins over further pending work: a drain finishes the
		// in-flight push (the previous loop iteration completed its send)
		// but does not chew through a deep backlog.
		select {
		case <-s.quit:
			return
		default:
		}
		select {
		case <-s.quit:
			return
		case ev := <-s.pending:
			if !h.evalOne(ctx, s, ev) {
				return
			}
		}
	}
}

// evalOne evaluates one committed segment (or adopts a matching
// subscription's shared evaluation of it) and pushes the chunk. It reports
// false when the subscription should end.
func (h *Hub) evalOne(ctx context.Context, s *Subscription, ev event) bool {
	res, err, quit := h.sharedEval(ctx, s, ev)
	if quit {
		return false // subscription ended while waiting on a shared flight
	}
	if err != nil {
		if ctx.Err() != nil {
			s.fail(ErrClosed)
			return false
		}
		s.evalErrors.Add(1)
		s.fail(fmt.Errorf("sub: evaluating segment %d: %w", ev.c.Idx, err))
		return false
	}
	p := Push{
		Seq:      ev.c.Seq,
		Seg0:     ev.c.Idx,
		Seg1:     ev.c.Idx + 1,
		Result:   res,
		Alerts:   s.applyRules(ev.c, res),
		Dropped:  s.dropped.Load(),
		Enqueued: ev.at,
	}
	select {
	case s.out <- p:
	case <-s.quit:
		return false
	}
	s.delivered.Add(1)
	s.lastSeq.Store(ev.c.Seq)
	s.latencyNs.Add(time.Since(ev.at).Nanoseconds())
	return true
}

// sharedEval serves one commit's evaluation through the hub's in-flight
// table. The first subscription to reach a flight key evaluates and
// publishes; concurrent and later arrivals at the same key reuse the
// published QueryResult — one cascade run feeds every matching
// subscription, so fan-out cost no longer scales with subscriber count.
// The shared result is read-only by the Push contract.
//
// The leader evaluates under the HUB's context, not its own: its result
// must survive the leader unsubscribing mid-run, or a departing subscriber
// would poison every waiter. A failed flight is unpublished (removed from
// the table) and waiters fall back to an independent evaluation, so one
// subscription's transient error cannot cascade. quit reports that THIS
// subscription ended while waiting; res/err are meaningless then.
func (h *Hub) sharedEval(ctx context.Context, s *Subscription, ev event) (res store.Result, err error, quit bool) {
	key := flightKey(s, ev.c.Idx)
	h.mu.Lock()
	if f, ok := h.flights[key]; ok {
		h.mu.Unlock()
		select {
		case <-f.done:
		case <-s.quit:
			return store.Result{}, nil, true
		}
		if f.err == nil {
			h.evalShared.Add(1)
			return f.res, nil, false
		}
		// The leader failed; evaluate independently under this
		// subscription's own context and snapshot.
		res, err = h.directEval(ctx, s, ev)
		return res, err, false
	}
	f := &flight{done: make(chan struct{})}
	h.flights[key] = f
	h.flightOrder = append(h.flightOrder, key)
	if len(h.flightOrder) > maxFlights {
		old := h.flightOrder[0]
		h.flightOrder = h.flightOrder[1:]
		delete(h.flights, old)
	}
	h.mu.Unlock()
	f.res, f.err = h.directEval(h.ctx, s, ev)
	if f.err != nil {
		// Unpublish so a retry (or a waiter's fallback) starts clean; the
		// stale flightOrder entry at worst evicts a re-created flight early.
		h.mu.Lock()
		if h.flights[key] == f {
			delete(h.flights, key)
		}
		h.mu.Unlock()
	}
	close(f.done)
	return f.res, f.err, false
}

// directEval runs one commit's query against a freshly pinned snapshot —
// the exact historical query path (through the transport-agnostic store
// boundary), so the chunk is byte-identical to a post-hoc query over the
// same span.
func (h *Hub) directEval(ctx context.Context, s *Subscription, ev event) (store.Result, error) {
	snap, err := h.store.Pin()
	if err != nil {
		return store.Result{}, fmt.Errorf("snapshot: %w", err)
	}
	defer snap.Release()
	h.evalRuns.Add(1)
	return h.store.Evaluate(ctx, snap, store.Request{
		Stream:   s.req.Stream,
		Query:    orA(s.req.Query), // ByName validated it at Subscribe
		Accuracy: s.req.Accuracy,
		Seg0:     ev.c.Idx,
		Seg1:     ev.c.Idx + 1,
	})
}

// applyRules advances every rule's sliding window with this chunk's
// detection counts and returns the alerts that fired. Runs only on the
// evaluator goroutine.
func (s *Subscription) applyRules(c segment.Commit, res store.Result) []Alert {
	if len(s.req.Rules) == 0 {
		return nil
	}
	var alerts []Alert
	for i, rule := range s.req.Rules {
		count := 0
		for _, r := range res.Results {
			for _, d := range r.Detections {
				if rule.Label == "" || d.Label == rule.Label {
					count++
				}
			}
		}
		win := s.windows[i]
		win[s.winPos%len(win)] = count
		total := 0
		for _, v := range win {
			total += v
		}
		if total >= rule.MinCount {
			a := Alert{
				SubID: s.id, Rule: i, Label: rule.Label,
				Count: total, WindowSegments: rule.WindowSegments,
				Stream: c.Stream, Seg0: c.Idx, Seg1: c.Idx + 1, Seq: c.Seq,
			}
			alerts = append(alerts, a)
			s.rulesFired.Add(1)
		}
	}
	s.winPos++
	for i, a := range alerts {
		if url := s.req.Rules[a.Rule].Webhook; url != "" {
			s.hooks.enqueue(url, alerts[i])
		}
	}
	return alerts
}

// HubStats aggregates the hub's activity. EvalRuns counts cascade
// evaluations actually executed; EvalShared counts pushes served from
// another subscription's run — their sum is total pushes evaluated, and a
// high shared fraction means the dedup table is absorbing subscriber
// fan-out.
type HubStats struct {
	Active          int     `json:"active"`
	Opened          int64   `json:"opened"`
	EvalRuns        int64   `json:"eval_runs"`
	EvalShared      int64   `json:"eval_shared"`
	WebhooksSent    int64   `json:"webhooks_sent"`
	WebhookRetries  int64   `json:"webhook_retries"`
	WebhookFailures int64   `json:"webhook_failures"`
	Subs            []Stats `json:"subs,omitempty"`
}

// Stats snapshots the hub and every live subscription (sorted by ID).
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	st := HubStats{
		Active:     len(h.subs),
		Opened:     h.opened,
		EvalRuns:   h.evalRuns.Load(),
		EvalShared: h.evalShared.Load(),
	}
	for _, s := range h.subs {
		st.Subs = append(st.Subs, s.Stats())
	}
	h.mu.Unlock()
	sort.Slice(st.Subs, func(i, j int) bool { return st.Subs[i].ID < st.Subs[j].ID })
	ws := h.hooks.stats()
	st.WebhooksSent, st.WebhookRetries, st.WebhookFailures = ws.Sent, ws.Retries, ws.Failures
	return st
}

// Close drains the hub: the commit listener detaches (ingest proceeds
// untouched), every subscription finishes its in-flight push and ends
// with ErrClosed, and the webhook dispatcher stops after its current
// delivery attempt. Idempotent.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := make([]*Subscription, 0, len(h.subs))
	for _, s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()
	// Outside h.mu: the listener cancel takes the manifest lock, and the
	// established order is manifest.mu → hub.mu.
	h.unhook()
	for _, s := range subs {
		s.fail(ErrClosed)
	}
	for _, s := range subs {
		<-s.done
	}
	h.hooks.close()
	h.cancelCtx()
}

func orA(s string) string {
	if s == "" {
		return "A"
	}
	return s
}
