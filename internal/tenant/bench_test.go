package tenant

import (
	"context"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// BenchmarkTenantSkewAdmission measures what a cold tenant pays for a hot
// tenant's load: 32 hot workers hammer a 2-slot gate (each holding its
// slot ~2ms) while a single cold client issues one request at a time. The
// benchmark reports the cold tenant's p99 admission wait.
//
// VSTORE_BENCH_FAIRGATE=off funnels every request through one queue — the
// global FIFO gate this PR replaced — so cold requests queue behind the
// whole hot backlog (p99 ≈ backlog × hold). The default fair mode queues
// cold in its own lane and grants it within its equal share, so its p99
// stays near a single slot-hold time regardless of the hot backlog.
func BenchmarkTenantSkewAdmission(b *testing.B) {
	fair := os.Getenv("VSTORE_BENCH_FAIRGATE") != "off"
	r := NewRegistry([]core.TenantQuota{{Name: "hot"}, {Name: "cold"}}, nil)
	var hot, cold *Tenant
	for _, tn := range r.Tenants() {
		switch tn.Name() {
		case "hot":
			hot = tn
		case "cold":
			cold = tn
		}
	}
	g := NewGate(2, 64)
	if !fair {
		g.funnel(hot)
	}

	const hotWorkers = 32
	const holdTime = 2 * time.Millisecond
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < hotWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				rel, _, err := g.Acquire(ctx, hot)
				if err != nil {
					continue
				}
				time.Sleep(holdTime)
				rel()
			}
		}()
	}
	// Let the hot backlog build before measuring.
	time.Sleep(20 * time.Millisecond)

	waits := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rel, wait, err := g.Acquire(context.Background(), cold)
		if err != nil {
			b.Fatalf("cold acquire: %v", err)
		}
		rel()
		waits = append(waits, wait)
	}
	b.StopTimer()
	cancel()
	wg.Wait()

	sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
	p99 := waits[(len(waits)*99)/100]
	b.ReportMetric(float64(p99.Microseconds())/1000, "cold-p99-ms")
}
