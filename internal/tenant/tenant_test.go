package tenant

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func TestRegistryResolve(t *testing.T) {
	r := NewRegistry(
		[]core.TenantQuota{{Name: "gold", Weight: 4}},
		map[string]string{"k-gold": "gold", "k-default": ""},
	)
	// Keyless requests get the default tenant — single-tenant deployments
	// keep working with zero configuration.
	def, err := r.Resolve("")
	if err != nil || def.Name() != DefaultName {
		t.Fatalf("keyless resolve = %v, %v", def, err)
	}
	if r.Default() != def {
		t.Fatal("Default() differs from keyless Resolve")
	}
	g, err := r.Resolve("k-gold")
	if err != nil || g.Name() != "gold" || g.Weight() != 4 {
		t.Fatalf("k-gold resolve = %+v, %v", g.Quota(), err)
	}
	// A key mapped to the empty tenant name lands on default.
	d2, err := r.Resolve("k-default")
	if err != nil || d2 != def {
		t.Fatalf("empty-name key resolve = %v, %v", d2, err)
	}
	if _, err := r.Resolve("nope"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("unknown key = %v, want ErrUnknownKey", err)
	}
	// Tenants() is sorted by name.
	names := []string{}
	for _, tn := range r.Tenants() {
		names = append(names, tn.Name())
	}
	if len(names) != 2 || names[0] != "default" || names[1] != "gold" {
		t.Fatalf("Tenants() = %v", names)
	}
}

func TestRegistryKeyOnlyTenantGetsZeroQuota(t *testing.T) {
	r := NewRegistry(nil, map[string]string{"k": "ad-hoc"})
	tn, err := r.Resolve("k")
	if err != nil {
		t.Fatal(err)
	}
	if tn.Weight() != 1 {
		t.Fatalf("zero-quota weight = %d, want 1", tn.Weight())
	}
	if ok, _ := tn.AllowRequest(); !ok {
		t.Fatal("zero-quota tenant rate limited")
	}
}

func TestRateQuota(t *testing.T) {
	clk := newFakeClock()
	r := newRegistryClock([]core.TenantQuota{{Name: "a", RatePerSec: 10, Burst: 2}}, nil, clk.now)
	a := mustNamed(t, r, "a")
	// Burst of 2: two requests pass, the third is rejected with a wait
	// hint of one token period (100ms).
	for i := 0; i < 2; i++ {
		if ok, _ := a.AllowRequest(); !ok {
			t.Fatalf("request %d within burst rejected", i)
		}
	}
	ok, wait := a.AllowRequest()
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if wait < 50*time.Millisecond || wait > 150*time.Millisecond {
		t.Fatalf("retry hint = %s, want ~100ms (one token at 10/s)", wait)
	}
	// Tokens accrue with time.
	clk.advance(100 * time.Millisecond)
	if ok, _ := a.AllowRequest(); !ok {
		t.Fatal("request after refill rejected")
	}
}

func TestDerivedBurst(t *testing.T) {
	clk := newFakeClock()
	r := newRegistryClock([]core.TenantQuota{{Name: "a", RatePerSec: 2.5}}, nil, clk.now)
	a := mustNamed(t, r, "a")
	// Burst unset: derived as ceil(rate) = 3.
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := a.AllowRequest(); ok {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("derived burst admitted %d, want 3", admitted)
	}
}

func TestByteQuotaPostPaid(t *testing.T) {
	clk := newFakeClock()
	r := newRegistryClock([]core.TenantQuota{{Name: "a", BytesPerSec: 1000}}, nil, clk.now)
	a := mustNamed(t, r, "a")
	// The first request always passes — cost is unknown until the
	// response is written.
	if ok, _ := a.AllowRequest(); !ok {
		t.Fatal("first request rejected")
	}
	// It turns out to be huge: 5s worth of quota. The balance goes
	// negative and the next request is gated.
	a.ChargeBytes(5000)
	ok, wait := a.AllowRequest()
	if ok {
		t.Fatal("request admitted with byte quota in debt")
	}
	if wait < 3*time.Second || wait > 6*time.Second {
		t.Fatalf("byte-debt retry hint = %s, want ~5s", wait)
	}
	// Debt pays down over time.
	clk.advance(6 * time.Second)
	if ok, _ := a.AllowRequest(); !ok {
		t.Fatal("request rejected after byte quota refilled")
	}
}

func mustNamed(t *testing.T, r *Registry, name string) *Tenant {
	t.Helper()
	return mustTenant(t, r, name)
}

func TestObserveTotals(t *testing.T) {
	clk := newFakeClock()
	r := newRegistryClock([]core.TenantQuota{{Name: "a"}}, nil, clk.now)
	a := mustNamed(t, r, "a")
	a.Observe(OutcomeOK, 10*time.Millisecond, 2*time.Millisecond, 100)
	a.Observe(OutcomeError, 30*time.Millisecond, 0, 50)
	a.Observe(OutcomeRejected, 0, 0, 0)
	a.Observe(OutcomeAborted, 0, 0, 0)
	tot := a.Totals()
	want := Totals{
		Requests: 4, OK: 1, Rejected: 1, Aborted: 1, Errors: 1,
		Bytes: 150, LatencyNs: int64(40 * time.Millisecond), WaitNs: int64(2 * time.Millisecond),
	}
	if tot != want {
		t.Fatalf("totals = %+v, want %+v", tot, want)
	}
	hist := a.WaitHist()
	var n int64
	for _, c := range hist {
		n += c
	}
	// Only the two admitted (answered) requests enter the wait histogram.
	if n != 2 {
		t.Fatalf("wait histogram holds %d observations, want 2", n)
	}
}
